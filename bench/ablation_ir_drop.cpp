/**
 * @file
 * Ablation — the dynamic IR-drop extension (§6.3).
 *
 * The paper's baseline Aging Analysis considers BTI aging only; §6.3
 * proposes extending it with dynamic IR drop. This bench reruns the STA
 * with the activity-based IR-drop derate enabled and reports how the
 * worst slack and the violating-pair set shift when switching-heavy
 * regions are additionally slowed.
 */
#include <cstdio>

#include "bench/common.h"

int
main()
{
    using namespace vega;
    bench::banner("Ablation: dynamic IR-drop extension (minver activity "
                  "profile, 10 years)");

    std::printf("%-6s | %-10s | %12s | %12s | %6s |\n", "Unit", "IR drop",
                "setup WNS", "#violations", "pairs");
    for (ModuleKind kind : {ModuleKind::Alu32, ModuleKind::Fpu32}) {
        bench::AnalyzedModule m = bench::analyze(kind);
        const char *unit = kind == ModuleKind::Alu32 ? "alu32" : "fpu32";

        for (bool enable : {false, true}) {
            sta::IrDropParams ir;
            ir.enable = enable;
            ir.sensitivity = 0.03;
            sta::AgedTiming timing = sta::compute_aged_timing(
                m.module, m.aging.profile, bench::timing_library(), 10.0,
                ir);
            sta::StaResult r =
                sta::run_sta(m.module, timing, 20000);
            std::printf("%-6s | %-10s | %10.1fps | %12zu | %6zu |\n",
                        unit, enable ? "on" : "off", r.wns_setup,
                        r.num_setup_violations, r.pairs.size());
        }

        // Mean activity, for context.
        double act = 0.0;
        for (CellId c = 0; c < m.module.netlist.num_cells(); ++c)
            act += m.aging.profile.activity(c);
        std::printf("%-6s   mean switching activity: %.3f\n", unit,
                    act / double(m.module.netlist.num_cells()));
    }

    std::printf("\nTakeaway: IR drop compounds with BTI on the switching "
                "datapath, deepening WNS\nand widening the violating set "
                "— the §6.3 extension matters most exactly where\nthe "
                "workload is busiest.\n");
    return 0;
}
