/**
 * @file
 * Simulation-core throughput: how much the EvalTape refactor buys.
 *
 * Three engines run the same stimulus on the real ALU32 and FPU32
 * netlists:
 *
 *  - "scalar": a verbatim replica of the pre-tape Simulator (per-eval
 *    topo_order() walk over AoS Cell structs), the refactor baseline;
 *  - "tape":   today's 1-lane Simulator interpreting the compiled
 *    instruction stream;
 *  - "batch":  the 64-lane BatchSimulator, scored in lane-cycles/sec
 *    (steps/sec x 64) since each step advances 64 simulations.
 *
 * Before timing, all three are spot-checked in lockstep so a speedup
 * can never come from computing the wrong values. Results land in
 * BENCH_sim.json in the working directory; `--smoke` shrinks the time
 * budget for CI (numbers get noisy, schema and lockstep check do not).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/rng.h"
#include "sim/batch_sim.h"
#include "sim/simulator.h"

using namespace vega;

namespace {

/**
 * The pre-refactor Simulator, kept alive here as the bench baseline:
 * this is the exact eval/step loop (including the dirty-flag
 * short-circuit) that shipped before the tape existed.
 */
struct LegacySim
{
    const Netlist &nl;
    std::vector<uint8_t> values;
    bool dirty = true;

    explicit LegacySim(const Netlist &n) : nl(n), values(n.num_nets(), 0)
    {
        for (CellId c : nl.dffs())
            values[nl.cell(c).out] = nl.cell(c).init ? 1 : 0;
        eval();
    }

    void set_input(NetId net, bool v)
    {
        values[net] = v ? 1 : 0;
        dirty = true;
    }

    void eval()
    {
        if (!dirty)
            return;
        for (CellId c : nl.topo_order()) {
            const Cell &cell = nl.cell(c);
            bool a = cell.num_inputs() > 0 ? values[cell.in[0]] : false;
            bool b = cell.num_inputs() > 1 ? values[cell.in[1]] : false;
            bool s = cell.num_inputs() > 2 ? values[cell.in[2]] : false;
            values[cell.out] = eval_cell(cell.type, a, b, s) ? 1 : 0;
        }
        dirty = false;
    }

    void step()
    {
        eval();
        auto dffs = nl.dffs();
        std::vector<uint8_t> next;
        next.reserve(dffs.size());
        for (CellId c : dffs)
            next.push_back(values[nl.cell(c).in[0]]);
        for (size_t i = 0; i < dffs.size(); ++i)
            values[nl.cell(dffs[i]).out] = next[i];
        dirty = true;
        eval();
    }
};

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point t0 = clock::now();
    return std::chrono::duration<double>(clock::now() - t0).count();
}

/**
 * Steps/sec of @p step_fn: warm up, then run in chunks until the time
 * budget is spent. @p drive_fn flips an input each chunk so the
 * dirty-flag path never lets an engine coast on a settled state.
 */
template <typename StepFn, typename DriveFn>
double
measure_steps_per_sec(StepFn &&step_fn, DriveFn &&drive_fn,
                      double budget_sec)
{
    const int kChunk = 16;
    for (int i = 0; i < kChunk; ++i)
        step_fn();
    uint64_t steps = 0;
    bool flip = false;
    double start = now_seconds(), elapsed = 0.0;
    do {
        drive_fn(flip);
        flip = !flip;
        for (int i = 0; i < kChunk; ++i)
            step_fn();
        steps += kChunk;
        elapsed = now_seconds() - start;
    } while (elapsed < budget_sec);
    return steps / elapsed;
}

/**
 * Drive all three engines with identical random stimulus for a few
 * cycles and demand bit-identical nets. Dies loudly on mismatch: a
 * throughput number for a wrong simulator is worse than no number.
 */
bool
lockstep_check(const Netlist &nl, LegacySim &legacy, Simulator &tape,
               BatchSimulator &batch, uint64_t seed)
{
    Rng stim(seed);
    auto inputs = nl.primary_inputs();
    for (int t = 0; t < 8; ++t) {
        for (NetId in : inputs) {
            uint64_t plane = stim.next();
            legacy.set_input(in, plane & 1);
            tape.set_input(in, plane & 1);
            batch.set_input(in, plane);
        }
        legacy.eval();
        for (NetId n = 0; n < nl.num_nets(); ++n) {
            bool l = legacy.values[n];
            bool s = tape.value(n);
            bool b0 = (batch.value(n) >> 0) & 1;
            if (l != s || l != b0) {
                std::printf("LOCKSTEP MISMATCH net %s cycle %d: "
                            "legacy=%d tape=%d batch[0]=%d\n",
                            nl.net(n).name.c_str(), t, int(l), int(s),
                            int(b0));
                return false;
            }
        }
        legacy.step();
        tape.step();
        batch.step();
    }
    return true;
}

struct ModuleResult
{
    std::string name;
    size_t cells = 0, nets = 0, instrs = 0;
    double scalar_cps = 0, tape_cps = 0, batch_cps = 0;

    double tape_speedup() const { return tape_cps / scalar_cps; }
    double batch_speedup() const { return batch_cps / scalar_cps; }
};

ModuleResult
bench_module(const std::string &name, const Netlist &nl,
             double budget_sec)
{
    ModuleResult r;
    r.name = name;
    r.cells = nl.num_cells();
    r.nets = nl.num_nets();

    auto tape = std::make_shared<const EvalTape>(nl);
    r.instrs = tape->num_instrs();

    LegacySim legacy(nl);
    Simulator scalar_tape(tape);
    BatchSimulator batch(tape);
    if (!lockstep_check(nl, legacy, scalar_tape, batch, 0x5eed))
        std::exit(1);

    auto inputs = nl.primary_inputs();
    NetId flip_net = inputs.empty() ? kInvalidId : inputs.front();

    r.scalar_cps = measure_steps_per_sec(
        [&] { legacy.step(); },
        [&](bool f) {
            if (flip_net != kInvalidId)
                legacy.set_input(flip_net, f);
        },
        budget_sec);
    r.tape_cps = measure_steps_per_sec(
        [&] { scalar_tape.step(); },
        [&](bool f) {
            if (flip_net != kInvalidId)
                scalar_tape.set_input(flip_net, f);
        },
        budget_sec);
    // Each batch step advances 64 independent simulations: score it in
    // lane-cycles/sec so all three columns share a unit.
    r.batch_cps = BatchSimulator::kLanes *
                  measure_steps_per_sec(
                      [&] { batch.step(); },
                      [&](bool f) {
                          if (flip_net != kInvalidId)
                              batch.set_input(flip_net,
                                              f ? ~uint64_t(0) : 0);
                      },
                      budget_sec);

    std::printf("%-6s | %6zu cells | %6zu instrs | %11.0f | %11.0f "
                "(%5.2fx) | %12.0f (%6.2fx)\n",
                name.c_str(), r.cells, r.instrs, r.scalar_cps, r.tape_cps,
                r.tape_speedup(), r.batch_cps, r.batch_speedup());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;
    // Long enough per engine that chunked timing converges; smoke mode
    // only proves the bench runs and the JSON is well-formed.
    const double budget = smoke ? 0.02 : 1.0;

    bench::banner(std::string("Simulator throughput: pre-tape scalar vs "
                              "tape vs 64-lane batch") +
                  (smoke ? " [smoke]" : ""));
    std::printf("%-6s | %12s | %13s | %11s | %20s | %22s\n", "module",
                "size", "tape", "scalar c/s", "tape c/s", "batch lane-c/s");

    HwModule alu = rtl::make_alu32();
    HwModule fpu = rtl::make_fpu32();
    std::vector<ModuleResult> results;
    results.push_back(bench_module("alu32", alu.netlist, budget));
    results.push_back(bench_module("fpu32", fpu.netlist, budget));

    std::string json = "{\"sim_throughput\":{\"smoke\":";
    json += smoke ? "true" : "false";
    json += ",\"lanes\":64,\"modules\":[";
    for (size_t i = 0; i < results.size(); ++i) {
        const ModuleResult &r = results[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "%s{\"module\":\"%s\",\"cells\":%zu,\"nets\":%zu,"
                      "\"tape_instrs\":%zu,\"scalar_cps\":%.0f,"
                      "\"tape_cps\":%.0f,\"batch_lane_cps\":%.0f,"
                      "\"tape_speedup\":%.3f,\"batch_speedup\":%.3f}",
                      i ? "," : "", r.name.c_str(), r.cells, r.nets,
                      r.instrs, r.scalar_cps, r.tape_cps, r.batch_cps,
                      r.tape_speedup(), r.batch_speedup());
        json += buf;
    }
    json += "]}}";
    bench::write_bench_json("sim", smoke, json);
    return 0;
}
