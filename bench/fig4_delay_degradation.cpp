/**
 * @file
 * Figure 4 — switching-delay degradation of a 28 nm XOR cell under
 * different signal probabilities over a 10-year period.
 *
 * Reproduces the aging-aware timing library entry the paper plots:
 * degradation grows ~t^(1/6) and stratifies by SP (lower SP = more NBTI
 * stress = faster aging).
 */
#include <cstdio>

#include "bench/common.h"

int
main()
{
    using namespace vega;
    const auto &lib = bench::timing_library();

    bench::banner("Figure 4: XOR cell switching-delay degradation vs SP "
                  "(10-year horizon)");
    std::printf("%6s |", "years");
    const double sps[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    for (double sp : sps)
        std::printf("  SP=%.2f", sp);
    std::printf("\n");

    for (double years = 0.0; years <= 10.0; years += 1.0) {
        std::printf("%6.1f |", years);
        for (double sp : sps) {
            double frac =
                lib.delay_factor_max(CellType::Xor2, sp, years) - 1.0;
            std::printf("  %6.2f%%", 100.0 * frac);
        }
        std::printf("\n");
    }

    std::printf("\nPaper shape check: monotone in time, ~70%% of the "
                "10-year shift within year one,\nand the SP=0 curve the "
                "worst (parked-at-0 cells age fastest).\n");
    double y1 = lib.delay_factor_max(CellType::Xor2, 0.0, 1.0) - 1.0;
    double y10 = lib.delay_factor_max(CellType::Xor2, 0.0, 10.0) - 1.0;
    std::printf("year1/year10 degradation ratio: %.2f (reaction-diffusion "
                "predicts ~0.68)\n",
                y1 / y10);
    return 0;
}
