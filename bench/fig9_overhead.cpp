/**
 * @file
 * Figure 9 — performance overhead of the embench suite with Vega's
 * profile-guided test integration. "-N" integrates only the tests
 * generated without the initial-value mitigation; "-M" only those
 * generated with it (matching the paper's labels).
 *
 * Overhead is measured in simulated CPU cycles: instrumented program
 * cycles over baseline cycles, minus one. Our ISS is deterministic, so
 * overheads are exact (the paper's occasional negative overheads are
 * host measurement noise).
 */
#include <cstdio>

#include "bench/common.h"
#include "common/logging.h"
#include "integrate/integrator.h"
#include "workloads/kernels.h"

namespace {

using namespace vega;

double
measure(const workloads::Kernel &kernel,
        const std::vector<runtime::TestCase> &suite)
{
    integrate::Profile profile = integrate::profile_program(kernel.program);
    integrate::IntegrationConfig cfg;
    cfg.overhead_threshold = 0.01; // the paper's ~1% budget regime
    integrate::IntegrationResult r =
        integrate::integrate_tests(kernel.program, profile, suite, cfg);

    cpu::Iss base(kernel.program);
    auto s1 = base.run();
    cpu::Iss inst(r.program);
    auto s2 = inst.run();
    VEGA_CHECK(s1 == cpu::Iss::Status::Halted &&
                   s2 == cpu::Iss::Status::Halted,
               "kernel did not halt");
    VEGA_CHECK(inst.read_u32(workloads::kChecksumAddr) ==
                   kernel.expected_checksum,
               "instrumented kernel corrupted its checksum");
    return double(inst.cycles()) / double(base.cycles()) - 1.0;
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Figure 9: overhead of profile-guided test integration "
                  "on embench-like kernels");

    // Build both suites (ALU + FPU tests together, as deployed).
    std::vector<runtime::TestCase> suite_n, suite_m;
    for (ModuleKind kind : {ModuleKind::Alu32, ModuleKind::Fpu32}) {
        bench::AnalyzedModule m = bench::analyze(kind);
        for (auto &t : bench::lift_module(m, false).suite())
            suite_n.push_back(t);
        for (auto &t : bench::lift_module(m, true).suite())
            suite_m.push_back(t);
    }
    std::printf("suite sizes: -N %zu tests, -M %zu tests\n\n",
                suite_n.size(), suite_m.size());

    std::printf("%-10s | %9s | %9s |\n", "benchmark", "-N", "-M");
    double sum_n = 0, sum_m = 0;
    size_t count = 0;
    for (const auto &kernel : workloads::embench_suite()) {
        double on = measure(kernel, suite_n);
        double om = measure(kernel, suite_m);
        std::printf("%-10s | %8.2f%% | %8.2f%% |\n", kernel.name.c_str(),
                    100 * on, 100 * om);
        sum_n += on;
        sum_m += om;
        ++count;
    }
    std::printf("%-10s | %8.2f%% | %8.2f%% |\n", "average",
                100 * sum_n / count, 100 * sum_m / count);

    std::printf("\nPaper shape check (their Fig. 9: ~0.8%% average, "
                "indistinguishable from noise on\nmany benchmarks): "
                "integration stays under the ~1%% budget on every "
                "kernel. With both\nsuites the throttle settles at its "
                "lowest firing rate, so the residual overhead is\nthe "
                "entry gate itself and -N and -M coincide; the paper's "
                "negative overheads are\nhost measurement noise our "
                "deterministic ISS does not have.\n");
    return 0;
}
