/**
 * @file
 * Ablation — fidelity of the logical failure model (Eq. 2).
 *
 * The paper models a setup violation logically: the endpoint corrupts
 * exactly in cycles where the path's launch value changed (§3.3.1).
 * Here the aged adder runs on the *dynamic timing* simulator, which
 * plays the violation physically (late data ⇒ the flop samples its
 * stale input), and every corrupted capture is checked against the
 * Eq. 2 activation condition: did some violating path's launch register
 * change in the preceding cycle?
 */
#include <cstdio>
#include <map>
#include <set>

#include "bench/common.h"
#include "common/rng.h"
#include "rtl/adder2.h"
#include "sim/timing_sim.h"

int
main()
{
    using namespace vega;
    bench::banner("Ablation: Eq. 2 logical failure model vs dynamic "
                  "timing simulation (aged adder)");

    HwModule adder = rtl::make_adder2();
    sta::calibrate_timing_scale(adder, bench::timing_library(), 0.99);
    Simulator sp_sim(adder.netlist);
    SpProfile profile = profile_signal_probability(
        sp_sim, 128, [](Simulator &, uint64_t) {});
    sta::AgedTiming aged = sta::compute_aged_timing(
        adder, profile, bench::timing_library(), 10.0);
    sta::StaResult sta = sta::run_sta(adder, aged);
    std::printf("aged STA: %zu violating setup paths, %zu unique pairs\n",
                sta.num_setup_violations, sta.pairs.size());

    // Launch candidates per violating capture endpoint.
    std::map<CellId, std::set<CellId>> launches_of;
    for (const auto &p : sta.pairs)
        if (p.is_setup && p.launch != kInvalidId)
            launches_of[p.capture].insert(p.launch);

    TimingSimulator timed(adder.netlist, aged);
    Simulator golden(adder.netlist);
    Rng rng(2024);

    const int kCycles = 20000;
    size_t events = 0, activation_explained = 0, output_mismatch = 0;
    std::map<CellId, uint8_t> launch_prev, launch_now;
    for (const auto &[cap, launches] : launches_of)
        for (CellId l : launches)
            launch_prev[l] = launch_now[l] = 0;

    for (int t = 0; t < kCycles; ++t) {
        BitVec a(2, rng.below(4)), b(2, rng.below(4));
        timed.set_bus("a", a);
        timed.set_bus("b", b);
        golden.set_bus("a", a);
        golden.set_bus("b", b);

        // Snapshot launch registers before the edge.
        for (auto &[l, v] : launch_now)
            v = golden.value(adder.netlist.cell(l).out);

        auto edge_events = timed.step();
        golden.step();

        for (const TimingEvent &e : edge_events) {
            if (!e.is_setup)
                continue;
            ++events;
            bool explained = false;
            for (CellId l : launches_of[e.dff])
                if (launch_now[l] != launch_prev[l])
                    explained = true;
            if (explained)
                ++activation_explained;
        }
        if (timed.bus_value("o").to_u64() !=
            golden.bus_value("o").to_u64())
            ++output_mismatch;

        launch_prev = launch_now;
    }

    std::printf("\n%d random cycles on the physically-aged design:\n",
                kCycles);
    std::printf("  corrupted captures (setup):        %zu\n", events);
    std::printf("  explained by Eq. 2 activation:     %zu (%.1f%%)\n",
                activation_explained,
                events ? 100.0 * activation_explained / events : 100.0);
    std::printf("  cycles with corrupted output:      %zu (%.1f%%)\n",
                output_mismatch, 100.0 * output_mismatch / kCycles);

    std::printf("\nTakeaway: every physical corruption coincides with "
                "the launch-value change the\npaper's logical model "
                "predicts — Eq. 2 is a sound abstraction of the timing\n"
                "behaviour, with C generalizing the stale sampled "
                "value.\n");
    return 0;
}
