/**
 * @file
 * Formal-engine throughput: what suite-level batched cover solving buys
 * over the per-query deepening loop.
 *
 * Both sides run the identical lift-corpus workload — aged-STA endpoint
 * pairs of the ALU32 and FPU32, shadow-instrumented exactly as
 * run_error_lifting submits them. Each pair contributes its Table-4
 * per-config trace targets (usually covered at a shallow bound) plus a
 * per-config detection-latency obligation (unreachable: walks every
 * bound before settling — the deepening-heavy half of the workload):
 *
 *  - "per-query": one check_cover deepening loop per target, each on
 *    its own single-cone shadow netlist (the Incremental engine — the
 *    stronger of the two per-query engines, and the semantics oracle);
 *  - "batched":   ONE formal::CoverBatch suite per module over a
 *    lift::build_shadow_bank netlist holding every fault cone — the
 *    module logic is unrolled once per frame for the whole suite, every
 *    still-open target is resolved at each bound, and clauses learned
 *    refuting one target prune its siblings.
 *
 * Before timing counts, every target's verdict is cross-checked between
 * the two paths — a speedup on diverging results would be meaningless.
 * Results land in BENCH_bmc.json; `--smoke` shrinks the workload for CI
 * (numbers get noisy, schema and cross-check do not).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "formal/bmc.h"
#include "formal/cover_batch.h"
#include "lift/failure_model.h"
#include "netlist/builder.h"
#include "lift/instruction_builder.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

using namespace vega;

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point t0 = clock::now();
    return std::chrono::duration<double>(clock::now() - t0).count();
}

/** The test_lift aging recipe: tight calibration + parked-input SP so
 *  STA yields real violating pairs without a full workload profile. */
struct Corpus
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
};

Corpus
build_corpus(ModuleKind kind)
{
    Corpus c;
    c.module = kind == ModuleKind::Alu32 ? rtl::make_alu32()
                                         : rtl::make_fpu32();
    sta::calibrate_timing_scale(c.module, bench::timing_library(), 0.99);
    Simulator sim(c.module.netlist);
    SpProfile profile =
        profile_signal_probability(sim, 64, [](Simulator &, uint64_t) {});
    sta::AgedTiming aged = sta::compute_aged_timing(
        c.module, profile, bench::timing_library(), 10.0);
    c.pairs = sta::run_sta(c.module, aged).pairs;
    return c;
}

/** One per-query cover obligation of the workload. */
struct Query
{
    Netlist netlist{"q"};
    NetId target = kInvalidId;
    formal::BmcOptions opts;
};

/** Append a frame counter and the gated target "mismatch still firing
 *  at cycle n" to @p nl; n past max_frames makes every bound UNSAT, so
 *  the deepening loop walks the whole schedule — the encoding-bound
 *  query shape where shared frames pay off the most. */
NetId
add_latency_target(Netlist &nl, NetId mismatch, int max_frames,
                   const std::string &suffix)
{
    Builder b(nl, "lat" + suffix);
    const int bits = 5;
    const int n = max_frames + 2; // unreachable within the bound
    std::vector<NetId> cnt;
    for (int i = 0; i < bits; ++i)
        cnt.push_back(nl.new_net("lat_q" + suffix + std::to_string(i)));
    NetId carry = b.const1();
    for (int i = 0; i < bits; ++i) {
        NetId d = b.xor_(cnt[size_t(i)], carry);
        carry = b.and_(cnt[size_t(i)], carry);
        nl.add_dff("lat_ff" + suffix + std::to_string(i), d,
                   cnt[size_t(i)], false);
    }
    std::vector<NetId> at_n;
    for (int i = 0; i < bits; ++i)
        at_n.push_back((n >> i) & 1 ? cnt[size_t(i)]
                                    : b.not_(cnt[size_t(i)]));
    return b.and_(mismatch, b.and_n(at_n));
}

/**
 * The whole workload of one module, built both ways: index-aligned
 * per-query obligations (one shadow netlist each) and CoverBatch
 * target specs against one multi-cone shadow-bank netlist.
 */
struct Suite
{
    Netlist bank_netlist{"bank"};
    formal::BmcOptions bank_opts;
    std::vector<formal::CoverTargetSpec> targets;
    std::vector<Query> queries;
};

Suite
build_suite(const Corpus &c, ModuleKind kind, size_t max_pairs,
            int max_frames)
{
    Suite s;

    std::vector<lift::FailureModelSpec> specs;
    size_t used = 0;
    for (const sta::EndpointPair &pair : c.pairs) {
        if (pair.launch == kInvalidId)
            continue;
        for (lift::FaultConstant fc :
             {lift::FaultConstant::Zero, lift::FaultConstant::One}) {
            lift::FailureModelSpec spec;
            spec.launch = pair.launch;
            spec.capture = pair.capture;
            spec.is_setup = pair.is_setup;
            spec.constant = fc;
            specs.push_back(spec);
        }
        if (++used >= max_pairs)
            break;
    }

    // Per-query side: a single-cone shadow netlist per obligation. The
    // queries vector is fully built first so the batch specs can hold
    // stable witness-netlist pointers into it.
    for (const lift::FailureModelSpec &spec : specs) {
        lift::ShadowInstrumentation shadow =
            lift::build_shadow_instrumentation(c.module.netlist, spec);

        // The detection-latency obligation of this config...
        {
            Netlist lnl = shadow.netlist;
            NetId lt =
                add_latency_target(lnl, shadow.mismatch, max_frames, "");
            lnl.add_output_bus("latency_hit", {lt});
            Query lq;
            lq.target = lt;
            lq.opts.max_frames = max_frames;
            lq.opts.assumes = lift::build_assumes(lnl, kind);
            lq.opts.state_equalities = shadow.state_pairs;
            lq.netlist = std::move(lnl);
            s.queries.push_back(std::move(lq));
        }

        // ...plus the Table-4 trace target itself (usually covered at
        // a shallow bound).
        Query q;
        q.opts.max_frames = max_frames;
        q.opts.assumes = lift::build_assumes(shadow.netlist, kind);
        q.opts.state_equalities = shadow.state_pairs;
        q.target = shadow.mismatch;
        q.netlist = std::move(shadow.netlist);
        s.queries.push_back(std::move(q));
    }

    // Batch side: one bank netlist with every cone, one shared frame
    // counter gating every latency target, one assume set.
    lift::ShadowBank bank = lift::build_shadow_bank(c.module.netlist, specs);
    std::vector<NetId> latency_hits;
    size_t qi = 0;
    for (size_t j = 0; j < specs.size(); ++j) {
        {
            NetId lt = add_latency_target(
                bank.netlist, bank.cones[j].mismatch, max_frames,
                "_c" + std::to_string(j));
            latency_hits.push_back(lt);
            formal::CoverTargetSpec ts;
            ts.target = lt;
            ts.state_equalities = bank.cones[j].state_pairs;
            // Unreachable by construction: no witness netlist needed.
            s.targets.push_back(std::move(ts));
            ++qi;
        }
        formal::CoverTargetSpec ts;
        ts.target = bank.cones[j].mismatch;
        ts.state_equalities = bank.cones[j].state_pairs;
        ts.witness_netlist = &s.queries[qi].netlist;
        ts.witness_target = s.queries[qi].target;
        ts.witness_assumes = s.queries[qi].opts.assumes;
        s.targets.push_back(std::move(ts));
        ++qi;
    }
    bank.netlist.add_output_bus("latency_hit", latency_hits);
    s.bank_opts.max_frames = max_frames;
    s.bank_opts.assumes = lift::build_assumes(bank.netlist, kind);
    bank.netlist.validate();
    s.bank_netlist = std::move(bank.netlist);
    return s;
}

struct SideTotals
{
    double sec = 0;
    uint64_t frames_encoded = 0;
    std::vector<formal::BmcResult> results;
};

SideTotals
run_per_query(const Suite &s)
{
    SideTotals t;
    obs::Counter &encoded = obs::counter("bmc.frames_unrolled");
    uint64_t enc0 = encoded.value();
    double start = now_seconds();
    for (const Query &q : s.queries)
        t.results.push_back(formal::check_cover(q.netlist, q.target,
                                                q.opts));
    t.sec = now_seconds() - start;
    t.frames_encoded = encoded.value() - enc0;
    return t;
}

SideTotals
run_batched(const Suite &s)
{
    SideTotals t;
    obs::Counter &encoded = obs::counter("bmc.frames_unrolled");
    uint64_t enc0 = encoded.value();
    double start = now_seconds();
    formal::CoverBatch batch(s.bank_netlist, s.bank_opts);
    for (const formal::CoverTargetSpec &ts : s.targets)
        batch.add_target(ts);
    batch.run();
    t.sec = now_seconds() - start;
    for (int i = 0; i < batch.num_targets(); ++i)
        t.results.push_back(batch.result(i));
    t.frames_encoded = encoded.value() - enc0;
    return t;
}

struct ModuleResult
{
    std::string name;
    size_t targets = 0;
    int covered = 0, unreachable = 0, timeouts = 0;
    SideTotals per_query, batched;

    double speedup() const
    {
        return batched.sec > 0 ? per_query.sec / batched.sec : 0;
    }
};

ModuleResult
bench_module(ModuleKind kind, size_t max_pairs, int max_frames)
{
    ModuleResult r;
    r.name = kind == ModuleKind::Alu32 ? "alu32" : "fpu32";
    Corpus c = build_corpus(kind);
    Suite suite = build_suite(c, kind, max_pairs, max_frames);
    r.targets = suite.targets.size();

    r.per_query = run_per_query(suite);
    r.batched = run_batched(suite);

    // Cross-check: identical verdicts or the timing is meaningless.
    for (size_t i = 0; i < r.targets; ++i) {
        const formal::BmcResult &q = r.per_query.results[i];
        const formal::BmcResult &b = r.batched.results[i];
        if (q.status != b.status || q.frames != b.frames ||
            q.proven_by_induction != b.proven_by_induction ||
            q.kinduction_depth != b.kinduction_depth) {
            std::printf("PATH MISMATCH %s target %zu: per-query %s/%d vs "
                        "batched %s/%d\n",
                        r.name.c_str(), i,
                        formal::bmc_status_name(q.status), q.frames,
                        formal::bmc_status_name(b.status), b.frames);
            std::exit(1);
        }
        switch (q.status) {
          case formal::BmcStatus::Covered:     ++r.covered; break;
          case formal::BmcStatus::Unreachable: ++r.unreachable; break;
          case formal::BmcStatus::Timeout:     ++r.timeouts; break;
        }
    }

    std::printf("%-6s | %3zu targets (%2dS %2dUR %2dFF) | per-query "
                "%7.3fs (%5llu frames) | batched %7.3fs (%5llu frames) "
                "| %5.2fx\n",
                r.name.c_str(), r.targets, r.covered, r.unreachable,
                r.timeouts, r.per_query.sec,
                (unsigned long long)r.per_query.frames_encoded,
                r.batched.sec,
                (unsigned long long)r.batched.frames_encoded,
                r.speedup());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    // Deepening-heavy bound: the latency obligations walk every bound
    // before settling, which is where one shared frame encoding per
    // bound (instead of one per target) separates the paths.
    const int max_frames = smoke ? 4 : 12;
    const size_t max_pairs = smoke ? 1 : 6;

    bench::banner(std::string("BMC suite throughput: per-query loop vs "
                              "batched cover solving") +
                  (smoke ? " [smoke]" : ""));

    std::vector<ModuleResult> results;
    results.push_back(bench_module(ModuleKind::Alu32, max_pairs,
                                   max_frames));
    results.push_back(bench_module(ModuleKind::Fpu32,
                                   smoke ? 1 : 4, max_frames));

    double per_query_total = 0, batched_total = 0;
    for (const ModuleResult &r : results) {
        per_query_total += r.per_query.sec;
        batched_total += r.batched.sec;
    }
    double overall =
        batched_total > 0 ? per_query_total / batched_total : 0;
    std::printf("overall: per-query %.3fs vs batched %.3fs -> %.2fx\n",
                per_query_total, batched_total, overall);

    std::string json = "{\"bmc_throughput\":{\"smoke\":";
    json += smoke ? "true" : "false";
    char head[128];
    std::snprintf(head, sizeof head, ",\"max_frames\":%d,\"modules\":[",
                  max_frames);
    json += head;
    for (size_t i = 0; i < results.size(); ++i) {
        const ModuleResult &r = results[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"module\":\"%s\",\"targets\":%zu,\"covered\":%d,"
            "\"unreachable\":%d,\"timeouts\":%d,\"per_query_sec\":%.4f,"
            "\"batched_sec\":%.4f,\"frames_per_query\":%llu,"
            "\"frames_batched\":%llu,\"speedup\":%.3f}",
            i ? "," : "", r.name.c_str(), r.targets, r.covered,
            r.unreachable, r.timeouts, r.per_query.sec, r.batched.sec,
            (unsigned long long)r.per_query.frames_encoded,
            (unsigned long long)r.batched.frames_encoded, r.speedup());
        json += buf;
    }
    char tail[64];
    std::snprintf(tail, sizeof tail, "],\"speedup_overall\":%.3f}}",
                  overall);
    json += tail;
    bench::write_bench_json("bmc", smoke, json);
    return 0;
}
