/**
 * @file
 * Formal-engine throughput: what incremental unrolling buys on the
 * deepening loop.
 *
 * Both BMC engines run the identical lift-corpus workload — aged-STA
 * endpoint pairs of the ALU32 and FPU32, shadow-instrumented exactly as
 * run_error_lifting submits them. Each pair contributes its Table-4
 * trace queries (usually covered at a shallow bound) plus a
 * detection-latency obligation (unreachable: walks every bound before
 * the free-state proof — the deepening-heavy half of the workload):
 *
 *  - "scratch":     a fresh Unroller + solver per bound (the historical
 *                   engine, 1+2+...+K frame encodings per query);
 *  - "incremental": one persistent solver per query, one frame appended
 *                   per bound, bounds asked via activation-literal
 *                   assumption solves (O(K) encodings, learned clauses
 *                   carried across bounds).
 *
 * Before timing, every query's status/frames are cross-checked between
 * the engines — a speedup on diverging results would be meaningless.
 * Results land in BENCH_bmc.json; `--smoke` shrinks the workload for CI
 * (numbers get noisy, schema and cross-check do not).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "formal/bmc.h"
#include "lift/failure_model.h"
#include "netlist/builder.h"
#include "lift/instruction_builder.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

using namespace vega;

namespace {

double
now_seconds()
{
    using clock = std::chrono::steady_clock;
    static const clock::time_point t0 = clock::now();
    return std::chrono::duration<double>(clock::now() - t0).count();
}

/** The test_lift aging recipe: tight calibration + parked-input SP so
 *  STA yields real violating pairs without a full workload profile. */
struct Corpus
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
};

Corpus
build_corpus(ModuleKind kind)
{
    Corpus c;
    c.module = kind == ModuleKind::Alu32 ? rtl::make_alu32()
                                         : rtl::make_fpu32();
    sta::calibrate_timing_scale(c.module, bench::timing_library(), 0.99);
    Simulator sim(c.module.netlist);
    SpProfile profile =
        profile_signal_probability(sim, 64, [](Simulator &, uint64_t) {});
    sta::AgedTiming aged = sta::compute_aged_timing(
        c.module, profile, bench::timing_library(), 10.0);
    c.pairs = sta::run_sta(c.module, aged).pairs;
    return c;
}

/** One pre-built cover query of the workload. */
struct Query
{
    Netlist netlist{"q"};
    NetId target = kInvalidId;
    formal::BmcOptions opts;
};

/**
 * The detection-latency obligation on a shadow instrumentation: "is the
 * mismatch still firing N cycles in?" — the target is the mismatch
 * gated by a frame counter hitting N. With N past max_frames every
 * bound is UNSAT (the counter is deterministic from reset, so unit
 * propagation kills the target), the loop walks the whole deepening
 * schedule, and the free-state phase closes it out. Cheap per-bound
 * proofs make the query encoding-bound — exactly where O(K) vs O(K^2)
 * frame encodings separate the engines.
 */
Query
make_latency_query(lift::ShadowInstrumentation shadow, ModuleKind kind,
                   int max_frames)
{
    Query q;
    Netlist &nl = shadow.netlist;
    Builder b(nl, "lat");
    const int bits = 5;
    const int n = max_frames + 2; // unreachable within the bound
    std::vector<NetId> cnt;
    for (int i = 0; i < bits; ++i)
        cnt.push_back(nl.new_net("lat_q" + std::to_string(i)));
    NetId carry = b.const1();
    for (int i = 0; i < bits; ++i) {
        NetId d = b.xor_(cnt[size_t(i)], carry);
        carry = b.and_(cnt[size_t(i)], carry);
        nl.add_dff("lat_ff" + std::to_string(i), d, cnt[size_t(i)], false);
    }
    std::vector<NetId> at_n;
    for (int i = 0; i < bits; ++i)
        at_n.push_back((n >> i) & 1 ? cnt[size_t(i)]
                                    : b.not_(cnt[size_t(i)]));
    NetId target = b.and_(shadow.mismatch, b.and_n(at_n));
    nl.add_output_bus("latency_hit", {target});
    q.target = target;
    q.opts.max_frames = max_frames;
    q.opts.assumes = lift::build_assumes(nl, kind);
    q.opts.state_equalities = shadow.state_pairs;
    q.netlist = std::move(nl);
    return q;
}

std::vector<Query>
build_queries(const Corpus &c, ModuleKind kind, size_t max_pairs,
              int max_frames)
{
    std::vector<Query> qs;
    size_t used = 0;
    for (const sta::EndpointPair &pair : c.pairs) {
        if (pair.launch == kInvalidId)
            continue;
        for (lift::FaultConstant fc :
             {lift::FaultConstant::Zero, lift::FaultConstant::One}) {
            lift::FailureModelSpec spec;
            spec.launch = pair.launch;
            spec.capture = pair.capture;
            spec.is_setup = pair.is_setup;
            spec.constant = fc;
            lift::ShadowInstrumentation shadow =
                lift::build_shadow_instrumentation(c.module.netlist, spec);

            // The detection-latency obligation (unreachable, walks
            // every bound) on one constant per pair...
            if (fc == lift::FaultConstant::Zero)
                qs.push_back(make_latency_query(shadow, kind, max_frames));

            // ...plus the Table-4 trace query itself (usually covered
            // at a shallow bound).
            Query q;
            q.opts.max_frames = max_frames;
            q.opts.assumes = lift::build_assumes(shadow.netlist, kind);
            q.opts.state_equalities = shadow.state_pairs;
            q.target = shadow.mismatch;
            q.netlist = std::move(shadow.netlist);
            qs.push_back(std::move(q));
        }
        if (++used >= max_pairs)
            break;
    }
    return qs;
}

struct EngineTotals
{
    double sec = 0;
    uint64_t frames_encoded = 0;
    uint64_t frames_reused = 0;
    std::vector<formal::BmcResult> results;
};

EngineTotals
run_engine(const std::vector<Query> &queries, formal::BmcEngine engine)
{
    EngineTotals t;
    obs::Counter &encoded = obs::counter("bmc.frames_unrolled");
    obs::Counter &reused = obs::counter("bmc.frames_reused");
    uint64_t enc0 = encoded.value(), reu0 = reused.value();
    for (const Query &q : queries) {
        formal::BmcOptions opts = q.opts;
        opts.engine = engine;
        double start = now_seconds();
        t.results.push_back(formal::check_cover(q.netlist, q.target, opts));
        t.sec += now_seconds() - start;
    }
    t.frames_encoded = encoded.value() - enc0;
    t.frames_reused = reused.value() - reu0;
    return t;
}

struct ModuleResult
{
    std::string name;
    size_t queries = 0;
    int covered = 0, unreachable = 0, timeouts = 0;
    EngineTotals scratch, incremental;

    double speedup() const
    {
        return incremental.sec > 0 ? scratch.sec / incremental.sec : 0;
    }
};

ModuleResult
bench_module(ModuleKind kind, size_t max_pairs, int max_frames)
{
    ModuleResult r;
    r.name = kind == ModuleKind::Alu32 ? "alu32" : "fpu32";
    Corpus c = build_corpus(kind);
    std::vector<Query> qs = build_queries(c, kind, max_pairs, max_frames);
    r.queries = qs.size();

    r.scratch = run_engine(qs, formal::BmcEngine::Scratch);
    r.incremental = run_engine(qs, formal::BmcEngine::Incremental);

    // Cross-check: identical verdicts or the timing is meaningless.
    for (size_t i = 0; i < qs.size(); ++i) {
        const formal::BmcResult &s = r.scratch.results[i];
        const formal::BmcResult &n = r.incremental.results[i];
        if (s.status != n.status || s.frames != n.frames ||
            s.proven_by_induction != n.proven_by_induction) {
            std::printf("ENGINE MISMATCH %s query %zu: scratch %s/%d vs "
                        "incremental %s/%d\n",
                        r.name.c_str(), i,
                        formal::bmc_status_name(s.status), s.frames,
                        formal::bmc_status_name(n.status), n.frames);
            std::exit(1);
        }
        switch (s.status) {
          case formal::BmcStatus::Covered:     ++r.covered; break;
          case formal::BmcStatus::Unreachable: ++r.unreachable; break;
          case formal::BmcStatus::Timeout:     ++r.timeouts; break;
        }
    }

    std::printf("%-6s | %3zu queries (%2dS %2dUR %2dFF) | scratch %7.3fs "
                "(%5llu frames) | incremental %7.3fs (%5llu frames, %llu "
                "reused) | %5.2fx\n",
                r.name.c_str(), r.queries, r.covered, r.unreachable,
                r.timeouts, r.scratch.sec,
                (unsigned long long)r.scratch.frames_encoded,
                r.incremental.sec,
                (unsigned long long)r.incremental.frames_encoded,
                (unsigned long long)r.incremental.frames_reused,
                r.speedup());
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    // Deepening-heavy bound: unreachable covers walk every bound before
    // the free-state proof, which is where O(K) vs O(K^2) frame
    // encodings (and carried learned clauses) separate the engines.
    const int max_frames = smoke ? 4 : 12;
    const size_t max_pairs = smoke ? 1 : 6;

    bench::banner(std::string("BMC deepening throughput: scratch vs "
                              "incremental engine") +
                  (smoke ? " [smoke]" : ""));

    std::vector<ModuleResult> results;
    results.push_back(bench_module(ModuleKind::Alu32, max_pairs,
                                   max_frames));
    results.push_back(bench_module(ModuleKind::Fpu32,
                                   smoke ? 1 : 4, max_frames));

    double scratch_total = 0, incremental_total = 0;
    for (const ModuleResult &r : results) {
        scratch_total += r.scratch.sec;
        incremental_total += r.incremental.sec;
    }
    double overall =
        incremental_total > 0 ? scratch_total / incremental_total : 0;
    std::printf("overall: scratch %.3fs vs incremental %.3fs -> %.2fx\n",
                scratch_total, incremental_total, overall);

    std::string json = "{\"bmc_throughput\":{\"smoke\":";
    json += smoke ? "true" : "false";
    char head[128];
    std::snprintf(head, sizeof head, ",\"max_frames\":%d,\"modules\":[",
                  max_frames);
    json += head;
    for (size_t i = 0; i < results.size(); ++i) {
        const ModuleResult &r = results[i];
        char buf[512];
        std::snprintf(
            buf, sizeof buf,
            "%s{\"module\":\"%s\",\"queries\":%zu,\"covered\":%d,"
            "\"unreachable\":%d,\"timeouts\":%d,\"scratch_sec\":%.4f,"
            "\"incremental_sec\":%.4f,\"frames_scratch\":%llu,"
            "\"frames_incremental\":%llu,\"frames_reused\":%llu,"
            "\"speedup\":%.3f}",
            i ? "," : "", r.name.c_str(), r.queries, r.covered,
            r.unreachable, r.timeouts, r.scratch.sec, r.incremental.sec,
            (unsigned long long)r.scratch.frames_encoded,
            (unsigned long long)r.incremental.frames_encoded,
            (unsigned long long)r.incremental.frames_reused, r.speedup());
        json += buf;
    }
    char tail[64];
    std::snprintf(tail, sizeof tail, "],\"speedup_overall\":%.3f}}",
                  overall);
    json += tail;
    bench::write_bench_json("bmc", smoke, json);
    return 0;
}
