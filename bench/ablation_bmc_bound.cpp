/**
 * @file
 * Ablation — BMC unrolling bound and conflict budget (§3.3.3 / the FF
 * outcome of Table 4).
 *
 * Sweeps the bound: too-shallow unrollings cannot reach the cover (the
 * FPU pipeline needs 3 frames for a fault to become output-visible),
 * while deeper ones only cost solver time. Also sweeps the conflict
 * budget to show how "FF" (formal timeout) emerges when the budget is
 * starved.
 */
#include <cstdio>

#include "bench/common.h"

int
main()
{
    using namespace vega;
    bench::banner("Ablation: BMC bound / conflict budget on the FPU "
                  "working set");

    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);
    auto pairs = bench::working_pairs(fpu);
    if (pairs.size() > 12)
        pairs.resize(12); // keep the sweep snappy

    std::printf("max_frames sweep (conflict budget 400k):\n");
    std::printf("%10s | %3s | %3s | %3s | %3s | avg conflicts\n",
                "max_frames", "S", "UR", "FF", "FC");
    for (int frames : {1, 2, 3, 4, 6}) {
        lift::LiftConfig cfg;
        cfg.bmc.max_frames = frames;
        cfg.bmc.conflict_budget = 400000;
        lift::LiftResult r =
            lift::run_error_lifting(fpu.module, pairs, cfg);
        uint64_t conflicts = 0;
        size_t configs = 0;
        for (const auto &pr : r.pairs)
            for (const auto &co : pr.configs) {
                conflicts += co.conflicts;
                ++configs;
            }
        std::printf("%10d | %3zu | %3zu | %3zu | %3zu | %lu\n", frames,
                    r.n_success, r.n_unreachable, r.n_timeout,
                    r.n_conversion_failed,
                    (unsigned long)(conflicts / std::max<size_t>(configs, 1)));
    }

    std::printf("\nconflict budget sweep (max_frames 4):\n");
    std::printf("%10s | %3s | %3s | %3s | %3s |\n", "budget", "S", "UR",
                "FF", "FC");
    for (int64_t budget : {int64_t(10), int64_t(100), int64_t(1000),
                           int64_t(400000)}) {
        lift::LiftConfig cfg;
        cfg.bmc.max_frames = 4;
        cfg.bmc.conflict_budget = budget;
        lift::LiftResult r =
            lift::run_error_lifting(fpu.module, pairs, cfg);
        std::printf("%10lld | %3zu | %3zu | %3zu | %3zu |\n",
                    (long long)budget, r.n_success, r.n_unreachable,
                    r.n_timeout, r.n_conversion_failed);
    }

    std::printf("\nTakeaway: the bound must exceed the pipeline depth "
                "(latency 2 + flag commit);\nstarving the solver turns "
                "liftable pairs into the paper's FF category.\n");
    return 0;
}
