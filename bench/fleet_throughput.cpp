/**
 * @file
 * Fleet-engine throughput: device-epochs/sec of the mission-mode
 * simulator across thread counts, on a synthetic fault matrix (so the
 * bench isolates the per-device epoch loop from gate-level
 * characterization cost).
 *
 * Before timing, the deterministic report JSON is demanded
 * byte-identical between the 1-thread and N-thread runs — a scaling
 * number for a simulator that reorders results would be worthless.
 * Results land in BENCH_fleet_throughput.json (or the .smoke.json
 * sibling under --smoke, which never clobbers the pinned file).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "fleet/fleet_sim.h"

using namespace vega;

namespace {

/**
 * A hand-built matrix shaped like a real ALU characterization: 8 pairs
 * x 2 constants, a spread of detectability (one test, several tests,
 * none) and corruption behaviour, suite of 24 tests.
 */
fleet::FaultMatrix
synthetic_matrix()
{
    fleet::FaultMatrix m;
    m.module = ModuleKind::Alu32;
    m.num_pairs = 8;
    m.num_tests = 24;
    for (size_t t = 0; t < m.num_tests; ++t) {
        m.test_cycles.push_back(4000 + 500 * (t % 5));
        m.suite_cycles += m.test_cycles.back();
    }
    m.faults.resize(m.num_pairs * 2);
    for (size_t i = 0; i < m.faults.size(); ++i) {
        fleet::FaultClass &f = m.faults[i];
        f.pair_index = i / 2;
        f.constant = (i & 1) ? lift::FaultConstant::One
                             : lift::FaultConstant::Zero;
        f.per_test.assign(m.num_tests, runtime::Detection::None);
        // 3 in 4 classes detectable, with varying test coverage.
        if (i % 4 != 3) {
            size_t covering = 1 + i % 5;
            for (size_t c = 0; c < covering; ++c) {
                size_t t = (i * 7 + c * 5) % m.num_tests;
                f.per_test[t] = (c % 3 == 0)
                                    ? runtime::Detection::Mismatch
                                    : (c % 3 == 1)
                                          ? runtime::Detection::Stall
                                          : runtime::Detection::
                                                TagAnomaly;
            }
            for (auto d : f.per_test)
                if (d != runtime::Detection::None)
                    ++f.detecting_tests;
        }
        f.corrupts = (i % 3) != 2;
    }
    return m;
}

struct ThreadResult
{
    size_t threads = 0;
    double wall_seconds = 0;
    double device_epochs_per_sec = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    fleet::FleetConfig cfg;
    cfg.seed = 0x5eed;
    cfg.num_devices = smoke ? 4000 : 200000;
    cfg.epochs = 8;

    fleet::FaultMatrix matrix = synthetic_matrix();

    bench::banner(std::string("Fleet-engine throughput: device-epochs/"
                              "sec vs worker threads") +
                  (smoke ? " [smoke]" : ""));
    std::printf("%8s | %10s | %18s | %8s\n", "threads", "wall s",
                "device-epochs/s", "scaling");

    size_t hw = std::thread::hardware_concurrency();
    std::vector<size_t> thread_counts = {1, 2, 4, 8};
    std::vector<ThreadResult> results;
    std::string reference_json;
    for (size_t t : thread_counts) {
        if (t > 1 && hw && t > hw)
            break; // no point timing oversubscription
        cfg.threads = t;
        auto run = fleet::run_fleet(cfg, matrix);
        if (!run) {
            std::fprintf(stderr, "fleet run failed: %s\n",
                         run.error().to_string().c_str());
            return 1;
        }
        std::string json = run->to_json(false);
        if (reference_json.empty())
            reference_json = json;
        else if (json != reference_json) {
            std::printf("DETERMINISM MISMATCH at %zu threads: report "
                        "differs from the 1-thread run\n",
                        t);
            return 1;
        }
        ThreadResult r;
        r.threads = t;
        r.wall_seconds = run->timing.wall_seconds;
        r.device_epochs_per_sec = run->timing.device_epochs_per_sec;
        double scaling =
            results.empty()
                ? 1.0
                : r.device_epochs_per_sec /
                      results.front().device_epochs_per_sec;
        std::printf("%8zu | %10.3f | %18.0f | %7.2fx\n", t,
                    r.wall_seconds, r.device_epochs_per_sec, scaling);
        results.push_back(r);
    }

    std::string json = "{\"fleet_throughput\":{\"smoke\":";
    json += smoke ? "true" : "false";
    char head[128];
    std::snprintf(head, sizeof head,
                  ",\"devices\":%llu,\"epochs\":%u,\"deterministic\":"
                  "true,\"threads\":[",
                  (unsigned long long)cfg.num_devices, cfg.epochs);
    json += head;
    for (size_t i = 0; i < results.size(); ++i) {
        char buf[160];
        std::snprintf(buf, sizeof buf,
                      "%s{\"threads\":%zu,\"wall_seconds\":%.4f,"
                      "\"device_epochs_per_sec\":%.0f,\"scaling\":"
                      "%.3f}",
                      i ? "," : "", results[i].threads,
                      results[i].wall_seconds,
                      results[i].device_epochs_per_sec,
                      results[i].device_epochs_per_sec /
                          results.front().device_epochs_per_sec);
        json += buf;
    }
    json += "]}}";
    bench::write_bench_json("fleet_throughput", smoke, json);
    return 0;
}
