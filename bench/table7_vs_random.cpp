/**
 * @file
 * Table 7 — effectiveness of Vega-generated vs randomly-generated test
 * suites, measured by the fraction of failing netlists each detects.
 * Random suites mirror Vega's style and quantity: each test checks one
 * random instruction with random inputs (§5.2.3). The paper averages 10
 * random experiments; we default to 3 (VEGA_FULL=1 restores 10).
 */
#include <cstdio>

#include "bench/quality.h"

namespace {

using namespace vega;

double
detection_rate(const std::vector<runtime::TestCase> &suite,
               const bench::AnalyzedModule &m,
               const lift::LiftResult &lifted, bench::FailureMode fm,
               uint64_t seed)
{
    size_t n = 0, detected = 0;
    for (size_t pi = 0; pi < lifted.pairs.size(); ++pi) {
        const lift::PairResult &pr = lifted.pairs[pi];
        if (pr.tests.empty())
            continue;
        ++n;
        lift::FailureModelSpec spec;
        spec.launch = pr.pair.launch;
        spec.capture = pr.pair.capture;
        spec.is_setup = pr.pair.is_setup;
        spec.constant = bench::to_constant(fm);
        lift::FailingNetlist failing =
            lift::build_failing_netlist(m.module.netlist, spec);
        bench::SuiteOutcome out = bench::run_suite_against(
            suite, m.module.kind, failing.netlist,
            failing.has_random_input, seed + pi);
        if (out.detected)
            ++detected;
    }
    return n == 0 ? 0.0 : 100.0 * double(detected) / double(n);
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Table 7: Vega-generated vs random test suites "
                  "(percent of failures detected)");
    std::printf("%-4s | FM | %7s | %7s |\n", "Unit", "Vega", "Random");

    int experiments = bench::full_mode() ? 10 : 3;

    for (ModuleKind kind : {ModuleKind::Alu32, ModuleKind::Fpu32}) {
        bench::AnalyzedModule m = bench::analyze(kind);
        lift::LiftResult lifted = bench::lift_module(m, false);
        auto vega_suite = lifted.suite();
        const char *unit = kind == ModuleKind::Alu32 ? "ALU" : "FPU";

        for (bench::FailureMode fm :
             {bench::FailureMode::Zero, bench::FailureMode::One,
              bench::FailureMode::Random}) {
            double vega_rate =
                detection_rate(vega_suite, m, lifted, fm, 1000);

            double random_sum = 0.0;
            for (int e = 0; e < experiments; ++e) {
                Rng rng(7777 + 131 * e);
                std::vector<runtime::TestCase> random_suite;
                for (size_t i = 0; i < vega_suite.size(); ++i)
                    random_suite.push_back(
                        bench::make_random_test(kind, rng, i));
                random_sum += detection_rate(random_suite, m, lifted, fm,
                                             2000 + 31 * e);
            }
            std::printf("%-4s |  %s | %6.1f%% | %6.1f%% |  (%d random "
                        "experiments)\n",
                        unit, bench::failure_mode_name(fm), vega_rate,
                        random_sum / experiments, experiments);
        }
    }

    std::printf("\nPaper shape check (their Table 7): Vega detects "
                "~100%% everywhere; random suites\ntrail badly on the "
                "ALU and on FPU C=0, but can be competitive on FPU "
                "C=1/random\n— and random testing cannot prove any "
                "failure impossible.\n");
    return 0;
}
