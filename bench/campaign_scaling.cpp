/**
 * @file
 * Thread-scaling study of the fault-injection campaign engine: the
 * same ≥500-job ALU campaign at 1, 2, 4, and 8 worker threads.
 *
 * Two claims are measured:
 *  - throughput scales with threads (speedup column; needs real cores
 *    — the hardware_concurrency line tells you what this box has);
 *  - results do NOT depend on thread count: the deterministic JSON
 *    (timing excluded) is byte-identical in every configuration, so
 *    detection/escape counts are too.
 *
 * Results land in BENCH_campaign.json (or the .smoke.json sibling
 * under --smoke, which runs fewer jobs at 1 and 2 threads only and
 * never clobbers the pinned file).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.h"
#include "campaign/campaign.h"

using namespace vega;

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    bench::banner(std::string("Campaign scaling: 1 -> N worker threads") +
                  (smoke ? " [smoke]" : ""));
    std::printf("hardware_concurrency: %u\n\n",
                std::thread::hardware_concurrency());

    bench::AnalyzedModule m = bench::analyze(ModuleKind::Alu32);
    // A small lifted working set keeps the per-job cost low: the bench
    // measures campaign fan-out, not lifting. VEGA_FULL lifts all.
    lift::LiftConfig lift_cfg;
    lift_cfg.bmc.max_frames = 4;
    lift_cfg.bmc.conflict_budget = 400000;
    if (!bench::full_mode())
        lift_cfg.max_pairs = 8;
    lift::LiftResult lifted = lift::run_error_lifting(
        m.module, bench::working_pairs(m), lift_cfg);
    auto suite = lifted.suite();
    if (suite.empty()) {
        std::printf("no tests lifted; cannot run the campaign bench\n");
        return 1;
    }
    std::vector<sta::EndpointPair> pairs;
    for (const auto &pr : lifted.pairs)
        pairs.push_back(pr.pair);
    std::printf("working set: %zu pairs, %zu suite tests\n\n",
                pairs.size(), suite.size());

    campaign::CampaignConfig cfg;
    cfg.seed = 7;
    cfg.num_jobs = smoke ? 64 : 512;
    cfg.max_pairs = 8; // 8 pairs x 2 constants of netlist variants

    const unsigned hw = std::thread::hardware_concurrency();
    std::vector<size_t> threads_list = {1, 2, 4, 8};
    if (smoke) {
        // Smoke keeps CI fast: the serial baseline, one scaling point,
        // and — only where there are real cores to scale onto — the
        // 8-thread point the CI speedup gate reads.
        threads_list = {1, 2};
        if (hw >= 8)
            threads_list.push_back(8);
    }
    const std::vector<size_t> &kThreads = threads_list;
    std::vector<campaign::CampaignReport> reports;
    std::printf("%7s | %8s | %8s | %8s | %7s | %6s | %6s | %6s | %6s\n",
                "threads", "wall s", "jobs/s", "sims/s", "speedup",
                "char s", "sim s", "jrnl s", "agg s");
    double base_jps = 0.0;
    for (size_t t : kThreads) {
        cfg.threads = t;
        reports.push_back(campaign::run_campaign(m.module, pairs, suite,
                                                 cfg));
        const auto &r = reports.back();
        if (t == 1)
            base_jps = r.timing.jobs_per_sec;
        std::printf("%7zu | %8.2f | %8.1f | %8.0f | %6.2fx | %6.2f | "
                    "%6.2f | %6.2f | %6.2f\n",
                    t, r.timing.wall_seconds, r.timing.jobs_per_sec,
                    r.timing.sims_per_sec,
                    base_jps > 0 ? r.timing.jobs_per_sec / base_jps
                                 : 0.0,
                    r.timing.characterize_seconds,
                    r.timing.simulate_seconds, r.timing.journal_seconds,
                    r.timing.aggregate_seconds);
    }

    // Determinism across thread counts: identical reports, bit for bit.
    std::string golden = reports.front().to_json(false);
    bool identical = true;
    for (const auto &r : reports)
        identical = identical && r.to_json(false) == golden;
    std::printf("\ndeterminism: reports at every thread count are %s "
                "(detected=%llu escapes=%llu)\n",
                identical ? "byte-identical" : "DIFFERENT (BUG)",
                (unsigned long long)reports.front().detected,
                (unsigned long long)reports.front().escapes);

    std::string json = "{\"campaign_scaling\":{\"smoke\":";
    json += smoke ? "true" : "false";
    json += ",\"num_jobs\":" + std::to_string(cfg.num_jobs);
    json += ",\"hardware_concurrency\":" + std::to_string(hw);
    json += ",\"deterministic\":";
    json += identical ? "true" : "false";
    json += ",\"runs\":[";
    for (size_t i = 0; i < reports.size(); ++i) {
        const auto &r = reports[i];
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "%s{\"threads\":%zu,\"wall_seconds\":%.3f,"
                      "\"jobs_per_sec\":%.2f,\"sims_per_sec\":%.0f,"
                      "\"speedup\":%.3f,\"steals\":%llu,"
                      "\"characterize_seconds\":%.3f,"
                      "\"simulate_seconds\":%.3f,"
                      "\"journal_seconds\":%.3f,"
                      "\"aggregate_seconds\":%.3f,"
                      "\"detected\":%llu,\"escapes\":%llu}",
                      i ? "," : "", kThreads[i], r.timing.wall_seconds,
                      r.timing.jobs_per_sec, r.timing.sims_per_sec,
                      base_jps > 0 ? r.timing.jobs_per_sec / base_jps
                                   : 0.0,
                      (unsigned long long)r.timing.steals,
                      r.timing.characterize_seconds,
                      r.timing.simulate_seconds,
                      r.timing.journal_seconds,
                      r.timing.aggregate_seconds,
                      (unsigned long long)r.detected,
                      (unsigned long long)r.escapes);
        json += buf;
    }
    json += "]}}";
    bench::write_bench_json("campaign", smoke, json);

    return identical ? 0 : 1;
}
