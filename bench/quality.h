/**
 * @file
 * Shared machinery for the test-quality studies (Tables 6 and 7):
 * running a whole suite through the ISS against a failing gate-level
 * netlist, exactly as the paper's Verilator evaluation does.
 */
#pragma once

#include <cstdio>
#include <optional>
#include <vector>

#include "bench/common.h"
#include "common/rng.h"
#include "cpu/alu_ops.h"
#include "cpu/mdu_ops.h"
#include "cpu/netlist_backend.h"
#include "cpu/softfp.h"

namespace vega::bench {

/** Failure mode for a failing netlist: the value C (Table 6's "FM"). */
enum class FailureMode { Zero, One, Random };

inline const char *
failure_mode_name(FailureMode fm)
{
    switch (fm) {
      case FailureMode::Zero:   return "0";
      case FailureMode::One:    return "1";
      case FailureMode::Random: return "R";
    }
    return "?";
}

inline lift::FaultConstant
to_constant(FailureMode fm)
{
    switch (fm) {
      case FailureMode::Zero: return lift::FaultConstant::Zero;
      case FailureMode::One: return lift::FaultConstant::One;
      default: return lift::FaultConstant::RandomInput;
    }
}

/** Result of one suite run against one failing netlist. */
struct SuiteOutcome
{
    bool detected = false;
    size_t position = SIZE_MAX; ///< suite index of the detecting test
    runtime::Detection kind = runtime::Detection::None;
};

/**
 * Execute @p suite in order through the ISS with @p failing as the
 * module's gate-level implementation. Hardware state persists across
 * test blocks (the initial-value dynamics of §3.3.4 / Table 6's "L").
 * Stops at the first detection.
 */
inline SuiteOutcome
run_suite_against(const std::vector<runtime::TestCase> &suite,
                  ModuleKind kind, const Netlist &failing,
                  bool has_random_input, uint64_t seed)
{
    cpu::NetlistBackend backend(kind, failing, has_random_input, seed);
    SuiteOutcome out;
    uint64_t tags_seen = 0;
    for (size_t i = 0; i < suite.size(); ++i) {
        cpu::Iss iss(suite[i].program);
        if (kind == ModuleKind::Alu32)
            iss.set_alu_backend(&backend);
        else if (kind == ModuleKind::Mdu32)
            iss.set_mdu_backend(&backend);
        else
            iss.set_fpu_backend(&backend);
        auto status = iss.run();
        runtime::Detection det = runtime::Detection::None;
        if (status == cpu::Iss::Status::Stalled ||
            status == cpu::Iss::Status::Trap) {
            det = runtime::Detection::Stall;
        } else if (iss.reg(31) != 0) {
            det = runtime::Detection::Mismatch;
        } else if (backend.tag_mismatches() > tags_seen) {
            det = runtime::Detection::TagAnomaly;
        }
        tags_seen = backend.tag_mismatches();
        if (det != runtime::Detection::None) {
            out.detected = true;
            out.position = i;
            out.kind = det;
            return out;
        }
    }
    return out;
}

/** Build a random baseline test (Table 7's generator). */
inline runtime::TestCase
make_random_test(ModuleKind kind, Rng &rng, size_t index)
{
    runtime::TestCase tc;
    tc.module = kind;
    tc.name = "random" + std::to_string(index);
    runtime::ModuleStep step;
    step.a = uint32_t(rng.next());
    step.b = uint32_t(rng.next());
    runtime::ResultCheck check;
    check.step = 0;
    if (kind == ModuleKind::Alu32) {
        step.op = uint32_t(rng.below(kNumAluOps));
        check.expected = alu_compute(AluOp(step.op), step.a, step.b);
    } else if (kind == ModuleKind::Mdu32) {
        step.op = uint32_t(rng.below(kNumMduOps));
        check.expected = mdu_compute(MduOp(step.op), step.a, step.b);
    } else {
        step.op = uint32_t(rng.below(8));
        auto op = fp::FpuOp(step.op);
        fp::FpResult golden = fp::fpu_compute(op, step.a, step.b);
        check.expected = golden.bits;
        check.to_xreg = op == fp::FpuOp::Eq || op == fp::FpuOp::Lt ||
                        op == fp::FpuOp::Le;
        tc.check_final_flags = true;
        tc.expected_flags = golden.flags;
    }
    tc.stimulus = {step};
    tc.checks = {check};
    runtime::finalize_test_case(tc);
    return tc;
}

} // namespace vega::bench
