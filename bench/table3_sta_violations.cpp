/**
 * @file
 * Table 3 — STA result with aging-aware timing libraries: worst negative
 * slack and number of violated paths (setup / hold) for the ALU and FPU
 * after ten years, plus the unique endpoint-pair counts of §5.2.1.
 */
#include <cstdio>

#include "bench/common.h"

namespace {

void
row(const vega::bench::AnalyzedModule &m)
{
    using namespace vega;
    const sta::StaResult &r = m.aging.sta;
    auto fmt = [](double wns, size_t n, char *buf, size_t len) {
        if (n == 0)
            snprintf(buf, len, "       - / 0");
        else
            snprintf(buf, len, "%7.0fps / %zu", wns, n);
    };
    char setup[64], hold[64];
    fmt(r.wns_setup < 0 ? r.wns_setup : 0.0, r.num_setup_violations,
        setup, sizeof(setup));
    fmt(r.wns_hold < 0 ? r.wns_hold : 0.0, r.num_hold_violations, hold,
        sizeof(hold));

    size_t setup_pairs = 0, hold_pairs = 0;
    for (const auto &p : r.pairs)
        (p.is_setup ? setup_pairs : hold_pairs)++;

    std::printf("%-6s | %-22s | %-18s | pairs: %zu setup + %zu hold%s\n",
                m.module.netlist.name().c_str(), setup, hold, setup_pairs,
                hold_pairs,
                r.truncated ? "  [path count capped]" : "");
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Table 3: STA result with aging-aware timing libraries "
                  "(10-year lifetime)");
    std::printf("%-6s | %-22s | %-18s |\n", "Unit", "Setup WNS / #paths",
                "Hold WNS / #paths");

    bench::AnalyzedModule alu = bench::analyze(ModuleKind::Alu32);
    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);
    row(alu);
    row(fpu);

    std::printf("\nFresh (year-0) sanity: both designs close timing.\n");
    std::printf("  alu32: setup %.0fps, hold %.2fps\n",
                alu.aging.fresh_sta.wns_setup,
                alu.aging.fresh_sta.wns_hold);
    std::printf("  fpu32: setup %.0fps, hold %.2fps\n",
                fpu.aging.fresh_sta.wns_setup,
                fpu.aging.fresh_sta.wns_hold);

    std::printf("\nPaper shape check (their Table 3: ALU -76ps/11 setup, "
                "0 hold; FPU -157ps/1363 setup,\n-1ps/3 hold): the FPU "
                "dominates setup violations and owns the only hold\n"
                "violations, which come from asymmetric clock-gating "
                "aging.\n");
    return 0;
}
