/**
 * @file
 * Ablation — fuzzing-based vs formal trace generation (§6.3).
 *
 * Runs both engines over the ALU's violating pairs and a slice of the
 * FPU's, comparing success rate and effort. Fuzzing finds activating
 * traces for most observable faults quickly, but (a) cannot prove the
 * unreachable ones unreachable and (b) needs luck on faults with narrow
 * activation windows — the systematic-exploration argument of §3.3.
 */
#include <chrono>
#include <cstdio>

#include "bench/common.h"
#include "lift/fuzz_lifting.h"

namespace {

using namespace vega;
using Clock = std::chrono::steady_clock;

void
compare(const char *unit, const bench::AnalyzedModule &m, size_t max_pairs)
{
    auto pairs = bench::working_pairs(m);
    if (pairs.size() > max_pairs)
        pairs.resize(max_pairs);

    size_t formal_hits = 0, fuzz_hits = 0;
    uint64_t fuzz_cycles = 0, formal_conflicts = 0;
    double formal_secs = 0, fuzz_secs = 0;

    for (size_t pi = 0; pi < pairs.size(); ++pi) {
        lift::FailureModelSpec spec;
        spec.launch = pairs[pi].launch;
        spec.capture = pairs[pi].capture;
        spec.is_setup = pairs[pi].is_setup;
        spec.constant = lift::FaultConstant::One;
        auto shadow =
            lift::build_shadow_instrumentation(m.module.netlist, spec);

        auto t0 = Clock::now();
        formal::BmcOptions opts;
        opts.max_frames = 4;
        opts.conflict_budget = 400000;
        opts.assumes =
            lift::build_assumes(shadow.netlist, m.module.kind);
        opts.state_equalities = shadow.state_pairs;
        formal::BmcResult bmc =
            formal::check_cover(shadow.netlist, shadow.mismatch, opts);
        auto t1 = Clock::now();
        formal_secs += std::chrono::duration<double>(t1 - t0).count();
        formal_conflicts += bmc.conflicts;
        if (bmc.status == formal::BmcStatus::Covered)
            ++formal_hits;

        auto t2 = Clock::now();
        lift::FuzzConfig fcfg;
        fcfg.max_episodes = 1500;
        fcfg.seed = 99 + pi;
        lift::FuzzResult fz =
            lift::fuzz_cover(shadow, m.module.kind, fcfg);
        auto t3 = Clock::now();
        fuzz_secs += std::chrono::duration<double>(t3 - t2).count();
        fuzz_cycles += fz.cycles;
        if (fz.found)
            ++fuzz_hits;
    }

    std::printf("%-4s | %7zu | %12zu | %11.2fs | %9zu | %9.2fs | "
                "%lu cycles fuzzed\n",
                unit, pairs.size(), formal_hits, formal_secs, fuzz_hits,
                fuzz_secs, (unsigned long)fuzz_cycles);
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Ablation: formal vs fuzzing trace generation (C=1 "
                  "failure models)");
    std::printf("%-4s | #pairs | formal hits |  formal time | fuzz "
                "hits | fuzz time |\n",
                "Unit");

    bench::AnalyzedModule alu = bench::analyze(ModuleKind::Alu32);
    compare("ALU", alu, 8);
    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);
    compare("FPU", fpu, 10);

    std::printf("\nTakeaway: fuzzing covers many observable faults "
                "cheaply (the §6.3 hybrid is\nviable), but only the "
                "formal engine distinguishes 'not found' from 'cannot "
                "happen'\nand stays reliable on narrow activation "
                "windows.\n");
    return 0;
}
