/**
 * @file
 * Extension — the Vega workflow on a third functional unit.
 *
 * The paper evaluates the ALU and FPU and states the workflow applies
 * to other microarchitectures (§4). This bench runs the identical
 * pipeline on the RV32M multiply unit and prints the same rows Tables
 * 3–5 report, plus a Table-6-style detection check against its failing
 * netlists.
 */
#include <cstdio>

#include "bench/quality.h"
#include "rtl/mdu32.h"

int
main()
{
    using namespace vega;
    bench::banner("Extension: the Vega workflow on mdu32 (RV32M "
                  "multiply unit)");

    HwModule mdu = rtl::make_mdu32();
    AgingAnalysisConfig acfg;
    acfg.utilization = 0.985;
    acfg.max_trace = 4000;
    AgingAnalysisResult aging = run_aging_analysis(
        mdu, bench::timing_library(), minver_trace(), acfg);

    std::printf("Table-3 row:  setup %.0fps / %zu paths, hold %s, %zu "
                "unique pairs (fresh WNS %.0fps)\n",
                aging.sta.wns_setup, aging.sta.num_setup_violations,
                aging.sta.num_hold_violations == 0 ? "- / 0" : "!",
                aging.sta.pairs.size(), aging.fresh_sta.wns_setup);

    lift::LiftConfig lcfg;
    lcfg.bmc.max_frames = 4;
    lcfg.bmc.conflict_budget = 400000;
    auto pairs = aging.liftable_pairs();
    if (pairs.size() > 16 && !bench::full_mode())
        pairs.resize(16);
    lift::LiftResult lifted = lift::run_error_lifting(mdu, pairs, lcfg);

    double n = double(lifted.pairs.size());
    std::printf("Table-4 row:  S %.1f%% / UR %.1f%% / FF %.1f%% / FC "
                "%.1f%%  (%zu pairs)\n",
                100.0 * lifted.n_success / n,
                100.0 * lifted.n_unreachable / n,
                100.0 * lifted.n_timeout / n,
                100.0 * lifted.n_conversion_failed / n,
                lifted.pairs.size());
    std::printf("Table-5 row:  %zu test cases, %lu cycles per pass\n",
                lifted.suite().size(),
                (unsigned long)lifted.suite_cycles());

    // Table-6-style detection against the C = 0/1/R failing netlists.
    auto suite = lifted.suite();
    for (bench::FailureMode fm :
         {bench::FailureMode::Zero, bench::FailureMode::One,
          bench::FailureMode::Random}) {
        size_t count = 0, detected = 0;
        for (size_t pi = 0; pi < lifted.pairs.size(); ++pi) {
            const auto &pr = lifted.pairs[pi];
            if (pr.tests.empty())
                continue;
            ++count;
            lift::FailureModelSpec spec;
            spec.launch = pr.pair.launch;
            spec.capture = pr.pair.capture;
            spec.is_setup = pr.pair.is_setup;
            spec.constant = bench::to_constant(fm);
            lift::FailingNetlist failing =
                lift::build_failing_netlist(mdu.netlist, spec);
            if (bench::run_suite_against(suite, ModuleKind::Mdu32,
                                         failing.netlist,
                                         failing.has_random_input,
                                         7 + pi)
                    .detected)
                ++detected;
        }
        std::printf("Table-6 row:  FM=%s detected %zu / %zu failing "
                    "netlists\n",
                    bench::failure_mode_name(fm), detected, count);
    }

    std::printf("\nTakeaway: nothing in the workflow is ALU/FPU-"
                "specific — a new unit needs only a\nnetlist generator "
                "and the §3.3.5 instruction-construction mapping.\n");
    return 0;
}
