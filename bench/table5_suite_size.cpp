/**
 * @file
 * Table 5 — number of generated test cases and the CPU cycles one full
 * suite execution takes, with and without the initial-value mitigation.
 */
#include <cstdio>

#include "bench/common.h"

int
main()
{
    using namespace vega;
    bench::banner("Table 5: generated test cases and execution cycles");

    std::printf("%-5s | %-22s | %-22s |\n", "", "w/o mitigation",
                "w/ mitigation");
    std::printf("%-5s | %10s | %9s | %10s | %9s |\n", "Unit", "TestCases",
                "Cycles", "TestCases", "Cycles");

    for (ModuleKind kind : {ModuleKind::Alu32, ModuleKind::Fpu32}) {
        bench::AnalyzedModule m = bench::analyze(kind);
        lift::LiftResult plain = bench::lift_module(m, false);
        lift::LiftResult mit = bench::lift_module(m, true);
        std::printf("%-5s | %10zu | %9lu | %10zu | %9lu |\n",
                    kind == ModuleKind::Alu32 ? "ALU" : "FPU",
                    plain.suite().size(),
                    (unsigned long)plain.suite_cycles(),
                    mit.suite().size(), (unsigned long)mit.suite_cycles());
    }

    std::printf("\nPaper shape check (their Table 5: ALU 8/124 -> 8/134; "
                "FPU 42/685 -> 66/1202):\nsuites are compact — hundreds "
                "to a couple thousand cycles — so they can run at\n"
                "application runtime, e.g. every second; mitigation "
                "roughly doubles the FPU suite.\n");
    return 0;
}
