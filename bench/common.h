/**
 * @file
 * Shared scaffolding for the reproduction benches: one analyzed module
 * per process, paper-style scoping knobs, and small table printers.
 *
 * Scope control: the full FPU analysis yields hundreds of unique
 * violating endpoint pairs (our ripple-array datapath connects nearly
 * every operand register to every result register near-critically, so
 * pair deduplication is less sharp than on the paper's synthesized
 * FPnew). By default benches lift the worst `kFpuPairBudget` pairs —
 * matching the paper's FPU working-set size of 41 — and the environment
 * variable VEGA_FULL=1 lifts everything.
 */
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "rtl/alu32.h"
#include "rtl/fpu32.h"
#include "vega/workflow.h"

namespace vega::bench {

constexpr size_t kFpuPairBudget = 41;

inline bool
full_mode()
{
    const char *v = std::getenv("VEGA_FULL");
    return v && v[0] == '1';
}

inline const aging::AgingTimingLibrary &
timing_library()
{
    static const auto lib =
        aging::AgingTimingLibrary::build(aging::RdModelParams{});
    return lib;
}

/** A module with its Phase-1 analysis done. */
struct AnalyzedModule
{
    HwModule module;
    AgingAnalysisResult aging;
};

inline AnalyzedModule
analyze(ModuleKind kind)
{
    AnalyzedModule out;
    out.module =
        kind == ModuleKind::Alu32 ? rtl::make_alu32() : rtl::make_fpu32();
    AgingAnalysisConfig cfg;
    cfg.utilization = 0.985;
    cfg.max_trace = 4000;
    out.aging = run_aging_analysis(out.module, timing_library(),
                                   minver_trace(), cfg);
    return out;
}

/** Worst pairs, capped to the bench working set for the FPU. Hold
 *  violations are always kept: they are few and qualitatively distinct
 *  (handshake faults that stall the CPU). */
inline std::vector<sta::EndpointPair>
working_pairs(const AnalyzedModule &m)
{
    auto pairs = m.aging.liftable_pairs();
    if (m.module.kind != ModuleKind::Fpu32 || full_mode() ||
        pairs.size() <= kFpuPairBudget)
        return pairs;

    std::vector<sta::EndpointPair> out;
    for (const auto &p : pairs)
        if (!p.is_setup)
            out.push_back(p);
    for (const auto &p : pairs) {
        if (out.size() >= kFpuPairBudget)
            break;
        if (p.is_setup)
            out.push_back(p);
    }
    return out;
}

inline lift::LiftResult
lift_module(const AnalyzedModule &m, bool mitigation)
{
    lift::LiftConfig cfg;
    cfg.bmc.max_frames = 4;
    cfg.bmc.conflict_budget = 400000;
    cfg.mitigation = mitigation;
    return lift::run_error_lifting(m.module, working_pairs(m), cfg);
}

/**
 * Where a bench's JSON artifact lands. Smoke runs (CI) get their own
 * `BENCH_<stem>.smoke.json` so a `ctest -L bench-smoke` pass can never
 * clobber a pinned full-run `BENCH_<stem>.json` with noisy numbers.
 */
inline std::string
bench_json_path(const std::string &stem, bool smoke)
{
    return "BENCH_" + stem + (smoke ? ".smoke.json" : ".json");
}

/** Write @p json (newline-terminated) to the bench artifact path. */
inline void
write_bench_json(const std::string &stem, bool smoke,
                 const std::string &json)
{
    std::string path = bench_json_path(stem, smoke);
    if (FILE *f = std::fopen(path.c_str(), "w")) {
        std::fwrite(json.data(), 1, json.size(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("\nwrote %s\n", path.c_str());
    }
}

inline void
hr()
{
    std::printf("-----------------------------------------------------"
                "-----------------------\n");
}

inline void
banner(const std::string &title)
{
    hr();
    std::printf("%s\n", title.c_str());
    hr();
}

} // namespace vega::bench
