/**
 * @file
 * Table 6 — quality of the generated test cases, measured by their
 * ability to detect the modeled failures when the whole suite runs on
 * the CPU with a failing netlist as the functional unit.
 *
 * Per failure mode C in {0, 1, random}:
 *   Det. failures detectable by some test in the suite
 *   B    failures caught by a test that runs *before* their own test
 *   L    failures missed by their own test but caught by a later one
 *   S    failures that manifest as a CPU stall (handshake corruption)
 */
#include <cstdio>

#include "bench/quality.h"

namespace {

using namespace vega;

void
evaluate(const char *unit, const bench::AnalyzedModule &m,
         const lift::LiftResult &lifted, bool mitigated)
{
    auto suite = lifted.suite();
    if (suite.empty()) {
        std::printf("%-4s: no tests generated\n", unit);
        return;
    }

    for (bench::FailureMode fm :
         {bench::FailureMode::Zero, bench::FailureMode::One,
          bench::FailureMode::Random}) {
        size_t n = 0, detected = 0, before = 0, later = 0, stall = 0;
        for (size_t pi = 0; pi < lifted.pairs.size(); ++pi) {
            const lift::PairResult &pr = lifted.pairs[pi];
            if (pr.tests.empty())
                continue; // only netlists tied to generated tests
            ++n;

            lift::FailureModelSpec spec;
            spec.launch = pr.pair.launch;
            spec.capture = pr.pair.capture;
            spec.is_setup = pr.pair.is_setup;
            spec.constant = bench::to_constant(fm);
            lift::FailingNetlist failing =
                lift::build_failing_netlist(m.module.netlist, spec);

            bench::SuiteOutcome out = bench::run_suite_against(
                suite, m.module.kind, failing.netlist,
                failing.has_random_input, 17 + pi);
            if (!out.detected)
                continue;
            ++detected;
            if (out.kind == runtime::Detection::Stall)
                ++stall;
            // Where do this pair's own tests sit in the suite?
            size_t own_first = SIZE_MAX, own_last = 0;
            for (size_t s = 0; s < suite.size(); ++s) {
                if (suite[s].pair_index == int(pi)) {
                    own_first = std::min(own_first, s);
                    own_last = std::max(own_last, s);
                }
            }
            if (out.position < own_first)
                ++before;
            else if (out.position > own_last)
                ++later;
        }
        double dn = double(n);
        std::printf("%-4s |  %s  | %5.1f | %5.1f | %5.1f | %5.1f |  "
                    "(%zu failing netlists)%s\n",
                    unit, bench::failure_mode_name(fm),
                    100.0 * detected / dn, 100.0 * before / dn,
                    100.0 * later / dn, 100.0 * stall / dn, n,
                    mitigated ? "" : "");
    }
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Table 6: quality of generated tests vs failing "
                  "netlists (percent of failures)");
    std::printf("%-4s | FM | %5s | %5s | %5s | %5s |\n", "Unit", "Det.",
                "B", "L", "S");

    for (bool mitigated : {false, true}) {
        std::printf("--- %s mitigation ---\n",
                    mitigated ? "with" : "without");
        for (ModuleKind kind : {ModuleKind::Alu32, ModuleKind::Fpu32}) {
            bench::AnalyzedModule m = bench::analyze(kind);
            lift::LiftResult lifted = bench::lift_module(m, mitigated);
            evaluate(kind == ModuleKind::Alu32 ? "ALU" : "FPU", m, lifted,
                     mitigated);
        }
    }

    std::printf("\nPaper shape check (their Table 6): detection is at or "
                "near 100%%, many failures\nare caught by a test that "
                "runs before their own (B), occasional misses are\n"
                "picked up later (L), and a small number of handshake "
                "faults stall the CPU (S).\n");
    return 0;
}
