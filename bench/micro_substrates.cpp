/**
 * @file
 * Substrate microbenchmarks (google-benchmark): gate-level simulation
 * throughput, SP profiling, STA, SAT solving, BMC, ISS execution, and
 * failure-model instrumentation. These are not paper results; they
 * document what the reproduction's building blocks cost.
 */
#include <benchmark/benchmark.h>

#include "bench/common.h"
#include "cpu/netlist_backend.h"
#include "formal/bmc.h"
#include "lift/failure_model.h"
#include "sat/solver.h"
#include "workloads/kernels.h"

namespace {

using namespace vega;

HwModule &
alu()
{
    static HwModule m = rtl::make_alu32();
    return m;
}

HwModule &
fpu()
{
    static HwModule m = rtl::make_fpu32();
    return m;
}

void
BM_SimAluCycle(benchmark::State &state)
{
    Simulator sim(alu().netlist);
    sim.set_bus("a", BitVec(32, 0x12345678));
    sim.set_bus("b", BitVec(32, 0x9abcdef0));
    sim.set_bus("op", BitVec(4, 0));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() * alu().netlist.num_cells());
}
BENCHMARK(BM_SimAluCycle);

void
BM_SimFpuCycle(benchmark::State &state)
{
    Simulator sim(fpu().netlist);
    sim.set_bus("a", BitVec(32, 0x3f800000));
    sim.set_bus("b", BitVec(32, 0x40000000));
    sim.set_bus("op", BitVec(3, 0));
    sim.set_bus("valid", BitVec(1, 1));
    sim.set_bus("clear", BitVec(1, 0));
    for (auto _ : state)
        sim.step();
    state.SetItemsProcessed(state.iterations() * fpu().netlist.num_cells());
}
BENCHMARK(BM_SimFpuCycle);

void
BM_StaAlu(benchmark::State &state)
{
    SpProfile neutral(alu().netlist.num_cells());
    auto timing = sta::compute_aged_timing(alu(), neutral,
                                           bench::timing_library(), 10.0);
    for (auto _ : state)
        benchmark::DoNotOptimize(sta::run_sta(alu(), timing, 1000));
}
BENCHMARK(BM_StaAlu);

void
BM_AgedTimingFpu(benchmark::State &state)
{
    SpProfile neutral(fpu().netlist.num_cells());
    for (auto _ : state)
        benchmark::DoNotOptimize(sta::compute_aged_timing(
            fpu(), neutral, bench::timing_library(), 10.0));
}
BENCHMARK(BM_AgedTimingFpu);

void
BM_SatPigeonhole(benchmark::State &state)
{
    for (auto _ : state) {
        sat::Solver s;
        const int P = 7, H = 6;
        std::vector<std::vector<sat::Var>> x(P, std::vector<sat::Var>(H));
        for (int p = 0; p < P; ++p)
            for (int h = 0; h < H; ++h)
                x[p][h] = s.new_var();
        for (int p = 0; p < P; ++p) {
            std::vector<sat::Lit> clause;
            for (int h = 0; h < H; ++h)
                clause.emplace_back(x[p][h], false);
            s.add_clause(clause);
        }
        for (int h = 0; h < H; ++h)
            for (int p1 = 0; p1 < P; ++p1)
                for (int p2 = p1 + 1; p2 < P; ++p2)
                    s.add_clause(sat::Lit(x[p1][h], true),
                                 sat::Lit(x[p2][h], true));
        benchmark::DoNotOptimize(s.solve());
    }
}
BENCHMARK(BM_SatPigeonhole);

void
BM_BmcAluShadowCover(benchmark::State &state)
{
    auto dffs = alu().netlist.dffs();
    lift::FailureModelSpec spec;
    spec.launch = dffs[0];
    spec.capture = dffs.back();
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    for (auto _ : state) {
        auto shadow =
            lift::build_shadow_instrumentation(alu().netlist, spec);
        formal::BmcOptions opts;
        opts.max_frames = 4;
        opts.state_equalities = shadow.state_pairs;
        benchmark::DoNotOptimize(formal::check_cover(
            shadow.netlist, shadow.mismatch, opts));
    }
}
BENCHMARK(BM_BmcAluShadowCover);

void
BM_IssMinver(benchmark::State &state)
{
    const auto &kernel = workloads::embench_suite()[0];
    for (auto _ : state) {
        cpu::Iss iss(kernel.program);
        benchmark::DoNotOptimize(iss.run());
        state.counters["cycles"] = double(iss.cycles());
    }
}
BENCHMARK(BM_IssMinver);

void
BM_NetlistBackendAluOp(benchmark::State &state)
{
    cpu::NetlistBackend backend(ModuleKind::Alu32, alu().netlist);
    uint32_t a = 1;
    for (auto _ : state) {
        auto r = backend.alu(0, a, 3);
        benchmark::DoNotOptimize(r);
        a = r.value;
    }
}
BENCHMARK(BM_NetlistBackendAluOp);

void
BM_FailingNetlistBuildFpu(benchmark::State &state)
{
    auto dffs = fpu().netlist.dffs();
    lift::FailureModelSpec spec;
    spec.launch = dffs[2];
    spec.capture = dffs.back();
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::Zero;
    for (auto _ : state)
        benchmark::DoNotOptimize(
            lift::build_failing_netlist(fpu().netlist, spec));
}
BENCHMARK(BM_FailingNetlistBuildFpu);

} // namespace

BENCHMARK_MAIN();
