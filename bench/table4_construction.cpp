/**
 * @file
 * Table 4 — result of test case construction: the fraction of unique
 * endpoint pairs that yield a test case (S), are formally proven unable
 * to err (UR), time out in the formal tool (FF), or cover but cannot be
 * converted into an observable software test (FC) — with and without
 * the §3.3.4 initial-value mitigation.
 */
#include <cstdio>

#include "bench/common.h"

namespace {

void
row(const char *unit, const vega::lift::LiftResult &r)
{
    double n = double(r.pairs.size());
    std::printf("%-5s | %5.1f | %5.1f | %5.1f | %5.1f |  (%zu pairs)\n",
                unit, 100.0 * r.n_success / n, 100.0 * r.n_unreachable / n,
                100.0 * r.n_timeout / n,
                100.0 * r.n_conversion_failed / n, r.pairs.size());
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Table 4: test case construction outcomes (percent of "
                  "unique endpoint pairs)");

    bench::AnalyzedModule alu = bench::analyze(ModuleKind::Alu32);
    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);

    std::printf("without mitigation (C in {0,1}):\n");
    std::printf("%-5s | %5s | %5s | %5s | %5s |\n", "Unit", "S", "UR",
                "FF", "FC");
    lift::LiftResult alu_plain = bench::lift_module(alu, false);
    lift::LiftResult fpu_plain = bench::lift_module(fpu, false);
    row("ALU", alu_plain);
    row("FPU", fpu_plain);

    std::printf("\nwith mitigation (C in {0,1} x rising/falling edge):\n");
    std::printf("%-5s | %5s | %5s | %5s | %5s |\n", "Unit", "S", "UR",
                "FF", "FC");
    lift::LiftResult alu_mit = bench::lift_module(alu, true);
    lift::LiftResult fpu_mit = bench::lift_module(fpu, true);
    row("ALU", alu_mit);
    row("FPU", fpu_mit);

    std::printf(
        "\nPaper shape check (their Table 4: ALU 66.7 S / 33.3 UR; FPU "
        "51.2 S / 43.9 UR /\n4.9 FF, plus 7.3 FC with mitigation): our "
        "datapath-dominated modules make nearly\nevery modeled fault "
        "software-observable, so S dominates and UR/FF are rare —\nsee "
        "EXPERIMENTS.md for the discussion of this divergence. FC "
        "appears on the\ntag/handshake hold pairs exactly as the paper "
        "describes for flag-only outputs.\n");
    return 0;
}
