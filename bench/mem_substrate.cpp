/**
 * @file
 * Memory-path substrate study: ages the 16-row SRAM address decoder
 * under the crc32 data-memory workload, lifts every violating pair
 * through the decoder-aware pass, and measures what the march-test
 * escalation ladder buys over random read/write traffic.
 *
 * Reported (all deterministic — no wall-clock fields):
 *  - lift coverage: Success / Unreachable / ConversionFailed split and
 *    the fault-class histogram of the lifted (victim, aggressor) pairs;
 *  - detection latency: ISS cycles from dispatch to the WrongAddress
 *    flag, per lifted class, under the minimized suite;
 *  - suite economy: cycle cost of the greedy set-cover suite vs the
 *    random-rung baseline, with each side's pair coverage;
 *  - campaign slice: detection/escape totals of a fixed-seed Monte
 *    Carlo campaign over the lifted working set.
 *
 * Results land in BENCH_mem.json (or the .smoke.json sibling under
 * --smoke, which never clobbers the pinned file).
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "campaign/campaign.h"
#include "mem/decoder_lift.h"
#include "mem/mem_backend.h"
#include "rtl/memdec.h"
#include "vega/aging_analysis.h"
#include "vega/workflow.h"
#include "workloads/march.h"

using namespace vega;

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    bench::banner(std::string("Memory-path substrate: decoder aging -> "
                              "march detection") +
                  (smoke ? " [smoke]" : ""));

    HwModule module = rtl::make_memdec16();
    AgingAnalysisConfig acfg;
    acfg.utilization = 0.99;
    acfg.max_trace = smoke ? 1500 : 4000;
    AgingAnalysisResult aging = run_aging_analysis(
        module, bench::timing_library(), mem_workload_trace(), acfg);
    auto pairs = aging.liftable_pairs();
    std::printf("aged 10y: wns=%.1fps, %zu liftable pairs\n",
                aging.sta.wns_setup, pairs.size());

    mem::MemLiftConfig mcfg;
    if (smoke)
        mcfg.max_pairs = 6;
    mem::MemLiftResult lift =
        mem::run_decoder_lifting(module, pairs, mcfg);
    std::printf("lift: %zu success, %zu unreachable, %zu failed "
                "(of %zu analyzed)\n",
                lift.n_success, lift.n_unreachable,
                lift.n_conversion_failed, lift.pairs.size());

    // Fault-class and escalation histograms over the lifted pairs.
    size_t kind_count[5] = {0, 0, 0, 0, 0};
    size_t esc_random = 0, esc_mats = 0, esc_cminus = 0;
    for (const auto &pr : lift.pairs) {
        if (pr.status != ::vega::lift::PairStatus::Success)
            continue;
        kind_count[size_t(pr.cls.kind)]++;
        if (pr.escalation == "random")
            ++esc_random;
        else if (pr.escalation == "mats+")
            ++esc_mats;
        else
            ++esc_cminus;
    }
    std::printf("classes: wrong_row_read=%zu wrong_row_write=%zu "
                "multi_select=%zu no_select=%zu\n",
                kind_count[1], kind_count[2], kind_count[3],
                kind_count[4]);

    // Suite economy: minimized set-cover suite vs the random rung.
    uint64_t suite_cycles = 0, random_cycles = 0;
    for (const auto &tc : lift.suite)
        suite_cycles += tc.cycle_cost;
    size_t random_covered = 0, suite_covered = 0, successes = 0;
    std::vector<runtime::TestCase> random_rung;
    for (const auto &tc : lift.candidates)
        if (tc.config == "random") {
            random_rung.push_back(tc);
            random_cycles += tc.cycle_cost;
        }
    uint64_t latency_sum = 0;
    for (const auto &pr : lift.pairs) {
        if (pr.status != ::vega::lift::PairStatus::Success)
            continue;
        ++successes;
        bool rnd = false;
        for (const auto &tc : random_rung) {
            mem::MarchEngine e(pr.cls);
            rnd |= e.run(tc) != runtime::Detection::None;
        }
        random_covered += rnd ? 1 : 0;
        // Detection latency under the minimized suite: ISS cycles from
        // dispatch of the first test to the WrongAddress flag.
        mem::MarchEngine engine(pr.cls);
        bool det = false;
        for (const auto &tc : lift.suite)
            if (engine.run(tc) != runtime::Detection::None) {
                det = true;
                break;
            }
        if (det) {
            ++suite_covered;
            latency_sum += engine.cycles();
        }
    }
    double mean_latency =
        suite_covered ? double(latency_sum) / double(suite_covered) : 0.0;
    std::printf("suite: %zu tests / %llu cycles cover %zu/%zu; random "
                "rung: %zu tests / %llu cycles cover %zu/%zu\n",
                lift.suite.size(), (unsigned long long)suite_cycles,
                suite_covered, successes, random_rung.size(),
                (unsigned long long)random_cycles, random_covered,
                successes);
    std::printf("mean detection latency: %.0f ISS cycles\n",
                mean_latency);

    // Campaign slice over the lifted working set (fixed seed; the
    // report is deterministic at any thread count).
    std::vector<sta::EndpointPair> working;
    for (const auto &pr : lift.pairs)
        if (pr.status == ::vega::lift::PairStatus::Success)
            working.push_back(pr.pair);
    campaign::CampaignConfig ccfg;
    ccfg.seed = 7;
    ccfg.num_jobs = smoke ? 64 : 256;
    ccfg.threads = 2;
    campaign::CampaignReport rep =
        campaign::run_campaign(module, working, lift.suite, ccfg);
    std::printf("campaign: %llu detected (%llu wrong-address), %llu "
                "escapes of %llu corrupting\n",
                (unsigned long long)rep.detected,
                (unsigned long long)rep.detections.wrong_address,
                (unsigned long long)rep.escapes,
                (unsigned long long)rep.corrupting);

    char buf[1024];
    std::snprintf(
        buf, sizeof buf,
        "{\"mem_substrate\":{\"smoke\":%s,\"liftable_pairs\":%zu,"
        "\"lift\":{\"analyzed\":%zu,\"success\":%zu,\"unreachable\":%zu,"
        "\"conversion_failed\":%zu},"
        "\"classes\":{\"wrong_row_read\":%zu,\"wrong_row_write\":%zu,"
        "\"multi_select\":%zu,\"no_select\":%zu},"
        "\"escalation\":{\"random\":%zu,\"mats_plus\":%zu,"
        "\"march_cminus\":%zu},"
        "\"suite\":{\"tests\":%zu,\"cycles\":%llu,\"covered\":%zu,"
        "\"mean_detection_latency_cycles\":%.0f},"
        "\"random_baseline\":{\"tests\":%zu,\"cycles\":%llu,"
        "\"covered\":%zu},"
        "\"campaign\":{\"jobs\":%zu,\"detected\":%llu,"
        "\"wrong_address\":%llu,\"escapes\":%llu,\"corrupting\":%llu}}}",
        smoke ? "true" : "false", pairs.size(), lift.pairs.size(),
        lift.n_success, lift.n_unreachable, lift.n_conversion_failed,
        kind_count[1], kind_count[2], kind_count[3], kind_count[4],
        esc_random, esc_mats, esc_cminus, lift.suite.size(),
        (unsigned long long)suite_cycles, suite_covered, mean_latency,
        random_rung.size(), (unsigned long long)random_cycles,
        random_covered, ccfg.num_jobs,
        (unsigned long long)rep.detected,
        (unsigned long long)rep.detections.wrong_address,
        (unsigned long long)rep.escapes,
        (unsigned long long)rep.corrupting);
    bench::write_bench_json("mem", smoke, std::string(buf));

    return lift.n_success > 0 && suite_covered == successes ? 0 : 1;
}
