/**
 * @file
 * Ablation — the clock-network aging analysis (§3.2.2's "Vega also
 * analyzes the effect of aging on the clock distribution network").
 *
 * Reruns the FPU's hold analysis with the clock tree's aging disabled
 * (every buffer treated as free-running) to show the hold violations
 * come specifically from asymmetric clock-gating stress: without the
 * analysis, the aged design looks hold-clean and the three real
 * violations would be missed.
 */
#include <cstdio>

#include "bench/common.h"
#include "sta/clock_analysis.h"

int
main()
{
    using namespace vega;
    bench::banner("Ablation: clock-tree aging analysis on/off (FPU hold "
                  "checks, 10 years)");

    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);

    // With the analysis (the default path).
    const sta::StaResult &with = fpu.aging.sta;

    // Without: force every clock buffer to the free-running SP before
    // re-deriving clock arrivals.
    HwModule neutral_clock = rtl::make_fpu32();
    neutral_clock.netlist.set_timing_scale(
        fpu.module.netlist.timing_scale());
    for (uint32_t b = 0; b < neutral_clock.clock.size(); ++b)
        neutral_clock.clock.buffer_mut(b).sp = 0.5;
    sta::AgedTiming timing = sta::compute_aged_timing(
        neutral_clock, fpu.aging.profile, bench::timing_library(), 10.0);
    sta::StaResult without = sta::run_sta(neutral_clock, timing);

    std::printf("%-34s | %10s | %10s |\n", "", "hold WNS", "#hold viol");
    std::printf("%-34s | %8.2fps | %10zu |\n",
                "with clock-tree aging analysis",
                with.wns_hold < 0 ? with.wns_hold : with.wns_hold,
                with.num_hold_violations);
    std::printf("%-34s | %8.2fps | %10zu |\n",
                "without (buffers assumed SP=0.5)", without.wns_hold,
                without.num_hold_violations);

    double skew_with = sta::worst_skew(sta::analyze_clock_tree(
        fpu.module.clock, bench::timing_library(), 10.0));
    double skew_without = sta::worst_skew(sta::analyze_clock_tree(
        neutral_clock.clock, bench::timing_library(), 10.0));
    std::printf("\nworst aged clock spread: %.2fps (gated) vs %.2fps "
                "(assumed free-running)\n",
                skew_with, skew_without);
    std::printf("\nTakeaway: hold violations exist only because rarely-"
                "enabled clock-gated regions\nage faster than the "
                "always-on domain — dropping the clock analysis hides "
                "them.\n");
    return 0;
}
