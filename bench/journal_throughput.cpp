/**
 * @file
 * Campaign-journal throughput: checksummed append records/sec across
 * group-commit sizes, verify-read records/sec, and the write
 * amplification the v2 append-only protocol eliminated.
 *
 * The v1 journal rewrote the whole file through write-temp-then-rename
 * on every group commit — O(n^2) bytes over a campaign. v2 appends
 * checksummed lines and pins the file with a rolling-CRC trailer, so
 * bytes written is O(n) at any flush cadence. The bench reports both
 * the measured v2 bytes and the modeled v1 bytes for the same record
 * stream, plus the raw CRC32C slice-by-8 rate that bounds the
 * checksumming overhead. Results land in BENCH_journal.json (or the
 * .smoke.json sibling under --smoke, which never clobbers the pinned
 * file).
 */
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/common.h"
#include "campaign/journal.h"
#include "common/checksum.h"

using namespace vega;
using namespace vega::campaign;

namespace {

double
seconds_since(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

JournalHeader
bench_header(uint64_t num_jobs)
{
    JournalHeader h;
    h.module = "alu32";
    h.seed = 0x5eed;
    h.num_jobs = num_jobs;
    h.num_pairs = 8;
    h.num_constants = 2;
    h.num_policies = 3;
    h.max_slots = 12;
    h.suite_size = 24;
    h.probability = 0.5;
    return h;
}

/** Deterministic synthetic record stream shaped like real results. */
JobResult
synthetic_result(uint64_t id)
{
    JobResult r;
    r.id = id;
    r.pair_index = size_t(id % 8);
    r.constant = (id & 1) ? lift::FaultConstant::One
                          : lift::FaultConstant::Zero;
    r.policy = runtime::SchedulePolicy::Sequential;
    r.detected = id % 4 != 3;
    r.kind = r.detected ? runtime::Detection::Mismatch
                        : runtime::Detection::None;
    r.slots_to_detect = uint32_t(1 + id % 12);
    r.tests_dispatched = uint32_t(3 + id % 24);
    r.sim_cycles = 4000 + 500 * (id % 5);
    r.corrupts_workload = id % 3 != 2;
    r.escape = false;
    r.attempts = 1;
    return r;
}

struct FlushResult
{
    size_t flush_every = 0;
    double append_per_sec = 0;
    uint64_t bytes_written = 0;
    double modeled_v1_bytes = 0;
    double amplification = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        if (!std::strcmp(argv[i], "--smoke"))
            smoke = true;

    const uint64_t n = smoke ? 20000 : 200000;
    const std::string path = "bench_journal.tmp.journal";

    bench::banner(std::string("Journal throughput: checksummed appends "
                              "+ verified reads, ") +
                  std::to_string(n) + " records" + (smoke ? " [smoke]" : ""));

    // Raw CRC32C rate first: the integrity tax ceiling.
    std::string block(1 << 20, '\x5a');
    uint32_t sink = 0;
    auto c0 = std::chrono::steady_clock::now();
    // Odd count: the XOR sink keeps the real CRC visible in the log.
    const int crc_iters = smoke ? 65 : 513;
    for (int i = 0; i < crc_iters; ++i)
        sink ^= crc32c(block);
    double crc_secs = seconds_since(c0);
    double crc_mb_per_sec = crc_iters * 1.0 / (crc_secs > 0 ? crc_secs : 1e-9);
    std::printf("crc32c slice-by-8: %.0f MB/s (checksum 0x%08x)\n\n",
                crc_mb_per_sec, sink);

    std::printf("%12s | %14s | %12s | %14s | %10s\n", "flush_every",
                "appends/s", "v2 bytes", "v1 bytes (mod)", "amplif.");

    std::vector<FlushResult> rows;
    double verify_per_sec = 0;
    for (size_t flush_every : {size_t(1), size_t(16), size_t(256)}) {
        std::remove(path.c_str());
        JournalWriter w;
        Expected<void> opened =
            w.open(path, bench_header(n), nullptr, flush_every);
        if (!opened) {
            std::fprintf(stderr, "open failed: %s\n",
                         opened.error().to_string().c_str());
            return 1;
        }
        uint64_t header_bytes = w.bytes_written();

        auto t0 = std::chrono::steady_clock::now();
        for (uint64_t id = 0; id < n; ++id) {
            Expected<void> ok = w.record(synthetic_result(id));
            if (!ok) {
                std::fprintf(stderr, "record failed: %s\n",
                             ok.error().to_string().c_str());
                return 1;
            }
        }
        Expected<void> sealed = w.finalize();
        if (!sealed) {
            std::fprintf(stderr, "finalize failed: %s\n",
                         sealed.error().to_string().c_str());
            return 1;
        }
        double secs = seconds_since(t0);

        FlushResult r;
        r.flush_every = flush_every;
        r.append_per_sec = double(n) / (secs > 0 ? secs : 1e-9);
        r.bytes_written = w.bytes_written();
        // The v1 protocol rewrote header + all records so far on every
        // group commit: model it from the measured mean record size.
        double record_bytes =
            double(r.bytes_written - header_bytes) / double(n);
        double batches = double(n) / double(flush_every);
        r.modeled_v1_bytes =
            batches * double(header_bytes) +
            record_bytes * double(flush_every) * batches *
                (batches + 1) / 2.0;
        r.amplification = r.modeled_v1_bytes / double(r.bytes_written);
        std::printf("%12zu | %14.0f | %12llu | %14.3e | %9.1fx\n",
                    flush_every, r.append_per_sec,
                    (unsigned long long)r.bytes_written,
                    r.modeled_v1_bytes, r.amplification);
        rows.push_back(r);

        if (flush_every == 1) {
            // Verified read-back (per-record CRCs + rolling trailer).
            JournalReadOptions strict;
            strict.require_trailer = true;
            strict.allow_torn_tail = false;
            auto v0 = std::chrono::steady_clock::now();
            Expected<JournalState> st = read_journal(path, strict);
            double vsecs = seconds_since(v0);
            if (!st || st->completed.size() != n) {
                std::fprintf(stderr, "verify-read failed\n");
                return 1;
            }
            verify_per_sec = double(n) / (vsecs > 0 ? vsecs : 1e-9);
        }
    }
    std::remove(path.c_str());
    std::printf("\nverified read-back: %.0f records/s\n", verify_per_sec);

    std::string json = "{\"journal_throughput\":{\"smoke\":";
    json += smoke ? "true" : "false";
    char head[160];
    std::snprintf(head, sizeof head,
                  ",\"records\":%llu,\"crc32c_mb_per_sec\":%.0f,"
                  "\"verify_read_records_per_sec\":%.0f,"
                  "\"flush_modes\":[",
                  (unsigned long long)n, crc_mb_per_sec, verify_per_sec);
    json += head;
    for (size_t i = 0; i < rows.size(); ++i) {
        char buf[224];
        std::snprintf(buf, sizeof buf,
                      "%s{\"flush_every\":%zu,"
                      "\"append_records_per_sec\":%.0f,"
                      "\"bytes_written\":%llu,"
                      "\"modeled_v1_bytes\":%.0f,"
                      "\"write_amplification_v1\":%.1f}",
                      i ? "," : "", rows[i].flush_every,
                      rows[i].append_per_sec,
                      (unsigned long long)rows[i].bytes_written,
                      rows[i].modeled_v1_bytes, rows[i].amplification);
        json += buf;
    }
    json += "]}}";
    bench::write_bench_json("journal", smoke, json);
    return 0;
}
