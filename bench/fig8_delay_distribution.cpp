/**
 * @file
 * Figure 8 — distribution of aging-induced delay increase for the
 * logical cells of the FPU and ALU after ten years, using the minver SP
 * profile (the paper's representative workload).
 */
#include <cstdio>

#include "bench/common.h"

namespace {

void
histogram(const vega::bench::AnalyzedModule &m)
{
    using namespace vega;
    const auto &lib = bench::timing_library();
    const Netlist &nl = m.module.netlist;

    constexpr int kBuckets = 12;
    const double lo = 0.015, hi = 0.065;
    int counts[kBuckets] = {};
    size_t total = 0;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
        CellType type = nl.cell(c).type;
        if (type == CellType::Const0 || type == CellType::Const1)
            continue;
        double frac =
            lib.delay_factor_max(type, m.aging.profile.sp(c), 10.0) - 1.0;
        int b = int((frac - lo) / (hi - lo) * kBuckets);
        if (b < 0)
            b = 0;
        if (b >= kBuckets)
            b = kBuckets - 1;
        ++counts[b];
        ++total;
    }

    std::printf("%s (%zu cells):\n", nl.name().c_str(), total);
    for (int b = 0; b < kBuckets; ++b) {
        double bucket_lo = lo + (hi - lo) * b / kBuckets;
        double bucket_hi = lo + (hi - lo) * (b + 1) / kBuckets;
        double frac = 100.0 * counts[b] / double(total);
        std::printf("  %4.1f%%..%4.1f%% : %5.1f%% ", 100 * bucket_lo,
                    100 * bucket_hi, frac);
        for (int s = 0; s < int(frac / 2.0 + 0.5); ++s)
            std::printf("#");
        std::printf("\n");
    }
    std::printf("\n");
}

} // namespace

int
main()
{
    using namespace vega;
    bench::banner("Figure 8: distribution of 10-year delay increase "
                  "(minver SP profile)");

    bench::AnalyzedModule alu = bench::analyze(ModuleKind::Alu32);
    bench::AnalyzedModule fpu = bench::analyze(ModuleKind::Fpu32);
    histogram(alu);
    histogram(fpu);

    std::printf("Paper shape check: degradation is nonuniform, spanning "
                "~1.9%% (cells parked at '1')\nto ~6%% (cells parked at "
                "'0'), with mass at both extremes from idle gates.\n");
    return 0;
}
