#include "rtl/mdu32.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/assembler.h"
#include "cpu/mdu_ops.h"
#include "cpu/netlist_backend.h"
#include "sim/simulator.h"
#include "vega/workflow.h"

namespace vega::rtl {
namespace {

uint32_t
run_op(Simulator &sim, MduOp op, uint32_t a, uint32_t b)
{
    sim.reset();
    sim.set_bus("a", BitVec(32, a));
    sim.set_bus("b", BitVec(32, b));
    sim.set_bus("op", BitVec(2, uint64_t(op)));
    sim.step();
    sim.step();
    return uint32_t(sim.bus_value("r").to_u64());
}

class MduOpTest : public ::testing::TestWithParam<MduOp>
{
  protected:
    static HwModule &module()
    {
        static HwModule m = make_mdu32();
        return m;
    }
};

TEST_P(MduOpTest, MatchesGoldenOnRandomInputs)
{
    MduOp op = GetParam();
    Simulator sim(module().netlist);
    Rng rng(uint64_t(op) * 31 + 3);
    for (int i = 0; i < 60; ++i) {
        uint32_t a = uint32_t(rng.next()), b = uint32_t(rng.next());
        EXPECT_EQ(run_op(sim, op, a, b), mdu_compute(op, a, b))
            << mdu_op_name(op) << " a=" << a << " b=" << b;
    }
}

TEST_P(MduOpTest, MatchesGoldenOnCorners)
{
    MduOp op = GetParam();
    Simulator sim(module().netlist);
    const uint32_t corners[] = {0u,          1u,          0x7fffffffu,
                                0x80000000u, 0xffffffffu, 0x00010001u,
                                0xaaaaaaaau, 0x55555555u};
    for (uint32_t a : corners)
        for (uint32_t b : corners)
            EXPECT_EQ(run_op(sim, op, a, b), mdu_compute(op, a, b))
                << mdu_op_name(op) << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(AllOps, MduOpTest,
                         ::testing::Values(MduOp::Mul, MduOp::Mulh,
                                           MduOp::Mulhu),
                         [](const ::testing::TestParamInfo<MduOp> &info) {
                             return mdu_op_name(info.param);
                         });

TEST(Mdu32, IssBackendMatchesGolden)
{
    static HwModule m = make_mdu32();
    cpu::NetlistBackend backend(ModuleKind::Mdu32, m.netlist);

    cpu::Asm a;
    a.li(5, 0x12345678);
    a.li(6, 0x9abcdef0);
    a.mul(7, 5, 6);
    a.mulh(8, 5, 6);
    a.mulhu(9, 5, 6);
    a.halt();
    auto prog = a.finish();

    cpu::Iss golden(prog);
    golden.run();
    cpu::Iss hw(prog);
    hw.set_mdu_backend(&backend);
    ASSERT_EQ(hw.run(), cpu::Iss::Status::Halted);
    for (int r = 7; r <= 9; ++r)
        EXPECT_EQ(hw.reg(cpu::Reg(r)), golden.reg(cpu::Reg(r))) << r;
}

TEST(Mdu32, FullWorkflowGeneratesValidatedTests)
{
    // The whole point of the third module: the unchanged workflow runs
    // end to end on a different microarchitecture.
    HwModule mdu = make_mdu32();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    WorkflowConfig cfg;
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 3000;
    cfg.lift.max_pairs = 4;
    cfg.lift.bmc.max_frames = 4;

    WorkflowResult r = run_workflow(mdu, lib, minver_trace(), cfg);
    EXPECT_GE(r.aging.fresh_sta.wns_setup, 0.0);
    EXPECT_LT(r.aging.sta.wns_setup, 0.0);
    ASSERT_FALSE(r.suite.empty());

    // Tests pass on healthy hardware and are all mdu blocks.
    runtime::GoldenEngine engine;
    runtime::AgingLibrary library(r.suite, {});
    EXPECT_EQ(library.run_all(engine), runtime::Detection::None);
    for (const auto &t : r.suite)
        EXPECT_EQ(t.module, ModuleKind::Mdu32);
}

TEST(Mdu32, MinverTraceContainsMduOps)
{
    size_t mdu_ops = 0;
    for (const auto &e : minver_trace())
        if (e.unit == ModuleKind::Mdu32)
            ++mdu_ops;
    // minver's checksum mixing uses mul.
    EXPECT_GT(mdu_ops, 10u);
}

} // namespace
} // namespace vega::rtl
