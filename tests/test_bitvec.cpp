#include "common/bitvec.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace vega {
namespace {

TEST(BitVec, DefaultIsZero)
{
    BitVec v(70);
    EXPECT_EQ(v.width(), 70u);
    for (size_t i = 0; i < 70; ++i)
        EXPECT_FALSE(v.get(i));
    EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, FromValueMasksToWidth)
{
    BitVec v(4, 0xff);
    EXPECT_EQ(v.to_u64(), 0xfu);
    EXPECT_EQ(v.popcount(), 4u);
}

TEST(BitVec, SetGetRoundTrip)
{
    BitVec v(130);
    v.set(0, true);
    v.set(64, true);
    v.set(129, true);
    EXPECT_TRUE(v.get(0));
    EXPECT_TRUE(v.get(64));
    EXPECT_TRUE(v.get(129));
    EXPECT_FALSE(v.get(63));
    EXPECT_EQ(v.popcount(), 3u);
    v.set(64, false);
    EXPECT_FALSE(v.get(64));
}

TEST(BitVec, BinaryStringRoundTrip)
{
    BitVec v = BitVec::from_binary("0b1011");
    EXPECT_EQ(v.width(), 4u);
    EXPECT_EQ(v.to_u64(), 0xbu);
    EXPECT_EQ(v.to_binary(), "1011");

    BitVec w = BitVec::from_binary("01");
    EXPECT_EQ(w.to_u64(), 1u);
}

TEST(BitVec, FromBinaryRejectsBadDigit)
{
    EXPECT_THROW(BitVec::from_binary("10x1"), std::invalid_argument);
}

TEST(BitVec, SliceAndSplice)
{
    BitVec v(16, 0xabcd);
    BitVec lo = v.slice(0, 8);
    BitVec hi = v.slice(8, 8);
    EXPECT_EQ(lo.to_u64(), 0xcdu);
    EXPECT_EQ(hi.to_u64(), 0xabu);

    BitVec w(16);
    w.splice(0, hi);
    w.splice(8, lo);
    EXPECT_EQ(w.to_u64(), 0xcdabu);
}

TEST(BitVec, EqualityIncludesWidth)
{
    EXPECT_EQ(BitVec(8, 5), BitVec(8, 5));
    EXPECT_NE(BitVec(8, 5), BitVec(9, 5));
    EXPECT_NE(BitVec(8, 5), BitVec(8, 6));
}

TEST(BitVec, SliceAcrossWordBoundary)
{
    Rng rng(7);
    BitVec v(128);
    for (size_t i = 0; i < 128; ++i)
        v.set(i, rng.chance(0.5));
    BitVec s = v.slice(60, 10);
    for (size_t i = 0; i < 10; ++i)
        EXPECT_EQ(s.get(i), v.get(60 + i));
}

} // namespace
} // namespace vega
