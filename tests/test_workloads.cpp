#include "workloads/kernels.h"

#include <gtest/gtest.h>

#include "cpu/iss.h"
#include "cpu/netlist_backend.h"
#include "rtl/fpu32.h"

namespace vega::workloads {
namespace {

class KernelTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(KernelTest, ChecksumMatchesMirror)
{
    const Kernel &k = embench_suite()[GetParam()];
    cpu::Iss iss(k.program);
    ASSERT_EQ(iss.run(), cpu::Iss::Status::Halted) << k.name;
    EXPECT_EQ(iss.read_u32(kChecksumAddr), k.expected_checksum) << k.name;
}

TEST_P(KernelTest, DeterministicAcrossRuns)
{
    const Kernel &k = embench_suite()[GetParam()];
    cpu::Iss a(k.program), b(k.program);
    a.run();
    b.run();
    EXPECT_EQ(a.read_u32(kChecksumAddr), b.read_u32(kChecksumAddr));
    EXPECT_EQ(a.cycles(), b.cycles());
}

TEST_P(KernelTest, RunsLongEnoughToProfile)
{
    const Kernel &k = embench_suite()[GetParam()];
    cpu::Iss iss(k.program);
    iss.run();
    EXPECT_GT(iss.cycles(), 100u) << k.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, KernelTest, ::testing::Range(size_t(0), size_t(8)),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return embench_suite()[info.param].name;
    });

TEST(Workloads, SuiteHasEightKernelsMinverFirst)
{
    const auto &suite = embench_suite();
    ASSERT_EQ(suite.size(), 8u);
    EXPECT_EQ(suite[0].name, "minver");
}

TEST(Workloads, MinverExercisesTheFpu)
{
    cpu::IssConfig cfg;
    cfg.record_fu_trace = true;
    cpu::Iss iss(make_minver().program, cfg);
    iss.run();
    size_t fpu_ops = 0;
    for (const auto &e : iss.fu_trace())
        fpu_ops += e.unit == ModuleKind::Fpu32 ? 1 : 0;
    EXPECT_GT(fpu_ops, 50u);
}

TEST(Workloads, FpKernelsMatchOnGateLevelFpu)
{
    // End-to-end cross-check: the FP kernels produce identical checksums
    // when every FPU op runs through the gate-level netlist.
    static HwModule m = rtl::make_fpu32();
    for (const char *name : {"minver", "nbody", "st"}) {
        const Kernel *k = nullptr;
        for (const auto &kernel : embench_suite())
            if (kernel.name == name)
                k = &kernel;
        ASSERT_NE(k, nullptr);
        cpu::NetlistBackend backend(ModuleKind::Fpu32, m.netlist);
        cpu::Iss iss(k->program);
        iss.set_fpu_backend(&backend);
        ASSERT_EQ(iss.run(), cpu::Iss::Status::Halted) << name;
        EXPECT_EQ(iss.read_u32(kChecksumAddr), k->expected_checksum)
            << name;
        EXPECT_EQ(backend.tag_mismatches(), 0u) << name;
    }
}

} // namespace
} // namespace vega::workloads
