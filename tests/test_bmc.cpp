#include "formal/bmc.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "rtl/blocks.h"
#include "sim/simulator.h"

namespace vega::formal {
namespace {

/** 3-bit counter; target fires when the count reaches @p goal. */
Netlist
make_counter(unsigned goal, NetId *target_out)
{
    Netlist nl("counter");
    Builder b(nl);
    // count <= count + 1 every cycle.
    std::vector<NetId> q_nets;
    for (int i = 0; i < 3; ++i)
        q_nets.push_back(nl.new_net("q" + std::to_string(i)));
    NetId carry = b.const1();
    for (int i = 0; i < 3; ++i) {
        NetId d = b.xor_(q_nets[i], carry);
        carry = b.and_(q_nets[i], carry);
        nl.add_dff("ff" + std::to_string(i), d, q_nets[i], false);
    }
    // target = (count == goal)
    std::vector<NetId> bits;
    for (int i = 0; i < 3; ++i)
        bits.push_back((goal >> i) & 1 ? q_nets[i] : b.not_(q_nets[i]));
    NetId target = b.and_n(bits);
    nl.add_output_bus("count", {q_nets[0], q_nets[1], q_nets[2]});
    nl.add_output_bus("hit", {target});
    *target_out = target;
    return nl;
}

TEST(Bmc, CounterReachesValueAtExactDepth)
{
    // From reset (0), count == 3 first holds in frame 4 (values 0,1,2,3).
    NetId target;
    Netlist nl = make_counter(3, &target);
    BmcOptions opts;
    opts.max_frames = 8;
    BmcResult r = check_cover(nl, target, opts);
    ASSERT_EQ(r.status, BmcStatus::Covered);
    EXPECT_EQ(r.frames, 4);
    // The trace's recorded output bus confirms the hit in its last cycle.
    EXPECT_EQ(r.trace.at("hit", r.frames - 1).to_u64(), 1u);
    EXPECT_EQ(r.trace.at("count", r.frames - 1).to_u64(), 3u);
}

TEST(Bmc, BoundTooShallowTimesOutIntoUnreachable)
{
    // count == 5 needs 6 frames; with max_frames = 3 the reset-bounded
    // search fails but the free-state check finds it reachable from some
    // state, so the bounded-exhaustion fallback reports unreachable with
    // proven_by_induction = false.
    NetId target;
    Netlist nl = make_counter(5, &target);
    BmcOptions opts;
    opts.max_frames = 3;
    BmcResult r = check_cover(nl, target, opts);
    EXPECT_EQ(r.status, BmcStatus::Unreachable);
    EXPECT_FALSE(r.proven_by_induction);
}

TEST(Bmc, ImpossibleCoverProvenUnreachable)
{
    // target = q & !q is structurally false: the free-state check proves
    // it, yielding a by-induction unreachability verdict.
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q = b.dff(d[0]);
    NetId target = b.and_(q, b.not_(q));
    nl.add_output_bus("o", {target});

    BmcOptions opts;
    opts.max_frames = 4;
    BmcResult r = check_cover(nl, target, opts);
    EXPECT_EQ(r.status, BmcStatus::Unreachable);
    EXPECT_TRUE(r.proven_by_induction);
}

TEST(Bmc, AssumesConstrainInputs)
{
    // target = !a; with assume(a) it can never fire.
    Netlist nl("t");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 1);
    NetId q = b.dff(a[0]);
    NetId target = b.not_(q);
    nl.add_output_bus("o", {q});

    // Unconstrained: trivially coverable.
    {
        BmcOptions opts;
        opts.max_frames = 3;
        BmcResult r = check_cover(nl, target, opts);
        EXPECT_EQ(r.status, BmcStatus::Covered);
    }
    // Assumed a == 1 every cycle: q is 1 from frame 1 on; frame 0 has
    // the reset value 0, so the cover still fires at frame 1... unless
    // the reset value already blocks it. q resets to 0 => target = 1 at
    // frame 0. Use init = 1 to close that hole.
    Netlist nl2("t2");
    Builder b2(nl2);
    auto a2 = nl2.add_input_bus("a", 1);
    NetId q2 = nl2.new_net("q2");
    nl2.add_dff("ff", a2[0], q2, /*init=*/true);
    NetId target2 = b2.not_(q2);
    nl2.add_output_bus("o", {q2});
    {
        BmcOptions opts;
        opts.max_frames = 4;
        opts.assumes = {a2[0]};
        BmcResult r = check_cover(nl2, target2, opts);
        EXPECT_EQ(r.status, BmcStatus::Unreachable);
    }
}

TEST(Bmc, TraceReplaysOnSimulator)
{
    // Whatever input trace BMC returns must reproduce the cover when
    // replayed cycle-by-cycle on the simulator.
    Netlist nl("replay");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 4);
    // q captures a; target = q == 0b1010 (requires specific inputs).
    Bus q;
    for (int i = 0; i < 4; ++i)
        q.push_back(b.dff(a[size_t(i)]));
    std::vector<NetId> bits{b.not_(q[0]), q[1], b.not_(q[2]), q[3]};
    NetId target = b.and_n(bits);
    nl.add_output_bus("q", q);
    nl.add_output_bus("hit", {target});

    BmcOptions opts;
    opts.max_frames = 4;
    BmcResult r = check_cover(nl, target, opts);
    ASSERT_EQ(r.status, BmcStatus::Covered);

    Simulator sim(nl);
    for (int f = 0; f < r.frames; ++f) {
        sim.set_bus("a", r.trace.at("a", f));
        if (f + 1 < r.frames)
            sim.step();
    }
    EXPECT_EQ(sim.value(target), true);
}

TEST(Bmc, ConflictBudgetYieldsTimeout)
{
    // target = (a * b == 143): needs search (11 * 13), and the solver's
    // default all-false phase guesses conflict before finding it, so a
    // zero conflict budget must surface as Timeout ("FF" in Table 4).
    Netlist nl("mul");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 4);
    auto bb = nl.add_input_bus("b", 4);
    Bus aq, bq;
    for (int i = 0; i < 4; ++i) {
        aq.push_back(b.dff(a[size_t(i)]));
        bq.push_back(b.dff(bb[size_t(i)]));
    }
    Bus p = rtl::multiply(b, aq, bq);
    NetId target = rtl::bus_eq(b, p, b.const_bus(8, 143));
    nl.add_output_bus("p", p);

    BmcOptions opts;
    opts.max_frames = 4;
    {
        BmcOptions tight = opts;
        tight.conflict_budget = 0;
        BmcResult r = check_cover(nl, target, tight);
        EXPECT_EQ(r.status, BmcStatus::Timeout);
    }
    {
        BmcResult r = check_cover(nl, target, opts);
        ASSERT_EQ(r.status, BmcStatus::Covered);
        uint64_t va = r.trace.at("a", 0).to_u64();
        uint64_t vb = r.trace.at("b", 0).to_u64();
        EXPECT_EQ(va * vb, 143u);
    }
}

TEST(Bmc, StateEqualitiesRestrictFreeStart)
{
    // Two free-running toggles with different inits; target = (q1 != q2).
    // From reset they differ every cycle => covered quickly. With a
    // shallow bound of 0... instead check the free-state path: tie q1=q2
    // at start, and make the target require q1 != q2 while inputs cannot
    // break the tie => unreachable by induction.
    Netlist nl("ties");
    Builder b(nl);
    NetId q1 = nl.new_net("q1");
    NetId q2 = nl.new_net("q2");
    NetId d1 = b.not_(q1);
    NetId d2 = b.not_(q2);
    nl.add_dff("f1", d1, q1, false);
    nl.add_dff("f2", d2, q2, false);
    NetId target = b.xor_(q1, q2);
    nl.add_output_bus("o", {target});

    BmcOptions opts;
    opts.max_frames = 4;
    opts.state_equalities = {{q1, q2}};
    BmcResult r = check_cover(nl, target, opts);
    EXPECT_EQ(r.status, BmcStatus::Unreachable);
    EXPECT_TRUE(r.proven_by_induction);
}

TEST(Bmc, ShortestTraceFirst)
{
    // Cover reachable at frames 2 and later; BMC must return frame 2.
    Netlist nl("short");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 1);
    NetId q1 = b.dff(a[0]);
    NetId q2 = b.dff(q1);
    nl.add_output_bus("o", {q2});

    BmcOptions opts;
    opts.max_frames = 6;
    BmcResult r = check_cover(nl, q2, opts);
    ASSERT_EQ(r.status, BmcStatus::Covered);
    EXPECT_EQ(r.frames, 3); // a=1 at frame 0 propagates to q2 by frame 2
}

} // namespace
} // namespace vega::formal
