/**
 * CRC32C (Castagnoli) checksum primitive: pinned vectors from RFC 3720
 * appendix B.4 plus the classic "123456789" check value, incremental
 * == one-shot equivalence across arbitrary split points, and the hex
 * round-trip used by the journal line framing.
 */
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/checksum.h"

namespace vega {
namespace {

TEST(Crc32c, PinnedReferenceVectors)
{
    // The CRC-32C check value: every correct implementation of the
    // Castagnoli polynomial produces exactly this.
    EXPECT_EQ(crc32c(std::string("123456789")), 0xe3069283u);
    EXPECT_EQ(crc32c(std::string("")), 0x00000000u);

    // RFC 3720 (iSCSI) appendix B.4 test patterns.
    std::string zeros(32, '\0');
    EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
    std::string ones(32, char(0xff));
    EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
    std::string ascending;
    for (int i = 0; i < 32; ++i)
        ascending += char(i);
    EXPECT_EQ(crc32c(ascending), 0x46dd794eu);
    std::string descending;
    for (int i = 31; i >= 0; --i)
        descending += char(i);
    EXPECT_EQ(crc32c(descending), 0x113fdb5cu);
}

TEST(Crc32c, IncrementalMatchesOneShotAtEverySplit)
{
    // The slice-by-8 fast path consumes 8 bytes at a time with a
    // byte-wise tail, so exercise every alignment of the boundary.
    std::string msg = "The quick brown fox jumps over the lazy dog";
    uint32_t whole = crc32c(msg);
    for (size_t split = 0; split <= msg.size(); ++split) {
        Crc32c c;
        c.update(msg.data(), split);
        c.update(msg.data() + split, msg.size() - split);
        EXPECT_EQ(c.value(), whole) << "split at " << split;
    }

    // Three-way split through a buffer long enough to hit the 8-byte
    // fold on all three segments.
    std::string big;
    for (int i = 0; i < 1024; ++i)
        big += char(i * 37 + 11);
    Crc32c c;
    c.update(big.data(), 333);
    c.update(big.data() + 333, 444);
    c.update(big.data() + 777, big.size() - 777);
    EXPECT_EQ(c.value(), crc32c(big));
}

TEST(Crc32c, ResetReusesTheAccumulator)
{
    Crc32c c;
    c.update(std::string("garbage state"));
    c.reset();
    c.update(std::string("123456789"));
    EXPECT_EQ(c.value(), 0xe3069283u);
}

TEST(Crc32c, DetectsSingleBitFlips)
{
    std::string msg = "job 17 1 zero sequential 1 stall 4 9 1234 1 0 1";
    uint32_t good = crc32c(msg);
    for (size_t byte = 0; byte < msg.size(); byte += 7)
        for (int bit = 0; bit < 8; bit += 3) {
            std::string bad = msg;
            bad[byte] ^= char(1 << bit);
            EXPECT_NE(crc32c(bad), good)
                << "flip byte " << byte << " bit " << bit;
        }
}

TEST(Crc32c, HexRoundTrips)
{
    EXPECT_EQ(crc32c_hex(0xe3069283u), "e3069283");
    EXPECT_EQ(crc32c_hex(0x00000000u), "00000000");
    EXPECT_EQ(crc32c_hex(0x0000000fu), "0000000f");

    uint32_t back = 0;
    ASSERT_TRUE(parse_crc32c_hex("e3069283", back));
    EXPECT_EQ(back, 0xe3069283u);
    ASSERT_TRUE(parse_crc32c_hex("00000000", back));
    EXPECT_EQ(back, 0u);

    // The journal line framing depends on exactly-8 lowercase hex.
    EXPECT_FALSE(parse_crc32c_hex("", back));
    EXPECT_FALSE(parse_crc32c_hex("e306928", back));
    EXPECT_FALSE(parse_crc32c_hex("e30692834", back));
    EXPECT_FALSE(parse_crc32c_hex("e30692x3", back));
}

} // namespace
} // namespace vega
