#include "rtl/blocks.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "sim/simulator.h"

namespace vega::rtl {
namespace {

/** Harness: builds a block under test and evaluates it on demand. */
class BlockFixture
{
  public:
    Netlist nl{"block"};
    Builder b{nl};

    Bus input(const std::string &name, size_t width)
    {
        return nl.add_input_bus(name, width);
    }

    void finish(const std::string &name, const Bus &out)
    {
        nl.add_output_bus(name, out);
        sim_ = std::make_unique<Simulator>(nl);
    }

    uint64_t
    eval(std::initializer_list<std::pair<const char *, uint64_t>> ins,
         const std::string &out)
    {
        for (auto &[name, v] : ins)
            sim_->set_bus(name, BitVec(nl.bus(name).size(), v));
        return sim_->bus_value(out).to_u64();
    }

  private:
    std::unique_ptr<Simulator> sim_;
};

TEST(Blocks, RippleAddMatchesInteger)
{
    BlockFixture f;
    Bus a = f.input("a", 16), b = f.input("b", 16);
    AddResult r = ripple_add(f.b, a, b);
    Bus sum = r.sum;
    sum.push_back(r.carry);
    f.finish("s", sum);

    Rng rng(1);
    for (int i = 0; i < 200; ++i) {
        uint64_t va = rng.next() & 0xffff, vb = rng.next() & 0xffff;
        EXPECT_EQ(f.eval({{"a", va}, {"b", vb}}, "s"), va + vb);
    }
}

TEST(Blocks, RippleSubAndBorrow)
{
    BlockFixture f;
    Bus a = f.input("a", 12), b = f.input("b", 12);
    AddResult r = ripple_sub(f.b, a, b);
    Bus out = r.sum;
    out.push_back(r.carry);
    f.finish("s", out);

    Rng rng(2);
    for (int i = 0; i < 200; ++i) {
        uint64_t va = rng.next() & 0xfff, vb = rng.next() & 0xfff;
        uint64_t got = f.eval({{"a", va}, {"b", vb}}, "s");
        EXPECT_EQ(got & 0xfff, (va - vb) & 0xfff);
        EXPECT_EQ((got >> 12) & 1, va >= vb ? 1u : 0u); // carry = no borrow
    }
}

TEST(Blocks, IncrementWraps)
{
    BlockFixture f;
    Bus a = f.input("a", 8);
    f.finish("y", increment(f.b, a));
    for (uint64_t v : {0ull, 1ull, 41ull, 254ull, 255ull})
        EXPECT_EQ(f.eval({{"a", v}}, "y"), (v + 1) & 0xff);
}

TEST(Blocks, ComparisonHelpers)
{
    BlockFixture f;
    Bus a = f.input("a", 10), b = f.input("b", 10);
    Bus out{is_zero(f.b, a), bus_eq(f.b, a, b), ult(f.b, a, b)};
    f.finish("y", out);

    Rng rng(3);
    for (int i = 0; i < 300; ++i) {
        uint64_t va = rng.next() & 0x3ff, vb = rng.next() & 0x3ff;
        if (i == 0)
            va = vb = 0;
        uint64_t got = f.eval({{"a", va}, {"b", vb}}, "y");
        EXPECT_EQ(got & 1, va == 0 ? 1u : 0u);
        EXPECT_EQ((got >> 1) & 1, va == vb ? 1u : 0u);
        EXPECT_EQ((got >> 2) & 1, va < vb ? 1u : 0u);
    }
}

struct ShiftCase
{
    uint64_t value;
    uint64_t amount;
};

class ShiftTest : public ::testing::TestWithParam<ShiftCase>
{
};

TEST_P(ShiftTest, RightShiftStickyMatches)
{
    auto [value, amount] = GetParam();
    BlockFixture f;
    Bus a = f.input("a", 16);
    Bus sh = f.input("sh", 5);
    ShiftResult r = shift_right_sticky(f.b, a, sh, f.b.const0());
    Bus out = r.out;
    out.push_back(r.sticky);
    f.finish("y", out);

    uint64_t got = f.eval({{"a", value}, {"sh", amount}}, "y");
    uint64_t expect_out = amount >= 16 ? 0 : (value >> amount);
    uint64_t lost_mask = amount >= 16 ? 0xffff : ((1ull << amount) - 1);
    uint64_t expect_sticky = (value & lost_mask) != 0;
    EXPECT_EQ(got & 0xffff, expect_out);
    EXPECT_EQ((got >> 16) & 1, expect_sticky);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ShiftTest,
                         ::testing::Values(ShiftCase{0xffff, 0},
                                           ShiftCase{0xffff, 1},
                                           ShiftCase{0x8000, 15},
                                           ShiftCase{0x8001, 15},
                                           ShiftCase{0xabcd, 4},
                                           ShiftCase{0xabcd, 17},
                                           ShiftCase{0xabcd, 31},
                                           ShiftCase{0x0001, 1},
                                           ShiftCase{0x0000, 9}));

TEST(Blocks, ShiftLeftMatches)
{
    BlockFixture f;
    Bus a = f.input("a", 16);
    Bus sh = f.input("sh", 5);
    f.finish("y", shift_left(f.b, a, sh));

    Rng rng(4);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = rng.next() & 0xffff;
        uint64_t amount = rng.next() % 20;
        uint64_t expect = amount >= 16 ? 0 : ((va << amount) & 0xffff);
        EXPECT_EQ(f.eval({{"a", va}, {"sh", amount}}, "y"), expect);
    }
}

TEST(Blocks, ArithmeticRightShiftFillsSign)
{
    BlockFixture f;
    Bus a = f.input("a", 8);
    Bus sh = f.input("sh", 3);
    f.finish("y", shift_right_sticky(f.b, a, sh, a[7]).out);

    EXPECT_EQ(f.eval({{"a", 0x80}, {"sh", 3}}, "y"), 0xf0u);
    EXPECT_EQ(f.eval({{"a", 0x40}, {"sh", 3}}, "y"), 0x08u);
    EXPECT_EQ(f.eval({{"a", 0xff}, {"sh", 7}}, "y"), 0xffu);
}

TEST(Blocks, LeadingZeroCount)
{
    BlockFixture f;
    Bus a = f.input("a", 27);
    f.finish("y", leading_zero_count(f.b, a));

    auto expect_lzc = [](uint64_t v) {
        for (int i = 26; i >= 0; --i)
            if ((v >> i) & 1)
                return uint64_t(26 - i);
        return uint64_t(27);
    };
    Rng rng(5);
    std::vector<uint64_t> cases{0, 1, 1ull << 26, (1ull << 27) - 1, 0x12345};
    for (int i = 0; i < 100; ++i)
        cases.push_back(rng.next() & ((1ull << 27) - 1));
    for (uint64_t v : cases)
        EXPECT_EQ(f.eval({{"a", v}}, "y"), expect_lzc(v)) << v;
}

TEST(Blocks, MultiplyMatchesInteger)
{
    BlockFixture f;
    Bus a = f.input("a", 12), b = f.input("b", 12);
    f.finish("y", multiply(f.b, a, b));

    Rng rng(6);
    for (int i = 0; i < 100; ++i) {
        uint64_t va = rng.next() & 0xfff, vb = rng.next() & 0xfff;
        EXPECT_EQ(f.eval({{"a", va}, {"b", vb}}, "y"), va * vb);
    }
    EXPECT_EQ(f.eval({{"a", 0xfff}, {"b", 0xfff}}, "y"),
              0xfffull * 0xfffull);
    EXPECT_EQ(f.eval({{"a", 0}, {"b", 0xfff}}, "y"), 0u);
}

TEST(Blocks, SelectPicksOption)
{
    BlockFixture f;
    Bus sel = f.input("sel", 2);
    std::vector<Bus> options;
    for (uint64_t v : {0x11ull, 0x22ull, 0x33ull})
        options.push_back(f.b.const_bus(8, v));
    f.finish("y", select(f.b, options, sel));

    EXPECT_EQ(f.eval({{"sel", 0}}, "y"), 0x11u);
    EXPECT_EQ(f.eval({{"sel", 1}}, "y"), 0x22u);
    EXPECT_EQ(f.eval({{"sel", 2}}, "y"), 0x33u);
    EXPECT_EQ(f.eval({{"sel", 3}}, "y"), 0x33u); // repeat-last padding
}

TEST(Blocks, ZextPadsWithZero)
{
    BlockFixture f;
    Bus a = f.input("a", 4);
    f.finish("y", zext(f.b, a, 8));
    EXPECT_EQ(f.eval({{"a", 0xf}}, "y"), 0x0fu);
}

} // namespace
} // namespace vega::rtl
