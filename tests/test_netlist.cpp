#include "netlist/netlist.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "netlist/builder.h"
#include "netlist/verilog_writer.h"

namespace vega {
namespace {

TEST(CellLibrary, PinCounts)
{
    EXPECT_EQ(cell_num_inputs(CellType::Const0), 0);
    EXPECT_EQ(cell_num_inputs(CellType::Not), 1);
    EXPECT_EQ(cell_num_inputs(CellType::And2), 2);
    EXPECT_EQ(cell_num_inputs(CellType::Mux2), 3);
    EXPECT_EQ(cell_num_inputs(CellType::Dff), 1);
}

TEST(CellLibrary, EvalTruthTables)
{
    EXPECT_FALSE(eval_cell(CellType::Const0, false));
    EXPECT_TRUE(eval_cell(CellType::Const1, false));
    for (bool a : {false, true}) {
        EXPECT_EQ(eval_cell(CellType::Buf, a), a);
        EXPECT_EQ(eval_cell(CellType::Not, a), !a);
        for (bool b : {false, true}) {
            EXPECT_EQ(eval_cell(CellType::And2, a, b), a && b);
            EXPECT_EQ(eval_cell(CellType::Or2, a, b), a || b);
            EXPECT_EQ(eval_cell(CellType::Xor2, a, b), a != b);
            EXPECT_EQ(eval_cell(CellType::Nand2, a, b), !(a && b));
            EXPECT_EQ(eval_cell(CellType::Nor2, a, b), !(a || b));
            EXPECT_EQ(eval_cell(CellType::Xnor2, a, b), a == b);
            for (bool s : {false, true})
                EXPECT_EQ(eval_cell(CellType::Mux2, a, b, s), s ? b : a);
        }
    }
}

TEST(CellLibrary, TimingIsPositiveAndOrdered)
{
    for (int t = int(CellType::Buf); t <= int(CellType::Dff); ++t) {
        const CellTiming &ct = cell_timing(CellType(t));
        EXPECT_GT(ct.delay_max, 0.0) << t;
        EXPECT_GT(ct.delay_min, 0.0) << t;
        EXPECT_GE(ct.delay_max, ct.delay_min) << t;
    }
    EXPECT_GT(cell_timing(CellType::Dff).setup, 0.0);
    EXPECT_GT(cell_timing(CellType::Dff).hold, 0.0);
}

TEST(Netlist, BuildAndValidate)
{
    Netlist nl("t");
    auto a = nl.add_input_bus("a", 2);
    NetId y = nl.new_net("y");
    nl.add_cell(CellType::And2, "g0", {a[0], a[1]}, y);
    nl.add_output_bus("y", {y});
    nl.validate();
    EXPECT_EQ(nl.num_cells(), 1u);
    EXPECT_EQ(nl.primary_inputs().size(), 2u);
    EXPECT_EQ(nl.primary_outputs().size(), 1u);
}

TEST(Netlist, TopoOrderRespectsDependencies)
{
    Netlist nl("t");
    auto a = nl.add_input_bus("a", 1);
    NetId n1 = nl.new_net("n1");
    NetId n2 = nl.new_net("n2");
    // Add in reverse dependency order on purpose.
    NetId n3 = nl.new_net("n3");
    CellId c3 = nl.add_cell(CellType::Not, "g3", {n2}, n3);
    CellId c2 = nl.add_cell(CellType::Not, "g2", {n1}, n2);
    CellId c1 = nl.add_cell(CellType::Not, "g1", {a[0]}, n1);
    nl.add_output_bus("y", {n3});

    const auto &topo = nl.topo_order();
    auto pos = [&](CellId c) {
        return std::find(topo.begin(), topo.end(), c) - topo.begin();
    };
    EXPECT_LT(pos(c1), pos(c2));
    EXPECT_LT(pos(c2), pos(c3));
}

TEST(Netlist, CombinationalCycleDetected)
{
    Netlist nl("t");
    NetId n1 = nl.new_net("n1");
    NetId n2 = nl.new_net("n2");
    nl.add_cell(CellType::Not, "g1", {n2}, n1);
    nl.add_cell(CellType::Not, "g2", {n1}, n2);
    EXPECT_DEATH(nl.topo_order(), "combinational cycle");
}

TEST(Netlist, DffBreaksCycle)
{
    Netlist nl("t");
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    nl.add_cell(CellType::Not, "inv", {q}, d);
    nl.add_dff("ff", d, q, true);
    nl.add_output_bus("q", {q});
    nl.validate(); // no cycle through the DFF
    EXPECT_EQ(nl.dffs().size(), 1u);
}

TEST(Netlist, MultipleDriversRejected)
{
    Netlist nl("t");
    auto a = nl.add_input_bus("a", 1);
    NetId y = nl.new_net("y");
    nl.add_cell(CellType::Buf, "b0", {a[0]}, y);
    EXPECT_DEATH(nl.add_cell(CellType::Buf, "b1", {a[0]}, y),
                 "multiply driven");
}

TEST(Netlist, FanoutCone)
{
    // a -> g1 -> g2 -> ff -> g3 ; cone of g1 crosses the DFF.
    Netlist nl("t");
    auto a = nl.add_input_bus("a", 1);
    NetId n1 = nl.new_net("n1");
    CellId g1 = nl.add_cell(CellType::Not, "g1", {a[0]}, n1);
    NetId n2 = nl.new_net("n2");
    CellId g2 = nl.add_cell(CellType::Buf, "g2", {n1}, n2);
    NetId q = nl.new_net("q");
    CellId ff = nl.add_dff("ff", n2, q);
    NetId n3 = nl.new_net("n3");
    CellId g3 = nl.add_cell(CellType::Not, "g3", {q}, n3);
    nl.add_output_bus("y", {n3});

    auto cone = nl.fanout_cone(g1);
    EXPECT_EQ(cone.size(), 4u);
    for (CellId c : {g1, g2, ff, g3})
        EXPECT_NE(std::find(cone.begin(), cone.end(), c), cone.end());
}

TEST(Netlist, TypeHistogram)
{
    Netlist nl("t");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 2);
    NetId x = b.and_(a[0], a[1]);
    NetId y = b.and_(x, a[0]);
    NetId q = b.dff(y);
    nl.add_output_bus("q", {q});
    auto h = nl.type_histogram();
    EXPECT_EQ(h[CellType::And2], 2u);
    EXPECT_EQ(h[CellType::Dff], 1u);
}

TEST(VerilogWriter, EmitsModuleAndCells)
{
    Netlist nl("mymod");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 2);
    NetId y = b.xor_(a[0], a[1]);
    NetId q = b.dff(y, true);
    nl.add_output_bus("o", {q});

    std::string v = to_verilog(nl);
    EXPECT_NE(v.find("module mymod (clk, a, o);"), std::string::npos);
    EXPECT_NE(v.find("xor "), std::string::npos);
    EXPECT_NE(v.find("VEGA_DFF"), std::string::npos);
    EXPECT_NE(v.find(".INIT(1'b1)"), std::string::npos);
    EXPECT_NE(v.find("endmodule"), std::string::npos);
}

} // namespace
} // namespace vega
