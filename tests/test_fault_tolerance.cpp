/**
 * Fault-tolerance layer: Expected/VegaError plumbing, the atomic
 * write-temp-then-rename protocol, the crash-safe campaign journal,
 * retry/quarantine of throwing jobs, and kill-and-resume determinism.
 */
#include <gtest/gtest.h>

#include <cstdio>

#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "common/error.h"
#include "common/fs.h"
#include "cpu/alu_ops.h"
#include "journal_corruptor.h"
#include "rtl/alu32.h"

namespace vega::campaign {
namespace {

std::string
tmp_path(const char *name)
{
    return testing::TempDir() + "vega_ft_" + name;
}

// ---- Expected / VegaError ------------------------------------------------

TEST(Expected, CarriesValueOrError)
{
    Expected<int> good = 42;
    ASSERT_TRUE(good.ok());
    EXPECT_EQ(*good, 42);

    Expected<int> bad = make_error(ErrorCode::ParseError, "line 3: nope");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::ParseError);
    EXPECT_EQ(bad.error().to_string(), "parse-error: line 3: nope");

    Expected<void> ok;
    EXPECT_TRUE(ok.ok());
    Expected<void> err = make_error(ErrorCode::IoError, "disk gone");
    EXPECT_FALSE(err.ok());
    EXPECT_EQ(err.error().code, ErrorCode::IoError);
}

TEST(Expected, ErrorCodeNamesAreStableAndRoundTrip)
{
    for (ErrorCode c :
         {ErrorCode::InvalidArgument, ErrorCode::ParseError,
          ErrorCode::ValidationError, ErrorCode::IoError,
          ErrorCode::Timeout, ErrorCode::Exhausted, ErrorCode::JobFailed,
          ErrorCode::JournalCorrupt, ErrorCode::JournalMismatch,
          ErrorCode::JournalRecordCorrupt,
          ErrorCode::JournalTrailerMismatch, ErrorCode::ShardIncomplete})
        EXPECT_EQ(parse_error_code(error_code_name(c)), c);
    EXPECT_EQ(parse_error_code("no-such-code"), ErrorCode::Ok);
    EXPECT_STREQ(error_code_name(ErrorCode::JobFailed), "job-failed");
    EXPECT_STREQ(error_code_name(ErrorCode::JournalRecordCorrupt),
                 "journal-record-corrupt");
    EXPECT_STREQ(error_code_name(ErrorCode::JournalTrailerMismatch),
                 "journal-trailer-mismatch");
    EXPECT_STREQ(error_code_name(ErrorCode::ShardIncomplete),
                 "shard-incomplete");
}

// ---- atomic file writes --------------------------------------------------

TEST(AtomicWrite, WritesContentAndCleansUpTempFile)
{
    std::string path = tmp_path("atomic.txt");
    std::remove(path.c_str());

    Expected<void> ok = write_file_atomic(path, "hello\nworld\n");
    ASSERT_TRUE(ok.ok()) << ok.error().to_string();

    Expected<std::string> back = read_file(path);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "hello\nworld\n");

    // The temp-then-rename protocol must not leave its staging file.
    EXPECT_FALSE(file_exists(atomic_temp_path(path)));
    // The staging file lives next to the target (same filesystem), so
    // the final rename is atomic.
    EXPECT_EQ(atomic_temp_path(path), path + ".tmp");
    std::remove(path.c_str());
}

TEST(AtomicWrite, ReplacesExistingContentCompletely)
{
    std::string path = tmp_path("atomic2.txt");
    ASSERT_TRUE(write_file_atomic(path, "a much longer first version"));
    ASSERT_TRUE(write_file_atomic(path, "v2"));
    Expected<std::string> back = read_file(path);
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, "v2");
    std::remove(path.c_str());
}

TEST(AtomicWrite, UnwritableTargetIsIoErrorNotCrash)
{
    Expected<void> r =
        write_file_atomic("/nonexistent-dir/deep/report.json", "x");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::IoError);
}

TEST(ReadFile, MissingFileIsIoError)
{
    Expected<std::string> r = read_file(tmp_path("never-created"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::IoError);
}

// ---- journal -------------------------------------------------------------

JournalHeader
header_fixture()
{
    JournalHeader h;
    h.module = "alu32";
    h.seed = 7;
    h.num_jobs = 10;
    h.num_pairs = 2;
    h.num_constants = 2;
    h.num_policies = 3;
    h.max_slots = 6;
    h.suite_size = 4;
    h.probability = 0.5;
    return h;
}

TEST(Journal, RoundTripsJobsAndFailures)
{
    std::string path = tmp_path("journal1.log");
    std::remove(path.c_str());

    JournalWriter w;
    ASSERT_TRUE(w.open(path, header_fixture()).ok());

    JobResult r;
    r.id = 3;
    r.pair_index = 1;
    r.constant = lift::FaultConstant::One;
    r.policy = runtime::SchedulePolicy::Probabilistic;
    r.detected = true;
    r.kind = runtime::Detection::Stall;
    r.slots_to_detect = 4;
    r.tests_dispatched = 9;
    r.sim_cycles = 1234;
    r.corrupts_workload = true;
    r.escape = false;
    r.attempts = 2;
    ASSERT_TRUE(w.record(r).ok());

    FailedJob f;
    f.id = 5;
    f.pair_index = 0;
    f.attempts = 3;
    f.error = make_error(ErrorCode::JobFailed,
                         "attempt 3: injected fault");
    ASSERT_TRUE(w.record(f).ok());

    Expected<JournalState> st = read_journal(path);
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    EXPECT_TRUE(st->header == header_fixture());
    ASSERT_EQ(st->completed.size(), 1u);
    const JobResult &back = st->completed[0];
    EXPECT_EQ(back.id, 3u);
    EXPECT_EQ(back.pair_index, 1u);
    EXPECT_EQ(back.constant, lift::FaultConstant::One);
    EXPECT_EQ(back.policy, runtime::SchedulePolicy::Probabilistic);
    EXPECT_TRUE(back.detected);
    EXPECT_EQ(back.kind, runtime::Detection::Stall);
    EXPECT_EQ(back.slots_to_detect, 4u);
    EXPECT_EQ(back.tests_dispatched, 9u);
    EXPECT_EQ(back.sim_cycles, 1234u);
    EXPECT_TRUE(back.corrupts_workload);
    EXPECT_FALSE(back.escape);
    EXPECT_EQ(back.attempts, 2u);
    ASSERT_EQ(st->failed.size(), 1u);
    EXPECT_EQ(st->failed[0].id, 5u);
    EXPECT_EQ(st->failed[0].attempts, 3u);
    EXPECT_EQ(st->failed[0].error.code, ErrorCode::JobFailed);
    EXPECT_EQ(st->failed[0].error.context, "attempt 3: injected fault");

    // Every append goes through the atomic protocol: no staging file.
    EXPECT_FALSE(file_exists(atomic_temp_path(path)));
    std::remove(path.c_str());
}

TEST(Journal, GroupCommitFlushesEveryNRecordsAndOnSync)
{
    std::string path = tmp_path("journal_batched.log");
    std::remove(path.c_str());

    JournalWriter w;
    ASSERT_TRUE(w.open(path, header_fixture(), nullptr, 4).ok());
    uint64_t flushes_after_open = w.flushes();

    auto on_disk = [&] {
        Expected<JournalState> st = read_journal(path);
        EXPECT_TRUE(st.ok()) << st.error().to_string();
        return st.ok() ? st->completed.size() : size_t(0);
    };

    JobResult r;
    r.constant = lift::FaultConstant::Zero;
    r.policy = runtime::SchedulePolicy::Sequential;
    for (uint64_t id = 0; id < 3; ++id) {
        r.id = id;
        ASSERT_TRUE(w.record(r).ok());
    }
    // Three records are buffered; the file still holds only the header.
    EXPECT_EQ(on_disk(), 0u);
    EXPECT_EQ(w.flushes(), flushes_after_open);

    r.id = 3;
    ASSERT_TRUE(w.record(r).ok());
    // The fourth record tripped the group commit.
    EXPECT_EQ(on_disk(), 4u);
    EXPECT_EQ(w.flushes(), flushes_after_open + 1);

    r.id = 4;
    ASSERT_TRUE(w.record(r).ok());
    EXPECT_EQ(on_disk(), 4u);
    ASSERT_TRUE(w.sync().ok());
    EXPECT_EQ(on_disk(), 5u);
    // A second sync with nothing buffered is a no-op, not a rewrite.
    uint64_t flushes_after_sync = w.flushes();
    ASSERT_TRUE(w.sync().ok());
    EXPECT_EQ(w.flushes(), flushes_after_sync);
    std::remove(path.c_str());
}

TEST(Journal, AppendsRatherThanRewrites)
{
    std::string path = tmp_path("journal_append.log");
    std::remove(path.c_str());

    // Regression for the v1 flush that rewrote the whole file each
    // group commit (O(n^2) bytes over a campaign): with per-record
    // flushing, total bytes written must equal the final file size —
    // one structural header write plus pure appends.
    JournalWriter w;
    ASSERT_TRUE(w.open(path, header_fixture(), nullptr, 1).ok());
    JobResult r;
    r.constant = lift::FaultConstant::Zero;
    r.policy = runtime::SchedulePolicy::Sequential;
    const uint64_t n = 50;
    for (uint64_t id = 0; id < n; ++id) {
        r.id = id;
        ASSERT_TRUE(w.record(r).ok());
    }
    ASSERT_TRUE(w.sync().ok());

    Expected<std::string> on_disk = read_file(path);
    ASSERT_TRUE(on_disk.ok());
    EXPECT_EQ(w.bytes_written(), on_disk->size());
    EXPECT_EQ(w.flushes(), 1 + n); // the open() write + one per record
    std::remove(path.c_str());
}

TEST(Journal, FinalizeAppendsAVerifiableTrailer)
{
    std::string path = tmp_path("journal_trailer.log");
    std::remove(path.c_str());

    JournalWriter w;
    ASSERT_TRUE(w.open(path, header_fixture()).ok());
    JobResult r;
    r.constant = lift::FaultConstant::One;
    r.policy = runtime::SchedulePolicy::Random;
    for (uint64_t id = 0; id < 3; ++id) {
        r.id = id;
        ASSERT_TRUE(w.record(r).ok());
    }

    // Unfinalized: readable, but not mergeable.
    JournalReadOptions strict;
    strict.require_trailer = true;
    Expected<JournalState> open_state = read_journal(path, strict);
    ASSERT_FALSE(open_state.ok());
    EXPECT_EQ(open_state.error().code, ErrorCode::ShardIncomplete);

    ASSERT_TRUE(w.finalize().ok());
    EXPECT_TRUE(w.finalized());
    EXPECT_FALSE(w.is_open());

    Expected<JournalState> st = read_journal(path, strict);
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    EXPECT_EQ(st->version, 2);
    EXPECT_TRUE(st->has_trailer);
    EXPECT_EQ(st->records, 3u);
    EXPECT_EQ(st->completed.size(), 3u);
    std::remove(path.c_str());
}

TEST(Journal, TornFinalLineIsDroppedOnResumeOnly)
{
    std::string path = tmp_path("journal_torn.log");
    std::remove(path.c_str());

    {
        JournalWriter w;
        ASSERT_TRUE(w.open(path, header_fixture(), nullptr, 1).ok());
        JobResult r;
        r.constant = lift::FaultConstant::Zero;
        r.policy = runtime::SchedulePolicy::Sequential;
        for (uint64_t id = 0; id < 3; ++id) {
            r.id = id;
            ASSERT_TRUE(w.record(r).ok());
        }
        ASSERT_TRUE(w.sync().ok());
        // No finalize: the process "dies" here.
    }

    // Simulate a crash mid-append: a partial record with no newline.
    std::FILE *f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    const char torn[] = "deadbeef job 9 1 ze";
    std::fwrite(torn, 1, sizeof torn - 1, f);
    std::fclose(f);

    // The resume path (default options) drops exactly the torn tail.
    Expected<JournalState> st = read_journal(path);
    ASSERT_TRUE(st.ok()) << st.error().to_string();
    EXPECT_TRUE(st->torn_tail);
    EXPECT_FALSE(st->has_trailer);
    EXPECT_EQ(st->completed.size(), 3u);

    // The aggregator's strict read refuses the same file.
    JournalReadOptions strict;
    strict.allow_torn_tail = false;
    Expected<JournalState> hard = read_journal(path, strict);
    ASSERT_FALSE(hard.ok());
    EXPECT_EQ(hard.error().code, ErrorCode::JournalRecordCorrupt);

    // A checksum failure that is NOT the final line is damage, never
    // a torn append — rejected even by the tolerant read.
    corrupt::flip_bit(path, "job 1 ");
    Expected<JournalState> mid = read_journal(path);
    ASSERT_FALSE(mid.ok());
    EXPECT_EQ(mid.error().code, ErrorCode::JournalRecordCorrupt);
    EXPECT_NE(mid.error().context.find("job 1"), std::string::npos)
        << mid.error().context;
    std::remove(path.c_str());
}

TEST(Journal, GarbageIsJournalCorruptWithLineNumber)
{
    std::string path = tmp_path("journal_garbage.log");
    ASSERT_TRUE(write_file_atomic(path, "not a journal at all\n"));
    Expected<JournalState> st = read_journal(path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, ErrorCode::JournalCorrupt);
    EXPECT_NE(st.error().context.find(":1:"), std::string::npos)
        << st.error().context;
    std::remove(path.c_str());
}

TEST(Journal, TruncatedRecordIsJournalCorrupt)
{
    std::string path = tmp_path("journal_trunc.log");
    ASSERT_TRUE(write_file_atomic(
        path, "# vega campaign journal v1\n" + header_fixture().to_string() +
                  "\njob 3 1 C=1\n"));
    Expected<JournalState> st = read_journal(path);
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, ErrorCode::JournalCorrupt);
    EXPECT_NE(st.error().context.find(":3:"), std::string::npos)
        << st.error().context;
    std::remove(path.c_str());
}

TEST(Journal, MissingFileIsIoError)
{
    Expected<JournalState> st = read_journal(tmp_path("no-journal"));
    ASSERT_FALSE(st.ok());
    EXPECT_EQ(st.error().code, ErrorCode::IoError);
}

// ---- campaign retry / quarantine / resume --------------------------------

/** One analyzed ALU + a small synthetic screening suite, built once. */
struct CampaignEnv
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
    std::vector<runtime::TestCase> suite;
};

runtime::TestCase
alu_test(const char *name, AluOp op, uint32_t a, uint32_t b, int pair)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

const CampaignEnv &
env()
{
    static CampaignEnv *e = [] {
        auto *env = new CampaignEnv;
        env->module = rtl::make_alu32();
        auto lib =
            aging::AgingTimingLibrary::build(aging::RdModelParams{});
        AgingAnalysisConfig cfg;
        cfg.utilization = 0.99;
        cfg.max_trace = 1500;
        auto aged = run_aging_analysis(env->module, lib, minver_trace(),
                                       cfg);
        env->pairs = aged.liftable_pairs();
        if (env->pairs.size() > 2)
            env->pairs.resize(2);
        env->suite = {
            alu_test("f0", AluOp::Add, 0xffffffff, 1, 0),
            alu_test("f1", AluOp::Sub, 0, 1, 0),
            alu_test("f2", AluOp::Xor, 0xaaaaaaaa, 0x55555555, 1),
            alu_test("f3", AluOp::Sll, 1, 31, 1),
        };
        return env;
    }();
    return *e;
}

CampaignConfig
small_config(size_t threads)
{
    CampaignConfig cfg;
    cfg.seed = 99;
    cfg.num_jobs = 12;
    cfg.threads = threads;
    cfg.max_slots = 6;
    return cfg;
}

TEST(CampaignFaults, BadConfigIsInvalidArgumentNotAbort)
{
    const CampaignEnv &e = env();
    CampaignConfig cfg = small_config(1);
    cfg.num_jobs = 0;
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, cfg);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::InvalidArgument);

    Expected<CampaignReport> r2 =
        try_run_campaign(e.module, e.pairs, {}, small_config(1));
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().code, ErrorCode::InvalidArgument);
}

TEST(CampaignFaults, TransientJobFailureRetriesWithFreshSeed)
{
    const CampaignEnv &e = env();
    CampaignConfig cfg = small_config(2);
    cfg.max_job_attempts = 3;
    cfg.job_fault_hook = [](const JobSpec &spec, int attempt) {
        if (spec.id == 4 && attempt == 1)
            throw std::runtime_error("transient trap");
    };
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, cfg);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    ASSERT_EQ(r->jobs.size(), 12u);
    EXPECT_TRUE(r->failed_jobs.empty());
    EXPECT_EQ(r->failed, 0u);
    for (const JobResult &j : r->jobs)
        EXPECT_EQ(j.attempts, j.id == 4 ? 2u : 1u) << "job " << j.id;
}

TEST(CampaignFaults, AlwaysTrappingJobIsQuarantinedNotFatal)
{
    const CampaignEnv &e = env();
    CampaignConfig cfg = small_config(2);
    cfg.max_job_attempts = 3;
    cfg.job_fault_hook = [](const JobSpec &spec, int) {
        if (spec.id == 7)
            throw std::runtime_error("poisoned job");
    };
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, cfg);
    ASSERT_TRUE(r.ok()) << r.error().to_string();

    // The other 11 jobs completed; job 7 is a structured failed_jobs
    // entry with its attempt count and error code — not an abort, and
    // not silently dropped.
    EXPECT_EQ(r->jobs.size(), 11u);
    EXPECT_EQ(r->failed, 1u);
    ASSERT_EQ(r->failed_jobs.size(), 1u);
    const FailedJob &f = r->failed_jobs[0];
    EXPECT_EQ(f.id, 7u);
    EXPECT_EQ(f.attempts, 3u);
    EXPECT_EQ(f.error.code, ErrorCode::JobFailed);
    EXPECT_NE(f.error.context.find("poisoned job"), std::string::npos);
    for (const JobResult &j : r->jobs)
        EXPECT_NE(j.id, 7u);

    std::string json = r->to_json(false);
    EXPECT_NE(json.find("\"failed\":1"), std::string::npos);
    EXPECT_NE(json.find("\"failed_jobs\":[{\"id\":7"), std::string::npos);
    EXPECT_NE(json.find("\"code\":\"job-failed\""), std::string::npos);
}

TEST(CampaignFaults, KillAndResumeReportIsByteIdentical)
{
    const CampaignEnv &e = env();
    std::string journal = tmp_path("resume.journal");
    std::remove(journal.c_str());

    // Reference: one uninterrupted run, no journal.
    CampaignReport ref =
        run_campaign(e.module, e.pairs, e.suite, small_config(1));

    // Run A: journaled, "killed" after 5 completed jobs.
    CampaignConfig killed = small_config(1);
    killed.journal_path = journal;
    killed.stop_after_jobs = 5;
    Expected<CampaignReport> partial =
        try_run_campaign(e.module, e.pairs, e.suite, killed);
    ASSERT_TRUE(partial.ok()) << partial.error().to_string();
    EXPECT_LT(partial->jobs.size(), 12u);
    EXPECT_GE(partial->jobs.size(), 5u);

    // The journal on disk is a valid snapshot of the completed jobs.
    Expected<JournalState> snap = read_journal(journal);
    ASSERT_TRUE(snap.ok()) << snap.error().to_string();
    EXPECT_EQ(snap->completed.size(), partial->jobs.size());

    // Run B: resume, finishing the rest.
    CampaignConfig resumed = small_config(1);
    resumed.journal_path = journal;
    resumed.resume = true;
    Expected<CampaignReport> full =
        try_run_campaign(e.module, e.pairs, e.suite, resumed);
    ASSERT_TRUE(full.ok()) << full.error().to_string();

    EXPECT_EQ(full->to_json(false), ref.to_json(false));
    std::remove(journal.c_str());
}

TEST(CampaignFaults, V1JournalUpgradesOnResumeByteIdentical)
{
    const CampaignEnv &e = env();
    std::string journal = tmp_path("v1_upgrade.journal");
    std::remove(journal.c_str());

    CampaignReport ref =
        run_campaign(e.module, e.pairs, e.suite, small_config(1));

    // Produce a genuine partial journal, then rewrite it in the legacy
    // v1 format: no checksums, no shard fields, no trailer — what a
    // pre-upgrade deployment left on disk when it was killed.
    CampaignConfig killed = small_config(1);
    killed.journal_path = journal;
    killed.stop_after_jobs = 5;
    Expected<CampaignReport> partial =
        try_run_campaign(e.module, e.pairs, e.suite, killed);
    ASSERT_TRUE(partial.ok()) << partial.error().to_string();
    Expected<JournalState> snap = read_journal(journal);
    ASSERT_TRUE(snap.ok()) << snap.error().to_string();
    ASSERT_GE(snap->completed.size(), 5u);

    std::string config_line = snap->header.to_string();
    size_t shard_fields = config_line.find(" shards=");
    ASSERT_NE(shard_fields, std::string::npos);
    config_line.erase(shard_fields);
    std::string v1 = "# vega campaign journal v1\n" + config_line + "\n";
    for (const JobResult &r : snap->completed)
        v1 += render_record(r) + "\n";
    for (const FailedJob &f : snap->failed)
        v1 += render_record(f) + "\n";
    ASSERT_TRUE(write_file_atomic(journal, v1).ok());

    // The deprecated format still reads (that's the warning path).
    Expected<JournalState> legacy = read_journal(journal);
    ASSERT_TRUE(legacy.ok()) << legacy.error().to_string();
    EXPECT_EQ(legacy->version, 1);
    EXPECT_EQ(legacy->completed.size(), snap->completed.size());

    // Resuming finishes the campaign — byte-identical to an
    // uninterrupted run — and upgrades the file to v2 on the spot.
    CampaignConfig resumed = small_config(1);
    resumed.journal_path = journal;
    resumed.resume = true;
    Expected<CampaignReport> full =
        try_run_campaign(e.module, e.pairs, e.suite, resumed);
    ASSERT_TRUE(full.ok()) << full.error().to_string();
    EXPECT_EQ(full->to_json(false), ref.to_json(false));

    Expected<JournalState> upgraded = read_journal(journal);
    ASSERT_TRUE(upgraded.ok()) << upgraded.error().to_string();
    EXPECT_EQ(upgraded->version, 2);
    EXPECT_TRUE(upgraded->has_trailer);
    EXPECT_EQ(upgraded->completed.size() + upgraded->failed.size(), 12u);
    std::remove(journal.c_str());
}

TEST(CampaignFaults, ResumeUnderDifferentConfigIsJournalMismatch)
{
    const CampaignEnv &e = env();
    std::string journal = tmp_path("mismatch.journal");
    std::remove(journal.c_str());

    CampaignConfig first = small_config(1);
    first.journal_path = journal;
    first.stop_after_jobs = 2;
    ASSERT_TRUE(
        try_run_campaign(e.module, e.pairs, e.suite, first).ok());

    CampaignConfig other = small_config(1);
    other.journal_path = journal;
    other.resume = true;
    other.seed = 123; // different campaign
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, other);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::JournalMismatch);
    std::remove(journal.c_str());
}

TEST(CampaignFaults, QuarantineIsStickyAcrossResume)
{
    const CampaignEnv &e = env();
    std::string journal = tmp_path("sticky.journal");
    std::remove(journal.c_str());

    CampaignConfig first = small_config(1);
    first.journal_path = journal;
    first.max_job_attempts = 2;
    first.job_fault_hook = [](const JobSpec &spec, int) {
        if (spec.id == 2)
            throw std::runtime_error("always traps");
    };
    Expected<CampaignReport> a =
        try_run_campaign(e.module, e.pairs, e.suite, first);
    ASSERT_TRUE(a.ok());
    ASSERT_EQ(a->failed_jobs.size(), 1u);

    // Resume without the fault hook: the quarantined job stays
    // quarantined (it is settled in the journal) rather than rerun.
    CampaignConfig second = small_config(1);
    second.journal_path = journal;
    second.resume = true;
    Expected<CampaignReport> b =
        try_run_campaign(e.module, e.pairs, e.suite, second);
    ASSERT_TRUE(b.ok());
    ASSERT_EQ(b->failed_jobs.size(), 1u);
    EXPECT_EQ(b->failed_jobs[0].id, 2u);
    EXPECT_EQ(b->to_json(false), a->to_json(false));
    std::remove(journal.c_str());
}

} // namespace
} // namespace vega::campaign
