#include "vega/workflow.h"

#include <gtest/gtest.h>

#include "rtl/alu32.h"

namespace vega {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

TEST(MinverTrace, HasBothUnitActivity)
{
    const auto &trace = minver_trace();
    size_t alu = 0, fpu = 0;
    for (const auto &e : trace)
        (e.unit == ModuleKind::Fpu32 ? fpu : alu)++;
    EXPECT_GT(alu, 10u);
    EXPECT_GT(fpu, 50u);
}

TEST(RecordWorkloadTrace, ConcatenatesPrograms)
{
    auto t1 = record_workload_trace({workloads::make_ud().program});
    auto t2 = record_workload_trace({workloads::make_prime().program});
    auto both = record_workload_trace(
        {workloads::make_ud().program, workloads::make_prime().program});
    EXPECT_EQ(both.size(), t1.size() + t2.size());
}

TEST(AgingAnalysis, FreshCleanAgedViolating)
{
    HwModule module = rtl::make_alu32();
    AgingAnalysisConfig cfg;
    cfg.utilization = 0.99;
    cfg.max_trace = 1500;
    AgingAnalysisResult r =
        run_aging_analysis(module, lib(), minver_trace(), cfg);

    // Timing closure holds when fresh, breaks after ten years.
    EXPECT_GE(r.fresh_sta.wns_setup, 0.0);
    EXPECT_GE(r.fresh_sta.wns_hold, 0.0);
    EXPECT_LT(r.sta.wns_setup, 0.0);
    EXPECT_GT(r.sta.num_setup_violations, 0u);
    EXPECT_FALSE(r.liftable_pairs().empty());

    // The SP profile reflects real stimulus: not every cell parks.
    size_t mid = 0;
    for (CellId c = 0; c < module.netlist.num_cells(); ++c) {
        double sp = r.profile.sp(c);
        if (sp > 0.05 && sp < 0.95)
            ++mid;
    }
    EXPECT_GT(mid, module.netlist.num_cells() / 20);
}

TEST(Workflow, EndToEndOnAluProducesArtifacts)
{
    HwModule module = rtl::make_alu32();
    WorkflowConfig cfg;
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 1500;
    cfg.lift.max_pairs = 3;
    cfg.lift.bmc.max_frames = 4;

    WorkflowResult r = run_workflow(module, lib(), minver_trace(), cfg);
    EXPECT_FALSE(r.lift.pairs.empty());

    size_t classified = r.lift.n_success + r.lift.n_unreachable +
                        r.lift.n_timeout + r.lift.n_conversion_failed;
    EXPECT_EQ(classified, r.lift.pairs.size());

    if (!r.suite.empty()) {
        runtime::AgingLibraryOptions opt;
        runtime::AgingLibrary library = r.make_library(opt);
        runtime::GoldenEngine engine;
        EXPECT_EQ(library.run_all(engine), runtime::Detection::None);
        EXPECT_EQ(library.suite_cycles(), r.lift.suite_cycles());
    }
}

} // namespace
} // namespace vega
