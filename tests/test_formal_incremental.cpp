/**
 * @file
 * Incremental-vs-scratch BMC engine regression: on the lift corpus
 * (aged-STA endpoint pairs of the ALU32 and FPU32, shadow-instrumented
 * exactly as run_error_lifting does), both engines must return
 * bit-identical results — same BmcStatus, frame counts, and extracted
 * Waveforms — plus resume/escalation equivalence and the new obs
 * counters.
 */
#include <gtest/gtest.h>

#include "aging/timing_library.h"
#include "formal/bmc.h"
#include "lift/failure_model.h"
#include "lift/instruction_builder.h"
#include "netlist/builder.h"
#include "obs/metrics.h"
#include "rtl/alu32.h"
#include "rtl/blocks.h"
#include "rtl/fpu32.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

namespace vega::formal {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

/** A module aged to yield real violating pairs (the test_lift recipe:
 *  tight calibration, parked-input worst-case SP, 10 years). */
struct Corpus
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
};

Corpus
build_corpus(ModuleKind kind)
{
    Corpus c;
    c.module = kind == ModuleKind::Alu32 ? rtl::make_alu32()
                                         : rtl::make_fpu32();
    sta::calibrate_timing_scale(c.module, lib(), 0.99);
    Simulator sim(c.module.netlist);
    SpProfile profile =
        profile_signal_probability(sim, 64, [](Simulator &, uint64_t) {});
    sta::AgedTiming aged =
        sta::compute_aged_timing(c.module, profile, lib(), 10.0);
    c.pairs = sta::run_sta(c.module, aged).pairs;
    return c;
}

const Corpus &
corpus(ModuleKind kind)
{
    static Corpus alu = build_corpus(ModuleKind::Alu32);
    static Corpus fpu = build_corpus(ModuleKind::Fpu32);
    return kind == ModuleKind::Alu32 ? alu : fpu;
}

void
expect_identical(const BmcResult &inc, const BmcResult &scr,
                 const Netlist &nl, const std::string &label)
{
    EXPECT_EQ(inc.status, scr.status) << label;
    EXPECT_EQ(inc.frames, scr.frames) << label;
    EXPECT_EQ(inc.proven_by_induction, scr.proven_by_induction) << label;
    ASSERT_EQ(inc.trace.num_cycles(), scr.trace.num_cycles()) << label;
    auto compare_bus = [&](const std::string &bus) {
        for (size_t f = 0; f < inc.trace.num_cycles(); ++f)
            EXPECT_TRUE(inc.trace.at(bus, f) == scr.trace.at(bus, f))
                << label << " bus " << bus << " cycle " << f;
    };
    for (const auto &bus : nl.input_bus_names())
        compare_bus(bus);
    for (const auto &bus : nl.output_bus_names())
        compare_bus(bus);
}

/** Run both engines on every (pair, fault-constant) configuration of
 *  the corpus — the exact instances run_error_lifting submits. */
void
run_side_by_side(ModuleKind kind, size_t max_pairs)
{
    const Corpus &c = corpus(kind);
    size_t tested = 0;
    for (const sta::EndpointPair &pair : c.pairs) {
        if (pair.launch == kInvalidId)
            continue;
        for (lift::FaultConstant fc :
             {lift::FaultConstant::Zero, lift::FaultConstant::One}) {
            lift::FailureModelSpec spec;
            spec.launch = pair.launch;
            spec.capture = pair.capture;
            spec.is_setup = pair.is_setup;
            spec.constant = fc;
            lift::ShadowInstrumentation shadow =
                lift::build_shadow_instrumentation(c.module.netlist, spec);

            BmcOptions opts;
            opts.max_frames = 4;
            opts.conflict_budget = 400000;
            opts.assumes = lift::build_assumes(shadow.netlist, kind);
            opts.state_equalities = shadow.state_pairs;

            opts.engine = BmcEngine::Scratch;
            BmcResult scr = check_cover(shadow.netlist, shadow.mismatch,
                                        opts);
            opts.engine = BmcEngine::Incremental;
            BmcResult inc = check_cover(shadow.netlist, shadow.mismatch,
                                        opts);

            std::string label = std::string(kind == ModuleKind::Alu32
                                                ? "alu32"
                                                : "fpu32") +
                                " pair " + std::to_string(tested) +
                                " const " +
                                lift::fault_constant_name(fc);
            expect_identical(inc, scr, shadow.netlist, label);
        }
        if (++tested >= max_pairs)
            break;
    }
    EXPECT_GT(tested, 0u) << "corpus produced no liftable pairs";
}

TEST(FormalIncremental, Alu32EnginesBitIdentical)
{
    run_side_by_side(ModuleKind::Alu32, 3);
}

TEST(FormalIncremental, Fpu32EnginesBitIdentical)
{
    run_side_by_side(ModuleKind::Fpu32, 2);
}

/** The test_bmc multiplier cover: a * b == 143 at bound 4, needing
 *  real search — good for exercising resume and counters. */
Netlist
make_mul_cover(NetId *target_out)
{
    Netlist nl("mul");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 4);
    auto bb = nl.add_input_bus("b", 4);
    Bus aq, bq;
    for (int i = 0; i < 4; ++i) {
        aq.push_back(b.dff(a[size_t(i)]));
        bq.push_back(b.dff(bb[size_t(i)]));
    }
    Bus p = rtl::multiply(b, aq, bq);
    *target_out = rtl::bus_eq(b, p, b.const_bus(8, 143));
    nl.add_output_bus("p", p);
    return nl;
}

TEST(FormalIncremental, EscalationResumesInsteadOfRestarting)
{
    // Starved first rung, generous later rungs: the escalating
    // incremental session must converge to the same answer as a
    // single-shot run, and the session-resume accounting must show the
    // later rung continuing (attempts > 1) rather than re-solving from
    // a fresh instance.
    NetId target;
    Netlist nl = make_mul_cover(&target);

    BmcOptions generous;
    generous.max_frames = 4;
    BmcResult oneshot = check_cover(nl, target, generous);
    ASSERT_EQ(oneshot.status, BmcStatus::Covered);

    BmcOptions starved = generous;
    starved.conflict_budget = 1;
    EscalationPolicy policy;
    policy.max_attempts = 30;
    policy.budget_growth = 4.0;
    EscalatedBmcResult esc =
        check_cover_escalating(nl, target, starved, policy);
    EXPECT_GT(esc.attempts, 1);
    ASSERT_EQ(esc.result.status, BmcStatus::Covered);
    EXPECT_EQ(esc.result.frames, oneshot.frames);
    for (const auto &bus : {"a", "b", "p"})
        for (size_t f = 0; f < esc.result.trace.num_cycles(); ++f)
            EXPECT_TRUE(esc.result.trace.at(bus, f) ==
                        oneshot.trace.at(bus, f))
                << bus << " cycle " << f;
}

TEST(FormalIncremental, SettledSessionReplaysResult)
{
    NetId target;
    Netlist nl = make_mul_cover(&target);
    BmcOptions opts;
    opts.max_frames = 4;
    CoverSession session(nl, target, opts);
    BmcResult first = session.run();
    ASSERT_EQ(first.status, BmcStatus::Covered);
    EXPECT_TRUE(session.settled());
    BmcResult again = session.run();
    EXPECT_EQ(again.status, first.status);
    EXPECT_EQ(again.frames, first.frames);
    EXPECT_EQ(again.conflicts, 0u); // replay does no solving
}

TEST(FormalIncremental, IncrementalCountersAdvance)
{
    uint64_t solves0 = obs::counter("bmc.incremental_solves").value();
    uint64_t reused0 = obs::counter("bmc.frames_reused").value();
    uint64_t assume0 = obs::counter("sat.assumption_solves").value();

    NetId target;
    Netlist nl = make_mul_cover(&target);
    BmcOptions opts;
    opts.max_frames = 4;
    BmcResult r = check_cover(nl, target, opts);
    ASSERT_EQ(r.status, BmcStatus::Covered);
    // Registered inputs: p first reflects chosen operands at frame 1,
    // so the shortest cover is the 2-frame trace.
    EXPECT_EQ(r.frames, 2);

    // Bound 1 (fresh) and bound 2 (reusing the 1-frame prefix) are two
    // assumption queries on the one persistent instance.
    EXPECT_EQ(obs::counter("bmc.incremental_solves").value() - solves0,
              2u);
    EXPECT_EQ(obs::counter("bmc.frames_reused").value() - reused0, 1u);
    EXPECT_GE(obs::counter("sat.assumption_solves").value() - assume0,
              2u);
}

} // namespace
} // namespace vega::formal
