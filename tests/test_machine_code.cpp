#include "cpu/machine_code.h"

#include <gtest/gtest.h>

#include "cpu/assembler.h"
#include "workloads/kernels.h"

namespace vega::cpu {
namespace {

bool
same(const Instr &a, const Instr &b)
{
    return a.op == b.op && a.rd == b.rd && a.rs1 == b.rs1 &&
           a.rs2 == b.rs2 && a.imm == b.imm;
}

void
round_trip(const std::vector<Instr> &program)
{
    auto words = encode_program(program);
    ASSERT_EQ(words.size(), program.size());
    for (size_t i = 0; i < program.size(); ++i) {
        auto back = decode(words[i], i);
        ASSERT_TRUE(back.has_value())
            << "index " << i << ": " << render_asm(program[i]);
        EXPECT_TRUE(same(*back, program[i]))
            << "index " << i << ": " << render_asm(program[i]) << " vs "
            << render_asm(*back);
    }
}

TEST(MachineCode, KnownEncodings)
{
    // Golden words checked against the RISC-V spec.
    EXPECT_EQ(encode({Op::Addi, 0, 0, 0, 0}, 0), 0x00000013u); // nop
    EXPECT_EQ(encode({Op::Halt, 0, 0, 0, 0}, 0), 0x00100073u); // ebreak
    EXPECT_EQ(encode({Op::Add, 1, 2, 3, 0}, 0), 0x003100b3u);
    EXPECT_EQ(encode({Op::Sub, 1, 2, 3, 0}, 0), 0x403100b3u);
    EXPECT_EQ(encode({Op::Lui, 5, 0, 0, int32_t(0xdeadb000)}, 0),
              0xdeadb2b7u);
    EXPECT_EQ(encode({Op::Lw, 7, 6, 0, 16}, 0), 0x01032383u);
    EXPECT_EQ(encode({Op::Sw, 0, 6, 5, 16}, 0), 0x00532823u);
    EXPECT_EQ(encode({Op::Mul, 7, 5, 6, 0}, 0), 0x026283b3u);
    EXPECT_EQ(encode({Op::FaddS, 3, 1, 2, 0}, 0), 0x0020f1d3u); // rm=dyn
    // beq x1, x2, self-loop: offset 0.
    EXPECT_EQ(encode({Op::Beq, 0, 1, 2, 5}, 5), 0x00208063u);
}

TEST(MachineCode, BranchOffsetsAreInstructionRelative)
{
    Asm a;
    a.label("top");
    a.addi(5, 5, 1);
    a.bne(5, 6, "top"); // backward
    a.beq(5, 6, "end"); // forward
    a.addi(6, 6, 1);
    a.label("end");
    a.halt();
    round_trip(a.finish());
}

TEST(MachineCode, EveryOpcodeRoundTrips)
{
    Asm a;
    a.add(1, 2, 3);
    a.sub(4, 5, 6);
    a.sll(7, 8, 9);
    a.slt(10, 11, 12);
    a.sltu(13, 14, 15);
    a.xor_(1, 2, 3);
    a.srl(4, 5, 6);
    a.sra(7, 8, 9);
    a.or_(10, 11, 12);
    a.and_(13, 14, 15);
    a.addi(1, 2, -7);
    a.slti(3, 4, 100);
    a.sltiu(5, 6, 200);
    a.xori(7, 8, -1);
    a.ori(9, 10, 0x7f);
    a.andi(11, 12, 0xff);
    a.slli(13, 14, 5);
    a.srli(15, 16, 9);
    a.srai(17, 18, 31);
    a.lui(19, 0xabcde000);
    a.mul(20, 21, 22);
    a.mulh(23, 24, 25);
    a.mulhu(26, 27, 28);
    a.div(29, 30, 31);
    a.divu(1, 2, 3);
    a.rem(4, 5, 6);
    a.remu(7, 8, 9);
    a.lw(10, 11, 64);
    a.sw(12, 13, -32);
    a.lb(14, 15, 3);
    a.lbu(16, 17, 1);
    a.sb(18, 19, -1);
    a.jalr(1, 2, 8);
    a.fadd_s(1, 2, 3);
    a.fsub_s(4, 5, 6);
    a.fmul_s(7, 8, 9);
    a.fmin_s(10, 11, 12);
    a.fmax_s(13, 14, 15);
    a.feq_s(16, 17, 18);
    a.flt_s(19, 20, 21);
    a.fle_s(22, 23, 24);
    a.fmv_w_x(25, 26);
    a.fmv_x_w(27, 28);
    a.flw(29, 30, 12);
    a.fsw(31, 1, -8);
    a.csrr_fflags(2);
    a.csrw_fflags(3);
    a.label("self");
    a.j("self");
    a.halt();
    round_trip(a.finish());
}

class KernelEncoding : public ::testing::TestWithParam<size_t>
{
};

TEST_P(KernelEncoding, WholeKernelRoundTrips)
{
    round_trip(workloads::embench_suite()[GetParam()].program);
}

INSTANTIATE_TEST_SUITE_P(
    All, KernelEncoding, ::testing::Range(size_t(0), size_t(8)),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return workloads::embench_suite()[info.param].name;
    });

TEST(MachineCode, RejectsUnsupportedWords)
{
    EXPECT_FALSE(decode(0xffffffffu, 0).has_value());
    EXPECT_FALSE(decode(0x00000000u, 0).has_value()); // illegal
    // mulhsu: supported encoding space, unsupported op.
    EXPECT_FALSE(decode(0x022120b3u, 0).has_value());
}

TEST(MachineCode, ImmediateRangeChecked)
{
    EXPECT_DEATH(encode({Op::Addi, 1, 1, 0, 5000}, 0), "out of range");
}

} // namespace
} // namespace vega::cpu
