#include "lift/error_lifting.h"

#include <gtest/gtest.h>

#include "aging/timing_library.h"
#include "cpu/alu_ops.h"
#include "cpu/netlist_backend.h"
#include "rtl/alu32.h"
#include "sim/sp_profiler.h"

namespace vega::lift {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

/**
 * Shared fixture: age a tightly-calibrated ALU with a parked-input SP
 * profile so STA yields real violating pairs, then lift them.
 */
class AluLift : public ::testing::Test
{
  protected:
    static HwModule &module()
    {
        static HwModule m = [] {
            HwModule mod = rtl::make_alu32();
            sta::calibrate_timing_scale(mod, lib(), 0.99);
            return mod;
        }();
        return m;
    }

    static const sta::StaResult &sta_result()
    {
        static sta::StaResult r = [] {
            Simulator sim(module().netlist);
            // Park inputs at zero: worst-case NBTI stress everywhere.
            SpProfile profile = profile_signal_probability(
                sim, 64, [](Simulator &, uint64_t) {});
            sta::AgedTiming aged =
                sta::compute_aged_timing(module(), profile, lib(), 10.0);
            return sta::run_sta(module(), aged);
        }();
        return r;
    }
};

TEST_F(AluLift, AgedAluHasViolatingPairs)
{
    const sta::StaResult &r = sta_result();
    EXPECT_LT(r.wns_setup, 0.0);
    EXPECT_GT(r.pairs.size(), 0u);
}

TEST_F(AluLift, LiftingProducesValidatedTests)
{
    LiftConfig cfg;
    cfg.bmc.max_frames = 4;
    cfg.bmc.conflict_budget = 2000000;
    cfg.max_pairs = 3;

    LiftResult r = run_error_lifting(module(), sta_result().pairs, cfg);
    ASSERT_GT(r.pairs.size(), 0u);
    EXPECT_GT(r.n_success + r.n_unreachable + r.n_timeout +
                  r.n_conversion_failed,
              0u);

    // Every validated test must (a) pass on golden hardware (checked at
    // finalize) and (b) detect its own failing netlist from reset.
    for (const PairResult &pr : r.pairs) {
        for (const runtime::TestCase &tc : pr.tests) {
            EXPECT_GT(tc.cycle_cost, 0u);
            EXPECT_FALSE(tc.program.empty());
            EXPECT_FALSE(tc.assembly().empty());
        }
        if (pr.status == PairStatus::Success) {
            EXPECT_FALSE(pr.tests.empty());
        }
    }
}

TEST_F(AluLift, ValidatedTestDetectsViaFullSoftwareStack)
{
    LiftConfig cfg;
    cfg.bmc.max_frames = 4;
    cfg.max_pairs = 4;
    LiftResult r = run_error_lifting(module(), sta_result().pairs, cfg);

    // Find one validated test and run its full software block through
    // the ISS with the failing netlist as the ALU.
    for (const PairResult &pr : r.pairs) {
        for (size_t ci = 0; ci < pr.configs.size(); ++ci) {
            const ConfigOutcome &co = pr.configs[ci];
            if (!co.validated)
                continue;
            const runtime::TestCase *tc = nullptr;
            for (const auto &t : pr.tests)
                if (t.config == co.name)
                    tc = &t;
            ASSERT_NE(tc, nullptr);

            FailingNetlist failing =
                build_failing_netlist(module().netlist, co.spec);
            cpu::NetlistBackend backend(ModuleKind::Alu32, failing.netlist);
            cpu::Iss iss(tc->program);
            iss.set_alu_backend(&backend);
            auto status = iss.run();
            // Either the block flags a mismatch or the CPU stalls.
            bool detected = (status == cpu::Iss::Status::Halted &&
                             iss.reg(31) != 0) ||
                            status == cpu::Iss::Status::Stalled;
            // Initial-value dependence may hide the fault from the full
            // block even though the reset replay sees it (that is the
            // paper's Table 6 "L" phenomenon), so only require that the
            // healthy netlist never flags anything.
            cpu::NetlistBackend healthy_be(ModuleKind::Alu32,
                                           module().netlist);
            cpu::Iss healthy(tc->program);
            healthy.set_alu_backend(&healthy_be);
            ASSERT_EQ(healthy.run(), cpu::Iss::Status::Halted);
            EXPECT_EQ(healthy.reg(31), 0u);
            (void)detected;
            return; // one case is enough for this test
        }
    }
    GTEST_SKIP() << "no validated config in the first pairs";
}

TEST(ReplayOnModule, HealthyModuleNeverDetects)
{
    static HwModule m = rtl::make_alu32();
    runtime::TestCase tc;
    tc.module = ModuleKind::Alu32;
    tc.name = "healthy";
    tc.stimulus = {{5, 7, uint32_t(AluOp::Add), true, false},
                   {9, 3, uint32_t(AluOp::Sub), true, false}};
    tc.checks = {{0, 12, false}, {1, 6, false}};
    runtime::finalize_test_case(tc);
    EXPECT_EQ(replay_on_module(tc, m.netlist), runtime::Detection::None);
}

TEST(ReplayOnModule, WrongExpectationIsCaught)
{
    // Sanity: replay_on_module actually compares results.
    static HwModule m = rtl::make_alu32();
    runtime::TestCase tc;
    tc.module = ModuleKind::Alu32;
    tc.name = "wrong";
    tc.stimulus = {{5, 7, uint32_t(AluOp::Add), true, false}};
    tc.checks = {{0, 99, false}};
    tc.program = {cpu::Instr{cpu::Op::Halt, 0, 0, 0, 0}};
    EXPECT_EQ(replay_on_module(tc, m.netlist),
              runtime::Detection::Mismatch);
}

TEST_F(AluLift, HybridEngineMatchesFormalOutcomes)
{
    // The fuzz-first hybrid must lift the same pairs; fuzzed traces are
    // marked and validated through the identical conversion path.
    LiftConfig formal_cfg;
    formal_cfg.bmc.max_frames = 4;
    formal_cfg.max_pairs = 3;
    LiftConfig hybrid_cfg = formal_cfg;
    hybrid_cfg.engine = TraceEngine::Hybrid;

    LiftResult f = run_error_lifting(module(), sta_result().pairs,
                                     formal_cfg);
    LiftResult h = run_error_lifting(module(), sta_result().pairs,
                                     hybrid_cfg);
    ASSERT_EQ(f.pairs.size(), h.pairs.size());
    EXPECT_EQ(f.n_success, h.n_success);

    size_t fuzzed = 0;
    for (const auto &pr : h.pairs)
        for (const auto &co : pr.configs)
            fuzzed += co.fuzzed ? 1 : 0;
    EXPECT_GT(fuzzed, 0u);
}

TEST_F(AluLift, PureFuzzingCannotProveButStillLifts)
{
    LiftConfig cfg;
    cfg.engine = TraceEngine::Fuzzing;
    cfg.fuzz_episodes = 2000;
    cfg.max_pairs = 3;
    LiftResult r = run_error_lifting(module(), sta_result().pairs, cfg);
    // Observable ALU faults are easy prey for the fuzzer.
    EXPECT_GT(r.n_success, 0u);
    // And nothing can be proven unreachable without the formal engine.
    EXPECT_EQ(r.n_unreachable, 0u);
}

TEST_F(AluLift, StarvedFormalEngineReportsExhausted)
{
    // One conflict per attempt starves every BMC query; the escalation
    // ladder must retry the configured number of times and then record
    // a structured Exhausted outcome instead of a bare Timeout.
    LiftConfig cfg;
    cfg.bmc.max_frames = 4;
    cfg.bmc.conflict_budget = 1;
    cfg.max_pairs = 2;
    cfg.formal_attempts = 3;
    cfg.formal_budget_growth = 2.0;

    LiftResult r = run_error_lifting(module(), sta_result().pairs, cfg);
    ASSERT_GT(r.pairs.size(), 0u);
    bool saw_exhausted = false;
    for (const PairResult &pr : r.pairs)
        for (const ConfigOutcome &co : pr.configs) {
            if (co.bmc == formal::BmcStatus::Covered)
                continue;
            if (!co.exhausted)
                continue;
            saw_exhausted = true;
            EXPECT_EQ(co.attempts, 3);
            EXPECT_EQ(co.error.code, ErrorCode::Exhausted);
            EXPECT_NE(co.error.context.find("3 attempt"),
                      std::string::npos)
                << co.error.context;
            EXPECT_FALSE(co.degraded_to_fuzz);
        }
    EXPECT_TRUE(saw_exhausted);
}

TEST_F(AluLift, DegradedLadderFallsBackToFuzzing)
{
    // Same starved budget, but with the fuzz fallback enabled: every
    // configuration either gets a fuzzer trace (marked degraded) or an
    // Exhausted error that records the failed fallback.
    LiftConfig cfg;
    cfg.bmc.max_frames = 4;
    cfg.bmc.conflict_budget = 1;
    cfg.max_pairs = 2;
    cfg.formal_attempts = 2;
    cfg.formal_budget_growth = 2.0;
    cfg.degrade_to_fuzz = true;
    cfg.fuzz_episodes = 2000;

    LiftResult r = run_error_lifting(module(), sta_result().pairs, cfg);
    ASSERT_GT(r.pairs.size(), 0u);
    bool saw_any = false;
    for (const PairResult &pr : r.pairs)
        for (const ConfigOutcome &co : pr.configs) {
            saw_any = true;
            if (co.degraded_to_fuzz) {
                EXPECT_TRUE(co.fuzzed);
                EXPECT_EQ(co.bmc, formal::BmcStatus::Covered);
                EXPECT_FALSE(co.exhausted);
            } else if (co.exhausted) {
                EXPECT_EQ(co.error.code, ErrorCode::Exhausted);
                EXPECT_NE(co.error.context.find("fuzz fallback"),
                          std::string::npos)
                    << co.error.context;
            }
        }
    EXPECT_TRUE(saw_any);
}

TEST(TraceEngineNames, AreStable)
{
    EXPECT_STREQ(trace_engine_name(TraceEngine::Formal), "formal");
    EXPECT_STREQ(trace_engine_name(TraceEngine::Fuzzing), "fuzzing");
    EXPECT_STREQ(trace_engine_name(TraceEngine::Hybrid), "hybrid");
}

TEST(PairStatusNames, AreStable)
{
    EXPECT_STREQ(pair_status_name(PairStatus::Success), "S");
    EXPECT_STREQ(pair_status_name(PairStatus::Unreachable), "UR");
    EXPECT_STREQ(pair_status_name(PairStatus::Timeout), "FF");
    EXPECT_STREQ(pair_status_name(PairStatus::ConversionFailed), "FC");
}

} // namespace
} // namespace vega::lift
