/**
 * @file
 * Coverage for the C-language wrapper (runtime/c_api.h): handle
 * lifecycle, the four detection codes, and the policy enum round-trip
 * — all through plain C-style calls, the way a ctypes/bindgen binding
 * would drive it. No C++ runtime types cross these call sites.
 */
#include <gtest/gtest.h>

#include <cstring>

#include "runtime/c_api.h"

namespace {

TEST(CApi, LifecycleCreateUseDestroy)
{
    vega_library *lib =
        vega_library_create_demo(VEGA_SEQUENTIAL, 1.0, 42);
    ASSERT_NE(lib, nullptr);
    EXPECT_EQ(vega_library_num_tests(lib), 4u);
    EXPECT_GT(vega_library_suite_cycles(lib), 0u);

    // The demo suite on the healthy reference engine always passes.
    for (size_t i = 0; i < vega_library_num_tests(lib); ++i)
        EXPECT_EQ(vega_library_run_next(lib), VEGA_OK);
    EXPECT_EQ(vega_library_run_all(lib), VEGA_OK);
    vega_library_destroy(lib);
}

TEST(CApi, NullHandleIsSafe)
{
    vega_library_destroy(nullptr); // must be a no-op, not a crash
    EXPECT_EQ(vega_library_num_tests(nullptr), 0u);
    EXPECT_EQ(vega_library_suite_cycles(nullptr), 0u);
    EXPECT_EQ(vega_library_policy(nullptr), -1);
    // Driving a null library reports a fault, never VEGA_OK: a binding
    // that lost its handle must not conclude the hardware is healthy.
    EXPECT_NE(vega_library_run_next(nullptr), VEGA_OK);
    EXPECT_NE(vega_library_run_all(nullptr), VEGA_OK);
}

TEST(CApi, CreateRejectsBadArguments)
{
    EXPECT_EQ(vega_library_create_demo(-1, 1.0, 1), nullptr);
    EXPECT_EQ(vega_library_create_demo(VEGA_PROBABILISTIC + 1, 1.0, 1),
              nullptr);
    EXPECT_EQ(vega_library_create_demo(VEGA_SEQUENTIAL, 0.0, 1),
              nullptr);
    EXPECT_EQ(vega_library_create_demo(VEGA_SEQUENTIAL, -0.5, 1),
              nullptr);
    EXPECT_EQ(vega_library_create_demo(VEGA_SEQUENTIAL, 1.5, 1),
              nullptr);
}

TEST(CApi, PolicyEnumRoundTrips)
{
    const int policies[] = {VEGA_SEQUENTIAL, VEGA_RANDOM,
                            VEGA_PROBABILISTIC};
    for (int p : policies) {
        vega_library *lib = vega_library_create_demo(p, 0.5, 7);
        ASSERT_NE(lib, nullptr) << vega_policy_name(p);
        EXPECT_EQ(vega_library_policy(lib), p);
        vega_library_destroy(lib);
    }
}

TEST(CApi, DetectionCodesCoverRuntimeEnum)
{
    // The five codes are part of the ABI; bindings hard-code them.
    EXPECT_EQ(VEGA_OK, 0);
    EXPECT_EQ(VEGA_MISMATCH, 1);
    EXPECT_EQ(VEGA_STALL, 2);
    EXPECT_EQ(VEGA_TAG_ANOMALY, 3);
    EXPECT_EQ(VEGA_WRONG_ADDRESS, 4);
    EXPECT_STREQ(vega_detection_name(VEGA_OK), "ok");
    EXPECT_STREQ(vega_detection_name(VEGA_MISMATCH), "mismatch");
    EXPECT_STREQ(vega_detection_name(VEGA_STALL), "stall");
    EXPECT_STREQ(vega_detection_name(VEGA_TAG_ANOMALY), "tag_anomaly");
    EXPECT_STREQ(vega_detection_name(VEGA_WRONG_ADDRESS),
                 "wrong_address");
    EXPECT_STREQ(vega_detection_name(99), "invalid");
    EXPECT_STREQ(vega_detection_name(-1), "invalid");
}

TEST(CApi, MemFaultNamesAreStable)
{
    EXPECT_EQ(VEGA_MEM_FAULT_NONE, 0);
    EXPECT_EQ(VEGA_MEM_WRONG_ROW_READ, 1);
    EXPECT_EQ(VEGA_MEM_WRONG_ROW_WRITE, 2);
    EXPECT_EQ(VEGA_MEM_MULTI_SELECT, 3);
    EXPECT_EQ(VEGA_MEM_NO_SELECT, 4);
    EXPECT_STREQ(vega_mem_fault_name(VEGA_MEM_FAULT_NONE), "none");
    EXPECT_STREQ(vega_mem_fault_name(VEGA_MEM_WRONG_ROW_READ),
                 "wrong_row_read");
    EXPECT_STREQ(vega_mem_fault_name(VEGA_MEM_WRONG_ROW_WRITE),
                 "wrong_row_write");
    EXPECT_STREQ(vega_mem_fault_name(VEGA_MEM_MULTI_SELECT),
                 "multi_select");
    EXPECT_STREQ(vega_mem_fault_name(VEGA_MEM_NO_SELECT), "no_select");
    EXPECT_STREQ(vega_mem_fault_name(99), "invalid");
    EXPECT_STREQ(vega_mem_fault_name(-1), "invalid");
}

TEST(CApi, PolicyNamesAreStable)
{
    EXPECT_STREQ(vega_policy_name(VEGA_SEQUENTIAL), "sequential");
    EXPECT_STREQ(vega_policy_name(VEGA_RANDOM), "random");
    EXPECT_STREQ(vega_policy_name(VEGA_PROBABILISTIC),
                 "probabilistic");
    EXPECT_STREQ(vega_policy_name(42), "invalid");
    EXPECT_STREQ(vega_policy_name(-1), "invalid");
}

TEST(CApi, ProbabilisticPolicyMaySkipSlotsButNeverFaults)
{
    vega_library *lib =
        vega_library_create_demo(VEGA_PROBABILISTIC, 0.25, 11);
    ASSERT_NE(lib, nullptr);
    // Skipped slots and executed tests both report VEGA_OK on healthy
    // hardware; the point is that low probability never fabricates a
    // detection.
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(vega_library_run_next(lib), VEGA_OK);
    vega_library_destroy(lib);
}

} // namespace
