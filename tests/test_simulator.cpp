#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "sim/sp_profiler.h"

namespace vega {
namespace {

TEST(Simulator, CombinationalEval)
{
    Netlist nl("t");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 2);
    NetId y = b.xor_(a[0], a[1]);
    nl.add_output_bus("y", {y});

    Simulator sim(nl);
    for (int va = 0; va < 2; ++va) {
        for (int vb = 0; vb < 2; ++vb) {
            sim.set_input(a[0], va);
            sim.set_input(a[1], vb);
            EXPECT_EQ(sim.value(y), va != vb);
        }
    }
}

TEST(Simulator, DffDelaysOneCycle)
{
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q = b.dff(d[0], false);
    nl.add_output_bus("q", {q});

    Simulator sim(nl);
    EXPECT_FALSE(sim.value(q)); // init value
    sim.set_input(d[0], true);
    EXPECT_FALSE(sim.value(q)); // not clocked yet
    sim.step();
    EXPECT_TRUE(sim.value(q));
    sim.set_input(d[0], false);
    sim.step();
    EXPECT_FALSE(sim.value(q));
}

TEST(Simulator, DffInitValueAppliesAtReset)
{
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q = b.dff(d[0], true);
    nl.add_output_bus("q", {q});

    Simulator sim(nl);
    EXPECT_TRUE(sim.value(q));
    sim.step(); // d = 0 -> q drops
    EXPECT_FALSE(sim.value(q));
    sim.reset();
    EXPECT_TRUE(sim.value(q));
    EXPECT_EQ(sim.cycle(), 0u);
}

TEST(Simulator, ToggleCounterChain)
{
    // q <= !q : a 1-bit divider.
    Netlist nl("t");
    Builder b(nl);
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    nl.add_cell(CellType::Not, "inv", {q}, d);
    nl.add_dff("ff", d, q, false);
    nl.add_output_bus("q", {q});

    Simulator sim(nl);
    bool expected = false;
    for (int i = 0; i < 10; ++i) {
        EXPECT_EQ(sim.value(q), expected);
        sim.step();
        expected = !expected;
    }
    EXPECT_EQ(sim.cycle(), 10u);
}

TEST(Simulator, AtomicDffCommit)
{
    // Shift register: q2 must get q1's *old* value on the same edge.
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q1 = b.dff(d[0]);
    NetId q2 = b.dff(q1);
    nl.add_output_bus("q", {q1, q2});

    Simulator sim(nl);
    sim.set_input(d[0], true);
    sim.step();
    EXPECT_TRUE(sim.value(q1));
    EXPECT_FALSE(sim.value(q2)); // not yet
    sim.step();
    EXPECT_TRUE(sim.value(q2));
}

TEST(Simulator, BusRoundTrip)
{
    Netlist nl("t");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 8);
    Bus q;
    for (NetId n : a)
        q.push_back(b.dff(n));
    nl.add_output_bus("q", q);

    Simulator sim(nl);
    sim.set_bus("a", BitVec(8, 0x5a));
    sim.step();
    EXPECT_EQ(sim.bus_value("q").to_u64(), 0x5au);
}

TEST(Simulator, SaveRestoreRoundTrip)
{
    // Shift register driven, saved mid-flight, diverged, restored: the
    // replay must retrace the original trajectory exactly.
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q1 = b.dff(d[0]);
    NetId q2 = b.dff(q1);
    nl.add_output_bus("q", {q1, q2});

    Simulator sim(nl);
    sim.set_input(d[0], true);
    sim.step();
    auto saved = sim.save_state();
    bool saved_q1 = sim.value(q1), saved_q2 = sim.value(q2);

    sim.set_input(d[0], false);
    sim.step();
    sim.step();

    sim.restore_state(saved);
    EXPECT_EQ(sim.value(q1), saved_q1);
    EXPECT_EQ(sim.value(q2), saved_q2);
    sim.step();
    EXPECT_TRUE(sim.value(q2)); // q1's old 1 shifted on as before
}

TEST(Simulator, RestoreStateRejectsWrongSize)
{
    Netlist nl("t");
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q = b.dff(d[0]);
    nl.add_output_bus("q", {q});

    Simulator sim(nl);
    std::vector<uint8_t> wrong(nl.num_nets() + 1, 0);
    EXPECT_DEATH(sim.restore_state(wrong), "restore_state size");
    std::vector<uint8_t> empty;
    EXPECT_DEATH(sim.restore_state(empty), "restore_state size");
}

TEST(Simulator, SharedTapeMatchesPrivateTape)
{
    // Two simulators over one compiled tape are fully independent and
    // agree with a simulator that lowered the netlist itself.
    Netlist nl("t");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 4);
    Bus q;
    for (NetId n : a)
        q.push_back(b.dff(b.not_(n)));
    nl.add_output_bus("q", q);

    auto tape = std::make_shared<const EvalTape>(nl);
    Simulator s1(tape), s2(tape), owned(nl);
    s1.set_bus("a", BitVec(4, 0x5));
    s2.set_bus("a", BitVec(4, 0xa));
    owned.set_bus("a", BitVec(4, 0x5));
    s1.step();
    s2.step();
    owned.step();
    EXPECT_EQ(s1.bus_value("q").to_u64(), 0xau);
    EXPECT_EQ(s2.bus_value("q").to_u64(), 0x5u);
    EXPECT_EQ(s1.bus_value("q"), owned.bus_value("q"));
}

TEST(SpProfiler, CountsOnesFraction)
{
    // A constant-1 cell should profile SP = 1, constant-0 SP = 0, and a
    // toggling divider SP = 0.5.
    Netlist nl("t");
    Builder b(nl);
    NetId one = b.const1();
    NetId zero = b.const0();
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    CellId inv = nl.add_cell(CellType::Not, "inv", {q}, d);
    CellId ff = nl.add_dff("ff", d, q, false);
    nl.add_output_bus("o", {one, zero, q});

    Simulator sim(nl);
    auto profile = profile_signal_probability(
        sim, 1000, [](Simulator &, uint64_t) {});

    EXPECT_EQ(profile.samples(), 1000u);
    EXPECT_DOUBLE_EQ(profile.sp(nl.net(one).driver), 1.0);
    EXPECT_DOUBLE_EQ(profile.sp(nl.net(zero).driver), 0.0);
    EXPECT_NEAR(profile.sp(ff), 0.5, 0.01);
    EXPECT_NEAR(profile.sp(inv), 0.5, 0.01);
}

TEST(SpProfiler, MergeAccumulates)
{
    Netlist nl("t");
    Builder b(nl);
    NetId one = b.const1();
    nl.add_output_bus("o", {one});
    Simulator sim(nl);

    auto p1 = profile_signal_probability(sim, 10,
                                         [](Simulator &, uint64_t) {});
    auto p2 = profile_signal_probability(sim, 30,
                                         [](Simulator &, uint64_t) {});
    p1.merge(p2);
    EXPECT_EQ(p1.samples(), 40u);
    EXPECT_DOUBLE_EQ(p1.sp(0), 1.0);
}

} // namespace
} // namespace vega
