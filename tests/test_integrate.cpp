#include "integrate/integrator.h"

#include <gtest/gtest.h>

#include "cpu/alu_ops.h"
#include "cpu/iss.h"
#include "workloads/kernels.h"

namespace vega::integrate {
namespace {

using workloads::Kernel;

runtime::TestCase
tiny_test(const char *name, AluOp op, uint32_t a, uint32_t b)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    runtime::finalize_test_case(tc);
    return tc;
}

std::vector<runtime::TestCase>
suite()
{
    return {tiny_test("s0", AluOp::Add, 3, 4),
            tiny_test("s1", AluOp::Srl, 0x80000000u, 7)};
}

TEST(Profile, FindsBasicBlocks)
{
    Kernel k = workloads::make_crc32();
    auto blocks = find_basic_blocks(k.program);
    ASSERT_GT(blocks.size(), 3u);
    // Blocks tile the program exactly.
    size_t covered = 0;
    for (const auto &b : blocks) {
        EXPECT_EQ(b.first, covered);
        covered = b.last + 1;
    }
    EXPECT_EQ(covered, k.program.size());
}

TEST(Profile, CountsMatchExecution)
{
    Kernel k = workloads::make_crc32();
    Profile p = profile_program(k.program);
    EXPECT_GT(p.total_instructions, 0u);
    EXPECT_GT(p.total_cycles, 0u);
    // The bit loop runs 10 rounds * 64 bytes * 8 bits = 5120 times.
    bool found_hot = false;
    for (const auto &b : p.blocks)
        if (b.count == 5120)
            found_hot = true;
    EXPECT_TRUE(found_hot);
    // Entry block runs exactly once.
    EXPECT_EQ(p.blocks.front().count, 1u);
}

class IntegrateKernel : public ::testing::TestWithParam<size_t>
{
};

TEST_P(IntegrateKernel, InstrumentedProgramStillComputesCorrectly)
{
    const Kernel &k = workloads::embench_suite()[GetParam()];
    Profile p = profile_program(k.program);
    IntegrationResult r = integrate_tests(k.program, p, suite());

    cpu::Iss iss(r.program);
    ASSERT_EQ(iss.run(), cpu::Iss::Status::Halted) << k.name;
    EXPECT_EQ(iss.read_u32(workloads::kChecksumAddr), k.expected_checksum)
        << k.name;
    // Healthy hardware: the fault sentinel must stay clear.
    EXPECT_NE(iss.read_u32(kFaultSentinelAddr), kFaultSentinelValue);
}

TEST_P(IntegrateKernel, OverheadIsBounded)
{
    const Kernel &k = workloads::embench_suite()[GetParam()];
    Profile p = profile_program(k.program);
    IntegrationConfig cfg;
    cfg.overhead_threshold = 0.02;
    IntegrationResult r = integrate_tests(k.program, p, suite(), cfg);

    cpu::Iss base(k.program);
    base.run();
    cpu::Iss inst(r.program);
    inst.run();
    double overhead =
        double(inst.cycles()) / double(base.cycles()) - 1.0;
    // Generous bound: gate + throttled dispatch. The Figure 9 bench
    // reports the precise per-kernel numbers.
    EXPECT_LT(overhead, 0.25) << k.name;
    EXPECT_GE(inst.cycles(), base.cycles()) << k.name;
}

INSTANTIATE_TEST_SUITE_P(
    All, IntegrateKernel, ::testing::Range(size_t(0), size_t(8)),
    [](const ::testing::TestParamInfo<size_t> &info) {
        return workloads::embench_suite()[info.param].name;
    });

TEST(Integrator, ThrottlesWhenEstimateExceedsThreshold)
{
    const Kernel k = workloads::make_matmult();
    Profile p = profile_program(k.program);
    IntegrationConfig tight;
    tight.overhead_threshold = 1e-5;
    IntegrationResult r = integrate_tests(k.program, p, suite(), tight);
    if (r.estimated_overhead > tight.overhead_threshold) {
        EXPECT_LT(r.probability, 1.0);
    }

    IntegrationConfig loose;
    loose.overhead_threshold = 100.0;
    IntegrationResult r2 = integrate_tests(k.program, p, suite(), loose);
    EXPECT_DOUBLE_EQ(r2.probability, 1.0);
}

TEST(Integrator, PicksRoutineButCoolBlock)
{
    const Kernel k = workloads::make_crc32();
    Profile p = profile_program(k.program);
    IntegrationResult r = integrate_tests(k.program, p, suite());
    // The chosen block runs more than once (routine) but is not the
    // hottest block.
    uint64_t hottest = 0;
    for (const auto &b : p.blocks)
        hottest = std::max(hottest, b.count);
    EXPECT_GE(r.block_count, 2u);
    EXPECT_LT(r.block_count, hottest);
}

TEST(Integrator, FaultSentinelFiresWhenATestFails)
{
    // Integrate a deliberately wrong test: its compare fails even on
    // healthy hardware, so the integrated program must abort with the
    // sentinel. finalize_test_case would reject such a block, so build a
    // valid one and corrupt the loaded expectation afterwards.
    runtime::TestCase good = tiny_test("good", AluOp::Add, 1, 1);
    runtime::TestCase bad2 = tiny_test("bad2", AluOp::Add, 3, 4);
    for (auto &ins : bad2.program) {
        // Patch the loaded expected constant (7) to a wrong value.
        if (ins.op == cpu::Op::Addi && ins.imm == 7 && ins.rd == 28)
            ins.imm = 8;
    }

    const Kernel k = workloads::make_prime();
    Profile p = profile_program(k.program);
    IntegrationResult r = integrate_tests(k.program, p, {bad2, good});
    cpu::Iss iss(r.program);
    ASSERT_EQ(iss.run(), cpu::Iss::Status::Halted);
    EXPECT_EQ(iss.read_u32(kFaultSentinelAddr), kFaultSentinelValue);
}

} // namespace
} // namespace vega::integrate
