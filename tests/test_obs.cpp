#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "obs/json_lint.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::obs {
namespace {

// Metrics are process-global, so every test uses names under "test."
// that no production code touches.

TEST(ObsCounter, ConcurrentAddsSumExactly)
{
    Counter &c = counter("test.counter.concurrent");
    c.reset();
    constexpr int kThreads = 8;
    constexpr uint64_t kPerThread = 100000;
    std::vector<std::thread> workers;
    for (int t = 0; t < kThreads; ++t)
        workers.emplace_back([&c] {
            for (uint64_t i = 0; i < kPerThread; ++i)
                c.inc();
        });
    for (auto &w : workers)
        w.join();
    EXPECT_EQ(c.value(), kThreads * kPerThread);
}

TEST(ObsCounter, SameNameSameHandle)
{
    Counter &a = counter("test.counter.handle");
    Counter &b = counter("test.counter.handle");
    EXPECT_EQ(&a, &b);
    a.reset();
    a.add(3);
    EXPECT_EQ(b.value(), 3u);
}

TEST(ObsGauge, SetAddRecordMax)
{
    Gauge &g = gauge("test.gauge");
    g.set(5);
    EXPECT_EQ(g.value(), 5);
    g.add(-2);
    EXPECT_EQ(g.value(), 3);
    g.record_max(10);
    EXPECT_EQ(g.value(), 10);
    g.record_max(7); // below current: no effect
    EXPECT_EQ(g.value(), 10);
}

TEST(ObsHistogram, BucketBoundariesAreUpperInclusive)
{
    Histogram &h = histogram("test.histo.bounds", {1.0, 2.0, 4.0});
    h.reset();
    // Bucket i counts bounds[i-1] < v <= bounds[i].
    h.observe(0.5); // bucket 0
    h.observe(1.0); // bucket 0 (boundary is inclusive above)
    h.observe(1.5); // bucket 1
    h.observe(2.0); // bucket 1
    h.observe(4.0); // bucket 2
    h.observe(9.0); // overflow bucket
    EXPECT_EQ(h.bucket_count(0), 2u);
    EXPECT_EQ(h.bucket_count(1), 2u);
    EXPECT_EQ(h.bucket_count(2), 1u);
    EXPECT_EQ(h.bucket_count(3), 1u);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

TEST(ObsHistogram, ReRegistrationKeepsOriginalBounds)
{
    Histogram &a = histogram("test.histo.rereg", {1.0, 2.0});
    Histogram &b = histogram("test.histo.rereg", {99.0});
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.bounds().size(), 2u);
}

TEST(ObsSnapshot, JsonIsSortedDeterministicAndValid)
{
    counter("test.snap.b").reset();
    counter("test.snap.a").reset();
    counter("test.snap.a").add(1);
    counter("test.snap.b").add(2);
    gauge("test.snap.g").set(-7);
    MetricsSnapshot s1 = snapshot_metrics();
    MetricsSnapshot s2 = snapshot_metrics();
    std::string j1 = s1.to_json();
    EXPECT_EQ(j1, s2.to_json());
    EXPECT_TRUE(json_validate(j1).ok());
    // Sorted by name: a before b.
    size_t pa = j1.find("test.snap.a");
    size_t pb = j1.find("test.snap.b");
    ASSERT_NE(pa, std::string::npos);
    ASSERT_NE(pb, std::string::npos);
    EXPECT_LT(pa, pb);
    EXPECT_NE(j1.find("\"test.snap.g\":-7"), std::string::npos);
    // The summary names every metric too.
    std::string sum = s1.summary();
    EXPECT_NE(sum.find("test.snap.a"), std::string::npos);
}

TEST(ObsTrace, DisabledSpansRecordNothing)
{
    trace_disable();
    trace_enable(16); // clears prior events
    trace_disable();
    {
        VEGA_SPAN("test.disabled");
    }
    for (const TraceEvent &e : trace_collect())
        EXPECT_STRNE(e.name, "test.disabled");
}

TEST(ObsTrace, SpansNestAndExportIsValidChromeJson)
{
    trace_enable(1024);
    {
        VEGA_SPAN("test.outer");
        {
            VEGA_SPAN("test.inner");
        }
    }
    trace_disable();
    std::vector<TraceEvent> events = trace_collect();
    const TraceEvent *outer = nullptr, *inner = nullptr;
    for (const TraceEvent &e : events) {
        if (std::string(e.name) == "test.outer")
            outer = &e;
        if (std::string(e.name) == "test.inner")
            inner = &e;
    }
    ASSERT_NE(outer, nullptr);
    ASSERT_NE(inner, nullptr);
    // Proper nesting: inner begins after outer and ends before it.
    EXPECT_GE(inner->ts_ns, outer->ts_ns);
    EXPECT_LE(inner->ts_ns + inner->dur_ns,
              outer->ts_ns + outer->dur_ns);
    EXPECT_EQ(inner->tid, outer->tid);

    std::string json = chrome_trace_json(events);
    EXPECT_TRUE(json_validate(json).ok());
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("test.outer"), std::string::npos);
}

TEST(ObsTrace, FullRingDropsOldestAndCounts)
{
    trace_enable(4);
    for (int i = 0; i < 20; ++i) {
        VEGA_SPAN("test.ring");
    }
    trace_disable();
    EXPECT_GT(trace_dropped(), 0u);
    size_t ours = 0;
    for (const TraceEvent &e : trace_collect())
        if (std::string(e.name) == "test.ring")
            ++ours;
    EXPECT_LE(ours, 4u);
    EXPECT_GT(ours, 0u);
}

TEST(ObsLogging, ParseLogLevelAndOverride)
{
    LogLevel lvl = LogLevel::Info;
    EXPECT_TRUE(parse_log_level("debug", lvl));
    EXPECT_EQ(lvl, LogLevel::Debug);
    EXPECT_TRUE(parse_log_level("error", lvl));
    EXPECT_EQ(lvl, LogLevel::Error);
    EXPECT_FALSE(parse_log_level("verbose", lvl));
    EXPECT_FALSE(parse_log_level("", lvl));
    EXPECT_FALSE(parse_log_level("Debug", lvl)); // case-sensitive

    // set_log_level wins over whatever the environment said.
    LogLevel before = log_level();
    set_log_level(LogLevel::Warn);
    EXPECT_EQ(log_level(), LogLevel::Warn);
    set_log_level(before);
}

TEST(ObsHistogramQuantile, EmptyHistogramIsZero)
{
    Histogram h({1.0, 2.0, 4.0});
    EXPECT_EQ(h.quantile(0.5), 0.0);
    EXPECT_EQ(h.p99(), 0.0);
}

TEST(ObsHistogramQuantile, InterpolatesWithinBuckets)
{
    // 1..30 once each over bounds {10,20,30}: 10 per bucket, so the
    // interpolated quantile tracks the underlying uniform values.
    Histogram h({10.0, 20.0, 30.0});
    for (int v = 1; v <= 30; ++v)
        h.observe(double(v));
    EXPECT_NEAR(h.p50(), 15.0, 1e-9);
    EXPECT_NEAR(h.p95(), 28.5, 1e-9);
    EXPECT_NEAR(h.p99(), 29.7, 1e-9);
    EXPECT_NEAR(h.quantile(1.0), 30.0, 1e-9);
    // q=0 lands on the first observation's bucket, interpolated from
    // the implicit 0 lower edge.
    EXPECT_NEAR(h.quantile(0.0), 1.0, 1e-9);
}

TEST(ObsHistogramQuantile, OverflowClampsToLastBound)
{
    Histogram h({10.0});
    h.observe(5.0);
    for (int i = 0; i < 99; ++i)
        h.observe(1e6); // overflow bucket: no upper edge
    EXPECT_EQ(h.p99(), 10.0);
    EXPECT_EQ(h.quantile(1.0), 10.0);
}

TEST(ObsHistogramQuantile, MonotonicAcrossQ)
{
    Histogram h({1.0, 4.0, 16.0, 64.0});
    uint64_t x = 12345;
    for (int i = 0; i < 1000; ++i) {
        x = x * 6364136223846793005ull + 1442695040888963407ull;
        h.observe(double(x % 100));
    }
    double prev = -1.0;
    for (double q : {0.0, 0.1, 0.5, 0.9, 0.95, 0.99, 1.0}) {
        double v = h.quantile(q);
        EXPECT_GE(v, prev) << "q=" << q;
        prev = v;
    }
}

TEST(ObsHistogramQuantile, SnapshotExportsPercentileKeys)
{
    Histogram &h = histogram("test.histo.quantile", {10.0, 20.0});
    h.reset();
    for (int v = 1; v <= 20; ++v)
        h.observe(double(v));
    std::string json = snapshot_metrics().to_json();
    EXPECT_NE(json.find("\"p50\":"), std::string::npos);
    EXPECT_NE(json.find("\"p95\":"), std::string::npos);
    EXPECT_NE(json.find("\"p99\":"), std::string::npos);
    EXPECT_TRUE(json_validate(json).ok());

    // Snapshot entries answer the same quantile as the live histogram.
    MetricsSnapshot snap = snapshot_metrics();
    for (const auto &entry : snap.histograms) {
        if (entry.name != "test.histo.quantile")
            continue;
        EXPECT_NEAR(entry.quantile(0.5), h.p50(), 1e-9);
        EXPECT_NEAR(entry.quantile(0.99), h.p99(), 1e-9);
    }
}

TEST(ObsJsonLint, AcceptsValidRejectsGarbage)
{
    EXPECT_TRUE(json_validate("{\"a\":[1,2.5e3,true,null,\"x\"]}").ok());
    EXPECT_TRUE(json_validate("[]").ok());
    EXPECT_FALSE(json_validate("").ok());
    EXPECT_FALSE(json_validate("{").ok());
    EXPECT_FALSE(json_validate("{\"a\":1,}").ok());
    EXPECT_FALSE(json_validate("{\"a\":01}").ok());
    EXPECT_FALSE(json_validate("{\"a\":1} trailing").ok());
    EXPECT_FALSE(json_validate("nope").ok());
    EXPECT_FALSE(json_validate("\"unterminated").ok());
}

} // namespace
} // namespace vega::obs
