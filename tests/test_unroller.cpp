/**
 * @file
 * Standalone Unroller coverage: the long-lived incremental instance,
 * the free-initial/state-equality induction path, and the
 * activation-literal protocol — exercised directly rather than through
 * check_cover.
 */
#include "formal/unroller.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"

namespace vega::formal {
namespace {

using sat::Lit;

/** 3-bit counter counting up from reset; exposes the state nets. */
Netlist
make_counter(std::vector<NetId> *q_out)
{
    Netlist nl("counter");
    Builder b(nl);
    std::vector<NetId> q_nets;
    for (int i = 0; i < 3; ++i)
        q_nets.push_back(nl.new_net("q" + std::to_string(i)));
    NetId carry = b.const1();
    for (int i = 0; i < 3; ++i) {
        NetId d = b.xor_(q_nets[i], carry);
        carry = b.and_(q_nets[i], carry);
        nl.add_dff("ff" + std::to_string(i), d, q_nets[i], false);
    }
    nl.add_output_bus("count", {q_nets[0], q_nets[1], q_nets[2]});
    *q_out = q_nets;
    return nl;
}

unsigned
count_at(const Unroller &u, const std::vector<NetId> &q, int frame)
{
    unsigned v = 0;
    for (int i = 0; i < 3; ++i)
        v |= unsigned(u.value(frame, q[size_t(i)])) << i;
    return v;
}

TEST(Unroller, ResetUnrollingReplaysDeterministicState)
{
    // From reset the counter's value per frame is forced, so any model
    // of the unrolled instance must read back 0,1,2,...,k-1.
    std::vector<NetId> q;
    Netlist nl = make_counter(&q);
    Unroller u(nl, /*free_initial=*/false);
    u.ensure_frames(5);
    EXPECT_EQ(u.num_frames(), 5);
    ASSERT_EQ(u.solver().solve(), sat::Solver::Result::Sat);
    for (int f = 0; f < 5; ++f)
        EXPECT_EQ(count_at(u, q, f), unsigned(f)) << "frame " << f;
}

TEST(Unroller, FreeInitialExploresNonResetStates)
{
    // free_initial lifts the reset units: frame 0 may be any state. Pin
    // count@0 == 6 with unit clauses and check the model continues the
    // counter from there at every later frame.
    std::vector<NetId> q;
    Netlist nl = make_counter(&q);
    Unroller u(nl, /*free_initial=*/true);
    u.ensure_frames(2);
    auto &s = u.solver();
    s.add_clause(Lit(u.var(0, q[0]), true));  // bit0 = 0
    s.add_clause(Lit(u.var(0, q[1]), false)); // bit1 = 1
    s.add_clause(Lit(u.var(0, q[2]), false)); // bit2 = 1
    ASSERT_EQ(s.solve(), sat::Solver::Result::Sat);
    EXPECT_EQ(count_at(u, q, 0), 6u);
    EXPECT_EQ(count_at(u, q, 1), 7u);
}

TEST(Unroller, StateEqualitiesHoldInductivelyAcrossFrames)
{
    // Two free-running toggles tied equal at frame 0: equality is an
    // inductive invariant, so every model keeps them equal (and their
    // XOR low) at *every* frame, not just the constrained one.
    Netlist nl("ties");
    Builder b(nl);
    NetId q1 = nl.new_net("q1");
    NetId q2 = nl.new_net("q2");
    nl.add_dff("f1", b.not_(q1), q1, false);
    nl.add_dff("f2", b.not_(q2), q2, false);
    NetId diff = b.xor_(q1, q2);
    nl.add_output_bus("o", {diff});

    Unroller u(nl, /*free_initial=*/true, {{q1, q2}});
    const int frames = 4;
    u.ensure_frames(frames);
    // Force q1@0 = 1 so the run is not the all-zero reset state.
    u.solver().add_clause(Lit(u.var(0, q1), false));
    ASSERT_EQ(u.solver().solve(), sat::Solver::Result::Sat);
    EXPECT_TRUE(u.value(0, q1));
    for (int f = 0; f < frames; ++f) {
        EXPECT_EQ(u.value(f, q1), u.value(f, q2)) << "frame " << f;
        EXPECT_FALSE(u.value(f, diff)) << "frame " << f;
    }
    // And the tie is not vacuous: asking for a mismatch at any frame
    // is unsat on the same (still-usable) instance.
    Lit want_diff(u.var(frames - 1, diff), false);
    EXPECT_EQ(u.solver().solve({want_diff}), sat::Solver::Result::Unsat);
}

TEST(Unroller, AssumesArePinnedInEveryFrame)
{
    Netlist nl("asm");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 1);
    NetId q = b.dff(a[0]);
    nl.add_output_bus("o", {q});

    Unroller u(nl, /*free_initial=*/false);
    u.set_assumes({a[0]});
    u.ensure_frames(3);
    ASSERT_EQ(u.solver().solve(), sat::Solver::Result::Sat);
    for (int f = 0; f < 3; ++f)
        EXPECT_TRUE(u.value(f, a[0])) << "frame " << f;
    // q holds the assumed 1 from frame 1 on (reset 0 at frame 0).
    EXPECT_FALSE(u.value(0, q));
    EXPECT_TRUE(u.value(1, q));
    EXPECT_TRUE(u.value(2, q));
}

TEST(Unroller, ActivationLiteralsDriveDeepening)
{
    // The incremental BMC inner loop, by hand: counter == 3 first holds
    // at frame 3 (bound 4). Each bound is solve({act_k}) on the one
    // persistent instance; Unsat bounds are retired with a unit.
    std::vector<NetId> q;
    Netlist nl = make_counter(&q);
    Builder b(nl, "t");
    NetId target = b.and_n({q[0], q[1], b.not_(q[2])}); // count == 3
    nl.add_output_bus("hit", {target});

    Unroller u(nl, /*free_initial=*/false);
    for (int k = 1; k <= 4; ++k) {
        u.ensure_frames(k);
        Lit act = u.cover_activation(k - 1, target);
        // Repeat calls return the cached literal, not a fresh clause.
        EXPECT_EQ(u.cover_activation(k - 1, target), act);
        auto res = u.solver().solve({act});
        if (k < 4) {
            EXPECT_EQ(res, sat::Solver::Result::Unsat) << "bound " << k;
            EXPECT_FALSE(u.solver().failed_assumptions().empty());
            u.retire(act);
        } else {
            ASSERT_EQ(res, sat::Solver::Result::Sat) << "bound " << k;
            EXPECT_EQ(count_at(u, q, 3), 3u);
        }
    }
}

} // namespace
} // namespace vega::formal
