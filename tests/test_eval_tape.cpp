/**
 * @file
 * The compiled-tape contract: a freshly lowered EvalTape must behave
 * exactly like the pre-tape levelized simulator (a reference
 * interpreter of topo_order() + eval_cell lives below), and every lane
 * of the 64-lane BatchSimulator must match an independent scalar run
 * in lockstep — on random sequential netlists and on the real
 * ALU32/FPU32 blocks. Save/restore round-trips and the batched
 * SpProfile popcount path are pinned here too.
 */
#include "sim/eval_tape.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netlist/builder.h"
#include "rtl/alu32.h"
#include "rtl/fpu32.h"
#include "sim/batch_sim.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"

namespace vega {
namespace {

/**
 * Random sequential netlist: a soup of gates over the inputs plus
 * DFF-driven feedback nets, so batches exercise state commit as well
 * as combinational settling.
 */
Netlist
random_netlist(uint64_t seed, size_t n_inputs, size_t n_cells,
               size_t n_ffs)
{
    Rng rng(seed);
    Netlist nl("rand" + std::to_string(seed));
    Builder b(nl);
    auto ins = nl.add_input_bus("a", n_inputs);
    std::vector<NetId> pool(ins.begin(), ins.end());

    std::vector<NetId> fb;
    for (size_t i = 0; i < n_ffs; ++i) {
        NetId q = nl.new_net("fb" + std::to_string(i));
        fb.push_back(q);
        pool.push_back(q);
    }

    for (size_t i = 0; i < n_cells; ++i) {
        NetId x = pool[rng.below(pool.size())];
        NetId y = pool[rng.below(pool.size())];
        NetId s = pool[rng.below(pool.size())];
        NetId o = kInvalidId;
        switch (rng.below(11)) {
          case 0: o = b.buf(x); break;
          case 1: o = b.not_(x); break;
          case 2: o = b.and_(x, y); break;
          case 3: o = b.or_(x, y); break;
          case 4: o = b.xor_(x, y); break;
          case 5: o = b.nand_(x, y); break;
          case 6: o = b.nor_(x, y); break;
          case 7: o = b.xnor_(x, y); break;
          case 8: o = b.mux(x, y, s); break;
          case 9: o = b.const0(); break;
          case 10: o = b.const1(); break;
        }
        pool.push_back(o);
    }

    for (size_t i = 0; i < n_ffs; ++i)
        nl.add_dff("ff" + std::to_string(i),
                   pool[rng.below(pool.size())], fb[i], rng.chance(0.5));

    Bus outs;
    for (size_t i = 0; i < 8 && i < pool.size(); ++i)
        outs.push_back(pool[pool.size() - 1 - i]);
    nl.add_output_bus("r", outs);
    return nl;
}

/**
 * Reference interpreter replicating the pre-tape Simulator loop
 * verbatim (per-cycle topo_order() walk over AoS cells): the
 * regression oracle the compiled tape must match bit-for-bit.
 */
struct ReferenceSim
{
    const Netlist &nl;
    std::vector<uint8_t> values;

    explicit ReferenceSim(const Netlist &n) : nl(n), values(n.num_nets(), 0)
    {
        reset();
    }

    void reset()
    {
        std::fill(values.begin(), values.end(), 0);
        for (CellId c : nl.dffs())
            values[nl.cell(c).out] = nl.cell(c).init ? 1 : 0;
        eval();
    }

    void eval()
    {
        for (CellId c : nl.topo_order()) {
            const Cell &cell = nl.cell(c);
            bool a = cell.num_inputs() > 0 ? values[cell.in[0]] : false;
            bool b = cell.num_inputs() > 1 ? values[cell.in[1]] : false;
            bool s = cell.num_inputs() > 2 ? values[cell.in[2]] : false;
            values[cell.out] = eval_cell(cell.type, a, b, s) ? 1 : 0;
        }
    }

    void step()
    {
        eval();
        auto dffs = nl.dffs();
        std::vector<uint8_t> next;
        next.reserve(dffs.size());
        for (CellId c : dffs)
            next.push_back(values[nl.cell(c).in[0]]);
        for (size_t i = 0; i < dffs.size(); ++i)
            values[nl.cell(dffs[i]).out] = next[i];
        eval();
    }
};

TEST(EvalTape, LowersEveryNetToExactlyOneSlot)
{
    Netlist nl = random_netlist(11, 8, 200, 6);
    EvalTape tape(nl);
    EXPECT_EQ(tape.num_slots(), nl.num_nets());
    std::vector<bool> seen(tape.num_slots(), false);
    for (NetId n = 0; n < nl.num_nets(); ++n) {
        SlotId s = tape.slot(n);
        ASSERT_LT(s, tape.num_slots());
        EXPECT_FALSE(seen[s]) << "slot " << s << " assigned twice";
        seen[s] = true;
    }
    // Constants are hoisted out of the per-cycle stream; everything
    // combinational and non-constant is in it, in some order.
    size_t n_comb = 0, n_const = 0, n_dff = 0;
    for (const Cell &c : nl.cells()) {
        if (c.type == CellType::Dff)
            ++n_dff;
        else if (c.type == CellType::Const0 || c.type == CellType::Const1)
            ++n_const;
        else
            ++n_comb;
    }
    EXPECT_EQ(tape.num_instrs(), n_comb);
    EXPECT_EQ(tape.const_rules().size(), n_const);
    EXPECT_EQ(tape.dff_rules().size(), n_dff);
}

TEST(EvalTape, MatchesPreTapeReferenceOnRandomNetlists)
{
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        Netlist nl = random_netlist(seed, 10, 300, 8);
        Simulator sim(nl);
        ReferenceSim ref(nl);
        Rng stim(seed * 977);
        auto inputs = nl.primary_inputs();
        for (int t = 0; t < 20; ++t) {
            for (NetId in : inputs) {
                bool v = stim.chance(0.5);
                sim.set_input(in, v);
                ref.values[in] = v ? 1 : 0;
            }
            sim.eval();
            ref.eval();
            for (NetId n = 0; n < nl.num_nets(); ++n)
                ASSERT_EQ(sim.value(n), bool(ref.values[n]))
                    << "seed " << seed << " cycle " << t << " net "
                    << nl.net(n).name;
            sim.step();
            ref.step();
        }
    }
}

TEST(BatchSimulator, LockstepWithScalarOnRandomNetlists)
{
    for (uint64_t seed : {21u, 22u, 23u}) {
        Netlist nl = random_netlist(seed, 6, 250, 10);
        auto tape = std::make_shared<const EvalTape>(nl);
        BatchSimulator batch(tape);
        std::vector<std::unique_ptr<Simulator>> lanes;
        for (int l = 0; l < BatchSimulator::kLanes; ++l)
            lanes.push_back(std::make_unique<Simulator>(tape));

        Rng stim(seed * 1319);
        auto inputs = nl.primary_inputs();
        for (int t = 0; t < 12; ++t) {
            for (NetId in : inputs) {
                uint64_t plane = stim.next();
                batch.set_input(in, plane);
                for (int l = 0; l < BatchSimulator::kLanes; ++l)
                    lanes[l]->set_input(in, (plane >> l) & 1);
            }
            for (NetId n = 0; n < nl.num_nets(); ++n) {
                uint64_t plane = batch.value(n);
                for (int l = 0; l < BatchSimulator::kLanes; ++l)
                    ASSERT_EQ((plane >> l) & 1,
                              uint64_t(lanes[l]->value(n)))
                        << "seed " << seed << " cycle " << t << " lane "
                        << l << " net " << nl.net(n).name;
            }
            batch.step();
            for (auto &lane : lanes)
                lane->step();
        }
    }
}

/** All 64 lanes vs 64 scalar runs on a real block, via its port buses. */
void
lockstep_module(const Netlist &nl, bool is_fpu, uint64_t seed)
{
    auto tape = std::make_shared<const EvalTape>(nl);
    BatchSimulator batch(tape);
    std::vector<std::unique_ptr<Simulator>> lanes;
    for (int l = 0; l < BatchSimulator::kLanes; ++l)
        lanes.push_back(std::make_unique<Simulator>(tape));

    Rng stim(seed);
    std::vector<std::string> outs(nl.output_bus_names());
    for (int t = 0; t < 6; ++t) {
        for (int l = 0; l < BatchSimulator::kLanes; ++l) {
            BitVec a(32, stim.next());
            BitVec b(32, stim.next());
            BitVec op(is_fpu ? 3 : 4, stim.below(is_fpu ? 8 : 10));
            batch.set_bus_lane("a", l, a);
            batch.set_bus_lane("b", l, b);
            batch.set_bus_lane("op", l, op);
            lanes[l]->set_bus("a", a);
            lanes[l]->set_bus("b", b);
            lanes[l]->set_bus("op", op);
            if (is_fpu) {
                BitVec valid(1, stim.chance(0.8) ? 1 : 0);
                batch.set_bus_lane("valid", l, valid);
                batch.set_bus_lane("clear", l, BitVec(1, 0));
                lanes[l]->set_bus("valid", valid);
                lanes[l]->set_bus("clear", BitVec(1, 0));
            }
        }
        for (const std::string &bus : outs)
            for (int l = 0; l < BatchSimulator::kLanes; ++l)
                ASSERT_EQ(batch.bus_value(bus, l),
                          lanes[l]->bus_value(bus))
                    << "cycle " << t << " lane " << l << " bus " << bus;
        batch.step();
        for (auto &lane : lanes)
            lane->step();
    }
}

TEST(BatchSimulator, LockstepWithScalarOnAlu32)
{
    static HwModule m = rtl::make_alu32();
    lockstep_module(m.netlist, false, 4242);
}

TEST(BatchSimulator, LockstepWithScalarOnFpu32)
{
    static HwModule m = rtl::make_fpu32();
    lockstep_module(m.netlist, true, 2424);
}

TEST(BatchSimulator, SaveRestoreRoundTrip)
{
    Netlist nl = random_netlist(77, 6, 150, 8);
    BatchSimulator sim(nl);
    Rng stim(99);
    auto inputs = nl.primary_inputs();
    auto drive = [&](Rng &r) {
        for (NetId in : inputs)
            sim.set_input(in, r.next());
    };
    Rng first(5);
    drive(first);
    sim.run(4);
    auto saved = sim.save_state();

    Rng cont(6);
    drive(cont);
    sim.run(3);
    std::vector<uint64_t> after;
    for (NetId n = 0; n < nl.num_nets(); ++n)
        after.push_back(sim.value(n));

    sim.restore_state(saved);
    Rng replay(6);
    drive(replay);
    sim.run(3);
    for (NetId n = 0; n < nl.num_nets(); ++n)
        EXPECT_EQ(sim.value(n), after[n]) << nl.net(n).name;
}

TEST(BatchSimulator, RestoreStateRejectsWrongSize)
{
    Netlist nl = random_netlist(78, 4, 40, 2);
    BatchSimulator sim(nl);
    std::vector<uint64_t> wrong(nl.num_nets() + 3, 0);
    EXPECT_DEATH(sim.restore_state(wrong), "restore_state plane count");
}

TEST(SpProfiler, BatchSampleMatchesMergedLanes)
{
    // Profiling N cycles in one 64-lane batch must equal merging 64
    // single-lane profiles bit-for-bit in ones/transitions/samples.
    Netlist nl = random_netlist(55, 6, 200, 10);
    auto tape = std::make_shared<const EvalTape>(nl);
    auto inputs = nl.primary_inputs();
    const uint64_t kCycles = 40;

    // Pre-draw the stimulus planes so scalar lanes can replay bits.
    Rng stim(31337);
    std::vector<std::vector<uint64_t>> planes(kCycles);
    for (auto &row : planes)
        for (size_t i = 0; i < inputs.size(); ++i)
            row.push_back(stim.next());

    BatchSimulator batch(tape);
    SpProfile batched = profile_signal_probability_batch(
        batch, kCycles, [&](BatchSimulator &s, uint64_t t) {
            for (size_t i = 0; i < inputs.size(); ++i)
                s.set_input(inputs[i], planes[t][i]);
        });

    SpProfile merged(nl.num_cells());
    for (int lane = 0; lane < BatchSimulator::kLanes; ++lane) {
        Simulator sim(tape);
        SpProfile p = profile_signal_probability(
            sim, kCycles, [&](Simulator &s, uint64_t t) {
                for (size_t i = 0; i < inputs.size(); ++i)
                    s.set_input(inputs[i], (planes[t][i] >> lane) & 1);
            });
        merged.merge(p);
    }

    ASSERT_EQ(batched.samples(), merged.samples());
    ASSERT_EQ(batched.samples(), kCycles * BatchSimulator::kLanes);
    for (CellId c = 0; c < nl.num_cells(); ++c) {
        // sp/activity are integer-counter ratios: exact doubles, so
        // exact equality here means ones_/transitions_ are identical.
        EXPECT_DOUBLE_EQ(batched.sp(c), merged.sp(c)) << "cell " << c;
        EXPECT_DOUBLE_EQ(batched.activity(c), merged.activity(c))
            << "cell " << c;
    }
}

TEST(SpProfiler, MixedSampleWidthsAreRejected)
{
    Netlist nl = random_netlist(56, 4, 50, 2);
    auto tape = std::make_shared<const EvalTape>(nl);
    Simulator sim(tape);
    BatchSimulator batch(tape);

    SpProfile p(nl.num_cells());
    p.sample(sim);
    EXPECT_DEATH(p.sample(batch), "batch sample");

    SpProfile q(nl.num_cells());
    q.sample(batch);
    EXPECT_DEATH(q.sample(sim), "scalar sample");
}

} // namespace
} // namespace vega
