#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "cpu/alu_ops.h"
#include "fleet/fault_matrix.h"
#include "mem/decoder_lift.h"
#include "mem/mem_backend.h"
#include "rtl/memdec.h"
#include "runtime/suite_io.h"
#include "sim/simulator.h"
#include "vega/workflow.h"
#include "workloads/march.h"

namespace vega {
namespace {

using mem::MemFaultClass;
using mem::MemFaultKind;

const aging::AgingTimingLibrary &
lib()
{
    static aging::AgingTimingLibrary l =
        aging::AgingTimingLibrary::build(aging::RdModelParams{});
    return l;
}

/** Drive addr/we/din and step once. */
void
drive(Simulator &sim, uint32_t addr, bool we, uint32_t din)
{
    sim.set_bus("addr", BitVec(4, addr));
    sim.set_bus("we", BitVec(1, we ? 1 : 0));
    sim.set_bus("din", BitVec(8, din));
    sim.step();
}

// ---------------------------------------------------------------------
// Substrate behavior

TEST(MemDecSubstrate, WordlinesAreOneHot)
{
    HwModule m = rtl::make_memdec16();
    Simulator sim(m.netlist);
    sim.reset();
    for (uint32_t a = 0; a < 16; ++a) {
        for (int i = 0; i < 3; ++i)
            drive(sim, a, false, 0);
        BitVec rwl = sim.bus_value("rwl");
        BitVec wwl = sim.bus_value("wwl");
        EXPECT_EQ(rwl.popcount(), 1u) << "addr " << a;
        EXPECT_TRUE(rwl.get(a)) << "addr " << a;
        EXPECT_EQ(wwl.popcount(), 1u) << "addr " << a;
        EXPECT_TRUE(wwl.get(a)) << "addr " << a;
    }
}

TEST(MemDecSubstrate, WriteReadRoundTrip)
{
    HwModule m = rtl::make_memdec16();
    Simulator sim(m.netlist);
    sim.reset();

    // Write distinct values to three rows, then read them back.
    const uint32_t rows[3] = {0, 7, 15};
    const uint32_t vals[3] = {0xa5, 0x3c, 0xff};
    for (int i = 0; i < 3; ++i)
        for (int c = 0; c < 5; ++c)
            drive(sim, rows[i], true, vals[i]);
    for (int i = 0; i < 3; ++i) {
        for (int c = 0; c < 5; ++c)
            drive(sim, rows[i], false, 0);
        EXPECT_EQ(sim.bus_value("rdata").to_u64(), vals[i])
            << "row " << rows[i];
    }

    // Overwrite one row; the neighbors keep their data.
    for (int c = 0; c < 5; ++c)
        drive(sim, 7, true, 0x11);
    for (int c = 0; c < 5; ++c)
        drive(sim, 7, false, 0);
    EXPECT_EQ(sim.bus_value("rdata").to_u64(), 0x11u);
    for (int c = 0; c < 5; ++c)
        drive(sim, 15, false, 0);
    EXPECT_EQ(sim.bus_value("rdata").to_u64(), 0xffu);
}

TEST(MemDecSubstrate, ParamValidation)
{
    rtl::MemDecParams p;
    p.addr_bits = 1;
    EXPECT_DEATH(rtl::make_memdec(p), "memdec");
    p.addr_bits = 5;
    EXPECT_DEATH(rtl::make_memdec(p), "memdec");
    p.addr_bits = 3;
    p.word_bits = 0;
    EXPECT_DEATH(rtl::make_memdec(p), "memdec");
    p.word_bits = 4;
    HwModule m = rtl::make_memdec(p);
    EXPECT_EQ(m.netlist.bus("rwl").size(), 8u);
}

// ---------------------------------------------------------------------
// Gate-stage discovery helpers

/** An address rail repeater: a Buf fed by a DFF whose output fans out
 *  to several pre-decode literals. */
CellId
find_rail_buffer(const Netlist &nl)
{
    for (CellId c = 0; c < CellId(nl.num_cells()); ++c) {
        const Cell &cell = nl.cell(c);
        if (cell.type != CellType::Buf)
            continue;
        CellId drv = nl.net(cell.in[0]).driver;
        if (drv == kInvalidId || nl.cell(drv).type != CellType::Dff)
            continue;
        if (nl.readers(cell.out).size() > 1)
            return c;
    }
    return kInvalidId;
}

/** A pre-decode NAND: both inputs are address literals (Buf/Not of a
 *  rail repeater). */
CellId
find_predecode_nand(const Netlist &nl)
{
    for (CellId c = 0; c < CellId(nl.num_cells()); ++c) {
        const Cell &cell = nl.cell(c);
        if (cell.type != CellType::Nand2)
            continue;
        bool pre = true;
        for (int k = 0; k < 2 && pre; ++k) {
            CellId drv = nl.net(cell.in[size_t(k)]).driver;
            if (drv == kInvalidId) {
                pre = false;
                break;
            }
            const Cell &d = nl.cell(drv);
            if (d.type != CellType::Buf && d.type != CellType::Not) {
                pre = false;
                break;
            }
            CellId dd = nl.net(d.in[0]).driver;
            if (dd == kInvalidId || nl.cell(dd).type != CellType::Buf)
                pre = false;
        }
        if (pre)
            return c;
    }
    return kInvalidId;
}

/** A final-stage NAND: inputs are pre-decode lines (Not of a NAND). */
CellId
find_final_nand(const Netlist &nl)
{
    for (CellId c = 0; c < CellId(nl.num_cells()); ++c) {
        const Cell &cell = nl.cell(c);
        if (cell.type != CellType::Nand2)
            continue;
        CellId drv = nl.net(cell.in[0]).driver;
        if (drv == kInvalidId || nl.cell(drv).type != CellType::Not)
            continue;
        CellId dd = nl.net(nl.cell(drv).in[0]).driver;
        if (dd != kInvalidId && nl.cell(dd).type == CellType::Nand2)
            return c;
    }
    return kInvalidId;
}

// ---------------------------------------------------------------------
// Decoder lifting: stage-dependent fault classes

TEST(DecoderLift, AddressRepeaterLiftsToWrongRow)
{
    HwModule m = rtl::make_memdec16();
    CellId gate = find_rail_buffer(m.netlist);
    ASSERT_NE(gate, kInvalidId);

    // A stale shared address bit gives the whole stack a hybrid
    // address: exactly one wrong row selected, the right one missing.
    MemFaultClass cls = mem::classify_slow_gate(m.netlist, gate);
    EXPECT_TRUE(cls.kind == MemFaultKind::WrongRowRead ||
                cls.kind == MemFaultKind::WrongRowWrite)
        << cls.to_string();
    // The rail feeds the read and write stacks alike.
    EXPECT_TRUE(cls.affects_read);
    EXPECT_TRUE(cls.affects_write);
    EXPECT_NE(cls.victim, cls.aggressor);
    EXPECT_GT(cls.patterns, 0u);
    EXPECT_TRUE(validate_fault_class(cls).ok());
}

TEST(DecoderLift, PreDecodeGateLiftsToMultiSelectOnBothPorts)
{
    HwModule m = rtl::make_memdec16();
    CellId gate = find_predecode_nand(m.netlist);
    ASSERT_NE(gate, kInvalidId);

    // A stale group line keeps the old group selected next to the new
    // one — and the shared pre-decode shows it on both ports.
    MemFaultClass cls = mem::classify_slow_gate(m.netlist, gate);
    EXPECT_TRUE(cls.kind == MemFaultKind::MultiSelect ||
                cls.kind == MemFaultKind::NoSelect)
        << cls.to_string();
    EXPECT_TRUE(cls.affects_read);
    EXPECT_TRUE(cls.affects_write);
    EXPECT_TRUE(validate_fault_class(cls).ok());
}

TEST(DecoderLift, FinalStageGateLiftsToMultiOrNoSelect)
{
    HwModule m = rtl::make_memdec16();
    CellId gate = find_final_nand(m.netlist);
    ASSERT_NE(gate, kInvalidId);

    MemFaultClass cls = mem::classify_slow_gate(m.netlist, gate);
    EXPECT_TRUE(cls.kind == MemFaultKind::MultiSelect ||
                cls.kind == MemFaultKind::NoSelect)
        << cls.to_string();
    // A final-stage gate sits in exactly one port's stack.
    EXPECT_NE(cls.affects_read, cls.affects_write);
    EXPECT_TRUE(validate_fault_class(cls).ok());
}

TEST(DecoderLift, DatapathGateDoesNotLift)
{
    HwModule m = rtl::make_memdec16();
    // A write-mux cell is behind the wordlines: a slow gate there
    // corrupts values, never addresses.
    CellId gate = kInvalidId;
    for (CellId c = 0; c < CellId(m.netlist.num_cells()); ++c)
        if (m.netlist.cell(c).type == CellType::Mux2) {
            gate = c;
            break;
        }
    ASSERT_NE(gate, kInvalidId);
    MemFaultClass cls = mem::classify_slow_gate(m.netlist, gate);
    EXPECT_EQ(cls.kind, MemFaultKind::None) << cls.to_string();
}

TEST(DecoderLift, SlowGateNetlistRejectsDffTarget)
{
    HwModule m = rtl::make_memdec16();
    CellId dff = m.netlist.dffs().front();
    EXPECT_DEATH(mem::build_slow_gate_netlist(m.netlist, dff),
                 "combinational");
    EXPECT_DEATH(mem::build_slow_gate_netlist(
                     m.netlist, CellId(m.netlist.num_cells())),
                 "out of range");
}

// ---------------------------------------------------------------------
// Fault-class validation negatives

TEST(FaultClass, ValidationNegatives)
{
    MemFaultClass c;
    c.kind = MemFaultKind::WrongRowRead;
    c.rows = 16;
    c.victim = 3;
    c.aggressor = 3; // self-aliasing wrong-row is a classification bug
    c.affects_read = true;
    EXPECT_FALSE(mem::validate_fault_class(c).ok());

    c.aggressor = 16; // out of range
    EXPECT_FALSE(mem::validate_fault_class(c).ok());

    c.aggressor = 5;
    c.rows = 12; // not a power of two
    EXPECT_FALSE(mem::validate_fault_class(c).ok());

    c.rows = 16;
    c.affects_read = false; // non-None class that affects nothing
    EXPECT_FALSE(mem::validate_fault_class(c).ok());

    c.affects_read = true;
    EXPECT_TRUE(mem::validate_fault_class(c).ok());

    c.kind = MemFaultKind::NoSelect;
    c.victim = 2;
    c.aggressor = 4; // no-select starves its own row only
    EXPECT_FALSE(mem::validate_fault_class(c).ok());
    c.victim = 4;
    EXPECT_TRUE(mem::validate_fault_class(c).ok());

    MemFaultClass none;
    EXPECT_TRUE(mem::validate_fault_class(none).ok());
}

// ---------------------------------------------------------------------
// Injector semantics

MemFaultClass
make_class(MemFaultKind kind, uint32_t victim, uint32_t aggressor,
           bool rd, bool wr)
{
    MemFaultClass c;
    c.kind = kind;
    c.rows = 16;
    c.victim = victim;
    c.aggressor = aggressor;
    c.affects_read = rd;
    c.affects_write = wr;
    c.patterns = 1;
    return c;
}

TEST(MemFaultInjector, WrongRowReadRedirectsLoadsOnly)
{
    mem::MemFaultInjector inj(
        make_class(MemFaultKind::WrongRowRead, 3, 5, true, false));
    uint32_t aggr = 4096 + 5 * 4;
    auto load = inj.access(aggr, false);
    EXPECT_EQ(load.addr, 4096u + 3 * 4);
    EXPECT_FALSE(load.has_extra);
    EXPECT_FALSE(load.squash);
    auto store = inj.access(aggr, true); // write stack is healthy
    EXPECT_EQ(store.addr, aggr);
    auto other = inj.access(4096 + 9 * 4, false);
    EXPECT_EQ(other.addr, 4096u + 9 * 4);
    EXPECT_EQ(inj.accesses(), 3u);
    EXPECT_EQ(inj.applied(), 1u);
}

TEST(MemFaultInjector, StripeAliasingCoversAllOfMemory)
{
    mem::MemFaultInjector inj(
        make_class(MemFaultKind::WrongRowRead, 1, 2, true, false));
    // Row bits repeat every 64 bytes: the fault follows the stripe.
    auto p = inj.access(4096 + 64 * 7 + 2 * 4, false);
    EXPECT_EQ(p.addr, 4096u + 64 * 7 + 1 * 4);
}

TEST(MemFaultInjector, MultiSelectAddsExtraRow)
{
    mem::MemFaultInjector inj(
        make_class(MemFaultKind::MultiSelect, 2, 6, true, true));
    uint32_t aggr = 4096 + 6 * 4;
    auto load = inj.access(aggr, false);
    EXPECT_EQ(load.addr, aggr);
    EXPECT_TRUE(load.has_extra);
    EXPECT_EQ(load.extra, 4096u + 2 * 4);
    auto store = inj.access(aggr, true);
    EXPECT_TRUE(store.has_extra);
}

TEST(MemFaultInjector, NoSelectSquashes)
{
    mem::MemFaultInjector inj(
        make_class(MemFaultKind::NoSelect, 6, 6, true, true));
    auto load = inj.access(4096 + 6 * 4, false);
    EXPECT_TRUE(load.squash);
    auto store = inj.access(4096 + 6 * 4, true);
    EXPECT_TRUE(store.squash);
}

TEST(MemFaultInjector, RejectsInvalidClass)
{
    EXPECT_DEATH(mem::MemFaultInjector inj(make_class(
                     MemFaultKind::WrongRowRead, 3, 3, true, false)),
                 "fault class");
}

// ---------------------------------------------------------------------
// March tests: golden pass, faulty detection, value probes miss

TEST(MarchTests, GoldenMemoryPassesAllAlgorithms)
{
    MemFaultClass healthy; // kind None: injector is a no-op
    std::vector<runtime::TestCase> suite = {
        workloads::make_march_test(workloads::mats_plus(),
                                   runtime::kMemTestRows),
        workloads::make_march_test(workloads::march_cminus(),
                                   runtime::kMemTestRows),
        workloads::make_random_march_test(runtime::kMemTestRows, 32, 99),
    };
    for (const auto &tc : suite) {
        mem::MarchEngine engine(healthy);
        EXPECT_EQ(engine.run(tc), runtime::Detection::None) << tc.name;
        EXPECT_GT(engine.cycles(), 0u);
    }
}

TEST(MarchTests, MarchDetectsEveryInjectableClass)
{
    runtime::TestCase march = workloads::make_march_test(
        workloads::march_cminus(), runtime::kMemTestRows);
    const MemFaultClass classes[] = {
        make_class(MemFaultKind::WrongRowRead, 3, 5, true, false),
        make_class(MemFaultKind::WrongRowWrite, 3, 5, false, true),
        make_class(MemFaultKind::MultiSelect, 2, 6, true, true),
        make_class(MemFaultKind::NoSelect, 6, 6, true, true),
    };
    for (const MemFaultClass &cls : classes) {
        mem::MarchEngine engine(cls);
        EXPECT_EQ(engine.run(march), runtime::Detection::WrongAddress)
            << cls.to_string();
    }
}

TEST(MarchTests, AluValueProbeMissesAddressFaults)
{
    // The acceptance scenario: a wrong-address fault that a march test
    // flags but a datapath value probe sails straight through.
    runtime::TestCase probe;
    probe.name = "alu_probe";
    probe.module = ModuleKind::Alu32;
    probe.stimulus = {
        runtime::ModuleStep{0xdeadbeef, 0x01020304,
                            uint32_t(AluOp::Add), true, false}};
    probe.checks = {
        {0, alu_compute(AluOp::Add, 0xdeadbeef, 0x01020304), false}};
    runtime::finalize_test_case(probe);

    MemFaultClass cls =
        make_class(MemFaultKind::WrongRowRead, 3, 5, true, false);
    mem::MarchEngine engine(cls);
    EXPECT_EQ(engine.run(probe), runtime::Detection::None);

    runtime::TestCase march = workloads::make_march_test(
        workloads::mats_plus(), runtime::kMemTestRows);
    mem::MarchEngine engine2(cls);
    EXPECT_EQ(engine2.run(march), runtime::Detection::WrongAddress);
}

TEST(MarchTests, EncodingValidates)
{
    runtime::TestCase tc = workloads::make_march_test(
        workloads::mats_plus(), runtime::kMemTestRows);
    EXPECT_EQ(tc.module, ModuleKind::MemDec16);
    EXPECT_TRUE(tc.checks.empty());
    EXPECT_FALSE(tc.stimulus.empty());
    EXPECT_GT(tc.cycle_cost, 0u);
    // MATS+ is 5N.
    EXPECT_EQ(tc.stimulus.size(), 5u * runtime::kMemTestRows);

    runtime::TestCase bad = tc;
    bad.stimulus[0].op = runtime::kNumMarchOps; // out-of-range op
    EXPECT_FALSE(runtime::validate_test_case(bad).ok());
    bad = tc;
    bad.stimulus[0].a = runtime::kMemTestRows; // out-of-range row
    EXPECT_FALSE(runtime::validate_test_case(bad).ok());
}

TEST(MarchTests, RandomMarchIsSeedDeterministic)
{
    auto t1 = workloads::make_random_march_test(16, 24, 7);
    auto t2 = workloads::make_random_march_test(16, 24, 7);
    auto t3 = workloads::make_random_march_test(16, 24, 8);
    ASSERT_EQ(t1.stimulus.size(), t2.stimulus.size());
    bool same = true, diff = false;
    for (size_t i = 0; i < t1.stimulus.size(); ++i) {
        same &= t1.stimulus[i].a == t2.stimulus[i].a &&
                t1.stimulus[i].op == t2.stimulus[i].op;
        if (i < t3.stimulus.size())
            diff |= t1.stimulus[i].a != t3.stimulus[i].a ||
                    t1.stimulus[i].op != t3.stimulus[i].op;
    }
    EXPECT_TRUE(same);
    EXPECT_TRUE(diff);
}

// ---------------------------------------------------------------------
// End-to-end: aged decoder -> lifted class -> detecting suite

TEST(MemWorkflow, MemTraceRecordsDataAccesses)
{
    const auto &trace = mem_workload_trace();
    ASSERT_FALSE(trace.empty());
    for (const auto &e : trace)
        EXPECT_EQ(e.unit, ModuleKind::MemDec16);
}

TEST(MemWorkflow, AgedDecoderLiftsAndMarchSuiteDetects)
{
    HwModule module = rtl::make_memdec16();
    WorkflowConfig cfg;
    cfg.aging.years = 10.0; // >= the 7-year acceptance bar
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 1500;
    cfg.lift.max_pairs = 6;

    WorkflowResult r =
        run_workflow(module, lib(), mem_workload_trace(), cfg);
    ASSERT_FALSE(r.lift.pairs.empty());
    EXPECT_GT(r.lift.n_success, 0u);
    ASSERT_FALSE(r.suite.empty());
    for (const auto &tc : r.suite)
        EXPECT_EQ(tc.module, ModuleKind::MemDec16);

    // The lifted suite detects the classified fault of the worst pair.
    auto pairs = r.aging.liftable_pairs();
    CellId gate = mem::pick_decoder_gate(module.netlist, pairs[0].worst);
    if (gate != kInvalidId) {
        MemFaultClass cls = mem::classify_slow_gate(module.netlist, gate);
        if (cls.kind != MemFaultKind::None) {
            bool detected = false;
            for (const auto &tc : r.suite) {
                mem::MarchEngine engine(cls);
                detected |= engine.run(tc) != runtime::Detection::None;
            }
            EXPECT_TRUE(detected) << cls.to_string();
        }
    }
}

TEST(MemWorkflow, DecoderLiftingReportsEscalation)
{
    HwModule module = rtl::make_memdec16();
    WorkflowConfig cfg;
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 1500;
    AgingAnalysisResult aging =
        run_aging_analysis(module, lib(), mem_workload_trace(),
                           cfg.aging);
    auto pairs = aging.liftable_pairs();
    ASSERT_FALSE(pairs.empty());

    mem::MemLiftConfig mc;
    mc.max_pairs = 4;
    mem::MemLiftResult ml =
        mem::run_decoder_lifting(module, pairs, mc);
    EXPECT_EQ(ml.pairs.size(),
              std::min<size_t>(4, pairs.size()));
    for (const auto &pr : ml.pairs) {
        if (pr.status != lift::PairStatus::Success)
            continue;
        EXPECT_FALSE(pr.escalation.empty());
        EXPECT_FALSE(pr.detected_by.empty());
        EXPECT_NE(pr.cls.kind, MemFaultKind::None);
    }
    // Suite is a subset of the candidate ladder.
    EXPECT_LE(ml.suite.size(), ml.candidates.size());
}

// ---------------------------------------------------------------------
// Campaign and fleet integration

TEST(MemCampaign, RunsAndDetectsWrongAddress)
{
    HwModule module = rtl::make_memdec16();
    WorkflowConfig cfg;
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 1500;
    cfg.lift.max_pairs = 3;
    WorkflowResult r =
        run_workflow(module, lib(), mem_workload_trace(), cfg);
    ASSERT_FALSE(r.suite.empty());

    std::vector<sta::EndpointPair> pairs;
    for (const auto &pr : r.lift.pairs)
        if (pr.status == lift::PairStatus::Success)
            pairs.push_back(pr.pair);
    ASSERT_FALSE(pairs.empty());

    campaign::CampaignConfig cc;
    cc.seed = 7;
    cc.num_jobs = 24;
    cc.threads = 2;
    campaign::CampaignReport rep =
        campaign::run_campaign(module, pairs, r.suite, cc);
    EXPECT_EQ(rep.jobs.size(), 24u);
    EXPECT_GT(rep.detected, 0u);
    // Every detection on the memory path is a wrong-address flag.
    EXPECT_EQ(rep.detections.wrong_address, rep.detected);
    EXPECT_EQ(rep.detections.mismatch, 0u);

    // Memory modules always take the scalar MarchEngine path: asking
    // for wave execution must be a no-op, byte for byte. (The default
    // above is wave_execution = true; pin the explicit-off run too.)
    campaign::CampaignConfig scalar = cc;
    scalar.wave_execution = false;
    campaign::CampaignReport rep2 =
        campaign::run_campaign(module, pairs, r.suite, scalar);
    EXPECT_EQ(rep.to_json(false), rep2.to_json(false));
}

TEST(MemFleet, FaultMatrixScreensWithMarchSuite)
{
    HwModule module = rtl::make_memdec16();
    WorkflowConfig cfg;
    cfg.aging.utilization = 0.99;
    cfg.aging.max_trace = 1500;
    cfg.lift.max_pairs = 3;
    WorkflowResult r =
        run_workflow(module, lib(), mem_workload_trace(), cfg);
    ASSERT_FALSE(r.suite.empty());

    std::vector<sta::EndpointPair> pairs;
    for (const auto &pr : r.lift.pairs)
        if (pr.status == lift::PairStatus::Success)
            pairs.push_back(pr.pair);
    ASSERT_FALSE(pairs.empty());

    auto m = fleet::build_fault_matrix(
        module, pairs, r.suite, {lift::FaultConstant::Zero}, 2, 11);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->faults.size(), pairs.size());
    EXPECT_GT(m->detectable_classes(), 0u);
    for (const auto &f : m->faults)
        for (runtime::Detection d : f.per_test)
            EXPECT_TRUE(d == runtime::Detection::None ||
                        d == runtime::Detection::WrongAddress);
}

TEST(MemSuiteIo, MemDecRoundTripsThroughSuiteFiles)
{
    runtime::TestCase tc = workloads::make_march_test(
        workloads::mats_plus(), runtime::kMemTestRows);
    std::string text = runtime::serialize_suite({tc});
    auto back = runtime::try_deserialize_suite(text);
    ASSERT_TRUE(back.ok());
    ASSERT_EQ(back->size(), 1u);
    EXPECT_EQ((*back)[0].module, ModuleKind::MemDec16);
    EXPECT_EQ((*back)[0].stimulus.size(), tc.stimulus.size());
}

} // namespace
} // namespace vega
