#include "campaign/campaign.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "campaign/engine.h"
#include "campaign/thread_pool.h"
#include "cpu/alu_ops.h"
#include "obs/trace.h"
#include "rtl/alu32.h"

namespace vega::campaign {
namespace {

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 200);
    EXPECT_EQ(pool.executed(), 200u);
}

TEST(ThreadPool, NestedSubmitFromWorker)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i)
        pool.submit([&] {
            count.fetch_add(1);
            for (int j = 0; j < 5; ++j)
                pool.submit([&] { count.fetch_add(1); });
        });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 10 + 50);
}

TEST(ThreadPool, WaitIdleIsReusableAcrossBatches)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    for (int batch = 0; batch < 3; ++batch) {
        for (int i = 0; i < 20; ++i)
            pool.submit([&] { count.fetch_add(1); });
        pool.wait_idle();
        EXPECT_EQ(count.load(), (batch + 1) * 20);
    }
}

TEST(ThreadPool, ZeroThreadsFallsBackToHardwareConcurrency)
{
    ThreadPool pool(0);
    EXPECT_GE(pool.size(), 1u);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait_idle();
    EXPECT_EQ(count.load(), 1);
}

TEST(Seeding, JobStreamsAreDeterministicAndDistinct)
{
    std::set<uint64_t> roots;
    for (uint64_t id = 0; id < 1000; ++id) {
        uint64_t a = job_stream(42, id);
        EXPECT_EQ(a, job_stream(42, id));
        roots.insert(a);
    }
    EXPECT_EQ(roots.size(), 1000u);
    EXPECT_NE(job_stream(42, 0), job_stream(43, 0));
}

TEST(Progress, EmitsSummaryThroughSink)
{
    std::vector<std::string> lines;
    ProgressMeter meter(3, std::chrono::milliseconds(0),
                        [&](const std::string &l) { lines.push_back(l); });
    meter.job_done(100);
    meter.job_done(100);
    meter.job_done(100);
    meter.finish();
    ASSERT_FALSE(lines.empty());
    EXPECT_NE(lines.back().find("3/3"), std::string::npos);
    EXPECT_EQ(meter.jobs_done(), 3u);
    EXPECT_EQ(meter.sim_cycles(), 300u);
    EXPECT_GE(meter.jobs_per_sec(), 0.0);
}

JobResult
fake_job(uint64_t id, size_t pair, bool detected, bool corrupts,
         runtime::SchedulePolicy policy, uint64_t slots)
{
    JobResult j;
    j.id = id;
    j.pair_index = pair;
    j.policy = policy;
    j.detected = detected;
    j.kind = detected ? runtime::Detection::Mismatch
                      : runtime::Detection::None;
    j.slots_to_detect = detected ? slots : 0;
    j.tests_dispatched = slots;
    j.sim_cycles = 10 * slots;
    j.corrupts_workload = corrupts;
    j.escape = corrupts && !detected;
    return j;
}

TEST(Report, AggregatesTotalsPairsAndPolicies)
{
    using runtime::SchedulePolicy;
    std::vector<JobResult> jobs = {
        fake_job(0, 0, true, true, SchedulePolicy::Sequential, 2),
        fake_job(1, 1, false, true, SchedulePolicy::Random, 8),
        fake_job(2, 0, false, false, SchedulePolicy::Probabilistic, 8),
        fake_job(3, 1, true, true, SchedulePolicy::Sequential, 4),
    };
    CampaignReport r = aggregate_report(jobs, 2);
    EXPECT_EQ(r.detected, 2u);
    EXPECT_EQ(r.corrupting, 3u);
    EXPECT_EQ(r.escapes, 1u);
    EXPECT_EQ(r.benign, 1u);
    EXPECT_EQ(r.detections.mismatch, 2u);
    EXPECT_DOUBLE_EQ(r.detection_rate(), 0.5);
    EXPECT_DOUBLE_EQ(r.mean_latency_slots(), 3.0);
    ASSERT_EQ(r.per_pair.size(), 2u);
    EXPECT_EQ(r.per_pair[0].jobs, 2u);
    EXPECT_EQ(r.per_pair[0].detected, 1u);
    EXPECT_EQ(r.per_pair[1].escapes, 1u);
    const auto &seq = r.per_policy[size_t(SchedulePolicy::Sequential)];
    EXPECT_EQ(seq.jobs, 2u);
    EXPECT_EQ(seq.detected, 2u);
}

TEST(Report, JsonSchemaAndTimingToggle)
{
    std::vector<JobResult> jobs = {
        fake_job(0, 0, true, true, runtime::SchedulePolicy::Sequential,
                 1)};
    CampaignReport r = aggregate_report(jobs, 1);
    r.module = "alu32";
    r.seed = 5;

    std::string with_timing = r.to_json(true);
    for (const char *key :
         {"\"campaign\"", "\"totals\"", "\"per_pair\"", "\"per_policy\"",
          "\"jobs\"", "\"timing\"", "\"detections\"", "\"escape_rate\""})
        EXPECT_NE(with_timing.find(key), std::string::npos) << key;

    std::string stable = r.to_json(false);
    EXPECT_EQ(stable.find("\"timing\""), std::string::npos);
    EXPECT_EQ(stable, r.to_json(false));

    std::string aggregates = r.to_json(false, false);
    EXPECT_EQ(aggregates.find("\"jobs\":["), std::string::npos);
}

/** One analyzed ALU + a small synthetic screening suite, built once. */
struct CampaignEnv
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
    std::vector<runtime::TestCase> suite;
};

runtime::TestCase
alu_test(const char *name, AluOp op, uint32_t a, uint32_t b, int pair)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

const CampaignEnv &
env()
{
    static CampaignEnv *e = [] {
        auto *env = new CampaignEnv;
        env->module = rtl::make_alu32();
        auto lib =
            aging::AgingTimingLibrary::build(aging::RdModelParams{});
        AgingAnalysisConfig cfg;
        cfg.utilization = 0.99;
        cfg.max_trace = 1500;
        auto aged = run_aging_analysis(env->module, lib, minver_trace(),
                                       cfg);
        env->pairs = aged.liftable_pairs();
        if (env->pairs.size() > 2)
            env->pairs.resize(2);
        env->suite = {
            alu_test("c0", AluOp::Add, 0xffffffff, 1, 0),
            alu_test("c1", AluOp::Sub, 0, 1, 0),
            alu_test("c2", AluOp::Xor, 0xaaaaaaaa, 0x55555555, 1),
            alu_test("c3", AluOp::Sll, 1, 31, 1),
        };
        return env;
    }();
    return *e;
}

CampaignConfig
small_config(size_t threads)
{
    CampaignConfig cfg;
    cfg.seed = 99;
    cfg.num_jobs = 18;
    cfg.threads = threads;
    cfg.max_slots = 6;
    return cfg;
}

TEST(Campaign, SameSeedIsByteIdenticalAtAnyThreadCount)
{
    const CampaignEnv &e = env();
    CampaignReport r1 = run_campaign(e.module, e.pairs, e.suite,
                                     small_config(1));
    CampaignReport r2 = run_campaign(e.module, e.pairs, e.suite,
                                     small_config(2));
    CampaignReport r8 = run_campaign(e.module, e.pairs, e.suite,
                                     small_config(8));

    std::string j1 = r1.to_json(false);
    EXPECT_EQ(j1, r2.to_json(false));
    EXPECT_EQ(j1, r8.to_json(false));
    EXPECT_EQ(r1.detected, r8.detected);
    EXPECT_EQ(r1.escapes, r8.escapes);
}

TEST(Campaign, TracingDoesNotPerturbDeterministicReport)
{
    // Observability must be a pure observer: the deterministic JSON
    // with spans recording is byte-identical to a flags-off run.
    const CampaignEnv &e = env();
    CampaignReport off = run_campaign(e.module, e.pairs, e.suite,
                                      small_config(2));
    obs::trace_enable();
    CampaignReport on = run_campaign(e.module, e.pairs, e.suite,
                                     small_config(2));
    obs::trace_disable();
    EXPECT_EQ(off.to_json(false), on.to_json(false));
    // And the run actually produced campaign.job spans.
    bool saw_job_span = false;
    for (const obs::TraceEvent &ev : obs::trace_collect())
        if (std::string(ev.name) == "campaign.job")
            saw_job_span = true;
    EXPECT_TRUE(saw_job_span);
}

TEST(Campaign, CoversEveryPairAndClassifiesCoherently)
{
    const CampaignEnv &e = env();
    CampaignReport r = run_campaign(e.module, e.pairs, e.suite,
                                    small_config(2));

    ASSERT_EQ(r.jobs.size(), 18u);
    ASSERT_EQ(r.per_pair.size(), e.pairs.size());
    uint64_t pair_jobs = 0;
    for (const auto &p : r.per_pair) {
        EXPECT_GT(p.jobs, 0u) << "pair " << p.pair_index
                              << " never injected";
        pair_jobs += p.jobs;
    }
    EXPECT_EQ(pair_jobs, r.jobs.size());

    for (const auto &j : r.jobs) {
        if (j.escape) {
            EXPECT_TRUE(j.corrupts_workload);
            EXPECT_FALSE(j.detected);
        }
        if (j.detected) {
            EXPECT_GE(j.slots_to_detect, 1u);
            EXPECT_LE(j.slots_to_detect, 6u);
            EXPECT_NE(j.kind, runtime::Detection::None);
        }
        EXPECT_GT(j.sim_cycles, 0u);
    }
    EXPECT_EQ(r.detected + r.escapes + r.benign,
              uint64_t(r.jobs.size()));
}

TEST(Campaign, DifferentSeedsDiffer)
{
    const CampaignEnv &e = env();
    CampaignConfig a = small_config(2);
    CampaignConfig b = small_config(2);
    b.seed = 100;
    CampaignReport ra = run_campaign(e.module, e.pairs, e.suite, a);
    CampaignReport rb = run_campaign(e.module, e.pairs, e.suite, b);
    // Sampled constants/policies/seeds differ somewhere in 18 jobs.
    EXPECT_NE(ra.to_json(false), rb.to_json(false));
}

TEST(Campaign, ProgressSinkObservesAllJobs)
{
    const CampaignEnv &e = env();
    CampaignConfig cfg = small_config(2);
    std::atomic<int> lines{0};
    cfg.progress_interval = std::chrono::milliseconds(0);
    cfg.progress_sink = [&](const std::string &) { lines.fetch_add(1); };
    run_campaign(e.module, e.pairs, e.suite, cfg);
    // one line per characterization config + per job + the final line
    EXPECT_GE(lines.load(), 18 + 1);
}

} // namespace
} // namespace vega::campaign
