#include "sim/timing_sim.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "netlist/builder.h"
#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"

namespace vega {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

TEST(TimingSim, FreshTimingMatchesLogicalSimulatorOnAdder)
{
    HwModule m = rtl::make_adder2();
    sta::calibrate_timing_scale(m, lib(), 0.9);
    SpProfile neutral(m.netlist.num_cells());
    sta::AgedTiming fresh =
        sta::compute_aged_timing(m, neutral, lib(), 0.0);

    Simulator logical(m.netlist);
    TimingSimulator timed(m.netlist, fresh);
    Rng rng(5);
    for (int t = 0; t < 200; ++t) {
        BitVec a(2, rng.below(4)), b(2, rng.below(4));
        logical.set_bus("a", a);
        logical.set_bus("b", b);
        timed.set_bus("a", a);
        timed.set_bus("b", b);
        EXPECT_EQ(timed.bus_value("o").to_u64(),
                  logical.bus_value("o").to_u64())
            << "cycle " << t;
        auto events = timed.step();
        EXPECT_TRUE(events.empty()) << "cycle " << t;
        logical.step();
    }
}

TEST(TimingSim, FreshTimingMatchesLogicalSimulatorOnAlu)
{
    HwModule m = rtl::make_alu32();
    sta::calibrate_timing_scale(m, lib(), 0.9);
    SpProfile neutral(m.netlist.num_cells());
    sta::AgedTiming fresh =
        sta::compute_aged_timing(m, neutral, lib(), 0.0);

    Simulator logical(m.netlist);
    TimingSimulator timed(m.netlist, fresh);
    Rng rng(6);
    for (int t = 0; t < 40; ++t) {
        BitVec a(32, rng.next()), b(32, rng.next());
        BitVec op(4, rng.below(10));
        logical.set_bus("a", a);
        logical.set_bus("b", b);
        logical.set_bus("op", op);
        timed.set_bus("a", a);
        timed.set_bus("b", b);
        timed.set_bus("op", op);
        EXPECT_EQ(timed.bus_value("r").to_u64(),
                  logical.bus_value("r").to_u64());
        EXPECT_TRUE(timed.step().empty());
        logical.step();
    }
}

/**
 * Aged adder fixture: calibrated tight, parked-at-zero SP, 10-year
 * timing with a real setup violation on the $4 -> $10 path.
 */
struct AgedAdder
{
    HwModule module = rtl::make_adder2();
    SpProfile profile{0};
    sta::AgedTiming aged;
    CellId dff4 = kInvalidId, dff10 = kInvalidId;

    AgedAdder()
    {
        sta::calibrate_timing_scale(module, lib(), 0.99);
        Simulator sim(module.netlist);
        profile = profile_signal_probability(
            sim, 128, [](Simulator &, uint64_t) {});
        aged = sta::compute_aged_timing(module, profile, lib(), 10.0);
        for (CellId c = 0; c < module.netlist.num_cells(); ++c) {
            if (module.netlist.cell(c).name == "$4")
                dff4 = c;
            if (module.netlist.cell(c).name == "$10")
                dff10 = c;
        }
        // Sanity: the violation exists.
        sta::StaResult r = sta::run_sta(module, aged);
        EXPECT_LT(r.wns_setup, 0.0);
    }
};

TEST(TimingSim, AgedAdderViolatesOnlyWhenLaunchChanges)
{
    AgedAdder f;
    TimingSimulator timed(f.module.netlist, f.aged);

    // Stable b[1]: after warmup no violations even with a[0] toggling
    // (the short paths still meet timing).
    timed.set_bus("a", BitVec(2, 0));
    timed.set_bus("b", BitVec(2, 2));
    timed.step(); // warmup: bq[1] rises at this edge...
    timed.step(); // ...and its late ripple captures at this one
    size_t stable_events = 0;
    for (int t = 0; t < 20; ++t) {
        timed.set_bus("a", BitVec(2, t % 2));
        timed.set_bus("b", BitVec(2, 2));
        stable_events += timed.step().size();
    }
    EXPECT_EQ(stable_events, 0u);

    // Toggling b[1] re-activates the aged path every cycle.
    size_t toggle_events = 0;
    for (int t = 0; t < 20; ++t) {
        timed.set_bus("b", BitVec(2, (t % 2) ? 2 : 0));
        for (const TimingEvent &e : timed.step()) {
            EXPECT_TRUE(e.is_setup);
            ++toggle_events;
        }
    }
    EXPECT_GT(toggle_events, 10u);
}

TEST(TimingSim, SetupCorruptionCapturesStaleValue)
{
    // The physical outcome of a setup violation is sampling the previous
    // value — the ground truth behind Eq. 2. Cross-check against a
    // logical simulator tracking golden D values.
    AgedAdder f;
    TimingSimulator timed(f.module.netlist, f.aged);
    Simulator golden(f.module.netlist);

    Rng rng(11);
    NetId d10 = f.module.netlist.cell(f.dff10).in[0];
    NetId q10 = f.module.netlist.cell(f.dff10).out;
    bool prev_golden_d = false;
    for (int t = 0; t < 100; ++t) {
        BitVec a(2, rng.below(4)), b(2, rng.below(4));
        timed.set_bus("a", a);
        timed.set_bus("b", b);
        golden.set_bus("a", a);
        golden.set_bus("b", b);
        bool golden_d = golden.value(d10);

        auto events = timed.step();
        golden.step();
        bool corrupted_10 = false;
        for (const TimingEvent &e : events)
            if (e.dff == f.dff10 && e.is_setup)
                corrupted_10 = true;
        if (corrupted_10) {
            // Captured the stale previous-cycle value...
            EXPECT_EQ(timed.value(q10), prev_golden_d);
            // ...which must differ from the intended one (else no event).
            EXPECT_NE(timed.value(q10), golden.value(q10));
        }
        prev_golden_d = golden_d;
    }
}

TEST(TimingSim, HoldViolationCapturesNewValueEarly)
{
    // Direct DFF->DFF wire with the capture clock 50 ps late: the new
    // data races through and lands a cycle early.
    HwModule m;
    Netlist &nl = m.netlist;
    nl.set_clock_period_ps(1000.0);
    uint32_t leaf_a = m.clock.add_buffer(0, "a", 0.0, 0.0, 0.5);
    uint32_t leaf_b = m.clock.add_buffer(0, "b", 50.0, 50.0, 0.5);
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q1 = b.dff(d[0], false, leaf_a);
    NetId q2 = b.dff(q1, false, leaf_b);
    nl.add_output_bus("q", {q1, q2});

    SpProfile neutral(nl.num_cells());
    sta::AgedTiming t = sta::compute_aged_timing(m, neutral, lib(), 0.0);
    ASSERT_LT(sta::run_sta(m, t).wns_hold, 0.0);

    TimingSimulator timed(nl, t);
    timed.set_bus("d", BitVec(1, 1));
    auto e1 = timed.step(); // q1 <- 1 at this edge
    (void)e1;
    // Next step detects the race: q2 should have stayed 0 for one more
    // cycle, but the hold violation pulled the 1 in early.
    auto e2 = timed.step();
    bool hold_seen = false;
    for (const TimingEvent &e : e2)
        if (!e.is_setup)
            hold_seen = true;
    EXPECT_TRUE(hold_seen);
    EXPECT_EQ(timed.bus_value("q").to_u64(), 3u); // q2 == q1 == 1 already
}

TEST(TimingSim, EventsAccumulateAndResetClears)
{
    AgedAdder f;
    TimingSimulator timed(f.module.netlist, f.aged);
    for (int t = 0; t < 10; ++t) {
        timed.set_bus("b", BitVec(2, (t % 2) ? 2 : 0));
        timed.set_bus("a", BitVec(2, 0));
        timed.step();
    }
    EXPECT_FALSE(timed.events().empty());
    timed.reset();
    EXPECT_TRUE(timed.events().empty());
    EXPECT_EQ(timed.cycle(), 0u);
}

} // namespace
} // namespace vega
