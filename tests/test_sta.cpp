#include "sta/sta.h"

#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "rtl/adder2.h"
#include "sim/simulator.h"
#include "sta/clock_analysis.h"

namespace vega::sta {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

/** a -> NOT -> AND(a, .) -> DFF: two paths of delay 24 and 35 ps. */
HwModule
make_two_path_module(double period)
{
    HwModule m;
    Netlist &nl = m.netlist;
    nl.set_name("twopath");
    nl.set_clock_period_ps(period);
    Builder b(nl);
    auto a = nl.add_input_bus("a", 1);
    NetId n1 = b.not_(a[0]);
    NetId d = b.and_(n1, a[0]);
    NetId q = b.dff(d);
    nl.add_output_bus("q", {q});
    return m;
}

TEST(Sta, FreshArrivalHandComputed)
{
    HwModule m = make_two_path_module(1000.0);
    SpProfile neutral(m.netlist.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    // Longest path: NOT (11) + AND (24) + DFF setup (38) = 73.
    EXPECT_NEAR(critical_path_delay(m, t), 73.0, 1e-9);
}

TEST(Sta, CleanModuleHasNoViolations)
{
    HwModule m = make_two_path_module(1000.0);
    SpProfile neutral(m.netlist.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    StaResult r = run_sta(m, t);
    EXPECT_EQ(r.num_setup_violations, 0u);
    EXPECT_EQ(r.num_hold_violations, 0u);
    EXPECT_GT(r.wns_setup, 0.0);
    EXPECT_GT(r.wns_hold, 0.0);
    EXPECT_TRUE(r.pairs.empty());
}

TEST(Sta, TightPeriodFlagsExactlyTheLongPath)
{
    // limit = period - setup = 70 - 38 = 32; only the 35 ps path fails.
    HwModule m = make_two_path_module(70.0);
    SpProfile neutral(m.netlist.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    StaResult r = run_sta(m, t);
    EXPECT_EQ(r.num_setup_violations, 1u);
    EXPECT_NEAR(r.wns_setup, -3.0, 1e-9);
    ASSERT_EQ(r.pairs.size(), 1u);
    EXPECT_EQ(r.pairs[0].launch, kInvalidId); // primary-input start
    EXPECT_EQ(r.pairs[0].worst.cells.size(), 2u); // NOT then AND
}

TEST(Sta, TighterPeriodFlagsBothPaths)
{
    // limit = 60 - 38 = 22: both the 24 and 35 ps paths fail, sharing
    // one endpoint pair.
    HwModule m = make_two_path_module(60.0);
    SpProfile neutral(m.netlist.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    StaResult r = run_sta(m, t);
    EXPECT_EQ(r.num_setup_violations, 2u);
    ASSERT_EQ(r.pairs.size(), 1u);
    EXPECT_EQ(r.pairs[0].path_count, 2u);
    EXPECT_NEAR(r.pairs[0].worst.slack, 22.0 - 35.0, 1e-9);
}

TEST(Sta, HoldViolationFromClockSkew)
{
    // Direct DFF->DFF wire; the capture flop's clock leaf is 50 ps later.
    HwModule m;
    Netlist &nl = m.netlist;
    nl.set_clock_period_ps(1000.0);
    uint32_t leaf_a = m.clock.add_buffer(0, "a", 0.0, 0.0, 0.5);
    uint32_t leaf_b = m.clock.add_buffer(0, "b", 50.0, 50.0, 0.5);
    Builder b(nl);
    auto d = nl.add_input_bus("d", 1);
    NetId q1 = b.dff(d[0], false, leaf_a);
    NetId q2 = b.dff(q1, false, leaf_b);
    nl.add_output_bus("q", {q2});

    SpProfile neutral(nl.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    StaResult r = run_sta(m, t);
    // slack = launch(0) + clk2q_min(26) - capture(50) - hold(16) = -40.
    EXPECT_EQ(r.num_hold_violations, 1u);
    EXPECT_NEAR(r.wns_hold, -40.0, 1e-9);
    ASSERT_EQ(r.pairs.size(), 1u);
    EXPECT_FALSE(r.pairs[0].is_setup);
    EXPECT_EQ(r.pairs[0].launch, nl.net(q1).driver);
}

TEST(Sta, BalancedTreeHasNoFreshSkew)
{
    ClockTree tree;
    auto leaves = tree.grow_balanced(3, 20.0, 12.0);
    ClockTiming ct = analyze_clock_tree(tree, lib(), 0.0);
    for (uint32_t l : leaves)
        EXPECT_DOUBLE_EQ(ct.arrival_max[l], 60.0);
    EXPECT_NEAR(worst_skew(ct), 60.0, 1e-9); // root-to-leaf spread only
}

TEST(Sta, GatedSubtreeAgesLate)
{
    ClockTree tree;
    auto leaves = tree.grow_balanced(2, 100.0, 60.0);
    tree.set_gated_region(2, 0.02); // right half parks at 0
    ClockTiming fresh = analyze_clock_tree(tree, lib(), 0.0);
    EXPECT_DOUBLE_EQ(fresh.arrival_max[leaves[0]],
                     fresh.arrival_max[leaves[3]]);
    ClockTiming aged = analyze_clock_tree(tree, lib(), 10.0);
    double free_arrival = aged.arrival_max[leaves[0]];
    double gated_arrival = aged.arrival_max[leaves[3]];
    EXPECT_GT(gated_arrival, free_arrival);
    EXPECT_GT(gated_arrival - free_arrival, 0.5); // material skew, ps
}

TEST(Sta, CalibrationHitsUtilizationTarget)
{
    // Timing closure is on slack: the fresh worst setup slack must land
    // exactly on the (1 - utilization) margin.
    HwModule m = rtl::make_adder2();
    calibrate_timing_scale(m, lib(), 0.95);
    SpProfile neutral(m.netlist.num_cells());
    AgedTiming t = compute_aged_timing(m, neutral, lib(), 0.0);
    EXPECT_NEAR(run_sta(m, t).wns_setup,
                0.05 * m.netlist.clock_period_ps(), 1e-6);
}

TEST(Sta, AgedAdderViolatesWhenParkedAtZero)
{
    // §3.2.2's story on the example adder: a tight design plus ten years
    // of parked-at-0 stress breaks setup.
    HwModule m = rtl::make_adder2();
    calibrate_timing_scale(m, lib(), 0.99);

    Simulator sim(m.netlist);
    auto profile = profile_signal_probability(
        sim, 200, [](Simulator &, uint64_t) {}); // inputs held at 0

    AgedTiming fresh = compute_aged_timing(m, profile, lib(), 0.0);
    EXPECT_GE(run_sta(m, fresh).wns_setup, 0.0);

    AgedTiming aged = compute_aged_timing(m, profile, lib(), 10.0);
    StaResult r = run_sta(m, aged);
    EXPECT_LT(r.wns_setup, 0.0);
    EXPECT_GT(r.num_setup_violations, 0u);
    // The worst path ends at $10 through $8 (the o[1] cone), the same
    // path the paper's walkthrough flags.
    ASSERT_FALSE(r.pairs.empty());
    EXPECT_EQ(m.netlist.cell(r.pairs[0].capture).name, "$10");
}

TEST(Sta, AgingOnlyWorsensSlack)
{
    HwModule m = rtl::make_adder2();
    calibrate_timing_scale(m, lib(), 0.9);
    SpProfile neutral(m.netlist.num_cells());
    double prev = 1e30;
    for (double y : {0.0, 1.0, 5.0, 10.0}) {
        AgedTiming t = compute_aged_timing(m, neutral, lib(), y);
        StaResult r = run_sta(m, t);
        EXPECT_LE(r.wns_setup, prev + 1e-9);
        prev = r.wns_setup;
    }
}

} // namespace
} // namespace vega::sta
