/**
 * @file
 * Suite-level batched cover solving: byte-identity against the
 * per-query oracle on the real lift corpus (any seed, any thread
 * count), the k-induction post-pass cross-checked against exhaustive
 * unrolling, and mid-batch timeout resume.
 */
#include "formal/cover_batch.h"

#include <gtest/gtest.h>

#include <chrono>
#include <numeric>

#include "aging/timing_library.h"
#include "common/rng.h"
#include "lift/failure_model.h"
#include "lift/instruction_builder.h"
#include "netlist/builder.h"
#include "obs/metrics.h"
#include "rtl/alu32.h"
#include "rtl/blocks.h"
#include "rtl/fpu32.h"
#include "sim/simulator.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

namespace vega::formal {
namespace {

using aging::AgingTimingLibrary;
using aging::RdModelParams;

const AgingTimingLibrary &
lib()
{
    static AgingTimingLibrary l = AgingTimingLibrary::build(RdModelParams{});
    return l;
}

/** The test_lift aging recipe: tight calibration + parked-input SP so
 *  STA yields real violating pairs. */
struct Corpus
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
};

const Corpus &
corpus(ModuleKind kind)
{
    static Corpus alu = [] {
        Corpus c;
        c.module = rtl::make_alu32();
        sta::calibrate_timing_scale(c.module, lib(), 0.99);
        Simulator sim(c.module.netlist);
        SpProfile p = profile_signal_probability(
            sim, 64, [](Simulator &, uint64_t) {});
        c.pairs = sta::run_sta(c.module, sta::compute_aged_timing(
                                             c.module, p, lib(), 10.0))
                      .pairs;
        return c;
    }();
    static Corpus fpu = [] {
        Corpus c;
        c.module = rtl::make_fpu32();
        sta::calibrate_timing_scale(c.module, lib(), 0.99);
        Simulator sim(c.module.netlist);
        SpProfile p = profile_signal_probability(
            sim, 64, [](Simulator &, uint64_t) {});
        c.pairs = sta::run_sta(c.module, sta::compute_aged_timing(
                                             c.module, p, lib(), 10.0))
                      .pairs;
        return c;
    }();
    return kind == ModuleKind::Alu32 ? alu : fpu;
}

/** Byte-identity: semantic fields and the full waveform. `conflicts`
 *  and `wall_seconds` are accounting and excluded by contract. */
void
expect_identical(const BmcResult &got, const BmcResult &want,
                 const std::string &label)
{
    ASSERT_EQ(got.status, want.status) << label;
    EXPECT_EQ(got.frames, want.frames) << label;
    EXPECT_EQ(got.proven_by_induction, want.proven_by_induction) << label;
    EXPECT_EQ(got.kinduction_depth, want.kinduction_depth) << label;
    ASSERT_EQ(got.trace.signals(), want.trace.signals()) << label;
    ASSERT_EQ(got.trace.num_cycles(), want.trace.num_cycles()) << label;
    for (const std::string &sig : want.trace.signals())
        for (size_t cyc = 0; cyc < want.trace.num_cycles(); ++cyc)
            EXPECT_TRUE(got.trace.at(sig, cyc) == want.trace.at(sig, cyc))
                << label << " signal " << sig << " cycle " << cyc;
}

/** One lift config with its shadow netlist and per-query oracle run. */
struct ConfigCase
{
    lift::FailureModelSpec spec;
    lift::ShadowInstrumentation shadow;
    std::vector<NetId> assumes;
    BmcResult oracle;
};

std::vector<ConfigCase>
build_cases(ModuleKind kind, size_t max_pairs, const BmcOptions &base)
{
    const Corpus &c = corpus(kind);
    std::vector<ConfigCase> cases;
    size_t used = 0;
    for (const sta::EndpointPair &pair : c.pairs) {
        if (pair.launch == kInvalidId)
            continue;
        for (lift::FaultConstant fc :
             {lift::FaultConstant::Zero, lift::FaultConstant::One}) {
            ConfigCase cc;
            cc.spec.launch = pair.launch;
            cc.spec.capture = pair.capture;
            cc.spec.is_setup = pair.is_setup;
            cc.spec.constant = fc;
            cc.shadow = lift::build_shadow_instrumentation(
                c.module.netlist, cc.spec);
            cc.assumes = lift::build_assumes(cc.shadow.netlist, kind);

            BmcOptions opts = base;
            opts.assumes = cc.assumes;
            opts.state_equalities = cc.shadow.state_pairs;
            cc.oracle =
                check_cover(cc.shadow.netlist, cc.shadow.mismatch, opts);
            cases.push_back(std::move(cc));
        }
        if (++used >= max_pairs)
            break;
    }
    return cases;
}

/** Run the permuted corpus as one CoverBatch and check every target
 *  against its per-query oracle. */
void
check_batch_identity(ModuleKind kind, const std::vector<ConfigCase> &cases,
                     const BmcOptions &base, uint64_t seed, int threads)
{
    const Corpus &c = corpus(kind);
    std::vector<size_t> perm(cases.size());
    std::iota(perm.begin(), perm.end(), size_t{0});
    Rng rng(seed);
    for (size_t i = perm.size(); i > 1; --i)
        std::swap(perm[i - 1], perm[rng.below(i)]);

    std::vector<lift::FailureModelSpec> specs;
    for (size_t i : perm)
        specs.push_back(cases[i].spec);
    lift::ShadowBank bank =
        lift::build_shadow_bank(c.module.netlist, specs);

    BmcOptions bopts = base;
    bopts.assumes = lift::build_assumes(bank.netlist, kind);
    bopts.portfolio_threads = threads;
    CoverBatch batch(bank.netlist, bopts);
    for (size_t i = 0; i < perm.size(); ++i) {
        CoverTargetSpec ts;
        ts.target = bank.cones[i].mismatch;
        ts.state_equalities = bank.cones[i].state_pairs;
        ts.witness_netlist = &cases[perm[i]].shadow.netlist;
        ts.witness_target = cases[perm[i]].shadow.mismatch;
        ts.witness_assumes = cases[perm[i]].assumes;
        batch.add_target(std::move(ts));
    }
    batch.run();
    EXPECT_TRUE(batch.all_settled());
    for (size_t i = 0; i < perm.size(); ++i)
        expect_identical(batch.result(static_cast<int>(i)),
                         cases[perm[i]].oracle,
                         "seed " + std::to_string(seed) + " threads " +
                             std::to_string(threads) + " target " +
                             std::to_string(i));
}

TEST(CoverBatch, AluCorpusByteIdenticalAcrossSeedsAndThreads)
{
    BmcOptions base;
    base.max_frames = 4;
    auto cases = build_cases(ModuleKind::Alu32, 3, base);
    ASSERT_GE(cases.size(), 4u);
    obs::Counter &targets = obs::counter("bmc.batch_targets");
    uint64_t before = targets.value();
    for (uint64_t seed : {1u, 2u})
        for (int threads : {1, 2, 8})
            check_batch_identity(ModuleKind::Alu32, cases, base, seed,
                                 threads);
    EXPECT_EQ(targets.value() - before, 6 * cases.size());
}

TEST(CoverBatch, FpuCorpusByteIdenticalAcrossThreads)
{
    BmcOptions base;
    base.max_frames = 4;
    auto cases = build_cases(ModuleKind::Fpu32, 2, base);
    ASSERT_GE(cases.size(), 2u);
    for (int threads : {1, 8})
        check_batch_identity(ModuleKind::Fpu32, cases, base, /*seed=*/7,
                             threads);
}

// ---------------------------------------------------------------------
// Small-netlist cross-checks: k-induction vs exhaustive unrolling, and
// mixed-phase batches on one shared instance.
// ---------------------------------------------------------------------

/** 3-bit counter; target fires when the count reaches @p goal. */
NetId
add_counter(Netlist &nl, unsigned goal, const std::string &suffix)
{
    Builder b(nl, "ctr" + suffix);
    std::vector<NetId> q_nets;
    for (int i = 0; i < 3; ++i)
        q_nets.push_back(nl.new_net("q" + suffix + std::to_string(i)));
    NetId carry = b.const1();
    for (int i = 0; i < 3; ++i) {
        NetId d = b.xor_(q_nets[i], carry);
        carry = b.and_(q_nets[i], carry);
        nl.add_dff("ff" + suffix + std::to_string(i), d, q_nets[i],
                   false);
    }
    std::vector<NetId> bits;
    for (int i = 0; i < 3; ++i)
        bits.push_back((goal >> i) & 1 ? q_nets[i] : b.not_(q_nets[i]));
    return b.and_n(bits);
}

/** Two swapping flops initialized (1,0); target = both 1 — unreachable
 *  from reset, invisible to the 1-step free-state check (a free (1,1)
 *  start satisfies it), but closed by k-induction at depth 2: from any
 *  state with the target low, two swaps never raise it. */
NetId
add_swap(Netlist &nl, const std::string &suffix)
{
    Builder b(nl, "swap" + suffix);
    NetId a = nl.new_net("swap_a" + suffix);
    NetId bq = nl.new_net("swap_b" + suffix);
    nl.add_dff("swap_fa" + suffix, bq, a, /*init=*/true);
    nl.add_dff("swap_fb" + suffix, a, bq, /*init=*/false);
    return b.and_(a, bq);
}

TEST(CoverBatch, KInductionUpgradesBoundExhaustionToProof)
{
    Netlist nl("kind");
    NetId swap_t = add_swap(nl, "");
    nl.add_output_bus("hit", {swap_t});
    nl.validate();

    // Exhaustive unrolling far past the 4-state diameter: never covered.
    BmcOptions deep;
    deep.max_frames = 16;
    BmcResult exhaustive = check_cover(nl, swap_t, deep);
    EXPECT_EQ(exhaustive.status, BmcStatus::Unreachable);
    EXPECT_FALSE(exhaustive.proven_by_induction);

    // The k-induction post-pass turns the same verdict into a proof at
    // depth 2 — scalar and batch alike, byte-identically.
    BmcOptions opts;
    opts.max_frames = 4;
    opts.kinduction_frames = 4;
    BmcResult scalar = check_cover(nl, swap_t, opts);
    EXPECT_EQ(scalar.status, BmcStatus::Unreachable);
    EXPECT_TRUE(scalar.proven_by_induction);
    EXPECT_EQ(scalar.kinduction_depth, 2);

    CoverBatch batch(nl, opts);
    CoverTargetSpec ts;
    ts.target = swap_t;
    int idx = batch.add_target(std::move(ts));
    obs::Counter &proofs = obs::counter("bmc.kinduction_proofs");
    uint64_t before = proofs.value();
    batch.run();
    EXPECT_GT(proofs.value(), before);
    expect_identical(batch.result(idx), scalar, "kinduction batch");
}

TEST(CoverBatch, KInductionNeverFalselyProvesReachableTargets)
{
    // count == 5 is reachable at frame 6; a shallow bound of 3 must
    // stay a bounded (unproven) verdict even with k-induction armed,
    // because every step query has the free-state counterexample
    // count = 4. Exhaustive unrolling confirms reachability.
    Netlist nl("reach");
    NetId ctr_t = add_counter(nl, 5, "");
    nl.add_output_bus("hit", {ctr_t});
    nl.validate();

    BmcOptions deep;
    deep.max_frames = 16;
    BmcResult exhaustive = check_cover(nl, ctr_t, deep);
    ASSERT_EQ(exhaustive.status, BmcStatus::Covered);
    EXPECT_EQ(exhaustive.frames, 6);

    BmcOptions opts;
    opts.max_frames = 3;
    opts.kinduction_frames = 3;
    BmcResult scalar = check_cover(nl, ctr_t, opts);
    EXPECT_EQ(scalar.status, BmcStatus::Unreachable);
    EXPECT_FALSE(scalar.proven_by_induction);
    EXPECT_EQ(scalar.kinduction_depth, 0);

    CoverBatch batch(nl, opts);
    CoverTargetSpec ts;
    ts.target = ctr_t;
    int idx = batch.add_target(std::move(ts));
    batch.run();
    expect_identical(batch.result(idx), scalar, "no false proof");
}

TEST(CoverBatch, MixedPhaseTargetsShareOneInstance)
{
    // One netlist, three targets retiring in different phases: a
    // covered counter hit, a k-induction proof, and a bounded verdict.
    Netlist nl("mixed");
    NetId ctr_t = add_counter(nl, 5, "_a");   // covered at frame 6
    NetId swap_t = add_swap(nl, "_b");        // k-induction at depth 2
    NetId never_t = add_counter(nl, 7, "_c"); // beyond the bound
    nl.add_output_bus("hit", {ctr_t, swap_t, never_t});
    nl.validate();

    BmcOptions opts;
    opts.max_frames = 6;
    opts.kinduction_frames = 4;

    std::vector<NetId> targets{ctr_t, swap_t, never_t};
    CoverBatch batch(nl, opts);
    for (NetId t : targets) {
        CoverTargetSpec ts;
        ts.target = t;
        batch.add_target(std::move(ts));
    }
    batch.run();
    for (size_t i = 0; i < targets.size(); ++i)
        expect_identical(batch.result(static_cast<int>(i)),
                         check_cover(nl, targets[i], opts),
                         "mixed target " + std::to_string(i));
}

TEST(CoverBatch, MidBatchTimeoutResumesWhereItStopped)
{
    // A cheap counter target (tens of conflicts end to end) next to a
    // prime-"factoring" target (hundreds of conflicts per bound): a
    // small per-target conflict pool settles the first, parks the
    // second, and the resumed run finishes byte-identical to the
    // oracle.
    Netlist nl("resume");
    Builder b(nl, "mul");
    NetId ctr_t = add_counter(nl, 5, "_r");
    auto a = nl.add_input_bus("a", 10);
    auto bb = nl.add_input_bus("b", 10);
    Bus aq, bq;
    for (int i = 0; i < 10; ++i) {
        aq.push_back(b.dff(a[size_t(i)]));
        bq.push_back(b.dff(bb[size_t(i)]));
    }
    Bus p = rtl::multiply(b, aq, bq);
    // 524287 is prime, so the product equality is unsatisfiable at
    // every bound — and refuting it costs the solver far more than the
    // pool below, so the target must park while the counter runs.
    NetId mul_t = rtl::bus_eq(b, p, b.const_bus(20, 524287));
    nl.add_output_bus("hit", {ctr_t, mul_t});
    nl.add_output_bus("p", p);
    nl.validate();

    BmcOptions opts;
    opts.max_frames = 6;

    CoverBatch batch(nl, opts);
    CoverTargetSpec ts1, ts2;
    ts1.target = ctr_t;
    ts2.target = mul_t;
    int ctr_idx = batch.add_target(std::move(ts1));
    int mul_idx = batch.add_target(std::move(ts2));

    batch.run(/*conflict_budget=*/40, /*wall_budget_seconds=*/-1.0);
    EXPECT_TRUE(batch.settled(ctr_idx));
    EXPECT_FALSE(batch.settled(mul_idx));
    EXPECT_FALSE(batch.all_settled());
    EXPECT_EQ(batch.result(mul_idx).status, BmcStatus::Timeout);

    // The escalation rung resumes the starved target only.
    batch.run();
    EXPECT_TRUE(batch.all_settled());
    expect_identical(batch.result(ctr_idx), check_cover(nl, ctr_t, opts),
                     "resume counter");
    expect_identical(batch.result(mul_idx), check_cover(nl, mul_t, opts),
                     "resume multiplier");
}

TEST(CoverBatch, WallBudgetIsLoopWideWithPerTargetAttribution)
{
    // An exhausted loop-wide deadline parks every target immediately —
    // the run cannot take num_targets × budget — and the final run's
    // per-target wall attribution sums to no more than its elapsed
    // wall time.
    Netlist nl("wall");
    std::vector<NetId> targets;
    for (int i = 0; i < 4; ++i)
        targets.push_back(add_counter(nl, 5, "_w" + std::to_string(i)));
    nl.add_output_bus("hit", targets);
    nl.validate();

    BmcOptions opts;
    opts.max_frames = 6;
    CoverBatch batch(nl, opts);
    for (NetId t : targets) {
        CoverTargetSpec ts;
        ts.target = t;
        batch.add_target(std::move(ts));
    }

    batch.run(/*conflict_budget=*/-1, /*wall_budget_seconds=*/0.0);
    for (size_t i = 0; i < targets.size(); ++i)
        EXPECT_EQ(batch.result(static_cast<int>(i)).status,
                  BmcStatus::Timeout);

    auto t0 = std::chrono::steady_clock::now();
    batch.run();
    double elapsed = std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - t0)
                         .count();
    EXPECT_TRUE(batch.all_settled());
    double attributed = 0;
    for (size_t i = 0; i < targets.size(); ++i) {
        const BmcResult &r = batch.result(static_cast<int>(i));
        EXPECT_GE(r.wall_seconds, 0.0);
        attributed += r.wall_seconds;
        expect_identical(r, check_cover(nl, targets[i], opts),
                         "wall target " + std::to_string(i));
    }
    EXPECT_LE(attributed, elapsed + 0.05);
}

} // namespace
} // namespace vega::formal
