#include "rtl/adder2.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "sim/sp_profiler.h"

namespace vega::rtl {
namespace {

TEST(Adder2, MatchesFigure3Structure)
{
    HwModule m = make_adder2();
    const Netlist &nl = m.netlist;
    auto hist = nl.type_histogram();
    EXPECT_EQ(hist[CellType::Dff], 6u);  // $1..$4, $9, $10
    EXPECT_EQ(hist[CellType::Xor2], 3u); // $5, $7, $8
    EXPECT_EQ(hist[CellType::And2], 1u); // $6
    EXPECT_EQ(nl.num_cells(), 10u);
    EXPECT_DOUBLE_EQ(nl.clock_period_ps(), 1000.0);
}

TEST(Adder2, TwoCyclePipelinedSum)
{
    HwModule m = make_adder2();
    Simulator sim(m.netlist);

    // Drive (a, b) pairs back to back; o shows a+b two cycles later.
    struct Step { unsigned a, b; };
    std::vector<Step> steps{{1, 3}, {3, 0}, {3, 1}, {2, 2}, {0, 0}};
    std::vector<unsigned> results;
    for (size_t t = 0; t < steps.size() + 2; ++t) {
        if (t < steps.size()) {
            sim.set_bus("a", BitVec(2, steps[t].a));
            sim.set_bus("b", BitVec(2, steps[t].b));
        }
        if (t >= 2)
            results.push_back(unsigned(sim.bus_value("o").to_u64()));
        sim.step();
    }
    ASSERT_EQ(results.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i)
        EXPECT_EQ(results[i], (steps[i].a + steps[i].b) & 3u) << i;
}

TEST(Adder2, ExhaustiveSingleOp)
{
    HwModule m = make_adder2();
    Simulator sim(m.netlist);
    for (unsigned a = 0; a < 4; ++a) {
        for (unsigned b = 0; b < 4; ++b) {
            sim.reset();
            sim.set_bus("a", BitVec(2, a));
            sim.set_bus("b", BitVec(2, b));
            sim.step();
            sim.step();
            EXPECT_EQ(sim.bus_value("o").to_u64(), (a + b) & 3u);
        }
    }
}

TEST(Adder2, SpProfileReflectsStimulus)
{
    // Hold a = b = 0: every non-constant signal rests at 0 => SP 0.
    HwModule m = make_adder2();
    Simulator sim(m.netlist);
    auto p0 = profile_signal_probability(sim, 100,
                                         [](Simulator &, uint64_t) {});
    for (CellId c = 0; c < m.netlist.num_cells(); ++c)
        EXPECT_DOUBLE_EQ(p0.sp(c), 0.0);

    // Hold a = b = 3: aq/bq rest at 1, carry at 1, sums at 2 -> o = 2.
    sim.reset();
    auto p1 = profile_signal_probability(
        sim, 100, [](Simulator &s, uint64_t) {
            s.set_bus("a", BitVec(2, 3));
            s.set_bus("b", BitVec(2, 3));
        });
    // XOR $5 output: aq0^bq0 = 0 steady state.
    // AND $6 (carry): 1.
    double carry_sp = 0.0, dff_sp = 0.0;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        const Cell &cell = m.netlist.cell(c);
        if (cell.name == "$6")
            carry_sp = p1.sp(c);
        if (cell.name == "$1")
            dff_sp = p1.sp(c);
    }
    EXPECT_GT(carry_sp, 0.95);
    EXPECT_GT(dff_sp, 0.95);
}

TEST(Adder2, ClockTreeHasTwoLeaves)
{
    HwModule m = make_adder2();
    EXPECT_GE(m.clock.size(), 3u); // root + 2 leaves
    // $1..$4 and $9/$10 sit on different leaves.
    auto dffs = m.netlist.dffs();
    ASSERT_EQ(dffs.size(), 6u);
    EXPECT_NE(m.netlist.cell(dffs[0]).clock_leaf,
              m.netlist.cell(dffs[4]).clock_leaf);
}

} // namespace
} // namespace vega::rtl
