#include "rtl/fpu32.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/softfp.h"
#include "sim/simulator.h"

namespace vega::rtl {
namespace {

using fp::FpuOp;

/** Drive one op through the 2-stage pipeline from a cleared state. */
fp::FpResult
run_op(Simulator &sim, FpuOp op, uint32_t a, uint32_t b)
{
    sim.reset();
    sim.set_bus("a", BitVec(32, a));
    sim.set_bus("b", BitVec(32, b));
    sim.set_bus("op", BitVec(3, uint64_t(op)));
    sim.set_bus("valid", BitVec(1, 1));
    sim.set_bus("clear", BitVec(1, 0));
    sim.step();
    sim.set_bus("valid", BitVec(1, 0));
    sim.step();
    fp::FpResult r;
    r.bits = uint32_t(sim.bus_value("r").to_u64());
    r.flags = uint8_t(sim.bus_value("flags").to_u64());
    return r;
}

class FpuOpTest : public ::testing::TestWithParam<FpuOp>
{
  protected:
    static HwModule &module()
    {
        static HwModule m = make_fpu32();
        return m;
    }
};

uint32_t
random_any(vega::Rng &rng)
{
    // Mix of fully random words (hits NaN/inf/subnormal patterns) and
    // guaranteed normals.
    if (rng.chance(0.3))
        return uint32_t(rng.next());
    uint32_t sign = uint32_t(rng.next() & 1) << 31;
    uint32_t exp = 1 + uint32_t(rng.below(254));
    uint32_t man = uint32_t(rng.next()) & 0x7fffff;
    return sign | (exp << 23) | man;
}

TEST_P(FpuOpTest, MatchesSoftFpOnRandomInputs)
{
    FpuOp op = GetParam();
    Simulator sim(module().netlist);
    vega::Rng rng(uint64_t(op) * 131 + 17);
    for (int i = 0; i < 40; ++i) {
        uint32_t a = random_any(rng), b = random_any(rng);
        fp::FpResult got = run_op(sim, op, a, b);
        fp::FpResult want = fp::fpu_compute(op, a, b);
        EXPECT_EQ(got.bits, want.bits)
            << fp::fpu_op_name(op) << std::hex << " a=" << a << " b=" << b;
        EXPECT_EQ(got.flags, want.flags)
            << fp::fpu_op_name(op) << std::hex << " a=" << a << " b=" << b;
    }
}

TEST_P(FpuOpTest, MatchesSoftFpOnCorners)
{
    FpuOp op = GetParam();
    Simulator sim(module().netlist);
    const uint32_t corners[] = {
        0x00000000, 0x80000000, // +-0
        0x3f800000, 0xbf800000, // +-1
        0x7f800000, 0xff800000, // +-inf
        0x7fc00000, 0x7f800001, // qNaN, sNaN
        0x00000001, 0x807fffff, // subnormals (flushed)
        0x7f7fffff, 0x00800000, // max normal, min normal
        0x3f800001, 0x40490fdb, // 1+ulp, pi
    };
    for (uint32_t a : corners) {
        for (uint32_t b : corners) {
            fp::FpResult got = run_op(sim, op, a, b);
            fp::FpResult want = fp::fpu_compute(op, a, b);
            EXPECT_EQ(got.bits, want.bits)
                << fp::fpu_op_name(op) << std::hex << " a=" << a
                << " b=" << b;
            EXPECT_EQ(got.flags, want.flags)
                << fp::fpu_op_name(op) << std::hex << " a=" << a
                << " b=" << b;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, FpuOpTest,
    ::testing::Values(FpuOp::Add, FpuOp::Sub, FpuOp::Mul, FpuOp::Eq,
                      FpuOp::Lt, FpuOp::Le, FpuOp::Min, FpuOp::Max),
    [](const ::testing::TestParamInfo<FpuOp> &info) {
        std::string n = fp::fpu_op_name(info.param);
        return n.substr(0, n.find('.'));
    });

TEST(Fpu32, ValidHandshakePipelines)
{
    HwModule &m = []() -> HwModule & {
        static HwModule mod = make_fpu32();
        return mod;
    }();
    Simulator sim(m.netlist);
    sim.set_bus("valid", BitVec(1, 1));
    sim.set_bus("clear", BitVec(1, 0));
    sim.set_bus("a", BitVec(32, 0x3f800000));
    sim.set_bus("b", BitVec(32, 0x3f800000));
    sim.set_bus("op", BitVec(3, 0));

    EXPECT_EQ(sim.bus_value("valid_out").to_u64(), 0u);
    sim.step();
    sim.set_bus("valid", BitVec(1, 0));
    EXPECT_EQ(sim.bus_value("valid_out").to_u64(), 0u);
    sim.step();
    EXPECT_EQ(sim.bus_value("valid_out").to_u64(), 1u);
    EXPECT_EQ(sim.bus_value("ack").to_u64(), 1u);
    EXPECT_EQ(sim.bus_value("r").to_u64(), 0x40000000u); // 1+1
    // The transaction tag toggles once for the single accepted op and
    // reaches dbg_out one cycle later.
    EXPECT_EQ(sim.bus_value("dbg_out").to_u64(), 0u);
    sim.step();
    EXPECT_EQ(sim.bus_value("dbg_out").to_u64(), 1u);
}

TEST(Fpu32, FlagsAreStickyUntilCleared)
{
    static HwModule m = make_fpu32();
    Simulator sim(m.netlist);
    sim.set_bus("clear", BitVec(1, 0));

    // Raise NX via 1 + tiny.
    sim.set_bus("a", BitVec(32, 0x3f800000));
    sim.set_bus("b", BitVec(32, 0x20000000));
    sim.set_bus("op", BitVec(3, 0));
    sim.set_bus("valid", BitVec(1, 1));
    sim.step();
    sim.set_bus("valid", BitVec(1, 0));
    sim.step();
    EXPECT_TRUE(sim.bus_value("flags").to_u64() & fp::kNX);

    // An exact op afterwards must not clear NX.
    sim.set_bus("a", BitVec(32, 0x3f800000));
    sim.set_bus("b", BitVec(32, 0x3f800000));
    sim.set_bus("valid", BitVec(1, 1));
    sim.step();
    sim.set_bus("valid", BitVec(1, 0));
    sim.step();
    EXPECT_TRUE(sim.bus_value("flags").to_u64() & fp::kNX);

    // clear wipes the register.
    sim.set_bus("clear", BitVec(1, 1));
    sim.step();
    sim.step();
    EXPECT_EQ(sim.bus_value("flags").to_u64(), 0u);
}

TEST(Fpu32, InvalidOpsDoNotRaiseFlagsWithoutValid)
{
    static HwModule m = make_fpu32();
    Simulator sim(m.netlist);
    sim.set_bus("a", BitVec(32, 0x7f800001)); // sNaN
    sim.set_bus("b", BitVec(32, 0x3f800000));
    sim.set_bus("op", BitVec(3, 0));
    sim.set_bus("valid", BitVec(1, 0)); // not a real op
    sim.set_bus("clear", BitVec(1, 0));
    sim.run(4);
    EXPECT_EQ(sim.bus_value("flags").to_u64(), 0u);
}

TEST(Fpu32, ModuleShape)
{
    static HwModule m = make_fpu32();
    EXPECT_EQ(m.kind, ModuleKind::Fpu32);
    EXPECT_DOUBLE_EQ(m.netlist.clock_period_ps(), 4000.0);
    EXPECT_GT(m.netlist.num_cells(), 5000u);
    // Clock tree: 4-level spine + 16 chains of 44.
    EXPECT_EQ(m.clock.size(), 1u + 2 + 4 + 8 + 16 + 16 * 44);
}

} // namespace
} // namespace vega::rtl
