#include "lift/failure_model.h"

#include <gtest/gtest.h>

#include "formal/bmc.h"
#include "netlist/builder.h"
#include "netlist/verilog_writer.h"
#include "rtl/adder2.h"
#include "sim/simulator.h"

namespace vega::lift {
namespace {

using rtl::make_adder2;

/** Cell id by name. */
CellId
find_cell(const Netlist &nl, const std::string &name)
{
    for (CellId c = 0; c < nl.num_cells(); ++c)
        if (nl.cell(c).name == name)
            return c;
    return kInvalidId;
}

/** The paper's running setup violation: $4 -> $7 -> $8 -> $10. */
FailureModelSpec
paper_setup_spec(const Netlist &nl, FaultConstant c,
                 Mitigation m = Mitigation::None)
{
    FailureModelSpec spec;
    spec.launch = find_cell(nl, "$4");
    spec.capture = find_cell(nl, "$10");
    spec.is_setup = true;
    spec.constant = c;
    spec.mitigation = m;
    return spec;
}

/** The paper's hold violation: $1 -> $5 -> $9. */
FailureModelSpec
paper_hold_spec(const Netlist &nl, FaultConstant c)
{
    FailureModelSpec spec;
    spec.launch = find_cell(nl, "$1");
    spec.capture = find_cell(nl, "$9");
    spec.is_setup = false;
    spec.constant = c;
    return spec;
}

/** Run one (a, b) pair per cycle and return o two cycles later. */
std::vector<unsigned>
run_pipeline(Simulator &sim, const std::vector<std::pair<unsigned, unsigned>> &in)
{
    std::vector<unsigned> out;
    for (size_t t = 0; t < in.size() + 2; ++t) {
        if (t < in.size()) {
            sim.set_bus("a", BitVec(2, in[t].first));
            sim.set_bus("b", BitVec(2, in[t].second));
        }
        if (t >= 2)
            out.push_back(unsigned(sim.bus_value("o").to_u64()));
        sim.step();
    }
    return out;
}

TEST(FailureModel, SetupFaultTriggersOnlyWhenLaunchChanges)
{
    HwModule m = make_adder2();
    // Eq. 2 with C = 0: o[1] samples 0 whenever bq[1] ($4) changed.
    FailingNetlist failing =
        build_failing_netlist(m.netlist, paper_setup_spec(m.netlist,
                                                          FaultConstant::Zero));
    Simulator sim(failing.netlist);

    // b = 2 constantly: bq[1] stable after warmup, sums correct.
    auto stable = run_pipeline(sim, {{1, 2}, {2, 2}, {3, 2}});
    // First result may see the reset transition of bq[1]; later ones are
    // clean.
    EXPECT_EQ(stable[1], (2u + 2u) & 3u);
    EXPECT_EQ(stable[2], (3u + 2u) & 3u);

    // Toggling b[1] every cycle activates the fault each cycle: o[1]
    // forced to 0.
    sim.reset();
    auto toggling = run_pipeline(sim, {{0, 2}, {0, 0}, {0, 2}, {0, 0}});
    // golden sums: 2, 0, 2, 0 -> with o[1] forced 0 on change cycles: 0.
    EXPECT_EQ(toggling[0] & 2u, 0u);
    EXPECT_EQ(toggling[2] & 2u, 0u);
}

TEST(FailureModel, SetupFaultWithCOneForcesBitHigh)
{
    HwModule m = make_adder2();
    FailingNetlist failing =
        build_failing_netlist(m.netlist, paper_setup_spec(m.netlist,
                                                          FaultConstant::One));
    Simulator sim(failing.netlist);
    // a=b=0 but b[1] toggles: sum should be 0, fault forces o[1]=1 -> 2.
    auto out = run_pipeline(sim, {{0, 2}, {0, 0}, {0, 2}, {0, 0}});
    EXPECT_EQ(out[1] & 2u, 2u); // golden 2+0=2? no: a=0,b=0 -> 0, fault -> 2
}

TEST(FailureModel, HoldFaultTriggersWhenLaunchAboutToChange)
{
    HwModule m = make_adder2();
    // Hold on $1 (aq[0]) -> $9 (o[0]), C = 1: o[0] corrupts whenever
    // aq[0] is about to change (Eq. 3 uses X(t+1) = D of $1).
    FailingNetlist failing =
        build_failing_netlist(m.netlist, paper_hold_spec(m.netlist,
                                                         FaultConstant::One));
    Simulator sim(failing.netlist);

    // Hold a constant: no corruption after warmup.
    auto stable = run_pipeline(sim, {{1, 0}, {1, 0}, {1, 0}});
    EXPECT_EQ(stable[1], 1u);
    EXPECT_EQ(stable[2], 1u);

    // Toggle a[0] per cycle: corrupt every cycle; with golden o[0]
    // alternating 0/1, the forced-1 shows on the 0 cycles.
    sim.reset();
    auto toggling = run_pipeline(sim, {{0, 0}, {1, 0}, {0, 0}, {1, 0}});
    EXPECT_EQ(toggling[0] & 1u, 1u); // golden 0, fault -> 1
}

TEST(FailureModel, RandomInputModeAddsInputBus)
{
    HwModule m = make_adder2();
    FailingNetlist failing = build_failing_netlist(
        m.netlist, paper_setup_spec(m.netlist, FaultConstant::RandomInput));
    EXPECT_TRUE(failing.has_random_input);
    EXPECT_TRUE(failing.netlist.has_bus("fm_rand"));

    // With fm_rand driven to the golden value, behaviour can be correct;
    // driven wrong on an activation cycle, it corrupts. Spot check: the
    // bus exists and is simulable.
    Simulator sim(failing.netlist);
    sim.set_bus("fm_rand", BitVec(1, 0));
    sim.run(4);
}

TEST(FailureModel, MitigationNarrowsActivation)
{
    HwModule m = make_adder2();
    // Rising-edge-only fault on $4 -> $10 with C = 0.
    FailingNetlist rise = build_failing_netlist(
        m.netlist,
        paper_setup_spec(m.netlist, FaultConstant::Zero,
                         Mitigation::RisingEdge));
    Simulator sim(rise.netlist);
    // b[1]: 0 -> 1 (rising into bq at cycle 2): corrupts that result;
    // 1 -> 0 (falling): does not corrupt.
    auto out = run_pipeline(sim, {{0, 0}, {0, 2}, {0, 0}, {0, 0}});
    // Step 1 (b=2): bq[1] rises -> o[1] forced 0 while golden is 1.
    EXPECT_EQ(out[1] & 2u, 0u);
    // Step 2 (b=0): bq[1] falls -> golden 0 stays 0 either way, but more
    // to the point step 3 (stable 0) is clean.
    EXPECT_EQ(out[3], 0u);
}

TEST(FailureModel, FailingNetlistExportsAsVerilog)
{
    HwModule m = make_adder2();
    FailingNetlist failing =
        build_failing_netlist(m.netlist, paper_setup_spec(m.netlist,
                                                          FaultConstant::Zero));
    std::string v = to_verilog(failing.netlist);
    EXPECT_NE(v.find("module adder2_failing"), std::string::npos);
    EXPECT_NE(v.find("vegafm"), std::string::npos); // fault cells present
}

TEST(ShadowReplica, BuildsFigure7Structure)
{
    HwModule m = make_adder2();
    ShadowInstrumentation shadow = build_shadow_instrumentation(
        m.netlist, paper_setup_spec(m.netlist, FaultConstant::One));

    // The cone of $10 is just $10 itself; shadow adds $10_s plus the
    // fault logic, and publishes o_s.
    EXPECT_TRUE(shadow.netlist.has_bus("o_s"));
    EXPECT_TRUE(shadow.netlist.has_bus("mismatch"));
    ASSERT_EQ(shadow.state_pairs.size(), 1u);
    EXPECT_NE(find_cell(shadow.netlist, "$10_s"), kInvalidId);

    // Original outputs must be untouched: healthy sums on the o bus.
    Simulator sim(shadow.netlist);
    sim.set_bus("a", BitVec(2, 1));
    sim.set_bus("b", BitVec(2, 2));
    sim.step();
    sim.step();
    EXPECT_EQ(sim.bus_value("o").to_u64(), 3u);
}

TEST(ShadowReplica, CoverTraceMatchesTable2Semantics)
{
    // The paper's Table 2: with C = 1, the tool finds a 3-cycle trace
    // where o[1] != o_s[1] in the final cycle. Verify our BMC finds a
    // trace of exactly that depth and that it replays.
    HwModule m = make_adder2();
    ShadowInstrumentation shadow = build_shadow_instrumentation(
        m.netlist, paper_setup_spec(m.netlist, FaultConstant::One));

    formal::BmcOptions opts;
    opts.max_frames = 6;
    opts.state_equalities = shadow.state_pairs;
    formal::BmcResult r =
        formal::check_cover(shadow.netlist, shadow.mismatch, opts);
    ASSERT_EQ(r.status, formal::BmcStatus::Covered);
    EXPECT_EQ(r.frames, 3); // same depth as the paper's example trace

    // Replay: drive the recorded inputs; the mismatch must reproduce.
    Simulator sim(shadow.netlist);
    for (int f = 0; f < r.frames; ++f) {
        sim.set_bus("a", r.trace.at("a", f));
        sim.set_bus("b", r.trace.at("b", f));
        if (f + 1 < r.frames)
            sim.step();
    }
    EXPECT_EQ(sim.bus_value("mismatch").to_u64(), 1u);
    EXPECT_NE(sim.bus_value("o").to_u64(),
              sim.bus_value("o_s").to_u64());
}

TEST(ShadowReplica, HoldFaultCoverable)
{
    HwModule m = make_adder2();
    ShadowInstrumentation shadow = build_shadow_instrumentation(
        m.netlist, paper_hold_spec(m.netlist, FaultConstant::One));
    formal::BmcOptions opts;
    opts.max_frames = 6;
    opts.state_equalities = shadow.state_pairs;
    formal::BmcResult r =
        formal::check_cover(shadow.netlist, shadow.mismatch, opts);
    EXPECT_EQ(r.status, formal::BmcStatus::Covered);
}

TEST(ShadowReplica, SameFlopMetastableModel)
{
    // A path that starts and ends at the same flop: Y always samples C.
    HwModule m = make_adder2();
    FailureModelSpec spec;
    spec.launch = spec.capture = find_cell(m.netlist, "$9");
    spec.is_setup = false;
    spec.constant = FaultConstant::One;
    FailingNetlist failing = build_failing_netlist(m.netlist, spec);
    Simulator sim(failing.netlist);
    auto out = run_pipeline(sim, {{0, 0}, {0, 0}, {0, 0}});
    for (unsigned o : out)
        EXPECT_EQ(o & 1u, 1u); // o[0] stuck at C = 1
}

TEST(ShadowReplica, UnreachableWhenFaultMasked)
{
    // C = 0 on a capture flop whose data is always 0 (a = b = 0 is
    // allowed, but the formal tool considers all inputs, so this uses a
    // crafted module where o is constant 0).
    Netlist nl("masked");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 1);
    NetId aq = b.dff(a[0]);
    NetId z = b.and_(aq, b.not_(aq)); // constant 0 through logic
    NetId o = b.dff(z);
    nl.add_output_bus("o", {o});

    FailureModelSpec spec;
    spec.launch = nl.net(aq).driver;
    spec.capture = nl.net(o).driver;
    spec.is_setup = true;
    spec.constant = FaultConstant::Zero; // C equals the only possible value
    ShadowInstrumentation shadow = build_shadow_instrumentation(nl, spec);

    formal::BmcOptions opts;
    opts.max_frames = 5;
    opts.state_equalities = shadow.state_pairs;
    formal::BmcResult r =
        formal::check_cover(shadow.netlist, shadow.mismatch, opts);
    EXPECT_EQ(r.status, formal::BmcStatus::Unreachable);
    EXPECT_TRUE(r.proven_by_induction);
}

} // namespace
} // namespace vega::lift
