#include "cpu/iss.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/alu_ops.h"
#include "cpu/assembler.h"
#include "cpu/netlist_backend.h"
#include "cpu/softfp.h"
#include "rtl/alu32.h"
#include "rtl/fpu32.h"

namespace vega::cpu {
namespace {

TEST(Assembler, LiSmallAndLarge)
{
    Asm a;
    a.li(5, 42);
    a.li(6, 0xdeadbeef);
    a.li(7, 0xfffff800); // negative 12-bit
    a.halt();
    Iss iss(a.finish());
    EXPECT_EQ(iss.run(), Iss::Status::Halted);
    EXPECT_EQ(iss.reg(5), 42u);
    EXPECT_EQ(iss.reg(6), 0xdeadbeefu);
    EXPECT_EQ(iss.reg(7), 0xfffff800u);
}

TEST(Assembler, LabelsResolveForwardAndBackward)
{
    Asm a;
    a.li(5, 3);
    a.li(6, 0);
    a.label("loop");
    a.addi(6, 6, 2);
    a.addi(5, 5, -1);
    a.bne(5, 0, "loop");
    a.halt();
    Iss iss(a.finish());
    EXPECT_EQ(iss.run(), Iss::Status::Halted);
    EXPECT_EQ(iss.reg(6), 6u);
}

TEST(Assembler, UnboundLabelPanics)
{
    Asm a;
    a.j("nowhere");
    EXPECT_DEATH(a.finish(), "unbound label");
}

TEST(Iss, X0IsHardwiredZero)
{
    Asm a;
    a.addi(0, 0, 55);
    a.add(5, 0, 0);
    a.halt();
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(0), 0u);
    EXPECT_EQ(iss.reg(5), 0u);
}

TEST(Iss, MemoryRoundTrip)
{
    Asm a;
    a.li(5, 0x12345678);
    a.li(6, 256);
    a.sw(5, 6, 0);
    a.lw(7, 6, 0);
    a.sb(5, 6, 8);
    a.lbu(8, 6, 8);
    a.lb(9, 6, 3); // high byte of the stored word: 0x12
    a.halt();
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(7), 0x12345678u);
    EXPECT_EQ(iss.reg(8), 0x78u);
    EXPECT_EQ(iss.reg(9), 0x12u);
}

TEST(Iss, MulDivSemantics)
{
    Asm a;
    a.li(5, uint32_t(-7));
    a.li(6, 3);
    a.mul(7, 5, 6);
    a.div(8, 5, 6);
    a.rem(9, 5, 6);
    a.li(10, 0);
    a.div(11, 5, 10);  // div by zero -> -1
    a.rem(12, 5, 10);  // rem by zero -> dividend
    a.mulh(13, 5, 6);
    a.halt();
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(int32_t(iss.reg(7)), -21);
    EXPECT_EQ(int32_t(iss.reg(8)), -2);
    EXPECT_EQ(int32_t(iss.reg(9)), -1);
    EXPECT_EQ(iss.reg(11), 0xffffffffu);
    EXPECT_EQ(int32_t(iss.reg(12)), -7);
    EXPECT_EQ(int32_t(iss.reg(13)), -1); // high word of -21
}

TEST(Iss, FloatOpsAndStickyFlags)
{
    Asm a;
    a.li(5, 0x3f800000); // 1.0
    a.li(6, 0x40000000); // 2.0
    a.fmv_w_x(1, 5);
    a.fmv_w_x(2, 6);
    a.fadd_s(3, 1, 2);
    a.fmv_x_w(7, 3);
    a.flt_s(8, 1, 2);
    a.feq_s(9, 1, 1);
    a.csrr_fflags(10);
    a.halt();
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(7), 0x40400000u); // 3.0
    EXPECT_EQ(iss.reg(8), 1u);
    EXPECT_EQ(iss.reg(9), 1u);
    EXPECT_EQ(iss.reg(10), 0u); // all exact
}

TEST(Iss, FflagsClearViaCsrw)
{
    Asm a;
    a.li(5, 0x3f800000);
    a.li(6, 0x20000000); // tiny: 1 + tiny is inexact
    a.fmv_w_x(1, 5);
    a.fmv_w_x(2, 6);
    a.fadd_s(3, 1, 2);
    a.csrr_fflags(7);
    a.clear_fflags();
    a.csrr_fflags(8);
    a.halt();
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.reg(7), uint32_t(fp::kNX));
    EXPECT_EQ(iss.reg(8), 0u);
}

TEST(Iss, WatchdogOnInfiniteLoop)
{
    Asm a;
    a.label("spin");
    a.j("spin");
    IssConfig cfg;
    cfg.max_instructions = 1000;
    Iss iss(a.finish(), cfg);
    EXPECT_EQ(iss.run(), Iss::Status::Watchdog);
}

TEST(Iss, OutOfBoundsStoreTraps)
{
    Asm a;
    a.li(5, 0x80001001); // far outside the 1 MiB memory
    a.sw(5, 5, 0);
    a.halt();
    Iss iss(a.finish());
    EXPECT_EQ(iss.run(), Iss::Status::Trap);
}

TEST(Iss, WildJumpTraps)
{
    Asm a;
    a.li(5, 0x7ffffff0);
    a.jalr(1, 5, 0); // lands far past the end of the program
    a.halt();
    Iss iss(a.finish());
    EXPECT_EQ(iss.run(), Iss::Status::Trap);
}

TEST(Iss, CycleCountingChargesBranchesAndLoads)
{
    Asm a;
    a.li(5, 1);        // addi: 1
    a.beq(0, 0, "t");  // taken: 2
    a.label("t");
    a.li(6, 300);      // lui+addi... (300 fits 12 bits: addi): 1
    a.sw(5, 6, 0);     // 1
    a.lw(7, 6, 0);     // 2
    a.halt();          // 1
    Iss iss(a.finish());
    iss.run();
    EXPECT_EQ(iss.cycles(), 8u);
}

TEST(Iss, ExecCountsDriveProfiles)
{
    Asm a;
    a.li(5, 4);
    a.label("loop");
    a.addi(5, 5, -1);
    a.bne(5, 0, "loop");
    a.halt();
    Iss iss(a.finish());
    iss.run();
    // The loop body ran 4 times, the prologue once.
    EXPECT_EQ(iss.exec_counts()[0], 1u);
    EXPECT_EQ(iss.exec_counts()[1], 4u);
    EXPECT_EQ(iss.exec_counts()[2], 4u);
}

TEST(Iss, FuTraceRecordsAluAndFpuOps)
{
    Asm a;
    a.li(5, 7);
    a.add(6, 5, 5);
    a.fmv_w_x(1, 5);
    a.fadd_s(2, 1, 1);
    a.halt();
    IssConfig cfg;
    cfg.record_fu_trace = true;
    Iss iss(a.finish(), cfg);
    iss.run();
    // li(7) = addi (ALU), add (ALU), fadd (FPU).
    ASSERT_EQ(iss.fu_trace().size(), 3u);
    EXPECT_EQ(iss.fu_trace()[0].unit, ModuleKind::Alu32);
    EXPECT_EQ(iss.fu_trace()[1].unit, ModuleKind::Alu32);
    EXPECT_EQ(iss.fu_trace()[1].a, 7u);
    EXPECT_EQ(iss.fu_trace()[2].unit, ModuleKind::Fpu32);
}

TEST(Iss, RenderAsmSmoke)
{
    Asm a;
    a.li(5, 0x1000);
    a.add(6, 5, 5);
    a.fadd_s(1, 2, 3);
    a.bne(6, 0, "end");
    a.label("end");
    a.halt();
    std::string text = render_asm(a.finish());
    EXPECT_NE(text.find("lui x5"), std::string::npos);
    EXPECT_NE(text.find("add x6, x5, x5"), std::string::npos);
    EXPECT_NE(text.find("fadd.s f1, f2, f3"), std::string::npos);
    EXPECT_NE(text.find("bne x6, x0, .L4"), std::string::npos);
    EXPECT_NE(text.find("ebreak"), std::string::npos);
}

TEST(NetlistBackend, AluMatchesGolden)
{
    static HwModule m = rtl::make_alu32();
    NetlistBackend backend(ModuleKind::Alu32, m.netlist);

    Asm a;
    a.li(5, 1234);
    a.li(6, 5678);
    a.add(7, 5, 6);
    a.sub(8, 5, 6);
    a.xor_(9, 5, 6);
    a.halt();
    Iss iss(a.finish());
    iss.set_alu_backend(&backend);
    EXPECT_EQ(iss.run(), Iss::Status::Halted);
    EXPECT_EQ(iss.reg(7), 1234u + 5678u);
    EXPECT_EQ(iss.reg(8), uint32_t(1234 - 5678));
    EXPECT_EQ(iss.reg(9), 1234u ^ 5678u);
}

TEST(NetlistBackend, FpuMatchesGoldenIncludingFlags)
{
    static HwModule m = rtl::make_fpu32();
    NetlistBackend backend(ModuleKind::Fpu32, m.netlist);

    Asm a;
    a.li(5, 0x3f800000);
    a.li(6, 0x20000000);
    a.fmv_w_x(1, 5);
    a.fmv_w_x(2, 6);
    a.fadd_s(3, 1, 2);   // inexact
    a.fmv_x_w(7, 3);
    a.csrr_fflags(8);
    a.clear_fflags();
    a.csrr_fflags(9);
    a.fmul_s(4, 1, 1);   // exact 1*1
    a.fmv_x_w(10, 4);
    a.csrr_fflags(11);
    a.halt();
    Iss iss(a.finish());
    iss.set_fpu_backend(&backend);
    EXPECT_EQ(iss.run(), Iss::Status::Halted);
    EXPECT_EQ(iss.reg(7), 0x3f800000u);
    EXPECT_EQ(iss.reg(8), uint32_t(fp::kNX));
    EXPECT_EQ(iss.reg(9), 0u);
    EXPECT_EQ(iss.reg(10), 0x3f800000u);
    EXPECT_EQ(iss.reg(11), 0u);
    EXPECT_EQ(backend.tag_mismatches(), 0u);
}

TEST(NetlistBackend, RandomProgramAgreesWithGolden)
{
    static HwModule m = rtl::make_alu32();
    Rng rng(91);
    for (int round = 0; round < 5; ++round) {
        Asm a;
        std::vector<uint32_t> expect;
        a.li(5, uint32_t(rng.next()));
        a.li(6, uint32_t(rng.next()));
        for (int i = 0; i < 10; ++i) {
            int op = int(rng.below(10));
            Reg rd = Reg(7 + i);
            switch (AluOp(op)) {
              case AluOp::Add: a.add(rd, 5, 6); break;
              case AluOp::Sub: a.sub(rd, 5, 6); break;
              case AluOp::Sll: a.sll(rd, 5, 6); break;
              case AluOp::Slt: a.slt(rd, 5, 6); break;
              case AluOp::Sltu: a.sltu(rd, 5, 6); break;
              case AluOp::Xor: a.xor_(rd, 5, 6); break;
              case AluOp::Srl: a.srl(rd, 5, 6); break;
              case AluOp::Sra: a.sra(rd, 5, 6); break;
              case AluOp::Or: a.or_(rd, 5, 6); break;
              case AluOp::And: a.and_(rd, 5, 6); break;
            }
        }
        a.halt();
        auto prog = a.finish();

        Iss golden(prog);
        golden.run();
        Iss hw(prog);
        NetlistBackend backend(ModuleKind::Alu32, m.netlist);
        hw.set_alu_backend(&backend);
        hw.run();
        for (int r = 5; r < 17; ++r)
            EXPECT_EQ(hw.reg(Reg(r)), golden.reg(Reg(r))) << r;
    }
}

} // namespace
} // namespace vega::cpu
