#include "rtl/alu32.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpu/alu_ops.h"
#include "sim/simulator.h"

namespace vega::rtl {
namespace {

/** Issue one op through the 2-stage pipeline from reset. */
uint32_t
run_op(Simulator &sim, AluOp op, uint32_t a, uint32_t b)
{
    sim.reset();
    sim.set_bus("a", BitVec(32, a));
    sim.set_bus("b", BitVec(32, b));
    sim.set_bus("op", BitVec(4, uint64_t(op)));
    sim.step();
    sim.step();
    return uint32_t(sim.bus_value("r").to_u64());
}

class AluOpTest : public ::testing::TestWithParam<AluOp>
{
  protected:
    HwModule m = make_alu32();
};

TEST_P(AluOpTest, MatchesGoldenOnRandomInputs)
{
    AluOp op = GetParam();
    Simulator sim(m.netlist);
    Rng rng(uint64_t(op) * 977 + 5);
    for (int i = 0; i < 60; ++i) {
        uint32_t a = uint32_t(rng.next());
        uint32_t b = uint32_t(rng.next());
        EXPECT_EQ(run_op(sim, op, a, b), alu_compute(op, a, b))
            << alu_op_name(op) << " a=" << a << " b=" << b;
    }
}

TEST_P(AluOpTest, MatchesGoldenOnCorners)
{
    AluOp op = GetParam();
    Simulator sim(m.netlist);
    const uint32_t corners[] = {0u,         1u,          0x7fffffffu,
                                0x80000000u, 0xffffffffu, 31u,
                                32u,        0xaaaaaaaau, 0x55555555u};
    for (uint32_t a : corners)
        for (uint32_t b : corners)
            EXPECT_EQ(run_op(sim, op, a, b), alu_compute(op, a, b))
                << alu_op_name(op) << " a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, AluOpTest,
    ::testing::Values(AluOp::Add, AluOp::Sub, AluOp::Sll, AluOp::Slt,
                      AluOp::Sltu, AluOp::Xor, AluOp::Srl, AluOp::Sra,
                      AluOp::Or, AluOp::And),
    [](const ::testing::TestParamInfo<AluOp> &info) {
        return alu_op_name(info.param);
    });

TEST(Alu32, PipelinesBackToBack)
{
    HwModule m = make_alu32();
    Simulator sim(m.netlist);

    struct Step { AluOp op; uint32_t a, b; };
    std::vector<Step> steps{{AluOp::Add, 10, 20},
                            {AluOp::Sub, 7, 9},
                            {AluOp::Xor, 0xff00, 0x0ff0},
                            {AluOp::Sll, 1, 31}};
    std::vector<uint32_t> results;
    for (size_t t = 0; t < steps.size() + 2; ++t) {
        if (t < steps.size()) {
            sim.set_bus("a", BitVec(32, steps[t].a));
            sim.set_bus("b", BitVec(32, steps[t].b));
            sim.set_bus("op", BitVec(4, uint64_t(steps[t].op)));
        }
        if (t >= 2)
            results.push_back(uint32_t(sim.bus_value("r").to_u64()));
        sim.step();
    }
    ASSERT_EQ(results.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i)
        EXPECT_EQ(results[i],
                  alu_compute(steps[i].op, steps[i].a, steps[i].b))
            << i;
}

TEST(Alu32, UndefinedOpcodesAliasAnd)
{
    HwModule m = make_alu32();
    Simulator sim(m.netlist);
    for (uint64_t op = 10; op < 16; ++op) {
        sim.reset();
        sim.set_bus("a", BitVec(32, 0xdeadbeef));
        sim.set_bus("b", BitVec(32, 0x0f0f0f0f));
        sim.set_bus("op", BitVec(4, op));
        sim.step();
        sim.step();
        EXPECT_EQ(sim.bus_value("r").to_u64(), 0xdeadbeefu & 0x0f0f0f0fu);
    }
}

TEST(Alu32, ModuleShape)
{
    HwModule m = make_alu32();
    EXPECT_EQ(m.kind, ModuleKind::Alu32);
    EXPECT_EQ(m.latency, 2);
    EXPECT_DOUBLE_EQ(m.netlist.clock_period_ps(), 6000.0);
    EXPECT_GT(m.netlist.num_cells(), 1000u);
    EXPECT_EQ(m.netlist.dffs().size(), 32u + 32u + 4u + 32u);
}

} // namespace
} // namespace vega::rtl
