#include "aging/rd_model.h"

#include <gtest/gtest.h>

#include "aging/timing_library.h"

namespace vega::aging {
namespace {

TEST(RdModel, NoAgingAtTimeZero)
{
    RdModelParams p;
    EXPECT_DOUBLE_EQ(delta_vth(p, p.a_pmos, 1.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(delay_degradation(p, CellType::Xor2, 0.0, 0.0), 0.0);
}

TEST(RdModel, DegradationMonotonicInTime)
{
    RdModelParams p;
    double prev = 0.0;
    for (double y : {0.5, 1.0, 2.0, 5.0, 10.0}) {
        double d = delay_degradation(p, CellType::Not, 0.2, y);
        EXPECT_GT(d, prev);
        prev = d;
    }
}

TEST(RdModel, SubOneYearDominatesDecade)
{
    // Reaction-diffusion t^(1/6): ~70% of the 10-year Vth shift lands in
    // the first year (the paper's §2.3.3 claim).
    RdModelParams p;
    double y1 = delta_vth(p, p.a_pmos, 1.0, 1.0);
    double y10 = delta_vth(p, p.a_pmos, 1.0, 10.0);
    EXPECT_NEAR(y1 / y10, 0.68, 0.02);
}

TEST(RdModel, CellsParkedAtZeroAgeFastest)
{
    // §2.3.1: gates idling at "0" age faster than gates idling at "1",
    // which age faster than... well, everything is worst at the parked-0
    // extreme for PMOS-dominated NBTI.
    RdModelParams p;
    double at0 = delay_degradation(p, CellType::Not, 0.0, 10.0);
    double atmid = delay_degradation(p, CellType::Not, 0.5, 10.0);
    double at1 = delay_degradation(p, CellType::Not, 1.0, 10.0);
    EXPECT_GT(at0, atmid);
    EXPECT_GT(atmid, at1);
}

TEST(RdModel, TenYearRangeMatchesFigure8)
{
    // Figure 8 reports cell delay increases between ~1.9% and ~6%.
    RdModelParams p;
    double worst = delay_degradation(p, CellType::Not, 0.0, 10.0);
    double best = delay_degradation(p, CellType::Not, 1.0, 10.0);
    EXPECT_NEAR(worst, 0.06, 0.006);
    EXPECT_NEAR(best, 0.019, 0.003);
}

TEST(RdModel, HigherTemperatureAgesFaster)
{
    RdModelParams hot;
    hot.temp_k = 398.15;
    RdModelParams cold = hot;
    cold.temp_k = 348.15;
    EXPECT_GT(delay_degradation(hot, CellType::Not, 0.0, 10.0),
              delay_degradation(cold, CellType::Not, 0.0, 10.0));
}

TEST(RdModel, MinArcDerate)
{
    RdModelParams p;
    double dmax = delay_degradation(p, CellType::And2, 0.1, 10.0);
    double dmin = delay_degradation_min(p, CellType::And2, 0.1, 10.0);
    EXPECT_NEAR(dmin, p.min_arc_derate * dmax, 1e-12);
}

TEST(RdModel, SensitivityOrdering)
{
    // NOR (stacked PMOS) ages faster than NAND at equal stress.
    RdModelParams p;
    EXPECT_GT(delay_degradation(p, CellType::Nor2, 0.0, 10.0),
              delay_degradation(p, CellType::Nand2, 0.0, 10.0));
}

TEST(TimingLibrary, FactorsAtLeastOne)
{
    auto lib = AgingTimingLibrary::build(RdModelParams{});
    for (double sp : {0.0, 0.25, 0.5, 0.75, 1.0})
        for (double y : {0.0, 1.0, 5.0, 10.0}) {
            EXPECT_GE(lib.delay_factor_max(CellType::Xor2, sp, y), 1.0);
            EXPECT_GE(lib.delay_factor_min(CellType::Xor2, sp, y), 1.0);
        }
}

TEST(TimingLibrary, InterpolatesCloseToModel)
{
    RdModelParams p;
    auto lib = AgingTimingLibrary::build(p, 41, 12.0, 49);
    for (double sp : {0.03, 0.37, 0.5, 0.81, 0.99}) {
        for (double y : {0.7, 3.3, 9.9}) {
            double want = 1.0 + delay_degradation(p, CellType::And2, sp, y);
            double got = lib.delay_factor_max(CellType::And2, sp, y);
            // 5e-3 tolerance: the model takes the max of the NBTI and
            // PBTI arcs, and bilinear interpolation smooths that kink
            // (worst near sp ~ 1 where the curves cross).
            EXPECT_NEAR(got, want, 5e-3) << "sp=" << sp << " y=" << y;
        }
    }
}

TEST(TimingLibrary, ClampsOutOfRangeQueries)
{
    auto lib = AgingTimingLibrary::build(RdModelParams{}, 21, 12.0, 25);
    EXPECT_GE(lib.delay_factor_max(CellType::Not, -0.5, 20.0), 1.0);
    double at_max = lib.delay_factor_max(CellType::Not, 0.0, 12.0);
    double beyond = lib.delay_factor_max(CellType::Not, 0.0, 50.0);
    EXPECT_DOUBLE_EQ(at_max, beyond);
}

TEST(TimingLibrary, Figure4ShapeXorCell)
{
    // Fig. 4: degradation grows with time, stratified by SP (lower SP =
    // more NBTI stress = larger degradation).
    auto lib = AgingTimingLibrary::build(RdModelParams{});
    double prev_curve_end = 1.0;
    for (double sp : {1.0, 0.75, 0.5, 0.25, 0.0}) {
        double prev = 1.0;
        for (double y = 1.0; y <= 10.0; y += 1.0) {
            double f = lib.delay_factor_max(CellType::Xor2, sp, y);
            EXPECT_GE(f, prev);
            prev = f;
        }
        EXPECT_GE(prev, prev_curve_end);
        prev_curve_end = prev;
    }
}

} // namespace
} // namespace vega::aging
