/**
 * Sharded fleet-mode campaigns: the deterministic job-space partition,
 * canonical shard-journal discovery, aggregation byte-identity against
 * a single-process run, kill-and-resume of an individual shard, and —
 * via the journal corruptor harness — proof that every corruption
 * class (bit rot, torn writes, dropped/duplicated/transplanted
 * records, forged trailers, foreign journals) is pinpointed with a
 * structured error naming the damaged shard and record instead of
 * being folded into fleet statistics.
 */
#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/aggregator.h"
#include "campaign/campaign.h"
#include "campaign/journal.h"
#include "campaign/shard.h"
#include "common/fs.h"
#include "cpu/alu_ops.h"
#include "journal_corruptor.h"
#include "rtl/alu32.h"

namespace vega::campaign {
namespace {

std::string
tmp_dir(const char *name)
{
    // Process-unique root: gtest_discover_tests runs each TEST as its
    // own process, and a parallel ctest would otherwise have several
    // processes rebuilding the same golden fleet directory at once.
    static const std::string root =
        testing::TempDir() + "vega_shard_" +
        std::to_string(uint64_t(::getpid())) + "_";
    return root + name;
}

std::string
fresh_dir(const char *name)
{
    std::string dir = tmp_dir(name);
    std::filesystem::remove_all(dir);
    EXPECT_TRUE(make_dirs(dir).ok());
    return dir;
}

// ---- partition + naming --------------------------------------------------

TEST(ShardSpec, PartitionCoversEveryJobExactlyOnce)
{
    const uint64_t jobs = 97;
    for (uint64_t n : {uint64_t(1), uint64_t(3), uint64_t(4),
                       uint64_t(13)}) {
        uint64_t total = 0;
        for (uint64_t k = 0; k < n; ++k) {
            ShardSpec shard{n, k};
            uint64_t count = 0;
            for (uint64_t id = 0; id < jobs; ++id)
                if (shard_owns(shard, id))
                    ++count;
            EXPECT_EQ(count, shard_job_count(shard, jobs))
                << "shard " << k << " of " << n;
            total += count;
        }
        EXPECT_EQ(total, jobs) << n << " shards";
        // Exactly one owner per job.
        for (uint64_t id = 0; id < jobs; ++id) {
            uint64_t owners = 0;
            for (uint64_t k = 0; k < n; ++k)
                if (shard_owns(ShardSpec{n, k}, id))
                    ++owners;
            EXPECT_EQ(owners, 1u) << "job " << id << ", " << n
                                  << " shards";
        }
    }
}

TEST(ShardSpec, JournalFilenameRoundTrips)
{
    EXPECT_EQ(shard_journal_filename(2, 4), "shard-2-of-4.journal");
    EXPECT_EQ(shard_journal_path("/fleet/run1", 0, 8),
              "/fleet/run1/shard-0-of-8.journal");

    uint64_t k = 0, n = 0;
    ASSERT_TRUE(
        parse_shard_journal_filename("shard-2-of-4.journal", k, n));
    EXPECT_EQ(k, 2u);
    EXPECT_EQ(n, 4u);
    ASSERT_TRUE(
        parse_shard_journal_filename("shard-11-of-12.journal", k, n));
    EXPECT_EQ(k, 11u);
    EXPECT_EQ(n, 12u);

    // Only the canonical rendering is a shard journal.
    for (const char *bad :
         {"shard-2-of-4.journal.bak", "shard-x-of-4.journal",
          "shard-2-of-.journal", "shard-02-of-4.journal",
          "notes.txt", "shard-2-of-4", ""})
        EXPECT_FALSE(parse_shard_journal_filename(bad, k, n)) << bad;
}

TEST(ShardJournals, DiscoveryListsCanonicalNamesSorted)
{
    std::string dir = fresh_dir("discover");
    // Created out of order, with decoys the listing must ignore.
    corrupt::spew(dir + "/shard-1-of-2.journal", "x");
    corrupt::spew(dir + "/notes.txt", "x");
    corrupt::spew(dir + "/shard-9.journal", "x");
    corrupt::spew(dir + "/shard-0-of-2.journal", "x");

    Expected<std::vector<std::string>> paths = list_shard_journals(dir);
    ASSERT_TRUE(paths.ok()) << paths.error().to_string();
    ASSERT_EQ(paths->size(), 2u);
    EXPECT_EQ((*paths)[0], dir + "/shard-0-of-2.journal");
    EXPECT_EQ((*paths)[1], dir + "/shard-1-of-2.journal");
}

TEST(ShardJournals, MissingDirAndEmptyDirAreStructuredErrors)
{
    Expected<std::vector<std::string>> missing =
        list_shard_journals(tmp_dir("never-created"));
    ASSERT_FALSE(missing.ok());
    EXPECT_EQ(missing.error().code, ErrorCode::IoError);

    std::string dir = fresh_dir("empty");
    Expected<std::vector<std::string>> none = list_shard_journals(dir);
    ASSERT_FALSE(none.ok());
    EXPECT_EQ(none.error().code, ErrorCode::InvalidArgument);
}

// ---- fleet fixture -------------------------------------------------------

constexpr uint64_t kShards = 4;

runtime::TestCase
alu_test(const char *name, AluOp op, uint32_t a, uint32_t b, int pair)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

CampaignConfig
base_config()
{
    CampaignConfig cfg;
    cfg.seed = 99;
    cfg.num_jobs = 12;
    cfg.threads = 1;
    cfg.max_slots = 6;
    return cfg;
}

/**
 * One analyzed ALU, an unsharded reference report, and a "golden"
 * directory of 4 finalized shard journals of the same campaign —
 * built once, then copied per corruption scenario.
 */
struct FleetEnv
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
    std::vector<runtime::TestCase> suite;
    CampaignReport ref;
    std::string golden_dir;
};

const FleetEnv &
env()
{
    static FleetEnv *e = [] {
        auto *env = new FleetEnv;
        env->module = rtl::make_alu32();
        auto lib =
            aging::AgingTimingLibrary::build(aging::RdModelParams{});
        AgingAnalysisConfig cfg;
        cfg.utilization = 0.99;
        cfg.max_trace = 1500;
        auto aged = run_aging_analysis(env->module, lib, minver_trace(),
                                       cfg);
        env->pairs = aged.liftable_pairs();
        if (env->pairs.size() > 2)
            env->pairs.resize(2);
        env->suite = {
            alu_test("f0", AluOp::Add, 0xffffffff, 1, 0),
            alu_test("f1", AluOp::Sub, 0, 1, 0),
            alu_test("f2", AluOp::Xor, 0xaaaaaaaa, 0x55555555, 1),
            alu_test("f3", AluOp::Sll, 1, 31, 1),
        };

        env->ref = run_campaign(env->module, env->pairs, env->suite,
                                base_config());

        env->golden_dir = tmp_dir("golden");
        std::filesystem::remove_all(env->golden_dir);
        EXPECT_TRUE(make_dirs(env->golden_dir).ok());
        for (uint64_t k = 0; k < kShards; ++k) {
            CampaignConfig cfg = base_config();
            cfg.num_shards = kShards;
            cfg.shard_id = k;
            cfg.journal_path =
                shard_journal_path(env->golden_dir, k, kShards);
            Expected<CampaignReport> r = try_run_campaign(
                env->module, env->pairs, env->suite, cfg);
            if (!r.ok())
                ADD_FAILURE() << "golden shard " << k << ": "
                              << r.error().to_string();
        }
        return env;
    }();
    return *e;
}

/** Copy the golden shard journals into a fresh scenario directory. */
std::string
fleet_copy(const char *name)
{
    const FleetEnv &e = env();
    std::string dir = fresh_dir(name);
    for (uint64_t k = 0; k < kShards; ++k)
        corrupt::spew(
            shard_journal_path(dir, k, kShards),
            corrupt::slurp(
                shard_journal_path(e.golden_dir, k, kShards)));
    return dir;
}

std::string
shard_path(const std::string &dir, uint64_t k)
{
    return shard_journal_path(dir, k, kShards);
}

// ---- aggregation ---------------------------------------------------------

TEST(ShardFleet, AggregateIsByteIdenticalToSingleProcess)
{
    const FleetEnv &e = env();
    Expected<AggregateResult> agg = aggregate_shard_dir(e.golden_dir);
    ASSERT_TRUE(agg.ok()) << agg.error().to_string();

    // The whole point of the deterministic partition: merging the 4
    // shard journals reproduces the unsharded report byte for byte.
    EXPECT_EQ(agg->report.to_json(false), e.ref.to_json(false));

    const IntegrityManifest &m = agg->manifest;
    EXPECT_TRUE(m.ok);
    EXPECT_EQ(m.num_shards, kShards);
    EXPECT_EQ(m.num_jobs, 12u);
    EXPECT_EQ(m.total_completed + m.total_failed, 12u);
    ASSERT_EQ(m.shards.size(), kShards);
    for (uint64_t k = 0; k < kShards; ++k) {
        EXPECT_EQ(m.shards[k].shard_id, k);
        EXPECT_TRUE(m.shards[k].verified);
        EXPECT_EQ(m.shards[k].detail, "ok");
        EXPECT_EQ(m.shards[k].completed + m.shards[k].failed, 3u);
        // The manifest's checksum is the one the trailer pinned.
        Expected<JournalState> st =
            read_journal(shard_path(e.golden_dir, k));
        ASSERT_TRUE(st.ok());
        EXPECT_EQ(m.shards[k].crc, st->rolling_crc);
        EXPECT_TRUE(st->has_trailer);
    }
}

TEST(ShardFleet, ManifestJsonCarriesPerShardEvidence)
{
    Expected<AggregateResult> agg =
        aggregate_shard_dir(env().golden_dir);
    ASSERT_TRUE(agg.ok()) << agg.error().to_string();
    std::string json = agg->manifest.to_json();
    EXPECT_NE(json.find("\"integrity\":{"), std::string::npos);
    EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos);
    EXPECT_NE(json.find("\"ok\":1"), std::string::npos);
    EXPECT_NE(json.find("\"shards\":[{"), std::string::npos);
    EXPECT_NE(json.find("shard-0-of-4.journal"), std::string::npos);
    EXPECT_NE(json.find("\"verdict\":\"ok\""), std::string::npos);
    // One "crc" entry per shard, each 8 hex digits.
    size_t crcs = 0;
    for (size_t pos = 0;
         (pos = json.find("\"crc\":\"", pos)) != std::string::npos;
         pos += 7)
        ++crcs;
    EXPECT_EQ(crcs, kShards);
}

TEST(ShardFleet, KilledShardIsIncompleteUntilResumed)
{
    const FleetEnv &e = env();
    std::string dir = fresh_dir("killresume");

    for (uint64_t k = 0; k < kShards; ++k) {
        CampaignConfig cfg = base_config();
        cfg.num_shards = kShards;
        cfg.shard_id = k;
        cfg.journal_path = shard_path(dir, k);
        cfg.journal_flush_every = 1;
        if (k == 1)
            cfg.stop_after_jobs = 2; // killed 2 jobs into its 3
        Expected<CampaignReport> r =
            try_run_campaign(e.module, e.pairs, e.suite, cfg);
        ASSERT_TRUE(r.ok()) << r.error().to_string();
    }

    // The killed shard has no trailer: merging now would fold a
    // partial shard into fleet statistics, so the aggregator refuses
    // and names the shard.
    Expected<AggregateResult> before = aggregate_shard_dir(dir);
    ASSERT_FALSE(before.ok());
    EXPECT_EQ(before.error().code, ErrorCode::ShardIncomplete);
    EXPECT_NE(before.error().context.find("shard-1-of-4.journal"),
              std::string::npos)
        << before.error().context;
    EXPECT_NE(before.error().context.find("no trailer"),
              std::string::npos);

    // Resume only the killed shard; the others are untouched.
    CampaignConfig resume = base_config();
    resume.num_shards = kShards;
    resume.shard_id = 1;
    resume.journal_path = shard_path(dir, 1);
    resume.resume = true;
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, resume);
    ASSERT_TRUE(r.ok()) << r.error().to_string();

    Expected<AggregateResult> after = aggregate_shard_dir(dir);
    ASSERT_TRUE(after.ok()) << after.error().to_string();
    EXPECT_EQ(after->report.to_json(false), e.ref.to_json(false));
    EXPECT_TRUE(after->manifest.ok);
}

TEST(ShardFleet, SigkillMidWaveThenResumeIsByteIdentical)
{
    // The wave path settles (and journals) episodes one by one while
    // sibling lanes' results are still in memory, so a SIGKILL after
    // the second record of a 3-job shard lands *mid-wave*: the third
    // episode has been simulated but never reaches the journal. The
    // resume must re-run exactly the missing jobs and the fleet
    // aggregate must still match the single-process report byte for
    // byte — the wave-composition-independence contract under the
    // harshest crash there is.
    const FleetEnv &e = env();
    std::string dir = fresh_dir("sigkillwave");

    for (uint64_t k = 0; k < kShards; ++k) {
        CampaignConfig cfg = base_config();
        cfg.num_shards = kShards;
        cfg.shard_id = k;
        cfg.journal_path = shard_path(dir, k);
        cfg.journal_flush_every = 1;
        if (k == 1) {
            // All 3 of shard 1's jobs share one 64-lane wave; the kill
            // triggers inside its settle loop. A real, uncatchable
            // SIGKILL needs a sacrificial process.
            cfg.kill_after_jobs = 2;
            pid_t pid = fork();
            ASSERT_GE(pid, 0);
            if (pid == 0) {
                (void)try_run_campaign(e.module, e.pairs, e.suite, cfg);
                _exit(0); // kill hook failed to fire
            }
            int status = 0;
            ASSERT_EQ(waitpid(pid, &status, 0), pid);
            ASSERT_TRUE(WIFSIGNALED(status));
            ASSERT_EQ(WTERMSIG(status), SIGKILL);
            continue;
        }
        Expected<CampaignReport> r =
            try_run_campaign(e.module, e.pairs, e.suite, cfg);
        ASSERT_TRUE(r.ok()) << r.error().to_string();
    }

    // The killed shard never wrote a trailer: aggregation refuses.
    Expected<AggregateResult> before = aggregate_shard_dir(dir);
    ASSERT_FALSE(before.ok());
    EXPECT_EQ(before.error().code, ErrorCode::ShardIncomplete);
    EXPECT_NE(before.error().context.find("shard-1-of-4.journal"),
              std::string::npos)
        << before.error().context;

    CampaignConfig resume = base_config();
    resume.num_shards = kShards;
    resume.shard_id = 1;
    resume.journal_path = shard_path(dir, 1);
    resume.resume = true;
    Expected<CampaignReport> r =
        try_run_campaign(e.module, e.pairs, e.suite, resume);
    ASSERT_TRUE(r.ok()) << r.error().to_string();

    Expected<AggregateResult> after = aggregate_shard_dir(dir);
    ASSERT_TRUE(after.ok()) << after.error().to_string();
    EXPECT_EQ(after->report.to_json(false), e.ref.to_json(false));
    EXPECT_TRUE(after->manifest.ok);
}

// ---- corruption scenarios ------------------------------------------------
//
// Shard ownership of the 12-job campaign: shard 0 = {0,4,8},
// shard 1 = {1,5,9}, shard 2 = {2,6,10}, shard 3 = {3,7,11}.

TEST(ShardCorruption, BitFlipIsPinpointedToShardAndRecord)
{
    std::string dir = fleet_copy("bitflip");
    ASSERT_TRUE(corrupt::flip_bit(shard_path(dir, 1), "job 5 "));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalRecordCorrupt);
    const std::string &ctx = agg.error().context;
    EXPECT_NE(ctx.find("shard-1-of-4.journal"), std::string::npos)
        << ctx;
    EXPECT_NE(ctx.find("checksum mismatch"), std::string::npos) << ctx;
    EXPECT_NE(ctx.find("job 5"), std::string::npos) << ctx;
}

TEST(ShardCorruption, TornRecordIsRecordCorruptForTheAggregator)
{
    std::string dir = fleet_copy("torn");
    // A crash signature: trailer never written, final append cut off
    // mid-line. The resume path tolerates this; the aggregator must
    // not (the shard is simply not done).
    ASSERT_TRUE(corrupt::drop_trailer(shard_path(dir, 2)));
    corrupt::truncate_bytes(shard_path(dir, 2), 5);

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalRecordCorrupt);
    EXPECT_NE(agg.error().context.find("shard-2-of-4.journal"),
              std::string::npos)
        << agg.error().context;
}

TEST(ShardCorruption, DroppedTrailerIsShardIncomplete)
{
    std::string dir = fleet_copy("droptrailer");
    ASSERT_TRUE(corrupt::drop_trailer(shard_path(dir, 0)));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::ShardIncomplete);
    EXPECT_NE(agg.error().context.find("shard-0-of-4.journal"),
              std::string::npos)
        << agg.error().context;
}

TEST(ShardCorruption, TamperedTrailerIsTrailerMismatch)
{
    std::string dir = fleet_copy("tampertrailer");
    ASSERT_TRUE(corrupt::tamper_trailer_crc(shard_path(dir, 3)));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalTrailerMismatch);
    EXPECT_NE(agg.error().context.find("rolling checksum mismatch"),
              std::string::npos)
        << agg.error().context;
}

TEST(ShardCorruption, DuplicateRecordTripsTheTrailerFirst)
{
    std::string dir = fleet_copy("dupnaive");
    ASSERT_TRUE(corrupt::duplicate_record(shard_path(dir, 1), "job 1 "));

    // Without forging the trailer, the whole-file checksum layer
    // already refuses: the record count no longer matches.
    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalTrailerMismatch);
    EXPECT_NE(agg.error().context.find("trailer claims"),
              std::string::npos)
        << agg.error().context;
}

TEST(ShardCorruption, ForgedDuplicateIsCaughtByJobIdUniqueness)
{
    std::string dir = fleet_copy("dupforged");
    ASSERT_TRUE(corrupt::duplicate_record(shard_path(dir, 1), "job 1 "));
    corrupt::forge_trailer(shard_path(dir, 1));

    // Checksums all pass now — only the aggregator's fleet-wide
    // job-id uniqueness check can expose the double count.
    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalRecordCorrupt);
    const std::string &ctx = agg.error().context;
    EXPECT_NE(ctx.find("duplicate record for job 1"), std::string::npos)
        << ctx;
    EXPECT_NE(ctx.find("shard 1"), std::string::npos) << ctx;
}

TEST(ShardCorruption, TransplantedRecordIsCrossShardOverlap)
{
    std::string dir = fleet_copy("transplant");
    // A record of shard 0's job 4, transplanted into shard 2's
    // journal with a consistent forged trailer: every checksum passes,
    // but job 4 does not belong to shard 2's slice.
    std::string line =
        corrupt::get_record_line(shard_path(dir, 0), "job 4 ");
    ASSERT_FALSE(line.empty());
    corrupt::insert_record_line(shard_path(dir, 2), line);
    corrupt::forge_trailer(shard_path(dir, 2));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalRecordCorrupt);
    const std::string &ctx = agg.error().context;
    EXPECT_NE(ctx.find("cross-shard overlap"), std::string::npos) << ctx;
    EXPECT_NE(ctx.find("job 4"), std::string::npos) << ctx;
    EXPECT_NE(ctx.find("shard 2"), std::string::npos) << ctx;
    EXPECT_NE(ctx.find("owned by shard 0"), std::string::npos) << ctx;
}

TEST(ShardCorruption, DeletedRecordIsACoverageGap)
{
    std::string dir = fleet_copy("deleted");
    ASSERT_TRUE(corrupt::remove_record(shard_path(dir, 3), "job 7 "));
    corrupt::forge_trailer(shard_path(dir, 3));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::ShardIncomplete);
    const std::string &ctx = agg.error().context;
    EXPECT_NE(ctx.find("no record for job 7"), std::string::npos) << ctx;
    EXPECT_NE(ctx.find("shard 3"), std::string::npos) << ctx;
}

TEST(ShardCorruption, MissingShardJournalIsShardIncomplete)
{
    std::string dir = fleet_copy("missing");
    std::filesystem::remove(shard_path(dir, 2));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::ShardIncomplete);
    EXPECT_NE(agg.error().context.find("shard 2"), std::string::npos)
        << agg.error().context;
    EXPECT_NE(agg.error().context.find("no journal"), std::string::npos);
}

TEST(ShardCorruption, ForeignCampaignJournalIsJournalMismatch)
{
    std::string dir = fleet_copy("foreign");
    // Rewrite shard 2's campaign fingerprint (seed 99 -> 98) with a
    // valid line checksum and a forged trailer: internally consistent,
    // but it is a different campaign's journal.
    ASSERT_TRUE(corrupt::rewrite_record(shard_path(dir, 2), "config ",
                                        "seed=99", "seed=98"));
    corrupt::forge_trailer(shard_path(dir, 2));

    Expected<AggregateResult> agg = aggregate_shard_dir(dir);
    ASSERT_FALSE(agg.ok());
    EXPECT_EQ(agg.error().code, ErrorCode::JournalMismatch);
    EXPECT_NE(agg.error().context.find("different campaign"),
              std::string::npos)
        << agg.error().context;
}

} // namespace
} // namespace vega::campaign
