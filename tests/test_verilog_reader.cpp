#include "netlist/verilog_reader.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "formal/equiv.h"
#include "lift/failure_model.h"
#include "netlist/verilog_writer.h"
#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "sim/simulator.h"

namespace vega {
namespace {

TEST(VerilogReader, RoundTripsTheExampleAdder)
{
    HwModule m = rtl::make_adder2();
    Netlist parsed = read_verilog(to_verilog(m.netlist));
    EXPECT_EQ(parsed.name(), "adder2");
    EXPECT_EQ(parsed.dffs().size(), m.netlist.dffs().size());
    EXPECT_EQ(parsed.input_bus_names(), m.netlist.input_bus_names());
    EXPECT_EQ(parsed.output_bus_names(), m.netlist.output_bus_names());

    // Behavioural agreement on exhaustive pipelined stimulus.
    Simulator orig(m.netlist), back(parsed);
    for (unsigned v = 0; v < 64; ++v) {
        BitVec a(2, v & 3), b(2, (v >> 2) & 3);
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        back.set_bus("a", a);
        back.set_bus("b", b);
        EXPECT_EQ(back.bus_value("o").to_u64(),
                  orig.bus_value("o").to_u64())
            << v;
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RoundTripIsFormallyEquivalent)
{
    HwModule m = rtl::make_adder2();
    Netlist parsed = read_verilog(to_verilog(m.netlist));
    formal::BmcOptions opts;
    opts.max_frames = 5;
    formal::EquivResult r =
        formal::check_equivalence(m.netlist, parsed, opts);
    EXPECT_EQ(r.status, formal::EquivStatus::Equivalent);
}

TEST(VerilogReader, RoundTripsTheAlu)
{
    HwModule m = rtl::make_alu32();
    Netlist parsed = read_verilog(to_verilog(m.netlist));

    Simulator orig(m.netlist), back(parsed);
    Rng rng(31);
    for (int t = 0; t < 50; ++t) {
        BitVec a(32, rng.next()), b(32, rng.next());
        BitVec op(4, rng.below(10));
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        orig.set_bus("op", op);
        back.set_bus("a", a);
        back.set_bus("b", b);
        back.set_bus("op", op);
        EXPECT_EQ(back.bus_value("r").to_u64(),
                  orig.bus_value("r").to_u64());
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RoundTripsFailingNetlistsWithInit)
{
    // Failing netlists carry the failure-model cells (MUX, history DFF
    // with a nonzero INIT when the launch flop resets to 1).
    HwModule m = rtl::make_adder2();
    CellId launch = kInvalidId, capture = kInvalidId;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        if (m.netlist.cell(c).name == "$4")
            launch = c;
        if (m.netlist.cell(c).name == "$10")
            capture = c;
    }
    lift::FailureModelSpec spec;
    spec.launch = launch;
    spec.capture = capture;
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    lift::FailingNetlist failing =
        lift::build_failing_netlist(m.netlist, spec);

    Netlist parsed = read_verilog(to_verilog(failing.netlist));
    Simulator orig(failing.netlist), back(parsed);
    Rng rng(77);
    for (int t = 0; t < 100; ++t) {
        BitVec a(2, rng.below(4)), b(2, rng.below(4));
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        back.set_bus("a", a);
        back.set_bus("b", b);
        EXPECT_EQ(back.bus_value("o").to_u64(),
                  orig.bus_value("o").to_u64())
            << t;
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RejectsMalformedInput)
{
    EXPECT_THROW(read_verilog("garbage"), std::runtime_error);
    EXPECT_THROW(read_verilog("module m (clk); input clk; bogus;"),
                 std::runtime_error);
    EXPECT_THROW(read_verilog("module m (clk, o); input clk; output "
                              "[0:0] o; endmodule"),
                 std::runtime_error); // output bit never assigned
}

TEST(VerilogReader, DffInitValuesSurvive)
{
    Netlist nl("init");
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    nl.add_cell(CellType::Not, "inv", {q}, d);
    nl.add_dff("ff", d, q, /*init=*/true);
    nl.add_output_bus("o", {q});

    Netlist parsed = read_verilog(to_verilog(nl));
    Simulator sim(parsed);
    EXPECT_EQ(sim.bus_value("o").to_u64(), 1u); // init = 1
    sim.step();
    EXPECT_EQ(sim.bus_value("o").to_u64(), 0u); // toggles
}

} // namespace
} // namespace vega
