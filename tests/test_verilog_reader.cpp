#include "netlist/verilog_reader.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "formal/equiv.h"
#include "lift/failure_model.h"
#include "netlist/verilog_writer.h"
#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "sim/simulator.h"

namespace vega {
namespace {

TEST(VerilogReader, RoundTripsTheExampleAdder)
{
    HwModule m = rtl::make_adder2();
    Netlist parsed = read_verilog(to_verilog(m.netlist));
    EXPECT_EQ(parsed.name(), "adder2");
    EXPECT_EQ(parsed.dffs().size(), m.netlist.dffs().size());
    EXPECT_EQ(parsed.input_bus_names(), m.netlist.input_bus_names());
    EXPECT_EQ(parsed.output_bus_names(), m.netlist.output_bus_names());

    // Behavioural agreement on exhaustive pipelined stimulus.
    Simulator orig(m.netlist), back(parsed);
    for (unsigned v = 0; v < 64; ++v) {
        BitVec a(2, v & 3), b(2, (v >> 2) & 3);
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        back.set_bus("a", a);
        back.set_bus("b", b);
        EXPECT_EQ(back.bus_value("o").to_u64(),
                  orig.bus_value("o").to_u64())
            << v;
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RoundTripIsFormallyEquivalent)
{
    HwModule m = rtl::make_adder2();
    Netlist parsed = read_verilog(to_verilog(m.netlist));
    formal::BmcOptions opts;
    opts.max_frames = 5;
    formal::EquivResult r =
        formal::check_equivalence(m.netlist, parsed, opts);
    EXPECT_EQ(r.status, formal::EquivStatus::Equivalent);
}

TEST(VerilogReader, RoundTripsTheAlu)
{
    HwModule m = rtl::make_alu32();
    Netlist parsed = read_verilog(to_verilog(m.netlist));

    Simulator orig(m.netlist), back(parsed);
    Rng rng(31);
    for (int t = 0; t < 50; ++t) {
        BitVec a(32, rng.next()), b(32, rng.next());
        BitVec op(4, rng.below(10));
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        orig.set_bus("op", op);
        back.set_bus("a", a);
        back.set_bus("b", b);
        back.set_bus("op", op);
        EXPECT_EQ(back.bus_value("r").to_u64(),
                  orig.bus_value("r").to_u64());
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RoundTripsFailingNetlistsWithInit)
{
    // Failing netlists carry the failure-model cells (MUX, history DFF
    // with a nonzero INIT when the launch flop resets to 1).
    HwModule m = rtl::make_adder2();
    CellId launch = kInvalidId, capture = kInvalidId;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        if (m.netlist.cell(c).name == "$4")
            launch = c;
        if (m.netlist.cell(c).name == "$10")
            capture = c;
    }
    lift::FailureModelSpec spec;
    spec.launch = launch;
    spec.capture = capture;
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    lift::FailingNetlist failing =
        lift::build_failing_netlist(m.netlist, spec);

    Netlist parsed = read_verilog(to_verilog(failing.netlist));
    Simulator orig(failing.netlist), back(parsed);
    Rng rng(77);
    for (int t = 0; t < 100; ++t) {
        BitVec a(2, rng.below(4)), b(2, rng.below(4));
        orig.set_bus("a", a);
        orig.set_bus("b", b);
        back.set_bus("a", a);
        back.set_bus("b", b);
        EXPECT_EQ(back.bus_value("o").to_u64(),
                  orig.bus_value("o").to_u64())
            << t;
        orig.step();
        back.step();
    }
}

TEST(VerilogReader, RejectsMalformedInput)
{
    EXPECT_THROW(read_verilog("garbage"), std::runtime_error);
    EXPECT_THROW(read_verilog("module m (clk); input clk; bogus;"),
                 std::runtime_error);
    EXPECT_THROW(read_verilog("module m (clk, o); input clk; output "
                              "[0:0] o; endmodule"),
                 std::runtime_error); // output bit never assigned
}

TEST(VerilogReader, StructuredErrorsCarryLineContext)
{
    Expected<Netlist> r = try_read_verilog("garbage");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().context.find("line 1"), std::string::npos)
        << r.error().context;

    // Second line: the error must name it.
    Expected<Netlist> r2 = try_read_verilog(
        "module m (clk, o);\n  frobnicate;\nendmodule\n");
    ASSERT_FALSE(r2.ok());
    EXPECT_EQ(r2.error().code, ErrorCode::ParseError);
    EXPECT_NE(r2.error().context.find("line 2"), std::string::npos)
        << r2.error().context;
}

TEST(VerilogReader, TruncatedInputTerminatesWithParseError)
{
    // EOF inside the port list, a gate pin list, and a DFF pin list —
    // each once looped forever instead of failing.
    for (const char *text :
         {"module m (clk, a",
          "module m (clk, o); input clk; output [0:0] o; wire \\x ; "
          "not \\g (\\x , ",
          "module m (clk, o); input clk; output [0:0] o; wire \\q ; "
          "VEGA_DFF \\ff (.clk(clk), .d("}) {
        Expected<Netlist> r = try_read_verilog(text);
        ASSERT_FALSE(r.ok()) << text;
        EXPECT_EQ(r.error().code, ErrorCode::ParseError);
        EXPECT_NE(r.error().context.find("end of input"),
                  std::string::npos)
            << r.error().context;
    }
}

TEST(VerilogReader, MultiplyDrivenNetIsStructuredError)
{
    Expected<Netlist> r = try_read_verilog(
        "module m (clk, a, o);\n"
        "  input clk;\n  input [0:0] a;\n  output [0:0] o;\n"
        "  wire \\x ;\n"
        "  assign \\x = a[0];\n"
        "  assign \\x = a[0];\n"
        "  assign o[0] = \\x ;\n"
        "endmodule\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().context.find("driven more than once"),
              std::string::npos)
        << r.error().context;
}

TEST(VerilogReader, GarbageAndOversizedBusRangesRejected)
{
    const char *tmpl = "module m (clk, a, o);\n  input clk;\n"
                       "  input %s a;\n  output [0:0] o;\n"
                       "  assign o[0] = a[0];\nendmodule\n";
    for (const char *range : {"[zz:0]", "[3:1]", "[:0]", "[99999:0]"}) {
        char buf[256];
        std::snprintf(buf, sizeof buf, tmpl, range);
        Expected<Netlist> r = try_read_verilog(buf);
        ASSERT_FALSE(r.ok()) << range;
        EXPECT_EQ(r.error().code, ErrorCode::ParseError) << range;
    }
}

TEST(VerilogReader, CombinationalCycleIsValidationError)
{
    Expected<Netlist> r = try_read_verilog(
        "module m (clk, o);\n"
        "  input clk;\n  output [0:0] o;\n"
        "  wire \\x ;\n  wire \\y ;\n"
        "  not \\g1 (\\x , \\y );\n"
        "  not \\g2 (\\y , \\x );\n"
        "  assign o[0] = \\x ;\n"
        "endmodule\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ValidationError);
    EXPECT_NE(r.error().context.find("combinational cycle"),
              std::string::npos)
        << r.error().context;
}

TEST(VerilogReader, DuplicatePortDeclarationRejected)
{
    Expected<Netlist> r = try_read_verilog(
        "module m (clk, a, o);\n"
        "  input clk;\n  input [0:0] a;\n  input [0:0] a;\n"
        "  output [0:0] o;\n"
        "  assign o[0] = a[0];\nendmodule\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().context.find("declared twice"),
              std::string::npos)
        << r.error().context;
}

TEST(VerilogReader, DffInitValuesSurvive)
{
    Netlist nl("init");
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    nl.add_cell(CellType::Not, "inv", {q}, d);
    nl.add_dff("ff", d, q, /*init=*/true);
    nl.add_output_bus("o", {q});

    Netlist parsed = read_verilog(to_verilog(nl));
    Simulator sim(parsed);
    EXPECT_EQ(sim.bus_value("o").to_u64(), 1u); // init = 1
    sim.step();
    EXPECT_EQ(sim.bus_value("o").to_u64(), 0u); // toggles
}

} // namespace
} // namespace vega
