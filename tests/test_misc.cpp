#include <gtest/gtest.h>

#include "netlist/builder.h"
#include "rtl/adder2.h"
#include "sim/sp_profiler.h"
#include "sim/waveform.h"
#include "sta/sta.h"

namespace vega {
namespace {

TEST(SpActivity, TogglingCellHasFullActivity)
{
    // q <= !q toggles every cycle; a constant never moves.
    Netlist nl("t");
    Builder b(nl);
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    CellId inv = nl.add_cell(CellType::Not, "inv", {q}, d);
    CellId ff = nl.add_dff("ff", d, q, false);
    NetId one = b.const1();
    nl.add_output_bus("o", {q, one});

    Simulator sim(nl);
    SpProfile p = profile_signal_probability(sim, 512,
                                             [](Simulator &, uint64_t) {});
    EXPECT_NEAR(p.activity(ff), 1.0, 0.01);
    EXPECT_NEAR(p.activity(inv), 1.0, 0.01);
    EXPECT_DOUBLE_EQ(p.activity(nl.net(one).driver), 0.0);
}

TEST(SpActivity, DividerChainHalvesActivity)
{
    // Two-bit counter: bit0 toggles every cycle, bit1 every other.
    Netlist nl("ctr");
    Builder b(nl);
    NetId q0 = nl.new_net("q0");
    NetId q1 = nl.new_net("q1");
    NetId d0 = b.not_(q0);
    NetId d1 = b.xor_(q1, q0);
    CellId f0 = nl.add_dff("f0", d0, q0, false);
    CellId f1 = nl.add_dff("f1", d1, q1, false);
    nl.add_output_bus("o", {q0, q1});

    Simulator sim(nl);
    SpProfile p = profile_signal_probability(sim, 1024,
                                             [](Simulator &, uint64_t) {});
    EXPECT_NEAR(p.activity(f0), 1.0, 0.01);
    EXPECT_NEAR(p.activity(f1), 0.5, 0.01);
}

TEST(SpActivity, MergedProfilesAccumulateTransitions)
{
    Netlist nl("t");
    NetId q = nl.new_net("q");
    NetId d = nl.new_net("d");
    nl.add_cell(CellType::Not, "inv", {q}, d);
    CellId ff = nl.add_dff("ff", d, q, false);
    nl.add_output_bus("o", {q});

    Simulator sim(nl);
    SpProfile p1 = profile_signal_probability(
        sim, 100, [](Simulator &, uint64_t) {});
    SpProfile p2 = profile_signal_probability(
        sim, 100, [](Simulator &, uint64_t) {});
    p1.merge(p2);
    EXPECT_GT(p1.activity(ff), 0.9);
}

TEST(IrDrop, DerateOnlySlowsActiveCells)
{
    HwModule m = rtl::make_adder2();
    Simulator sim(m.netlist);
    // Toggle everything to build up activity.
    SpProfile p = profile_signal_probability(
        sim, 256, [](Simulator &s, uint64_t t) {
            s.set_bus("a", BitVec(2, t % 4));
            s.set_bus("b", BitVec(2, (t / 2) % 4));
        });
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});

    sta::IrDropParams off;
    sta::IrDropParams on;
    on.enable = true;
    on.sensitivity = 0.05;
    sta::AgedTiming base =
        sta::compute_aged_timing(m, p, lib, 10.0, off);
    sta::AgedTiming derated =
        sta::compute_aged_timing(m, p, lib, 10.0, on);

    bool some_slower = false;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        EXPECT_GE(derated.delay_max[c] + derated.clk_to_q_max[c],
                  base.delay_max[c] + base.clk_to_q_max[c] - 1e-12);
        if (derated.delay_max[c] > base.delay_max[c] + 1e-12)
            some_slower = true;
        // Min arcs are untouched: pessimistic for setup only.
        EXPECT_DOUBLE_EQ(derated.delay_min[c], base.delay_min[c]);
    }
    EXPECT_TRUE(some_slower);
}

TEST(EndpointSlacks, ReportsEveryDff)
{
    HwModule m = rtl::make_adder2();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    sta::calibrate_timing_scale(m, lib, 0.9);
    SpProfile neutral(m.netlist.num_cells());
    sta::AgedTiming t = sta::compute_aged_timing(m, neutral, lib, 0.0);
    auto slacks = sta::endpoint_slacks(m, t);
    EXPECT_EQ(slacks.size(), m.netlist.dffs().size());
    double wns = 1e30;
    for (const auto &s : slacks)
        wns = std::min(wns, s.setup_slack);
    EXPECT_NEAR(wns, sta::run_sta(m, t).wns_setup, 1e-9);
}

TEST(Waveform, TableRendersAllSignalsAndCycles)
{
    Waveform w;
    w.record("a", BitVec(2, 1));
    w.record("o", BitVec(2, 0));
    w.record("a", BitVec(2, 3));
    w.record("o", BitVec(2, 2));
    std::string table = w.to_table();
    EXPECT_NE(table.find("cyc1"), std::string::npos);
    EXPECT_NE(table.find("cyc2"), std::string::npos);
    EXPECT_NE(table.find("'b01"), std::string::npos);
    EXPECT_NE(table.find("'b11"), std::string::npos);
    EXPECT_NE(table.find("'b10"), std::string::npos);
}

TEST(Waveform, AtChecksBounds)
{
    Waveform w;
    w.record("a", BitVec(1, 1));
    EXPECT_DEATH(w.at("missing", 0), "no signal");
    EXPECT_DEATH(w.at("a", 5), "out of range");
}

} // namespace
} // namespace vega
