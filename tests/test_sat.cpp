#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <vector>

#include "common/rng.h"

namespace vega::sat {
namespace {

Lit
pos(Var v)
{
    return Lit(v, false);
}

Lit
neg(Var v)
{
    return Lit(v, true);
}

TEST(SatSolver, EmptyInstanceIsSat)
{
    Solver s;
    EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(SatSolver, UnitClausesPropagate)
{
    Solver s;
    Var a = s.new_var(), b = s.new_var();
    s.add_clause(pos(a));
    s.add_clause(neg(b));
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    EXPECT_TRUE(s.model_value(a));
    EXPECT_FALSE(s.model_value(b));
}

TEST(SatSolver, ContradictingUnitsUnsat)
{
    Solver s;
    Var a = s.new_var();
    s.add_clause(pos(a));
    s.add_clause(neg(a));
    EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(SatSolver, ImplicationChain)
{
    // a, a->b, b->c, c->d ... must set everything true.
    Solver s;
    const int n = 50;
    std::vector<Var> v;
    for (int i = 0; i < n; ++i)
        v.push_back(s.new_var());
    s.add_clause(pos(v[0]));
    for (int i = 0; i + 1 < n; ++i)
        s.add_clause(neg(v[i]), pos(v[i + 1]));
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    for (int i = 0; i < n; ++i)
        EXPECT_TRUE(s.model_value(v[i])) << i;
}

TEST(SatSolver, XorChainSat)
{
    // x0 ^ x1 = 1, x1 ^ x2 = 1, ..., checks model consistency.
    Solver s;
    const int n = 30;
    std::vector<Var> v;
    for (int i = 0; i < n; ++i)
        v.push_back(s.new_var());
    for (int i = 0; i + 1 < n; ++i) {
        s.add_clause(pos(v[i]), pos(v[i + 1]));
        s.add_clause(neg(v[i]), neg(v[i + 1]));
    }
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    for (int i = 0; i + 1 < n; ++i)
        EXPECT_NE(s.model_value(v[i]), s.model_value(v[i + 1]));
}

TEST(SatSolver, PigeonholeUnsat)
{
    // 4 pigeons, 3 holes: classic small UNSAT instance that requires
    // real conflict analysis, not just propagation.
    Solver s;
    const int P = 4, H = 3;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

TEST(SatSolver, PigeonholeSatWhenHolesSuffice)
{
    Solver s;
    const int P = 4, H = 4;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    // Verify: each pigeon somewhere, no hole duplicated.
    std::vector<int> used(H, 0);
    for (int p = 0; p < P; ++p) {
        int count = 0;
        for (int h = 0; h < H; ++h)
            if (s.model_value(x[p][h])) {
                ++count;
                ++used[h];
            }
        EXPECT_GE(count, 1);
    }
    for (int h = 0; h < H; ++h)
        EXPECT_LE(used[h], 1);
}

TEST(SatSolver, TautologyAndDuplicatesIgnored)
{
    Solver s;
    Var a = s.new_var(), b = s.new_var();
    s.add_clause(pos(a), neg(a));         // tautology: no constraint
    s.add_clause({pos(b), pos(b), pos(b)}); // duplicates collapse
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    EXPECT_TRUE(s.model_value(b));
}

/** Random planted-solution 3-SAT: always satisfiable by construction. */
TEST(SatSolver, RandomPlanted3Sat)
{
    Rng rng(77);
    for (int round = 0; round < 10; ++round) {
        Solver s;
        const int n = 120;
        std::vector<Var> v;
        std::vector<bool> planted;
        for (int i = 0; i < n; ++i) {
            v.push_back(s.new_var());
            planted.push_back(rng.chance(0.5));
        }
        const int m = 500;
        for (int c = 0; c < m; ++c) {
            std::vector<Lit> clause;
            bool satisfied = false;
            for (int k = 0; k < 3; ++k) {
                int idx = int(rng.below(n));
                bool negate = rng.chance(0.5);
                if (planted[idx] != negate)
                    satisfied = true;
                clause.push_back(Lit(v[idx], negate));
            }
            if (!satisfied) {
                // Flip one literal to agree with the planted assignment.
                clause[0] = Lit(clause[0].var(),
                                !planted[clause[0].var()]);
            }
            s.add_clause(clause);
        }
        ASSERT_EQ(s.solve(), Solver::Result::Sat) << round;
        // Model must satisfy every clause (checked via re-solve
        // determinism and spot verification below).
        EXPECT_GT(s.num_decisions(), 0u);
    }
}

/** Property: any Sat verdict's model must satisfy every clause. */
TEST(SatSolver, ModelsSatisfyAllClauses)
{
    Rng rng(123);
    for (int round = 0; round < 20; ++round) {
        Solver s;
        const int n = 60;
        std::vector<Var> v;
        std::vector<bool> planted;
        for (int i = 0; i < n; ++i) {
            v.push_back(s.new_var());
            planted.push_back(rng.chance(0.5));
        }
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < 240; ++c) {
            std::vector<Lit> clause;
            bool satisfied = false;
            int width = 2 + int(rng.below(3));
            for (int k = 0; k < width; ++k) {
                int idx = int(rng.below(n));
                bool negate = rng.chance(0.5);
                if (planted[idx] != negate)
                    satisfied = true;
                clause.push_back(Lit(v[idx], negate));
            }
            if (!satisfied)
                clause[0] = Lit(clause[0].var(),
                                !planted[clause[0].var()]);
            clauses.push_back(clause);
            s.add_clause(clause);
        }
        ASSERT_EQ(s.solve(), Solver::Result::Sat) << round;
        for (const auto &clause : clauses) {
            bool sat = false;
            for (Lit l : clause)
                if (s.model_value(l.var()) != l.sign())
                    sat = true;
            EXPECT_TRUE(sat) << "round " << round;
        }
    }
}

TEST(SatSolver, ConflictBudgetReturnsUnknown)
{
    // A hard pigeonhole instance with a tiny budget must time out.
    Solver s;
    const int P = 9, H = 8;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    EXPECT_EQ(s.solve(50), Solver::Result::Unknown);
}

TEST(SatSolver, WallClockDeadlineReturnsUnknown)
{
    // Same adversarial pigeonhole instance, but bounded by wall time
    // instead of conflicts: the solver must terminate promptly with
    // Unknown rather than grinding to a (slow) refutation.
    Solver s;
    const int P = 10, H = 9;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause;
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));

    SolveLimits limits;
    limits.conflict_budget = -1; // unlimited conflicts
    limits.wall_seconds = 0.05;
    auto start = std::chrono::steady_clock::now();
    EXPECT_EQ(s.solve(limits), Solver::Result::Unknown);
    double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    // Generous bound: the deadline is checked every 256 conflicts, so
    // overshoot is small; anything near a full refutation is a bug.
    EXPECT_LT(elapsed, 5.0);
}

TEST(SatSolver, WallClockDeadlineIgnoredWhenUnset)
{
    // Default limits (no budget, no deadline) still solve to completion.
    Solver s;
    Var a = s.new_var(), b = s.new_var();
    s.add_clause(pos(a), pos(b));
    s.add_clause(neg(a));
    SolveLimits limits;
    EXPECT_EQ(s.solve(limits), Solver::Result::Sat);
    EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, AssumptionsHoldInModel)
{
    Solver s;
    Var a = s.new_var(), b = s.new_var();
    s.add_clause(pos(a), pos(b));
    ASSERT_EQ(s.solve({neg(a)}), Solver::Result::Sat);
    EXPECT_FALSE(s.model_value(a));
    EXPECT_TRUE(s.model_value(b));
    // Same instance, opposite assumption: no rebuild needed.
    ASSERT_EQ(s.solve({pos(a)}), Solver::Result::Sat);
    EXPECT_TRUE(s.model_value(a));
}

TEST(SatSolver, AssumptionUnsatDoesNotPoisonInstance)
{
    Solver s;
    Var a = s.new_var(), b = s.new_var();
    s.add_clause(neg(a), pos(b)); // a -> b
    EXPECT_EQ(s.solve({pos(a), neg(b)}), Solver::Result::Unsat);
    // failed_assumptions is a subset of the assumptions.
    for (Lit l : s.failed_assumptions())
        EXPECT_TRUE(l == pos(a) || l == neg(b));
    EXPECT_FALSE(s.failed_assumptions().empty());
    // The instance itself is still satisfiable, and still extendable.
    EXPECT_EQ(s.solve(), Solver::Result::Sat);
    s.add_clause(pos(a));
    ASSERT_EQ(s.solve(), Solver::Result::Sat);
    EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, RootFalsifiedAssumptionFails)
{
    Solver s;
    Var a = s.new_var();
    s.add_clause(neg(a));
    EXPECT_EQ(s.solve({pos(a)}), Solver::Result::Unsat);
    ASSERT_EQ(s.failed_assumptions().size(), 1u);
    EXPECT_EQ(s.failed_assumptions()[0], pos(a));
    // Not poisoned: the instance without the assumption is Sat.
    EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

TEST(SatSolver, LearnedClausesPersistAcrossSolves)
{
    // Pigeonhole under assumptions: the refutation is learned once and
    // the instance stays reusable, so the counter only grows.
    Solver s;
    const int P = 5, H = 4;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    Var gate = s.new_var(); // activation literal guarding the at-least-one rows
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause{neg(gate)};
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));

    EXPECT_EQ(s.solve({pos(gate)}), Solver::Result::Unsat);
    uint64_t learned_first = s.num_learned_clauses();
    EXPECT_GT(learned_first, 0u);
    // Re-ask: still Unsat, still usable, learned count monotone.
    EXPECT_EQ(s.solve({pos(gate)}), Solver::Result::Unsat);
    EXPECT_GE(s.num_learned_clauses(), learned_first);
    // And without the gate the instance is satisfiable.
    EXPECT_EQ(s.solve(), Solver::Result::Sat);
}

/**
 * Cross-check assumption solving against the reference semantics: on a
 * shared incremental instance, solve({a...}) must give the same
 * sat/unsat answer as a scratch solver with the assumptions added as
 * unit clauses — and a Sat model must satisfy clauses and assumptions.
 */
TEST(SatSolver, AssumptionsCrossCheckScratchUnits)
{
    Rng rng(2026);
    for (int round = 0; round < 6; ++round) {
        const int n = 40;
        std::vector<std::vector<Lit>> clauses;
        for (int c = 0; c < 150; ++c) {
            std::vector<Lit> clause;
            int width = 2 + int(rng.below(3));
            for (int k = 0; k < width; ++k)
                clause.push_back(Lit(Var(rng.below(n)), rng.chance(0.5)));
            clauses.push_back(clause);
        }

        Solver inc;
        for (int i = 0; i < n; ++i)
            inc.new_var();
        for (const auto &clause : clauses)
            inc.add_clause(clause);

        // Many assumption sets against the one incremental instance.
        for (int q = 0; q < 8; ++q) {
            std::vector<Lit> assumptions;
            for (int k = 0; k < 3; ++k)
                assumptions.push_back(
                    Lit(Var(rng.below(n)), rng.chance(0.5)));

            Solver scratch;
            for (int i = 0; i < n; ++i)
                scratch.new_var();
            for (const auto &clause : clauses)
                scratch.add_clause(clause);
            bool scratch_ok = true;
            for (Lit l : assumptions)
                scratch_ok = scratch.add_clause(l) && scratch_ok;
            auto want = !scratch_ok ? Solver::Result::Unsat
                                    : scratch.solve();

            auto got = inc.solve(assumptions);
            ASSERT_EQ(got, want) << "round " << round << " query " << q;

            if (got == Solver::Result::Sat) {
                for (Lit l : assumptions)
                    EXPECT_EQ(inc.model_value(l.var()), !l.sign());
                for (const auto &clause : clauses) {
                    bool sat = false;
                    for (Lit l : clause)
                        if (inc.model_value(l.var()) != l.sign())
                            sat = true;
                    EXPECT_TRUE(sat);
                }
            } else {
                // The failed set must itself be unsat as unit clauses.
                Solver check;
                for (int i = 0; i < n; ++i)
                    check.new_var();
                for (const auto &clause : clauses)
                    check.add_clause(clause);
                bool consistent = true;
                for (Lit l : inc.failed_assumptions()) {
                    EXPECT_TRUE(std::find(assumptions.begin(),
                                          assumptions.end(),
                                          l) != assumptions.end());
                    consistent = check.add_clause(l) && consistent;
                }
                if (consistent)
                    EXPECT_EQ(check.solve(), Solver::Result::Unsat);
            }
        }
    }
}

/** Helper: a random CNF over @p n vars, widths 2-4, loaded into @p s. */
std::vector<std::vector<Lit>>
random_cnf(Rng &rng, Solver &s, int n, int m)
{
    std::vector<std::vector<Lit>> clauses;
    for (int i = 0; i < n; ++i)
        s.new_var();
    for (int c = 0; c < m; ++c) {
        std::vector<Lit> clause;
        int width = 2 + int(rng.below(3));
        for (int k = 0; k < width; ++k)
            clause.push_back(Lit(Var(rng.below(n)), rng.chance(0.5)));
        clauses.push_back(clause);
        s.add_clause(clause);
    }
    return clauses;
}

/**
 * Cross-check solve_batch against the reference semantics: each set's
 * verdict must equal an *independent* solver answering that set alone
 * (verdicts are semantic; only the spend depends on batching).
 */
TEST(SatSolver, SolveBatchMatchesIndependentSolves)
{
    Rng rng(909);
    for (int round = 0; round < 6; ++round) {
        Solver batch_solver;
        auto clauses = random_cnf(rng, batch_solver, 40, 150);

        std::vector<std::vector<Lit>> sets;
        for (int q = 0; q < 10; ++q) {
            std::vector<Lit> set;
            for (int k = 0; k < 3; ++k)
                set.push_back(Lit(Var(rng.below(40)), rng.chance(0.5)));
            sets.push_back(set);
        }

        auto outcomes = batch_solver.solve_batch(sets);
        ASSERT_EQ(outcomes.size(), sets.size());

        for (size_t q = 0; q < sets.size(); ++q) {
            Solver ref;
            for (int i = 0; i < 40; ++i)
                ref.new_var();
            for (const auto &clause : clauses)
                ref.add_clause(clause);
            auto want = ref.solve(sets[q]);
            EXPECT_EQ(outcomes[q].result, want)
                << "round " << round << " set " << q;
            if (outcomes[q].result == Solver::Result::Unsat) {
                // The failed subset (empty when the instance is unsat
                // outright) must come from this set.
                for (Lit l : outcomes[q].failed)
                    EXPECT_TRUE(std::find(sets[q].begin(), sets[q].end(),
                                          l) != sets[q].end());
            }
        }

        // The most recent Sat set's model stays readable.
        for (size_t q = sets.size(); q-- > 0;) {
            if (outcomes[q].result != Solver::Result::Sat)
                continue;
            for (Lit l : sets[q])
                EXPECT_EQ(batch_solver.model_value(l.var()), !l.sign());
            for (const auto &clause : clauses) {
                bool sat = false;
                for (Lit l : clause)
                    if (batch_solver.model_value(l.var()) != l.sign())
                        sat = true;
                EXPECT_TRUE(sat);
            }
            break;
        }
    }
}

TEST(SatSolver, SolveBatchSharedBudgetSkipsRemainder)
{
    // Hard gated pigeonhole rows: a whole-batch conflict budget small
    // enough to starve the first set must report the remaining sets
    // Unknown with zero attributed spend.
    Solver s;
    const int P = 9, H = 8;
    std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
    for (int p = 0; p < P; ++p)
        for (int h = 0; h < H; ++h)
            x[p][h] = s.new_var();
    Var gate = s.new_var();
    for (int p = 0; p < P; ++p) {
        std::vector<Lit> clause{neg(gate)};
        for (int h = 0; h < H; ++h)
            clause.push_back(pos(x[p][h]));
        s.add_clause(clause);
    }
    for (int h = 0; h < H; ++h)
        for (int p1 = 0; p1 < P; ++p1)
            for (int p2 = p1 + 1; p2 < P; ++p2)
                s.add_clause(neg(x[p1][h]), neg(x[p2][h]));

    SolveLimits limits;
    limits.conflict_budget = 40;
    std::vector<std::vector<Lit>> sets{{pos(gate)}, {pos(gate)},
                                       {pos(gate)}};
    auto outcomes = s.solve_batch(sets, limits);
    ASSERT_EQ(outcomes.size(), 3u);
    EXPECT_EQ(outcomes[0].result, Solver::Result::Unknown);
    for (size_t q = 1; q < outcomes.size(); ++q) {
        EXPECT_EQ(outcomes[q].result, Solver::Result::Unknown);
        EXPECT_EQ(outcomes[q].conflicts, 0);
        EXPECT_EQ(outcomes[q].seconds, 0.0);
    }
}

/**
 * Clause export/import cross-check: clauses learned by one solver and
 * imported into a second solver over the same variable numbering must
 * not change any verdict — random assumption queries on the importing
 * solver still match an untouched reference solver.
 */
TEST(SatSolver, ClauseExportImportPreservesVerdicts)
{
    Rng rng(4242);
    for (int round = 0; round < 4; ++round) {
        std::vector<std::vector<Lit>> clauses;
        Solver exporter;
        clauses = random_cnf(rng, exporter, 40, 170);
        exporter.set_export_limits(/*max_size=*/8, /*max_lbd=*/8);

        // Work the exporter so it learns (and exports) clauses.
        std::vector<std::vector<Lit>> sets;
        for (int q = 0; q < 12; ++q) {
            std::vector<Lit> set;
            for (int k = 0; k < 4; ++k)
                set.push_back(Lit(Var(rng.below(40)), rng.chance(0.5)));
            sets.push_back(set);
        }
        exporter.solve_batch(sets);
        auto exported = exporter.take_exported();
        // Drained: a second take returns nothing new.
        EXPECT_TRUE(exporter.take_exported().empty());

        Solver importer;
        for (int i = 0; i < 40; ++i)
            importer.new_var();
        for (const auto &clause : clauses)
            importer.add_clause(clause);
        for (auto &clause : exported)
            importer.import_clause(clause);
        EXPECT_LE(importer.num_imported_clauses(), exported.size());

        for (int q = 0; q < 8; ++q) {
            std::vector<Lit> set;
            for (int k = 0; k < 3; ++k)
                set.push_back(Lit(Var(rng.below(40)), rng.chance(0.5)));

            Solver ref;
            for (int i = 0; i < 40; ++i)
                ref.new_var();
            for (const auto &clause : clauses)
                ref.add_clause(clause);
            EXPECT_EQ(importer.solve(set), ref.solve(set))
                << "round " << round << " query " << q;
        }
    }
}

TEST(SatSolver, ImportDetectsRootUnsat)
{
    Solver s;
    Var a = s.new_var();
    s.add_clause(pos(a));
    // Importing the negation contradicts the instance at root level.
    EXPECT_FALSE(s.import_clause({neg(a)}));
}

TEST(SatSolver, AdderEquivalenceUnsat)
{
    // Miter of two structurally different 1-bit full adders: proving
    // them equivalent is a compact end-to-end UNSAT exercise.
    Solver s;
    Var a = s.new_var(), b = s.new_var(), c = s.new_var();

    auto mk_xor = [&](Var x, Var y) {
        Var o = s.new_var();
        s.add_clause(neg(o), pos(x), pos(y));
        s.add_clause(neg(o), neg(x), neg(y));
        s.add_clause(pos(o), pos(x), neg(y));
        s.add_clause(pos(o), neg(x), pos(y));
        return o;
    };
    // Version 1: sum = (a^b)^c.
    Var s1 = mk_xor(mk_xor(a, b), c);
    // Version 2: sum = a^(b^c).
    Var s2 = mk_xor(a, mk_xor(b, c));
    // Miter: s1 != s2 must be unsatisfiable.
    Var diff = mk_xor(s1, s2);
    s.add_clause(pos(diff));
    EXPECT_EQ(s.solve(), Solver::Result::Unsat);
}

} // namespace
} // namespace vega::sat
