/**
 * @file
 * Mission-mode fleet simulator tests: config validation through
 * vega::Expected (the negative paths a fleet service must reject
 * without crashing), deterministic population simulation on a
 * hand-built fault matrix, and one gate-level integration pass on the
 * real ALU.
 */
#include "fleet/fleet_sim.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "campaign/engine.h"
#include "cpu/alu_ops.h"
#include "fleet/config.h"
#include "fleet/fault_matrix.h"
#include "rtl/alu32.h"
#include "vega/workflow.h"

namespace vega::fleet {
namespace {

// ---------------------------------------------------------------------
// Config validation (vega::Expected error paths).

FleetConfig
small_config()
{
    FleetConfig cfg;
    cfg.seed = 7;
    cfg.num_devices = 400;
    cfg.epochs = 6;
    cfg.slots_per_epoch = 16;
    return cfg;
}

TEST(FleetConfig, DefaultsValidateAndFillCatalogs)
{
    auto v = validate_config(FleetConfig{});
    ASSERT_TRUE(v.ok()) << v.error().to_string();
    EXPECT_FALSE(v->corners.empty());
    EXPECT_FALSE(v->mixes.empty());
    // The catalog must include the adversarial wearout-attack mix.
    bool has_attack = false;
    for (const auto &m : v->mixes)
        has_attack |= m.adversarial;
    EXPECT_TRUE(has_attack);
}

TEST(FleetConfig, RejectsBadDeviceCounts)
{
    FleetConfig cfg = small_config();
    cfg.num_devices = 0;
    auto v = validate_config(cfg);
    ASSERT_FALSE(v.ok());
    EXPECT_EQ(v.error().code, ErrorCode::InvalidArgument);

    cfg = small_config();
    cfg.epochs = 0;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.slots_per_epoch = 0;
    EXPECT_FALSE(validate_config(cfg).ok());
}

TEST(FleetConfig, RejectsBadProbabilities)
{
    FleetConfig cfg = small_config();
    cfg.overhead_budget = 0.0;
    EXPECT_FALSE(validate_config(cfg).ok());
    cfg.overhead_budget = 1.5;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.adversarial_fraction = -0.1;
    EXPECT_FALSE(validate_config(cfg).ok());
    cfg.adversarial_fraction = 1.1;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.base_hazard = 2.0;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.mixes = mix_catalog();
    cfg.mixes[0].corruption_rate = 1.5;
    EXPECT_FALSE(validate_config(cfg).ok());
}

TEST(FleetConfig, RejectsBadAgeRangeAndWeights)
{
    FleetConfig cfg = small_config();
    cfg.min_age_years = 5.0;
    cfg.max_age_years = 2.0;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.corners = corner_catalog();
    for (auto &c : cfg.corners)
        c.weight = 0.0; // nothing to sample from
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.corners = corner_catalog();
    cfg.corners[0].stress = -1.0;
    EXPECT_FALSE(validate_config(cfg).ok());

    cfg = small_config();
    cfg.mixes = mix_catalog();
    cfg.mixes[0].duty = 0.0;
    EXPECT_FALSE(validate_config(cfg).ok());
}

TEST(FleetConfig, RejectsAdversarialMixWithoutTarget)
{
    FleetConfig cfg = small_config();
    cfg.mixes = mix_catalog();
    for (auto &m : cfg.mixes)
        if (m.adversarial)
            m.target_pair = -1;
    cfg.adversarial_fraction = 0.1;
    EXPECT_FALSE(validate_config(cfg).ok());

    // With no adversarial devices requested the same mix is fine.
    cfg.adversarial_fraction = 0.0;
    EXPECT_TRUE(validate_config(cfg).ok());
}

TEST(FleetConfig, CornerLookupAndListParsing)
{
    auto typ = find_corner("typ");
    ASSERT_TRUE(typ.ok());
    EXPECT_EQ(typ->name, "typ");

    auto bad = find_corner("arctic");
    ASSERT_FALSE(bad.ok());
    EXPECT_EQ(bad.error().code, ErrorCode::InvalidArgument);

    auto list = parse_corner_list("typ,hot,burnin");
    ASSERT_TRUE(list.ok()) << list.error().to_string();
    ASSERT_EQ(list->size(), 3u);
    EXPECT_EQ((*list)[1].name, "hot");

    EXPECT_FALSE(parse_corner_list("").ok());
    EXPECT_FALSE(parse_corner_list("typ,,hot").ok());
    EXPECT_FALSE(parse_corner_list("typ,venus").ok());
}

// ---------------------------------------------------------------------
// Fleet simulation on a hand-built matrix (no gate-level cost).

FaultMatrix
toy_matrix()
{
    FaultMatrix m;
    m.module = ModuleKind::Alu32;
    m.num_pairs = 4;
    m.num_tests = 6;
    for (size_t t = 0; t < m.num_tests; ++t) {
        m.test_cycles.push_back(3000);
        m.suite_cycles += m.test_cycles.back();
    }
    m.faults.resize(m.num_pairs * 2);
    for (size_t i = 0; i < m.faults.size(); ++i) {
        FaultClass &f = m.faults[i];
        f.pair_index = i / 2;
        f.constant = (i & 1) ? lift::FaultConstant::One
                             : lift::FaultConstant::Zero;
        f.per_test.assign(m.num_tests, runtime::Detection::None);
        if (i % 4 != 3) { // 3 of 4 classes detectable
            f.per_test[i % m.num_tests] =
                (i % 2) ? runtime::Detection::Mismatch
                        : runtime::Detection::Stall;
            f.detecting_tests = 1;
        }
        f.corrupts = (i % 3) != 2;
    }
    return m;
}

TEST(FleetSim, SameSeedIsByteIdenticalAtAnyThreadCount)
{
    FaultMatrix m = toy_matrix();
    FleetConfig cfg = small_config();

    cfg.threads = 1;
    auto r1 = run_fleet(cfg, m);
    ASSERT_TRUE(r1.ok()) << r1.error().to_string();
    auto r1b = run_fleet(cfg, m);
    ASSERT_TRUE(r1b.ok());
    cfg.threads = 4;
    auto r4 = run_fleet(cfg, m);
    ASSERT_TRUE(r4.ok());

    // Deterministic part only: timing differs run to run by design.
    EXPECT_EQ(r1->to_json(false), r1b->to_json(false));
    EXPECT_EQ(r1->to_json(false), r4->to_json(false));

    // A different seed must actually change the population.
    cfg.seed = 8;
    auto other = run_fleet(cfg, m);
    ASSERT_TRUE(other.ok());
    EXPECT_NE(r1->to_json(false), other->to_json(false));
}

TEST(FleetSim, PerDeviceStreamsAreIndependentOfFleetSize)
{
    FaultMatrix m = toy_matrix();
    FleetConfig cfg = small_config();
    auto validated = validate_config(cfg);
    ASSERT_TRUE(validated.ok());
    // Device 17 behaves identically whether simulated alone or as part
    // of the population — outcomes are keyed by id, not by order.
    DeviceOutcome solo = simulate_device(*validated, m, 17);
    DeviceOutcome in_fleet = simulate_device(*validated, m, 17);
    EXPECT_EQ(solo.corner, in_fleet.corner);
    EXPECT_EQ(solo.mix, in_fleet.mix);
    EXPECT_EQ(solo.fault, in_fleet.fault);
    EXPECT_EQ(solo.detected, in_fleet.detected);
    EXPECT_EQ(solo.slots, in_fleet.slots);
    EXPECT_EQ(solo.test_cycles, in_fleet.test_cycles);
}

TEST(FleetSim, AccountingAddsUp)
{
    FaultMatrix m = toy_matrix();
    FleetConfig cfg = small_config();
    cfg.threads = 2;
    auto r = run_fleet(cfg, m);
    ASSERT_TRUE(r.ok());

    // Every device ran at least one epoch and at most all of them.
    EXPECT_GE(r->device_epochs, r->num_devices);
    EXPECT_LE(r->device_epochs,
              uint64_t(r->num_devices) * cfg.epochs);
    EXPECT_EQ(r->overhead.count, r->num_devices);
    // Detected + missed cannot exceed the faulty population.
    EXPECT_LE(r->detected_devices, r->faulty_devices);
    EXPECT_LE(r->detectable_faulty_devices, r->faulty_devices);
    EXPECT_EQ(r->latency_slots.count, r->detected_devices);

    // Percentiles are ordered.
    EXPECT_LE(r->latency_slots.p50, r->latency_slots.p95);
    EXPECT_LE(r->latency_slots.p95, r->latency_slots.p99);
    EXPECT_LE(r->overhead.p50, r->overhead.p99);

    // Group rows partition the population.
    uint64_t corner_devices = 0;
    for (const auto &g : r->per_corner)
        corner_devices += g.devices;
    EXPECT_EQ(corner_devices, r->num_devices);
    uint64_t age_devices = 0;
    for (const auto &g : r->per_age)
        age_devices += g.devices;
    EXPECT_EQ(age_devices, r->num_devices);
}

TEST(FleetSim, BudgetGatesDispatchProbabilistically)
{
    FaultMatrix m = toy_matrix();
    FleetConfig cfg = small_config();
    cfg.num_devices = 600;
    cfg.epochs = 4;
    // Make the full-rate suite far too expensive: 16 slots x 3000
    // cycles against a 100k-cycle epoch is ~0.48 overhead, so §3.4.2
    // gating must throttle dispatch to land near the 1% budget.
    cfg.epoch_cycles = 100000;
    cfg.overhead_budget = 0.01;
    auto r = run_fleet(cfg, m);
    ASSERT_TRUE(r.ok());
    EXPECT_LT(r->mean_overhead(), 3.0 * cfg.overhead_budget);
    EXPECT_GT(r->tests_dispatched, 0u);
    // Sanity: without gating the suite would eat ~half the cycles.
    EXPECT_LT(double(r->test_cycles),
              0.1 * double(r->app_cycles));
}

TEST(FleetSim, AdversarialScenarioReportsPerDeviceOutcomes)
{
    FaultMatrix m = toy_matrix();
    FleetConfig cfg = small_config();
    cfg.num_devices = 3000;
    cfg.adversarial_fraction = 0.25; // make the slice big and faulty
    cfg.base_hazard = 0.05;
    auto r = run_fleet(cfg, m);
    ASSERT_TRUE(r.ok());

    EXPECT_GT(r->adversarial_devices, 0u);
    EXPECT_GT(r->adversarial_faulty, 0u);
    EXPECT_EQ(r->adversarial_outcomes.size(),
              std::min<uint64_t>(r->adversarial_outcomes_total,
                                 cfg.adversarial_report_cap));

    // The attack concentrates every onset on the targeted pair class.
    int attack_mix = -1;
    auto validated = validate_config(cfg);
    ASSERT_TRUE(validated.ok());
    for (size_t i = 0; i < validated->mixes.size(); ++i)
        if (validated->mixes[i].adversarial)
            attack_mix = int(i);
    ASSERT_GE(attack_mix, 0);
    size_t target =
        size_t(validated->mixes[attack_mix].target_pair) % m.num_pairs;
    uint64_t classified = 0;
    for (const auto &a : r->adversarial_outcomes) {
        EXPECT_EQ(a.pair_index, target);
        // Every reported device carries an explicit mission outcome.
        bool known =
            !std::strcmp(a.outcome, "detected-before-corruption") ||
            !std::strcmp(a.outcome, "silently-corrupted") ||
            !std::strcmp(a.outcome, "latent");
        EXPECT_TRUE(known) << a.outcome;
        if (a.detected && a.corruptions == 0) {
            EXPECT_STREQ(a.outcome, "detected-before-corruption");
        }
        ++classified;
    }
    EXPECT_EQ(classified, r->adversarial_outcomes.size());
    // Mission outcomes are disjoint slices of the faulty population.
    EXPECT_LE(r->adversarial_detected_before_corruption +
                  r->adversarial_silently_corrupted,
              r->adversarial_faulty);
    EXPECT_LE(r->adversarial_detected, r->adversarial_faulty);
}

TEST(FleetSim, RejectsEmptyOrMalformedMatrix)
{
    FleetConfig cfg = small_config();
    FaultMatrix empty;
    EXPECT_FALSE(run_fleet(cfg, empty).ok());

    FaultMatrix bad = toy_matrix();
    bad.faults[0].per_test.pop_back();
    auto r = run_fleet(cfg, bad);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::InvalidArgument);
}

TEST(FleetMatrix, RejectsEmptyInputs)
{
    HwModule module = rtl::make_alu32();
    std::vector<sta::EndpointPair> pairs;
    std::vector<runtime::TestCase> suite;
    std::vector<lift::FaultConstant> constants = {
        lift::FaultConstant::Zero};
    auto r = build_fault_matrix(module, pairs, suite, constants, 1, 1);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::InvalidArgument);
}

// ---------------------------------------------------------------------
// Gate-level integration: one small real-ALU matrix feeding a fleet.

runtime::TestCase
alu_test(const char *name, AluOp op, uint32_t a, uint32_t b, int pair)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

TEST(FleetMatrix, CharacterizesRealAluFaultsDeterministically)
{
    HwModule module = rtl::make_alu32();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    AgingAnalysisConfig cfg;
    cfg.utilization = 0.99;
    cfg.max_trace = 1500;
    auto aged = run_aging_analysis(module, lib, minver_trace(), cfg);
    auto pairs = aged.liftable_pairs();
    ASSERT_FALSE(pairs.empty());
    if (pairs.size() > 2)
        pairs.resize(2);

    std::vector<runtime::TestCase> suite = {
        alu_test("c0", AluOp::Add, 0xffffffff, 1, 0),
        alu_test("c1", AluOp::Xor, 0xaaaaaaaa, 0x55555555, 1),
    };
    std::vector<lift::FaultConstant> constants = {
        lift::FaultConstant::Zero, lift::FaultConstant::One};

    auto m1 = build_fault_matrix(module, pairs, suite, constants, 1, 5);
    ASSERT_TRUE(m1.ok()) << m1.error().to_string();
    auto m4 = build_fault_matrix(module, pairs, suite, constants, 4, 5);
    ASSERT_TRUE(m4.ok());

    EXPECT_EQ(m1->faults.size(), pairs.size() * constants.size());
    EXPECT_EQ(m1->num_tests, suite.size());
    ASSERT_EQ(m1->faults.size(), m4->faults.size());
    for (size_t i = 0; i < m1->faults.size(); ++i) {
        EXPECT_EQ(m1->faults[i].corrupts, m4->faults[i].corrupts) << i;
        EXPECT_EQ(m1->faults[i].per_test, m4->faults[i].per_test) << i;
    }

    // The matrix feeds a small fleet end to end.
    FleetConfig fleet_cfg = small_config();
    fleet_cfg.num_devices = 200;
    fleet_cfg.epochs = 3;
    auto r = run_fleet(fleet_cfg, *m1);
    ASSERT_TRUE(r.ok()) << r.error().to_string();
    EXPECT_EQ(r->num_pairs, pairs.size());
    EXPECT_GE(r->device_epochs, r->num_devices);
}

} // namespace
} // namespace vega::fleet
