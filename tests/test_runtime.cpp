#include "runtime/aging_library.h"

#include <gtest/gtest.h>

#include <set>

#include "cpu/alu_ops.h"
#include "runtime/c_api.h"

namespace vega::runtime {
namespace {

TestCase
simple_alu_test(const char *name, AluOp op, uint32_t a, uint32_t b)
{
    TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    finalize_test_case(tc);
    return tc;
}

std::vector<TestCase>
small_suite()
{
    return {simple_alu_test("t0", AluOp::Add, 1, 2),
            simple_alu_test("t1", AluOp::Sub, 9, 4),
            simple_alu_test("t2", AluOp::Xor, 0xff, 0x0f),
            simple_alu_test("t3", AluOp::And, 0xff, 0x3c)};
}

TEST(Scheduler, SequentialRoundRobin)
{
    Scheduler s(3, SchedulePolicy::Sequential);
    std::vector<size_t> seen;
    for (int i = 0; i < 7; ++i)
        seen.push_back(*s.next());
    EXPECT_EQ(seen, (std::vector<size_t>{0, 1, 2, 0, 1, 2, 0}));
    EXPECT_EQ(s.dispatched(), 7u);
}

TEST(Scheduler, RandomCoversEveryTestEachEpoch)
{
    Scheduler s(5, SchedulePolicy::Random, 1.0, 42);
    for (int epoch = 0; epoch < 4; ++epoch) {
        std::set<size_t> seen;
        for (int i = 0; i < 5; ++i)
            seen.insert(*s.next());
        EXPECT_EQ(seen.size(), 5u) << "epoch " << epoch;
    }
}

TEST(Scheduler, ProbabilisticHitsRoughlyTargetRate)
{
    Scheduler s(4, SchedulePolicy::Probabilistic, 0.25, 7);
    int fired = 0;
    const int slots = 4000;
    for (int i = 0; i < slots; ++i)
        if (s.next())
            ++fired;
    EXPECT_NEAR(double(fired) / slots, 0.25, 0.03);
    EXPECT_EQ(s.slots(), uint64_t(slots));
}

TEST(Scheduler, ProbabilityOneNeverSkips)
{
    Scheduler s(2, SchedulePolicy::Probabilistic, 1.0, 3);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(s.next().has_value());
}

TEST(Scheduler, ProbabilityZeroDispatchesNothing)
{
    Scheduler s(3, SchedulePolicy::Probabilistic, 0.0, 5);
    for (int i = 0; i < 500; ++i)
        EXPECT_FALSE(s.next().has_value());
    EXPECT_EQ(s.slots(), 500u);
    EXPECT_EQ(s.dispatched(), 0u);
}

TEST(Scheduler, ProbabilityOneMatchesSequentialCounts)
{
    Scheduler prob(4, SchedulePolicy::Probabilistic, 1.0, 9);
    Scheduler seq(4, SchedulePolicy::Sequential, 1.0, 9);
    for (int i = 0; i < 40; ++i) {
        auto a = prob.next();
        auto b = seq.next();
        ASSERT_TRUE(a.has_value());
        ASSERT_TRUE(b.has_value());
        EXPECT_EQ(*a, *b);
    }
    EXPECT_EQ(prob.dispatched(), seq.dispatched());
    EXPECT_EQ(prob.slots(), seq.slots());
}

TEST(Scheduler, OutOfRangeProbabilityIsClamped)
{
    Scheduler hi(2, SchedulePolicy::Probabilistic, 7.5, 1);
    for (int i = 0; i < 20; ++i)
        EXPECT_TRUE(hi.next().has_value());
    Scheduler lo(2, SchedulePolicy::Probabilistic, -3.0, 1);
    for (int i = 0; i < 20; ++i)
        EXPECT_FALSE(lo.next().has_value());
    EXPECT_EQ(lo.dispatched(), 0u);
}

TEST(AgingLibrary, RunAllPassesOnGoldenEngine)
{
    AgingLibrary lib(small_suite(), {});
    GoldenEngine engine;
    EXPECT_EQ(lib.run_all(engine), Detection::None);
    EXPECT_EQ(lib.runs(), 4u);
    EXPECT_EQ(lib.detections(), 0u);
    EXPECT_GT(lib.suite_cycles(), 0u);
}

TEST(AgingLibrary, RunNextFollowsScheduler)
{
    AgingLibraryOptions opt;
    opt.policy = SchedulePolicy::Sequential;
    AgingLibrary lib(small_suite(), opt);
    GoldenEngine engine;
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(lib.run_next(engine), Detection::None);
    EXPECT_EQ(lib.runs(), 8u);
}

/** Engine that reports a fault for one specific test. */
class FaultyEngine : public Engine
{
  public:
    explicit FaultyEngine(std::string victim) : victim_(std::move(victim)) {}
    Detection
    run(const TestCase &tc) override
    {
        return tc.name == victim_ ? Detection::Mismatch : Detection::None;
    }

  private:
    std::string victim_;
};

TEST(AgingLibrary, DetectionsAreCounted)
{
    AgingLibrary lib(small_suite(), {});
    FaultyEngine engine("t2");
    EXPECT_EQ(lib.run_all(engine), Detection::Mismatch);
    EXPECT_EQ(lib.detections(), 1u);
}

TEST(AgingLibrary, ExceptionPolicyThrows)
{
    AgingLibraryOptions opt;
    opt.throw_on_detect = true;
    AgingLibrary lib(small_suite(), opt);
    FaultyEngine engine("t1");
    try {
        lib.run_all(engine);
        FAIL() << "expected HardwareFaultError";
    } catch (const HardwareFaultError &e) {
        EXPECT_EQ(e.test_name(), "t1");
        EXPECT_EQ(e.detection(), Detection::Mismatch);
    }
}

TEST(AgingLibrary, GeneratedCSourceContainsTests)
{
    AgingLibrary lib(small_suite(), {});
    std::string src = lib.generate_c_source();
    EXPECT_NE(src.find("static int vega_test_0(void)"), std::string::npos);
    EXPECT_NE(src.find("static int vega_test_3(void)"), std::string::npos);
    EXPECT_NE(src.find("__asm__ volatile"), std::string::npos);
    EXPECT_NE(src.find("int vega_run_all(void)"), std::string::npos);
    // The blocks embed real instructions.
    EXPECT_NE(src.find("xor"), std::string::npos);
}

TEST(CApi, DemoLibraryLifecycle)
{
    vega_library *lib = vega_library_create_demo(VEGA_SEQUENTIAL, 1.0, 1);
    ASSERT_NE(lib, nullptr);
    EXPECT_EQ(vega_library_num_tests(lib), 4u);
    EXPECT_GT(vega_library_suite_cycles(lib), 0u);
    EXPECT_EQ(vega_library_run_all(lib), VEGA_OK);
    for (int i = 0; i < 6; ++i)
        EXPECT_EQ(vega_library_run_next(lib), VEGA_OK);
    vega_library_destroy(lib);
}

TEST(CApi, RejectsBadArguments)
{
    EXPECT_EQ(vega_library_create_demo(99, 1.0, 1), nullptr);
    EXPECT_EQ(vega_library_create_demo(VEGA_RANDOM, 0.0, 1), nullptr);
    EXPECT_EQ(vega_library_num_tests(nullptr), 0u);
    EXPECT_EQ(vega_library_run_all(nullptr), VEGA_MISMATCH);
    vega_library_destroy(nullptr); // must be safe
}

} // namespace
} // namespace vega::runtime
