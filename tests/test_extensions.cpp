#include <gtest/gtest.h>

#include "cpu/alu_ops.h"
#include "cpu/softfp.h"
#include "formal/equiv.h"
#include "lift/error_lifting.h"
#include "lift/fuzz_lifting.h"
#include "netlist/builder.h"
#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "runtime/suite_io.h"
#include "sim/vcd_writer.h"

namespace vega {
namespace {

// ---- VCD export -----------------------------------------------------------

TEST(VcdWriter, EmitsWellFormedDump)
{
    Waveform w;
    w.record("a", BitVec(2, 1));
    w.record("hit", BitVec(1, 0));
    w.record("a", BitVec(2, 3));
    w.record("hit", BitVec(1, 1));

    std::string vcd = to_vcd(w, "testmod");
    EXPECT_NE(vcd.find("$timescale 1ns $end"), std::string::npos);
    EXPECT_NE(vcd.find("$scope module testmod $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 2 ! a [1:0] $end"), std::string::npos);
    EXPECT_NE(vcd.find("$var wire 1 \" hit $end"), std::string::npos);
    EXPECT_NE(vcd.find("b01 !"), std::string::npos); // a = 1 at t0
    EXPECT_NE(vcd.find("b11 !"), std::string::npos); // a = 3 at t1
    EXPECT_NE(vcd.find("$dumpvars"), std::string::npos);
}

TEST(VcdWriter, OnlyChangesAreDumpedAfterTimeZero)
{
    Waveform w;
    for (int t = 0; t < 4; ++t) {
        w.record("x", BitVec(4, 5)); // constant
        w.record("y", BitVec(1, t % 2));
    }
    std::string vcd = to_vcd(w);
    // x dumps once (t0); y changes every cycle.
    size_t count_x = 0, pos = 0;
    while ((pos = vcd.find("b0101", pos)) != std::string::npos) {
        ++count_x;
        pos += 4;
    }
    EXPECT_EQ(count_x, 1u);
}

TEST(VcdWriter, CaptureWaveformRecordsSimulation)
{
    HwModule m = rtl::make_adder2();
    Simulator sim(m.netlist);
    Waveform w = capture_waveform(sim, 4, [](Simulator &s, uint64_t t) {
        s.set_bus("a", BitVec(2, t % 4));
        s.set_bus("b", BitVec(2, 1));
    });
    EXPECT_EQ(w.num_cycles(), 4u);
    // Pipeline: o at cycle 2 shows a=0,b=1 -> 1.
    EXPECT_EQ(w.at("o", 2).to_u64(), 1u);
    EXPECT_FALSE(to_vcd(w).empty());
}

// ---- Suite serialization ---------------------------------------------------

TEST(SuiteIo, RoundTripPreservesEverything)
{
    runtime::TestCase tc;
    tc.module = ModuleKind::Alu32;
    tc.name = "roundtrip";
    tc.config = "C=1,rise";
    tc.pair_index = 7;
    tc.stimulus = {{123u, 456u, uint32_t(AluOp::Add), true, false},
                   {7u, 9u, uint32_t(AluOp::Xor), true, false}};
    tc.checks = {{0, 579u, false}, {1, 14u, false}};
    runtime::finalize_test_case(tc);

    std::string text = runtime::serialize_suite({tc});
    auto back = runtime::deserialize_suite(text);
    ASSERT_EQ(back.size(), 1u);
    EXPECT_EQ(back[0].name, "roundtrip");
    EXPECT_EQ(back[0].config, "C=1,rise");
    EXPECT_EQ(back[0].pair_index, 7);
    EXPECT_EQ(back[0].stimulus.size(), 2u);
    EXPECT_EQ(back[0].stimulus[1].b, 9u);
    EXPECT_EQ(back[0].checks.size(), 2u);
    // Programs are recompiled and re-verified on load.
    EXPECT_EQ(back[0].cycle_cost, tc.cycle_cost);
    EXPECT_EQ(back[0].program.size(), tc.program.size());
}

TEST(SuiteIo, FpuFlagsRoundTrip)
{
    runtime::TestCase tc;
    tc.module = ModuleKind::Fpu32;
    tc.name = "fpu";
    tc.stimulus = {{0x3f800000u, 0x20000000u, uint32_t(fp::FpuOp::Add),
                    true, false}};
    tc.checks = {{0, 0x3f800000u, false}};
    tc.check_final_flags = true;
    tc.expected_flags = fp::kNX;
    runtime::finalize_test_case(tc);

    auto back = runtime::deserialize_suite(runtime::serialize_suite({tc}));
    ASSERT_EQ(back.size(), 1u);
    EXPECT_TRUE(back[0].check_final_flags);
    EXPECT_EQ(back[0].expected_flags, fp::kNX);
}

TEST(SuiteIo, MalformedInputThrowsWithLineNumber)
{
    EXPECT_THROW(runtime::deserialize_suite("step 1 2 3 4 5\n"),
                 std::runtime_error);
    EXPECT_THROW(runtime::deserialize_suite(
                     "testcase alu32 0 a b\n  bogus\nend\n"),
                 std::runtime_error);
    EXPECT_THROW(runtime::deserialize_suite("testcase mars 0 a b\nend\n"),
                 std::runtime_error);
    EXPECT_THROW(
        runtime::deserialize_suite("testcase alu32 0 a b\n  step 1\n"),
        std::runtime_error);
}

TEST(SuiteIo, CommentsAndBlankLinesIgnored)
{
    auto suite = runtime::deserialize_suite("# header\n\n# nothing\n");
    EXPECT_TRUE(suite.empty());
}

TEST(SuiteIo, GarbageDirectiveIsParseErrorWithLine)
{
    auto r = runtime::try_deserialize_suite(
        "# ok\ntestcase alu32 0 t -\n  zorp 1 2\nend\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().context.find("line 3"), std::string::npos)
        << r.error().context;
    EXPECT_NE(r.error().context.find("zorp"), std::string::npos);
}

TEST(SuiteIo, TruncatedTestcaseIsParseError)
{
    // File ends mid-testcase (the shipping side crashed, or the file
    // was cut during transfer): structured error, not an exception.
    auto r = runtime::try_deserialize_suite(
        "testcase alu32 0 cut -\n  step 1 2 0 1 0\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ParseError);
    EXPECT_NE(r.error().context.find("unterminated"), std::string::npos)
        << r.error().context;
    EXPECT_NE(r.error().context.find("cut"), std::string::npos);
}

TEST(SuiteIo, FieldSwappedStepFailsGoldenVerification)
{
    // A structurally well-formed testcase whose expected value was
    // corrupted (fields transposed) must be caught by the golden-model
    // re-verification on load, as a ValidationError naming the test.
    auto r = runtime::try_deserialize_suite(
        "testcase alu32 0 swapped -\n"
        "  step 3 4 0 1 0\n"
        "  check 0 99 0\n"
        "end\n");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.error().code, ErrorCode::ValidationError);
    EXPECT_NE(r.error().context.find("golden model"), std::string::npos)
        << r.error().context;
    EXPECT_NE(r.error().context.find("swapped"), std::string::npos);
}

TEST(SuiteIo, OutOfRangeFieldsAreValidationErrors)
{
    // Opcode beyond the module's ISA.
    auto op = runtime::try_deserialize_suite(
        "testcase alu32 0 t -\n  step 1 2 99 1 0\n  check 0 3 0\nend\n");
    ASSERT_FALSE(op.ok());
    EXPECT_EQ(op.error().code, ErrorCode::ValidationError);

    // Check referencing a step that does not exist.
    auto step = runtime::try_deserialize_suite(
        "testcase alu32 0 t -\n  step 1 2 0 1 0\n  check 7 3 0\nend\n");
    ASSERT_FALSE(step.ok());
    EXPECT_EQ(step.error().code, ErrorCode::ValidationError);
}

// ---- Equivalence checking --------------------------------------------------

TEST(Equiv, IdenticalModulesAreEquivalent)
{
    HwModule a = rtl::make_adder2();
    HwModule b = rtl::make_adder2();
    formal::BmcOptions opts;
    opts.max_frames = 5;
    formal::EquivResult r =
        formal::check_equivalence(a.netlist, b.netlist, opts);
    EXPECT_EQ(r.status, formal::EquivStatus::Equivalent);
}

TEST(Equiv, StructurallyDifferentButFunctionallyEqual)
{
    // Build a second adder with a different sum-bit structure:
    // o0 = (a0 | b0) & !(a0 & b0) instead of a0 ^ b0.
    HwModule a = rtl::make_adder2();

    HwModule b;
    Netlist &nl = b.netlist;
    nl.set_name("adder2_alt");
    Builder bb(nl);
    auto ain = nl.add_input_bus("a", 2);
    auto bin = nl.add_input_bus("b", 2);
    Bus aq, bq;
    for (int i = 0; i < 2; ++i) {
        aq.push_back(bb.dff(ain[size_t(i)]));
        bq.push_back(bb.dff(bin[size_t(i)]));
    }
    NetId s0 = bb.and_(bb.or_(aq[0], bq[0]),
                       bb.not_(bb.and_(aq[0], bq[0])));
    NetId carry = bb.and_(aq[0], bq[0]);
    NetId s1 = bb.xor_(bb.xor_(aq[1], bq[1]), carry);
    NetId o0 = bb.dff(s0);
    NetId o1 = bb.dff(s1);
    nl.add_output_bus("o", {o0, o1});

    formal::BmcOptions opts;
    opts.max_frames = 5;
    formal::EquivResult r =
        formal::check_equivalence(a.netlist, nl, opts);
    EXPECT_EQ(r.status, formal::EquivStatus::Equivalent);
}

TEST(Equiv, FailingNetlistIsProvablyDifferent)
{
    HwModule m = rtl::make_adder2();
    // Inject a fault on the paper's $4 -> $10 path.
    CellId launch = kInvalidId, capture = kInvalidId;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        if (m.netlist.cell(c).name == "$4")
            launch = c;
        if (m.netlist.cell(c).name == "$10")
            capture = c;
    }
    lift::FailureModelSpec spec;
    spec.launch = launch;
    spec.capture = capture;
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    lift::FailingNetlist failing =
        lift::build_failing_netlist(m.netlist, spec);

    formal::BmcOptions opts;
    opts.max_frames = 6;
    formal::EquivResult r =
        formal::check_equivalence(m.netlist, failing.netlist, opts);
    ASSERT_EQ(r.status, formal::EquivStatus::Different);
    EXPECT_GE(r.frames, 2);
    // The counterexample shows the diverging output.
    EXPECT_EQ(r.counterexample.at("miter_diff", r.frames - 1).to_u64(),
              1u);
    EXPECT_NE(r.counterexample.at("o@a", r.frames - 1).to_u64(),
              r.counterexample.at("o@b", r.frames - 1).to_u64());
}

TEST(Equiv, ShadowInstrumentationPreservesOriginalOutputs)
{
    // The shadow replica must never disturb the module's real outputs:
    // compare the instrumented netlist's original buses against the
    // pristine module.
    HwModule m = rtl::make_adder2();
    CellId launch = kInvalidId, capture = kInvalidId;
    for (CellId c = 0; c < m.netlist.num_cells(); ++c) {
        if (m.netlist.cell(c).name == "$4")
            launch = c;
        if (m.netlist.cell(c).name == "$10")
            capture = c;
    }
    lift::FailureModelSpec spec;
    spec.launch = launch;
    spec.capture = capture;
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    lift::ShadowInstrumentation shadow =
        lift::build_shadow_instrumentation(m.netlist, spec);

    // Trim the shadow netlist's extra output buses for the interface
    // check by wrapping: compare only the shared "o" bus via a custom
    // miter using splice_netlist.
    Netlist miter("shadow_preserves");
    std::vector<std::pair<NetId, NetId>> bind_a, bind_b;
    for (const auto &bus : m.netlist.input_bus_names()) {
        auto shared = miter.add_input_bus(bus, m.netlist.bus(bus).size());
        const auto &na = m.netlist.bus(bus);
        const auto &nb = shadow.netlist.bus(bus);
        for (size_t i = 0; i < shared.size(); ++i) {
            bind_a.emplace_back(na[i], shared[i]);
            bind_b.emplace_back(nb[i], shared[i]);
        }
    }
    auto map_a = formal::splice_netlist(miter, m.netlist, bind_a, "@a");
    auto map_b =
        formal::splice_netlist(miter, shadow.netlist, bind_b, "@b");
    Builder bld(miter, "m");
    std::vector<NetId> diffs;
    for (size_t i = 0; i < m.netlist.bus("o").size(); ++i)
        diffs.push_back(bld.xor_(map_a[m.netlist.bus("o")[i]],
                                 map_b[shadow.netlist.bus("o")[i]]));
    NetId diff = bld.or_n(diffs);
    miter.add_output_bus("diff", {diff});
    miter.validate();

    formal::BmcOptions opts;
    opts.max_frames = 5;
    formal::BmcResult r = formal::check_cover(miter, diff, opts);
    EXPECT_EQ(r.status, formal::BmcStatus::Unreachable);
}

// ---- Fuzzing-based lifting --------------------------------------------------

TEST(FuzzLifting, FindsObservableFaultOnAlu)
{
    HwModule alu = rtl::make_alu32();
    auto dffs = alu.netlist.dffs();
    lift::FailureModelSpec aspec;
    aspec.launch = dffs[0];
    aspec.capture = dffs.back();
    aspec.is_setup = true;
    aspec.constant = lift::FaultConstant::One;
    lift::ShadowInstrumentation ashadow =
        lift::build_shadow_instrumentation(alu.netlist, aspec);

    lift::FuzzConfig cfg;
    cfg.max_episodes = 2000;
    lift::FuzzResult r =
        lift::fuzz_cover(ashadow, ModuleKind::Alu32, cfg);
    ASSERT_TRUE(r.found);
    EXPECT_GT(r.trace.num_cycles(), 0u);
    // Mismatch holds in the final recorded cycle, as with BMC traces.
    EXPECT_EQ(r.trace.at("mismatch", r.trace.num_cycles() - 1).to_u64(),
              1u);
}

TEST(FuzzLifting, FuzzTraceConvertsToWorkingTest)
{
    HwModule alu = rtl::make_alu32();
    auto dffs = alu.netlist.dffs();
    lift::FailureModelSpec spec;
    spec.launch = dffs[1];
    spec.capture = dffs.back();
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::One;
    lift::ShadowInstrumentation shadow =
        lift::build_shadow_instrumentation(alu.netlist, spec);

    lift::FuzzConfig cfg;
    cfg.max_episodes = 2000;
    lift::FuzzResult r = lift::fuzz_cover(shadow, ModuleKind::Alu32, cfg);
    ASSERT_TRUE(r.found);

    lift::ConversionResult conv =
        lift::build_test_case(ModuleKind::Alu32, r.trace, 0, "fuzz");
    ASSERT_TRUE(conv.ok) << conv.reason;

    lift::FailingNetlist failing =
        lift::build_failing_netlist(alu.netlist, spec);
    EXPECT_NE(lift::replay_on_module(conv.test, failing.netlist),
              runtime::Detection::None);
}

TEST(FuzzLifting, CannotProveUnreachability)
{
    // A masked fault (C equals the only reachable value): fuzzing just
    // exhausts its budget, while BMC proves unreachability — the §3.3
    // argument for formal methods.
    Netlist nl("masked");
    Builder b(nl);
    auto a = nl.add_input_bus("a", 32);
    auto bb2 = nl.add_input_bus("b", 32);
    auto op = nl.add_input_bus("op", 4);
    (void)bb2;
    (void)op;
    NetId aq = b.dff(a[0]);
    NetId z = b.and_(aq, b.not_(aq));
    NetId o = b.dff(z);
    Bus r_bus{o};
    for (int i = 1; i < 32; ++i)
        r_bus.push_back(b.const0());
    nl.add_output_bus("r", r_bus);

    lift::FailureModelSpec spec;
    spec.launch = nl.net(aq).driver;
    spec.capture = nl.net(o).driver;
    spec.is_setup = true;
    spec.constant = lift::FaultConstant::Zero;
    lift::ShadowInstrumentation shadow =
        lift::build_shadow_instrumentation(nl, spec);

    lift::FuzzConfig cfg;
    cfg.max_episodes = 100;
    lift::FuzzResult fz = lift::fuzz_cover(shadow, ModuleKind::Alu32, cfg);
    EXPECT_FALSE(fz.found);
    EXPECT_EQ(fz.episodes, 100u); // budget exhausted, no verdict

    formal::BmcOptions opts;
    opts.max_frames = 4;
    opts.state_equalities = shadow.state_pairs;
    formal::BmcResult bmc =
        formal::check_cover(shadow.netlist, shadow.mismatch, opts);
    EXPECT_EQ(bmc.status, formal::BmcStatus::Unreachable);
}

} // namespace
} // namespace vega
