/**
 * @file
 * Journal corruption harness for the shard-integrity tests: surgical
 * bit flips, truncations, duplicated / transplanted / deleted records,
 * and trailer forgery applied to v2 journal files on disk.
 *
 * The forge_trailer helper is the "smart adversary" move: it recomputes
 * a *consistent* trailer over whatever payload lines the file currently
 * holds, so a test can prove the aggregator's semantic checks (job-id
 * ownership, uniqueness, coverage, campaign fingerprint) catch damage
 * that per-line and whole-file checksums cannot.
 *
 * Test-only: lives with the tests, not the library.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/checksum.h"
#include "common/fs.h"

namespace vega::campaign::corrupt {

inline std::string
slurp(const std::string &path)
{
    Expected<std::string> text = read_file(path);
    return text.ok() ? *text : std::string();
}

/** Plain overwrite — corrupting a fixture needs no atomicity. */
inline void
spew(const std::string &path, const std::string &content)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return;
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
}

inline std::vector<std::string>
lines_of(const std::string &text)
{
    std::vector<std::string> lines;
    size_t start = 0;
    for (size_t i = 0; i < text.size(); ++i)
        if (text[i] == '\n') {
            lines.push_back(text.substr(start, i - start));
            start = i + 1;
        }
    if (start < text.size())
        lines.push_back(text.substr(start));
    return lines;
}

inline std::string
join(const std::vector<std::string> &lines)
{
    std::string out;
    for (const std::string &l : lines)
        out += l + "\n";
    return out;
}

/** Index of the first payload line whose body starts with @p prefix
 *  (payload lines are "<crc8> <body>"), or size_t(-1). */
inline size_t
find_payload(const std::vector<std::string> &lines,
             const std::string &prefix)
{
    for (size_t i = 0; i < lines.size(); ++i)
        if (lines[i].size() > 9 && lines[i][8] == ' ' &&
            lines[i].compare(9, prefix.size(), prefix) == 0)
            return i;
    return size_t(-1);
}

/** The full "<crc8> <body>" line of the record matching @p prefix. */
inline std::string
get_record_line(const std::string &path, const std::string &prefix)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    size_t i = find_payload(lines, prefix);
    return i == size_t(-1) ? std::string() : lines[i];
}

/**
 * Flip one bit in the body of the record matching @p prefix without
 * touching the line's checksum prefix — the single-bit-rot scenario.
 */
inline bool
flip_bit(const std::string &path, const std::string &prefix)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    size_t i = find_payload(lines, prefix);
    if (i == size_t(-1))
        return false;
    lines[i].back() ^= 1;
    spew(path, join(lines));
    return true;
}

/** Drop the final @p nbytes of the file — a torn mid-line tail. */
inline void
truncate_bytes(const std::string &path, size_t nbytes)
{
    std::string text = slurp(path);
    text.resize(text.size() > nbytes ? text.size() - nbytes : 0);
    spew(path, text);
}

/** Remove the trailer line: the shard looks killed mid-run. */
inline bool
drop_trailer(const std::string &path)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    bool found = false;
    std::vector<std::string> out;
    for (const std::string &l : lines) {
        if (l.compare(0, 8, "trailer ") == 0) {
            found = true;
            continue;
        }
        out.push_back(l);
    }
    spew(path, join(out));
    return found;
}

/** Flip the last hex digit of the trailer's rolling checksum. */
inline bool
tamper_trailer_crc(const std::string &path)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    for (std::string &l : lines)
        if (l.compare(0, 8, "trailer ") == 0) {
            l.back() = l.back() == '0' ? '1' : '0';
            spew(path, join(lines));
            return true;
        }
    return false;
}

/** Insert a raw payload line just before the trailer (or at EOF). */
inline void
insert_record_line(const std::string &path, const std::string &line)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    size_t at = lines.size();
    for (size_t i = 0; i < lines.size(); ++i)
        if (lines[i].compare(0, 8, "trailer ") == 0) {
            at = i;
            break;
        }
    lines.insert(lines.begin() + at, line);
    spew(path, join(lines));
}

/** Duplicate the record matching @p prefix in place. */
inline bool
duplicate_record(const std::string &path, const std::string &prefix)
{
    std::string line = get_record_line(path, prefix);
    if (line.empty())
        return false;
    insert_record_line(path, line);
    return true;
}

/** Delete the record matching @p prefix. */
inline bool
remove_record(const std::string &path, const std::string &prefix)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    size_t i = find_payload(lines, prefix);
    if (i == size_t(-1))
        return false;
    lines.erase(lines.begin() + i);
    spew(path, join(lines));
    return true;
}

/**
 * Edit the body of the record matching @p prefix (replace @p from
 * with @p to) and re-checksum the line, keeping the framing valid —
 * tampering the per-line CRC cannot catch.
 */
inline bool
rewrite_record(const std::string &path, const std::string &prefix,
               const std::string &from, const std::string &to)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    size_t i = find_payload(lines, prefix);
    if (i == size_t(-1))
        return false;
    std::string body = lines[i].substr(9);
    size_t pos = body.find(from);
    if (pos == std::string::npos)
        return false;
    body.replace(pos, from.size(), to);
    lines[i] = crc32c_hex(crc32c(body)) + " " + body;
    spew(path, join(lines));
    return true;
}

/**
 * Recompute a fully consistent trailer (record count + rolling CRC)
 * over the file's current payload lines, replacing any existing one.
 * After this, read_journal's checksum verification passes — only the
 * aggregator's cross-shard semantic checks can expose the damage.
 */
inline void
forge_trailer(const std::string &path)
{
    std::vector<std::string> lines = lines_of(slurp(path));
    std::vector<std::string> out;
    Crc32c rolling;
    uint64_t records = 0;
    for (size_t i = 0; i < lines.size(); ++i) {
        if (i == 0) { // magic line
            out.push_back(lines[i]);
            continue;
        }
        if (lines[i].compare(0, 8, "trailer ") == 0)
            continue;
        out.push_back(lines[i]);
        std::string body =
            lines[i].size() > 9 ? lines[i].substr(9) : std::string();
        rolling.update(body);
        rolling.update("\n", 1);
        if (body.compare(0, 7, "config ") != 0)
            ++records;
    }
    out.push_back("trailer records=" + std::to_string(records) +
                  " crc=" + crc32c_hex(rolling.value()));
    spew(path, join(out));
}

} // namespace vega::campaign::corrupt
