/**
 * @file
 * Lockstep contract of wave execution: a campaign run in 64-episode
 * waves over a fault-bank tape must be byte-identical — the full
 * deterministic CampaignReport JSON — to the scalar per-job oracle, at
 * every thread count, on every module family. Plus unit checks of the
 * two properties the contract rests on: disabled fault-bank muxes are
 * exact pass-throughs, and wave characterization reproduces scalar
 * workload_corrupts() verdict for verdict.
 */
#include "campaign/wave.h"

#include <gtest/gtest.h>

#include "campaign/campaign.h"
#include "campaign/engine.h"
#include "cpu/alu_ops.h"
#include "cpu/softfp.h"
#include "lift/failure_model.h"
#include "rtl/alu32.h"
#include "rtl/fpu32.h"
#include "vega/workflow.h"

namespace vega::campaign {
namespace {

struct WaveEnv
{
    HwModule module;
    std::vector<sta::EndpointPair> pairs;
    std::vector<runtime::TestCase> suite;
};

runtime::TestCase
alu_test(const char *name, AluOp op, uint32_t a, uint32_t b, int pair)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Alu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    tc.checks = {{0, alu_compute(op, a, b), false}};
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

runtime::TestCase
fpu_test(const char *name, fp::FpuOp op, uint32_t a, uint32_t b, int pair,
         bool check_flags)
{
    runtime::TestCase tc;
    tc.name = name;
    tc.module = ModuleKind::Fpu32;
    tc.stimulus = {runtime::ModuleStep{a, b, uint32_t(op), true, false}};
    fp::FpResult r = fp::fpu_compute(op, a, b);
    bool to_xreg = op == fp::FpuOp::Eq || op == fp::FpuOp::Lt ||
                   op == fp::FpuOp::Le;
    tc.checks = {{0, r.bits, to_xreg}};
    if (check_flags) {
        tc.check_final_flags = true;
        tc.expected_flags = r.flags;
    }
    tc.pair_index = pair;
    runtime::finalize_test_case(tc);
    return tc;
}

const WaveEnv &
alu_env()
{
    static WaveEnv *e = [] {
        auto *env = new WaveEnv;
        env->module = rtl::make_alu32();
        auto lib =
            aging::AgingTimingLibrary::build(aging::RdModelParams{});
        AgingAnalysisConfig cfg;
        cfg.utilization = 0.99;
        cfg.max_trace = 1500;
        auto aged =
            run_aging_analysis(env->module, lib, minver_trace(), cfg);
        env->pairs = aged.liftable_pairs();
        if (env->pairs.size() > 2)
            env->pairs.resize(2);
        env->suite = {
            alu_test("c0", AluOp::Add, 0xffffffff, 1, 0),
            alu_test("c1", AluOp::Sub, 0, 1, 0),
            alu_test("c2", AluOp::Xor, 0xaaaaaaaa, 0x55555555, 1),
            alu_test("c3", AluOp::Sll, 1, 31, 1),
        };
        return env;
    }();
    return *e;
}

const WaveEnv &
fpu_env()
{
    static WaveEnv *e = [] {
        auto *env = new WaveEnv;
        env->module = rtl::make_fpu32();
        auto lib =
            aging::AgingTimingLibrary::build(aging::RdModelParams{});
        AgingAnalysisConfig cfg;
        cfg.utilization = 0.99;
        cfg.max_trace = 1500;
        auto aged =
            run_aging_analysis(env->module, lib, minver_trace(), cfg);
        env->pairs = aged.liftable_pairs();
        if (env->pairs.size() > 2)
            env->pairs.resize(2);
        // The synthetic screen covers every wave transaction kind: ops
        // writing f-regs, a compare writing an x-reg, and an fflags
        // check (csrr/csrw fflags through the split protocol).
        env->suite = {
            fpu_test("f0", fp::FpuOp::Add, 0x3f800000, 0x3f800000, 0,
                     false),
            fpu_test("f1", fp::FpuOp::Mul, 0x40490fdb, 0x3eaaaaab, 0,
                     true),
            fpu_test("f2", fp::FpuOp::Lt, 0xbf800000, 0x3f800000, 1,
                     false),
            fpu_test("f3", fp::FpuOp::Sub, 0x7f7fffff, 0xff7fffff, 1,
                     true),
        };
        return env;
    }();
    return *e;
}

CampaignConfig
base_config(uint64_t seed, size_t threads, bool waves)
{
    CampaignConfig cfg;
    cfg.seed = seed;
    cfg.num_jobs = 18;
    cfg.threads = threads;
    cfg.max_slots = 6;
    cfg.wave_execution = waves;
    return cfg;
}

std::vector<lift::FailureModelSpec>
all_fault_specs(const WaveEnv &e,
                const std::vector<lift::FaultConstant> &constants)
{
    std::vector<lift::FailureModelSpec> specs;
    for (const auto &pair : e.pairs)
        for (lift::FaultConstant c : constants) {
            lift::FailureModelSpec fm;
            fm.launch = pair.launch;
            fm.capture = pair.capture;
            fm.is_setup = pair.is_setup;
            fm.constant = c;
            specs.push_back(fm);
        }
    return specs;
}

TEST(WaveCampaign, FaultBankDisabledLanesArePassThrough)
{
    const WaveEnv &e = alu_env();
    auto specs = all_fault_specs(
        e, {lift::FaultConstant::Zero, lift::FaultConstant::One});
    lift::FaultBank bank =
        lift::build_fault_bank(e.module.netlist, specs);
    EXPECT_EQ(bank.num_faults, specs.size());
    ASSERT_EQ(bank.fault_random.size(), specs.size());

    // With every enable low the bank must behave exactly like the
    // healthy module: the representative workload runs clean.
    auto tape = std::make_shared<const EvalTape>(bank.netlist);
    EXPECT_FALSE(workload_corrupts(e.module.kind, tape,
                                   bank.has_random_input, 1));
}

TEST(WaveCampaign, CharacterizeWaveMatchesScalarVerdicts)
{
    const WaveEnv &e = alu_env();
    std::vector<lift::FaultConstant> constants = {
        lift::FaultConstant::Zero, lift::FaultConstant::One};
    auto specs = all_fault_specs(e, constants);
    lift::FaultBank bank =
        lift::build_fault_bank(e.module.netlist, specs);

    WaveContext ctx;
    ctx.kind = e.module.kind;
    ctx.tape = std::make_shared<const EvalTape>(bank.netlist);
    ctx.num_faults = bank.num_faults;
    ctx.fault_random = &bank.fault_random;
    ctx.suite = &e.suite;

    std::vector<std::pair<size_t, uint64_t>> req;
    std::vector<char> scalar(specs.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        uint64_t seed = job_stream(~uint64_t(99), i);
        req.push_back({i, seed});
        lift::FailingNetlist f =
            lift::build_failing_netlist(e.module.netlist, specs[i]);
        scalar[i] = workload_corrupts(e.module.kind, f.netlist,
                                      f.has_random_input, seed);
    }
    std::vector<char> wave = characterize_wave(ctx, req);
    ASSERT_EQ(wave.size(), specs.size());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(int(wave[i]), int(scalar[i])) << "fault " << i;
}

TEST(WaveCampaign, AluReportsByteIdenticalAcrossModesAndThreads)
{
    const WaveEnv &e = alu_env();
    for (uint64_t seed : {99ull, 31ull}) {
        CampaignReport oracle = run_campaign(
            e.module, e.pairs, e.suite, base_config(seed, 1, false));
        std::string golden = oracle.to_json(false);
        for (size_t threads : {1, 2, 4, 8}) {
            CampaignReport wave =
                run_campaign(e.module, e.pairs, e.suite,
                             base_config(seed, threads, true));
            EXPECT_EQ(golden, wave.to_json(false))
                << "seed " << seed << " threads " << threads;
        }
        CampaignReport scalar_mt = run_campaign(
            e.module, e.pairs, e.suite, base_config(seed, 4, false));
        EXPECT_EQ(golden, scalar_mt.to_json(false));
    }
}

TEST(WaveCampaign, MultiWaveCampaignMatchesScalar)
{
    // More jobs than one 64-episode wave holds: exercises wave
    // bucketing and cross-wave result assembly.
    const WaveEnv &e = alu_env();
    CampaignConfig scalar = base_config(7, 2, false);
    scalar.num_jobs = kWaveLanes + 9;
    scalar.max_slots = 4;
    CampaignConfig waves = scalar;
    waves.wave_execution = true;
    CampaignReport a = run_campaign(e.module, e.pairs, e.suite, scalar);
    CampaignReport b = run_campaign(e.module, e.pairs, e.suite, waves);
    ASSERT_EQ(a.jobs.size(), scalar.num_jobs);
    EXPECT_EQ(a.to_json(false), b.to_json(false));
}

TEST(WaveCampaign, FpuReportsByteIdenticalAcrossModes)
{
    const WaveEnv &e = fpu_env();
    CampaignConfig scalar = base_config(7, 1, false);
    scalar.num_jobs = 12;
    CampaignConfig waves = scalar;
    waves.wave_execution = true;
    waves.threads = 2;
    CampaignReport a = run_campaign(e.module, e.pairs, e.suite, scalar);
    CampaignReport b = run_campaign(e.module, e.pairs, e.suite, waves);
    EXPECT_EQ(a.to_json(false), b.to_json(false));
    EXPECT_GT(a.detected + a.escapes + a.benign, 0u);
}

TEST(WaveCampaign, StopAfterJobsHonoredMidWave)
{
    // One wave holds all 18 jobs; the stop flag must still land after
    // ~5 completions, not at the wave boundary.
    const WaveEnv &e = alu_env();
    CampaignConfig cfg = base_config(99, 1, true);
    cfg.stop_after_jobs = 5;
    CampaignReport r = run_campaign(e.module, e.pairs, e.suite, cfg);
    EXPECT_GE(r.jobs.size(), 5u);
    EXPECT_LT(r.jobs.size(), 18u);
}

} // namespace
} // namespace vega::campaign
