#include "cpu/softfp.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "common/rng.h"

namespace vega::fp {
namespace {

uint32_t
f2u(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

float
u2f(uint32_t u)
{
    float f;
    std::memcpy(&f, &u, sizeof(f));
    return f;
}

bool
is_subnormal_or_zero(uint32_t u)
{
    return ((u >> 23) & 0xff) == 0;
}

/** Host-reference check valid when inputs are normal. */
void
check_against_host(uint32_t a, uint32_t b, FpResult (*op)(uint32_t, uint32_t),
                   float (*host)(float, float))
{
    FpResult r = op(a, b);
    float hf = host(u2f(a), u2f(b));
    uint32_t hu = f2u(hf);
    if (std::isnan(hf)) {
        EXPECT_EQ(r.bits, kQuietNan);
        return;
    }
    if (is_subnormal_or_zero(hu)) {
        // FTZ: we flush where the host keeps subnormals.
        EXPECT_TRUE(is_subnormal_or_zero(r.bits))
            << std::hex << a << " op " << b;
        EXPECT_EQ(r.bits & 0x7fffff, 0u);
        return;
    }
    EXPECT_EQ(r.bits, hu) << std::hex << "a=" << a << " b=" << b
                          << " got=" << r.bits << " want=" << hu;
}

float host_add(float x, float y) { return x + y; }
float host_mul(float x, float y) { return x * y; }

uint32_t
random_normal(Rng &rng)
{
    uint32_t sign = uint32_t(rng.next() & 1) << 31;
    uint32_t exp = 1 + uint32_t(rng.below(254));
    uint32_t man = uint32_t(rng.next()) & 0x7fffff;
    return sign | (exp << 23) | man;
}

/** Normal value with exponent near the midpoint so results stay normal. */
uint32_t
random_midrange(Rng &rng)
{
    uint32_t sign = uint32_t(rng.next() & 1) << 31;
    uint32_t exp = 100 + uint32_t(rng.below(56));
    uint32_t man = uint32_t(rng.next()) & 0x7fffff;
    return sign | (exp << 23) | man;
}

TEST(SoftFp, AddMatchesHostOnRandomNormals)
{
    Rng rng(11);
    for (int i = 0; i < 5000; ++i) {
        uint32_t a = random_normal(rng), b = random_normal(rng);
        check_against_host(a, b, fadd, host_add);
    }
}

TEST(SoftFp, AddMatchesHostOnCloseExponents)
{
    // Stress alignment and cancellation: exponents within +-2.
    Rng rng(12);
    for (int i = 0; i < 5000; ++i) {
        uint32_t a = random_midrange(rng);
        int ea = (a >> 23) & 0xff;
        int eb = ea + int(rng.below(5)) - 2;
        uint32_t b = (uint32_t(rng.next() & 1) << 31) |
                     (uint32_t(eb) << 23) |
                     (uint32_t(rng.next()) & 0x7fffff);
        check_against_host(a, b, fadd, host_add);
    }
}

TEST(SoftFp, MulMatchesHostOnMidrange)
{
    Rng rng(13);
    for (int i = 0; i < 5000; ++i) {
        uint32_t a = random_midrange(rng), b = random_midrange(rng);
        check_against_host(a, b, fmul, host_mul);
    }
}

TEST(SoftFp, AddSpecials)
{
    const uint32_t inf = 0x7f800000, ninf = 0xff800000;
    const uint32_t one = f2u(1.0f), none = f2u(-1.0f);
    const uint32_t pzero = 0, nzero = 0x80000000;
    const uint32_t snan = 0x7f800001, qnan = kQuietNan;

    EXPECT_EQ(fadd(inf, one).bits, inf);
    EXPECT_EQ(fadd(one, ninf).bits, ninf);
    EXPECT_EQ(fadd(inf, inf).bits, inf);

    FpResult conflict = fadd(inf, ninf);
    EXPECT_EQ(conflict.bits, kQuietNan);
    EXPECT_TRUE(conflict.flags & kNV);

    FpResult with_snan = fadd(snan, one);
    EXPECT_EQ(with_snan.bits, kQuietNan);
    EXPECT_TRUE(with_snan.flags & kNV);

    FpResult with_qnan = fadd(qnan, one);
    EXPECT_EQ(with_qnan.bits, kQuietNan);
    EXPECT_FALSE(with_qnan.flags & kNV);

    EXPECT_EQ(fadd(pzero, nzero).bits, pzero);
    EXPECT_EQ(fadd(nzero, nzero).bits, nzero);
    EXPECT_EQ(fadd(pzero, one).bits, one);
    EXPECT_EQ(fadd(one, nzero).bits, one);

    // Exact cancellation gives +0 under RNE.
    EXPECT_EQ(fadd(one, none).bits, pzero);
}

TEST(SoftFp, SubnormalInputsFlushToZero)
{
    uint32_t sub = 0x00000001; // smallest positive subnormal
    uint32_t one = f2u(1.0f);
    EXPECT_EQ(fadd(sub, one).bits, one);
    EXPECT_EQ(fmul(sub, one).bits, 0u); // zero * 1
    EXPECT_EQ(feq(sub, 0).bits, 1u);    // flushed == zero
}

TEST(SoftFp, OverflowRaisesOFNX)
{
    uint32_t big = f2u(3e38f);
    FpResult r = fadd(big, big);
    EXPECT_EQ(r.bits, 0x7f800000u);
    EXPECT_TRUE(r.flags & kOF);
    EXPECT_TRUE(r.flags & kNX);

    FpResult m = fmul(big, big);
    EXPECT_EQ(m.bits, 0x7f800000u);
    EXPECT_TRUE(m.flags & kOF);
}

TEST(SoftFp, UnderflowFlushesAndRaisesUFNX)
{
    uint32_t tiny = f2u(1e-20f); // normal, but tiny*tiny underflows
    FpResult m = fmul(tiny, tiny);
    EXPECT_EQ(m.bits & 0x7fffffff, 0u);
    EXPECT_TRUE(m.flags & kUF);
    EXPECT_TRUE(m.flags & kNX);
}

TEST(SoftFp, MulSpecials)
{
    const uint32_t inf = 0x7f800000;
    const uint32_t one = f2u(1.0f), ntwo = f2u(-2.0f);

    FpResult zi = fmul(0, inf);
    EXPECT_EQ(zi.bits, kQuietNan);
    EXPECT_TRUE(zi.flags & kNV);

    EXPECT_EQ(fmul(inf, ntwo).bits, 0xff800000u);
    EXPECT_EQ(fmul(one, 0x80000000u).bits, 0x80000000u);
}

TEST(SoftFp, InexactFlag)
{
    uint32_t one = f2u(1.0f);
    uint32_t eps = f2u(1e-20f);
    FpResult r = fadd(one, eps);
    EXPECT_EQ(r.bits, one);
    EXPECT_TRUE(r.flags & kNX);

    FpResult exact = fadd(one, one);
    EXPECT_EQ(exact.bits, f2u(2.0f));
    EXPECT_EQ(exact.flags, 0);
}

TEST(SoftFp, CompareOrdering)
{
    uint32_t one = f2u(1.0f), two = f2u(2.0f), none = f2u(-1.0f);
    EXPECT_EQ(flt(one, two).bits, 1u);
    EXPECT_EQ(flt(two, one).bits, 0u);
    EXPECT_EQ(flt(none, one).bits, 1u);
    EXPECT_EQ(flt(none, none).bits, 0u);
    EXPECT_EQ(fle(one, one).bits, 1u);
    EXPECT_EQ(feq(one, one).bits, 1u);
    EXPECT_EQ(feq(0, 0x80000000u).bits, 1u); // +0 == -0
    EXPECT_EQ(flt(0x80000000u, 0).bits, 0u); // -0 < +0 is false
}

TEST(SoftFp, CompareNanSemantics)
{
    uint32_t one = f2u(1.0f);
    uint32_t snan = 0x7f800001, qnan = kQuietNan;

    FpResult q = feq(qnan, one);
    EXPECT_EQ(q.bits, 0u);
    EXPECT_FALSE(q.flags & kNV); // feq is quiet

    FpResult s = feq(snan, one);
    EXPECT_TRUE(s.flags & kNV);

    FpResult l = flt(qnan, one);
    EXPECT_EQ(l.bits, 0u);
    EXPECT_TRUE(l.flags & kNV); // flt signals on any NaN

    EXPECT_TRUE(fle(one, qnan).flags & kNV);
}

TEST(SoftFp, MinMaxSemantics)
{
    uint32_t one = f2u(1.0f), two = f2u(2.0f), none = f2u(-1.0f);
    uint32_t qnan = kQuietNan;
    uint32_t pzero = 0, nzero = 0x80000000;

    EXPECT_EQ(fmin(one, two).bits, one);
    EXPECT_EQ(fmax(one, two).bits, two);
    EXPECT_EQ(fmin(none, one).bits, none);

    // NaN suppression.
    EXPECT_EQ(fmin(qnan, one).bits, one);
    EXPECT_EQ(fmax(one, qnan).bits, one);
    EXPECT_EQ(fmin(qnan, qnan).bits, kQuietNan);

    // -0 orders below +0.
    EXPECT_EQ(fmin(pzero, nzero).bits, nzero);
    EXPECT_EQ(fmax(pzero, nzero).bits, pzero);
}

TEST(SoftFp, FsubIsAddWithFlippedSign)
{
    Rng rng(14);
    for (int i = 0; i < 1000; ++i) {
        uint32_t a = random_normal(rng), b = random_normal(rng);
        EXPECT_EQ(fsub(a, b).bits, fadd(a, b ^ 0x80000000u).bits);
    }
}

TEST(SoftFp, AddCommutes)
{
    Rng rng(15);
    for (int i = 0; i < 2000; ++i) {
        uint32_t a = random_normal(rng), b = random_normal(rng);
        FpResult ab = fadd(a, b), ba = fadd(b, a);
        EXPECT_EQ(ab.bits, ba.bits);
        EXPECT_EQ(ab.flags, ba.flags);
    }
}

TEST(SoftFp, MulCommutes)
{
    Rng rng(16);
    for (int i = 0; i < 2000; ++i) {
        uint32_t a = random_normal(rng), b = random_normal(rng);
        FpResult ab = fmul(a, b), ba = fmul(b, a);
        EXPECT_EQ(ab.bits, ba.bits);
        EXPECT_EQ(ab.flags, ba.flags);
    }
}

} // namespace
} // namespace vega::fp
