# Empty dependencies file for extension_mdu.
# This may be replaced when dependencies are built.
