file(REMOVE_RECURSE
  "CMakeFiles/extension_mdu.dir/extension_mdu.cpp.o"
  "CMakeFiles/extension_mdu.dir/extension_mdu.cpp.o.d"
  "extension_mdu"
  "extension_mdu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_mdu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
