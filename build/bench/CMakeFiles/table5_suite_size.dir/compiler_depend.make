# Empty compiler generated dependencies file for table5_suite_size.
# This may be replaced when dependencies are built.
