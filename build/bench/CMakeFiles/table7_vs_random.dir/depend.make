# Empty dependencies file for table7_vs_random.
# This may be replaced when dependencies are built.
