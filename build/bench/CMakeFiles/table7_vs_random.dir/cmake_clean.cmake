file(REMOVE_RECURSE
  "CMakeFiles/table7_vs_random.dir/table7_vs_random.cpp.o"
  "CMakeFiles/table7_vs_random.dir/table7_vs_random.cpp.o.d"
  "table7_vs_random"
  "table7_vs_random.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table7_vs_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
