file(REMOVE_RECURSE
  "CMakeFiles/table3_sta_violations.dir/table3_sta_violations.cpp.o"
  "CMakeFiles/table3_sta_violations.dir/table3_sta_violations.cpp.o.d"
  "table3_sta_violations"
  "table3_sta_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sta_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
