# Empty dependencies file for table3_sta_violations.
# This may be replaced when dependencies are built.
