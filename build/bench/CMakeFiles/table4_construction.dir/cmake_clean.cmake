file(REMOVE_RECURSE
  "CMakeFiles/table4_construction.dir/table4_construction.cpp.o"
  "CMakeFiles/table4_construction.dir/table4_construction.cpp.o.d"
  "table4_construction"
  "table4_construction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_construction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
