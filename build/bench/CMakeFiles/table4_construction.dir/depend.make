# Empty dependencies file for table4_construction.
# This may be replaced when dependencies are built.
