file(REMOVE_RECURSE
  "CMakeFiles/fig4_delay_degradation.dir/fig4_delay_degradation.cpp.o"
  "CMakeFiles/fig4_delay_degradation.dir/fig4_delay_degradation.cpp.o.d"
  "fig4_delay_degradation"
  "fig4_delay_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_delay_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
