# Empty dependencies file for fig4_delay_degradation.
# This may be replaced when dependencies are built.
