file(REMOVE_RECURSE
  "CMakeFiles/table6_quality.dir/table6_quality.cpp.o"
  "CMakeFiles/table6_quality.dir/table6_quality.cpp.o.d"
  "table6_quality"
  "table6_quality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table6_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
