# Empty compiler generated dependencies file for table6_quality.
# This may be replaced when dependencies are built.
