# Empty dependencies file for fig8_delay_distribution.
# This may be replaced when dependencies are built.
