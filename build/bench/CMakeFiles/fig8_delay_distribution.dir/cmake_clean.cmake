file(REMOVE_RECURSE
  "CMakeFiles/fig8_delay_distribution.dir/fig8_delay_distribution.cpp.o"
  "CMakeFiles/fig8_delay_distribution.dir/fig8_delay_distribution.cpp.o.d"
  "fig8_delay_distribution"
  "fig8_delay_distribution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_delay_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
