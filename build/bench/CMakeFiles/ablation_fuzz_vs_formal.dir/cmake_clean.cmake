file(REMOVE_RECURSE
  "CMakeFiles/ablation_fuzz_vs_formal.dir/ablation_fuzz_vs_formal.cpp.o"
  "CMakeFiles/ablation_fuzz_vs_formal.dir/ablation_fuzz_vs_formal.cpp.o.d"
  "ablation_fuzz_vs_formal"
  "ablation_fuzz_vs_formal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_fuzz_vs_formal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
