# Empty compiler generated dependencies file for ablation_fuzz_vs_formal.
# This may be replaced when dependencies are built.
