file(REMOVE_RECURSE
  "CMakeFiles/ablation_bmc_bound.dir/ablation_bmc_bound.cpp.o"
  "CMakeFiles/ablation_bmc_bound.dir/ablation_bmc_bound.cpp.o.d"
  "ablation_bmc_bound"
  "ablation_bmc_bound.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_bmc_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
