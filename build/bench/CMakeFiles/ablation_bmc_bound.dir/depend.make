# Empty dependencies file for ablation_bmc_bound.
# This may be replaced when dependencies are built.
