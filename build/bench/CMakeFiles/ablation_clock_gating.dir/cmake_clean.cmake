file(REMOVE_RECURSE
  "CMakeFiles/ablation_clock_gating.dir/ablation_clock_gating.cpp.o"
  "CMakeFiles/ablation_clock_gating.dir/ablation_clock_gating.cpp.o.d"
  "ablation_clock_gating"
  "ablation_clock_gating.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_clock_gating.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
