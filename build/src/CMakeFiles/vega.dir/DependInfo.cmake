
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/aging/rd_model.cpp" "src/CMakeFiles/vega.dir/aging/rd_model.cpp.o" "gcc" "src/CMakeFiles/vega.dir/aging/rd_model.cpp.o.d"
  "/root/repo/src/aging/timing_library.cpp" "src/CMakeFiles/vega.dir/aging/timing_library.cpp.o" "gcc" "src/CMakeFiles/vega.dir/aging/timing_library.cpp.o.d"
  "/root/repo/src/common/bitvec.cpp" "src/CMakeFiles/vega.dir/common/bitvec.cpp.o" "gcc" "src/CMakeFiles/vega.dir/common/bitvec.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/vega.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/vega.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/vega.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/vega.dir/common/rng.cpp.o.d"
  "/root/repo/src/cpu/assembler.cpp" "src/CMakeFiles/vega.dir/cpu/assembler.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/assembler.cpp.o.d"
  "/root/repo/src/cpu/encoding.cpp" "src/CMakeFiles/vega.dir/cpu/encoding.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/encoding.cpp.o.d"
  "/root/repo/src/cpu/iss.cpp" "src/CMakeFiles/vega.dir/cpu/iss.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/iss.cpp.o.d"
  "/root/repo/src/cpu/machine_code.cpp" "src/CMakeFiles/vega.dir/cpu/machine_code.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/machine_code.cpp.o.d"
  "/root/repo/src/cpu/netlist_backend.cpp" "src/CMakeFiles/vega.dir/cpu/netlist_backend.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/netlist_backend.cpp.o.d"
  "/root/repo/src/cpu/softfp.cpp" "src/CMakeFiles/vega.dir/cpu/softfp.cpp.o" "gcc" "src/CMakeFiles/vega.dir/cpu/softfp.cpp.o.d"
  "/root/repo/src/formal/bmc.cpp" "src/CMakeFiles/vega.dir/formal/bmc.cpp.o" "gcc" "src/CMakeFiles/vega.dir/formal/bmc.cpp.o.d"
  "/root/repo/src/formal/cnf_encoder.cpp" "src/CMakeFiles/vega.dir/formal/cnf_encoder.cpp.o" "gcc" "src/CMakeFiles/vega.dir/formal/cnf_encoder.cpp.o.d"
  "/root/repo/src/formal/equiv.cpp" "src/CMakeFiles/vega.dir/formal/equiv.cpp.o" "gcc" "src/CMakeFiles/vega.dir/formal/equiv.cpp.o.d"
  "/root/repo/src/formal/unroller.cpp" "src/CMakeFiles/vega.dir/formal/unroller.cpp.o" "gcc" "src/CMakeFiles/vega.dir/formal/unroller.cpp.o.d"
  "/root/repo/src/integrate/integrator.cpp" "src/CMakeFiles/vega.dir/integrate/integrator.cpp.o" "gcc" "src/CMakeFiles/vega.dir/integrate/integrator.cpp.o.d"
  "/root/repo/src/integrate/profile.cpp" "src/CMakeFiles/vega.dir/integrate/profile.cpp.o" "gcc" "src/CMakeFiles/vega.dir/integrate/profile.cpp.o.d"
  "/root/repo/src/lift/error_lifting.cpp" "src/CMakeFiles/vega.dir/lift/error_lifting.cpp.o" "gcc" "src/CMakeFiles/vega.dir/lift/error_lifting.cpp.o.d"
  "/root/repo/src/lift/failure_model.cpp" "src/CMakeFiles/vega.dir/lift/failure_model.cpp.o" "gcc" "src/CMakeFiles/vega.dir/lift/failure_model.cpp.o.d"
  "/root/repo/src/lift/fuzz_lifting.cpp" "src/CMakeFiles/vega.dir/lift/fuzz_lifting.cpp.o" "gcc" "src/CMakeFiles/vega.dir/lift/fuzz_lifting.cpp.o.d"
  "/root/repo/src/lift/instruction_builder.cpp" "src/CMakeFiles/vega.dir/lift/instruction_builder.cpp.o" "gcc" "src/CMakeFiles/vega.dir/lift/instruction_builder.cpp.o.d"
  "/root/repo/src/netlist/builder.cpp" "src/CMakeFiles/vega.dir/netlist/builder.cpp.o" "gcc" "src/CMakeFiles/vega.dir/netlist/builder.cpp.o.d"
  "/root/repo/src/netlist/cell_library.cpp" "src/CMakeFiles/vega.dir/netlist/cell_library.cpp.o" "gcc" "src/CMakeFiles/vega.dir/netlist/cell_library.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/CMakeFiles/vega.dir/netlist/netlist.cpp.o" "gcc" "src/CMakeFiles/vega.dir/netlist/netlist.cpp.o.d"
  "/root/repo/src/netlist/verilog_reader.cpp" "src/CMakeFiles/vega.dir/netlist/verilog_reader.cpp.o" "gcc" "src/CMakeFiles/vega.dir/netlist/verilog_reader.cpp.o.d"
  "/root/repo/src/netlist/verilog_writer.cpp" "src/CMakeFiles/vega.dir/netlist/verilog_writer.cpp.o" "gcc" "src/CMakeFiles/vega.dir/netlist/verilog_writer.cpp.o.d"
  "/root/repo/src/rtl/adder2.cpp" "src/CMakeFiles/vega.dir/rtl/adder2.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/adder2.cpp.o.d"
  "/root/repo/src/rtl/alu32.cpp" "src/CMakeFiles/vega.dir/rtl/alu32.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/alu32.cpp.o.d"
  "/root/repo/src/rtl/blocks.cpp" "src/CMakeFiles/vega.dir/rtl/blocks.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/blocks.cpp.o.d"
  "/root/repo/src/rtl/clock_tree.cpp" "src/CMakeFiles/vega.dir/rtl/clock_tree.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/clock_tree.cpp.o.d"
  "/root/repo/src/rtl/fpu32.cpp" "src/CMakeFiles/vega.dir/rtl/fpu32.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/fpu32.cpp.o.d"
  "/root/repo/src/rtl/mdu32.cpp" "src/CMakeFiles/vega.dir/rtl/mdu32.cpp.o" "gcc" "src/CMakeFiles/vega.dir/rtl/mdu32.cpp.o.d"
  "/root/repo/src/runtime/aging_library.cpp" "src/CMakeFiles/vega.dir/runtime/aging_library.cpp.o" "gcc" "src/CMakeFiles/vega.dir/runtime/aging_library.cpp.o.d"
  "/root/repo/src/runtime/c_api.cpp" "src/CMakeFiles/vega.dir/runtime/c_api.cpp.o" "gcc" "src/CMakeFiles/vega.dir/runtime/c_api.cpp.o.d"
  "/root/repo/src/runtime/scheduler.cpp" "src/CMakeFiles/vega.dir/runtime/scheduler.cpp.o" "gcc" "src/CMakeFiles/vega.dir/runtime/scheduler.cpp.o.d"
  "/root/repo/src/runtime/suite_io.cpp" "src/CMakeFiles/vega.dir/runtime/suite_io.cpp.o" "gcc" "src/CMakeFiles/vega.dir/runtime/suite_io.cpp.o.d"
  "/root/repo/src/runtime/test_case.cpp" "src/CMakeFiles/vega.dir/runtime/test_case.cpp.o" "gcc" "src/CMakeFiles/vega.dir/runtime/test_case.cpp.o.d"
  "/root/repo/src/sat/solver.cpp" "src/CMakeFiles/vega.dir/sat/solver.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sat/solver.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/vega.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/sp_profiler.cpp" "src/CMakeFiles/vega.dir/sim/sp_profiler.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sim/sp_profiler.cpp.o.d"
  "/root/repo/src/sim/timing_sim.cpp" "src/CMakeFiles/vega.dir/sim/timing_sim.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sim/timing_sim.cpp.o.d"
  "/root/repo/src/sim/vcd_writer.cpp" "src/CMakeFiles/vega.dir/sim/vcd_writer.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sim/vcd_writer.cpp.o.d"
  "/root/repo/src/sim/waveform.cpp" "src/CMakeFiles/vega.dir/sim/waveform.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sim/waveform.cpp.o.d"
  "/root/repo/src/sta/clock_analysis.cpp" "src/CMakeFiles/vega.dir/sta/clock_analysis.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sta/clock_analysis.cpp.o.d"
  "/root/repo/src/sta/sta.cpp" "src/CMakeFiles/vega.dir/sta/sta.cpp.o" "gcc" "src/CMakeFiles/vega.dir/sta/sta.cpp.o.d"
  "/root/repo/src/vega/aging_analysis.cpp" "src/CMakeFiles/vega.dir/vega/aging_analysis.cpp.o" "gcc" "src/CMakeFiles/vega.dir/vega/aging_analysis.cpp.o.d"
  "/root/repo/src/vega/workflow.cpp" "src/CMakeFiles/vega.dir/vega/workflow.cpp.o" "gcc" "src/CMakeFiles/vega.dir/vega/workflow.cpp.o.d"
  "/root/repo/src/workloads/kernels.cpp" "src/CMakeFiles/vega.dir/workloads/kernels.cpp.o" "gcc" "src/CMakeFiles/vega.dir/workloads/kernels.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
