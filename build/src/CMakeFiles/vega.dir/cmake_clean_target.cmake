file(REMOVE_RECURSE
  "libvega.a"
)
