# Empty compiler generated dependencies file for vega.
# This may be replaced when dependencies are built.
