
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_adder2.cpp" "tests/CMakeFiles/vega_tests.dir/test_adder2.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_adder2.cpp.o.d"
  "/root/repo/tests/test_aging.cpp" "tests/CMakeFiles/vega_tests.dir/test_aging.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_aging.cpp.o.d"
  "/root/repo/tests/test_alu32.cpp" "tests/CMakeFiles/vega_tests.dir/test_alu32.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_alu32.cpp.o.d"
  "/root/repo/tests/test_bitvec.cpp" "tests/CMakeFiles/vega_tests.dir/test_bitvec.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_bitvec.cpp.o.d"
  "/root/repo/tests/test_blocks.cpp" "tests/CMakeFiles/vega_tests.dir/test_blocks.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_blocks.cpp.o.d"
  "/root/repo/tests/test_bmc.cpp" "tests/CMakeFiles/vega_tests.dir/test_bmc.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_bmc.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/vega_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_failure_model.cpp" "tests/CMakeFiles/vega_tests.dir/test_failure_model.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_failure_model.cpp.o.d"
  "/root/repo/tests/test_fpu32.cpp" "tests/CMakeFiles/vega_tests.dir/test_fpu32.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_fpu32.cpp.o.d"
  "/root/repo/tests/test_integrate.cpp" "tests/CMakeFiles/vega_tests.dir/test_integrate.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_integrate.cpp.o.d"
  "/root/repo/tests/test_iss.cpp" "tests/CMakeFiles/vega_tests.dir/test_iss.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_iss.cpp.o.d"
  "/root/repo/tests/test_lift.cpp" "tests/CMakeFiles/vega_tests.dir/test_lift.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_lift.cpp.o.d"
  "/root/repo/tests/test_machine_code.cpp" "tests/CMakeFiles/vega_tests.dir/test_machine_code.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_machine_code.cpp.o.d"
  "/root/repo/tests/test_mdu32.cpp" "tests/CMakeFiles/vega_tests.dir/test_mdu32.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_mdu32.cpp.o.d"
  "/root/repo/tests/test_misc.cpp" "tests/CMakeFiles/vega_tests.dir/test_misc.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_misc.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/vega_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/vega_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_sat.cpp" "tests/CMakeFiles/vega_tests.dir/test_sat.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_sat.cpp.o.d"
  "/root/repo/tests/test_simulator.cpp" "tests/CMakeFiles/vega_tests.dir/test_simulator.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_simulator.cpp.o.d"
  "/root/repo/tests/test_softfp.cpp" "tests/CMakeFiles/vega_tests.dir/test_softfp.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_softfp.cpp.o.d"
  "/root/repo/tests/test_sta.cpp" "tests/CMakeFiles/vega_tests.dir/test_sta.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_sta.cpp.o.d"
  "/root/repo/tests/test_timing_sim.cpp" "tests/CMakeFiles/vega_tests.dir/test_timing_sim.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_timing_sim.cpp.o.d"
  "/root/repo/tests/test_verilog_reader.cpp" "tests/CMakeFiles/vega_tests.dir/test_verilog_reader.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_verilog_reader.cpp.o.d"
  "/root/repo/tests/test_workflow.cpp" "tests/CMakeFiles/vega_tests.dir/test_workflow.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_workflow.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/vega_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/vega_tests.dir/test_workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vega.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
