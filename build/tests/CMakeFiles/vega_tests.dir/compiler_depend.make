# Empty compiler generated dependencies file for vega_tests.
# This may be replaced when dependencies are built.
