# Empty dependencies file for fpu_fault_injection.
# This may be replaced when dependencies are built.
