file(REMOVE_RECURSE
  "CMakeFiles/fpu_fault_injection.dir/fpu_fault_injection.cpp.o"
  "CMakeFiles/fpu_fault_injection.dir/fpu_fault_injection.cpp.o.d"
  "fpu_fault_injection"
  "fpu_fault_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpu_fault_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
