# Empty dependencies file for alu_aging_workflow.
# This may be replaced when dependencies are built.
