file(REMOVE_RECURSE
  "CMakeFiles/alu_aging_workflow.dir/alu_aging_workflow.cpp.o"
  "CMakeFiles/alu_aging_workflow.dir/alu_aging_workflow.cpp.o.d"
  "alu_aging_workflow"
  "alu_aging_workflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alu_aging_workflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
