/**
 * @file
 * Tiny JSON checker backing the observability CTest cases.
 *
 *   vega_json_check FILE [--require SUBSTR]...
 *
 * Exits 0 iff FILE parses as strict RFC 8259 JSON and contains every
 * --require substring (how the tests assert that a metrics snapshot
 * actually carries sat.conflicts, sim.cycles, ... without a full JSON
 * query language). Parse errors print the byte offset.
 */
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/fs.h"
#include "obs/json_lint.h"

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage: %s FILE [--require SUBSTR]...\n", argv[0]);
        return 2;
    }
    const char *path = argv[1];
    std::vector<std::string> required;
    for (int i = 2; i < argc; ++i) {
        if (!std::strcmp(argv[i], "--require") && i + 1 < argc) {
            required.push_back(argv[++i]);
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            return 2;
        }
    }

    vega::Expected<std::string> text = vega::read_file(path);
    if (!text) {
        std::fprintf(stderr, "%s: %s\n", path,
                     text.error().to_string().c_str());
        return 1;
    }
    vega::Expected<void> valid = vega::obs::json_validate(*text);
    if (!valid) {
        std::fprintf(stderr, "%s: %s\n", path,
                     valid.error().to_string().c_str());
        return 1;
    }
    int missing = 0;
    for (const std::string &r : required)
        if (text->find(r) == std::string::npos) {
            std::fprintf(stderr, "%s: missing required '%s'\n", path,
                         r.c_str());
            ++missing;
        }
    if (missing)
        return 1;
    std::printf("%s: valid JSON (%zu bytes, %zu required substrings)\n",
                path, text->size(), required.size());
    return 0;
}
