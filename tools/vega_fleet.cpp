/**
 * @file
 * CLI driver for the mission-mode fleet simulator: runs the Vega
 * workflow on a chosen functional unit, characterizes every lifted
 * fault class against the generated suite once (the FaultMatrix), then
 * simulates a heterogeneous device population running that suite under
 * a production overhead budget.
 *
 *   vega_fleet --module alu --devices 250000 --epochs 8 --threads 8 \
 *              --seed 7 --out fleet_report.json
 *
 * Two JSON artifacts come out: the full report at --out (with wall
 * clock timing), and the timing-free BENCH_fleet.json, which is
 * byte-identical for a fixed seed at any thread count. `--smoke`
 * shrinks the population for CI and redirects the bench artifact to
 * BENCH_fleet.smoke.json so a smoke run can never clobber a pinned
 * full-run BENCH_fleet.json.
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/fs.h"
#include "fleet/fleet_sim.h"
#include "obs/metrics.h"
#include "vega/workflow.h"

using namespace vega;

namespace {

struct CliOptions
{
    ModuleKind module = ModuleKind::Alu32;
    fleet::FleetConfig fleet;
    size_t workflow_max_pairs = 8;
    std::string corners; ///< empty = full catalog
    std::string out = "fleet_report.json";
    std::string metrics_out;
    bool smoke = false;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --module alu|fpu|mdu|mem module (default alu)\n"
        "  --devices N              population size (default 250000)\n"
        "  --epochs N               mission epochs per device "
        "(default 8)\n"
        "  --threads N              worker threads, 0 = all cores "
        "(default 1)\n"
        "  --seed S                 fleet seed (default 1)\n"
        "  --budget F               per-device overhead budget "
        "(default 0.01)\n"
        "  --slots N                scheduler slots per epoch "
        "(default 32)\n"
        "  --corners LIST           comma-separated corner names "
        "(default: full catalog)\n"
        "  --adversarial-fraction F wearout-attack population share "
        "(default 0.02)\n"
        "  --max-pairs N            cap on lifted endpoint pairs "
        "(default 8)\n"
        "  --out FILE               report path (default "
        "fleet_report.json)\n"
        "  --metrics-out FILE       write the metrics registry "
        "snapshot as JSON\n"
        "  --smoke                  tiny population for CI; bench "
        "JSON goes to BENCH_fleet.smoke.json\n"
        "options also accept the --flag=value form\n",
        argv0);
}

bool
parse_args(int argc, char **argv, CliOptions &opt)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        std::string inline_value;
        bool have_inline = false;
        size_t eq = arg.find('=');
        if (arg.compare(0, 2, "--") == 0 && eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg.erase(eq);
            have_inline = true;
        }
        auto value = [&]() -> const char * {
            if (have_inline)
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        const char *v = nullptr;
        if (arg == "--module") {
            if (!(v = value()))
                return false;
            if (!std::strcmp(v, "alu"))
                opt.module = ModuleKind::Alu32;
            else if (!std::strcmp(v, "fpu"))
                opt.module = ModuleKind::Fpu32;
            else if (!std::strcmp(v, "mdu"))
                opt.module = ModuleKind::Mdu32;
            else if (!std::strcmp(v, "mem"))
                opt.module = ModuleKind::MemDec16;
            else
                return false;
        } else if (arg == "--devices") {
            if (!(v = value()))
                return false;
            opt.fleet.num_devices = std::strtoull(v, nullptr, 10);
        } else if (arg == "--epochs") {
            if (!(v = value()))
                return false;
            opt.fleet.epochs =
                uint32_t(std::strtoull(v, nullptr, 10));
        } else if (arg == "--threads") {
            if (!(v = value()))
                return false;
            opt.fleet.threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            if (!(v = value()))
                return false;
            opt.fleet.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--budget") {
            if (!(v = value()))
                return false;
            opt.fleet.overhead_budget = std::strtod(v, nullptr);
        } else if (arg == "--slots") {
            if (!(v = value()))
                return false;
            opt.fleet.slots_per_epoch =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--corners") {
            if (!(v = value()))
                return false;
            opt.corners = v;
        } else if (arg == "--adversarial-fraction") {
            if (!(v = value()))
                return false;
            opt.fleet.adversarial_fraction = std::strtod(v, nullptr);
        } else if (arg == "--max-pairs") {
            if (!(v = value()))
                return false;
            opt.workflow_max_pairs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--out") {
            if (!(v = value()))
                return false;
            opt.out = v;
        } else if (arg == "--metrics-out") {
            if (!(v = value()))
                return false;
            opt.metrics_out = v;
        } else if (arg == "--smoke") {
            opt.smoke = true;
        } else {
            return false;
        }
    }
    return true;
}

bool
write_json(const std::string &path, const std::string &json)
{
    Expected<void> wrote = write_file_atomic(path, json + "\n");
    if (!wrote) {
        std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(),
                     wrote.error().to_string().c_str());
        return false;
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt;
    if (!parse_args(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }
    if (opt.smoke) {
        // Small enough for CI, big enough that every corner, mix, and
        // the adversarial slice are populated.
        opt.fleet.num_devices = 2000;
        opt.fleet.epochs = 4;
        opt.workflow_max_pairs =
            std::min<size_t>(opt.workflow_max_pairs, 4);
    }
    if (!opt.corners.empty()) {
        auto parsed = fleet::parse_corner_list(opt.corners);
        if (!parsed) {
            std::fprintf(stderr, "bad --corners: %s\n",
                         parsed.error().to_string().c_str());
            return 2;
        }
        opt.fleet.corners = std::move(*parsed);
    }

    std::printf("vega_fleet: module=%s devices=%llu epochs=%u "
                "threads=%zu seed=%llu budget=%.4f%s\n",
                module_kind_name(opt.module),
                (unsigned long long)opt.fleet.num_devices,
                opt.fleet.epochs, opt.fleet.threads,
                (unsigned long long)opt.fleet.seed,
                opt.fleet.overhead_budget,
                opt.smoke ? " [smoke]" : "");

    // Phase 1+2: the workflow lifts the aging error models and
    // generates the suite the whole fleet will run.
    HwModule module = make_module(opt.module);
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    WorkflowConfig wf_cfg;
    wf_cfg.aging.max_trace = 4000;
    wf_cfg.lift.max_pairs = opt.workflow_max_pairs;
    wf_cfg.lift.bmc.max_frames = 4;
    wf_cfg.lift.bmc.conflict_budget = 400000;
    wf_cfg.lift.formal_attempts = 2;
    wf_cfg.lift.formal_budget_growth = 4.0;
    wf_cfg.lift.degrade_to_fuzz = true;
    std::printf("running workflow (max_pairs=%zu)...\n",
                opt.workflow_max_pairs);
    const auto &trace = is_mem_module(opt.module) ? mem_workload_trace()
                                                  : minver_trace();
    WorkflowResult wf = run_workflow(module, lib, trace, wf_cfg);
    std::printf("workflow: %zu lifted pairs, %zu suite tests\n",
                wf.lift.pairs.size(), wf.suite.size());
    if (wf.suite.empty()) {
        std::printf("no tests lifted; nothing to deploy to a fleet\n");
        return 1;
    }

    // Characterize every fault class once; the fleet shares the matrix.
    std::vector<sta::EndpointPair> pairs;
    pairs.reserve(wf.lift.pairs.size());
    for (const auto &pr : wf.lift.pairs)
        pairs.push_back(pr.pair);
    const std::vector<lift::FaultConstant> constants = {
        lift::FaultConstant::Zero, lift::FaultConstant::One};
    std::printf("characterizing %zu fault classes against %zu "
                "tests...\n",
                pairs.size() * constants.size(), wf.suite.size());
    Expected<fleet::FaultMatrix> matrix = fleet::build_fault_matrix(
        module, pairs, wf.suite, constants, opt.fleet.threads,
        opt.fleet.seed);
    if (!matrix) {
        std::fprintf(stderr, "characterization failed: %s\n",
                     matrix.error().to_string().c_str());
        return 1;
    }
    std::printf("matrix: %zu classes, %zu detectable, %zu "
                "corrupting\n",
                matrix->faults.size(), matrix->detectable_classes(),
                matrix->corrupting_classes());

    // Mission mode: the fleet.
    Expected<fleet::FleetReport> run =
        fleet::run_fleet(opt.fleet, *matrix);
    if (!run) {
        std::fprintf(stderr, "fleet run failed: %s\n",
                     run.error().to_string().c_str());
        return 1;
    }
    fleet::FleetReport report = std::move(run).value();

    std::printf("\nfleet of %llu devices, %llu device-epochs:\n",
                (unsigned long long)report.num_devices,
                (unsigned long long)report.device_epochs);
    std::printf("  faulty       %llu (%llu detectable)\n",
                (unsigned long long)report.faulty_devices,
                (unsigned long long)report.detectable_faulty_devices);
    std::printf("  detected     %llu (%.1f%% of detectable)\n",
                (unsigned long long)report.detected_devices,
                100.0 * report.detection_rate());
    std::printf("  missed SDCs  %llu events on %llu devices "
                "(%llu prevented by detection)\n",
                (unsigned long long)report.silent_corruptions,
                (unsigned long long)report.missed_devices,
                (unsigned long long)report.prevented_corruptions);
    std::printf("  latency      p50=%.1f p95=%.1f p99=%.1f slots\n",
                report.latency_slots.p50, report.latency_slots.p95,
                report.latency_slots.p99);
    std::printf("  overhead     mean=%.5f p99=%.5f (budget %.5f)\n",
                report.mean_overhead(), report.overhead.p99,
                report.overhead_budget);
    std::printf("  adversarial  %llu devices, %llu faulty, %llu "
                "detected-before-corruption, %llu silently "
                "corrupted\n",
                (unsigned long long)report.adversarial_devices,
                (unsigned long long)report.adversarial_faulty,
                (unsigned long long)
                    report.adversarial_detected_before_corruption,
                (unsigned long long)
                    report.adversarial_silently_corrupted);
    std::printf("  %.2fs wall, %.0f device-epochs/s, %zu threads\n",
                report.timing.wall_seconds,
                report.timing.device_epochs_per_sec,
                report.timing.threads);

    if (!write_json(opt.out, report.to_json(true)))
        return 1;
    std::printf("report written to %s\n", opt.out.c_str());

    // The bench artifact drops timing: byte-identical for a fixed
    // seed across runs and thread counts, so it pins in CI. Smoke
    // runs write a sibling path and never touch the pinned file.
    std::string bench_path =
        opt.smoke ? "BENCH_fleet.smoke.json" : "BENCH_fleet.json";
    if (!write_json(bench_path, report.to_json(false)))
        return 1;
    std::printf("bench artifact written to %s\n", bench_path.c_str());

    if (!opt.metrics_out.empty()) {
        obs::MetricsSnapshot snap = obs::snapshot_metrics();
        if (!write_json(opt.metrics_out, snap.to_json()))
            return 1;
        std::printf("metrics written to %s\n",
                    opt.metrics_out.c_str());
    }
    return 0;
}
