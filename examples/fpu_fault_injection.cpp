/**
 * @file
 * Silent data corruption, end to end: run the minver kernel on a CPU
 * whose FPU carries an aging fault (a failing netlist from Error
 * Lifting) and watch the checksum silently corrupt — no trap, no log,
 * exactly the failure class the paper targets. Then show Vega's aging
 * library detecting the same fault and raising a catchable exception.
 */
#include <cstdio>

#include "cpu/netlist_backend.h"
#include "rtl/fpu32.h"
#include "vega/workflow.h"
#include "workloads/kernels.h"

using namespace vega;

namespace {

/** Engine that executes test blocks on the (failing) gate-level FPU. */
class FpuNetlistEngine : public runtime::Engine
{
  public:
    explicit FpuNetlistEngine(const Netlist &netlist)
        : backend_(ModuleKind::Fpu32, netlist)
    {
    }

    runtime::Detection
    run(const runtime::TestCase &tc) override
    {
        uint64_t tags = backend_.tag_mismatches();
        cpu::Iss iss(tc.program);
        iss.set_fpu_backend(&backend_);
        auto status = iss.run();
        if (status == cpu::Iss::Status::Stalled)
            return runtime::Detection::Stall;
        if (iss.reg(31) != 0)
            return runtime::Detection::Mismatch;
        if (backend_.tag_mismatches() > tags)
            return runtime::Detection::TagAnomaly;
        return runtime::Detection::None;
    }

  private:
    cpu::NetlistBackend backend_;
};

} // namespace

int
main()
{
    std::printf("=== Aging-related SDC demo on fpu32 ===\n\n");

    HwModule fpu = rtl::make_fpu32();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});

    // Vega's analysis finds the aging-prone pairs and builds tests.
    WorkflowConfig cfg;
    cfg.aging.max_trace = 4000;
    cfg.lift.max_pairs = 8;
    cfg.lift.bmc.max_frames = 4;
    WorkflowResult wf = run_workflow(fpu, lib, minver_trace(), cfg);
    std::printf("Vega generated %zu FPU tests from the %zu worst "
                "aging-prone pairs.\n\n",
                wf.suite.size(), size_t(8));
    if (wf.suite.empty())
        return 0;

    const workloads::Kernel &minver = workloads::embench_suite()[0];

    // Age one of those pairs into a real fault (C = 0 failing netlist),
    // preferring one whose corruption actually reaches this workload's
    // data — many do not, which is exactly why SDCs hide.
    auto make_failing = [&](const sta::EndpointPair &pair,
                            lift::FaultConstant c) {
        lift::FailureModelSpec spec;
        spec.launch = pair.launch;
        spec.capture = pair.capture;
        spec.is_setup = pair.is_setup;
        spec.constant = c;
        return lift::build_failing_netlist(fpu.netlist, spec);
    };
    lift::FailingNetlist failing = make_failing(
        wf.lift.pairs.front().pair, lift::FaultConstant::Zero);
    bool corrupts_minver = false;
    for (const auto &pr : wf.lift.pairs) {
        for (auto c :
             {lift::FaultConstant::One, lift::FaultConstant::Zero}) {
            lift::FailingNetlist candidate = make_failing(pr.pair, c);
            cpu::NetlistBackend backend(ModuleKind::Fpu32,
                                        candidate.netlist);
            cpu::Iss iss(minver.program);
            iss.set_fpu_backend(&backend);
            if (iss.run() == cpu::Iss::Status::Halted &&
                iss.read_u32(workloads::kChecksumAddr) !=
                    minver.expected_checksum) {
                failing = std::move(candidate);
                corrupts_minver = true;
                break;
            }
        }
        if (corrupts_minver)
            break;
    }
    if (!corrupts_minver)
        std::printf("(none of the modeled faults perturbs this "
                    "workload's data — one reason SDCs hide)\n");

    // Healthy run.
    {
        cpu::NetlistBackend backend(ModuleKind::Fpu32, fpu.netlist);
        cpu::Iss iss(minver.program);
        iss.set_fpu_backend(&backend);
        iss.run();
        std::printf("healthy FPU:  minver checksum %08x (expected "
                    "%08x) -- ok\n",
                    iss.read_u32(workloads::kChecksumAddr),
                    minver.expected_checksum);
    }

    // Aged run: the corruption is silent.
    {
        cpu::NetlistBackend backend(ModuleKind::Fpu32, failing.netlist);
        cpu::Iss iss(minver.program);
        iss.set_fpu_backend(&backend);
        auto status = iss.run();
        uint32_t checksum = iss.read_u32(workloads::kChecksumAddr);
        std::printf("aged FPU:     minver checksum %08x (expected %08x) "
                    "-- %s, program %s\n",
                    checksum, minver.expected_checksum,
                    checksum == minver.expected_checksum ? "ok"
                                                         : "CORRUPTED",
                    status == cpu::Iss::Status::Halted
                        ? "finished normally (silent!)"
                        : "stalled");
    }

    // Vega's library catches it and raises a handleable exception.
    runtime::AgingLibraryOptions opt;
    opt.throw_on_detect = true;
    runtime::AgingLibrary library(wf.suite, opt);
    FpuNetlistEngine aged_engine(failing.netlist);
    std::printf("\nrunning the Vega aging library on the aged FPU...\n");
    try {
        library.run_all(aged_engine);
        std::printf("no detection (unexpected for this fault)\n");
    } catch (const runtime::HardwareFaultError &e) {
        std::printf("caught HardwareFaultError: %s\n", e.what());
        std::printf("the application can now fail over before silent "
                    "corruption spreads.\n");
    }
    return 0;
}
