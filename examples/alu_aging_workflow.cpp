/**
 * @file
 * End-to-end Vega workflow on the 32-bit RISC-V ALU: Aging Analysis →
 * Error Lifting → aging-library packaging, printing the artifacts a
 * deployment would ship — including the generated RISC-V assembly and
 * the §3.4.1 C source with inline-asm test cases.
 */
#include <cstdio>

#include "rtl/alu32.h"
#include "vega/workflow.h"

using namespace vega;

int
main()
{
    std::printf("=== Vega workflow on alu32 ===\n\n");

    HwModule alu = rtl::make_alu32();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});

    WorkflowConfig cfg;
    cfg.aging.utilization = 0.985;
    cfg.aging.max_trace = 4000;
    cfg.lift.bmc.max_frames = 4;

    WorkflowResult r = run_workflow(alu, lib, minver_trace(), cfg);

    std::printf("Phase 1 (Aging Analysis, 10 years, minver workload):\n");
    std::printf("  fresh:  setup WNS %.1f ps (timing closed)\n",
                r.aging.fresh_sta.wns_setup);
    std::printf("  aged:   setup WNS %.1f ps, %zu violating paths, %zu "
                "unique pairs\n\n",
                r.aging.sta.wns_setup, r.aging.sta.num_setup_violations,
                r.aging.sta.pairs.size());

    std::printf("Phase 2 (Error Lifting): S=%zu UR=%zu FF=%zu FC=%zu -> "
                "%zu tests, %lu cycles/pass\n\n",
                r.lift.n_success, r.lift.n_unreachable, r.lift.n_timeout,
                r.lift.n_conversion_failed, r.suite.size(),
                (unsigned long)r.lift.suite_cycles());

    if (r.suite.empty())
        return 0;

    std::printf("generated RISC-V block for '%s' (%lu cycles):\n%s\n",
                r.suite.front().name.c_str(),
                (unsigned long)r.suite.front().cycle_cost,
                r.suite.front().assembly().c_str());

    std::printf("Phase 3 (Test Integration): the aging library.\n");
    runtime::AgingLibraryOptions opt;
    opt.policy = runtime::SchedulePolicy::Random;
    runtime::AgingLibrary library = r.make_library(opt);
    runtime::GoldenEngine engine;
    runtime::Detection det = library.run_all(engine);
    std::printf("  healthy hardware, one full pass: %s (%zu tests, %lu "
                "cycles)\n",
                runtime::detection_name(det), library.num_tests(),
                (unsigned long)library.suite_cycles());

    std::string c_source = library.generate_c_source();
    std::printf("  generated C library source: %zu bytes; preview:\n",
                c_source.size());
    size_t pos = 0;
    for (int line = 0; line < 12 && pos != std::string::npos; ++line) {
        size_t next = c_source.find('\n', pos);
        std::printf("    %s\n",
                    c_source.substr(pos, next - pos).c_str());
        pos = next == std::string::npos ? next : next + 1;
    }
    std::printf("    ...\n");
    return 0;
}
