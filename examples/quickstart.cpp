/**
 * @file
 * Quickstart: the paper's §3 walkthrough on the Listing-1 adder.
 *
 * Builds the 2-bit pipelined adder (Figure 3), profiles signal
 * probability (Table 1), runs aging-aware STA to find the violating
 * paths of §3.2.2, instruments the Figure 5/7 failure model + shadow
 * replica, has the formal engine produce the Table-2-style cover trace,
 * and exports the failing netlist as Verilog.
 */
#include <cstdio>

#include "common/rng.h"
#include "formal/bmc.h"
#include "lift/failure_model.h"
#include "netlist/verilog_writer.h"
#include "rtl/adder2.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

using namespace vega;

int
main()
{
    std::printf("=== Vega quickstart: the Listing-1 2-bit adder ===\n\n");

    // ---- The module (Figure 3) -----------------------------------------
    HwModule adder = rtl::make_adder2();
    std::printf("netlist '%s': %zu cells, clock %0.f ps\n",
                adder.netlist.name().c_str(), adder.netlist.num_cells(),
                adder.netlist.clock_period_ps());

    // ---- Phase 1a: signal probability simulation (Table 1) -------------
    Simulator sim(adder.netlist);
    Rng rng(42);
    SpProfile profile = profile_signal_probability(
        sim, 2000, [&](Simulator &s, uint64_t) {
            // A workload that rarely drives b's high bit: cell $7 parks.
            s.set_bus("a", BitVec(2, rng.below(4)));
            s.set_bus("b", BitVec(2, rng.chance(0.9) ? rng.below(2)
                                                     : rng.below(4)));
        });
    std::printf("\nSP profile (cf. paper Table 1):\n");
    for (CellId c = 0; c < adder.netlist.num_cells(); ++c)
        std::printf("  %-4s %-5s SP=%.2f\n",
                    adder.netlist.cell(c).name.c_str(),
                    cell_type_name(adder.netlist.cell(c).type),
                    profile.sp(c));

    // ---- Phase 1b: aging-aware STA --------------------------------------
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    sta::calibrate_timing_scale(adder, lib, 0.99);
    sta::AgedTiming aged = sta::compute_aged_timing(adder, profile, lib,
                                                    10.0);
    sta::StaResult sta = sta::run_sta(adder, aged);
    std::printf("\naged STA (10 years): setup WNS %.1f ps, %zu violating "
                "paths, %zu unique pairs\n",
                sta.wns_setup, sta.num_setup_violations, sta.pairs.size());
    if (sta.pairs.empty()) {
        std::printf("no violations — nothing to lift\n");
        return 0;
    }
    const sta::EndpointPair &pair = sta.pairs.front();
    std::printf("worst pair: %s -> %s (%s)\n",
                adder.netlist.cell(pair.launch).name.c_str(),
                adder.netlist.cell(pair.capture).name.c_str(),
                pair.is_setup ? "setup" : "hold");

    // ---- Phase 2: failure model + shadow replica + cover trace ---------
    lift::FailureModelSpec spec;
    spec.launch = pair.launch;
    spec.capture = pair.capture;
    spec.is_setup = pair.is_setup;
    spec.constant = lift::FaultConstant::One;
    lift::ShadowInstrumentation shadow =
        lift::build_shadow_instrumentation(adder.netlist, spec);

    formal::BmcOptions opts;
    opts.max_frames = 6;
    opts.state_equalities = shadow.state_pairs;
    formal::BmcResult bmc =
        formal::check_cover(shadow.netlist, shadow.mismatch, opts);
    std::printf("\ncover property 'o != o_s': %s",
                formal::bmc_status_name(bmc.status));
    if (bmc.status == formal::BmcStatus::Covered) {
        std::printf(" in %d cycles (cf. paper Table 2):\n\n%s", bmc.frames,
                    bmc.trace.to_table().c_str());
    }
    std::printf("\n");

    // ---- Byproduct: the circuit-level failure model as Verilog ---------
    lift::FailingNetlist failing =
        lift::build_failing_netlist(adder.netlist, spec);
    std::string verilog = to_verilog(failing.netlist);
    std::printf("failing netlist exports as %zu bytes of synthesizable "
                "Verilog (first line:\n  %s)\n",
                verilog.size(),
                verilog.substr(0, verilog.find('\n')).c_str());
    return 0;
}
