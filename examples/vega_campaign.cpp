/**
 * @file
 * CLI driver for the fault-injection campaign engine: runs the Vega
 * workflow on a chosen functional unit, then fans a Monte Carlo
 * injection campaign out over a work-stealing thread pool and writes
 * the structured CampaignReport as JSON.
 *
 *   vega_campaign --module alu --jobs 512 --threads 8 \
 *                 --seed 7 --out campaign_report.json
 *
 * The same seed yields a bit-identical report (timing aside) at any
 * thread count, so campaign results are citable and diffable.
 *
 * Fleet mode shards one campaign across processes, each with a
 * checksummed crash-safe journal, merged by an integrity-verifying
 * aggregator (docs/ARCHITECTURE.md "Sharded campaigns"):
 *
 *   vega_campaign --jobs 512 --shards 4 --shard-id K --journal-dir D
 *       # for K = 0..3, any order, any machines sharing D; kill and
 *       # --resume any shard freely
 *   vega_campaign --aggregate D --out fleet_report.json
 *
 * The aggregated report is byte-identical to an unsharded run of the
 * same campaign (timing aside — use --no-timing to diff).
 */
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "campaign/aggregator.h"
#include "campaign/campaign.h"
#include "campaign/shard.h"
#include "common/fs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vega/workflow.h"

using namespace vega;

namespace {

struct CliOptions
{
    ModuleKind module = ModuleKind::Alu32;
    campaign::CampaignConfig campaign;
    size_t workflow_max_pairs = 8;
    std::string out = "campaign_report.json";
    std::string trace_out;
    std::string metrics_out;
    std::string journal_dir;
    std::string aggregate_dir;
    std::string manifest_out;
    bool metrics_summary = false;
    bool quiet = false;
    bool per_job_json = true;
    bool include_timing = true;
};

void
usage(const char *argv0)
{
    std::printf(
        "usage: %s [options]\n"
        "  --module alu|fpu|mdu|mem  module under campaign "
        "(default alu)\n"
        "  --jobs N               injection jobs to run (default 256)\n"
        "  --threads N            worker threads, 0 = all cores "
        "(default 1)\n"
        "  --seed S               campaign seed (default 1)\n"
        "  --probability P        probabilistic-policy dispatch rate "
        "(default 0.5)\n"
        "  --max-pairs N          cap on lifted endpoint pairs "
        "(default 8)\n"
        "  --max-slots N          per-job scheduler slot budget "
        "(default 2x suite)\n"
        "  --out FILE             report path (default "
        "campaign_report.json)\n"
        "  --journal FILE         checkpoint completed jobs to FILE "
        "(crash-safe)\n"
        "  --journal-flush-every N  journal group-commit size "
        "(default 16)\n"
        "  --resume               reload the journal and skip "
        "recorded jobs\n"
        "  --retries N            attempts per job before quarantine "
        "(default 3)\n"
        "  --shards N             split the campaign across N worker "
        "processes\n"
        "  --shard-id K           which shard this process runs "
        "(0..N-1)\n"
        "  --journal-dir DIR      per-shard checksummed journals in "
        "DIR (shard-K-of-N.journal)\n"
        "  --aggregate DIR        merge + verify the shard journals "
        "in DIR; no jobs run\n"
        "  --manifest FILE        integrity-manifest path (default "
        "<out>.manifest.json)\n"
        "  --kill-after N         raise SIGKILL after N completed "
        "jobs (kill-and-resume testing)\n"
        "  --scalar               one netlist simulation per job "
        "instead of 64-episode waves (same report, slower)\n"
        "  --no-timing            omit wall-clock timing from the "
        "JSON (diffable reports)\n"
        "  --trace-out FILE       write a Chrome trace-event JSON "
        "(open in Perfetto)\n"
        "  --metrics-out FILE     write the metrics registry snapshot "
        "as JSON\n"
        "  --metrics              print a metrics summary to stderr "
        "at exit\n"
        "  --aggregate-only       omit the per-job array from the "
        "JSON\n"
        "  --quiet                suppress progress lines\n"
        "options also accept the --flag=value form\n",
        argv0);
}

bool
parse_args(int argc, char **argv, CliOptions &opt)
{
    for (int i = 1; i < argc; ++i) {
        // Accept both `--flag value` and `--flag=value`.
        std::string arg = argv[i];
        std::string inline_value;
        bool have_inline = false;
        size_t eq = arg.find('=');
        if (arg.compare(0, 2, "--") == 0 && eq != std::string::npos) {
            inline_value = arg.substr(eq + 1);
            arg.erase(eq);
            have_inline = true;
        }
        auto value = [&]() -> const char * {
            if (have_inline)
                return inline_value.c_str();
            return i + 1 < argc ? argv[++i] : nullptr;
        };
        if (arg == "--module") {
            const char *v = value();
            if (!v)
                return false;
            if (!std::strcmp(v, "alu"))
                opt.module = ModuleKind::Alu32;
            else if (!std::strcmp(v, "fpu"))
                opt.module = ModuleKind::Fpu32;
            else if (!std::strcmp(v, "mdu"))
                opt.module = ModuleKind::Mdu32;
            else if (!std::strcmp(v, "mem"))
                opt.module = ModuleKind::MemDec16;
            else
                return false;
        } else if (arg == "--jobs") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.num_jobs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--threads") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.threads = std::strtoull(v, nullptr, 10);
        } else if (arg == "--seed") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.seed = std::strtoull(v, nullptr, 10);
        } else if (arg == "--probability") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.probability = std::strtod(v, nullptr);
        } else if (arg == "--max-pairs") {
            const char *v = value();
            if (!v)
                return false;
            opt.workflow_max_pairs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--max-slots") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.max_slots = std::strtoull(v, nullptr, 10);
        } else if (arg == "--out") {
            const char *v = value();
            if (!v)
                return false;
            opt.out = v;
        } else if (arg == "--journal") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.journal_path = v;
        } else if (arg == "--journal-flush-every") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.journal_flush_every =
                std::strtoull(v, nullptr, 10);
        } else if (arg == "--resume") {
            opt.campaign.resume = true;
        } else if (arg == "--shards") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.num_shards = std::strtoull(v, nullptr, 10);
        } else if (arg == "--shard-id") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.shard_id = std::strtoull(v, nullptr, 10);
        } else if (arg == "--journal-dir") {
            const char *v = value();
            if (!v)
                return false;
            opt.journal_dir = v;
        } else if (arg == "--aggregate") {
            const char *v = value();
            if (!v)
                return false;
            opt.aggregate_dir = v;
        } else if (arg == "--manifest") {
            const char *v = value();
            if (!v)
                return false;
            opt.manifest_out = v;
        } else if (arg == "--kill-after") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.kill_after_jobs = std::strtoull(v, nullptr, 10);
        } else if (arg == "--scalar") {
            opt.campaign.wave_execution = false;
        } else if (arg == "--no-timing") {
            opt.include_timing = false;
        } else if (arg == "--trace-out") {
            const char *v = value();
            if (!v)
                return false;
            opt.trace_out = v;
        } else if (arg == "--metrics-out") {
            const char *v = value();
            if (!v)
                return false;
            opt.metrics_out = v;
        } else if (arg == "--metrics") {
            opt.metrics_summary = true;
        } else if (arg == "--retries") {
            const char *v = value();
            if (!v)
                return false;
            opt.campaign.max_job_attempts =
                int(std::strtol(v, nullptr, 10));
        } else if (arg == "--aggregate-only") {
            opt.per_job_json = false;
        } else if (arg == "--quiet") {
            opt.quiet = true;
        } else {
            return false;
        }
    }
    // User errors exit via usage, not via the engine's invariant checks.
    if (!opt.aggregate_dir.empty())
        return true;
    if (opt.campaign.num_shards == 0 ||
        opt.campaign.shard_id >= opt.campaign.num_shards)
        return false;
    // A sharded run without a journal could never be aggregated.
    if (opt.campaign.num_shards > 1 && opt.journal_dir.empty() &&
        opt.campaign.journal_path.empty())
        return false;
    if (!opt.journal_dir.empty())
        opt.campaign.journal_path = campaign::shard_journal_path(
            opt.journal_dir, opt.campaign.shard_id,
            opt.campaign.num_shards);
    return opt.campaign.num_jobs > 0;
}

/** --aggregate mode: merge + verify shard journals; no jobs run. */
int
run_aggregate(const CliOptions &opt)
{
    std::printf("vega_campaign: aggregating shard journals in %s\n",
                opt.aggregate_dir.c_str());
    Expected<campaign::AggregateResult> agg =
        campaign::aggregate_shard_dir(opt.aggregate_dir);
    if (!agg) {
        std::fprintf(stderr, "aggregation refused: %s\n",
                     agg.error().to_string().c_str());
        return 1;
    }
    const campaign::IntegrityManifest &m = agg->manifest;
    std::printf("verified %llu shards, %llu job + %llu quarantine "
                "records:\n",
                (unsigned long long)m.num_shards,
                (unsigned long long)m.total_completed,
                (unsigned long long)m.total_failed);
    for (const campaign::ShardVerdict &s : m.shards)
        std::printf("  shard %llu: %llu jobs, %llu failed, crc %s — "
                    "%s\n",
                    (unsigned long long)s.shard_id,
                    (unsigned long long)s.completed,
                    (unsigned long long)s.failed,
                    crc32c_hex(s.crc).c_str(), s.detail.c_str());

    const campaign::CampaignReport &report = agg->report;
    std::printf("fleet totals: %zu jobs, %llu detected, %llu SDC "
                "escapes, %llu quarantined\n",
                report.jobs.size(), (unsigned long long)report.detected,
                (unsigned long long)report.escapes,
                (unsigned long long)report.failed);

    // Timing is always omitted: an aggregate has no single wall clock,
    // and this keeps the report diffable against an unsharded run.
    std::string json = report.to_json(false, opt.per_job_json);
    Expected<void> wrote = write_file_atomic(opt.out, json + "\n");
    if (!wrote) {
        std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                     wrote.error().to_string().c_str());
        return 1;
    }
    std::printf("report written to %s\n", opt.out.c_str());

    std::string manifest_path = opt.manifest_out.empty()
                                    ? opt.out + ".manifest.json"
                                    : opt.manifest_out;
    wrote = write_file_atomic(manifest_path, m.to_json() + "\n");
    if (!wrote) {
        std::fprintf(stderr, "cannot write %s: %s\n",
                     manifest_path.c_str(),
                     wrote.error().to_string().c_str());
        return 1;
    }
    std::printf("integrity manifest written to %s\n",
                manifest_path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions opt;
    if (!parse_args(argc, argv, opt)) {
        usage(argv[0]);
        return 2;
    }
    opt.campaign.progress = !opt.quiet;

    if (!opt.aggregate_dir.empty())
        return run_aggregate(opt);

    if (!opt.journal_dir.empty()) {
        Expected<void> made = make_dirs(opt.journal_dir);
        if (!made) {
            std::fprintf(stderr, "cannot create %s: %s\n",
                         opt.journal_dir.c_str(),
                         made.error().to_string().c_str());
            return 1;
        }
    }

    // Tracing must be live before the workflow so SAT/BMC/STA spans
    // from campaign setup land in the same trace as the jobs.
    if (!opt.trace_out.empty())
        obs::trace_enable();

    std::printf("vega_campaign: module=%s jobs=%zu threads=%zu "
                "seed=%llu\n",
                module_kind_name(opt.module), opt.campaign.num_jobs,
                opt.campaign.threads,
                (unsigned long long)opt.campaign.seed);

    // Phase 1+2: workflow — aging analysis and error lifting produce
    // the endpoint pairs and the runtime suite the campaign screens
    // faults with.
    HwModule module = make_module(opt.module);
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    WorkflowConfig wf_cfg;
    wf_cfg.aging.max_trace = 4000;
    wf_cfg.lift.max_pairs = opt.workflow_max_pairs;
    wf_cfg.lift.bmc.max_frames = 4;
    // The bench-suite budget: hard unreachability proofs give up as
    // Timeout instead of stalling the campaign setup — after climbing
    // the retry ladder (escalating budgets, then a fuzz fallback)
    // rather than on the first stall.
    wf_cfg.lift.bmc.conflict_budget = 400000;
    wf_cfg.lift.formal_attempts = 2;
    wf_cfg.lift.formal_budget_growth = 4.0;
    wf_cfg.lift.degrade_to_fuzz = true;
    std::printf("running workflow (max_pairs=%zu)...\n",
                opt.workflow_max_pairs);
    const auto &trace = is_mem_module(opt.module) ? mem_workload_trace()
                                                  : minver_trace();
    WorkflowResult wf = run_workflow(module, lib, trace, wf_cfg);
    std::printf("workflow: %zu lifted pairs, %zu suite tests\n",
                wf.lift.pairs.size(), wf.suite.size());
    if (wf.suite.empty()) {
        std::printf("no tests lifted; nothing to campaign against\n");
        return 1;
    }

    // Phase 3 at scale: the injection campaign.
    std::vector<sta::EndpointPair> pairs;
    pairs.reserve(wf.lift.pairs.size());
    for (const auto &pr : wf.lift.pairs)
        pairs.push_back(pr.pair);
    Expected<campaign::CampaignReport> run = campaign::try_run_campaign(
        module, pairs, wf.suite, opt.campaign);
    if (!run) {
        std::fprintf(stderr, "campaign failed: %s\n",
                     run.error().to_string().c_str());
        return 1;
    }
    campaign::CampaignReport report = std::move(run).value();

    std::printf("\ncampaign totals over %zu jobs:\n",
                report.jobs.size());
    std::printf("  detected    %llu (%.1f%%)\n",
                (unsigned long long)report.detected,
                100.0 * report.detection_rate());
    std::printf("  corrupting  %llu\n",
                (unsigned long long)report.corrupting);
    std::printf("  SDC escapes %llu (%.1f%% of corrupting)\n",
                (unsigned long long)report.escapes,
                100.0 * report.escape_rate());
    std::printf("  benign      %llu\n",
                (unsigned long long)report.benign);
    if (report.failed)
        std::printf("  quarantined %llu (see failed_jobs in the "
                    "report)\n",
                    (unsigned long long)report.failed);
    std::printf("  mean detection latency %.2f scheduler slots\n",
                report.mean_latency_slots());
    std::printf("  %.2fs wall, %.1f jobs/s, %.0f sims/s, %zu "
                "threads, %llu steals, peak queue %llu\n",
                report.timing.wall_seconds, report.timing.jobs_per_sec,
                report.timing.sims_per_sec, report.timing.threads,
                (unsigned long long)report.timing.steals,
                (unsigned long long)report.timing.peak_queue_depth);
    if (report.timing.journal_flushes)
        std::printf("  journal: %llu flushes, %llu bytes\n",
                    (unsigned long long)report.timing.journal_flushes,
                    (unsigned long long)report.timing.journal_bytes);

    // Write-temp-then-rename: a crash mid-write never leaves a
    // truncated report where a previous good one stood.
    std::string json = report.to_json(opt.include_timing,
                                      opt.per_job_json);
    Expected<void> wrote = write_file_atomic(opt.out, json + "\n");
    if (!wrote) {
        std::fprintf(stderr, "cannot write %s: %s\n", opt.out.c_str(),
                     wrote.error().to_string().c_str());
        return 1;
    }
    std::printf("report written to %s\n", opt.out.c_str());

    // Observability exports come last so they cover the whole run.
    if (!opt.trace_out.empty()) {
        Expected<void> tw = obs::write_chrome_trace(opt.trace_out);
        if (!tw) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         opt.trace_out.c_str(),
                         tw.error().to_string().c_str());
            return 1;
        }
        uint64_t dropped = obs::trace_dropped();
        std::printf("trace written to %s%s\n", opt.trace_out.c_str(),
                    dropped ? " (ring overflow: oldest spans dropped)"
                            : "");
    }
    if (!opt.metrics_out.empty()) {
        obs::MetricsSnapshot snap = obs::snapshot_metrics();
        Expected<void> mw =
            write_file_atomic(opt.metrics_out, snap.to_json() + "\n");
        if (!mw) {
            std::fprintf(stderr, "cannot write %s: %s\n",
                         opt.metrics_out.c_str(),
                         mw.error().to_string().c_str());
            return 1;
        }
        std::printf("metrics written to %s\n", opt.metrics_out.c_str());
    }
    if (opt.metrics_summary)
        std::fputs(obs::snapshot_metrics().summary().c_str(), stderr);
    return 0;
}
