/**
 * @file
 * Runtime monitoring, both integration styles of §3.4:
 *
 *  1. Library-based: an application's main loop calls run_next() each
 *     iteration (the "execute per second" deployment), with sequential,
 *     random, and probabilistic scheduling.
 *  2. Profile-guided: the crc32 kernel is instrumented automatically —
 *     profile, insertion-point selection, overhead-throttled dispatch —
 *     without touching its source.
 */
#include <cstdio>

#include "integrate/integrator.h"
#include "rtl/alu32.h"
#include "vega/workflow.h"
#include "workloads/kernels.h"

using namespace vega;

int
main()
{
    HwModule alu = rtl::make_alu32();
    auto lib = aging::AgingTimingLibrary::build(aging::RdModelParams{});
    WorkflowConfig cfg;
    cfg.aging.max_trace = 4000;
    cfg.lift.bmc.max_frames = 4;
    WorkflowResult wf = run_workflow(alu, lib, minver_trace(), cfg);
    std::printf("suite: %zu ALU tests, %lu cycles per full pass\n\n",
                wf.suite.size(), (unsigned long)wf.lift.suite_cycles());
    if (wf.suite.empty())
        return 0;

    // ---- Style 1: the aging library inside an application loop --------
    for (auto policy : {runtime::SchedulePolicy::Sequential,
                        runtime::SchedulePolicy::Random,
                        runtime::SchedulePolicy::Probabilistic}) {
        runtime::AgingLibraryOptions opt;
        opt.policy = policy;
        opt.probability = 0.25;
        runtime::AgingLibrary library(wf.suite, opt);
        runtime::GoldenEngine engine;

        // The "application": 200 work iterations, one test slot each.
        for (int iter = 0; iter < 200; ++iter)
            (void)library.run_next(engine);
        std::printf("%-14s scheduling: %lu slots -> %lu tests run, %lu "
                    "detections\n",
                    runtime::schedule_policy_name(policy),
                    (unsigned long)200, (unsigned long)library.runs(),
                    (unsigned long)library.detections());
    }

    // ---- Style 2: profile-guided integration ---------------------------
    std::printf("\nprofile-guided integration of the suite into crc32:\n");
    const workloads::Kernel &crc = workloads::embench_suite()[1];
    integrate::Profile profile = integrate::profile_program(crc.program);
    integrate::IntegrationConfig icfg;
    icfg.overhead_threshold = 0.01;
    integrate::IntegrationResult ir =
        integrate::integrate_tests(crc.program, profile, wf.suite, icfg);

    std::printf("  insertion point: instruction %zu (block executed %lu "
                "times)\n",
                ir.insertion_point, (unsigned long)ir.block_count);
    std::printf("  IR-count overhead estimate %.1f%%, throttled to "
                "dispatch probability %.4f\n",
                100.0 * ir.estimated_overhead, ir.probability);

    cpu::Iss base(crc.program);
    base.run();
    cpu::Iss inst(ir.program);
    inst.run();
    std::printf("  measured overhead: %.2f%% (baseline %lu cycles, "
                "instrumented %lu)\n",
                100.0 * (double(inst.cycles()) / double(base.cycles()) -
                         1.0),
                (unsigned long)base.cycles(),
                (unsigned long)inst.cycles());
    std::printf("  checksum preserved: %s\n",
                inst.read_u32(workloads::kChecksumAddr) ==
                        crc.expected_checksum
                    ? "yes"
                    : "NO");
    return 0;
}
