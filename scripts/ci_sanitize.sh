#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer + UBSanitizer.
#
# Mirrors the plain tier-1 job (`cmake -B build && ctest`) but with
# VEGA_SANITIZE=ON, so memory and UB bugs in the fault-tolerance paths
# (journal parsing, campaign retry, escalation ladder) fail CI instead
# of shipping. Usage:
#
#   scripts/ci_sanitize.sh [extra ctest args...]
#
# Uses the `sanitize` preset from CMakePresets.json when the local
# CMake is new enough, and falls back to explicit flags otherwise.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-sanitize"
jobs="$(nproc 2>/dev/null || echo 4)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVEGA_SANITIZE=ON
cmake --build "$build" -j "$jobs"
# The observability layer, the fleet simulator, and the sharded
# journal/aggregator stack are the most concurrency- and
# integrity-critical code in the tree (sharded counters, trace rings,
# the lock-light pool, the chunked device fan-out, checksummed
# crash-safe journals); run their focused tests first so a data race
# or torn-write bug there fails fast and readably.
ctest --test-dir "$build" --output-on-failure \
    -R 'Obs|ThreadPool|Fleet|Shard|Crc32c|Journal' -j "$jobs"
# Memory-path substrate next: the decoder netlist, wrong-address fault
# lifting, the faulty-memory ISS backend, and the march-test engine
# lean hard on index arithmetic and bit manipulation — exactly what
# ASan/UBSan catch. The `mem` label covers vega_mem_tests plus the
# mem_substrate bench smoke (decoder aging -> march detection).
ctest --test-dir "$build" --output-on-failure -L mem -j "$jobs"
# Bench smoke: runs bench/sim_throughput --smoke (lockstep-checks the
# scalar/tape/batch simulator engines under the sanitizers),
# bench/bmc_throughput --smoke (cross-checks the scratch and
# incremental BMC engines query-by-query), bench/fleet_throughput
# --smoke (thread-count byte-identity of the fleet engine),
# bench/campaign_scaling --smoke (thread-count byte-identity of the
# campaign engine), bench/mem_substrate --smoke (decoder lifting and
# march detection), and tools/vega_fleet --smoke (a tiny end-to-end
# mission-mode run), then validates every emitted BENCH_*.smoke.json
# with vega_json_check. Smoke artifacts live beside — never over — the
# pinned BENCH_*.json.
ctest --test-dir "$build" --output-on-failure -L bench-smoke -j "$jobs"

# Portfolio determinism gate: the CoverBatch corpus tests assert that
# suite-level batched cover solving returns byte-identical results
# (status, frames, induction depth, witness waveforms) at 1, 2, and 8
# portfolio threads and under target-order permutation, against the
# per-query oracle. Clause sharing and work partitioning must never
# leak into verdicts; run the gate focused so a divergence fails
# readably before the full suite.
ctest --test-dir "$build" --output-on-failure \
    -R 'CoverBatch|SatSolver' -j "$jobs"
echo "ci_sanitize: portfolio determinism gate clean"

# Thread-scaling gate: the campaign engine must actually scale where
# the hardware can scale. campaign_scaling --smoke adds an 8-thread
# run whenever the box has >= 8 hardware threads; on smaller runners
# (including 1-core containers) an 8-thread speedup is physically
# meaningless, so the gate reports and skips instead of lying.
scaling_dir="$build/ci-scaling"
rm -rf "$scaling_dir"
mkdir -p "$scaling_dir"
(cd "$scaling_dir" && "$build/bench/campaign_scaling" --smoke)
scaling_json="$scaling_dir/BENCH_campaign.smoke.json"
hw="$(sed -n 's/.*"hardware_concurrency":\([0-9]*\).*/\1/p' "$scaling_json")"
if [ "${hw:-0}" -ge 8 ]; then
    speedup8="$(sed -n 's/.*"threads":8,[^}]*"speedup":\([0-9.]*\).*/\1/p' \
        "$scaling_json")"
    if ! awk -v s="${speedup8:-0}" 'BEGIN { exit !(s >= 3.0) }'; then
        echo "ci_sanitize: 8-thread campaign speedup ${speedup8:-?}x < 3x" >&2
        exit 1
    fi
    echo "ci_sanitize: 8-thread campaign speedup ${speedup8}x >= 3x"
else
    echo "ci_sanitize: ${hw:-0} hardware threads; skipping 8-thread speedup gate"
fi

# Sharded kill-and-resume end-to-end, with a real SIGKILL: run the same
# small campaign (a) single-process and (b) as 4 shard processes where
# shard 1 is SIGKILLed mid-run (--kill-after raises SIGKILL from inside
# the worker) and then resumed. The aggregated report must be
# byte-identical to the single-process one, and the aggregator must
# refuse the fleet while the killed shard's journal lacks its trailer.
fleet_dir="$build/ci-fleet"
rm -rf "$fleet_dir"
mkdir -p "$fleet_dir"
campaign="$build/examples/vega_campaign"
common_args=(--module alu --jobs 24 --seed 7 --max-pairs 2 --quiet
             --no-timing)
"$campaign" "${common_args[@]}" --out "$fleet_dir/single.json"
for k in 0 2 3; do
    "$campaign" "${common_args[@]}" --shards 4 --shard-id "$k" \
        --journal-dir "$fleet_dir/shards" --out "$fleet_dir/shard$k.json"
done
# Shard 1: flush every record, SIGKILL after 3 completed jobs.
"$campaign" "${common_args[@]}" --shards 4 --shard-id 1 \
    --journal-dir "$fleet_dir/shards" --journal-flush-every 1 \
    --kill-after 3 --out "$fleet_dir/shard1.json" && {
    echo "ci_sanitize: shard 1 survived its SIGKILL" >&2
    exit 1
}
# The aggregator must refuse the incomplete fleet...
if "$campaign" --aggregate "$fleet_dir/shards" \
    --out "$fleet_dir/premature.json"; then
    echo "ci_sanitize: aggregator merged an incomplete shard" >&2
    exit 1
fi
# ...until the killed shard is resumed.
"$campaign" "${common_args[@]}" --shards 4 --shard-id 1 \
    --journal-dir "$fleet_dir/shards" --resume \
    --out "$fleet_dir/shard1.json"
"$campaign" --aggregate "$fleet_dir/shards" \
    --out "$fleet_dir/aggregated.json"
diff "$fleet_dir/single.json" "$fleet_dir/aggregated.json"
"$build/tools/vega_json_check" "$fleet_dir/aggregated.json.manifest.json" \
    --require integrity --require shards
echo "ci_sanitize: sharded kill-and-resume aggregate is byte-identical"

ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"

# Concurrency pass under ThreadSanitizer (its own tree: TSan cannot
# share a process with ASan). Focused on the code where a missed lock
# becomes silent corruption — the campaign engine's wave dispatch and
# group-commit journaling, the work-stealing pool, the sharded
# aggregator, the observability counters/rings, and the CoverBatch
# clause-sharing portfolio (worker mailboxes, shared netlist caches).
tsan="$repo/build-tsan"
cmake -S "$repo" -B "$tsan" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVEGA_TSAN=ON
cmake --build "$tsan" -j "$jobs" --target vega_tests
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}" \
    ctest --test-dir "$tsan" --output-on-failure \
    -R 'Campaign|WaveCampaign|ThreadPool|ShardFleet|Obs|CoverBatch' \
    -j "$jobs"
echo "ci_sanitize: ThreadSanitizer campaign/pool/portfolio pass clean"
