#!/usr/bin/env bash
# Tier-1 test suite under AddressSanitizer + UBSanitizer.
#
# Mirrors the plain tier-1 job (`cmake -B build && ctest`) but with
# VEGA_SANITIZE=ON, so memory and UB bugs in the fault-tolerance paths
# (journal parsing, campaign retry, escalation ladder) fail CI instead
# of shipping. Usage:
#
#   scripts/ci_sanitize.sh [extra ctest args...]
#
# Uses the `sanitize` preset from CMakePresets.json when the local
# CMake is new enough, and falls back to explicit flags otherwise.
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="$repo/build-sanitize"
jobs="$(nproc 2>/dev/null || echo 4)"

export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=1:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1:halt_on_error=1}"

cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DVEGA_SANITIZE=ON
cmake --build "$build" -j "$jobs"
# The observability layer and the fleet simulator are the most
# concurrency-heavy code in the tree (sharded counters, trace rings,
# the lock-light pool, the chunked device fan-out); run their focused
# tests first so a data race there fails fast and readably.
ctest --test-dir "$build" --output-on-failure -R 'Obs|ThreadPool|Fleet' \
    -j "$jobs"
# Bench smoke: runs bench/sim_throughput --smoke (lockstep-checks the
# scalar/tape/batch simulator engines under the sanitizers),
# bench/bmc_throughput --smoke (cross-checks the scratch and
# incremental BMC engines query-by-query), bench/fleet_throughput
# --smoke (thread-count byte-identity of the fleet engine), and
# tools/vega_fleet --smoke (a tiny end-to-end mission-mode run), then
# validates every emitted BENCH_*.smoke.json with vega_json_check.
# Smoke artifacts live beside — never over — the pinned BENCH_*.json.
ctest --test-dir "$build" --output-on-failure -L bench-smoke -j "$jobs"
ctest --test-dir "$build" --output-on-failure -j "$jobs" "$@"
