/**
 * @file
 * Reaction–diffusion model of BTI transistor aging (§2.3.3, Eq. 1).
 *
 * ΔVth ∝ exp(Ea/kT) · (stress_time)^(1/6)
 *
 * This module is the repo's substitute for SPICE characterization: it turns
 * a cell's signal probability into a threshold-voltage shift for its PMOS
 * (NBTI, stressed while the output idles at "0") and NMOS (PBTI, stressed
 * while the output idles at "1") devices, then converts that shift into a
 * fractional propagation-delay increase with the alpha-power law
 * delay ∝ Vdd / (Vdd − Vth)^α.
 *
 * Constants are calibrated so a 10-year, worst-case-corner analysis
 * reproduces the degradation range the paper reports in Figure 8
 * (≈1.9% for cells parked at "1" up to ≈6% for cells parked at "0"),
 * i.e. ΔVth on the order of tens of millivolts — consistent with
 * published 28 nm BTI data.
 */
#pragma once

#include "netlist/cell_library.h"

namespace vega::aging {

/** Parameters of the reaction–diffusion aging model. */
struct RdModelParams
{
    /** NBTI ΔVth prefactor for PMOS at the reference temperature, volts. */
    double a_pmos = 0.0173;
    /** PBTI ΔVth prefactor for NMOS, volts (weaker than NBTI, §2.3.1). */
    double a_nmos = 0.00548;
    /** Activation energy, eV. */
    double ea_ev = 0.49;
    /** Operating temperature for the analysis, kelvin (125 °C corner). */
    double temp_k = 398.15;
    /** Temperature the prefactors were calibrated at, kelvin. */
    double ref_temp_k = 398.15;
    /** Time exponent of the reaction–diffusion solution. */
    double time_exponent = 1.0 / 6.0;
    /** Supply voltage, volts. */
    double vdd = 0.9;
    /** Fresh threshold voltage, volts. */
    double vth0 = 0.35;
    /** Alpha-power-law velocity-saturation exponent. */
    double alpha = 1.3;
    /**
     * Fraction of the max-arc degradation applied to min-delay arcs.
     * Min arcs aging less is the pessimistic assumption for hold checks
     * (an on-chip-variation style derate).
     */
    double min_arc_derate = 0.3;
};

/**
 * Threshold-voltage shift (volts) of a device stressed for the fraction
 * @p duty of @p years years.
 */
double delta_vth(const RdModelParams &p, double prefactor, double duty,
                 double years);

/**
 * Fractional max-delay increase of a cell whose output signal probability
 * is @p sp after @p years years (e.g. 0.06 for +6%).
 *
 * Takes the worse of the NBTI arc (stress duty 1−sp) and the PBTI arc
 * (stress duty sp), scaled by the cell's library aging sensitivity.
 */
double delay_degradation(const RdModelParams &p, CellType type, double sp,
                         double years);

/** Degradation applied to min-delay arcs (derated, see RdModelParams). */
double delay_degradation_min(const RdModelParams &p, CellType type,
                             double sp, double years);

} // namespace vega::aging
