#include "aging/rd_model.h"

#include <algorithm>
#include <cmath>

namespace vega::aging {

namespace {

/** Boltzmann constant in eV/K. */
constexpr double kBoltzmannEv = 8.617333262e-5;

/** Arrhenius acceleration of BTI relative to the calibration temperature. */
double
temp_factor(const RdModelParams &p)
{
    return std::exp((p.ea_ev / kBoltzmannEv) *
                    (1.0 / p.ref_temp_k - 1.0 / p.temp_k));
}

} // namespace

double
delta_vth(const RdModelParams &p, double prefactor, double duty,
          double years)
{
    duty = std::clamp(duty, 0.0, 1.0);
    years = std::max(years, 0.0);
    // Eq. 1: ΔVth ∝ e^(Ea/kT) (t - t0)^(1/6); stress time is the duty-
    // weighted wall time. Recovery during the un-stressed fraction is
    // captured by the duty weighting itself (§2.3.3).
    return prefactor * temp_factor(p) *
           std::pow(duty * years, p.time_exponent);
}

namespace {

double
raw_degradation(const RdModelParams &p, CellType type, double sp,
                double years)
{
    // NBTI stresses the pull-up while the output parks low; PBTI stresses
    // the pull-down while it parks high. The slower of the two transitions
    // sets the cell's max propagation delay, so take the worse arc.
    double dv_p = delta_vth(p, p.a_pmos, 1.0 - sp, years);
    double dv_n = delta_vth(p, p.a_nmos, sp, years);
    double dv = std::max(dv_p, dv_n);
    // Alpha-power law: delay ∝ Vdd/(Vdd − Vth)^α, so to first order
    // Δd/d = α · ΔVth / (Vdd − Vth0).
    double frac = p.alpha * dv / (p.vdd - p.vth0);
    return frac * cell_aging_sensitivity(type);
}

} // namespace

double
delay_degradation(const RdModelParams &p, CellType type, double sp,
                  double years)
{
    return raw_degradation(p, type, sp, years);
}

double
delay_degradation_min(const RdModelParams &p, CellType type, double sp,
                      double years)
{
    return p.min_arc_derate * raw_degradation(p, type, sp, years);
}

} // namespace vega::aging
