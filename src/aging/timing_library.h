/**
 * @file
 * The precomputed aging-aware timing library (§3.2.2, Figure 4).
 *
 * The paper runs SPICE once per standard cell to characterize how signal
 * probability maps to delay degradation over time, then reuses that table
 * across designs. This class is that table: a (cell type × SP × years)
 * grid of delay multipliers, built once from the reaction–diffusion model
 * and looked up with bilinear interpolation during aging-aware STA.
 */
#pragma once

#include <vector>

#include "aging/rd_model.h"
#include "netlist/cell_library.h"

namespace vega::aging {

class AgingTimingLibrary
{
  public:
    /**
     * Characterize every cell type over an SP grid of @p sp_steps points
     * and a year grid up to @p max_years with @p year_steps points.
     */
    static AgingTimingLibrary build(const RdModelParams &params,
                                    int sp_steps = 21, double max_years = 12.0,
                                    int year_steps = 25);

    /** Multiplier (>= 1) on the max-delay arc for @p type at (@p sp, @p years). */
    double delay_factor_max(CellType type, double sp, double years) const;

    /** Multiplier on the min-delay arc (derated, pessimistic for hold). */
    double delay_factor_min(CellType type, double sp, double years) const;

    const RdModelParams &params() const { return params_; }

  private:
    size_t index(int type, int si, int yi) const;

    RdModelParams params_;
    int sp_steps_ = 0;
    int year_steps_ = 0;
    double max_years_ = 0.0;
    std::vector<double> max_table_; ///< [type][sp][year] degradation fraction
    std::vector<double> min_table_;
};

} // namespace vega::aging
