#include "aging/timing_library.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace vega::aging {

namespace {
constexpr int kNumTypes = static_cast<int>(CellType::Dff) + 1;
}

size_t
AgingTimingLibrary::index(int type, int si, int yi) const
{
    return (static_cast<size_t>(type) * sp_steps_ + si) * year_steps_ + yi;
}

AgingTimingLibrary
AgingTimingLibrary::build(const RdModelParams &params, int sp_steps,
                          double max_years, int year_steps)
{
    VEGA_CHECK(sp_steps >= 2 && year_steps >= 2, "grid too small");
    AgingTimingLibrary lib;
    lib.params_ = params;
    lib.sp_steps_ = sp_steps;
    lib.year_steps_ = year_steps;
    lib.max_years_ = max_years;
    lib.max_table_.resize(size_t(kNumTypes) * sp_steps * year_steps);
    lib.min_table_.resize(lib.max_table_.size());

    for (int t = 0; t < kNumTypes; ++t) {
        auto type = static_cast<CellType>(t);
        for (int si = 0; si < sp_steps; ++si) {
            double sp = double(si) / (sp_steps - 1);
            for (int yi = 0; yi < year_steps; ++yi) {
                double years = max_years * double(yi) / (year_steps - 1);
                lib.max_table_[lib.index(t, si, yi)] =
                    delay_degradation(params, type, sp, years);
                lib.min_table_[lib.index(t, si, yi)] =
                    delay_degradation_min(params, type, sp, years);
            }
        }
    }
    return lib;
}

namespace {

/** Bilinear interpolation over a regular grid. */
double
bilinear(const std::vector<double> &tab, size_t base, int sp_steps,
         int year_steps, double sp, double years, double max_years)
{
    sp = std::clamp(sp, 0.0, 1.0);
    years = std::clamp(years, 0.0, max_years);
    double sx = sp * (sp_steps - 1);
    double sy = years / max_years * (year_steps - 1);
    int si = std::min(int(sx), sp_steps - 2);
    int yi = std::min(int(sy), year_steps - 2);
    double fx = sx - si;
    double fy = sy - yi;
    auto at = [&](int s, int y) {
        return tab[base + size_t(s) * year_steps + y];
    };
    double v0 = at(si, yi) * (1 - fx) + at(si + 1, yi) * fx;
    double v1 = at(si, yi + 1) * (1 - fx) + at(si + 1, yi + 1) * fx;
    return v0 * (1 - fy) + v1 * fy;
}

} // namespace

double
AgingTimingLibrary::delay_factor_max(CellType type, double sp,
                                     double years) const
{
    size_t base = size_t(static_cast<int>(type)) * sp_steps_ * year_steps_;
    return 1.0 + bilinear(max_table_, base, sp_steps_, year_steps_, sp,
                          years, max_years_);
}

double
AgingTimingLibrary::delay_factor_min(CellType type, double sp,
                                     double years) const
{
    size_t base = size_t(static_cast<int>(type)) * sp_steps_ * year_steps_;
    return 1.0 + bilinear(min_table_, base, sp_steps_, year_steps_, sp,
                          years, max_years_);
}

} // namespace vega::aging
