/**
 * @file
 * CDCL SAT solver.
 *
 * The formal-verification engine under Vega's Error Lifting phase
 * (substituting the commercial model checker the paper uses). Implements
 * the standard modern architecture: two-watched-literal propagation,
 * first-UIP conflict analysis with clause learning, EVSIDS branching,
 * phase saving, Luby restarts, and LBD-based learned-clause reduction.
 * A conflict budget turns long proofs into Result::Unknown, which the
 * Error Lifting phase reports as the paper's "FF" (formal failure/timeout)
 * outcome.
 *
 * The solver is *incremental*: every solve() exits at the root decision
 * level, so callers may keep adding variables and clauses after a solve
 * and re-solve — learned clauses, variable activities, and saved phases
 * all persist across calls. solve(assumptions, ...) decides the given
 * literals before the free search; an Unsat answer under assumptions
 * does not poison the instance (failed_assumptions() names a subset of
 * the assumptions that is jointly contradictory), which is what the BMC
 * unroller's per-bound activation literals are built on.
 */
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vega::sat {

/** Variable index, 0-based. */
using Var = int32_t;

/**
 * Literal: 2*var for the positive phase, 2*var+1 for the negative.
 */
struct Lit
{
    int32_t x = -2;

    Lit() = default;
    Lit(Var v, bool negative) : x(v * 2 + (negative ? 1 : 0)) {}

    Var var() const { return x >> 1; }
    bool sign() const { return x & 1; } ///< true = negated
    Lit operator~() const
    {
        Lit l;
        l.x = x ^ 1;
        return l;
    }
    bool operator==(const Lit &o) const { return x == o.x; }
    bool operator!=(const Lit &o) const { return x != o.x; }
};

inline Lit mk_lit(Var v) { return Lit(v, false); }

/**
 * Resource limits for one solve() call. Either limit may be disabled
 * by leaving it negative. The wall-clock deadline is checked every 256
 * conflicts, so an over-budget solve stops within one check interval
 * rather than running an unbounded proof to completion.
 */
struct SolveLimits
{
    /** Conflicts before giving up with Result::Unknown (-1 = no limit). */
    int64_t conflict_budget = -1;
    /** Wall-clock seconds before Result::Unknown (-1 = no limit). */
    double wall_seconds = -1.0;
};

class Solver
{
  public:
    enum class Result { Sat, Unsat, Unknown };

    Solver();

    Var new_var();
    int num_vars() const { return static_cast<int>(activity_.size()); }

    /**
     * Add a clause (empty clause makes the instance trivially unsat).
     * Returns false if the solver is already in an unsat state. Legal
     * between solve() calls: the solver always returns to the root
     * level, so new clauses join the existing (learned) database.
     */
    bool add_clause(std::vector<Lit> lits);

    /** Convenience single/binary/ternary clause adders. */
    bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
    bool add_clause(Lit a, Lit b) { return add_clause({a, b}); }
    bool add_clause(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

    /**
     * Solve. Stops with Result::Unknown once @p conflict_budget conflicts
     * have been spent (pass a negative budget for "no limit").
     */
    Result solve(int64_t conflict_budget = -1);

    /** Solve under both a conflict budget and a wall-clock deadline. */
    Result solve(const SolveLimits &limits);

    /**
     * Solve under @p assumptions: each literal is decided (in order)
     * before the free search, so Result::Sat guarantees a model where
     * every assumption holds, and Result::Unsat means the clauses are
     * contradictory *under the assumptions* — the instance itself stays
     * usable, and failed_assumptions() reports which assumptions were
     * involved. Limits are interpreted per call: the conflict budget
     * bounds conflicts spent in this solve, not lifetime conflicts.
     */
    Result solve(const std::vector<Lit> &assumptions,
                 const SolveLimits &limits = {});

    /**
     * After an Unsat answer from solve(assumptions): a subset of the
     * assumptions that the solver proved jointly contradictory (the
     * final conflict). Empty when the instance is unsat outright.
     */
    const std::vector<Lit> &failed_assumptions() const { return conflict_; }

    /**
     * Per-set outcome of a solve_batch() call. `conflicts` and
     * `seconds` attribute the batch's spend to this set; a set skipped
     * because the batch budget ran out reports Unknown with zero spend.
     */
    struct BatchOutcome
    {
        Result result = Result::Unknown;
        /** failed_assumptions() of this set's solve (Unsat only). */
        std::vector<Lit> failed;
        int64_t conflicts = 0;
        double seconds = 0.0;
    };

    /**
     * Batched assumption-set iteration: solve every assumption set in
     * @p sets, in order, against the *same* instance. Learned clauses,
     * activities, and saved phases persist across the worklist, so
     * later sets reuse everything earlier sets derived — this is the
     * suite-level analogue of one incremental solve() loop, minus the
     * per-call entry/exit overhead in callers.
     *
     * @p limits is a whole-batch budget: the conflict budget and wall
     * deadline are shared by the worklist, each set solving under
     * whatever remains. Once the budget is exhausted the remaining
     * sets come back Unknown with zero attributed spend. The model of
     * the most recent Sat set stays readable via model_value().
     */
    std::vector<BatchOutcome>
    solve_batch(const std::vector<std::vector<Lit>> &sets,
                const SolveLimits &limits = {});

    /**
     * Enable learned-clause export: every clause learned from now on
     * with size <= @p max_size and LBD <= @p max_lbd is copied into an
     * export buffer for take_exported(). Pass max_size = 0 to disable
     * (the default — exporting is free only when off).
     */
    void set_export_limits(int max_size, uint32_t max_lbd);

    /**
     * Drain the export buffer (learned clauses that passed the export
     * filter since the last drain, oldest first).
     */
    std::vector<std::vector<Lit>> take_exported();

    /**
     * Import a clause learned by another solver over the *same*
     * variable numbering. The caller asserts the clause is implied by
     * this instance (true for portfolio workers solving translations
     * of one formula); it joins the learned database, so reduce_db()
     * may later drop it. Returns false only if the import made the
     * instance root-level unsat.
     */
    bool import_clause(std::vector<Lit> lits);

    /** Clauses accepted by import_clause() over the solver's lifetime. */
    uint64_t num_imported_clauses() const { return imported_total_; }

    /** Model value of @p v after Result::Sat. */
    bool model_value(Var v) const;

    uint64_t num_conflicts() const { return conflicts_; }
    uint64_t num_decisions() const { return decisions_; }
    uint64_t num_propagations() const { return propagations_; }
    uint64_t num_restarts() const { return restarts_; }
    uint64_t num_learned_clauses() const { return learned_total_; }

  private:
    // Clause storage: all clauses live in one arena; a Cref is an offset.
    using Cref = uint32_t;
    static constexpr Cref kCrefUndef = 0xffffffffu;

    struct Watcher
    {
        Cref cref;
        Lit blocker;
    };

    enum : uint8_t { kTrue = 0, kFalse = 1, kUndef = 2 };

    uint8_t value(Lit l) const
    {
        uint8_t a = assigns_[l.var()];
        if (a == kUndef)
            return kUndef;
        return (a == kTrue) != l.sign() ? kTrue : kFalse;
    }

    Cref alloc_clause(const std::vector<Lit> &lits, bool learnt);
    int clause_size(Cref c) const { return arena_[c]; }
    Lit *clause_lits(Cref c) { return reinterpret_cast<Lit *>(&arena_[c + 2]); }
    const Lit *clause_lits(Cref c) const
    {
        return reinterpret_cast<const Lit *>(&arena_[c + 2]);
    }
    uint32_t &clause_lbd(Cref c) { return arena_[c + 1]; }

    void attach(Cref c);
    void enqueue(Lit l, Cref reason);
    Cref propagate();
    void analyze(Cref conflict, std::vector<Lit> &learnt, int &backtrack);
    void analyze_final(Lit failed);
    void backtrack_to(int level);
    Lit pick_branch();
    void bump_var(Var v);
    void decay_activity();
    void reduce_db();
    static int64_t luby(int64_t i);

    // State
    std::vector<uint32_t> arena_;
    std::vector<Cref> clauses_;
    std::vector<Cref> learnts_;
    std::vector<std::vector<Watcher>> watches_; ///< indexed by Lit.x
    std::vector<uint8_t> assigns_;              ///< per var
    std::vector<uint8_t> saved_phase_;
    std::vector<Cref> reason_;
    std::vector<int> level_;
    std::vector<Lit> trail_;
    std::vector<int> trail_lim_;
    size_t qhead_ = 0;

    std::vector<double> activity_;
    double var_inc_ = 1.0;
    // Binary-heap order by activity.
    std::vector<Var> heap_;
    std::vector<int> heap_pos_;
    void heap_insert(Var v);
    void heap_update(Var v);
    Var heap_pop();
    void heap_sift_up(int i);
    void heap_sift_down(int i);
    bool heap_less(Var a, Var b) const
    {
        return activity_[a] > activity_[b];
    }

    std::vector<uint8_t> seen_; ///< scratch for analyze()

    /** Model snapshot taken at the moment of a Sat answer (the search
     *  state itself is rewound to the root so the instance stays
     *  extendable). */
    std::vector<uint8_t> model_;
    /** Failed-assumption set of the last assumption-Unsat answer. */
    std::vector<Lit> conflict_;

    /** Learned-clause export filter (0 = exporting disabled). */
    int export_max_size_ = 0;
    uint32_t export_max_lbd_ = 0;
    std::vector<std::vector<Lit>> export_buffer_;

    bool ok_ = true;
    uint64_t imported_total_ = 0;
    uint64_t conflicts_ = 0;
    uint64_t decisions_ = 0;
    uint64_t propagations_ = 0;
    uint64_t restarts_ = 0;
    uint64_t learned_total_ = 0;
    /** Learned-DB reduction point; persists so incremental re-solves
     *  keep one schedule instead of reducing on every early conflict. */
    uint64_t next_reduce_ = 4000;
};

} // namespace vega::sat
