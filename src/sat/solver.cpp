#include "sat/solver.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::sat {

namespace {

/**
 * Flushes this solve's counter deltas and solve-time histogram to the
 * metrics registry on every exit path of solve(). All accounting
 * happens once per solve call, so the CDCL hot loop stays untouched.
 */
struct SolveMetricsScope
{
    const Solver &solver;
    uint64_t conflicts0, propagations0, decisions0, restarts0, learned0;
    std::chrono::steady_clock::time_point t0;

    explicit SolveMetricsScope(const Solver &s)
        : solver(s), conflicts0(s.num_conflicts()),
          propagations0(s.num_propagations()),
          decisions0(s.num_decisions()), restarts0(s.num_restarts()),
          learned0(s.num_learned_clauses()),
          t0(std::chrono::steady_clock::now())
    {
    }

    ~SolveMetricsScope()
    {
        static obs::Counter &solves = obs::counter("sat.solves");
        static obs::Counter &conflicts = obs::counter("sat.conflicts");
        static obs::Counter &propagations =
            obs::counter("sat.propagations");
        static obs::Counter &decisions = obs::counter("sat.decisions");
        static obs::Counter &restarts = obs::counter("sat.restarts");
        static obs::Counter &learned =
            obs::counter("sat.learned_clauses");
        static obs::Histogram &solve_seconds =
            obs::histogram("sat.solve_seconds");
        solves.inc();
        conflicts.add(solver.num_conflicts() - conflicts0);
        propagations.add(solver.num_propagations() - propagations0);
        decisions.add(solver.num_decisions() - decisions0);
        restarts.add(solver.num_restarts() - restarts0);
        learned.add(solver.num_learned_clauses() - learned0);
        solve_seconds.observe(
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
};

} // namespace

Solver::Solver() = default;

Var
Solver::new_var()
{
    Var v = static_cast<Var>(activity_.size());
    activity_.push_back(0.0);
    assigns_.push_back(kUndef);
    saved_phase_.push_back(kFalse);
    reason_.push_back(kCrefUndef);
    level_.push_back(0);
    seen_.push_back(0);
    watches_.emplace_back();
    watches_.emplace_back();
    heap_pos_.push_back(-1);
    heap_insert(v);
    return v;
}

Solver::Cref
Solver::alloc_clause(const std::vector<Lit> &lits, bool learnt)
{
    Cref c = static_cast<Cref>(arena_.size());
    arena_.push_back(static_cast<uint32_t>(lits.size()));
    arena_.push_back(learnt ? 2 : 0); // LBD slot (0 marks problem clauses)
    for (Lit l : lits)
        arena_.push_back(static_cast<uint32_t>(l.x));
    return c;
}

void
Solver::attach(Cref c)
{
    Lit *ls = clause_lits(c);
    watches_[(~ls[0]).x].push_back({c, ls[1]});
    watches_[(~ls[1]).x].push_back({c, ls[0]});
}

bool
Solver::add_clause(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    VEGA_CHECK(trail_lim_.empty(), "add_clause after search started");

    // Normalize: drop duplicate/false literals, detect tautologies and
    // satisfied clauses at level 0.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    Lit prev;
    for (Lit l : lits) {
        if (value(l) == kTrue)
            return true; // already satisfied
        if (value(l) == kFalse)
            continue; // can never help
        if (!out.empty() && l == prev)
            continue;
        if (!out.empty() && l == ~prev)
            return true; // tautology
        out.push_back(l);
        prev = l;
    }

    if (out.empty()) {
        ok_ = false;
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kCrefUndef);
        ok_ = propagate() == kCrefUndef;
        return ok_;
    }
    Cref c = alloc_clause(out, false);
    clauses_.push_back(c);
    attach(c);
    return true;
}

void
Solver::enqueue(Lit l, Cref reason)
{
    VEGA_CHECK(value(l) == kUndef, "enqueue on assigned literal");
    assigns_[l.var()] = l.sign() ? kFalse : kTrue;
    reason_[l.var()] = reason;
    level_[l.var()] = static_cast<int>(trail_lim_.size());
    trail_.push_back(l);
}

Solver::Cref
Solver::propagate()
{
    while (qhead_ < trail_.size()) {
        Lit p = trail_[qhead_++];
        ++propagations_;
        auto &ws = watches_[p.x];
        size_t i = 0, j = 0;
        while (i < ws.size()) {
            Watcher w = ws[i];
            if (value(w.blocker) == kTrue) {
                ws[j++] = ws[i++];
                continue;
            }
            Cref c = w.cref;
            Lit *ls = clause_lits(c);
            int size = clause_size(c);
            // Ensure the false literal (~p) sits at slot 1.
            Lit false_lit = ~p;
            if (ls[0] == false_lit)
                std::swap(ls[0], ls[1]);

            Lit first = ls[0];
            if (first != w.blocker && value(first) == kTrue) {
                ws[j++] = {c, first};
                ++i;
                continue;
            }

            // Look for a replacement watch.
            bool moved = false;
            for (int k = 2; k < size; ++k) {
                if (value(ls[k]) != kFalse) {
                    std::swap(ls[1], ls[k]);
                    watches_[(~ls[1]).x].push_back({c, first});
                    moved = true;
                    break;
                }
            }
            if (moved) {
                ++i; // watcher leaves this list
                continue;
            }

            // Clause is unit or conflicting.
            if (value(first) == kFalse) {
                // Conflict: restore remaining watchers and bail.
                while (i < ws.size())
                    ws[j++] = ws[i++];
                ws.resize(j);
                qhead_ = trail_.size();
                return c;
            }
            enqueue(first, c);
            ws[j++] = ws[i++];
        }
        ws.resize(j);
    }
    return kCrefUndef;
}

void
Solver::bump_var(Var v)
{
    activity_[v] += var_inc_;
    if (activity_[v] > 1e100) {
        for (auto &a : activity_)
            a *= 1e-100;
        var_inc_ *= 1e-100;
    }
    if (heap_pos_[v] >= 0)
        heap_sift_up(heap_pos_[v]);
}

void
Solver::decay_activity()
{
    var_inc_ /= 0.95;
}

void
Solver::analyze(Cref conflict, std::vector<Lit> &learnt, int &backtrack)
{
    learnt.clear();
    learnt.push_back(Lit()); // slot for the asserting literal
    int counter = 0;
    Lit p;
    bool have_p = false;
    size_t index = trail_.size();
    Cref reason = conflict;
    int current_level = static_cast<int>(trail_lim_.size());

    for (;;) {
        VEGA_CHECK(reason != kCrefUndef, "analyze: missing reason");
        Lit *ls = clause_lits(reason);
        int size = clause_size(reason);
        int start = have_p ? 1 : 0;
        // When following a reason clause, skip its asserting literal.
        for (int k = start; k < size; ++k) {
            Lit q = ls[k];
            if (have_p && q == p)
                continue;
            Var v = q.var();
            if (!seen_[v] && level_[v] > 0) {
                seen_[v] = 1;
                bump_var(v);
                if (level_[v] >= current_level) {
                    ++counter;
                } else {
                    learnt.push_back(q);
                }
            }
        }
        // Select the next literal on the trail to expand.
        while (!seen_[trail_[index - 1].var()])
            --index;
        p = trail_[--index];
        have_p = true;
        seen_[p.var()] = 0;
        --counter;
        if (counter == 0)
            break;
        reason = reason_[p.var()];
        // Put the asserting literal first in its reason for the skip above.
        if (reason != kCrefUndef) {
            Lit *rl = clause_lits(reason);
            if (rl[0] != p) {
                int sz = clause_size(reason);
                for (int k = 1; k < sz; ++k)
                    if (rl[k] == p) {
                        std::swap(rl[0], rl[k]);
                        break;
                    }
            }
        }
    }
    learnt[0] = ~p;

    // Compute backtrack level (second-highest level in the clause) and LBD.
    backtrack = 0;
    if (learnt.size() > 1) {
        size_t max_i = 1;
        for (size_t k = 2; k < learnt.size(); ++k)
            if (level_[learnt[k].var()] > level_[learnt[max_i].var()])
                max_i = k;
        std::swap(learnt[1], learnt[max_i]);
        backtrack = level_[learnt[1].var()];
    }

    for (Lit l : learnt)
        seen_[l.var()] = 0;
}

void
Solver::backtrack_to(int target)
{
    if (static_cast<int>(trail_lim_.size()) <= target)
        return;
    int bound = trail_lim_[target];
    for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
        Var v = trail_[i].var();
        saved_phase_[v] = assigns_[v];
        assigns_[v] = kUndef;
        reason_[v] = kCrefUndef;
        if (heap_pos_[v] < 0)
            heap_insert(v);
    }
    trail_.resize(bound);
    trail_lim_.resize(target);
    qhead_ = trail_.size();
}

Lit
Solver::pick_branch()
{
    while (!heap_.empty()) {
        Var v = heap_pop();
        if (assigns_[v] == kUndef)
            return Lit(v, saved_phase_[v] == kFalse);
    }
    return Lit(); // undef: all assigned
}

int64_t
Solver::luby(int64_t x)
{
    // Luby restart series, MiniSat's formulation (0-indexed).
    int64_t size = 1;
    int seq = 0;
    while (size < x + 1) {
        ++seq;
        size = 2 * size + 1;
    }
    while (size - 1 != x) {
        size = (size - 1) >> 1;
        --seq;
        x = x % size;
    }
    return 1ll << seq;
}

void
Solver::reduce_db()
{
    // Keep the better half (low LBD); never remove reasons.
    std::sort(learnts_.begin(), learnts_.end(), [this](Cref a, Cref b) {
        return arena_[a + 1] < arena_[b + 1];
    });
    std::vector<uint8_t> is_reason_clause;
    std::vector<Cref> keep;
    size_t half = learnts_.size() / 2;
    for (size_t i = 0; i < learnts_.size(); ++i) {
        Cref c = learnts_[i];
        bool is_reason = false;
        Lit *ls = clause_lits(c);
        if (value(ls[0]) == kTrue && reason_[ls[0].var()] == c)
            is_reason = true;
        if (i < half || is_reason || clause_size(c) <= 2) {
            keep.push_back(c);
        } else {
            // Detach from watch lists lazily: mark dead by zero size.
            Lit w0 = ~ls[0], w1 = ~ls[1];
            for (Lit w : {w0, w1}) {
                auto &ws = watches_[w.x];
                for (size_t k = 0; k < ws.size(); ++k)
                    if (ws[k].cref == c) {
                        ws[k] = ws.back();
                        ws.pop_back();
                        break;
                    }
            }
        }
    }
    learnts_ = std::move(keep);
}

Solver::Result
Solver::solve(int64_t conflict_budget)
{
    SolveLimits limits;
    limits.conflict_budget = conflict_budget;
    return solve(limits);
}

Solver::Result
Solver::solve(const SolveLimits &limits)
{
    return solve(std::vector<Lit>{}, limits);
}

Solver::Result
Solver::solve(const std::vector<Lit> &assumptions,
              const SolveLimits &limits)
{
    VEGA_SPAN("sat.solve");
    SolveMetricsScope metrics(*this);
    if (!assumptions.empty()) {
        static obs::Counter &assumption_solves =
            obs::counter("sat.assumption_solves");
        assumption_solves.inc();
    }
    conflict_.clear();
    if (!ok_)
        return Result::Unsat;
    VEGA_CHECK(trail_lim_.empty(), "solve re-entered mid-search");
    if (propagate() != kCrefUndef) {
        ok_ = false;
        return Result::Unsat;
    }

    const uint64_t conflicts0 = conflicts_;
    int64_t restart_num = 0;
    int64_t restart_limit = 100 * luby(restart_num);
    int64_t conflicts_this_restart = 0;
    std::vector<Lit> learnt;

    // Wall-clock deadline, checked every kDeadlineCheckInterval conflicts
    // so the hot loop stays clock-free between checks.
    using Clock = std::chrono::steady_clock;
    constexpr uint64_t kDeadlineCheckInterval = 256;
    const bool has_deadline = limits.wall_seconds >= 0.0;
    const Clock::time_point deadline =
        has_deadline
            ? Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(
                                     limits.wall_seconds))
            : Clock::time_point::max();

    Result result = Result::Unknown;
    for (;;) {
        Cref conflict = propagate();
        if (conflict != kCrefUndef) {
            ++conflicts_;
            ++conflicts_this_restart;
            if (trail_lim_.empty()) {
                ok_ = false;
                result = Result::Unsat;
                break;
            }
            int back_level = 0;
            analyze(conflict, learnt, back_level);
            backtrack_to(back_level);
            ++learned_total_;
            if (learnt.size() == 1) {
                if (export_max_size_ >= 1)
                    export_buffer_.push_back(learnt);
                enqueue(learnt[0], kCrefUndef);
            } else {
                Cref c = alloc_clause(learnt, true);
                // LBD: number of distinct decision levels.
                uint32_t lbd = 0;
                static thread_local std::vector<int> seen_levels;
                seen_levels.clear();
                for (Lit l : learnt) {
                    int lv = level_[l.var()];
                    if (std::find(seen_levels.begin(), seen_levels.end(),
                                  lv) == seen_levels.end()) {
                        seen_levels.push_back(lv);
                        ++lbd;
                    }
                }
                clause_lbd(c) = lbd;
                if (export_max_size_ > 0 &&
                    learnt.size() <=
                        static_cast<size_t>(export_max_size_) &&
                    lbd <= export_max_lbd_)
                    export_buffer_.push_back(learnt);
                learnts_.push_back(c);
                attach(c);
                enqueue(learnt[0], c);
            }
            decay_activity();

            const uint64_t spent = conflicts_ - conflicts0;
            if (limits.conflict_budget >= 0 &&
                spent >= static_cast<uint64_t>(limits.conflict_budget))
                break; // Unknown
            if (has_deadline && spent % kDeadlineCheckInterval == 0 &&
                Clock::now() >= deadline)
                break; // Unknown
            if (conflicts_ >= next_reduce_) {
                reduce_db();
                next_reduce_ += 4000 + 300 * (next_reduce_ / 4000);
            }
            continue;
        }

        if (conflicts_this_restart >= restart_limit) {
            conflicts_this_restart = 0;
            restart_limit = 100 * luby(++restart_num);
            ++restarts_;
            backtrack_to(0);
            continue;
        }

        // Extend the assumption prefix: one decision level per
        // assumption, before any free decision. An already-true
        // assumption still claims a (empty) level so backjumps keep
        // every assumption decided; a false one is the final conflict.
        Lit next = Lit();
        bool assumption_failed = false;
        while (trail_lim_.size() < assumptions.size()) {
            Lit p = assumptions[trail_lim_.size()];
            uint8_t v = value(p);
            if (v == kTrue) {
                trail_lim_.push_back(static_cast<int>(trail_.size()));
            } else if (v == kFalse) {
                analyze_final(p);
                assumption_failed = true;
                break;
            } else {
                next = p;
                break;
            }
        }
        if (assumption_failed) {
            result = Result::Unsat;
            break;
        }
        if (next.x < 0)
            next = pick_branch();
        if (next.x < 0) {
            result = Result::Sat; // complete assignment
            break;
        }
        ++decisions_;
        trail_lim_.push_back(static_cast<int>(trail_.size()));
        enqueue(next, kCrefUndef);
    }

    // Snapshot the model, then rewind to the root so the instance stays
    // extendable (add_clause / new frames / the next assumption solve).
    if (result == Result::Sat)
        model_.assign(assigns_.begin(), assigns_.end());
    backtrack_to(0);
    return result;
}

/**
 * The final-conflict analysis of an assumption solve: @p failed is the
 * assumption literal found false while extending the prefix. Walks the
 * implication trail backwards from ~failed, expanding reasons, until
 * only decisions (which above the root are exactly the earlier
 * assumptions) remain; those plus @p failed form a jointly-unsat subset
 * of the assumptions.
 */
void
Solver::analyze_final(Lit failed)
{
    conflict_.clear();
    conflict_.push_back(failed);
    if (trail_lim_.empty() || level_[failed.var()] == 0)
        return; // contradicted at the root: {failed} alone suffices
    seen_[failed.var()] = 1;
    for (int i = static_cast<int>(trail_.size()) - 1;
         i >= trail_lim_[0]; --i) {
        Var v = trail_[i].var();
        if (!seen_[v])
            continue;
        if (reason_[v] == kCrefUndef) {
            conflict_.push_back(trail_[i]);
        } else {
            const Lit *ls = clause_lits(reason_[v]);
            int sz = clause_size(reason_[v]);
            for (int k = 0; k < sz; ++k)
                if (level_[ls[k].var()] > 0)
                    seen_[ls[k].var()] = 1;
        }
        seen_[v] = 0;
    }
    seen_[failed.var()] = 0;
}

bool
Solver::model_value(Var v) const
{
    return static_cast<size_t>(v) < model_.size() && model_[v] == kTrue;
}

std::vector<Solver::BatchOutcome>
Solver::solve_batch(const std::vector<std::vector<Lit>> &sets,
                    const SolveLimits &limits)
{
    VEGA_SPAN("sat.solve_batch");
    std::vector<BatchOutcome> out(sets.size());
    using Clock = std::chrono::steady_clock;
    const Clock::time_point t0 = Clock::now();
    const bool has_deadline = limits.wall_seconds >= 0.0;
    const bool has_conflicts = limits.conflict_budget >= 0;
    int64_t conflicts_left = limits.conflict_budget;

    for (size_t i = 0; i < sets.size(); ++i) {
        SolveLimits per;
        if (has_conflicts) {
            if (conflicts_left <= 0)
                continue; // budget spent: Unknown, zero attribution
            per.conflict_budget = conflicts_left;
        }
        if (has_deadline) {
            double remaining =
                limits.wall_seconds -
                std::chrono::duration<double>(Clock::now() - t0).count();
            if (remaining <= 0.0)
                continue;
            per.wall_seconds = remaining;
        }
        const uint64_t c0 = conflicts_;
        const Clock::time_point s0 = Clock::now();
        out[i].result = solve(sets[i], per);
        out[i].conflicts = static_cast<int64_t>(conflicts_ - c0);
        out[i].seconds =
            std::chrono::duration<double>(Clock::now() - s0).count();
        if (out[i].result == Result::Unsat)
            out[i].failed = conflict_;
        if (has_conflicts)
            conflicts_left -= out[i].conflicts;
    }
    return out;
}

void
Solver::set_export_limits(int max_size, uint32_t max_lbd)
{
    export_max_size_ = max_size;
    export_max_lbd_ = max_lbd;
    if (max_size == 0)
        export_buffer_.clear();
}

std::vector<std::vector<Lit>>
Solver::take_exported()
{
    std::vector<std::vector<Lit>> out;
    out.swap(export_buffer_);
    return out;
}

bool
Solver::import_clause(std::vector<Lit> lits)
{
    if (!ok_)
        return false;
    VEGA_CHECK(trail_lim_.empty(), "import_clause after search started");
    static obs::Counter &shared = obs::counter("sat.clauses_shared");

    // Same root-level normalization as add_clause: the watched-literal
    // invariant needs the first two literals unassigned at the root.
    std::sort(lits.begin(), lits.end(),
              [](Lit a, Lit b) { return a.x < b.x; });
    std::vector<Lit> out;
    Lit prev;
    for (Lit l : lits) {
        if (value(l) == kTrue)
            return true; // already satisfied: nothing to learn
        if (value(l) == kFalse)
            continue;
        if (!out.empty() && l == prev)
            continue;
        if (!out.empty() && l == ~prev)
            return true; // tautology
        out.push_back(l);
        prev = l;
    }

    shared.inc();
    ++imported_total_;
    if (out.empty()) {
        ok_ = false; // the import proved the instance unsat
        return false;
    }
    if (out.size() == 1) {
        enqueue(out[0], kCrefUndef);
        ok_ = propagate() == kCrefUndef;
        return ok_;
    }
    Cref c = alloc_clause(out, true);
    // Imported clauses carry no local LBD; size is the sound upper
    // bound, keeping them eligible for reduce_db like any learnt.
    clause_lbd(c) = static_cast<uint32_t>(out.size());
    learnts_.push_back(c);
    attach(c);
    return true;
}

// ---- activity heap -------------------------------------------------------

void
Solver::heap_insert(Var v)
{
    heap_pos_[v] = static_cast<int>(heap_.size());
    heap_.push_back(v);
    heap_sift_up(heap_pos_[v]);
}

Var
Solver::heap_pop()
{
    Var top = heap_[0];
    heap_pos_[top] = -1;
    heap_[0] = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) {
        heap_pos_[heap_[0]] = 0;
        heap_sift_down(0);
    }
    return top;
}

void
Solver::heap_sift_up(int i)
{
    Var v = heap_[i];
    while (i > 0) {
        int parent = (i - 1) / 2;
        if (!heap_less(v, heap_[parent]))
            break;
        heap_[i] = heap_[parent];
        heap_pos_[heap_[i]] = i;
        i = parent;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

void
Solver::heap_sift_down(int i)
{
    Var v = heap_[i];
    int n = static_cast<int>(heap_.size());
    for (;;) {
        int child = 2 * i + 1;
        if (child >= n)
            break;
        if (child + 1 < n && heap_less(heap_[child + 1], heap_[child]))
            ++child;
        if (!heap_less(heap_[child], v))
            break;
        heap_[i] = heap_[child];
        heap_pos_[heap_[i]] = i;
        i = child;
    }
    heap_[i] = v;
    heap_pos_[v] = i;
}

void
Solver::heap_update(Var v)
{
    if (heap_pos_[v] >= 0)
        heap_sift_up(heap_pos_[v]);
}

} // namespace vega::sat
