/**
 * @file
 * Faulty-memory execution: the classified decoder fault injected into
 * the ISS's data memory, and the engine that runs march blocks on it.
 *
 * The injector treats the whole data space as served by the 16-row
 * SRAM macro: the decoder sees row = (addr >> 2) & (rows-1), so every
 * rows*4-byte stripe aliases onto the same decoder rows. That is how a
 * single small macro's decoder fault becomes architecturally visible
 * anywhere in memory — and why a march test over one stripe of cells
 * exercises the same decoder rows any workload uses.
 */
#pragma once

#include <cstdint>

#include "cpu/iss.h"
#include "mem/fault_class.h"
#include "runtime/aging_library.h"

namespace vega::mem {

/** cpu::MemBackend implementing a MemFaultClass. */
class MemFaultInjector : public cpu::MemBackend
{
  public:
    /** Panics if validate_fault_class rejects @p cls. */
    explicit MemFaultInjector(const MemFaultClass &cls);

    cpu::MemBackend::Plan access(uint32_t addr, bool is_store) override;

    uint64_t accesses() const { return accesses_; }
    /** Accesses the fault actually redirected / squashed. */
    uint64_t applied() const { return applied_; }

  private:
    uint32_t row(uint32_t addr) const
    {
        return (addr >> 2) & (cls_.rows - 1);
    }
    /** @p addr with its decoder-row bits replaced by @p to. */
    uint32_t remap(uint32_t addr, uint32_t to) const
    {
        uint32_t mask = (cls_.rows - 1) << 2;
        return (addr & ~mask) | (to << 2);
    }

    MemFaultClass cls_;
    uint64_t accesses_ = 0;
    uint64_t applied_ = 0;
};

/**
 * runtime::Engine running test blocks on the golden ISS with a
 * MemFaultInjector mounted — the memory-substrate counterpart of
 * campaign::NetlistEngine. March blocks that set the fail flag report
 * Detection::WrongAddress; non-mem blocks (e.g. ALU value probes run
 * for comparison) report Mismatch, and any run that never halts
 * cleanly reports Stall.
 */
class MarchEngine : public runtime::Engine
{
  public:
    explicit MarchEngine(const MemFaultClass &cls) : cls_(cls) {}

    runtime::Detection run(const runtime::TestCase &tc) override;

    /** ISS cycles consumed so far (the campaign's sim_cycles). */
    uint64_t cycles() const { return cycles_; }

  private:
    MemFaultClass cls_;
    uint64_t cycles_ = 0;
};

/**
 * Does the representative memory workload (crc32) silently corrupt
 * under @p cls? True when its stored checksum deviates or the run
 * never halts — the SDC side of the campaign's escape accounting.
 */
bool mem_workload_corrupts(const MemFaultClass &cls);

} // namespace vega::mem
