#include "mem/decoder_lift.h"

#include <algorithm>

#include "common/logging.h"
#include "mem/mem_backend.h"
#include "sim/simulator.h"
#include "workloads/march.h"

namespace vega::mem {

lift::FailingNetlist
build_slow_gate_netlist(const Netlist &nl, CellId gate)
{
    VEGA_CHECK(gate < nl.num_cells(), "slow-gate: cell ", gate,
               " out of range");
    lift::FailingNetlist out;
    out.netlist = nl;
    Netlist &n = out.netlist;
    VEGA_CHECK(n.cell(gate).type != CellType::Dff,
               "slow-gate fault targets a combinational cell");

    NetId o = n.cell(gate).out;
    NetId o_del = n.new_net(n.net(o).name + "$slow");
    // Move every reader of the gate's output behind the delay element;
    // the spliced DFF itself (added after the rewrite) keeps reading
    // the live output.
    for (CellId i = 0; i < CellId(n.num_cells()); ++i) {
        Cell &rc = n.cell_mut(i);
        for (int k = 0; k < rc.num_inputs(); ++k)
            if (rc.in[size_t(k)] == o)
                rc.in[size_t(k)] = o_del;
    }
    n.add_dff("slow$" + n.cell(gate).name, o, o_del, false, 0);
    n.validate();
    return out;
}

std::vector<CellId>
decoder_gates_on_path(const Netlist &nl, const sta::TimingPath &path)
{
    std::vector<CellId> gates;
    for (CellId c : path.cells) {
        CellType t = nl.cell(c).type;
        if (t == CellType::Nand2 || t == CellType::Nor2)
            gates.push_back(c);
    }
    return gates;
}

CellId
pick_decoder_gate(const Netlist &nl, const sta::TimingPath &path)
{
    std::vector<CellId> gates = decoder_gates_on_path(nl, path);
    return gates.empty() ? kInvalidId : gates.front();
}

namespace {

/** Anomalies of one kind observed on one wordline bus. */
struct Anomalies
{
    size_t count = 0;
    uint32_t victim = 0;    ///< from the lowest triggering pattern
    uint32_t aggressor = 0;
    bool seen = false;
};

void
note(Anomalies &a, uint32_t victim, uint32_t aggressor)
{
    ++a.count;
    if (!a.seen) {
        a.seen = true;
        a.victim = victim;
        a.aggressor = aggressor;
    }
}

/** Drive @p addr for @p cycles on both simulators (we=0, din=0). */
void
settle(Simulator &sim, size_t addr_bits, uint32_t addr, int cycles)
{
    sim.set_bus("addr", BitVec(addr_bits, addr));
    sim.set_bus("we", BitVec(1, 0));
    for (int i = 0; i < cycles; ++i)
        sim.step();
}

} // namespace

MemFaultClass
classify_slow_gate(const Netlist &healthy, CellId gate)
{
    VEGA_CHECK(healthy.has_bus("rwl") && healthy.has_bus("wwl"),
               "classify_slow_gate needs a decoder substrate "
               "(rwl/wwl wordline buses)");
    uint32_t rows = uint32_t(healthy.bus("rwl").size());
    size_t addr_bits = healthy.bus("addr").size();

    lift::FailingNetlist faulty = build_slow_gate_netlist(healthy, gate);
    Simulator golden(healthy);
    Simulator bad(faulty.netlist);

    MemFaultClass cls;
    cls.rows = rows;

    // Per kind, split by which decode stage (bus) shows the anomaly.
    Anomalies wrong[2], multi[2], nosel[2]; // [0]=rwl/read, [1]=wwl/write
    const char *kBuses[2] = {"rwl", "wwl"};

    for (uint32_t prev = 0; prev < rows; ++prev) {
        for (uint32_t cur = 0; cur < rows; ++cur) {
            if (prev == cur)
                continue; // no transition, a slow gate cannot show
            golden.reset();
            bad.reset();
            // Hold prev until everything (including the spliced delay
            // DFF) reflects it, then present cur; the registered
            // wordlines show cur's decode two edges later — with the
            // slow gate still computing from prev for one cycle.
            settle(golden, addr_bits, prev, 4);
            settle(bad, addr_bits, prev, 4);
            settle(golden, addr_bits, cur, 2);
            settle(bad, addr_bits, cur, 2);
            for (int bi = 0; bi < 2; ++bi) {
                BitVec g = golden.bus_value(kBuses[bi]);
                BitVec f = bad.bus_value(kBuses[bi]);
                if (f == g)
                    continue;
                size_t pop = f.popcount();
                if (pop == 0) {
                    note(nosel[bi], cur, cur);
                } else if (pop == 1 && !f.get(cur)) {
                    uint32_t w = 0;
                    while (!f.get(w))
                        ++w;
                    note(wrong[bi], w, cur);
                } else {
                    // cur plus stragglers (or a multi-bit glitch):
                    // at least one extra row is selected.
                    uint32_t w = 0;
                    while (w < rows && (!f.get(w) || w == cur))
                        ++w;
                    if (w < rows)
                        note(multi[bi], w, cur);
                }
            }
        }
    }

    // Severity priority: a redirected access (silent wrong data in one
    // row) outranks a doubled access outranks a starved one.
    const Anomalies *chosen = nullptr;
    if (wrong[0].seen || wrong[1].seen) {
        chosen = wrong[0].seen ? &wrong[0] : &wrong[1];
        cls.kind = wrong[0].seen ? MemFaultKind::WrongRowRead
                                 : MemFaultKind::WrongRowWrite;
        cls.affects_read = wrong[0].seen;
        cls.affects_write = wrong[1].seen;
    } else if (multi[0].seen || multi[1].seen) {
        chosen = multi[0].seen ? &multi[0] : &multi[1];
        cls.kind = MemFaultKind::MultiSelect;
        cls.affects_read = multi[0].seen;
        cls.affects_write = multi[1].seen;
    } else if (nosel[0].seen || nosel[1].seen) {
        chosen = nosel[0].seen ? &nosel[0] : &nosel[1];
        cls.kind = MemFaultKind::NoSelect;
        cls.affects_read = nosel[0].seen;
        cls.affects_write = nosel[1].seen;
    }
    if (chosen) {
        cls.victim = chosen->victim;
        cls.aggressor = chosen->aggressor;
        for (int bi = 0; bi < 2; ++bi)
            cls.patterns += wrong[bi].count + multi[bi].count +
                            nosel[bi].count;
    }
    return cls;
}

namespace {

/** The escalation-ladder candidate pool, rung order. Returns the index
 *  where each rung starts (random, mats+, march_c-). */
std::vector<runtime::TestCase>
build_candidates(const MemLiftConfig &cfg, size_t rung_start[3])
{
    std::vector<runtime::TestCase> pool;
    rung_start[0] = 0;
    for (size_t i = 0; i < cfg.random_tests; ++i)
        pool.push_back(workloads::make_random_march_test(
            runtime::kMemTestRows, cfg.random_ops, cfg.seed + i));
    rung_start[1] = pool.size();
    pool.push_back(workloads::make_march_test(workloads::mats_plus(),
                                              runtime::kMemTestRows));
    rung_start[2] = pool.size();
    pool.push_back(workloads::make_march_test(workloads::march_cminus(),
                                              runtime::kMemTestRows));
    return pool;
}

} // namespace

MemLiftResult
run_decoder_lifting(const HwModule &module,
                    const std::vector<sta::EndpointPair> &pairs,
                    const MemLiftConfig &config)
{
    VEGA_CHECK(is_mem_module(module.kind),
               "decoder lifting targets memory substrates, got ",
               module_kind_name(module.kind));
    MemLiftResult result;
    size_t rung_start[3] = {0, 0, 0};
    result.candidates = build_candidates(config, rung_start);

    size_t limit = std::min(config.max_pairs, pairs.size());
    for (size_t pi = 0; pi < limit; ++pi) {
        MemPairResult pr;
        pr.pair = pairs[pi];
        pr.gate = config.force_gate != kInvalidId
                      ? config.force_gate
                      : pick_decoder_gate(module.netlist,
                                          pairs[pi].worst);
        if (pr.gate == kInvalidId) {
            // Pure datapath path: a slow gate there corrupts values,
            // not addresses — out of scope for this pass.
            pr.status = lift::PairStatus::Unreachable;
            result.pairs.push_back(std::move(pr));
            continue;
        }
        pr.cls = classify_slow_gate(module.netlist, pr.gate);
        if (pr.cls.kind == MemFaultKind::None) {
            pr.status = lift::PairStatus::Unreachable;
            result.pairs.push_back(std::move(pr));
            continue;
        }
        // Escalate: run every candidate (they are ISS-cheap) but report
        // the first rung that fires, mirroring the fuzz -> formal
        // ladder of the datapath flow.
        for (size_t t = 0; t < result.candidates.size(); ++t) {
            MarchEngine engine(pr.cls);
            if (engine.run(result.candidates[t]) !=
                runtime::Detection::None)
                pr.detected_by.push_back(t);
        }
        if (pr.detected_by.empty()) {
            pr.status = lift::PairStatus::ConversionFailed;
        } else {
            pr.status = lift::PairStatus::Success;
            size_t first = pr.detected_by.front();
            pr.escalation = first < rung_start[1]   ? "random"
                            : first < rung_start[2] ? "mats+"
                                                    : "march_c-";
        }
        result.pairs.push_back(std::move(pr));
    }

    for (const MemPairResult &pr : result.pairs) {
        if (pr.status == lift::PairStatus::Success)
            ++result.n_success;
        else if (pr.status == lift::PairStatus::Unreachable)
            ++result.n_unreachable;
        else
            ++result.n_conversion_failed;
    }

    // Greedy set cover: the smallest (then cheapest) candidate subset
    // that detects every Success pair's fault.
    std::vector<char> covered(result.pairs.size(), 0);
    size_t uncovered = result.n_success;
    std::vector<char> in_suite(result.candidates.size(), 0);
    while (uncovered > 0) {
        size_t best = SIZE_MAX, best_gain = 0;
        for (size_t t = 0; t < result.candidates.size(); ++t) {
            if (in_suite[t])
                continue;
            size_t gain = 0;
            for (size_t p = 0; p < result.pairs.size(); ++p) {
                if (covered[p] ||
                    result.pairs[p].status != lift::PairStatus::Success)
                    continue;
                const auto &db = result.pairs[p].detected_by;
                if (std::find(db.begin(), db.end(), t) != db.end())
                    ++gain;
            }
            bool better =
                gain > best_gain ||
                (gain == best_gain && gain > 0 && best != SIZE_MAX &&
                 result.candidates[t].cycle_cost <
                     result.candidates[best].cycle_cost);
            if (better) {
                best = t;
                best_gain = gain;
            }
        }
        if (best == SIZE_MAX || best_gain == 0)
            break; // nothing left that helps (shouldn't happen)
        in_suite[best] = 1;
        for (size_t p = 0; p < result.pairs.size(); ++p) {
            if (covered[p] ||
                result.pairs[p].status != lift::PairStatus::Success)
                continue;
            const auto &db = result.pairs[p].detected_by;
            if (std::find(db.begin(), db.end(), best) != db.end()) {
                covered[p] = 1;
                --uncovered;
            }
        }
    }
    for (size_t t = 0; t < result.candidates.size(); ++t)
        if (in_suite[t])
            result.suite.push_back(result.candidates[t]);
    return result;
}

} // namespace vega::mem
