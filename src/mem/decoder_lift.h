/**
 * @file
 * Decoder-aware error lifting (the memory-path counterpart of
 * lift/error_lifting.h).
 *
 * The datapath failure model — capture a wrong constant when the
 * launch toggles — cannot express what an aged decoder does: the gate
 * is *slow*, so on an address transition one stage briefly computes
 * with stale inputs and the macro selects the wrong row(s). We model
 * that directly as a transition-delay fault: splice a DFF after the
 * aged gate so its fanout sees the previous cycle's value, then sweep
 * all (previous, current) address patterns on healthy vs faulty
 * netlists, watching the registered wordline buses:
 *
 *   slow address repeater -> every line sees a hybrid address (stale
 *                            bit, fresh others): exactly one wrong row
 *                            rises while the right one stays down
 *                            (WrongRow, both ports)
 *   slow pre-decode gate  -> the old group line stays up next to the
 *                            new one (MultiSelect, both ports) or the
 *                            new group rises late (NoSelect)
 *   slow final-stage gate -> the old row stays up (MultiSelect) or the
 *                            new row rises late (NoSelect), one port
 *   slow datapath gate    -> wordlines unaffected (None; value-class,
 *                            not an address fault)
 *
 * The concrete (victim, aggressor) pair and the read/write split (the
 * substrate has separate read/write final stages behind a shared
 * pre-decode) come straight out of the sweep. Detection tests are then
 * drawn from an escalation ladder — random traffic, MATS+, March C- —
 * and greedily minimized into a covering suite.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "lift/error_lifting.h"
#include "mem/fault_class.h"
#include "rtl/module.h"

namespace vega::mem {

/**
 * A copy of @p nl with @p gate made one cycle slow: a DFF is spliced
 * after the gate's output, so all fanout reads last cycle's value.
 * @p gate must be combinational. Returned as a lift::FailingNetlist so
 * campaign plumbing treats both fault families uniformly.
 */
lift::FailingNetlist build_slow_gate_netlist(const Netlist &nl,
                                             CellId gate);

/** NAND/NOR stage cells along @p path, launch side first (pre-decode
 *  stages come before final stages). Empty when the path never crosses
 *  a decode stack — i.e. a pure datapath path. */
std::vector<CellId> decoder_gates_on_path(const Netlist &nl,
                                          const sta::TimingPath &path);

/** First decode-stack gate on the worst path, or kInvalidId. */
CellId pick_decoder_gate(const Netlist &nl, const sta::TimingPath &path);

/**
 * Age @p gate (slow-gate model) and classify the resulting address
 * fault by sweeping every (previous, current) address pattern and
 * comparing the faulty "rwl"/"wwl" wordline buses against the healthy
 * one-hot selection. Kind priority when one gate shows several
 * anomalies: WrongRow > MultiSelect > NoSelect; victim/aggressor come
 * from the lowest triggering pattern of the chosen kind.
 */
MemFaultClass classify_slow_gate(const Netlist &healthy, CellId gate);

struct MemLiftConfig
{
    /** Analyze only the first N pairs (benches subset with this). */
    size_t max_pairs = SIZE_MAX;
    /** Override gate selection (tests target a specific stage). */
    CellId force_gate = kInvalidId;
    /** Random-rung shape: tests in the rung and ops per test. */
    size_t random_tests = 4;
    size_t random_ops = 24;
    uint64_t seed = 1;
};

/** Per-pair outcome of decoder lifting. */
struct MemPairResult
{
    sta::EndpointPair pair;
    CellId gate = kInvalidId;
    MemFaultClass cls;
    /** Success = concrete detected class; Unreachable = no decode gate
     *  on the path or no address anomaly (value-class fault);
     *  ConversionFailed = real address fault no candidate detects. */
    lift::PairStatus status = lift::PairStatus::Unreachable;
    /** Ladder rung that first detected: "random", "mats+", "march_c-". */
    std::string escalation;
    /** Candidate-suite indices whose test detects this fault. */
    std::vector<size_t> detected_by;
};

struct MemLiftResult
{
    std::vector<MemPairResult> pairs;
    /** Full escalation-ladder pool, rung order (random first). */
    std::vector<runtime::TestCase> candidates;
    /** Greedy set-cover minimized suite over all Success pairs. */
    std::vector<runtime::TestCase> suite;
    size_t n_success = 0;
    size_t n_unreachable = 0;
    size_t n_conversion_failed = 0;
};

/** Run decoder-aware lifting over @p pairs of @p module. */
MemLiftResult
run_decoder_lifting(const HwModule &module,
                    const std::vector<sta::EndpointPair> &pairs,
                    const MemLiftConfig &config = {});

} // namespace vega::mem
