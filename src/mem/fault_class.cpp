#include "mem/fault_class.h"

namespace vega::mem {

const char *
mem_fault_kind_name(MemFaultKind k)
{
    switch (k) {
      case MemFaultKind::None:          return "none";
      case MemFaultKind::WrongRowRead:  return "wrong-row-read";
      case MemFaultKind::WrongRowWrite: return "wrong-row-write";
      case MemFaultKind::MultiSelect:   return "multi-select";
      case MemFaultKind::NoSelect:      return "no-select";
    }
    return "?";
}

std::string
MemFaultClass::to_string() const
{
    std::string s = mem_fault_kind_name(kind);
    if (kind == MemFaultKind::None)
        return s;
    s += " aggressor=" + std::to_string(aggressor);
    s += " victim=" + std::to_string(victim);
    s += affects_read ? (affects_write ? " rw" : " r") : " w";
    s += " patterns=" + std::to_string(patterns);
    return s;
}

Expected<void>
validate_fault_class(const MemFaultClass &c)
{
    auto err = [](const std::string &msg) {
        return make_error(ErrorCode::ValidationError,
                          "fault class: " + msg);
    };
    if (c.rows < 2 || (c.rows & (c.rows - 1)) != 0)
        return err("rows " + std::to_string(c.rows) +
                   " is not a power of two >= 2");
    if (c.kind == MemFaultKind::None)
        return {};
    if (c.victim >= c.rows)
        return err("victim row " + std::to_string(c.victim) +
                   " out of range (< " + std::to_string(c.rows) + ")");
    if (c.aggressor >= c.rows)
        return err("aggressor row " + std::to_string(c.aggressor) +
                   " out of range (< " + std::to_string(c.rows) + ")");
    bool two_rows = c.kind == MemFaultKind::WrongRowRead ||
                    c.kind == MemFaultKind::WrongRowWrite ||
                    c.kind == MemFaultKind::MultiSelect;
    if (two_rows && c.victim == c.aggressor)
        return err(std::string(mem_fault_kind_name(c.kind)) +
                   " aliases victim onto aggressor row " +
                   std::to_string(c.victim));
    if (c.kind == MemFaultKind::NoSelect && c.victim != c.aggressor)
        return err("no-select starves the aggressor row itself "
                   "(victim must equal aggressor)");
    if (!c.affects_read && !c.affects_write)
        return err("fault affects neither read nor write decode");
    return {};
}

} // namespace vega::mem
