/**
 * @file
 * Wrong-address fault classes for memory-path substrates.
 *
 * Datapath modules fail by producing a wrong *value*; an aged address
 * decoder fails by involving a wrong *row*. A classified decoder fault
 * is summarized as (kind, victim, aggressor): accesses aimed at the
 * aggressor row land on / also hit / never reach the victim row. This
 * architectural summary is what the faulty-memory ISS backend
 * (mem/mem_backend.h) injects, and what the campaign and fleet layers
 * characterize.
 */
#pragma once

#include <cstdint>
#include <string>

#include "common/error.h"

namespace vega::mem {

enum class MemFaultKind : uint8_t {
    None,         ///< no address anomaly (value-class or benign fault)
    WrongRowRead, ///< reads of the aggressor row return the victim row
    WrongRowWrite, ///< writes to the aggressor row land on the victim row
    MultiSelect,  ///< aggressor accesses also select the victim row
    NoSelect,     ///< aggressor accesses select no row at all
};

const char *mem_fault_kind_name(MemFaultKind k);

/** A classified decoder fault, lifted from one slow gate. */
struct MemFaultClass
{
    MemFaultKind kind = MemFaultKind::None;
    /** Rows of the decoded macro (power of two). */
    uint32_t rows = 16;
    /** Row wrongly selected (WrongRow/MultiSelect) or starved
     *  (NoSelect: victim == aggressor). */
    uint32_t victim = 0;
    /** Row whose accesses trigger the fault. */
    uint32_t aggressor = 0;
    /** The fault sits on (or upstream of) the read decode stage. */
    bool affects_read = false;
    /** The fault sits on (or upstream of) the write decode stage. */
    bool affects_write = false;
    /** How many (previous, current) address patterns trigger it. */
    size_t patterns = 0;

    std::string to_string() const;
};

/**
 * Structural sanity of a classified fault: rows a power of two, rows
 * in range, and victim != aggressor for the two-row kinds (a wrong-row
 * or multi-select class aliasing onto its own row is a classification
 * bug, not a fault). Injection (mem_backend) requires this to pass.
 */
Expected<void> validate_fault_class(const MemFaultClass &c);

} // namespace vega::mem
