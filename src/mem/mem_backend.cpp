#include "mem/mem_backend.h"

#include "common/logging.h"
#include "workloads/kernels.h"

namespace vega::mem {

namespace {

/** Same bounds the campaign engine uses for gate-level runs; the ISS
 *  alone is far faster, but a redirected store can still turn a
 *  terminating loop into an endless one. */
constexpr uint64_t kWorkloadWatchdog = 400000;
constexpr uint64_t kTestWatchdog = 1000000;

} // namespace

MemFaultInjector::MemFaultInjector(const MemFaultClass &cls) : cls_(cls)
{
    Expected<void> ok = validate_fault_class(cls);
    VEGA_CHECK(ok.ok(), "mem injector: ", ok.error().context);
}

cpu::MemBackend::Plan
MemFaultInjector::access(uint32_t addr, bool is_store)
{
    ++accesses_;
    Plan plan;
    plan.addr = addr;
    if (cls_.kind == MemFaultKind::None)
        return plan;
    bool applies = is_store ? cls_.affects_write : cls_.affects_read;
    if (!applies || row(addr) != cls_.aggressor)
        return plan;
    switch (cls_.kind) {
      case MemFaultKind::WrongRowRead:
      case MemFaultKind::WrongRowWrite:
        plan.addr = remap(addr, cls_.victim);
        break;
      case MemFaultKind::MultiSelect:
        plan.extra = remap(addr, cls_.victim);
        plan.has_extra = true;
        break;
      case MemFaultKind::NoSelect:
        plan.squash = true;
        break;
      case MemFaultKind::None:
        break;
    }
    ++applied_;
    return plan;
}

runtime::Detection
MarchEngine::run(const runtime::TestCase &tc)
{
    MemFaultInjector injector(cls_);
    cpu::IssConfig cfg;
    cfg.max_instructions = kTestWatchdog;
    cpu::Iss iss(tc.program, cfg);
    iss.set_mem_backend(&injector);
    auto status = iss.run();
    cycles_ += iss.cycles();

    if (status != cpu::Iss::Status::Halted)
        return runtime::Detection::Stall;
    if (iss.reg(31) != 0)
        return tc.module == ModuleKind::MemDec16
                   ? runtime::Detection::WrongAddress
                   : runtime::Detection::Mismatch;
    return runtime::Detection::None;
}

bool
mem_workload_corrupts(const MemFaultClass &cls)
{
    const workloads::Kernel &kernel = workloads::make_crc32();
    MemFaultInjector injector(cls);
    cpu::IssConfig cfg;
    cfg.max_instructions = kWorkloadWatchdog;
    cpu::Iss iss(kernel.program, cfg);
    iss.set_mem_backend(&injector);
    auto status = iss.run();
    if (status != cpu::Iss::Status::Halted)
        return true;
    return iss.read_u32(workloads::kChecksumAddr) !=
           kernel.expected_checksum;
}

} // namespace vega::mem
