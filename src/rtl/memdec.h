/**
 * @file
 * Memory-path substrate: a parameterized SRAM row-address decoder plus
 * the periphery that turns it into an addressable word array.
 *
 * Motivated by the BTI address-decoder aging literature (Gürsoy et al.,
 * arXiv 2212.09356): under address-skewed workloads the decoder's
 * pre-decode and final NAND stacks see asymmetric signal probabilities,
 * age unevenly, and eventually mis-select rows — a *wrong-address*
 * read/write rather than a wrong value, which is a qualitatively
 * different SDC class from the datapath modules (src/mem/ lifts it).
 *
 * Structure (all ordinary vega28 cells, so the aging/STA flow applies
 * unchanged):
 *
 *   addr ──q── pre-decode (literal INV + NAND2 + INV per group line)
 *                ├─ read  final stage: NAND2 + wordline driver chain ──q── "rwl"
 *                └─ write final stage: NAND2 + wordline driver chain ──q── "wwl"
 *   we, din ──q──q── write gating: row DFFs take din when wwl & we
 *   read mux: rdata = OR over rows of (rwl & row) ──q── "rdata"
 *
 * The read and write decoders share the pre-decode stage but have
 * separate final NAND stages (register-file style), so an aged gate
 * lifts to a read-only, write-only, or shared wrong-address class
 * depending on where it sits — exactly the distinction the src/mem
 * decoder-aware lifting pass classifies.
 *
 * Ports: inputs addr[A-1:0], we, din[W-1:0]; outputs rdata[W-1:0],
 * rwl[R-1:0], wwl[R-1:0] (registered wordlines, observable so the
 * lifting pass can watch row selection directly). R = 2^A.
 */
#pragma once

#include <cstddef>

#include "rtl/module.h"

namespace vega::rtl {

/** Geometry of a generated memory decoder substrate. */
struct MemDecParams
{
    size_t addr_bits = 4; ///< 2..4 supported (4..16 rows)
    size_t word_bits = 8; ///< bits per row
};

/**
 * Build a decoder + word-array module with @p params. Targets 500 MHz
 * (2000 ps period, typical embedded-SRAM periphery). Latency: rdata is
 * registered 3 cycles after the address is presented (address register,
 * wordline register, data register).
 */
HwModule make_memdec(const MemDecParams &params);

/** The canonical analysis target: 16 rows x 8 bits (ModuleKind::MemDec16). */
HwModule make_memdec16();

} // namespace vega::rtl
