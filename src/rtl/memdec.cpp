#include "rtl/memdec.h"

#include "common/logging.h"
#include "netlist/builder.h"

namespace vega::rtl {

namespace {

/**
 * Pre-decode one address-bit group into its 2^k one-hot lines.
 * Each line is INV(NAND(literals)) — the NAND stack is the structure
 * that ages asymmetrically under skewed address streams.
 */
std::vector<NetId>
predecode_group(Builder &b, const Bus &bits)
{
    VEGA_CHECK(!bits.empty() && bits.size() <= 2,
               "pre-decode groups are 1 or 2 bits");
    std::vector<NetId> lines;
    size_t n = size_t(1) << bits.size();
    for (size_t v = 0; v < n; ++v) {
        std::vector<NetId> lits;
        for (size_t i = 0; i < bits.size(); ++i)
            lits.push_back((v >> i) & 1 ? b.buf(bits[i])
                                        : b.not_(bits[i]));
        NetId line;
        if (lits.size() == 1)
            line = b.buf(lits[0]); // degenerate group: no stack
        else
            line = b.not_(b.nand_(lits[0], lits[1]));
        lines.push_back(line);
    }
    return lines;
}

/**
 * Final decode stage for one port: per row a NAND2 of the two
 * pre-decode lines, an inverter, and a wordline driver chain (the long
 * polysilicon wordline needs buffering; the chain also puts the decode
 * path just past the read-mux depth, so decoder paths are the ones
 * aging pushes over the edge first).
 */
std::vector<NetId>
final_stage(Builder &b, const std::vector<NetId> &lo,
            const std::vector<NetId> &hi, size_t rows)
{
    std::vector<NetId> wl;
    wl.reserve(rows);
    for (size_t r = 0; r < rows; ++r) {
        NetId n = b.nand_(lo[r % lo.size()], hi[r / lo.size()]);
        NetId line = b.not_(n);
        for (int d = 0; d < 5; ++d)
            line = b.buf(line);
        wl.push_back(line);
    }
    return wl;
}

} // namespace

HwModule
make_memdec(const MemDecParams &params)
{
    VEGA_CHECK(params.addr_bits >= 2 && params.addr_bits <= 4,
               "memdec supports 2..4 address bits, got ",
               params.addr_bits);
    VEGA_CHECK(params.word_bits >= 1 && params.word_bits <= 32,
               "memdec supports 1..32-bit words, got ", params.word_bits);
    size_t A = params.addr_bits;
    size_t W = params.word_bits;
    size_t R = size_t(1) << A;

    HwModule m;
    m.kind = ModuleKind::MemDec16;
    m.latency = 3;
    Netlist &nl = m.netlist;
    nl.set_name("memdec" + std::to_string(R));
    nl.set_clock_period_ps(2000.0); // 500 MHz SRAM periphery

    // Clock: three levels, eight leaves. Address/control registers on
    // the first leaves, wordline registers and the array spread across
    // the rest, mirroring a row-oriented floorplan.
    auto leaves = m.clock.grow_balanced(3, 20.0, 12.0);

    Builder b(nl, "md");

    Bus addr_in = nl.add_input_bus("addr", A);
    Bus we_in = nl.add_input_bus("we", 1);
    Bus din_in = nl.add_input_bus("din", W);

    // Stage 0: address / control / data registers.
    Bus addr_q;
    for (size_t i = 0; i < A; ++i)
        addr_q.push_back(b.dff(addr_in[i], false, leaves[0]));
    NetId we_q = b.dff(we_in[0], false, leaves[0]);
    Bus din_q;
    for (size_t i = 0; i < W; ++i)
        din_q.push_back(b.dff(din_in[i], false, leaves[1]));

    // Address rail repeaters: one shared buffer per address bit drives
    // every pre-decode literal. A slow repeater presents a hybrid
    // address (stale bit, fresh others) to the whole decode stack — the
    // single-gate fault that selects exactly one *wrong* row.
    Bus addr_r;
    for (size_t i = 0; i < A; ++i)
        addr_r.push_back(b.buf(addr_q[i]));

    // Shared pre-decode: low 2 bits and the remaining high bits.
    Bus lo_bits(addr_r.begin(), addr_r.begin() + 2);
    Bus hi_bits(addr_r.begin() + 2, addr_r.end());
    std::vector<NetId> p_lo = predecode_group(b, lo_bits);
    std::vector<NetId> p_hi = hi_bits.empty()
                                  ? std::vector<NetId>{b.const1()}
                                  : predecode_group(b, hi_bits);

    // Separate read/write final stages (register-file discipline), each
    // registered: rwl_q/wwl_q are what the periphery actually uses, and
    // what the decoder-aware lifting pass observes.
    std::vector<NetId> rwl = final_stage(b, p_lo, p_hi, R);
    std::vector<NetId> wwl = final_stage(b, p_lo, p_hi, R);
    Bus rwl_q, wwl_q;
    for (size_t r = 0; r < R; ++r) {
        rwl_q.push_back(b.dff(rwl[r], false, leaves[2 + (r & 1)]));
        wwl_q.push_back(b.dff(wwl[r], false, leaves[4 + (r & 1)]));
    }
    nl.add_output_bus("rwl", rwl_q);
    nl.add_output_bus("wwl", wwl_q);

    // Align write-enable and data with the registered wordlines.
    NetId we_q2 = b.dff(we_q, false, leaves[0]);
    Bus din_q2;
    for (size_t i = 0; i < W; ++i)
        din_q2.push_back(b.dff(din_q[i], false, leaves[1]));

    // Word array: R rows of W DFFs with write gating.
    std::vector<Bus> rows;
    rows.reserve(R);
    for (size_t r = 0; r < R; ++r) {
        NetId sel_w = b.and_(wwl_q[r], we_q2);
        Bus row;
        row.reserve(W);
        for (size_t i = 0; i < W; ++i) {
            // q = sel_w ? din : q  — feedback through the mux.
            NetId d = nl.new_net("md_row" + std::to_string(r) + "_b" +
                                 std::to_string(i));
            NetId q = b.dff(d, false, leaves[6 + (r & 1)]);
            NetId mux_out = b.mux(q, din_q2[i], sel_w);
            // Rewire: the dff above was created with d as input; drive
            // d from the mux via a buffer so the net has its driver.
            nl.add_cell(CellType::Buf,
                        "md_wr" + std::to_string(r) + "_" +
                            std::to_string(i),
                        {mux_out}, d);
            row.push_back(q);
        }
        rows.push_back(std::move(row));
    }

    // Read mux: wired-OR of wordline-gated row contents, registered.
    Bus rdata_q;
    for (size_t i = 0; i < W; ++i) {
        std::vector<NetId> terms;
        terms.reserve(R);
        for (size_t r = 0; r < R; ++r)
            terms.push_back(b.and_(rwl_q[r], rows[r][i]));
        rdata_q.push_back(b.dff(b.or_n(terms), false, leaves[7]));
    }
    nl.add_output_bus("rdata", rdata_q);

    nl.validate();
    return m;
}

HwModule
make_memdec16()
{
    return make_memdec(MemDecParams{});
}

} // namespace vega::rtl
