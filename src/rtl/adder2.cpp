#include "rtl/adder2.h"

#include "common/logging.h"

namespace vega {

const char *
module_kind_name(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Adder2:   return "adder2";
      case ModuleKind::Alu32:    return "alu32";
      case ModuleKind::Fpu32:    return "fpu32";
      case ModuleKind::Mdu32:    return "mdu32";
      case ModuleKind::MemDec16: return "memdec16";
    }
    return "?";
}

namespace rtl {

HwModule
make_adder2()
{
    HwModule m;
    m.kind = ModuleKind::Adder2;
    m.latency = 2;
    Netlist &nl = m.netlist;
    nl.set_name("adder2");

    // Clock: a two-level tree; DFFs $1..$4 on leaf 0, $9/$10 on leaf 1.
    auto leaves = m.clock.grow_balanced(1, 20.0, 12.0);

    auto a = nl.add_input_bus("a", 2);
    auto b = nl.add_input_bus("b", 2);

    // Input registers $1..$4: aq[0], aq[1], bq[0], bq[1].
    NetId aq0 = nl.new_net("aq[0]");
    NetId aq1 = nl.new_net("aq[1]");
    NetId bq0 = nl.new_net("bq[0]");
    NetId bq1 = nl.new_net("bq[1]");
    nl.add_dff("$1", a[0], aq0, false, leaves[0]);
    nl.add_dff("$2", a[1], aq1, false, leaves[0]);
    nl.add_dff("$3", b[0], bq0, false, leaves[0]);
    nl.add_dff("$4", b[1], bq1, false, leaves[0]);

    // Combinational sum: o[0] = aq0 ^ bq0; o[1] = (aq1 ^ bq1) ^ carry.
    NetId s0 = nl.new_net("sum0");
    nl.add_cell(CellType::Xor2, "$5", {aq0, bq0}, s0);
    NetId carry = nl.new_net("carry");
    nl.add_cell(CellType::And2, "$6", {aq0, bq0}, carry);
    NetId p1 = nl.new_net("p1");
    nl.add_cell(CellType::Xor2, "$7", {aq1, bq1}, p1);
    NetId s1 = nl.new_net("sum1");
    nl.add_cell(CellType::Xor2, "$8", {p1, carry}, s1);

    // Output registers $9 / $10.
    NetId o0 = nl.new_net("o[0]");
    NetId o1 = nl.new_net("o[1]");
    nl.add_dff("$9", s0, o0, false, leaves[1]);
    nl.add_dff("$10", s1, o1, false, leaves[1]);

    nl.add_output_bus("o", {o0, o1});

    nl.set_clock_period_ps(1000.0); // 1 GHz, as in §3.1
    nl.validate();
    return m;
}

} // namespace rtl
} // namespace vega
