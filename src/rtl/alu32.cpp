#include "rtl/alu32.h"

#include "rtl/blocks.h"

namespace vega::rtl {

HwModule
make_alu32()
{
    HwModule m;
    m.kind = ModuleKind::Alu32;
    m.latency = 2;
    Netlist &nl = m.netlist;
    nl.set_name("alu32");
    nl.set_clock_period_ps(6000.0); // 167 MHz, as in the paper

    // Clock: three levels, eight leaves, all free-running (the ALU is
    // never clock gated in our CPU, so its tree ages uniformly).
    auto leaves = m.clock.grow_balanced(3, 24.0, 14.0);

    Builder b(nl, "alu");

    Bus a_in = nl.add_input_bus("a", 32);
    Bus b_in = nl.add_input_bus("b", 32);
    Bus op_in = nl.add_input_bus("op", 4);

    // Stage 1: operand registers, spread across the first four leaves.
    Bus aq, bq;
    for (size_t i = 0; i < 32; ++i) {
        aq.push_back(b.dff(a_in[i], false, leaves[i / 8]));
        bq.push_back(b.dff(b_in[i], false, leaves[i / 8]));
    }
    Bus opq;
    for (size_t i = 0; i < 4; ++i)
        opq.push_back(b.dff(op_in[i], false, leaves[0]));

    // Decode: subtraction-style ops invert B and inject carry.
    // op encodings: 1 = SUB, 3 = SLT, 4 = SLTU.
    NetId n_op0 = b.not_(opq[0]);
    NetId n_op1 = b.not_(opq[1]);
    NetId n_op2 = b.not_(opq[2]);
    NetId n_op3 = b.not_(opq[3]);
    NetId is_sub = b.and_(b.and_(opq[0], n_op1), b.and_(n_op2, n_op3));
    NetId is_slt = b.and_(b.and_(opq[0], opq[1]), b.and_(n_op2, n_op3));
    NetId is_sltu = b.and_(b.and_(n_op0, n_op1), b.and_(opq[2], n_op3));
    NetId use_sub = b.or_(is_sub, b.or_(is_slt, is_sltu));

    // Shared adder/subtractor.
    Bus b_eff;
    b_eff.reserve(32);
    for (size_t i = 0; i < 32; ++i)
        b_eff.push_back(b.xor_(bq[i], use_sub));
    AddResult add = ripple_add(b, aq, b_eff, use_sub);

    // Comparisons come from the subtraction result.
    NetId sign_diff = b.xor_(aq[31], bq[31]);
    NetId lt_signed = b.mux(add.sum[31], aq[31], sign_diff);
    NetId lt_unsigned = b.not_(add.carry);
    NetId zero = b.const0();
    Bus slt_bus = zext(b, Bus{lt_signed}, 32);
    Bus sltu_bus = zext(b, Bus{lt_unsigned}, 32);
    (void)zero;

    // Shifters: shared right-shifter; SLL reverses in and out.
    Bus shamt(bq.begin(), bq.begin() + 5);
    Bus srl_out = shift_right_sticky(b, aq, shamt, b.const0()).out;
    Bus sra_out = shift_right_sticky(b, aq, shamt, aq[31]).out;
    Bus a_rev(aq.rbegin(), aq.rend());
    Bus sll_rev = shift_right_sticky(b, a_rev, shamt, b.const0()).out;
    Bus sll_out(sll_rev.rbegin(), sll_rev.rend());

    // Bitwise ops.
    Bus xor_out = b.xor_bus(aq, bq);
    Bus or_out = b.or_bus(aq, bq);
    Bus and_out = b.and_bus(aq, bq);

    // Result select. Order matches AluOp; encodings 10..15 alias And
    // via select()'s repeat-last padding.
    Bus result = select(b,
                        {add.sum, add.sum, sll_out, slt_bus, sltu_bus,
                         xor_out, srl_out, sra_out, or_out, and_out},
                        opq);

    // Stage 2: result register, spread across the last four leaves.
    Bus r;
    r.reserve(32);
    for (size_t i = 0; i < 32; ++i)
        r.push_back(b.dff(result[i], false, leaves[4 + i / 8]));
    nl.add_output_bus("r", r);

    nl.validate();
    return m;
}

} // namespace vega::rtl
