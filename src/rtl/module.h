/**
 * @file
 * A hardware module under Vega analysis: netlist + clock network + the
 * microarchitectural metadata that Error Lifting's instruction construction
 * needs (which CPU instructions drive which module ports, §3.3.5).
 */
#pragma once

#include <string>

#include "netlist/netlist.h"
#include "rtl/clock_tree.h"

namespace vega {

/** Which functional unit a module implements. */
enum class ModuleKind { Adder2, Alu32, Fpu32, Mdu32, MemDec16 };

/** True for memory-path substrates (address decoder + word array),
 *  whose faults lift to wrong-address classes (src/mem) rather than
 *  the datapath value-corruption classes. */
inline bool
is_mem_module(ModuleKind kind)
{
    return kind == ModuleKind::MemDec16;
}

const char *module_kind_name(ModuleKind kind);

/** A placed-and-routed functional unit ready for the Vega workflow. */
struct HwModule
{
    ModuleKind kind = ModuleKind::Adder2;
    Netlist netlist;
    ClockTree clock;
    /** Pipeline depth in cycles from input port to output port. */
    int latency = 2;
};

} // namespace vega
