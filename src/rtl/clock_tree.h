/**
 * @file
 * Clock distribution network model.
 *
 * The logic netlist sees an ideal clock; the physical clock tree — buffers,
 * their insertion delays, and their individual BTI stress — is modeled here
 * and consumed by the aging-aware STA's clock analysis (§3.2.2). Clock
 * gating parks subtree outputs at logic 0, so rarely-enabled regions
 * accumulate more NBTI stress and drift later, producing the phase shifts
 * between launch and capture flops that cause hold violations (§2.3.1,
 * Gabbay et al. DVCON'23).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vega {

/** One buffer (or gated buffer) in the clock tree. */
struct ClockBuffer
{
    std::string name;
    /** Parent buffer index; the root is its own parent. */
    uint32_t parent = 0;
    /** Fresh insertion delay of this buffer, ps. */
    double delay_max = 0.0;
    double delay_min = 0.0;
    /**
     * Signal probability of this buffer's output. A free-running clock
     * node toggles symmetrically (SP = 0.5); a node behind a gate that is
     * enabled for duty-cycle d parks at 0 while disabled, so SP = d / 2.
     */
    double sp = 0.5;
};

/**
 * A tree of clock buffers. Leaves are referenced by Cell::clock_leaf.
 */
class ClockTree
{
  public:
    ClockTree();

    /** Add a buffer under @p parent; returns its index. */
    uint32_t add_buffer(uint32_t parent, const std::string &name,
                        double delay_max, double delay_min, double sp = 0.5);

    size_t size() const { return buffers_.size(); }
    const ClockBuffer &buffer(uint32_t id) const { return buffers_[id]; }
    ClockBuffer &buffer_mut(uint32_t id) { return buffers_[id]; }

    /** Root-to-node accumulated fresh insertion delay (max/min), ps. */
    double fresh_arrival_max(uint32_t id) const;
    double fresh_arrival_min(uint32_t id) const;

    /** Chain of buffer ids from root to @p id inclusive. */
    std::vector<uint32_t> path_to(uint32_t id) const;

    /**
     * Build a balanced binary tree of @p levels levels under the root with
     * per-stage delay @p stage_delay_max/min. Returns the leaf ids
     * (2^levels of them). All nodes start free-running (SP 0.5).
     */
    std::vector<uint32_t> grow_balanced(int levels, double stage_delay_max,
                                        double stage_delay_min);

    /**
     * Mark the subtree under @p node as clock-gated with enable duty
     * @p duty (fraction of time the region's clock actually toggles).
     * Sets SP = duty / 2 on every node in the subtree.
     */
    void set_gated_region(uint32_t node, double duty);

  private:
    std::vector<ClockBuffer> buffers_;
};

} // namespace vega
