#include "rtl/blocks.h"

#include "common/logging.h"

namespace vega::rtl {

AddResult
ripple_add(Builder &b, const Bus &x, const Bus &y, NetId cin)
{
    VEGA_CHECK(x.size() == y.size(), "adder width mismatch");
    NetId carry = (cin == kInvalidId) ? b.const0() : cin;
    Bus sum;
    sum.reserve(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
        // Full adder from two half adders.
        NetId axb = b.xor_(x[i], y[i]);
        sum.push_back(b.xor_(axb, carry));
        NetId c1 = b.and_(x[i], y[i]);
        NetId c2 = b.and_(axb, carry);
        carry = b.or_(c1, c2);
    }
    return {sum, carry};
}

AddResult
ripple_sub(Builder &b, const Bus &x, const Bus &y)
{
    return ripple_add(b, x, b.not_bus(y), b.const1());
}

Bus
increment(Builder &b, const Bus &x)
{
    NetId carry = b.const1();
    Bus sum;
    sum.reserve(x.size());
    for (size_t i = 0; i < x.size(); ++i) {
        sum.push_back(b.xor_(x[i], carry));
        if (i + 1 < x.size())
            carry = b.and_(x[i], carry);
    }
    return sum;
}

NetId
is_zero(Builder &b, const Bus &x)
{
    return b.not_(b.or_n(x));
}

NetId
bus_eq(Builder &b, const Bus &x, const Bus &y)
{
    VEGA_CHECK(x.size() == y.size(), "eq width mismatch");
    std::vector<NetId> bits;
    bits.reserve(x.size());
    for (size_t i = 0; i < x.size(); ++i)
        bits.push_back(b.xnor_(x[i], y[i]));
    return b.and_n(bits);
}

NetId
ult(Builder &b, const Bus &x, const Bus &y)
{
    // x < y  iff  x - y borrows  iff  carry-out of x + ~y + 1 is 0.
    AddResult r = ripple_sub(b, x, y);
    return b.not_(r.carry);
}

Bus
zext(Builder &b, const Bus &x, size_t width)
{
    Bus out = x;
    if (out.size() > width) {
        out.resize(width);
        return out;
    }
    if (out.size() < width) {
        NetId zero = b.const0();
        while (out.size() < width)
            out.push_back(zero);
    }
    return out;
}

ShiftResult
shift_right_sticky(Builder &b, const Bus &x, const Bus &sh, NetId fill)
{
    Bus cur = x;
    NetId sticky = b.const0();
    size_t n = cur.size();
    for (size_t k = 0; k < sh.size(); ++k) {
        size_t amount = size_t(1) << k;
        // Bits that fall off the low end this stage.
        size_t lost = std::min(amount, n);
        std::vector<NetId> lost_bits(cur.begin(), cur.begin() + lost);
        NetId stage_sticky = b.and_(sh[k], b.or_n(lost_bits));
        sticky = b.or_(sticky, stage_sticky);

        Bus shifted;
        shifted.reserve(n);
        for (size_t i = 0; i < n; ++i)
            shifted.push_back(i + amount < n ? cur[i + amount] : fill);
        cur = b.mux_bus(cur, shifted, sh[k]);
    }
    return {cur, sticky};
}

Bus
shift_left(Builder &b, const Bus &x, const Bus &sh)
{
    Bus cur = x;
    size_t n = cur.size();
    NetId zero = b.const0();
    for (size_t k = 0; k < sh.size(); ++k) {
        size_t amount = size_t(1) << k;
        Bus shifted;
        shifted.reserve(n);
        for (size_t i = 0; i < n; ++i)
            shifted.push_back(i >= amount ? cur[i - amount] : zero);
        cur = b.mux_bus(cur, shifted, sh[k]);
    }
    return cur;
}

Bus
leading_zero_count(Builder &b, const Bus &x)
{
    // Linear mux scan from the MSB: the count is the index of the first
    // set bit, or |x| when all bits are clear. Width: enough to hold |x|.
    size_t n = x.size();
    size_t w = 1;
    while ((size_t(1) << w) < n + 1)
        ++w;

    Bus count = b.const_bus(w, n); // all-zero case
    // Walk from LSB to MSB so the MSB has the highest priority.
    for (size_t i = 0; i < n; ++i) {
        Bus when_set = b.const_bus(w, n - 1 - i);
        count = b.mux_bus(count, when_set, x[i]);
    }
    return count;
}

Bus
multiply(Builder &b, const Bus &x, const Bus &y)
{
    size_t nx = x.size(), ny = y.size();
    // Accumulate shifted partial products with ripple adders.
    Bus acc = b.const_bus(nx + ny, 0);
    for (size_t j = 0; j < ny; ++j) {
        Bus pp;
        pp.reserve(nx + ny);
        NetId zero = b.const0();
        for (size_t i = 0; i < j; ++i)
            pp.push_back(zero);
        for (size_t i = 0; i < nx; ++i)
            pp.push_back(b.and_(x[i], y[j]));
        while (pp.size() < nx + ny)
            pp.push_back(zero);
        acc = ripple_add(b, acc, pp).sum;
    }
    return acc;
}

Bus
select(Builder &b, const std::vector<Bus> &options, const Bus &sel)
{
    VEGA_CHECK(!options.empty(), "select: no options");
    std::vector<Bus> level = options;
    // Pad to a power of two by repeating the last option.
    size_t need = size_t(1) << sel.size();
    while (level.size() < need)
        level.push_back(level.back());

    for (size_t k = 0; k < sel.size(); ++k) {
        std::vector<Bus> next;
        for (size_t i = 0; i + 1 < level.size(); i += 2)
            next.push_back(b.mux_bus(level[i], level[i + 1], sel[k]));
        level = std::move(next);
    }
    VEGA_CHECK(level.size() == 1, "select: reduction error");
    return level[0];
}

} // namespace vega::rtl
