#include "rtl/fpu32.h"

#include "common/logging.h"
#include "rtl/blocks.h"

namespace vega::rtl {

namespace {

/** Result of the shared round-and-pack unit. */
struct Packed
{
    Bus bits;   ///< 32-bit result
    NetId of;   ///< overflow raised
    NetId uf;   ///< underflow (flush) raised
    NetId nx;   ///< inexact raised
};

/** Bus of the 32-bit encoding {sign, exp[7:0], man[22:0]}, LSB first. */
Bus
pack_bits(const Bus &man23, const Bus &exp8, NetId sign)
{
    Bus out = man23;
    out.insert(out.end(), exp8.begin(), exp8.end());
    out.push_back(sign);
    return out;
}

/**
 * Round-to-nearest-even and final packing (mirrors softfp round_pack).
 *
 * @param exp10 biased exponent, 10-bit two's complement
 * @param man24 normalized significand, bit 23 = leading one
 */
Packed
round_pack(Builder &b, NetId sign, const Bus &exp10, const Bus &man24,
           NetId g, NetId r, NetId s)
{
    VEGA_CHECK(exp10.size() == 10 && man24.size() == 24, "round_pack widths");

    NetId inexact = b.or_(g, b.or_(r, s));
    NetId round_up = b.and_(g, b.or_(r, b.or_(s, man24[0])));

    // man24 + round_up, 25 bits.
    Bus man25 = zext(b, man24, 25);
    Bus rup = zext(b, Bus{round_up}, 25);
    Bus m = ripple_add(b, man25, rup).sum;

    // Carry into bit 24: shift right one, bump exponent.
    NetId carried = m[24];
    Bus m_shift(m.begin() + 1, m.begin() + 25); // m >> 1, 24 bits
    Bus m_norm = b.mux_bus(Bus(m.begin(), m.begin() + 24), m_shift, carried);

    Bus exp_inc = increment(b, exp10);
    Bus exp_fin = b.mux_bus(exp10, exp_inc, carried);

    // exp >= 255 (signed): exp - 255 has sign 0 and is not negative.
    Bus c255 = b.const_bus(10, 255);
    AddResult ge = ripple_sub(b, exp_fin, c255);
    NetId overflow = b.not_(ge.sum[9]); // exp - 255 >= 0

    // exp <= 0 (signed): exp - 1 < 0.
    Bus c1 = b.const_bus(10, 1);
    AddResult le = ripple_sub(b, exp_fin, c1);
    NetId underflow = b.and_(le.sum[9], b.not_(overflow));

    // Normal packing.
    Bus man_out(m_norm.begin(), m_norm.begin() + 23);
    Bus exp8(exp_fin.begin(), exp_fin.begin() + 8);
    Bus normal = pack_bits(man_out, exp8, sign);

    // Overflow -> signed infinity; underflow -> signed zero (FTZ).
    Bus zero23 = b.const_bus(23, 0);
    Bus ones8 = b.const_bus(8, 255);
    Bus zeros8 = b.const_bus(8, 0);
    Bus inf = pack_bits(zero23, ones8, sign);
    Bus zero = pack_bits(zero23, zeros8, sign);

    Bus out = b.mux_bus(normal, inf, overflow);
    out = b.mux_bus(out, zero, underflow);

    Packed p;
    p.bits = out;
    p.of = overflow;
    p.uf = underflow;
    p.nx = b.or_(inexact, b.or_(overflow, underflow));
    return p;
}

/** Unpacked operand signals. */
struct Operand
{
    NetId sign;
    Bus exp;   ///< 8-bit raw exponent
    Bus man;   ///< 23-bit fraction
    Bus mag;   ///< 31-bit magnitude key (0 when flushed to zero)
    Bus sig;   ///< 24-bit significand with implicit one (0 when zero)
    NetId zero;
    NetId inf;
    NetId nan;
    NetId snan;
};

Operand
unpack(Builder &b, const Bus &v)
{
    Operand u;
    u.sign = v[31];
    u.exp = Bus(v.begin() + 23, v.begin() + 31);
    u.man = Bus(v.begin(), v.begin() + 23);
    NetId exp_zero = is_zero(b, u.exp);
    NetId exp_ones = b.and_n(u.exp);
    NetId man_nonzero = b.or_n(u.man);
    u.zero = exp_zero; // FTZ: subnormals are zeros
    u.nan = b.and_(exp_ones, man_nonzero);
    u.inf = b.and_(exp_ones, b.not_(man_nonzero));
    u.snan = b.and_(u.nan, b.not_(u.man[22]));

    NetId not_zero = b.not_(u.zero);
    Bus raw_mag = u.man;
    raw_mag.insert(raw_mag.end(), u.exp.begin(), u.exp.end()); // 31 bits
    u.mag.reserve(31);
    for (NetId n : raw_mag)
        u.mag.push_back(b.and_(n, not_zero));
    u.sig = u.man;
    u.sig.push_back(not_zero); // implicit one
    return u;
}

Bus
make_const_inf(Builder &b, NetId sign)
{
    return pack_bits(b.const_bus(23, 0), b.const_bus(8, 255), sign);
}

Bus
make_const_zero(Builder &b, NetId sign)
{
    return pack_bits(b.const_bus(23, 0), b.const_bus(8, 0), sign);
}

/** The floating-point adder/subtractor datapath (softfp fadd). */
struct AddUnit
{
    Bus result;  ///< 32 bits
    NetId nv, of, uf, nx;
};

AddUnit
build_fadd(Builder &b, const Bus &a_bits, const Bus &b_bits, NetId flip_b)
{
    // Effective second operand: sign xored with flip_b (fsub support).
    Bus b_eff = b_bits;
    b_eff[31] = b.xor_(b_bits[31], flip_b);

    Operand a = unpack(b, a_bits);
    Operand bb = unpack(b, b_eff);

    // ---- Magnitude ordering --------------------------------------------
    NetId swap = ult(b, a.mag, bb.mag);
    NetId sign_hi = b.mux(a.sign, bb.sign, swap);
    NetId sign_lo = b.mux(bb.sign, a.sign, swap);
    Bus exp_hi = b.mux_bus(a.exp, bb.exp, swap);
    Bus exp_lo = b.mux_bus(bb.exp, a.exp, swap);
    Bus sig_hi = b.mux_bus(a.sig, bb.sig, swap);
    Bus sig_lo = b.mux_bus(bb.sig, a.sig, swap);

    // ---- Alignment ------------------------------------------------------
    Bus d = ripple_sub(b, exp_hi, exp_lo).sum; // 8-bit, >= 0 by ordering

    // 27-bit datapath: significand << 3 (G/R/S slots).
    NetId zero = b.const0();
    Bus s_hi{zero, zero, zero};
    s_hi.insert(s_hi.end(), sig_hi.begin(), sig_hi.end()); // 27 bits
    Bus s_lo_pre{zero, zero, zero};
    s_lo_pre.insert(s_lo_pre.end(), sig_lo.begin(), sig_lo.end());

    ShiftResult sh = shift_right_sticky(b, s_lo_pre, d, zero);
    Bus s_lo = sh.out;
    NetId sticky0 = sh.sticky;

    NetId eff_sub = b.xor_(sign_hi, sign_lo);

    // ---- Same-sign addition ---------------------------------------------
    AddResult sum28 = ripple_add(b, zext(b, s_hi, 28), zext(b, s_lo, 28));
    NetId add_carry = sum28.sum[27];
    // On carry: v = sum >> 1, sticky |= bit0.
    Bus add_v_carry(sum28.sum.begin() + 1, sum28.sum.begin() + 28); // 27b
    Bus add_v = b.mux_bus(Bus(sum28.sum.begin(), sum28.sum.begin() + 27),
                          add_v_carry, add_carry);
    NetId add_sticky = b.or_(sticky0, b.and_(add_carry, sum28.sum[0]));
    Bus add_exp = b.mux_bus(zext(b, exp_hi, 10),
                            increment(b, zext(b, exp_hi, 10)), add_carry);

    // ---- Effective subtraction ------------------------------------------
    // Widen one bit so sticky participates as a borrow.
    Bus wide_hi{zero};
    wide_hi.insert(wide_hi.end(), s_hi.begin(), s_hi.end()); // 28 bits
    Bus wide_lo{sticky0};
    wide_lo.insert(wide_lo.end(), s_lo.begin(), s_lo.end());
    Bus diff = ripple_sub(b, wide_hi, wide_lo).sum; // 28 bits, >= 0
    NetId sub_sticky = diff[0];
    Bus sub_v(diff.begin() + 1, diff.begin() + 28); // 27 bits

    NetId v_zero = is_zero(b, sub_v);
    NetId cancel_exact = b.and_(v_zero, b.not_(sub_sticky));
    NetId cancel_flush = b.and_(v_zero, sub_sticky);

    // Normalize: shift left by min(lzc, exp_hi).
    Bus lz = leading_zero_count(b, sub_v); // 5 bits (27-input)
    Bus lz10 = zext(b, lz, 10);
    Bus exp_hi10 = zext(b, exp_hi, 10);
    NetId lz_bigger = ult(b, exp_hi10, lz10);
    Bus shift_amt10 = b.mux_bus(lz10, exp_hi10, lz_bigger);
    Bus shift_amt(shift_amt10.begin(), shift_amt10.begin() + 5);
    Bus sub_norm = shift_left(b, sub_v, shift_amt);
    Bus sub_exp = ripple_sub(b, exp_hi10, shift_amt10).sum;

    // ---- Merge add/sub paths ---------------------------------------------
    Bus v = b.mux_bus(add_v, sub_norm, eff_sub);
    Bus exp10 = b.mux_bus(add_exp, sub_exp, eff_sub);
    NetId sticky = b.mux(add_sticky, sub_sticky, eff_sub);

    Bus man24(v.begin() + 3, v.begin() + 27);
    NetId g = v[2], r = v[1];
    NetId s = b.or_(v[0], sticky);
    Packed packed = round_pack(b, sign_hi, exp10, man24, g, r, s);

    // Exact cancellation -> +0; datapath-collapse -> flushed zero + UF|NX.
    Bus plus_zero = make_const_zero(b, zero);
    Bus signed_zero = make_const_zero(b, sign_hi);
    NetId sub_active = eff_sub;
    NetId take_plus_zero = b.and_(sub_active, cancel_exact);
    NetId take_flush = b.and_(sub_active, cancel_flush);

    Bus dp_result = b.mux_bus(packed.bits, plus_zero, take_plus_zero);
    dp_result = b.mux_bus(dp_result, signed_zero, take_flush);
    NetId dp_uf = b.or_(b.and_(packed.uf, b.not_(take_plus_zero)),
                        take_flush);
    NetId dp_nx0 = b.and_(packed.nx, b.not_(take_plus_zero));
    NetId dp_nx = b.or_(dp_nx0, take_flush);
    NetId dp_of = b.and_(packed.of,
                         b.not_(b.or_(take_plus_zero, take_flush)));

    // ---- Specials ---------------------------------------------------------
    NetId any_nan = b.or_(a.nan, bb.nan);
    NetId any_snan = b.or_(a.snan, bb.snan);
    NetId both_inf = b.and_(a.inf, bb.inf);
    NetId inf_conflict = b.and_(both_inf, b.xor_(a.sign, bb.sign));
    NetId a_only_inf = a.inf;
    NetId b_only_inf = bb.inf;
    NetId both_zero = b.and_(a.zero, bb.zero);

    Bus qnan = pack_bits(b.const_bus(23, 0x400000), b.const_bus(8, 255),
                         zero);
    Bus inf_a = make_const_inf(b, a.sign);
    Bus inf_b = make_const_inf(b, bb.sign);
    Bus zero_both = make_const_zero(b, b.and_(a.sign, bb.sign));
    // Flushed pass-through of the non-zero operand.
    Bus a_flushed = pack_bits(a.man, a.exp, a.sign);
    Bus b_flushed = pack_bits(bb.man, bb.exp, bb.sign);

    // Priority (highest last applied): nan > inf conflict > a inf > b inf
    // > both zero > a zero -> b > b zero -> a > datapath.
    Bus res = dp_result;
    NetId nv = b.const0();
    NetId of = dp_of, uf = dp_uf, nx = dp_nx;

    res = b.mux_bus(res, a_flushed, bb.zero);
    res = b.mux_bus(res, b_flushed, a.zero);
    res = b.mux_bus(res, zero_both, both_zero);
    res = b.mux_bus(res, inf_b, b_only_inf);
    res = b.mux_bus(res, inf_a, a_only_inf);
    res = b.mux_bus(res, qnan, inf_conflict);
    res = b.mux_bus(res, qnan, any_nan);

    NetId special = b.or_(any_nan,
                          b.or_(a_only_inf,
                                b.or_(b_only_inf,
                                      b.or_(both_zero,
                                            b.or_(a.zero, bb.zero)))));
    NetId kill = special;
    of = b.and_(of, b.not_(kill));
    uf = b.and_(uf, b.not_(kill));
    nx = b.and_(nx, b.not_(kill));
    nv = b.or_(b.and_(any_nan, any_snan),
               b.and_(b.not_(any_nan), inf_conflict));

    AddUnit out;
    out.result = res;
    out.nv = nv;
    out.of = of;
    out.uf = uf;
    out.nx = nx;
    return out;
}

/** The floating-point multiplier datapath (softfp fmul). */
AddUnit
build_fmul(Builder &b, const Bus &a_bits, const Bus &b_bits)
{
    Operand a = unpack(b, a_bits);
    Operand bb = unpack(b, b_bits);
    NetId sign = b.xor_(a.sign, bb.sign);

    // exp = ea + eb - 127 in 10-bit two's complement.
    Bus ea10 = zext(b, a.exp, 10);
    Bus eb10 = zext(b, bb.exp, 10);
    Bus esum = ripple_add(b, ea10, eb10).sum;
    Bus c127 = b.const_bus(10, 127);
    Bus exp10 = ripple_sub(b, esum, c127).sum;

    // 24x24 significand product.
    Bus p = multiply(b, a.sig, bb.sig); // 48 bits

    // Normalize leading one to bit 47.
    NetId top = p[47];
    Bus p_shift;
    p_shift.reserve(48);
    p_shift.push_back(b.const0());
    for (size_t i = 0; i + 1 < 48; ++i)
        p_shift.push_back(p[i]);
    // Top set: product in [2,4), exponent bumps. Otherwise shift left.
    Bus p_norm = b.mux_bus(p_shift, p, top);
    Bus exp_inc = increment(b, exp10);
    Bus exp_norm = b.mux_bus(exp10, exp_inc, top);

    Bus man24(p_norm.begin() + 24, p_norm.begin() + 48);
    NetId g = p_norm[23];
    NetId r = p_norm[22];
    Bus low(p_norm.begin(), p_norm.begin() + 22);
    NetId s = b.or_n(low);

    Packed packed = round_pack(b, sign, exp_norm, man24, g, r, s);

    // Specials.
    NetId any_nan = b.or_(a.nan, bb.nan);
    NetId any_snan = b.or_(a.snan, bb.snan);
    NetId zero_times_inf = b.or_(b.and_(a.inf, bb.zero),
                                 b.and_(bb.inf, a.zero));
    NetId any_inf = b.or_(a.inf, bb.inf);
    NetId any_zero = b.or_(a.zero, bb.zero);

    Bus qnan = pack_bits(b.const_bus(23, 0x400000), b.const_bus(8, 255),
                         b.const0());
    Bus inf_s = make_const_inf(b, sign);
    Bus zero_s = make_const_zero(b, sign);

    Bus res = packed.bits;
    res = b.mux_bus(res, zero_s, any_zero);
    res = b.mux_bus(res, inf_s, any_inf);
    res = b.mux_bus(res, qnan, zero_times_inf);
    res = b.mux_bus(res, qnan, any_nan);

    NetId special = b.or_(any_nan,
                          b.or_(zero_times_inf, b.or_(any_inf, any_zero)));
    AddUnit out;
    out.result = res;
    out.nv = b.or_(b.and_(any_nan, any_snan),
                   b.and_(b.not_(any_nan), zero_times_inf));
    out.of = b.and_(packed.of, b.not_(special));
    out.uf = b.and_(packed.uf, b.not_(special));
    out.nx = b.and_(packed.nx, b.not_(special));
    return out;
}

/** Comparison / min / max signals. */
struct CmpUnit
{
    NetId eq, lt, le;       ///< NaN-free ordering results
    NetId any_nan, any_snan;
    Bus min_bits, max_bits; ///< 32-bit min/max results (NaN-suppressing)
};

CmpUnit
build_cmp(Builder &b, const Bus &a_bits, const Bus &b_bits)
{
    Operand a = unpack(b, a_bits);
    Operand bb = unpack(b, b_bits);
    CmpUnit u;
    u.any_nan = b.or_(a.nan, bb.nan);
    u.any_snan = b.or_(a.snan, bb.snan);

    NetId both_zero = b.and_(a.zero, bb.zero);
    NetId mag_eq = bus_eq(b, a.mag, bb.mag);
    NetId mag_lt = ult(b, a.mag, bb.mag);
    NetId mag_gt = b.and_(b.not_(mag_eq), b.not_(mag_lt));

    NetId same_sign = b.xnor_(a.sign, bb.sign);
    // eq: +-0 equal, otherwise identical sign and magnitude.
    u.eq = b.or_(both_zero, b.and_(mag_eq, b.and_(same_sign,
                                                  b.not_(a.zero))));

    // lt, ignoring NaN (handled by the caller):
    //  - both zero: false
    //  - a zero: b positive nonzero
    //  - b zero: a negative nonzero
    //  - signs differ: a negative
    //  - same sign: magnitude order, reversed for negatives
    NetId lt_same_pos = b.and_(b.not_(a.sign), mag_lt);
    NetId lt_same_neg = b.and_(a.sign, mag_gt);
    NetId lt_same = b.or_(lt_same_pos, lt_same_neg);
    NetId lt_diff = a.sign;
    NetId lt_nz = b.mux(lt_same, lt_diff, b.xor_(a.sign, bb.sign));
    NetId lt_a_zero = b.and_(b.not_(bb.sign), b.not_(bb.zero));
    NetId lt_b_zero = b.and_(a.sign, b.not_(a.zero));
    NetId lt1 = b.mux(lt_nz, lt_b_zero, bb.zero);
    NetId lt2 = b.mux(lt1, lt_a_zero, a.zero);
    u.lt = b.and_(lt2, b.not_(both_zero));
    u.le = b.or_(u.lt, u.eq);

    // min/max with the -0 < +0 tie-break and NaN suppression.
    NetId eq_signs_differ = b.and_(u.eq, b.xor_(a.sign, bb.sign));
    NetId lt_adj = b.or_(u.lt, b.and_(eq_signs_differ, a.sign));
    NetId eq_adj = b.and_(u.eq, b.not_(b.xor_(a.sign, bb.sign)));
    NetId pick_a_min = b.or_(lt_adj, eq_adj);
    NetId pick_a_max = b.not_(lt_adj); // gt_adj | eq_adj

    Bus qnan = pack_bits(b.const_bus(23, 0x400000), b.const_bus(8, 255),
                         b.const0());
    NetId both_nan = b.and_(a.nan, bb.nan);

    Bus min_r = b.mux_bus(b_bits, a_bits, pick_a_min);
    min_r = b.mux_bus(min_r, a_bits, bb.nan);
    min_r = b.mux_bus(min_r, b_bits, a.nan);
    min_r = b.mux_bus(min_r, qnan, both_nan);
    u.min_bits = min_r;

    Bus max_r = b.mux_bus(b_bits, a_bits, pick_a_max);
    max_r = b.mux_bus(max_r, a_bits, bb.nan);
    max_r = b.mux_bus(max_r, b_bits, a.nan);
    max_r = b.mux_bus(max_r, qnan, both_nan);
    u.max_bits = max_r;
    return u;
}

} // namespace

HwModule
make_fpu32()
{
    HwModule m;
    m.kind = ModuleKind::Fpu32;
    m.latency = 2;
    Netlist &nl = m.netlist;
    nl.set_name("fpu32");
    nl.set_clock_period_ps(4000.0); // 250 MHz, as in the paper

    // Clock: a four-level spine plus a 44-buffer local chain per leaf
    // (gated domains carry the ICG plus a deep local tree).
    // Region assignment models FPnew-style clock gating:
    //   leaves 0..7  — always-on input/issue domain (SP 0.5)
    //   leaves 8..11 — main datapath, gated with ~25% activity (SP 0.125)
    //   leaves 12..15 — flags/handshake capture, rarely enabled (SP 0.01)
    // Rare-region buffers park at 0 and age fastest; the capture clock
    // there drifts late, creating the module's hold-violation endpoints.
    auto spine = m.clock.grow_balanced(4, 28.0, 16.0);
    std::vector<uint32_t> leaves;
    for (size_t i = 0; i < spine.size(); ++i) {
        double sp = i < 8 ? 0.5 : (i < 12 ? 0.125 : 0.01);
        uint32_t cur = spine[i];
        for (int k = 0; k < 44; ++k) {
            cur = m.clock.add_buffer(cur,
                                     "ckchain_" + std::to_string(i) + "_" +
                                         std::to_string(k),
                                     28.0, 16.0, sp);
        }
        leaves.push_back(cur);
    }

    Builder b(nl, "fpu");

    Bus a_in = nl.add_input_bus("a", 32);
    Bus b_in = nl.add_input_bus("b", 32);
    Bus op_in = nl.add_input_bus("op", 3);
    Bus valid_in = nl.add_input_bus("valid", 1);
    Bus clear_in = nl.add_input_bus("clear", 1);

    // Stage 1 registers (always-on domain).
    Bus aq, bq;
    for (size_t i = 0; i < 32; ++i) {
        aq.push_back(b.dff(a_in[i], false, leaves[i / 8]));
        bq.push_back(b.dff(b_in[i], false, leaves[4 + i / 8]));
    }
    Bus opq;
    for (size_t i = 0; i < 3; ++i)
        opq.push_back(b.dff(op_in[i], false, leaves[0]));
    NetId vq = b.dff(valid_in[0], false, leaves[1]);
    NetId clearq = b.dff(clear_in[0], false, leaves[2]);

    // Transaction-tag bit: toggles on every accepted operation. It is
    // hardware-generated (software predicts it from the op count but
    // cannot drive it directly), mirroring FPnew's transaction ids.
    NetId dbgq = nl.new_net("dbg_q");
    NetId dbg_next = b.xor_(dbgq, vq);
    nl.add_dff("fpu_dbg_dff", dbg_next, dbgq, false, leaves[3]);

    // Opcode decode (FpuOp encoding).
    NetId n0 = b.not_(opq[0]), n1 = b.not_(opq[1]), n2 = b.not_(opq[2]);
    NetId is_sub = b.and_(b.and_(opq[0], n1), n2);
    NetId is_mul = b.and_(b.and_(n0, opq[1]), n2);
    NetId is_eq = b.and_(b.and_(opq[0], opq[1]), n2);
    NetId is_lt = b.and_(b.and_(n0, n1), opq[2]);
    NetId is_le = b.and_(b.and_(opq[0], n1), opq[2]);
    NetId is_min = b.and_(b.and_(n0, opq[1]), opq[2]);
    NetId is_max = b.and_(b.and_(opq[0], opq[1]), opq[2]);
    NetId is_cmp = b.or_(is_eq, b.or_(is_lt, is_le));
    NetId is_minmax = b.or_(is_min, is_max);

    // Datapath units.
    AddUnit addu = build_fadd(b, aq, bq, is_sub);
    AddUnit mulu = build_fmul(b, aq, bq);
    CmpUnit cmpu = build_cmp(b, aq, bq);

    // Comparison result bit (0 on any NaN).
    NetId cmp_raw = b.mux(b.mux(cmpu.eq, cmpu.lt, is_lt), cmpu.le, is_le);
    NetId cmp_bit = b.and_(cmp_raw, b.not_(cmpu.any_nan));
    Bus cmp_bus = zext(b, Bus{cmp_bit}, 32);

    Bus mm_bus = b.mux_bus(cmpu.min_bits, cmpu.max_bits, is_max);

    // Result select: default add/sub, overridden by mul/cmp/minmax.
    Bus r_sel = addu.result;
    r_sel = b.mux_bus(r_sel, mulu.result, is_mul);
    r_sel = b.mux_bus(r_sel, cmp_bus, is_cmp);
    r_sel = b.mux_bus(r_sel, mm_bus, is_minmax);

    // Flags select (NV DZ OF UF NX = bits 4..0 of the flags bus).
    NetId cmp_nv = b.mux(b.and_(cmpu.any_snan, cmpu.any_nan), cmpu.any_nan,
                         b.or_(is_lt, is_le));
    NetId mm_nv = cmpu.any_snan;

    NetId nv = addu.nv;
    nv = b.mux(nv, mulu.nv, is_mul);
    nv = b.mux(nv, cmp_nv, is_cmp);
    nv = b.mux(nv, mm_nv, is_minmax);

    NetId arith = b.or_(b.not_(b.or_(is_cmp, is_minmax)), b.const0());
    NetId of = b.and_(b.mux(addu.of, mulu.of, is_mul), arith);
    NetId uf = b.and_(b.mux(addu.uf, mulu.uf, is_mul), arith);
    NetId nx = b.and_(b.mux(addu.nx, mulu.nx, is_mul), arith);

    Bus flags_new{nx, uf, of, b.const0(), nv}; // LSB first: NX UF OF DZ NV

    // Sticky flags register (rare clock-gated region): next = clear ? 0
    // : old | (valid ? new : 0).
    Bus flags_q_nets;
    // Create the register outputs first so the OR can read them.
    for (size_t i = 0; i < 5; ++i)
        flags_q_nets.push_back(nl.new_net("flags_q[" + std::to_string(i) +
                                          "]"));
    Bus flags_out;
    for (size_t i = 0; i < 5; ++i) {
        NetId gated_new = b.and_(flags_new[i], vq);
        NetId ored = b.or_(flags_q_nets[i], gated_new);
        NetId next = b.and_(ored, b.not_(clearq));
        nl.add_dff("fpu_flags_dff" + std::to_string(i), next,
                   flags_q_nets[i], false, leaves[12 + i % 2]);
        flags_out.push_back(flags_q_nets[i]);
    }

    // Stage 2 result registers (main gated datapath domain).
    Bus r;
    for (size_t i = 0; i < 32; ++i)
        r.push_back(b.dff(r_sel[i], false, leaves[8 + i / 8]));

    // Handshake and tag pipeline: launch flops live in the always-on
    // domain, capture flops in the rarely-enabled region — these direct
    // register-to-register wires are the hold-violation paths.
    NetId valid_out = b.dff(vq, false, leaves[14]);
    NetId ack_out = b.dff(vq, false, leaves[15]);
    NetId dbg_out = b.dff(dbgq, false, leaves[13]);

    nl.add_output_bus("r", r);
    nl.add_output_bus("flags", flags_out);
    nl.add_output_bus("valid_out", {valid_out});
    nl.add_output_bus("ack", {ack_out});
    nl.add_output_bus("dbg_out", {dbg_out});

    nl.validate();
    return m;
}

} // namespace vega::rtl
