/**
 * @file
 * Generic gate-level arithmetic blocks.
 *
 * These are the technology-mapped building blocks the rtl generators
 * compose into the ALU and FPU netlists — the role a synthesis tool's
 * arithmetic library (ripple adders, barrel shifters, array multipliers,
 * leading-zero counters) plays in the paper's flow.
 */
#pragma once

#include <vector>

#include "netlist/builder.h"

namespace vega::rtl {

/** Sum bus plus the final carry-out. */
struct AddResult
{
    Bus sum;
    NetId carry;
};

/** a + b + cin; pass kInvalidId as @p cin for a hard 0. */
AddResult ripple_add(Builder &b, const Bus &x, const Bus &y,
                     NetId cin = kInvalidId);

/** a - b; returns sum and carry (carry == 1 means no borrow, i.e. a >= b). */
AddResult ripple_sub(Builder &b, const Bus &x, const Bus &y);

/** a + 1. */
Bus increment(Builder &b, const Bus &x);

/** 1 iff all bits of @p x are zero. */
NetId is_zero(Builder &b, const Bus &x);

/** 1 iff x == y bitwise. */
NetId bus_eq(Builder &b, const Bus &x, const Bus &y);

/** 1 iff x < y, unsigned. */
NetId ult(Builder &b, const Bus &x, const Bus &y);

/** Zero-extend (or truncate) to @p width. */
Bus zext(Builder &b, const Bus &x, size_t width);

/** Result of a right shift that tracks the OR of shifted-out bits. */
struct ShiftResult
{
    Bus out;
    NetId sticky;
};

/**
 * Logical/arithmetic barrel right shift by the unsigned amount @p sh.
 * Vacated positions fill with @p fill (a net; pass builder const0 for
 * logical). Shift amounts >= width shift everything out.
 */
ShiftResult shift_right_sticky(Builder &b, const Bus &x, const Bus &sh,
                               NetId fill);

/** Barrel left shift, zero fill. */
Bus shift_left(Builder &b, const Bus &x, const Bus &sh);

/** Count of leading zeros of @p x (MSB-first), as a minimal-width bus. */
Bus leading_zero_count(Builder &b, const Bus &x);

/** Unsigned array multiplier: result width = |x| + |y|. */
Bus multiply(Builder &b, const Bus &x, const Bus &y);

/**
 * Binary-select mux tree: options[sel]. All options must share a width
 * and options.size() must be a power-of-two reachable by |sel| bits
 * (missing entries select option 0's width duplicate — caller pads).
 */
Bus select(Builder &b, const std::vector<Bus> &options, const Bus &sel);

} // namespace vega::rtl
