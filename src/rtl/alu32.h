/**
 * @file
 * Gate-level 32-bit RISC-V ALU (the paper's first analysis target).
 *
 * Two-stage pipeline mirroring the CV32E40P EX stage structure: operand
 * and opcode registers, a combinational compute cloud (shared
 * adder/subtractor, barrel shifters, comparators, logic ops), and a
 * registered result. Targets 167 MHz (6 ns period) like the paper's ALU.
 *
 * Ports: inputs a[31:0], b[31:0], op[3:0]; output r[31:0].
 */
#pragma once

#include "rtl/module.h"

namespace vega::rtl {

HwModule make_alu32();

} // namespace vega::rtl
