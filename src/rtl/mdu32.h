/**
 * @file
 * Gate-level 32-bit multiply unit (the RV32M mul/mulh/mulhu subset) —
 * the third Vega analysis target, demonstrating that the workflow is
 * not ALU/FPU-specific.
 *
 * Two-stage pipeline like the other units: operand/opcode registers, a
 * 32x32 array multiplier with the standard signed-high correction
 * (mulh = mulhu - (a<0 ? b : 0) - (b<0 ? a : 0)), and a registered
 * result. Targets 143 MHz (7 ns period).
 *
 * Ports: inputs a[31:0], b[31:0], op[1:0]; output r[31:0].
 */
#pragma once

#include "rtl/module.h"

namespace vega::rtl {

HwModule make_mdu32();

} // namespace vega::rtl
