/**
 * @file
 * The paper's running example: the pipelined 2-bit adder of Listing 1,
 * synthesized into the exact netlist of Figure 3 (cells $1..$10).
 */
#pragma once

#include "rtl/module.h"

namespace vega::rtl {

/**
 * Build the Listing-1 adder. Ports: inputs a[1:0], b[1:0]; output o[1:0].
 * Targets 1 GHz (1000 ps period) as in §3.1.
 */
HwModule make_adder2();

} // namespace vega::rtl
