#include "rtl/mdu32.h"

#include "rtl/blocks.h"

namespace vega::rtl {

HwModule
make_mdu32()
{
    HwModule m;
    m.kind = ModuleKind::Mdu32;
    m.latency = 2;
    Netlist &nl = m.netlist;
    nl.set_name("mdu32");
    nl.set_clock_period_ps(7000.0); // 143 MHz

    auto leaves = m.clock.grow_balanced(3, 24.0, 14.0);

    Builder b(nl, "mdu");

    Bus a_in = nl.add_input_bus("a", 32);
    Bus b_in = nl.add_input_bus("b", 32);
    Bus op_in = nl.add_input_bus("op", 2);

    Bus aq, bq;
    for (size_t i = 0; i < 32; ++i) {
        aq.push_back(b.dff(a_in[i], false, leaves[i / 8]));
        bq.push_back(b.dff(b_in[i], false, leaves[i / 8]));
    }
    Bus opq;
    for (size_t i = 0; i < 2; ++i)
        opq.push_back(b.dff(op_in[i], false, leaves[0]));

    // 32x32 unsigned product.
    Bus p = multiply(b, aq, bq); // 64 bits
    Bus lo(p.begin(), p.begin() + 32);
    Bus hi(p.begin() + 32, p.begin() + 64);

    // Signed high word: mulh = mulhu - (a<0 ? b : 0) - (b<0 ? a : 0).
    Bus zero32 = b.const_bus(32, 0);
    Bus corr_a = b.mux_bus(zero32, bq, aq[31]);
    Bus corr_b = b.mux_bus(zero32, aq, bq[31]);
    Bus h1 = ripple_sub(b, hi, corr_a).sum;
    Bus mulh = ripple_sub(b, h1, corr_b).sum;

    // op: 0 = mul, 1 = mulh, 2/3 = mulhu (select() repeats the last).
    Bus result = select(b, {lo, mulh, hi}, opq);

    Bus r;
    for (size_t i = 0; i < 32; ++i)
        r.push_back(b.dff(result[i], false, leaves[4 + i / 8]));
    nl.add_output_bus("r", r);

    nl.validate();
    return m;
}

} // namespace vega::rtl
