#include "rtl/clock_tree.h"

#include "common/logging.h"

namespace vega {

ClockTree::ClockTree()
{
    ClockBuffer root;
    root.name = "clkroot";
    root.parent = 0;
    root.delay_max = 0.0;
    root.delay_min = 0.0;
    root.sp = 0.5;
    buffers_.push_back(root);
}

uint32_t
ClockTree::add_buffer(uint32_t parent, const std::string &name,
                      double delay_max, double delay_min, double sp)
{
    VEGA_CHECK(parent < buffers_.size(), "clock buffer parent");
    ClockBuffer b;
    b.name = name;
    b.parent = parent;
    b.delay_max = delay_max;
    b.delay_min = delay_min;
    b.sp = sp;
    buffers_.push_back(b);
    return static_cast<uint32_t>(buffers_.size() - 1);
}

double
ClockTree::fresh_arrival_max(uint32_t id) const
{
    double t = 0.0;
    for (uint32_t b : path_to(id))
        t += buffers_[b].delay_max;
    return t;
}

double
ClockTree::fresh_arrival_min(uint32_t id) const
{
    double t = 0.0;
    for (uint32_t b : path_to(id))
        t += buffers_[b].delay_min;
    return t;
}

std::vector<uint32_t>
ClockTree::path_to(uint32_t id) const
{
    VEGA_CHECK(id < buffers_.size(), "clock buffer id");
    std::vector<uint32_t> rev;
    uint32_t cur = id;
    while (true) {
        rev.push_back(cur);
        if (buffers_[cur].parent == cur)
            break;
        cur = buffers_[cur].parent;
    }
    return {rev.rbegin(), rev.rend()};
}

std::vector<uint32_t>
ClockTree::grow_balanced(int levels, double stage_delay_max,
                         double stage_delay_min)
{
    std::vector<uint32_t> frontier{0};
    for (int level = 0; level < levels; ++level) {
        std::vector<uint32_t> next;
        for (uint32_t parent : frontier) {
            for (int k = 0; k < 2; ++k) {
                std::string name = "ckbuf_l" + std::to_string(level + 1) +
                                   "_" + std::to_string(next.size());
                next.push_back(add_buffer(parent, name, stage_delay_max,
                                          stage_delay_min));
            }
        }
        frontier = std::move(next);
    }
    return frontier;
}

void
ClockTree::set_gated_region(uint32_t node, double duty)
{
    VEGA_CHECK(duty >= 0.0 && duty <= 1.0, "gating duty range");
    // SP of a gated clock node: toggling (SP 0.5) for `duty` of the time,
    // parked at 0 otherwise.
    double sp = duty * 0.5;
    for (uint32_t id = 0; id < buffers_.size(); ++id) {
        // Node is in the subtree if walking parents reaches `node`.
        uint32_t cur = id;
        while (true) {
            if (cur == node) {
                buffers_[id].sp = sp;
                break;
            }
            if (buffers_[cur].parent == cur)
                break;
            cur = buffers_[cur].parent;
        }
    }
}

} // namespace vega
