/**
 * @file
 * Gate-level single-precision FPU (the paper's second analysis target,
 * standing in for the CV32E40P's FPnew instance).
 *
 * Two-stage pipeline: operand/opcode/valid registers, a combinational
 * datapath (shared add/sub unit, array multiplier, comparator, min/max),
 * and registered outputs. Arithmetic is bit-exact against cpu/softfp:
 * binary32, round-to-nearest-even, flush-to-zero, canonical NaN, RISC-V
 * fflags. Targets 250 MHz (4 ns) like the paper's FPU.
 *
 * Ports:
 *   in : a[31:0], b[31:0], op[2:0], valid[0:0], clear[0:0]
 *   out: r[31:0], flags[4:0], valid_out[0:0], ack[0:0], dbg_out[0:0]
 *
 * The valid/ack pins model the FPnew handshake: software (the ISS) waits
 * for both after issuing, so a fault that parks either low manifests as a
 * CPU stall — the "S" outcome of the paper's Table 6. dbg_out is a
 * hardware-generated transaction-tag bit (toggles per accepted op). The
 * valid_out/ack/dbg_out capture flops live in a rarely-enabled
 * clock-gated region whose buffers age fastest; these are the module's
 * hold-violation endpoints.
 */
#pragma once

#include "rtl/module.h"

namespace vega::rtl {

HwModule make_fpu32();

} // namespace vega::rtl
