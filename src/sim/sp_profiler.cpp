#include "sim/sp_profiler.h"

#include <bit>

#include "common/logging.h"

namespace vega {

void
SpProfile::sample(Simulator &sim)
{
    const Netlist &nl = sim.netlist();
    VEGA_CHECK(nl.num_cells() == ones_.size(), "profile/netlist mismatch");
    VEGA_CHECK(width_ != SampleWidth::Batch,
               "scalar sample() on a batch-sampled profile");
    width_ = SampleWidth::Scalar;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
        uint64_t v = sim.value(nl.cell(c).out) ? 1 : 0;
        ones_[c] += v;
        if (samples_ > 0 && v != prev_[c])
            ++transitions_[c];
        prev_[c] = v;
    }
    ++samples_;
}

void
SpProfile::sample(BatchSimulator &sim)
{
    const Netlist &nl = sim.netlist();
    VEGA_CHECK(nl.num_cells() == ones_.size(), "profile/netlist mismatch");
    VEGA_CHECK(width_ != SampleWidth::Scalar,
               "batch sample() on a scalar-sampled profile");
    width_ = SampleWidth::Batch;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
        uint64_t plane = sim.value(nl.cell(c).out);
        ones_[c] += std::popcount(plane);
        if (samples_ > 0)
            transitions_[c] += std::popcount(plane ^ prev_[c]);
        prev_[c] = plane;
    }
    samples_ += BatchSimulator::kLanes;
}

void
SpProfile::merge(const SpProfile &other)
{
    VEGA_CHECK(ones_.size() == other.ones_.size(), "profile size mismatch");
    for (size_t i = 0; i < ones_.size(); ++i) {
        ones_[i] += other.ones_[i];
        transitions_[i] += other.transitions_[i];
    }
    samples_ += other.samples_;
}

} // namespace vega
