/**
 * @file
 * Signal-probability profiling (§3.2.1).
 *
 * Vega attaches a counter to the output port of every cell, samples it on a
 * free-running profiling clock (here: once per simulated cycle), and
 * aggregates the fraction of time each cell output rests at logical "1".
 * The resulting SP profile feeds the aging-aware STA.
 *
 * Two sampling paths share the same counters: the scalar path reads one
 * Simulator (one sample per call), and the batched path popcounts a
 * 64-lane BatchSimulator plane per cell (64 samples per call — one per
 * lane). A profile accumulated from one 64-lane batch is bit-for-bit
 * identical in ones/transitions/samples to 64 merged single-lane
 * profiles over the same per-lane stimulus (pinned by
 * SpProfiler.BatchSampleMatchesMergedLanes). The two paths must not be
 * mixed within one profile: lane history is per-width.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.h"
#include "sim/batch_sim.h"
#include "sim/simulator.h"

namespace vega {

/** Per-cell signal-probability profile (Table 1 of the paper). */
class SpProfile
{
  public:
    explicit SpProfile(size_t num_cells = 0)
        : ones_(num_cells, 0), transitions_(num_cells, 0),
          prev_(num_cells, 0), samples_(0)
    {
    }

    size_t num_cells() const { return ones_.size(); }

    /** Total samples; the batched path adds 64 (one per lane) per call. */
    uint64_t samples() const { return samples_; }

    /** SP of cell @p c: fraction of samples with output at "1". */
    double sp(CellId c) const
    {
        return samples_ == 0 ? 0.5
                             : static_cast<double>(ones_[c]) / samples_;
    }

    /**
     * Switching activity of cell @p c: fraction of sampled cycles in
     * which its output toggled. Feeds the dynamic-IR-drop extension
     * (§6.3): regions that switch a lot droop the local supply.
     */
    double activity(CellId c) const
    {
        return samples_ <= 1 ? 0.0
                             : static_cast<double>(transitions_[c]) /
                                   (samples_ - 1);
    }

    /** Record one sample of every cell output. */
    void sample(Simulator &sim);

    /**
     * Record one sample per lane (64 total) of every cell output by
     * popcounting the lane planes. Not mixable with the scalar
     * sample() in one profile.
     */
    void sample(BatchSimulator &sim);

    /** Merge another profile over the same netlist. */
    void merge(const SpProfile &other);

  private:
    /** Which sample() width this profile has been fed (prev_ format). */
    enum class SampleWidth : uint8_t { None, Scalar, Batch };

    std::vector<uint64_t> ones_;
    std::vector<uint64_t> transitions_;
    std::vector<uint64_t> prev_; ///< lane planes; scalar uses bit 0
    uint64_t samples_;
    SampleWidth width_ = SampleWidth::None;
};

/**
 * The profiling harness: instruments the netlist's cell outputs with
 * counters and samples them every cycle while @p drive supplies stimulus.
 *
 * @param sim      simulator over the netlist under profile
 * @param cycles   number of cycles to run
 * @param drive    callback invoked before each cycle to set inputs;
 *                 receives the cycle index
 */
template <typename DriveFn>
SpProfile
profile_signal_probability(Simulator &sim, uint64_t cycles, DriveFn drive)
{
    SpProfile profile(sim.netlist().num_cells());
    for (uint64_t t = 0; t < cycles; ++t) {
        drive(sim, t);
        sim.eval();
        profile.sample(sim);
        sim.step();
    }
    return profile;
}

/**
 * Batched harness: 64 independent stimulus lanes per cycle, so
 * @p cycles simulated cycles yield 64 * cycles samples. @p drive sets
 * per-lane inputs (set_input / set_bus_lane) before each cycle.
 */
template <typename DriveFn>
SpProfile
profile_signal_probability_batch(BatchSimulator &sim, uint64_t cycles,
                                 DriveFn drive)
{
    SpProfile profile(sim.netlist().num_cells());
    for (uint64_t t = 0; t < cycles; ++t) {
        drive(sim, t);
        sim.eval();
        profile.sample(sim);
        sim.step();
    }
    return profile;
}

} // namespace vega
