/**
 * @file
 * Dynamic timing-aware simulation.
 *
 * The levelized Simulator is purely logical; this simulator additionally
 * propagates per-net arrival times from the (aged) timing annotations
 * and plays the clock edge physically: a flip-flop whose data arrives
 * inside the setup window captures the *stale* previous value, and one
 * whose next-cycle data races in before the hold window closes captures
 * the *new* value a cycle early.
 *
 * This is the ground truth the paper's logical failure models (Eq. 2 /
 * Eq. 3) abstract: both corrupt Y exactly when the path's launch value
 * changes. The model-fidelity tests and the `ablation_model_fidelity`
 * bench check that abstraction against this simulator.
 *
 * Modeling choices (single-transition timing model, the standard STA
 * abstraction): a net that ends a cycle at its previous stable value is
 * treated as never having moved (glitches are not modeled), and a net
 * that changes is assigned the latest/earliest possible settle times
 * from its changed inputs.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/bitvec.h"
#include "sta/sta.h"

namespace vega {

/** One timing violation observed at a clock edge. */
struct TimingEvent
{
    CellId dff = kInvalidId;
    bool is_setup = true; ///< false: hold
    uint64_t cycle = 0;   ///< edge index (1 = first edge after reset)
};

class TimingSimulator
{
  public:
    /**
     * @param nl     netlist under simulation
     * @param timing aged (or fresh) delays/constraints from the STA;
     *               must be derived from @p nl
     */
    TimingSimulator(const Netlist &nl, const sta::AgedTiming &timing);

    void reset();

    void set_input(NetId net, bool value);
    void set_bus(const std::string &bus, const BitVec &value);

    /**
     * Advance one clock cycle, physically applying setup/hold outcomes.
     * Returns the violations that corrupted state at this edge.
     */
    std::vector<TimingEvent> step();

    bool value(NetId net) const { return stable_[net]; }
    BitVec bus_value(const std::string &bus) const;

    uint64_t cycle() const { return cycle_; }

    /** All violations observed since reset. */
    const std::vector<TimingEvent> &events() const { return events_; }

  private:
    void settle();

    const Netlist &nl_;
    const sta::AgedTiming &timing_;
    double period_;

    std::vector<uint8_t> stable_;      ///< settled value, current cycle
    std::vector<uint8_t> prev_stable_; ///< settled value, previous cycle
    std::vector<double> arr_max_;      ///< latest settle time this cycle
    std::vector<double> arr_min_;      ///< earliest move time this cycle
    std::vector<uint8_t> inputs_;      ///< driven primary-input values
    std::vector<uint8_t> q_;           ///< committed DFF state
    std::vector<uint8_t> q_changed_;   ///< Q changed at the last edge

    uint64_t cycle_ = 0;
    std::vector<TimingEvent> events_;
    bool pending_settle_ = true;
};

} // namespace vega
