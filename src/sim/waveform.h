/**
 * @file
 * Cycle-indexed waveform of named bus values.
 *
 * The formal engine emits the cover trace (Table 2 of the paper) as a
 * Waveform: one row per module input/output bus per cycle. Instruction
 * construction consumes it; tests and examples pretty-print it.
 */
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/bitvec.h"

namespace vega {

class Waveform
{
  public:
    /** Number of recorded cycles. */
    size_t num_cycles() const { return cycles_; }

    /** Signals in insertion order. */
    const std::vector<std::string> &signals() const { return order_; }

    bool has(const std::string &signal) const
    {
        return data_.count(signal) > 0;
    }

    /** Append @p value for @p signal at cycle index == current length. */
    void record(const std::string &signal, const BitVec &value);

    /** Value of @p signal at @p cycle. */
    const BitVec &at(const std::string &signal, size_t cycle) const;

    /** Render as an ASCII table like the paper's Table 2. */
    std::string to_table() const;

  private:
    std::unordered_map<std::string, std::vector<BitVec>> data_;
    std::vector<std::string> order_;
    size_t cycles_ = 0;
};

} // namespace vega
