/**
 * @file
 * Levelized cycle-accurate gate-level simulator.
 *
 * Plays the role Verilator plays in the paper's evaluation: it executes the
 * placed-and-routed netlist (including instrumented failing netlists)
 * cycle by cycle. Semantics are standard synchronous two-phase evaluation:
 * combinational cells settle in topological order, then the clock edge
 * commits every DFF atomically.
 *
 * Internally this is a thin 1-lane interpreter over a compiled EvalTape
 * (sim/eval_tape.h): the netlist is lowered once into a flat instruction
 * stream, and eval() walks primitive index arrays instead of chasing Cell
 * structs through topo_order(). The public API and cycle semantics are
 * unchanged from the pre-tape simulator; the 64-lane variant over the same
 * tape is sim/batch_sim.h.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "netlist/netlist.h"
#include "sim/eval_tape.h"

namespace vega {

class Simulator
{
  public:
    explicit Simulator(const Netlist &nl);

    /** Share a pre-built tape (must be non-null) instead of lowering. */
    explicit Simulator(std::shared_ptr<const EvalTape> tape);

    const Netlist &netlist() const { return tape_->netlist(); }
    const EvalTape &tape() const { return *tape_; }

    /** Load DFF init values, zero all primary inputs, settle. */
    void reset();

    /** Drive a single primary-input net. Takes effect at the next eval. */
    void set_input(NetId net, bool value);

    /** Drive an input bus (LSB first); width must match. */
    void set_bus(const std::string &bus, const BitVec &value);

    /** Settle combinational logic. Called implicitly by step()/readers. */
    void eval();

    /** One clock edge: settle, then commit all DFFs, then settle again. */
    void step();

    /** Run @p n clock cycles. */
    void run(uint64_t n);

    /** Current value of a net (post-settle). */
    bool value(NetId net);

    /** Current value of a bus as a BitVec (LSB first). */
    BitVec bus_value(const std::string &bus);

    uint64_t cycle() const { return cycle_; }

    /**
     * Snapshot of all net values (for speculative pipeline reads).
     * Slot-ordered and opaque: only meaningful to restore_state() on a
     * simulator over the same netlist.
     */
    std::vector<uint8_t> save_state() const { return values_; }

    /**
     * Restore a snapshot. Panics if @p state does not match this
     * netlist's net count — a wrong-sized vector means the snapshot
     * came from a different netlist and would silently corrupt every
     * downstream read.
     */
    void restore_state(const std::vector<uint8_t> &state);

  private:
    std::shared_ptr<const EvalTape> tape_;
    std::vector<uint8_t> values_;   ///< per-slot current value
    std::vector<uint8_t> dff_next_; ///< edge-commit scratch
    bool dirty_ = true;             ///< inputs changed since last eval
    uint64_t cycle_ = 0;
};

} // namespace vega
