/**
 * @file
 * Levelized cycle-accurate gate-level simulator.
 *
 * Plays the role Verilator plays in the paper's evaluation: it executes the
 * placed-and-routed netlist (including instrumented failing netlists)
 * cycle by cycle. Semantics are standard synchronous two-phase evaluation:
 * combinational cells settle in topological order, then the clock edge
 * commits every DFF atomically.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "netlist/netlist.h"

namespace vega {

class Simulator
{
  public:
    explicit Simulator(const Netlist &nl);

    const Netlist &netlist() const { return nl_; }

    /** Load DFF init values, zero all primary inputs, settle. */
    void reset();

    /** Drive a single primary-input net. Takes effect at the next eval. */
    void set_input(NetId net, bool value);

    /** Drive an input bus (LSB first); width must match. */
    void set_bus(const std::string &bus, const BitVec &value);

    /** Settle combinational logic. Called implicitly by step()/readers. */
    void eval();

    /** One clock edge: settle, then commit all DFFs, then settle again. */
    void step();

    /** Run @p n clock cycles. */
    void run(uint64_t n);

    /** Current value of a net (post-settle). */
    bool value(NetId net);

    /** Current value of a bus as a BitVec (LSB first). */
    BitVec bus_value(const std::string &bus);

    uint64_t cycle() const { return cycle_; }

    /** Snapshot of all net values (for speculative pipeline reads). */
    std::vector<uint8_t> save_state() const { return values_; }
    void restore_state(const std::vector<uint8_t> &state)
    {
        values_ = state;
        dirty_ = true;
    }

  private:
    const Netlist &nl_;
    std::vector<uint8_t> values_; ///< per-net current value
    bool dirty_ = true;           ///< inputs changed since last eval
    uint64_t cycle_ = 0;
};

} // namespace vega
