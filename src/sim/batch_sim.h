/**
 * @file
 * 64-lane bit-parallel gate-level simulator over an EvalTape.
 *
 * Each value slot holds a uint64_t *plane*: bit L is the value of the
 * net in lane L, and every lane is an independent stimulus/state
 * stream (classic bit-parallel "PPSFP-style" simulation). One pass
 * over the tape's instruction stream therefore advances 64 complete
 * simulations: an AND2 is a single `&` across all lanes, a clock edge
 * commits all DFF planes at once.
 *
 * Semantics per lane are exactly the Simulator's: combinational cells
 * settle in topological order, then step() commits every DFF
 * atomically and re-settles. Lockstep equivalence against 64 scalar
 * Simulator runs is pinned by tests/test_eval_tape.cpp.
 *
 * Consumers: SpProfile::sample(BatchSimulator&) popcounts planes into
 * its per-cell counters (64 samples per call), and lift::fuzz_cover
 * runs 64 fuzzing episodes per simulated cycle.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bitvec.h"
#include "sim/eval_tape.h"

namespace vega {

class BatchSimulator
{
  public:
    /** Number of independent simulation lanes per instance. */
    static constexpr int kLanes = 64;

    /** Build (and own) a fresh tape for @p nl. */
    explicit BatchSimulator(const Netlist &nl);

    /** Share an existing tape (must be non-null). */
    explicit BatchSimulator(std::shared_ptr<const EvalTape> tape);

    const Netlist &netlist() const { return tape_->netlist(); }
    const EvalTape &tape() const { return *tape_; }

    /** Load DFF init values, zero all primary inputs, settle. */
    void reset();

    /** Drive a primary input with a per-lane plane (bit L = lane L). */
    void set_input(NetId net, uint64_t lanes);

    /** Drive a primary input to the same value in every lane. */
    void set_input_all(NetId net, bool value)
    {
        set_input(net, value ? ~uint64_t(0) : 0);
    }

    /** Drive an input bus in one lane only; width must match. */
    void set_bus_lane(const std::string &bus, int lane,
                      const BitVec &value);

    /** Drive an input bus to the same value in every lane. */
    void set_bus_all(const std::string &bus, const BitVec &value);

    /** Settle combinational logic. Called implicitly by readers. */
    void eval();

    /** One clock edge in every lane: settle, commit DFFs, settle. */
    void step();

    /** Run @p n clock cycles (n * 64 lane-cycles). */
    void run(uint64_t n);

    /** Per-lane plane of @p net (post-settle). */
    uint64_t value(NetId net);

    /** Value of @p net in lane @p lane. */
    bool value_lane(NetId net, int lane)
    {
        return (value(net) >> lane) & 1;
    }

    /** Bus value in one lane as a BitVec (LSB first). */
    BitVec bus_value(const std::string &bus, int lane);

    /** Per-bit planes of a bus (planes[i] = plane of bus bit i). */
    std::vector<uint64_t> bus_planes(const std::string &bus);

    uint64_t cycle() const { return cycle_; }

    /** Snapshot of all planes (slot-ordered, opaque to callers). */
    std::vector<uint64_t> save_state() const { return planes_; }

    /**
     * Snapshot into a caller-owned buffer, reusing its capacity. Hot
     * paths that save/restore every cycle (the wave driver's
     * speculative output peeks) avoid a per-cycle allocation this way.
     */
    void save_state_into(std::vector<uint64_t> &out) const
    {
        out.assign(planes_.begin(), planes_.end());
    }

    /** Restore a snapshot; panics unless it matches this netlist. */
    void restore_state(const std::vector<uint64_t> &state);

  private:
    std::shared_ptr<const EvalTape> tape_;
    std::vector<uint64_t> planes_;   ///< per-slot lane planes
    std::vector<uint64_t> dff_next_; ///< edge-commit scratch
    bool dirty_ = true;
    uint64_t cycle_ = 0;
};

} // namespace vega
