#include "sim/batch_sim.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace vega {

namespace {

obs::Counter &
batch_cycles_counter()
{
    static obs::Counter &c = obs::counter("sim.batch_cycles");
    return c;
}

obs::Counter &
lane_cycles_counter()
{
    static obs::Counter &c = obs::counter("sim.lane_cycles");
    return c;
}

obs::Counter &
batch_evals_counter()
{
    static obs::Counter &c = obs::counter("sim.batch_evals");
    return c;
}

} // namespace

BatchSimulator::BatchSimulator(const Netlist &nl)
    : BatchSimulator(std::make_shared<const EvalTape>(nl))
{
}

BatchSimulator::BatchSimulator(std::shared_ptr<const EvalTape> tape)
    : tape_(std::move(tape))
{
    VEGA_CHECK(tape_ != nullptr, "BatchSimulator needs a tape");
    planes_.assign(tape_->num_slots(), 0);
    dff_next_.assign(tape_->dff_rules().size(), 0);
    reset();
}

void
BatchSimulator::reset()
{
    std::fill(planes_.begin(), planes_.end(), 0);
    for (const EvalTape::DffRule &r : tape_->dff_rules())
        planes_[r.q] = r.init ? ~uint64_t(0) : 0;
    cycle_ = 0;
    dirty_ = true;
    eval();
}

void
BatchSimulator::set_input(NetId net, uint64_t lanes)
{
    VEGA_CHECK(tape_->is_primary_input(net), "set_input on non-input net ",
               netlist().net(net).name);
    planes_[tape_->slot(net)] = lanes;
    dirty_ = true;
}

void
BatchSimulator::set_bus_lane(const std::string &bus, int lane,
                             const BitVec &value)
{
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    VEGA_CHECK(slots.size() == value.width(), "bus width mismatch on ",
               bus);
    VEGA_CHECK(lane >= 0 && lane < kLanes, "lane out of range");
    uint64_t bit = uint64_t(1) << lane;
    for (size_t i = 0; i < slots.size(); ++i) {
        if (value.get(i))
            planes_[slots[i]] |= bit;
        else
            planes_[slots[i]] &= ~bit;
    }
    dirty_ = true;
}

void
BatchSimulator::set_bus_all(const std::string &bus, const BitVec &value)
{
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    VEGA_CHECK(slots.size() == value.width(), "bus width mismatch on ",
               bus);
    for (size_t i = 0; i < slots.size(); ++i)
        planes_[slots[i]] = value.get(i) ? ~uint64_t(0) : 0;
    dirty_ = true;
}

void
BatchSimulator::eval()
{
    if (!dirty_)
        return;
    batch_evals_counter().inc();
    uint64_t *v = planes_.data();
    for (const EvalTape::ConstRule &r : tape_->const_rules())
        v[r.slot] = r.value ? ~uint64_t(0) : 0;

    const size_t n = tape_->num_instrs();
    const uint8_t *op = tape_->op().data();
    const SlotId *i0 = tape_->in0().data();
    const SlotId *i1 = tape_->in1().data();
    const SlotId *i2 = tape_->in2().data();
    const SlotId *o = tape_->out().data();
    for (size_t i = 0; i < n; ++i) {
        switch (CellType(op[i])) {
          case CellType::Buf:
            v[o[i]] = v[i0[i]];
            break;
          case CellType::Not:
            v[o[i]] = ~v[i0[i]];
            break;
          case CellType::And2:
            v[o[i]] = v[i0[i]] & v[i1[i]];
            break;
          case CellType::Or2:
            v[o[i]] = v[i0[i]] | v[i1[i]];
            break;
          case CellType::Xor2:
            v[o[i]] = v[i0[i]] ^ v[i1[i]];
            break;
          case CellType::Nand2:
            v[o[i]] = ~(v[i0[i]] & v[i1[i]]);
            break;
          case CellType::Nor2:
            v[o[i]] = ~(v[i0[i]] | v[i1[i]]);
            break;
          case CellType::Xnor2:
            v[o[i]] = ~(v[i0[i]] ^ v[i1[i]]);
            break;
          case CellType::Mux2: {
            uint64_t s = v[i2[i]];
            v[o[i]] = (v[i0[i]] & ~s) | (v[i1[i]] & s);
            break;
          }
          case CellType::Const0:
          case CellType::Const1:
          case CellType::Dff:
            panic("non-combinational opcode in tape stream");
        }
    }
    dirty_ = false;
}

void
BatchSimulator::step()
{
    eval();
    const std::vector<EvalTape::DffRule> &dffs = tape_->dff_rules();
    for (size_t i = 0; i < dffs.size(); ++i)
        dff_next_[i] = planes_[dffs[i].d];
    for (size_t i = 0; i < dffs.size(); ++i)
        planes_[dffs[i].q] = dff_next_[i];
    ++cycle_;
    batch_cycles_counter().inc();
    lane_cycles_counter().add(kLanes);
    dirty_ = true;
    eval();
}

void
BatchSimulator::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        step();
}

uint64_t
BatchSimulator::value(NetId net)
{
    eval();
    return planes_[tape_->slot(net)];
}

BitVec
BatchSimulator::bus_value(const std::string &bus, int lane)
{
    eval();
    VEGA_CHECK(lane >= 0 && lane < kLanes, "lane out of range");
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    BitVec v(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        v.set(i, (planes_[slots[i]] >> lane) & 1);
    return v;
}

std::vector<uint64_t>
BatchSimulator::bus_planes(const std::string &bus)
{
    eval();
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    std::vector<uint64_t> out(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        out[i] = planes_[slots[i]];
    return out;
}

void
BatchSimulator::restore_state(const std::vector<uint64_t> &state)
{
    VEGA_CHECK(state.size() == tape_->num_slots(),
               "restore_state plane count ", state.size(),
               " does not match netlist ", netlist().name(), " (",
               tape_->num_slots(), " slots)");
    planes_ = state;
    dirty_ = true;
}

} // namespace vega
