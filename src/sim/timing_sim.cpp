#include "sim/timing_sim.h"

#include <algorithm>

#include "common/logging.h"

namespace vega {

TimingSimulator::TimingSimulator(const Netlist &nl,
                                 const sta::AgedTiming &timing)
    : nl_(nl), timing_(timing), period_(nl.clock_period_ps()),
      stable_(nl.num_nets(), 0), prev_stable_(nl.num_nets(), 0),
      arr_max_(nl.num_nets(), 0.0), arr_min_(nl.num_nets(), 0.0),
      inputs_(nl.num_nets(), 0), q_(nl.num_cells(), 0),
      q_changed_(nl.num_cells(), 0)
{
    VEGA_CHECK(timing.delay_max.size() == nl.num_cells(),
               "timing annotations do not match the netlist");
    reset();
}

void
TimingSimulator::reset()
{
    std::fill(stable_.begin(), stable_.end(), 0);
    std::fill(prev_stable_.begin(), prev_stable_.end(), 0);
    std::fill(inputs_.begin(), inputs_.end(), 0);
    std::fill(q_changed_.begin(), q_changed_.end(), 0);
    for (CellId c = 0; c < nl_.num_cells(); ++c)
        q_[c] = nl_.cell(c).type == CellType::Dff && nl_.cell(c).init;
    cycle_ = 0;
    events_.clear();
    pending_settle_ = true;
    settle();
    // The reset state is the baseline: nothing "changed" into it.
    prev_stable_ = stable_;
}

void
TimingSimulator::set_input(NetId net, bool value)
{
    VEGA_CHECK(nl_.net(net).is_primary_input, "not a primary input");
    inputs_[net] = value ? 1 : 0;
    pending_settle_ = true;
}

void
TimingSimulator::set_bus(const std::string &bus, const BitVec &value)
{
    const auto &nets = nl_.bus(bus);
    VEGA_CHECK(nets.size() == value.width(), "bus width mismatch");
    for (size_t i = 0; i < nets.size(); ++i)
        set_input(nets[i], value.get(i));
}

BitVec
TimingSimulator::bus_value(const std::string &bus) const
{
    const auto &nets = nl_.bus(bus);
    BitVec v(nets.size());
    for (size_t i = 0; i < nets.size(); ++i)
        v.set(i, stable_[nets[i]]);
    return v;
}

void
TimingSimulator::settle()
{
    // Sources. Primary inputs come from upstream registers whose
    // clk-to-Q keeps them stable through the hold window, so their
    // earliest-move time is unbounded (the STA applies the same
    // exemption); their latest arrival is the edge itself.
    for (NetId n = 0; n < nl_.num_nets(); ++n) {
        if (nl_.net(n).is_primary_input) {
            stable_[n] = inputs_[n];
            arr_max_[n] = 0.0;
            arr_min_[n] = 1e30;
        }
    }
    for (CellId c : nl_.dffs()) {
        const Cell &cell = nl_.cell(c);
        stable_[cell.out] = q_[c];
        if (q_changed_[c]) {
            double launch = timing_.clk_arrival_max[cell.clock_leaf];
            arr_max_[cell.out] = launch + timing_.clk_to_q_max[c];
            arr_min_[cell.out] =
                timing_.clk_arrival_min[cell.clock_leaf] +
                timing_.clk_to_q_min[c];
        } else {
            arr_max_[cell.out] = 0.0;
            arr_min_[cell.out] = 0.0;
        }
    }

    // Combinational propagation with single-transition timing.
    for (CellId c : nl_.topo_order()) {
        const Cell &cell = nl_.cell(c);
        bool a = cell.num_inputs() > 0 ? stable_[cell.in[0]] : false;
        bool b = cell.num_inputs() > 1 ? stable_[cell.in[1]] : false;
        bool s = cell.num_inputs() > 2 ? stable_[cell.in[2]] : false;
        bool val = cell.num_inputs() == 0
                       ? eval_cell(cell.type, false)
                       : eval_cell(cell.type, a, b, s);
        NetId out = cell.out;
        bool changed = val != bool(prev_stable_[out]);
        stable_[out] = val;
        if (!changed) {
            arr_max_[out] = 0.0;
            arr_min_[out] = 0.0;
            continue;
        }
        double in_max = 0.0;
        double in_min = 1e30;
        for (int i = 0; i < cell.num_inputs(); ++i) {
            NetId in = cell.in[i];
            in_max = std::max(in_max, arr_max_[in]);
            if (stable_[in] != prev_stable_[in])
                in_min = std::min(in_min, arr_min_[in]);
        }
        arr_max_[out] = in_max + timing_.delay_max[c];
        // A 1e30 min survives the addition: paths moved only by primary
        // inputs stay hold-exempt end to end.
        arr_min_[out] = in_min >= 1e30 ? 1e30
                                       : in_min + timing_.delay_min[c];
    }
    pending_settle_ = false;
}

std::vector<TimingEvent>
TimingSimulator::step()
{
    settle();
    std::vector<TimingEvent> edge_events;

    // ---- Hold outcomes of the previous edge --------------------------------
    // Data launched by the last edge that races through a short path can
    // slip into the previous capture. Detected now, once this cycle's
    // arrivals exist; corrupted flops take the new value retroactively.
    if (cycle_ > 0) {
        bool corrected = false;
        for (CellId c : nl_.dffs()) {
            const Cell &cell = nl_.cell(c);
            NetId d = cell.in[0];
            if (stable_[d] == prev_stable_[d])
                continue; // Eq. 3: safe when the value does not change
            double window = timing_.clk_arrival_max[cell.clock_leaf] +
                            timing_.hold[c];
            if (arr_min_[d] >= window)
                continue;
            if (q_[c] == stable_[d])
                continue; // races to the same value: benign
            q_[c] = stable_[d];
            q_changed_[c] = 1;
            corrected = true;
            edge_events.push_back({c, false, cycle_});
        }
        if (corrected) {
            settle(); // corrupted state propagates this cycle
            for (const TimingEvent &e : edge_events)
                events_.push_back(e);
        }
    }

    // ---- Setup outcomes of this edge ---------------------------------------
    auto dffs = nl_.dffs();
    std::vector<uint8_t> captured(dffs.size());
    for (size_t i = 0; i < dffs.size(); ++i) {
        CellId c = dffs[i];
        const Cell &cell = nl_.cell(c);
        NetId d = cell.in[0];
        bool intended = stable_[d];
        bool changed = stable_[d] != prev_stable_[d];
        double limit = period_ +
                       timing_.clk_arrival_min[cell.clock_leaf] -
                       timing_.setup[c];
        if (changed && arr_max_[d] > limit) {
            // Late data: the flop keeps sampling the stale value.
            captured[i] = prev_stable_[d];
            TimingEvent e{c, true, cycle_ + 1};
            edge_events.push_back(e);
            events_.push_back(e);
        } else {
            captured[i] = intended;
        }
    }
    for (size_t i = 0; i < dffs.size(); ++i) {
        CellId c = dffs[i];
        q_changed_[c] = captured[i] != q_[c];
        q_[c] = captured[i];
    }

    prev_stable_ = stable_;
    ++cycle_;
    pending_settle_ = true;
    settle();
    return edge_events;
}

} // namespace vega
