#include "sim/simulator.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace vega {

namespace {

/**
 * Process totals across every Simulator instance. One relaxed
 * fetch_add per clock edge / settle — noise next to the tape walk
 * each of those implies.
 */
obs::Counter &
cycles_counter()
{
    static obs::Counter &c = obs::counter("sim.cycles");
    return c;
}

obs::Counter &
evals_counter()
{
    static obs::Counter &c = obs::counter("sim.evals");
    return c;
}

} // namespace

Simulator::Simulator(const Netlist &nl)
    : Simulator(std::make_shared<const EvalTape>(nl))
{
}

Simulator::Simulator(std::shared_ptr<const EvalTape> tape)
    : tape_(std::move(tape))
{
    VEGA_CHECK(tape_ != nullptr, "Simulator needs a tape");
    values_.assign(tape_->num_slots(), 0);
    dff_next_.assign(tape_->dff_rules().size(), 0);
    reset();
}

void
Simulator::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
    for (const EvalTape::DffRule &r : tape_->dff_rules())
        values_[r.q] = r.init;
    cycle_ = 0;
    dirty_ = true;
    eval();
}

void
Simulator::set_input(NetId net, bool value)
{
    VEGA_CHECK(tape_->is_primary_input(net), "set_input on non-input net ",
               netlist().net(net).name);
    values_[tape_->slot(net)] = value ? 1 : 0;
    dirty_ = true;
}

void
Simulator::set_bus(const std::string &bus, const BitVec &value)
{
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    VEGA_CHECK(slots.size() == value.width(), "bus width mismatch on ",
               bus);
    for (size_t i = 0; i < slots.size(); ++i)
        values_[slots[i]] = value.get(i) ? 1 : 0;
    dirty_ = true;
}

void
Simulator::eval()
{
    if (!dirty_)
        return;
    evals_counter().inc();
    uint8_t *v = values_.data();
    for (const EvalTape::ConstRule &r : tape_->const_rules())
        v[r.slot] = r.value;

    const size_t n = tape_->num_instrs();
    const uint8_t *op = tape_->op().data();
    const SlotId *i0 = tape_->in0().data();
    const SlotId *i1 = tape_->in1().data();
    const SlotId *i2 = tape_->in2().data();
    const SlotId *o = tape_->out().data();
    for (size_t i = 0; i < n; ++i) {
        switch (CellType(op[i])) {
          case CellType::Buf:
            v[o[i]] = v[i0[i]];
            break;
          case CellType::Not:
            v[o[i]] = v[i0[i]] ^ 1;
            break;
          case CellType::And2:
            v[o[i]] = v[i0[i]] & v[i1[i]];
            break;
          case CellType::Or2:
            v[o[i]] = v[i0[i]] | v[i1[i]];
            break;
          case CellType::Xor2:
            v[o[i]] = v[i0[i]] ^ v[i1[i]];
            break;
          case CellType::Nand2:
            v[o[i]] = (v[i0[i]] & v[i1[i]]) ^ 1;
            break;
          case CellType::Nor2:
            v[o[i]] = (v[i0[i]] | v[i1[i]]) ^ 1;
            break;
          case CellType::Xnor2:
            v[o[i]] = (v[i0[i]] ^ v[i1[i]]) ^ 1;
            break;
          case CellType::Mux2:
            v[o[i]] = v[i2[i]] ? v[i1[i]] : v[i0[i]];
            break;
          case CellType::Const0:
          case CellType::Const1:
          case CellType::Dff:
            panic("non-combinational opcode in tape stream");
        }
    }
    dirty_ = false;
}

void
Simulator::step()
{
    eval();
    // Capture all D pins, then commit all Qs (atomic clock edge).
    const std::vector<EvalTape::DffRule> &dffs = tape_->dff_rules();
    for (size_t i = 0; i < dffs.size(); ++i)
        dff_next_[i] = values_[dffs[i].d];
    for (size_t i = 0; i < dffs.size(); ++i)
        values_[dffs[i].q] = dff_next_[i];
    ++cycle_;
    cycles_counter().inc();
    dirty_ = true;
    eval();
}

void
Simulator::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        step();
}

bool
Simulator::value(NetId net)
{
    eval();
    return values_[tape_->slot(net)];
}

BitVec
Simulator::bus_value(const std::string &bus)
{
    eval();
    const std::vector<SlotId> &slots = tape_->bus_slots(bus);
    BitVec v(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        v.set(i, values_[slots[i]]);
    return v;
}

void
Simulator::restore_state(const std::vector<uint8_t> &state)
{
    VEGA_CHECK(state.size() == netlist().num_nets(),
               "restore_state size ", state.size(),
               " does not match netlist ", netlist().name(), " (",
               netlist().num_nets(), " nets)");
    values_ = state;
    dirty_ = true;
}

} // namespace vega
