#include "sim/simulator.h"

#include "common/logging.h"
#include "obs/metrics.h"

namespace vega {

namespace {

/**
 * Process totals across every Simulator instance. One relaxed
 * fetch_add per clock edge / settle — noise next to the topological
 * cell-evaluation loop each of those implies.
 */
obs::Counter &
cycles_counter()
{
    static obs::Counter &c = obs::counter("sim.cycles");
    return c;
}

obs::Counter &
evals_counter()
{
    static obs::Counter &c = obs::counter("sim.evals");
    return c;
}

} // namespace

Simulator::Simulator(const Netlist &nl)
    : nl_(nl), values_(nl.num_nets(), 0)
{
    nl_.topo_order(); // validate acyclicity up front
    reset();
}

void
Simulator::reset()
{
    std::fill(values_.begin(), values_.end(), 0);
    for (CellId c : nl_.dffs())
        values_[nl_.cell(c).out] = nl_.cell(c).init ? 1 : 0;
    cycle_ = 0;
    dirty_ = true;
    eval();
}

void
Simulator::set_input(NetId net, bool value)
{
    VEGA_CHECK(nl_.net(net).is_primary_input,
               "set_input on non-input net ", nl_.net(net).name);
    values_[net] = value ? 1 : 0;
    dirty_ = true;
}

void
Simulator::set_bus(const std::string &bus, const BitVec &value)
{
    const auto &nets = nl_.bus(bus);
    VEGA_CHECK(nets.size() == value.width(), "bus width mismatch on ", bus);
    for (size_t i = 0; i < nets.size(); ++i)
        set_input(nets[i], value.get(i));
}

void
Simulator::eval()
{
    if (!dirty_)
        return;
    evals_counter().inc();
    for (CellId c : nl_.topo_order()) {
        const Cell &cell = nl_.cell(c);
        bool a = cell.num_inputs() > 0 ? values_[cell.in[0]] : false;
        bool b = cell.num_inputs() > 1 ? values_[cell.in[1]] : false;
        bool s = cell.num_inputs() > 2 ? values_[cell.in[2]] : false;
        values_[cell.out] = eval_cell(cell.type, a, b, s) ? 1 : 0;
    }
    dirty_ = false;
}

void
Simulator::step()
{
    eval();
    // Capture all D pins, then commit all Qs (atomic clock edge).
    auto dffs = nl_.dffs();
    std::vector<uint8_t> next;
    next.reserve(dffs.size());
    for (CellId c : dffs)
        next.push_back(values_[nl_.cell(c).in[0]]);
    for (size_t i = 0; i < dffs.size(); ++i)
        values_[nl_.cell(dffs[i]).out] = next[i];
    ++cycle_;
    cycles_counter().inc();
    dirty_ = true;
    eval();
}

void
Simulator::run(uint64_t n)
{
    for (uint64_t i = 0; i < n; ++i)
        step();
}

bool
Simulator::value(NetId net)
{
    eval();
    return values_[net];
}

BitVec
Simulator::bus_value(const std::string &bus)
{
    eval();
    const auto &nets = nl_.bus(bus);
    BitVec v(nets.size());
    for (size_t i = 0; i < nets.size(); ++i)
        v.set(i, values_[nets[i]]);
    return v;
}

} // namespace vega
