/**
 * @file
 * VCD (Value Change Dump) export.
 *
 * The paper's trace-generation step "captures and saves [the trace] as
 * a waveform" (§3.3.3); this module renders our Waveforms — BMC cover
 * traces, fuzzing episodes, or live simulation captures — in the
 * standard IEEE 1364 VCD format that GTKWave and every EDA waveform
 * viewer read.
 */
#pragma once

#include <ostream>
#include <string>

#include "sim/simulator.h"
#include "sim/waveform.h"

namespace vega {

/**
 * Write @p w as a VCD file. Every signal becomes a vector variable
 * under one module scope; cycle k maps to time k (timescale 1 ns).
 */
void write_vcd(const Waveform &w, std::ostream &os,
               const std::string &module_name = "vega");

/** Convenience: render to a string. */
std::string to_vcd(const Waveform &w,
                   const std::string &module_name = "vega");

/**
 * Capture a live simulation into a Waveform: records every port bus of
 * the netlist each cycle while @p drive supplies stimulus.
 */
template <typename DriveFn>
Waveform
capture_waveform(Simulator &sim, uint64_t cycles, DriveFn drive)
{
    Waveform w;
    const Netlist &nl = sim.netlist();
    for (uint64_t t = 0; t < cycles; ++t) {
        drive(sim, t);
        sim.eval();
        for (const auto &bus : nl.input_bus_names())
            w.record(bus, sim.bus_value(bus));
        for (const auto &bus : nl.output_bus_names())
            w.record(bus, sim.bus_value(bus));
        sim.step();
    }
    return w;
}

} // namespace vega
