#include "sim/eval_tape.h"

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega {

EvalTape::EvalTape(const Netlist &nl) : nl_(nl)
{
    VEGA_SPAN("sim.tape_build");

    // Validates acyclicity and fixes the evaluation order. Everything
    // below is a straight re-encoding of this order into flat arrays.
    const std::vector<CellId> &topo = nl.topo_order();

    slot_of_net_.assign(nl.num_nets(), 0);
    cell_out_slot_.assign(nl.num_cells(), 0);

    // Slot assignment by evaluation phase: inputs and constants first,
    // then DFF Qs (live across edges), then combinational outputs in
    // topo order, so each settle writes the plane front-to-back.
    SlotId next = 0;
    for (NetId n = 0; n < nl.num_nets(); ++n)
        if (nl.net(n).is_primary_input)
            slot_of_net_[n] = next++;
    for (CellId c = 0; c < nl.num_cells(); ++c) {
        CellType t = nl.cell(c).type;
        if (t == CellType::Const0 || t == CellType::Const1) {
            slot_of_net_[nl.cell(c).out] = next++;
            const_rules_.push_back(
                {slot_of_net_[nl.cell(c).out],
                 uint8_t(t == CellType::Const1 ? 1 : 0)});
        }
    }
    for (CellId c = 0; c < nl.num_cells(); ++c)
        if (nl.cell(c).type == CellType::Dff)
            slot_of_net_[nl.cell(c).out] = next++;
    for (CellId c : topo) {
        CellType t = nl.cell(c).type;
        if (t == CellType::Const0 || t == CellType::Const1)
            continue; // hoisted out of the per-cycle stream
        slot_of_net_[nl.cell(c).out] = next++;
    }
    VEGA_CHECK(next == nl.num_nets(),
               "tape lowering of ", nl.name(), " missed nets (", next,
               " slots for ", nl.num_nets(), " nets)");

    // Instruction stream: combinational cells only, constants hoisted.
    op_.reserve(topo.size());
    in0_.reserve(topo.size());
    in1_.reserve(topo.size());
    in2_.reserve(topo.size());
    out_.reserve(topo.size());
    for (CellId c : topo) {
        const Cell &cell = nl.cell(c);
        if (cell.type == CellType::Const0 || cell.type == CellType::Const1)
            continue;
        int n_in = cell.num_inputs();
        op_.push_back(uint8_t(cell.type));
        in0_.push_back(n_in > 0 ? slot_of_net_[cell.in[0]] : 0);
        in1_.push_back(n_in > 1 ? slot_of_net_[cell.in[1]] : 0);
        in2_.push_back(n_in > 2 ? slot_of_net_[cell.in[2]] : 0);
        out_.push_back(slot_of_net_[cell.out]);
    }

    for (CellId c = 0; c < nl.num_cells(); ++c) {
        const Cell &cell = nl.cell(c);
        cell_out_slot_[c] = slot_of_net_[cell.out];
        if (cell.type == CellType::Dff)
            dff_rules_.push_back({slot_of_net_[cell.in[0]],
                                  slot_of_net_[cell.out],
                                  uint8_t(cell.init ? 1 : 0)});
    }

    for (const std::string &name : nl.input_bus_names()) {
        std::vector<SlotId> slots;
        for (NetId n : nl.bus(name))
            slots.push_back(slot_of_net_[n]);
        bus_slots_[name] = std::move(slots);
    }
    for (const std::string &name : nl.output_bus_names()) {
        std::vector<SlotId> slots;
        for (NetId n : nl.bus(name))
            slots.push_back(slot_of_net_[n]);
        bus_slots_[name] = std::move(slots);
    }

    static obs::Counter &builds = obs::counter("sim.tape_builds");
    static obs::Counter &instrs = obs::counter("sim.tape_instrs");
    builds.inc();
    instrs.add(op_.size());
}

const std::vector<SlotId> &
EvalTape::bus_slots(const std::string &name) const
{
    auto it = bus_slots_.find(name);
    VEGA_CHECK(it != bus_slots_.end(), "no bus named ", name);
    return it->second;
}

} // namespace vega
