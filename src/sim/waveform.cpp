#include "sim/waveform.h"

#include <algorithm>
#include <sstream>

#include "common/logging.h"

namespace vega {

void
Waveform::record(const std::string &signal, const BitVec &value)
{
    auto it = data_.find(signal);
    if (it == data_.end()) {
        order_.push_back(signal);
        it = data_.emplace(signal, std::vector<BitVec>{}).first;
    }
    it->second.push_back(value);
    cycles_ = std::max(cycles_, it->second.size());
}

const BitVec &
Waveform::at(const std::string &signal, size_t cycle) const
{
    auto it = data_.find(signal);
    VEGA_CHECK(it != data_.end(), "waveform has no signal ", signal);
    VEGA_CHECK(cycle < it->second.size(), "waveform cycle out of range");
    return it->second[cycle];
}

std::string
Waveform::to_table() const
{
    std::ostringstream os;
    size_t name_w = 5;
    for (const auto &s : order_)
        name_w = std::max(name_w, s.size());

    os << std::string(name_w, ' ') << " | ";
    for (size_t t = 0; t < cycles_; ++t)
        os << "cyc" << (t + 1) << " ";
    os << "\n";
    for (const auto &s : order_) {
        os << s << std::string(name_w - s.size(), ' ') << " | ";
        const auto &vals = data_.at(s);
        for (size_t t = 0; t < cycles_; ++t) {
            if (t < vals.size())
                os << "'b" << vals[t].to_binary();
            else
                os << "-";
            os << " ";
        }
        os << "\n";
    }
    return os.str();
}

} // namespace vega
