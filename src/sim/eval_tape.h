/**
 * @file
 * Compiled evaluation tape: a Netlist lowered once into a flat,
 * cache-friendly instruction stream.
 *
 * The levelized Simulator used to re-walk Netlist::topo_order() every
 * eval, chasing AoS Cell structs (each carrying a std::string name) and
 * re-deriving pin counts per cell per cycle. The EvalTape performs that
 * traversal exactly once per netlist and records its result as
 * structure-of-arrays vectors of primitive indices:
 *
 *  - a combinational instruction stream in topological order: one
 *    opcode byte plus dense input/output value-slot indices per cell;
 *  - a DFF commit list (D slot, Q slot, init bit) applied atomically
 *    at each clock edge;
 *  - a constant list (slot, value) applied when inputs change, so a
 *    restored state can never leave a constant driver corrupted;
 *  - slot maps for nets, cell outputs, and named port buses.
 *
 * Value slots are a permutation of NetIds ordered by evaluation phase
 * (primary inputs, constants, DFF Qs, then combinational outputs in
 * topo order), so a simulator's value plane is written front-to-back
 * each settle. Every simulation consumer — the 1-lane Simulator, the
 * 64-lane BatchSimulator, SP profiling, fuzz lifting, the ISS netlist
 * backend, and the campaign engine — interprets this one artifact, so
 * all of them share a single lowering of eval_cell semantics.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace vega {

/** Dense index into a simulator's value plane. */
using SlotId = uint32_t;

class EvalTape
{
  public:
    /**
     * Lower @p nl. Panics (like Simulator always has) if the
     * combinational subgraph is cyclic. The netlist must outlive the
     * tape; the tape is immutable afterwards and safe to share across
     * simulator instances and threads.
     */
    explicit EvalTape(const Netlist &nl);

    const Netlist &netlist() const { return nl_; }

    /** One slot per net: the value plane length of any interpreter. */
    size_t num_slots() const { return slot_of_net_.size(); }

    /** Value slot holding the current value of @p net. */
    SlotId slot(NetId net) const { return slot_of_net_[net]; }

    /** Value slot holding the output of cell @p c (DFFs included). */
    SlotId cell_out_slot(CellId c) const { return cell_out_slot_[c]; }

    /// @name Combinational instruction stream (topological order)
    /// @{
    size_t num_instrs() const { return op_.size(); }
    const std::vector<uint8_t> &op() const { return op_; }
    const std::vector<SlotId> &in0() const { return in0_; }
    const std::vector<SlotId> &in1() const { return in1_; }
    const std::vector<SlotId> &in2() const { return in2_; }
    const std::vector<SlotId> &out() const { return out_; }
    /// @}

    /** Clock-edge commit rule: Q slot takes the D slot's value. */
    struct DffRule
    {
        SlotId d;
        SlotId q;
        uint8_t init; ///< Q value at reset
    };
    const std::vector<DffRule> &dff_rules() const { return dff_rules_; }

    /** Constant driver: @p slot always holds @p value. */
    struct ConstRule
    {
        SlotId slot;
        uint8_t value;
    };
    const std::vector<ConstRule> &const_rules() const
    {
        return const_rules_;
    }

    /** Slots of bus @p name, LSB first (panics on unknown name). */
    const std::vector<SlotId> &bus_slots(const std::string &name) const;

    bool is_primary_input(NetId net) const
    {
        return nl_.net(net).is_primary_input;
    }

  private:
    const Netlist &nl_;

    std::vector<SlotId> slot_of_net_;   ///< NetId -> slot
    std::vector<SlotId> cell_out_slot_; ///< CellId -> slot

    std::vector<uint8_t> op_; ///< CellType as a byte
    std::vector<SlotId> in0_, in1_, in2_, out_;

    std::vector<DffRule> dff_rules_;
    std::vector<ConstRule> const_rules_;

    std::unordered_map<std::string, std::vector<SlotId>> bus_slots_;
};

} // namespace vega
