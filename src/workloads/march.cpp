#include "workloads/march.h"

#include "common/logging.h"

namespace vega::workloads {

MarchAlgorithm
mats_plus()
{
    MarchAlgorithm alg;
    alg.name = "mats+";
    alg.elements = {
        {true, {MarchOp::W0}},
        {true, {MarchOp::R0, MarchOp::W1}},
        {false, {MarchOp::R1, MarchOp::W0}},
    };
    return alg;
}

MarchAlgorithm
march_cminus()
{
    MarchAlgorithm alg;
    alg.name = "march_c-";
    alg.elements = {
        {true, {MarchOp::W0}},
        {true, {MarchOp::R0, MarchOp::W1}},
        {true, {MarchOp::R1, MarchOp::W0}},
        {false, {MarchOp::R0, MarchOp::W1}},
        {false, {MarchOp::R1, MarchOp::W0}},
        {true, {MarchOp::R0}},
    };
    return alg;
}

runtime::TestCase
make_march_test(const MarchAlgorithm &alg, uint32_t rows)
{
    VEGA_CHECK(rows == runtime::kMemTestRows,
               "march tests target the ", runtime::kMemTestRows,
               "-row macro, got ", rows);
    runtime::TestCase tc;
    tc.name = alg.name;
    tc.module = ModuleKind::MemDec16;
    tc.config = alg.name;
    for (const MarchElement &el : alg.elements) {
        for (uint32_t i = 0; i < rows; ++i) {
            uint32_t row = el.up ? i : rows - 1 - i;
            for (MarchOp op : el.ops)
                tc.stimulus.push_back(
                    {row, 0, uint32_t(op), true, false});
        }
    }
    runtime::finalize_test_case(tc);
    return tc;
}

runtime::TestCase
make_random_march_test(uint32_t rows, size_t num_ops, uint64_t seed)
{
    VEGA_CHECK(rows == runtime::kMemTestRows,
               "march tests target the ", runtime::kMemTestRows,
               "-row macro, got ", rows);
    runtime::TestCase tc;
    tc.name = "random" + std::to_string(seed);
    tc.module = ModuleKind::MemDec16;
    tc.config = "random";

    // splitmix64: the repo-wide deterministic stream.
    auto next = [&seed]() {
        seed += 0x9e3779b97f4a7c15ull;
        uint64_t z = seed;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    };

    // Initialize every row so reads have a known expectation, then mix
    // random writes and self-checking reads against the tracked model.
    std::vector<uint8_t> model(rows, 0);
    for (uint32_t r = 0; r < rows; ++r)
        tc.stimulus.push_back({r, 0, uint32_t(MarchOp::W0), true, false});
    for (size_t i = 0; i < num_ops; ++i) {
        uint32_t row = uint32_t(next() % rows);
        uint64_t kind = next() % 2;
        if (kind == 0) {
            uint8_t bg = uint8_t(next() % 2);
            model[row] = bg;
            tc.stimulus.push_back(
                {row, 0,
                 uint32_t(bg ? MarchOp::W1 : MarchOp::W0), true, false});
        } else {
            tc.stimulus.push_back(
                {row, 0,
                 uint32_t(model[row] ? MarchOp::R1 : MarchOp::R0), true,
                 false});
        }
    }
    runtime::finalize_test_case(tc);
    return tc;
}

} // namespace vega::workloads
