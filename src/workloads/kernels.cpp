#include "workloads/kernels.h"

#include <cstring>

#include "cpu/assembler.h"
#include "cpu/softfp.h"

namespace vega::workloads {

using cpu::Asm;
using cpu::FReg;
using cpu::Reg;

namespace {

uint32_t
f2u(float f)
{
    uint32_t u;
    std::memcpy(&u, &f, sizeof(u));
    return u;
}

/** Software-reciprocal constant (Newton seed): r0 = magic - bits(d). */
constexpr uint32_t kRecipMagic = 0x7ef311c3u;

/** Mirror of the in-kernel Newton reciprocal, bit-exact via softfp. */
uint32_t
mirror_recip(uint32_t d_bits)
{
    uint32_t r = kRecipMagic - d_bits;
    uint32_t two = f2u(2.0f);
    for (int it = 0; it < 3; ++it) {
        uint32_t dr = fp::fmul(d_bits, r).bits;
        uint32_t corr = fp::fsub(two, dr).bits;
        r = fp::fmul(r, corr).bits;
    }
    return r;
}

} // namespace

Kernel
make_minver()
{
    // Invert [a b; c d] repeatedly (10 rounds), xor-accumulating the
    // element bit patterns. Division is a 3-step Newton reciprocal, so
    // the whole kernel exercises fmul/fsub heavily — the FPU workload
    // the paper profiles with.
    const uint32_t a = f2u(4.0f), b = f2u(7.0f), c = f2u(2.0f),
                   d = f2u(6.0f);

    Asm s;
    s.li(5, a);
    s.fmv_w_x(1, 5);
    s.li(5, b);
    s.fmv_w_x(2, 5);
    s.li(5, c);
    s.fmv_w_x(3, 5);
    s.li(5, d);
    s.fmv_w_x(4, 5);
    s.li(5, f2u(2.0f));
    s.fmv_w_x(9, 5); // constant 2.0 for Newton
    s.li(26, 40); // outer repeats (embench-style iteration)
    s.li(27, 0);  // accumulated checksum
    s.label("vouter");
    s.li(20, 0);     // checksum
    s.li(21, 60);    // round counter

    s.label("round");
    // det = a*d - b*c
    s.fmul_s(5, 1, 4);
    s.fmul_s(6, 2, 3);
    s.fsub_s(5, 5, 6);
    // r = recip(det): seed then 3 Newton steps
    s.fmv_x_w(6, 5);
    s.li(7, kRecipMagic);
    s.sub(6, 7, 6);
    s.fmv_w_x(6, 6);
    for (int it = 0; it < 3; ++it) {
        s.fmul_s(7, 5, 6);  // d*r
        s.fsub_s(7, 9, 7);  // 2 - d*r
        s.fmul_s(6, 6, 7);  // r *= ...
    }
    // inverse elements: [d -b; -c a] * r   (f0 stays +0.0)
    s.fmul_s(10, 4, 6);
    s.fsub_s(11, 0, 2);
    s.fmul_s(11, 11, 6);
    s.fsub_s(12, 0, 3);
    s.fmul_s(12, 12, 6);
    s.fmul_s(13, 1, 6);
    for (int r = 10; r <= 13; ++r) {
        s.fmv_x_w(6, FReg(r));
        s.add(20, 20, 6);
    }
    s.addi(21, 21, -1);
    s.bne(21, 0, "round");
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");

    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "minver";
    k.program = s.finish();

    // Bit-exact mirror.
    uint32_t outer = 0;
    for (int rep = 0; rep < 40; ++rep) {
        uint32_t checksum = 0;
        for (int round = 0; round < 60; ++round) {
            uint32_t det =
                fp::fsub(fp::fmul(a, d).bits, fp::fmul(b, c).bits).bits;
            uint32_t r = mirror_recip(det);
            uint32_t i00 = fp::fmul(d, r).bits;
            uint32_t i01 = fp::fmul(fp::fsub(0, b).bits, r).bits;
            uint32_t i10 = fp::fmul(fp::fsub(0, c).bits, r).bits;
            uint32_t i11 = fp::fmul(a, r).bits;
            checksum += i00 + i01 + i10 + i11;
        }
        outer = outer * 5 + checksum;
    }
    k.expected_checksum = outer;
    return k;
}

Kernel
make_crc32()
{
    constexpr int kLen = 64;
    constexpr int kRounds = 10;
    Asm s;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    // Fill the buffer: byte i = (11 + 37*i) & 0xff, built additively.
    s.li(5, kDataBase);
    s.li(6, 11);
    s.li(7, kLen);
    s.label("fill");
    s.sb(6, 5, 0);
    s.addi(6, 6, 37);
    s.andi(6, 6, 0xff);
    s.addi(5, 5, 1);
    s.addi(7, 7, -1);
    s.bne(7, 0, "fill");

    // CRC-32 (reflected polynomial 0xEDB88320).
    s.li(5, kDataBase);
    s.li(7, kLen);
    s.li(8, 0xffffffffu); // crc
    s.li(9, 0xedb88320u);
    s.label("byte");
    s.lbu(10, 5, 0);
    s.xor_(8, 8, 10);
    s.li(11, 8); // bit counter
    s.label("bit");
    s.andi(12, 8, 1);
    s.srli(8, 8, 1);
    s.beq(12, 0, "nopoly");
    s.xor_(8, 8, 9);
    s.label("nopoly");
    s.addi(11, 11, -1);
    s.bne(11, 0, "bit");
    s.addi(5, 5, 1);
    s.addi(7, 7, -1);
    s.bne(7, 0, "byte");

    s.li(9, 0xffffffffu);
    s.xor_(8, 8, 9);
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 8);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");
    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "crc32";
    k.program = s.finish();

    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep) {
        uint32_t crc = 0xffffffffu;
        uint32_t v = 11;
        for (int i = 0; i < kLen; ++i) {
            crc ^= v;
            for (int bit = 0; bit < 8; ++bit) {
                bool lsb = crc & 1;
                crc >>= 1;
                if (lsb)
                    crc ^= 0xedb88320u;
            }
            v = (v + 37) & 0xff;
        }
        outer = outer * 5 + (crc ^ 0xffffffffu);
    }
    k.expected_checksum = outer;
    return k;
}

Kernel
make_matmult()
{
    constexpr int N = 10;
    constexpr uint32_t kA = kDataBase;
    constexpr uint32_t kB = kDataBase + 1024;
    constexpr uint32_t kC = kDataBase + 2048;

    constexpr int kRounds = 8;
    Asm s;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    // A[i] = (3*i + 1) & 63 ; B[i] = (5*i + 2) & 63 (flat index).
    s.li(5, kA);
    s.li(6, kB);
    s.li(7, N * N);
    s.li(8, 1);
    s.li(9, 2);
    s.label("init");
    s.sw(8, 5, 0);
    s.sw(9, 6, 0);
    s.addi(8, 8, 3);
    s.andi(8, 8, 63);
    s.addi(9, 9, 5);
    s.andi(9, 9, 63);
    s.addi(5, 5, 4);
    s.addi(6, 6, 4);
    s.addi(7, 7, -1);
    s.bne(7, 0, "init");

    // C = A x B, then checksum = sum of C.
    s.li(20, 0); // checksum
    s.li(10, 0); // i
    s.label("iloop");
    s.li(11, 0); // j
    s.label("jloop");
    s.li(12, 0); // k
    s.li(13, 0); // acc
    s.label("kloop");
    // A[i][k]
    s.li(14, N);
    s.mul(15, 10, 14);
    s.add(15, 15, 12);
    s.slli(15, 15, 2);
    s.li(16, kA);
    s.add(15, 15, 16);
    s.lw(17, 15, 0);
    // B[k][j]
    s.mul(15, 12, 14);
    s.add(15, 15, 11);
    s.slli(15, 15, 2);
    s.li(16, kB);
    s.add(15, 15, 16);
    s.lw(18, 15, 0);
    s.mul(17, 17, 18);
    s.add(13, 13, 17);
    s.addi(12, 12, 1);
    s.li(14, N);
    s.blt(12, 14, "kloop");
    // store C[i][j], accumulate checksum
    s.li(14, N);
    s.mul(15, 10, 14);
    s.add(15, 15, 11);
    s.slli(15, 15, 2);
    s.li(16, kC);
    s.add(15, 15, 16);
    s.sw(13, 15, 0);
    s.add(20, 20, 13);
    s.addi(11, 11, 1);
    s.blt(11, 14, "jloop");
    s.addi(10, 10, 1);
    s.blt(10, 14, "iloop");
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");

    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "matmult";
    k.program = s.finish();

    uint32_t A[N * N], B[N * N];
    uint32_t va = 1, vb = 2;
    for (int i = 0; i < N * N; ++i) {
        A[i] = va;
        B[i] = vb;
        va = (va + 3) & 63;
        vb = (vb + 5) & 63;
    }
    uint32_t checksum = 0;
    for (int i = 0; i < N; ++i)
        for (int j = 0; j < N; ++j) {
            uint32_t acc = 0;
            for (int kk = 0; kk < N; ++kk)
                acc += A[i * N + kk] * B[kk * N + j];
            checksum += acc;
        }
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + checksum;
    k.expected_checksum = outer;
    return k;
}

Kernel
make_edn()
{
    constexpr int kTaps = 8, kSamples = 256;
    constexpr uint32_t kX = kDataBase;
    constexpr uint32_t kH = kDataBase + 2048;

    constexpr int kRounds = 6;
    Asm s;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    // x[i] = (7 + 13*i) & 0xff ; h[j] = j + 1.
    s.li(5, kX);
    s.li(6, 7);
    s.li(7, kSamples);
    s.label("initx");
    s.sw(6, 5, 0);
    s.addi(6, 6, 13);
    s.andi(6, 6, 0xff);
    s.addi(5, 5, 4);
    s.addi(7, 7, -1);
    s.bne(7, 0, "initx");
    s.li(5, kH);
    s.li(6, 1);
    s.li(7, kTaps);
    s.label("inith");
    s.sw(6, 5, 0);
    s.addi(6, 6, 1);
    s.addi(5, 5, 4);
    s.addi(7, 7, -1);
    s.bne(7, 0, "inith");

    // checksum += sum_j h[j] * x[i-j] for i in [7, 63]
    s.li(20, 0);
    s.li(10, kTaps - 1); // i
    s.label("iloop");
    s.li(11, 0);  // j
    s.li(13, 0);  // acc
    s.label("jloop");
    s.slli(15, 11, 2);
    s.li(16, kH);
    s.add(15, 15, 16);
    s.lw(17, 15, 0);
    s.sub(15, 10, 11);
    s.slli(15, 15, 2);
    s.li(16, kX);
    s.add(15, 15, 16);
    s.lw(18, 15, 0);
    s.mul(17, 17, 18);
    s.add(13, 13, 17);
    s.addi(11, 11, 1);
    s.li(14, kTaps);
    s.blt(11, 14, "jloop");
    s.add(20, 20, 13);
    s.addi(10, 10, 1);
    s.li(14, kSamples);
    s.blt(10, 14, "iloop");
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");

    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "edn";
    k.program = s.finish();

    uint32_t x[kSamples], h[kTaps];
    uint32_t v = 7;
    for (int i = 0; i < kSamples; ++i) {
        x[i] = v;
        v = (v + 13) & 0xff;
    }
    for (int j = 0; j < kTaps; ++j)
        h[j] = uint32_t(j + 1);
    uint32_t checksum = 0;
    for (int i = kTaps - 1; i < kSamples; ++i) {
        uint32_t acc = 0;
        for (int j = 0; j < kTaps; ++j)
            acc += h[j] * x[i - j];
        checksum += acc;
    }
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + checksum;
    k.expected_checksum = outer;
    return k;
}

Kernel
make_ud()
{
    constexpr int kRounds = 50;
    Asm s;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    s.li(20, 0);      // checksum
    s.li(10, 1);      // i
    s.li(11, 100000); // dividend
    s.li(12, 201);    // bound
    s.label("loop");
    s.divu(13, 11, 10);
    s.remu(14, 11, 10);
    s.li(15, 31);
    s.mul(20, 20, 15);
    s.add(20, 20, 13);
    s.add(20, 20, 14);
    s.addi(10, 10, 1);
    s.blt(10, 12, "loop");
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");
    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "ud";
    k.program = s.finish();

    uint32_t checksum = 0;
    for (uint32_t i = 1; i < 201; ++i)
        checksum = checksum * 31 + 100000u / i + 100000u % i;
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + checksum;
    k.expected_checksum = outer;
    return k;
}

Kernel
make_prime()
{
    constexpr int kRounds = 8;
    Asm s;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    s.li(20, 0);  // count
    s.li(10, 2);  // n
    s.li(11, 400);
    s.label("nloop");
    s.li(12, 2); // divisor
    s.label("dloop");
    s.mul(13, 12, 12);
    s.blt(11, 13, "isprime_check"); // d*d > limit shortcut bound
    s.blt(10, 13, "isprime");      // d*d > n: no divisor found
    s.label("isprime_check");
    s.blt(10, 13, "isprime");
    s.remu(13, 10, 12);
    s.beq(13, 0, "notprime");
    s.addi(12, 12, 1);
    s.j("dloop");
    s.label("isprime");
    s.addi(20, 20, 1);
    s.label("notprime");
    s.addi(10, 10, 1);
    s.blt(10, 11, "nloop");
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");
    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "prime";
    k.program = s.finish();

    uint32_t count = 0;
    for (uint32_t n = 2; n < 400; ++n) {
        bool prime = true;
        for (uint32_t d = 2; d * d <= n; ++d)
            if (n % d == 0) {
                prime = false;
                break;
            }
        if (prime)
            ++count;
    }
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + count;
    k.expected_checksum = outer;
    return k;
}

Kernel
make_nbody()
{
    constexpr int kBodies = 16;
    Asm s;
    // positions p[i] = i + 0.5 stored to memory, then pairwise products.
    for (int i = 0; i < kBodies; ++i) {
        s.li(5, f2u(float(i) + 0.5f));
        s.li(6, int32_t(kDataBase + 4 * i));
        s.sw(5, 6, 0);
    }
    constexpr int kRounds = 40;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");
    s.li(5, f2u(0.0f));
    s.fmv_w_x(10, 5); // acc

    s.li(10, 0); // i
    s.label("iloop");
    s.addi(11, 10, 1); // j
    s.label("jloop");
    s.slli(15, 10, 2);
    s.li(16, kDataBase);
    s.add(15, 15, 16);
    s.flw(1, 15, 0);
    s.slli(15, 11, 2);
    s.add(15, 15, 16);
    s.flw(2, 15, 0);
    s.fmul_s(3, 1, 2);
    s.fadd_s(10, 10, 3);
    s.addi(11, 11, 1);
    s.li(14, kBodies);
    s.blt(11, 14, "jloop");
    s.addi(10, 10, 1);
    s.li(14, kBodies - 1);
    s.blt(10, 14, "iloop");

    s.fmv_x_w(20, 10);
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");
    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "nbody";
    k.program = s.finish();

    uint32_t acc = 0; // +0.0
    for (int i = 0; i < kBodies - 1; ++i)
        for (int j = i + 1; j < kBodies; ++j) {
            uint32_t pi = f2u(float(i) + 0.5f);
            uint32_t pj = f2u(float(j) + 0.5f);
            acc = fp::fadd(acc, fp::fmul(pi, pj).bits).bits;
        }
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + acc;
    k.expected_checksum = outer;
    return k;
}

Kernel
make_st()
{
    constexpr int kN = 128;
    Asm s;
    // v[i] = (i % 7) + 0.25 ; all exact in FP32.
    for (int i = 0; i < kN; ++i) {
        s.li(5, f2u(float(i % 7) + 0.25f));
        s.li(6, int32_t(kDataBase + 4 * i));
        s.sw(5, 6, 0);
    }
    s.li(5, f2u(1.0f / 128.0f));
    s.fmv_w_x(9, 5); // exact reciprocal of N
    constexpr int kRounds = 30;
    s.li(26, kRounds);
    s.li(27, 0);
    s.label("vouter");

    // mean = (sum v) / N
    s.li(5, 0);
    s.fmv_w_x(10, 5); // sum
    s.li(10, 0);
    s.label("sumloop");
    s.slli(15, 10, 2);
    s.li(16, kDataBase);
    s.add(15, 15, 16);
    s.flw(1, 15, 0);
    s.fadd_s(10, 10, 1);
    s.addi(10, 10, 1);
    s.li(14, kN);
    s.blt(10, 14, "sumloop");
    s.fmul_s(11, 10, 9); // mean in f11

    // var = (sum (v - mean)^2) / N
    s.li(5, 0);
    s.fmv_w_x(12, 5);
    s.li(10, 0);
    s.label("varloop");
    s.slli(15, 10, 2);
    s.li(16, kDataBase);
    s.add(15, 15, 16);
    s.flw(1, 15, 0);
    s.fsub_s(2, 1, 11);
    s.fmul_s(2, 2, 2);
    s.fadd_s(12, 12, 2);
    s.addi(10, 10, 1);
    s.li(14, kN);
    s.blt(10, 14, "varloop");
    s.fmul_s(12, 12, 9);

    s.fmv_x_w(20, 11);
    s.fmv_x_w(21, 12);
    s.xor_(20, 20, 21);
    s.li(25, 5);
    s.mul(27, 27, 25);
    s.add(27, 27, 20);
    s.addi(26, 26, -1);
    s.bne(26, 0, "vouter");
    s.li(5, kChecksumAddr);
    s.sw(27, 5, 0);
    s.halt();

    Kernel k;
    k.name = "st";
    k.program = s.finish();

    uint32_t sum = 0;
    for (int i = 0; i < kN; ++i)
        sum = fp::fadd(sum, f2u(float(i % 7) + 0.25f)).bits;
    uint32_t inv_n = f2u(1.0f / 128.0f);
    uint32_t mean = fp::fmul(sum, inv_n).bits;
    uint32_t var_sum = 0;
    for (int i = 0; i < kN; ++i) {
        uint32_t d = fp::fsub(f2u(float(i % 7) + 0.25f), mean).bits;
        var_sum = fp::fadd(var_sum, fp::fmul(d, d).bits).bits;
    }
    uint32_t var = fp::fmul(var_sum, inv_n).bits;
    uint32_t outer = 0;
    for (int rep = 0; rep < kRounds; ++rep)
        outer = outer * 5 + (mean ^ var);
    k.expected_checksum = outer;
    return k;
}

const std::vector<Kernel> &
embench_suite()
{
    static const std::vector<Kernel> suite = {
        make_minver(), make_crc32(), make_matmult(), make_edn(),
        make_ud(),     make_prime(), make_nbody(),   make_st(),
    };
    return suite;
}

} // namespace vega::workloads
