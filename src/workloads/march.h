/**
 * @file
 * March-test generators for the memory-path substrate (src/mem).
 *
 * Classic march algorithms walk the address space in a fixed order
 * applying a read/write element at every cell; their power against
 * *address-decoder* faults (wrong row, multi-select, no select) is
 * exactly why memory BIST uses them. We generate MATS+ and March C-
 * (the kernel-memtest staples) plus seeded random read/write baselines,
 * all packaged as runtime::TestCase blocks in the march encoding
 * documented at runtime::kMaxMemTestSteps, so the whole aging-library /
 * campaign / fleet machinery runs them unchanged.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/test_case.h"

namespace vega::workloads {

/** One march operation applied at every cell of an element. These are
 *  also the TestCase stimulus `op` encoding for MemDec16 blocks. */
enum class MarchOp : uint8_t {
    R0 = 0, ///< read, expect background 0
    R1 = 1, ///< read, expect background 1 (all ones)
    W0 = 2, ///< write background 0
    W1 = 3, ///< write background 1
};

/** One march element: an address order and the ops applied per cell. */
struct MarchElement
{
    bool up = true; ///< ⇑ ascending rows; false = ⇓ descending
    std::vector<MarchOp> ops;
};

struct MarchAlgorithm
{
    std::string name;
    std::vector<MarchElement> elements;
};

/** MATS+ : {⇕(w0); ⇑(r0,w1); ⇓(r1,w0)} — 5N, catches AFs and SAFs. */
MarchAlgorithm mats_plus();

/** March C- : {⇕(w0); ⇑(r0,w1); ⇑(r1,w0); ⇓(r0,w1); ⇓(r1,w0); ⇕(r0)}
 *  — 10N, additionally catches unlinked coupling faults. */
MarchAlgorithm march_cminus();

/**
 * Flatten @p alg over @p rows cells into a finalized TestCase (golden-
 * validated, cycle_cost filled). @p rows must be kMemTestRows for now.
 */
runtime::TestCase make_march_test(const MarchAlgorithm &alg, uint32_t rows);

/**
 * Seeded random read/write baseline: @p num_ops operations over random
 * rows, self-checking by construction (reads expect the last value the
 * test wrote to that row; every row is initialized first). This is the
 * cheap first rung of the escalation ladder — random traffic catches
 * gross decoder faults but misses pattern-dependent ones.
 */
runtime::TestCase make_random_march_test(uint32_t rows, size_t num_ops,
                                         uint64_t seed);

} // namespace vega::workloads
