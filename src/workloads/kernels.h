/**
 * @file
 * embench-like benchmark kernels for the evaluation CPU.
 *
 * The paper uses embench both as the representative workload for Signal
 * Probability Simulation (§3.2.1, "minver") and as the benchmark
 * population for the Figure 9 overhead study. These kernels mirror
 * embench's roles on our ISS: a floating-point matrix inversion
 * (minver), integer compute kernels (crc32, matmult, edn, ud, prime),
 * and further FP kernels (nbody, st).
 *
 * Every kernel is self-checking: it computes a checksum, stores it at
 * kChecksumAddr, and halts. The expected value is computed by a bit-
 * exact C++ mirror (integer ops, and vega::fp softfloat for FP), so a
 * corrupted functional unit changes the stored checksum.
 *
 * Data lives at/above kDataBase; addresses below 4096 are reserved for
 * the profile-guided integration runtime (see integrate/integrator.h).
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/isa.h"

namespace vega::workloads {

constexpr uint32_t kDataBase = 4096;
constexpr uint32_t kChecksumAddr = 8192;

struct Kernel
{
    std::string name;
    std::vector<cpu::Instr> program;
    /** Checksum the golden machine must produce at kChecksumAddr. */
    uint32_t expected_checksum = 0;
};

Kernel make_minver();   ///< 2x2 FP32 inversion w/ Newton reciprocal
Kernel make_crc32();    ///< bitwise CRC-32 over a generated buffer
Kernel make_matmult();  ///< 6x6 integer matrix multiply
Kernel make_edn();      ///< 8-tap integer FIR over 64 samples
Kernel make_ud();       ///< integer divide/remainder chains
Kernel make_prime();    ///< trial-division prime counting
Kernel make_nbody();    ///< pairwise FP32 interaction sums
Kernel make_st();       ///< FP32 mean/variance statistics

/** All kernels, in a stable order (minver first, as the SP workload). */
const std::vector<Kernel> &embench_suite();

} // namespace vega::workloads
