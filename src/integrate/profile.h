/**
 * @file
 * Basic-block profiling for profile-guided test integration (§3.4.2).
 *
 * Vega instruments the application with per-basic-block counters, runs
 * representative inputs, and uses the resulting profile to pick the
 * integration point. Here the "instrumentation" is the ISS's built-in
 * per-instruction execution counters; basic blocks are recovered
 * structurally from the program.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "cpu/isa.h"

namespace vega::integrate {

/** A maximal straight-line region [first, last] of instruction indices. */
struct BasicBlock
{
    size_t first = 0;
    size_t last = 0;
    uint64_t count = 0; ///< executions observed during profiling
};

/** Structural basic-block decomposition (leaders: entry, branch targets,
 *  fall-throughs of control transfers). */
std::vector<BasicBlock> find_basic_blocks(const std::vector<cpu::Instr> &prog);

struct Profile
{
    std::vector<BasicBlock> blocks;
    uint64_t total_instructions = 0;
    uint64_t total_cycles = 0;
};

/** Execute @p prog on the ISS with counters and aggregate per block. */
Profile profile_program(const std::vector<cpu::Instr> &prog);

} // namespace vega::integrate
