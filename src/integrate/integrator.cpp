#include "integrate/integrator.h"

#include <algorithm>

#include "common/logging.h"
#include "cpu/assembler.h"

namespace vega::integrate {

namespace {

using cpu::Instr;
using cpu::Op;

constexpr uint32_t kGateSave28Addr = 2024;
constexpr uint32_t kGateSave29Addr = 2028;
constexpr uint32_t kLcgStateAddr = 2032;
constexpr uint32_t kLinkSaveAddr = 2036;
constexpr uint32_t kXRegSaveBase = 2048; // x5..x29, x31
constexpr uint32_t kFflagsSaveAddr = 2160;
constexpr uint32_t kFRegSaveBase = 2176; // f1..f31

bool
instr_has_target(Op op)
{
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge || op == Op::Bltu || op == Op::Bgeu ||
           op == Op::Jal;
}

/**
 * The inline dispatch gate, built as a standalone snippet whose internal
 * branch offsets are patched after placement. Returns instructions; the
 * jal to the (not yet placed) test routine is fixed up by the caller.
 *
 * Throttling uses a power-of-two entry counter: tests dispatch every
 * 2^k-th block entry, the deterministic equivalent of firing with
 * probability 2^-k (the common path is ~10 cycles: save one scratch
 * register, bump the counter, mask, branch). When @p period_log2 is 0
 * the gate collapses to save-link + jal.
 */
std::vector<Instr>
build_gate(int period_log2)
{
    cpu::Asm a;
    if (period_log2 > 0) {
        a.sw(28, 0, int32_t(kGateSave28Addr));
        a.lw(28, 0, int32_t(kLcgStateAddr));
        a.addi(28, 28, 1);
        a.sw(28, 0, int32_t(kLcgStateAddr));
        a.andi(28, 28, (1 << period_log2) - 1);
        a.bne(28, 0, "skip");
    }
    a.sw(30, 0, int32_t(kLinkSaveAddr));
    a.jal(30, "dispatch"); // retargeted to the test routine by the caller
    a.lw(30, 0, int32_t(kLinkSaveAddr));
    a.label("skip");
    if (period_log2 > 0)
        a.lw(28, 0, int32_t(kGateSave28Addr));
    // Asm::finish panics on unbound labels; bind "dispatch" at the gate
    // end — the caller overwrites the jal's target anyway.
    a.label("dispatch");
    return a.finish();
}

} // namespace

IntegrationResult
integrate_tests(const std::vector<Instr> &prog, const Profile &profile,
                const std::vector<runtime::TestCase> &suite,
                const IntegrationConfig &config)
{
    VEGA_CHECK(!suite.empty(), "no tests to integrate");

    // ---- Site selection: coolest block that still runs routinely. ----
    const BasicBlock *site = nullptr;
    for (const BasicBlock &b : profile.blocks) {
        if (b.count < config.min_block_count)
            continue;
        if (!site || b.count < site->count)
            site = &b;
    }
    VEGA_CHECK(site != nullptr, "no routinely-executed block found");

    // ---- Overhead estimate (IR instruction counts, as in §3.4.2). ----
    size_t suite_instrs = 0;
    for (const auto &t : suite)
        suite_instrs += t.program.size();
    double estimate = double(suite_instrs) * double(site->count) /
                      double(profile.total_instructions);

    IntegrationResult result;
    result.insertion_point = site->first;
    result.block_count = site->count;
    result.estimated_overhead = estimate;
    int period_log2 = 0;
    if (estimate > config.overhead_threshold) {
        // Throttled dispatch pays the counter gate (~10 instructions)
        // every block entry plus the suite every 2^k-th entry; pick the
        // smallest power-of-two period that meets the threshold.
        constexpr double kGateCost = 10.0;
        double budget = config.overhead_threshold *
                        double(profile.total_instructions) /
                        double(site->count);
        double p = (budget - kGateCost) / double(suite_instrs);
        p = std::clamp(p, 1.0 / 2048.0, 1.0);
        while (period_log2 < 11 &&
               1.0 / double(1 << period_log2) > p)
            ++period_log2;
    }
    result.probability = 1.0 / double(1 << period_log2);

    // ---- Build the gate and relocate the application around it. ----
    std::vector<Instr> gate = build_gate(period_log2);
    size_t p = site->first;
    size_t k = gate.size();

    std::vector<Instr> out;
    out.reserve(prog.size() + k + 64 * suite.size());
    out.insert(out.end(), prog.begin(), prog.begin() + long(p));
    size_t gate_base = out.size();
    out.insert(out.end(), gate.begin(), gate.end());
    out.insert(out.end(), prog.begin() + long(p), prog.end());

    // Relocate application control flow: targets past the insertion
    // point shift by the gate length; targets at exactly the insertion
    // point keep pointing at the gate (tests run at block entry).
    for (size_t i = 0; i < out.size(); ++i) {
        bool in_gate = i >= gate_base && i < gate_base + k;
        if (in_gate)
            continue;
        if (instr_has_target(out[i].op) && size_t(out[i].imm) > p)
            out[i].imm += int32_t(k);
    }
    // Gate-internal branches were assembled at base 0: shift them.
    for (size_t i = gate_base; i < gate_base + k; ++i)
        if (instr_has_target(out[i].op))
            out[i].imm += int32_t(gate_base);

    // ---- Append the test routine. ----
    size_t routine_entry = out.size();
    {
        cpu::Asm a;
        // Save caller state: x5..x29 and x31 (x30 saved at the gate).
        int slot = 0;
        for (int r = 5; r <= 29; ++r)
            a.sw(cpu::Reg(r), 0, int32_t(kXRegSaveBase + 4 * slot++));
        a.sw(31, 0, int32_t(kXRegSaveBase + 4 * slot++));
        a.csrr_fflags(5);
        a.sw(5, 0, int32_t(kFflagsSaveAddr));
        for (int r = 1; r <= 31; ++r)
            a.fsw(cpu::FReg(r), 0, int32_t(kFRegSaveBase + 4 * (r - 1)));

        // Inline every test; a set x31 aborts into the fault handler.
        for (size_t t = 0; t < suite.size(); ++t) {
            a.label("test" + std::to_string(t));
            // Tests are self-contained blocks ending in Halt; inline all
            // but the Halt and relocate their internal branches.
            const auto &tp = suite[t].program;
            size_t base = a.size();
            for (size_t i = 0; i + 1 < tp.size(); ++i) {
                Instr ins = tp[i];
                if (instr_has_target(ins.op))
                    ins.imm += int32_t(base);
                a.emit_raw(ins);
            }
            a.bne(31, 0, "fault");
        }

        // Restore and return.
        for (int r = 1; r <= 31; ++r)
            a.flw(cpu::FReg(r), 0, int32_t(kFRegSaveBase + 4 * (r - 1)));
        a.lw(5, 0, int32_t(kFflagsSaveAddr));
        a.csrw_fflags(5);
        slot = 0;
        for (int r = 5; r <= 29; ++r)
            a.lw(cpu::Reg(r), 0, int32_t(kXRegSaveBase + 4 * slot++));
        a.lw(31, 0, int32_t(kXRegSaveBase + 4 * slot++));
        a.jalr(0, 30, 0);

        a.label("fault");
        a.li(28, kFaultSentinelValue);
        a.sw(28, 0, int32_t(kFaultSentinelAddr));
        a.halt();

        std::vector<Instr> routine = a.finish();
        for (Instr &ins : routine)
            if (instr_has_target(ins.op))
                ins.imm += int32_t(routine_entry);
        out.insert(out.end(), routine.begin(), routine.end());
    }

    // Point the gate's jal at the routine entry.
    for (size_t i = gate_base; i < gate_base + k; ++i) {
        if (out[i].op == Op::Jal && out[i].rd == 30) {
            out[i].imm = int32_t(routine_entry);
            break;
        }
    }

    result.program = std::move(out);
    return result;
}

} // namespace vega::integrate
