/**
 * @file
 * Profile-guided test integration (§3.4.2).
 *
 * Picks a basic block that is routinely but not frequently executed,
 * splices a call to an appended test routine at its entry, estimates the
 * overhead from instruction counts, and — when the estimate exceeds the
 * user's threshold — gates the call behind an inline LCG so tests fire
 * with a computed probability, keeping overhead within budget.
 *
 * Memory map contract with instrumented applications (word addresses):
 *   2032  LCG state            2036  saved x30 (link)
 *   2040  fault sentinel       2048+ integer register save area
 *   2160  saved fflags         2176+ FP register save area
 * Applications must keep their data at or above address 4096.
 */
#pragma once

#include <vector>

#include "integrate/profile.h"
#include "runtime/test_case.h"

namespace vega::integrate {

/** Address an instrumented program stores 0xdead to on detection. */
constexpr uint32_t kFaultSentinelAddr = 2040;
constexpr uint32_t kFaultSentinelValue = 0xdead;

struct IntegrationConfig
{
    /** Maximum tolerated overhead estimate (fraction, e.g. 0.01 = 1%). */
    double overhead_threshold = 0.01;
    /** Blocks executed fewer times than this are not "routine". */
    uint64_t min_block_count = 2;
};

struct IntegrationResult
{
    /** Instruction index the tests were spliced at. */
    size_t insertion_point = 0;
    /** Execution count of the chosen block during profiling. */
    uint64_t block_count = 0;
    /** IR-count overhead estimate before throttling. */
    double estimated_overhead = 0.0;
    /** Dispatch probability after throttling (1.0 = unconditional). */
    double probability = 1.0;
    /** The instrumented program (application + test routine). */
    std::vector<cpu::Instr> program;
};

/**
 * Integrate @p suite into @p prog using @p profile. Panics if no block
 * qualifies as an insertion site.
 */
IntegrationResult integrate_tests(const std::vector<cpu::Instr> &prog,
                                  const Profile &profile,
                                  const std::vector<runtime::TestCase> &suite,
                                  const IntegrationConfig &config = {});

} // namespace vega::integrate
