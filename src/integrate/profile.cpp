#include "integrate/profile.h"

#include <algorithm>
#include <set>

#include "common/logging.h"
#include "cpu/iss.h"

namespace vega::integrate {

namespace {

bool
is_control(cpu::Op op)
{
    using cpu::Op;
    switch (op) {
      case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
      case Op::Bltu: case Op::Bgeu: case Op::Jal: case Op::Jalr:
      case Op::Halt:
        return true;
      default:
        return false;
    }
}

bool
has_target(cpu::Op op)
{
    using cpu::Op;
    return op == Op::Beq || op == Op::Bne || op == Op::Blt ||
           op == Op::Bge || op == Op::Bltu || op == Op::Bgeu ||
           op == Op::Jal;
}

} // namespace

std::vector<BasicBlock>
find_basic_blocks(const std::vector<cpu::Instr> &prog)
{
    std::set<size_t> leaders;
    if (!prog.empty())
        leaders.insert(0);
    for (size_t i = 0; i < prog.size(); ++i) {
        if (has_target(prog[i].op))
            leaders.insert(size_t(prog[i].imm));
        if (is_control(prog[i].op) && i + 1 < prog.size())
            leaders.insert(i + 1);
    }

    std::vector<BasicBlock> blocks;
    for (auto it = leaders.begin(); it != leaders.end(); ++it) {
        BasicBlock b;
        b.first = *it;
        auto next = std::next(it);
        b.last = (next == leaders.end() ? prog.size() : *next) - 1;
        blocks.push_back(b);
    }
    return blocks;
}

Profile
profile_program(const std::vector<cpu::Instr> &prog)
{
    Profile p;
    p.blocks = find_basic_blocks(prog);

    cpu::Iss iss(prog);
    auto status = iss.run();
    VEGA_CHECK(status == cpu::Iss::Status::Halted,
               "profiled program did not halt");

    const auto &counts = iss.exec_counts();
    for (BasicBlock &b : p.blocks)
        b.count = counts[b.first];
    p.total_instructions = iss.instret();
    p.total_cycles = iss.cycles();
    return p;
}

} // namespace vega::integrate
