#include "vega/aging_analysis.h"

#include "common/logging.h"
#include "sim/simulator.h"

namespace vega {

std::vector<sta::EndpointPair>
AgingAnalysisResult::liftable_pairs() const
{
    std::vector<sta::EndpointPair> out;
    for (const sta::EndpointPair &p : sta.pairs)
        if (p.launch != kInvalidId)
            out.push_back(p);
    return out;
}

std::vector<cpu::FuTraceEntry>
record_workload_trace(const std::vector<std::vector<cpu::Instr>> &programs)
{
    std::vector<cpu::FuTraceEntry> trace;
    for (const auto &prog : programs) {
        cpu::IssConfig cfg;
        cfg.record_fu_trace = true;
        cpu::Iss iss(prog, cfg);
        auto status = iss.run();
        VEGA_CHECK(status == cpu::Iss::Status::Halted,
                   "workload did not halt");
        trace.insert(trace.end(), iss.fu_trace().begin(),
                     iss.fu_trace().end());
    }
    return trace;
}

std::vector<cpu::FuTraceEntry>
record_mem_workload_trace(const std::vector<std::vector<cpu::Instr>> &programs)
{
    std::vector<cpu::FuTraceEntry> trace;
    for (const auto &prog : programs) {
        cpu::IssConfig cfg;
        cfg.record_mem_trace = true;
        cpu::Iss iss(prog, cfg);
        auto status = iss.run();
        VEGA_CHECK(status == cpu::Iss::Status::Halted,
                   "workload did not halt");
        trace.insert(trace.end(), iss.mem_trace().begin(),
                     iss.mem_trace().end());
    }
    return trace;
}

namespace {

/** Opcode-bus width of a module's interface. */
size_t
op_width(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Alu32: return 4;
      case ModuleKind::Fpu32: return 3;
      case ModuleKind::Mdu32: return 2;
      default: return 0;
    }
}

/** Drive one trace entry (or an idle cycle) into the module. */
void
apply_entry(Simulator &sim, ModuleKind kind, const cpu::FuTraceEntry *e)
{
    if (is_mem_module(kind)) {
        // Memory substrate ports (rtl/memdec.h): the byte address maps
        // onto the decoder's row address (word-aligned, wrapped to the
        // 16-row macro — the whole data space is stripe-aliased onto
        // it), op carries the store bit, b the written value.
        if (e) {
            sim.set_bus("addr", BitVec(4, (e->a >> 2) & 0xf));
            sim.set_bus("we", BitVec(1, e->op ? 1 : 0));
            sim.set_bus("din", BitVec(8, e->b & 0xff));
        } else {
            sim.set_bus("we", BitVec(1, 0));
        }
        return;
    }
    bool is_fpu_module = kind == ModuleKind::Fpu32;
    if (e) {
        sim.set_bus("a", BitVec(32, e->a));
        sim.set_bus("b", BitVec(32, e->b));
        sim.set_bus("op", BitVec(op_width(kind), e->op));
        if (is_fpu_module) {
            sim.set_bus("valid", BitVec(1, 1));
            sim.set_bus("clear", BitVec(1, 0));
        }
    } else if (is_fpu_module) {
        sim.set_bus("valid", BitVec(1, 0));
        sim.set_bus("clear", BitVec(1, 0));
    }
}

} // namespace

AgingAnalysisResult
run_aging_analysis(HwModule &module, const aging::AgingTimingLibrary &lib,
                   const std::vector<cpu::FuTraceEntry> &trace,
                   const AgingAnalysisConfig &config)
{
    // "Synthesis": close timing to the configured utilization.
    sta::calibrate_timing_scale(module, lib, config.utilization);

    // Signal Probability Simulation: replay the workload; ops for the
    // other functional unit appear as idle cycles, preserving realistic
    // activity ratios. One recorded trace is one stimulus stream, so
    // this stays on the scalar (1-lane) tape interpreter rather than
    // the 64-lane batch profiler.
    Simulator sim(module.netlist);
    SpProfile profile(module.netlist.num_cells());
    size_t limit = config.max_trace == 0
                       ? trace.size()
                       : std::min(trace.size(), config.max_trace);
    for (size_t i = 0; i < limit; ++i) {
        const cpu::FuTraceEntry &e = trace[i];
        bool matches = e.unit == module.kind;
        apply_entry(sim, module.kind, matches ? &e : nullptr);
        sim.eval();
        profile.sample(sim);
        sim.step();
    }

    AgingAnalysisResult result;
    result.profile = std::move(profile);
    result.fresh =
        sta::compute_aged_timing(module, result.profile, lib, 0.0);
    result.aged = sta::compute_aged_timing(module, result.profile, lib,
                                           config.years);
    result.fresh_sta =
        sta::run_sta(module, result.fresh, config.max_paths_per_endpoint);
    result.sta =
        sta::run_sta(module, result.aged, config.max_paths_per_endpoint);
    return result;
}

} // namespace vega
