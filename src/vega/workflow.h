/**
 * @file
 * The end-to-end Vega workflow (Figure 2): Aging Analysis → Error
 * Lifting → Test Integration, packaged behind one call per module. This
 * is the library's primary public entry point; examples and benches
 * build on it.
 */
#pragma once

#include "integrate/integrator.h"
#include "lift/error_lifting.h"
#include "runtime/aging_library.h"
#include "vega/aging_analysis.h"
#include "workloads/kernels.h"

namespace vega {

struct WorkflowConfig
{
    AgingAnalysisConfig aging;
    lift::LiftConfig lift;
    runtime::AgingLibraryOptions library;
};

struct WorkflowResult
{
    AgingAnalysisResult aging;
    lift::LiftResult lift;
    /** The generated suite (empty when nothing lifted). */
    std::vector<runtime::TestCase> suite;

    /** Package the suite as a runtime aging library (§3.4.1). */
    runtime::AgingLibrary
    make_library(const runtime::AgingLibraryOptions &options) const
    {
        return runtime::AgingLibrary(suite, options);
    }
};

/**
 * Run the full workflow on @p module using @p trace as the
 * representative workload (e.g. record_workload_trace of the minver
 * kernel, as in the paper's §4).
 */
WorkflowResult run_workflow(HwModule &module,
                            const aging::AgingTimingLibrary &lib,
                            const std::vector<cpu::FuTraceEntry> &trace,
                            const WorkflowConfig &config = {});

/** Default workload: the minver kernel's functional-unit trace. */
const std::vector<cpu::FuTraceEntry> &minver_trace();

/** Default memory workload: the crc32 kernel's data-memory trace
 *  (address-skewed — the stream that ages decoder stacks unevenly). */
const std::vector<cpu::FuTraceEntry> &mem_workload_trace();

/**
 * Build the placed-and-routed functional unit for @p kind — one call
 * in front of the rtl/ generators so drivers (campaign CLI, benches)
 * can select a module by name.
 */
HwModule make_module(ModuleKind kind);

} // namespace vega
