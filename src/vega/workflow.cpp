#include "vega/workflow.h"

#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "rtl/fpu32.h"
#include "rtl/mdu32.h"

namespace vega {

HwModule
make_module(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Adder2: return rtl::make_adder2();
      case ModuleKind::Alu32:  return rtl::make_alu32();
      case ModuleKind::Fpu32:  return rtl::make_fpu32();
      case ModuleKind::Mdu32:  return rtl::make_mdu32();
    }
    return rtl::make_alu32();
}

const std::vector<cpu::FuTraceEntry> &
minver_trace()
{
    static const std::vector<cpu::FuTraceEntry> trace =
        record_workload_trace({workloads::make_minver().program});
    return trace;
}

WorkflowResult
run_workflow(HwModule &module, const aging::AgingTimingLibrary &lib,
             const std::vector<cpu::FuTraceEntry> &trace,
             const WorkflowConfig &config)
{
    WorkflowResult result;
    result.aging = run_aging_analysis(module, lib, trace, config.aging);
    result.lift = lift::run_error_lifting(
        module, result.aging.liftable_pairs(), config.lift);
    result.suite = result.lift.suite();
    return result;
}

} // namespace vega
