#include "vega/workflow.h"

#include "mem/decoder_lift.h"
#include "rtl/adder2.h"
#include "rtl/alu32.h"
#include "rtl/fpu32.h"
#include "rtl/mdu32.h"
#include "rtl/memdec.h"

namespace vega {

HwModule
make_module(ModuleKind kind)
{
    switch (kind) {
      case ModuleKind::Adder2:   return rtl::make_adder2();
      case ModuleKind::Alu32:    return rtl::make_alu32();
      case ModuleKind::Fpu32:    return rtl::make_fpu32();
      case ModuleKind::Mdu32:    return rtl::make_mdu32();
      case ModuleKind::MemDec16: return rtl::make_memdec16();
    }
    return rtl::make_alu32();
}

const std::vector<cpu::FuTraceEntry> &
minver_trace()
{
    static const std::vector<cpu::FuTraceEntry> trace =
        record_workload_trace({workloads::make_minver().program});
    return trace;
}

const std::vector<cpu::FuTraceEntry> &
mem_workload_trace()
{
    // crc32 is the most address-skewed integer kernel: its table walk
    // hammers a few rows while the message buffer streams — exactly the
    // asymmetric address SP that ages decoder stacks unevenly.
    static const std::vector<cpu::FuTraceEntry> trace =
        record_mem_workload_trace({workloads::make_crc32().program});
    return trace;
}

WorkflowResult
run_workflow(HwModule &module, const aging::AgingTimingLibrary &lib,
             const std::vector<cpu::FuTraceEntry> &trace,
             const WorkflowConfig &config)
{
    WorkflowResult result;
    result.aging = run_aging_analysis(module, lib, trace, config.aging);
    if (is_mem_module(module.kind)) {
        // Memory substrates lift through the decoder-aware pass: slow
        // aged gates become wrong-address fault classes, and march
        // tests (not value probes) detect them. The outcome is folded
        // into the LiftResult shape so campaign/fleet drivers treat
        // both fault families uniformly.
        mem::MemLiftConfig mc;
        mc.max_pairs = config.lift.max_pairs;
        mem::MemLiftResult ml = mem::run_decoder_lifting(
            module, result.aging.liftable_pairs(), mc);
        for (const mem::MemPairResult &mp : ml.pairs) {
            lift::PairResult pr;
            pr.pair = mp.pair;
            pr.status = mp.status;
            result.lift.pairs.push_back(std::move(pr));
        }
        result.lift.n_success = ml.n_success;
        result.lift.n_unreachable = ml.n_unreachable;
        result.lift.n_conversion_failed = ml.n_conversion_failed;
        result.suite = std::move(ml.suite);
        return result;
    }
    result.lift = lift::run_error_lifting(
        module, result.aging.liftable_pairs(), config.lift);
    result.suite = result.lift.suite();
    return result;
}

} // namespace vega
