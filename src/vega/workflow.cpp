#include "vega/workflow.h"

namespace vega {

const std::vector<cpu::FuTraceEntry> &
minver_trace()
{
    static const std::vector<cpu::FuTraceEntry> trace =
        record_workload_trace({workloads::make_minver().program});
    return trace;
}

WorkflowResult
run_workflow(HwModule &module, const aging::AgingTimingLibrary &lib,
             const std::vector<cpu::FuTraceEntry> &trace,
             const WorkflowConfig &config)
{
    WorkflowResult result;
    result.aging = run_aging_analysis(module, lib, trace, config.aging);
    result.lift = lift::run_error_lifting(
        module, result.aging.liftable_pairs(), config.lift);
    result.suite = result.lift.suite();
    return result;
}

} // namespace vega
