/**
 * @file
 * Phase 1 — Aging Analysis (§3.2).
 *
 * Replays a representative functional-unit workload trace (recorded by
 * the ISS, §3.2.1's Signal Probability Simulation) on the module's
 * placed-and-routed netlist while sampling per-cell signal probability;
 * then runs aging-aware STA with the precomputed timing library to find
 * the paths that will violate timing after the configured lifetime.
 */
#pragma once

#include <vector>

#include "aging/timing_library.h"
#include "cpu/iss.h"
#include "rtl/module.h"
#include "sim/sp_profiler.h"
#include "sta/sta.h"

namespace vega {

struct AgingAnalysisConfig
{
    /** Assumed lifetime, years (mission-critical default, §3.2.2). */
    double years = 10.0;
    /** Fraction of the clock period synthesis leaves occupied. */
    double utilization = 0.985;
    /** Cap on replayed trace entries (0 = whole trace). */
    size_t max_trace = 0;
    /** Path-enumeration cap forwarded to the STA. */
    size_t max_paths_per_endpoint = 20000;
};

struct AgingAnalysisResult
{
    SpProfile profile;
    sta::AgedTiming fresh;
    sta::AgedTiming aged;
    sta::StaResult fresh_sta;
    sta::StaResult sta;
    /** Unique aging-prone endpoint pairs, DFF-launched only, worst first. */
    std::vector<sta::EndpointPair> liftable_pairs() const;
};

/**
 * Run Aging Analysis on @p module (calibrates its timing scale to the
 * configured utilization as a synthesis flow would).
 *
 * @param trace  functional-unit operations recorded from representative
 *               workloads; entries for the other unit become idle cycles,
 *               so activity ratios (and clock-gating duty) are realistic.
 */
AgingAnalysisResult
run_aging_analysis(HwModule &module, const aging::AgingTimingLibrary &lib,
                   const std::vector<cpu::FuTraceEntry> &trace,
                   const AgingAnalysisConfig &config = {});

/** Record the FU trace of a set of programs (the SP workload). */
std::vector<cpu::FuTraceEntry>
record_workload_trace(const std::vector<std::vector<cpu::Instr>> &programs);

/** Record the data-memory trace of a set of programs (the SP workload
 *  for memory-path substrates; see IssConfig::record_mem_trace). */
std::vector<cpu::FuTraceEntry>
record_mem_workload_trace(const std::vector<std::vector<cpu::Instr>> &programs);

} // namespace vega
