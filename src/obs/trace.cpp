#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "common/fs.h"

namespace vega::obs {

namespace detail {
std::atomic<bool> g_trace_enabled{false};
} // namespace detail

namespace {

using Clock = std::chrono::steady_clock;

/** One thread's span ring. The owner and collectors share the mutex;
 *  spans are coarse (a solve, a job), so the lock is uncontended in
 *  practice. */
struct ThreadBuf
{
    std::mutex mu;
    std::vector<TraceEvent> ring;
    size_t capacity = 0;
    size_t next = 0;     ///< ring slot the next event lands in
    uint64_t dropped = 0;
    uint32_t tid = 0;
    uint64_t generation = 0; ///< trace session this buffer last saw
};

struct TraceState
{
    std::mutex mu; ///< guards bufs / epoch / capacity / generation
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    Clock::time_point epoch = Clock::now();
    size_t capacity = 1 << 16;
    uint64_t generation = 0;
    std::atomic<uint32_t> next_tid{1};
};

TraceState &
state()
{
    static TraceState *s = new TraceState; // outlives static teardown
    return *s;
}

/** The calling thread's buffer, registered globally on first use. */
ThreadBuf &
thread_buf()
{
    static thread_local std::shared_ptr<ThreadBuf> buf = [] {
        TraceState &s = state();
        auto b = std::make_shared<ThreadBuf>();
        std::lock_guard<std::mutex> lk(s.mu);
        b->tid = s.next_tid.fetch_add(1);
        b->capacity = s.capacity;
        b->generation = s.generation;
        s.bufs.push_back(b);
        return b;
    }();
    return *buf;
}

} // namespace

namespace detail {

uint64_t
now_ns()
{
    return uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Clock::now() - state().epoch)
                        .count());
}

void
record_span(const char *name, uint64_t t0_ns)
{
    uint64_t t1 = now_ns();
    TraceState &s = state();
    ThreadBuf &b = thread_buf();
    std::lock_guard<std::mutex> lk(b.mu);
    // A buffer created before the current trace_enable() may hold
    // events from the previous session; a generation mismatch says
    // "start fresh" without trace_enable having to visit every buffer.
    uint64_t gen;
    size_t cap;
    {
        std::lock_guard<std::mutex> slk(s.mu);
        gen = s.generation;
        cap = s.capacity;
    }
    if (b.generation != gen) {
        b.generation = gen;
        b.capacity = cap;
        b.ring.clear();
        b.next = 0;
        b.dropped = 0;
    }
    TraceEvent e;
    e.name = name;
    e.ts_ns = t0_ns;
    e.dur_ns = t1 >= t0_ns ? t1 - t0_ns : 0;
    e.tid = b.tid;
    if (b.ring.size() < b.capacity) {
        b.ring.push_back(e);
    } else if (b.capacity > 0) {
        b.ring[b.next] = e;
        b.next = (b.next + 1) % b.capacity;
        ++b.dropped;
    } else {
        ++b.dropped;
    }
}

} // namespace detail

void
trace_enable(size_t events_per_thread)
{
    TraceState &s = state();
    {
        std::lock_guard<std::mutex> lk(s.mu);
        ++s.generation;
        s.capacity = events_per_thread;
        s.epoch = Clock::now();
    }
    detail::g_trace_enabled.store(true, std::memory_order_relaxed);
}

void
trace_disable()
{
    detail::g_trace_enabled.store(false, std::memory_order_relaxed);
}

uint64_t
trace_dropped()
{
    TraceState &s = state();
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    uint64_t gen;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        bufs = s.bufs;
        gen = s.generation;
    }
    uint64_t total = 0;
    for (auto &b : bufs) {
        std::lock_guard<std::mutex> lk(b->mu);
        if (b->generation == gen)
            total += b->dropped;
    }
    return total;
}

std::vector<TraceEvent>
trace_collect()
{
    TraceState &s = state();
    std::vector<std::shared_ptr<ThreadBuf>> bufs;
    uint64_t gen;
    {
        std::lock_guard<std::mutex> lk(s.mu);
        bufs = s.bufs;
        gen = s.generation;
    }
    std::vector<TraceEvent> out;
    for (auto &b : bufs) {
        std::lock_guard<std::mutex> lk(b->mu);
        if (b->generation != gen)
            continue; // stale events from a previous session
        // Oldest first: the ring wraps at `next`.
        for (size_t i = 0; i < b->ring.size(); ++i)
            out.push_back(b->ring[(b->next + i) % b->ring.size()]);
    }
    std::sort(out.begin(), out.end(),
              [](const TraceEvent &a, const TraceEvent &b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.ts_ns != b.ts_ns)
                      return a.ts_ns < b.ts_ns;
                  return a.dur_ns > b.dur_ns; // enclosing span first
              });
    return out;
}

std::string
chrome_trace_json(const std::vector<TraceEvent> &events)
{
    std::string out;
    out.reserve(128 + events.size() * 96);
    out += "{\"traceEvents\":[";
    out += "{\"ph\":\"M\",\"pid\":1,\"tid\":0,"
           "\"name\":\"process_name\",\"args\":{\"name\":\"vega\"}}";
    char buf[192];
    for (const TraceEvent &e : events) {
        std::snprintf(buf, sizeof buf,
                      ",{\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                      "\"name\":\"%s\",\"ts\":%.3f,\"dur\":%.3f}",
                      e.tid, e.name ? e.name : "?",
                      double(e.ts_ns) / 1e3, double(e.dur_ns) / 1e3);
        out += buf;
    }
    out += "],\"displayTimeUnit\":\"ms\"}";
    return out;
}

Expected<void>
write_chrome_trace(const std::string &path)
{
    return write_file_atomic(path, chrome_trace_json(trace_collect()) +
                                       "\n");
}

} // namespace vega::obs
