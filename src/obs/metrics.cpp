#include "obs/metrics.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

namespace vega::obs {

/**
 * The process-wide registry. Entities are heap-allocated once so the
 * references handed out never move; the name maps are only touched
 * under the mutex, which update paths never take (they hold direct
 * references).
 */
class Registry
{
  public:
    static Registry &
    instance()
    {
        static Registry *r = new Registry; // never destroyed: handles
        return *r;                         // outlive static teardown
    }

    Counter &
    counter(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = counters_by_name_.find(name);
        if (it != counters_by_name_.end())
            return *it->second;
        Counter *c = new Counter();
        counters_by_name_.emplace(name, std::unique_ptr<Counter>(c));
        return *c;
    }

    Gauge &
    gauge(const std::string &name)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = gauges_by_name_.find(name);
        if (it != gauges_by_name_.end())
            return *it->second;
        Gauge *g = new Gauge();
        gauges_by_name_.emplace(name, std::unique_ptr<Gauge>(g));
        return *g;
    }

    Histogram &
    histogram(const std::string &name, const std::vector<double> &bounds)
    {
        std::lock_guard<std::mutex> lk(mu_);
        auto it = histograms_by_name_.find(name);
        if (it != histograms_by_name_.end())
            return *it->second;
        Histogram *h = new Histogram(bounds);
        histograms_by_name_.emplace(name,
                                    std::unique_ptr<Histogram>(h));
        return *h;
    }

    MetricsSnapshot
    snapshot()
    {
        std::lock_guard<std::mutex> lk(mu_);
        MetricsSnapshot s;
        for (const auto &[name, c] : counters_by_name_)
            s.counters.emplace_back(name, c->value());
        for (const auto &[name, g] : gauges_by_name_)
            s.gauges.emplace_back(name, g->value());
        for (const auto &[name, h] : histograms_by_name_) {
            MetricsSnapshot::HistogramEntry e;
            e.name = name;
            e.bounds = h->bounds();
            e.buckets.reserve(e.bounds.size() + 1);
            for (size_t i = 0; i <= e.bounds.size(); ++i)
                e.buckets.push_back(h->bucket_count(i));
            e.count = h->count();
            e.sum = h->sum();
            s.histograms.push_back(std::move(e));
        }
        return s; // std::map iteration is already name-sorted
    }

    void
    reset()
    {
        std::lock_guard<std::mutex> lk(mu_);
        for (auto &[name, c] : counters_by_name_)
            c->reset();
        for (auto &[name, g] : gauges_by_name_)
            g->reset();
        for (auto &[name, h] : histograms_by_name_)
            h->reset();
    }

  private:
    std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_by_name_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_by_name_;
    std::map<std::string, std::unique_ptr<Histogram>>
        histograms_by_name_;
};

namespace {

void
append_u64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

void
append_i64(std::string &out, int64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", (long long)v);
    out += buf;
}

void
append_double(std::string &out, double v)
{
    char buf[40];
    if (v >= 0 && v < 1e15 && v == double(uint64_t(v)))
        std::snprintf(buf, sizeof buf, "%llu",
                      (unsigned long long)(uint64_t(v)));
    else
        std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

} // namespace

double
histogram_quantile(const std::vector<double> &bounds,
                   const std::vector<uint64_t> &buckets, uint64_t count,
                   double q)
{
    if (count == 0 || buckets.empty())
        return 0.0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target observation, 1-based so q=0 lands on the
    // first observation and q=1 on the last.
    double rank = q * double(count);
    if (rank < 1.0)
        rank = 1.0;
    uint64_t below = 0;
    for (size_t i = 0; i < buckets.size(); ++i) {
        uint64_t in_bucket = buckets[i];
        if (in_bucket == 0)
            continue;
        if (rank > double(below + in_bucket)) {
            below += in_bucket;
            continue;
        }
        if (i >= bounds.size()) // overflow: no upper edge to lerp to
            return bounds.empty() ? 0.0 : bounds.back();
        double lo = i == 0 ? std::min(0.0, bounds[0]) : bounds[i - 1];
        double hi = bounds[i];
        double frac = (rank - double(below)) / double(in_bucket);
        return lo + (hi - lo) * frac;
    }
    return bounds.back();
}

double
Histogram::quantile(double q) const
{
    std::vector<uint64_t> counts;
    counts.reserve(bounds_.size() + 1);
    for (size_t i = 0; i <= bounds_.size(); ++i)
        counts.push_back(bucket_count(i));
    return histogram_quantile(bounds_, counts, count(), q);
}

size_t
Counter::shard_index()
{
    static std::atomic<size_t> next{0};
    static thread_local size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx % kShards;
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1)
{
    // Bounds must ascend for the binary search to mean "first bound
    // that is >= v"; sorting here makes the contract unconditional.
    std::sort(bounds_.begin(), bounds_.end());
}

void
Histogram::observe(double v)
{
    size_t i = size_t(
        std::lower_bound(bounds_.begin(), bounds_.end(), v) -
        bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);

    uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
    double sum;
    uint64_t next;
    do {
        std::memcpy(&sum, &cur, sizeof sum);
        sum += v;
        std::memcpy(&next, &sum, sizeof next);
    } while (!sum_bits_.compare_exchange_weak(cur, next,
                                              std::memory_order_relaxed));
}

double
Histogram::sum() const
{
    uint64_t bits = sum_bits_.load(std::memory_order_relaxed);
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
}

const std::vector<double> &
default_time_bounds()
{
    static const std::vector<double> bounds = {
        1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 0.1, 0.3, 1, 3, 10, 30, 100};
    return bounds;
}

Counter &
counter(const std::string &name)
{
    return Registry::instance().counter(name);
}

Gauge &
gauge(const std::string &name)
{
    return Registry::instance().gauge(name);
}

Histogram &
histogram(const std::string &name, const std::vector<double> &bounds)
{
    return Registry::instance().histogram(name, bounds);
}

MetricsSnapshot
snapshot_metrics()
{
    return Registry::instance().snapshot();
}

void
reset_metrics()
{
    Registry::instance().reset();
}

std::string
MetricsSnapshot::to_json() const
{
    std::string out;
    out.reserve(1024 + 48 * (counters.size() + gauges.size()) +
                256 * histograms.size());
    out += "{\"counters\":{";
    for (size_t i = 0; i < counters.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += counters[i].first;
        out += "\":";
        append_u64(out, counters[i].second);
    }
    out += "},\"gauges\":{";
    for (size_t i = 0; i < gauges.size(); ++i) {
        if (i)
            out += ',';
        out += '"';
        out += gauges[i].first;
        out += "\":";
        append_i64(out, gauges[i].second);
    }
    out += "},\"histograms\":{";
    for (size_t i = 0; i < histograms.size(); ++i) {
        const HistogramEntry &h = histograms[i];
        if (i)
            out += ',';
        out += '"';
        out += h.name;
        out += "\":{\"count\":";
        append_u64(out, h.count);
        out += ",\"sum\":";
        append_double(out, h.sum);
        out += ",\"p50\":";
        append_double(out, h.quantile(0.50));
        out += ",\"p95\":";
        append_double(out, h.quantile(0.95));
        out += ",\"p99\":";
        append_double(out, h.quantile(0.99));
        out += ",\"buckets\":[";
        for (size_t b = 0; b < h.buckets.size(); ++b) {
            if (b)
                out += ',';
            out += "{\"le\":";
            if (b < h.bounds.size())
                append_double(out, h.bounds[b]);
            else
                out += "\"inf\"";
            out += ",\"count\":";
            append_u64(out, h.buckets[b]);
            out += '}';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string
MetricsSnapshot::summary() const
{
    std::string out;
    for (const auto &[name, v] : counters) {
        out += name;
        out += ' ';
        append_u64(out, v);
        out += '\n';
    }
    for (const auto &[name, v] : gauges) {
        out += name;
        out += ' ';
        append_i64(out, v);
        out += '\n';
    }
    for (const HistogramEntry &h : histograms) {
        out += h.name;
        out += " count=";
        append_u64(out, h.count);
        out += " sum=";
        append_double(out, h.sum);
        if (h.count) {
            out += " mean=";
            append_double(out, h.sum / double(h.count));
        }
        out += '\n';
    }
    return out;
}

} // namespace vega::obs
