/**
 * @file
 * Scoped tracing spans recorded into thread-local ring buffers.
 *
 * Usage: drop `VEGA_SPAN("sat.solve");` at the top of a scope. When
 * tracing is disabled (the default) the span costs a single branch on
 * a relaxed atomic load — no clock read, no allocation, nothing. When
 * enabled, entering and leaving the scope records one complete event
 * (begin timestamp, duration, thread id) into the calling thread's
 * ring buffer; a full ring overwrites its oldest events and counts
 * them as dropped rather than blocking or growing.
 *
 * Buffers are registered globally on first use per thread and outlive
 * the thread, so trace_collect() after worker joins still sees every
 * event. Export with write_chrome_trace(): the output loads directly
 * in Perfetto (https://ui.perfetto.dev) or chrome://tracing.
 *
 * Span names must be string literals (or otherwise outlive the
 * tracer): events store the pointer, not a copy.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace vega::obs {

struct TraceEvent
{
    const char *name = nullptr;
    uint64_t ts_ns = 0;  ///< begin, relative to trace_enable()
    uint64_t dur_ns = 0; ///< end - begin
    uint32_t tid = 0;    ///< tracer-assigned sequential thread id
};

namespace detail {
extern std::atomic<bool> g_trace_enabled;
void record_span(const char *name, uint64_t t0_ns);
uint64_t now_ns();
} // namespace detail

/** True between trace_enable() and trace_disable(). */
inline bool
trace_enabled()
{
    return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/**
 * Start recording spans. Clears previously collected events; each
 * thread's ring holds up to @p events_per_thread events (oldest
 * overwritten beyond that).
 */
void trace_enable(size_t events_per_thread = 1 << 16);

/** Stop recording. Recorded events stay available for collection. */
void trace_disable();

/** Events overwritten because a thread's ring was full. */
uint64_t trace_dropped();

/**
 * Copy out every recorded event, sorted by (tid, ts, -dur) so the
 * events of one thread read as a properly nested span stack.
 */
std::vector<TraceEvent> trace_collect();

/**
 * Render @p events as Chrome trace-event JSON ("X" complete events,
 * microsecond timestamps) loadable in Perfetto / chrome://tracing.
 */
std::string chrome_trace_json(const std::vector<TraceEvent> &events);

/**
 * Collect and write the trace to @p path via the atomic temp-then-
 * rename path, so a crash mid-export never leaves a torn file.
 */
Expected<void> write_chrome_trace(const std::string &path);

/**
 * RAII span. Does nothing — one branch — when tracing is disabled at
 * construction; otherwise records a complete event at destruction.
 */
class ScopedSpan
{
  public:
    explicit ScopedSpan(const char *name)
    {
        if (trace_enabled()) {
            name_ = name;
            t0_ = detail::now_ns();
        }
    }
    ~ScopedSpan()
    {
        if (name_)
            detail::record_span(name_, t0_);
    }

    ScopedSpan(const ScopedSpan &) = delete;
    ScopedSpan &operator=(const ScopedSpan &) = delete;

  private:
    const char *name_ = nullptr;
    uint64_t t0_ = 0;
};

} // namespace vega::obs

#define VEGA_SPAN_CONCAT2(a, b) a##b
#define VEGA_SPAN_CONCAT(a, b) VEGA_SPAN_CONCAT2(a, b)
/** Trace the enclosing scope as one span named @p name (a literal). */
#define VEGA_SPAN(name)                                                     \
    ::vega::obs::ScopedSpan VEGA_SPAN_CONCAT(vega_span_, __LINE__)(name)
