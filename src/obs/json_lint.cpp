#include "obs/json_lint.h"

#include <cctype>
#include <cstring>

namespace vega::obs {

namespace {

/** Recursive-descent validator over a raw byte string. */
struct Lint
{
    const std::string &s;
    size_t pos = 0;
    std::string error;
    static constexpr int kMaxDepth = 256;

    bool
    fail(const std::string &msg)
    {
        if (error.empty())
            error = "offset " + std::to_string(pos) + ": " + msg;
        return false;
    }

    void
    skip_ws()
    {
        while (pos < s.size() &&
               (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\n' ||
                s[pos] == '\r'))
            ++pos;
    }

    bool
    literal(const char *word)
    {
        size_t n = std::char_traits<char>::length(word);
        if (s.compare(pos, n, word) != 0)
            return fail(std::string("expected '") + word + "'");
        pos += n;
        return true;
    }

    bool
    string()
    {
        if (pos >= s.size() || s[pos] != '"')
            return fail("expected string");
        ++pos;
        while (pos < s.size()) {
            unsigned char c = s[pos];
            if (c == '"') {
                ++pos;
                return true;
            }
            if (c == '\\') {
                ++pos;
                if (pos >= s.size())
                    return fail("truncated escape");
                char e = s[pos];
                if (e == 'u') {
                    for (int i = 1; i <= 4; ++i)
                        if (pos + i >= s.size() ||
                            !std::isxdigit(
                                (unsigned char)s[pos + i]))
                            return fail("bad \\u escape");
                    pos += 4;
                } else if (!std::strchr("\"\\/bfnrt", e)) {
                    return fail("bad escape");
                }
                ++pos;
            } else if (c < 0x20) {
                return fail("raw control character in string");
            } else {
                ++pos;
            }
        }
        return fail("unterminated string");
    }

    bool
    number()
    {
        size_t start = pos;
        if (pos < s.size() && s[pos] == '-')
            ++pos;
        if (pos >= s.size() || !std::isdigit((unsigned char)s[pos]))
            return fail("expected digit");
        if (s[pos] == '0') {
            ++pos;
        } else {
            while (pos < s.size() &&
                   std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        if (pos < s.size() && s[pos] == '.') {
            ++pos;
            if (pos >= s.size() ||
                !std::isdigit((unsigned char)s[pos]))
                return fail("expected fraction digit");
            while (pos < s.size() &&
                   std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        if (pos < s.size() && (s[pos] == 'e' || s[pos] == 'E')) {
            ++pos;
            if (pos < s.size() && (s[pos] == '+' || s[pos] == '-'))
                ++pos;
            if (pos >= s.size() ||
                !std::isdigit((unsigned char)s[pos]))
                return fail("expected exponent digit");
            while (pos < s.size() &&
                   std::isdigit((unsigned char)s[pos]))
                ++pos;
        }
        return pos > start;
    }

    bool
    value(int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        skip_ws();
        if (pos >= s.size())
            return fail("expected value");
        switch (s[pos]) {
          case '{': return object(depth);
          case '[': return array(depth);
          case '"': return string();
          case 't': return literal("true");
          case 'f': return literal("false");
          case 'n': return literal("null");
          default:  return number();
        }
    }

    bool
    object(int depth)
    {
        ++pos; // '{'
        skip_ws();
        if (pos < s.size() && s[pos] == '}') {
            ++pos;
            return true;
        }
        for (;;) {
            skip_ws();
            if (!string())
                return false;
            skip_ws();
            if (pos >= s.size() || s[pos] != ':')
                return fail("expected ':'");
            ++pos;
            if (!value(depth + 1))
                return false;
            skip_ws();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == '}') {
                ++pos;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(int depth)
    {
        ++pos; // '['
        skip_ws();
        if (pos < s.size() && s[pos] == ']') {
            ++pos;
            return true;
        }
        for (;;) {
            if (!value(depth + 1))
                return false;
            skip_ws();
            if (pos < s.size() && s[pos] == ',') {
                ++pos;
                continue;
            }
            if (pos < s.size() && s[pos] == ']') {
                ++pos;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }
};

} // namespace

Expected<void>
json_validate(const std::string &text)
{
    Lint lint{text, 0, {}};
    if (!lint.value(0))
        return make_error(ErrorCode::InvalidArgument, lint.error);
    lint.skip_ws();
    if (lint.pos != text.size())
        return make_error(ErrorCode::InvalidArgument,
                          "offset " + std::to_string(lint.pos) +
                              ": trailing garbage after JSON value");
    return {};
}

} // namespace vega::obs
