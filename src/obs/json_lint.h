/**
 * @file
 * Minimal strict JSON validity checker.
 *
 * Vega emits all of its artifacts (campaign reports, metrics
 * snapshots, Chrome traces) as hand-rendered JSON; this is the
 * matching consumer-side guard. It validates full RFC 8259 syntax —
 * one top-level value, strings with escapes, numbers, nesting depth
 * capped — without building a document tree, so CI can cheaply assert
 * "this artifact parses" right after producing it.
 */
#pragma once

#include <string>

#include "common/error.h"

namespace vega::obs {

/**
 * Validate that @p text is exactly one well-formed JSON value
 * (trailing whitespace allowed). Errors come back as InvalidArgument
 * with the byte offset of the first problem.
 */
Expected<void> json_validate(const std::string &text);

} // namespace vega::obs
