/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * histograms registered by stable dotted names ("sat.conflicts",
 * "sim.cycles", "campaign.steals").
 *
 * Design goals, in order:
 *  - hot-path cheapness: Counter::add is one relaxed fetch_add on a
 *    cache-line-padded shard picked by thread; Gauge::set is one
 *    relaxed store. No locks anywhere on the update path.
 *  - stable handles: counter()/gauge()/histogram() return references
 *    that stay valid for the life of the process, so call sites look
 *    a metric up once (function-local static) and then update it
 *    lock-free forever.
 *  - deterministic snapshots: MetricsSnapshot::to_json() renders
 *    entries sorted by name with integer-exact counts, so two
 *    snapshots of the same state are byte-identical.
 *
 * Metrics are process-global and cumulative — a snapshot reflects
 * everything since process start (or the last reset_metrics(), which
 * only tests should call). Nothing in a CampaignReport's deterministic
 * fields may ever be derived from a metric.
 */
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace vega::obs {

/** Monotonic event count, sharded to keep concurrent bumps cheap. */
class Counter
{
  public:
    void add(uint64_t n = 1)
    {
        shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
    }
    void inc() { add(1); }

    /** Sum over shards; exact once concurrent writers are quiescent. */
    uint64_t value() const
    {
        uint64_t total = 0;
        for (const Shard &s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void reset()
    {
        for (Shard &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

  private:
    friend class Registry;
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    static constexpr size_t kShards = 8;
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    /** Stable per-thread shard pick; round-robin over thread births. */
    static size_t shard_index();

    Shard shards_[kShards];
};

/** Instantaneous signed level (queue depth, bytes buffered, ...). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

    /** Raise the gauge to @p v if it is above the current value. */
    void record_max(int64_t v)
    {
        int64_t cur = v_.load(std::memory_order_relaxed);
        while (v > cur &&
               !v_.compare_exchange_weak(cur, v,
                                         std::memory_order_relaxed))
            ;
    }

    void reset() { v_.store(0, std::memory_order_relaxed); }

  private:
    friend class Registry;
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    std::atomic<int64_t> v_{0};
};

/**
 * Linearly-interpolated quantile over fixed histogram buckets: the
 * value v such that a fraction @p q of the @p count observations fall
 * at or below v, assuming observations spread uniformly within their
 * bucket. The first bucket's lower edge is taken as min(0, bounds[0]);
 * ranks landing in the overflow bucket clamp to the last bound (the
 * overflow has no upper edge to interpolate toward). Returns 0 when
 * the histogram is empty. @p buckets must have bounds.size() + 1
 * entries and @p count must equal their sum.
 */
double histogram_quantile(const std::vector<double> &bounds,
                          const std::vector<uint64_t> &buckets,
                          uint64_t count, double q);

/**
 * Fixed-bucket histogram. Bucket i counts observations v with
 * bounds[i-1] < v <= bounds[i]; one implicit overflow bucket catches
 * everything above the last bound. Bounds are fixed at registration so
 * observation is a binary search plus one relaxed fetch_add.
 *
 * Besides the registry-owned metric use, Histogram is directly
 * constructible for local, report-building accumulation (the fleet
 * simulator's latency/overhead distributions): fills are exact integer
 * counts, so a serially-filled local histogram renders byte-identically
 * run to run.
 */
class Histogram
{
  public:
    /** Standalone histogram with the given bucket upper bounds. */
    explicit Histogram(std::vector<double> bounds);

    void observe(double v);

    /** Interpolated quantile of everything observed so far. */
    double quantile(double q) const;
    /** Shorthand percentiles for report export. */
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    const std::vector<double> &bounds() const { return bounds_; }
    /** Count in bucket @p i (i == bounds().size() is the overflow). */
    uint64_t bucket_count(size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;

    void reset();

  private:
    friend class Registry;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    std::vector<double> bounds_;
    std::vector<std::atomic<uint64_t>> buckets_; ///< bounds_.size() + 1
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_bits_{0}; ///< bit_cast'd double, CAS-added
};

/** Timing buckets (seconds), 100us .. 100s, ~3x apart. */
const std::vector<double> &default_time_bounds();

/**
 * Look up (or register on first use) a metric by dotted name. The
 * returned reference is valid forever. Re-registering a histogram
 * under the same name keeps the original bounds.
 *
 * Naming scheme: "<subsystem>.<what>[.<qualifier>]", lower-case,
 * e.g. "sat.conflicts", "campaign.jobs.w3". Stick to it — exporters
 * sort by name, so a consistent scheme groups related metrics.
 */
Counter &counter(const std::string &name);
Gauge &gauge(const std::string &name);
Histogram &histogram(const std::string &name,
                     const std::vector<double> &bounds =
                         default_time_bounds());

/** Point-in-time copy of every registered metric. */
struct MetricsSnapshot
{
    struct HistogramEntry
    {
        std::string name;
        std::vector<double> bounds;
        std::vector<uint64_t> buckets; ///< bounds.size() + 1 (overflow)
        uint64_t count = 0;
        double sum = 0.0;

        /** Interpolated percentile of the snapshotted counts. */
        double quantile(double q) const
        {
            return histogram_quantile(bounds, buckets, count, q);
        }
    };

    std::vector<std::pair<std::string, uint64_t>> counters;
    std::vector<std::pair<std::string, int64_t>> gauges;
    std::vector<HistogramEntry> histograms;

    /** Deterministic JSON: entries sorted by name, integers exact. */
    std::string to_json() const;
    /** Human-oriented flat "name value" lines for a stderr summary. */
    std::string summary() const;
};

/** Snapshot every registered metric, sorted by name. */
MetricsSnapshot snapshot_metrics();

/** Zero every registered metric (tests only; handles stay valid). */
void reset_metrics();

} // namespace vega::obs
