/**
 * @file
 * Mission-mode fleet simulator (the ROADMAP "millions of devices"
 * deployment question): does the generated library, integrated under a
 * production overhead budget, catch aging faults before they corrupt
 * application data — across a heterogeneous population?
 *
 * Each device is a pure function of (fleet seed, device id): a
 * splitmix64 stream derives its operating corner, workload mix,
 * initial age, per-epoch duty-cycle jitter, fault onset, and the
 * scheduler's draws, so a run is bit-reproducible at any thread count.
 *
 * Per epoch, a device:
 *  1. draws its duty cycle around the mix mean and accrues aging at
 *     `years_per_epoch × corner.stress × mix.stress × duty`;
 *  2. rolls fault onset against the aging hazard
 *     `base_hazard × stress × (1 + age²/25)` (a polynomial wearout
 *     curve — pure arithmetic, no libm, so every platform agrees
 *     bit-for-bit). Onset picks a fault class from the characterized
 *     FaultMatrix: uniformly for organic wear, or concentrated on the
 *     attack's target pair for adversarial devices (arXiv 2508.16868);
 *  3. runs its scheduler slots through vega::runtime::Scheduler with
 *     the §3.4.2 budget-derived dispatch probability, charging each
 *     dispatched test's cycle cost against the overhead account and
 *     consulting the matrix for the detection outcome;
 *  4. if the fault corrupts the representative workload, rolls the
 *     mix's corruption rate; a corruption event lands silently unless
 *     a detection fired earlier in the epoch (position ordering —
 *     those become `prevented_corruptions`).
 *
 * Detection retires the device from the mission (it is pulled for
 * repair), which is why fleet runs quote device-epochs actually
 * simulated rather than devices × epochs.
 */
#pragma once

#include <vector>

#include "common/error.h"
#include "fleet/config.h"
#include "fleet/device.h"
#include "fleet/fault_matrix.h"
#include "fleet/report.h"

namespace vega::fleet {

/**
 * Simulate one device's whole mission. Everything the device does
 * derives from campaign-style stream roots of (cfg.seed, id).
 */
DeviceOutcome simulate_device(const FleetConfig &cfg,
                              const FaultMatrix &matrix, uint64_t id);

/**
 * Run the whole fleet over @p cfg.threads workers and aggregate. The
 * config must already be validated (run_fleet validates again and
 * propagates the error to be safe). Timing fields are filled from the
 * wall clock; everything else in the report is deterministic.
 */
Expected<FleetReport> run_fleet(const FleetConfig &cfg,
                                const FaultMatrix &matrix);

} // namespace vega::fleet
