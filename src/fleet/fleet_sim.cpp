#include "fleet/fleet_sim.h"

#include <algorithm>
#include <chrono>

#include "campaign/job.h"
#include "campaign/thread_pool.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/scheduler.h"

namespace vega::fleet {

namespace {

/** Weighted index pick; weights need not be normalized. */
size_t
weighted_pick(Rng &rng, const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights)
        total += w;
    double r = rng.uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0)
            return i;
    }
    return weights.size() - 1;
}

size_t
pick_corner(Rng &rng, const FleetConfig &cfg)
{
    std::vector<double> w(cfg.corners.size());
    for (size_t i = 0; i < w.size(); ++i)
        w[i] = cfg.corners[i].weight;
    return weighted_pick(rng, w);
}

/** Organic devices sample mixes by weight; adversarial ones do not. */
size_t
pick_mix(Rng &rng, const FleetConfig &cfg)
{
    std::vector<double> w(cfg.mixes.size());
    for (size_t i = 0; i < w.size(); ++i)
        w[i] = cfg.mixes[i].adversarial ? 0.0 : cfg.mixes[i].weight;
    return weighted_pick(rng, w);
}

int
adversarial_mix_index(const FleetConfig &cfg)
{
    for (size_t i = 0; i < cfg.mixes.size(); ++i)
        if (cfg.mixes[i].adversarial)
            return int(i);
    return -1;
}

/**
 * §3.4.2: when the scheduler's full-rate overhead estimate exceeds the
 * budget, dispatch probabilistically at budget/estimate.
 */
double
gate_probability(const FleetConfig &cfg, const FaultMatrix &matrix)
{
    if (cfg.policy != runtime::SchedulePolicy::Probabilistic)
        return 1.0;
    double est = double(cfg.slots_per_epoch) *
                 matrix.mean_test_cycles() / double(cfg.epoch_cycles);
    if (est <= cfg.overhead_budget || est <= 0.0)
        return 1.0;
    return cfg.overhead_budget / est;
}

/**
 * Per-epoch fault-onset probability. Polynomial wearout curve: the
 * hazard grows with the square of accumulated (stress-accelerated)
 * age, normalized so a typical device crosses ~2x base hazard around
 * year 7. Pure arithmetic keeps it bit-identical across platforms.
 */
double
onset_hazard(double base, double stress, double age_years)
{
    double h = base * stress * (1.0 + age_years * age_years / 25.0);
    return std::clamp(h, 0.0, 1.0);
}

} // namespace

DeviceOutcome
simulate_device(const FleetConfig &cfg, const FaultMatrix &matrix,
                uint64_t id)
{
    DeviceOutcome out;
    out.id = id;

    uint64_t stream = campaign::job_stream(cfg.seed, id);
    Rng rng(campaign::splitmix64(stream));
    uint64_t sched_seed = campaign::splitmix64(stream);

    out.corner = uint32_t(pick_corner(rng, cfg));
    int adv_mix = adversarial_mix_index(cfg);
    out.adversarial =
        adv_mix >= 0 && rng.chance(cfg.adversarial_fraction);
    out.mix = out.adversarial ? uint32_t(adv_mix)
                              : uint32_t(pick_mix(rng, cfg));
    const CornerSpec &corner = cfg.corners[out.corner];
    const WorkloadMix &mix = cfg.mixes[out.mix];

    out.age_start = cfg.min_age_years +
                    rng.uniform() *
                        (cfg.max_age_years - cfg.min_age_years);
    out.age_end = out.age_start;
    out.gate_probability = gate_probability(cfg, matrix);

    runtime::Scheduler sched(matrix.num_tests, cfg.policy,
                             out.gate_probability, sched_seed);

    size_t constants_per_pair =
        matrix.num_pairs ? matrix.faults.size() / matrix.num_pairs : 0;
    const FaultClass *fc = nullptr;
    uint64_t slots_at_onset = 0;

    for (uint32_t e = 0; e < cfg.epochs; ++e) {
        out.epochs_run = e + 1;
        // Duty jitters ±25% around the mix mean epoch to epoch.
        double duty = std::clamp(
            mix.duty * (0.75 + 0.5 * rng.uniform()), 0.01, 1.0);
        double stress = corner.stress * mix.stress * duty;
        out.age_end += cfg.years_per_epoch * stress;

        if (!out.fault &&
            rng.chance(onset_hazard(cfg.base_hazard, stress,
                                    out.age_end))) {
            out.fault = true;
            out.onset_epoch = e;
            slots_at_onset = out.slots;
            if (out.adversarial && mix.target_pair >= 0 &&
                constants_per_pair) {
                // The wearout attack concentrates stress on one path
                // class: onset always lands on the targeted pair.
                size_t pair =
                    size_t(mix.target_pair) % matrix.num_pairs;
                out.fault_index =
                    uint32_t(pair * constants_per_pair +
                             rng.below(constants_per_pair));
            } else {
                out.fault_index = uint32_t(rng.below(
                    std::max<uint64_t>(1, matrix.faults.size())));
            }
            fc = &matrix.faults[out.fault_index];
            out.fault_corrupts = fc->corrupts;
            out.fault_detectable = fc->detecting_tests > 0;
        }

        // Pre-draw this epoch's corruption attempt and its position in
        // the epoch; it is resolved against the detection position
        // after the scheduler runs.
        bool corrupt_attempt = false;
        double corrupt_pos = 0.0;
        if (out.fault && out.fault_corrupts &&
            rng.chance(mix.corruption_rate)) {
            corrupt_attempt = true;
            corrupt_pos = rng.uniform();
        }

        double detect_pos = 2.0; // past end of epoch = no detection
        for (uint64_t s = 0; s < cfg.slots_per_epoch; ++s) {
            std::optional<size_t> t = sched.next();
            if (t)
                out.test_cycles += matrix.test_cycles[*t];
            if (out.fault && !out.detected && t &&
                fc->per_test[*t] != runtime::Detection::None) {
                out.detected = true;
                out.kind = fc->per_test[*t];
                out.detect_epoch = e;
                out.slots_to_detect = sched.slots() - slots_at_onset;
                detect_pos =
                    double(s + 1) / double(cfg.slots_per_epoch);
                break; // the device is pulled for repair
            }
        }
        out.slots = sched.slots();
        out.tests_dispatched = sched.dispatched();
        out.app_cycles += cfg.epoch_cycles;

        if (corrupt_attempt) {
            if (out.detected && detect_pos <= corrupt_pos) {
                // The detecting dispatch pulled the device before the
                // application reached the broken path.
                ++out.prevented_corruptions;
            } else {
                if (out.corruptions == 0)
                    out.first_corruption_epoch = e;
                ++out.corruptions;
            }
        }
        if (out.detected)
            break;
    }
    return out;
}

Expected<FleetReport>
run_fleet(const FleetConfig &raw, const FaultMatrix &matrix)
{
    auto validated = validate_config(raw);
    if (!validated)
        return validated.error();
    const FleetConfig cfg = std::move(*validated);

    if (matrix.faults.empty() || matrix.num_tests == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "fleet run needs a non-empty fault matrix");
    if (matrix.test_cycles.size() != matrix.num_tests)
        return make_error(ErrorCode::InvalidArgument,
                          "fault matrix test_cycles/num_tests mismatch");
    for (const FaultClass &f : matrix.faults)
        if (f.per_test.size() != matrix.num_tests)
            return make_error(
                ErrorCode::InvalidArgument,
                "fault matrix per_test width mismatch");

    VEGA_SPAN("fleet.run");
    auto t0 = std::chrono::steady_clock::now();

    std::vector<DeviceOutcome> outcomes(cfg.num_devices);
    campaign::ThreadPool pool(cfg.threads);
    // Chunked fan-out: per-device work is microseconds, so batching
    // keeps the submit/steal machinery off the critical path.
    constexpr uint64_t kChunk = 2048;
    for (uint64_t lo = 0; lo < cfg.num_devices; lo += kChunk) {
        uint64_t hi = std::min(cfg.num_devices, lo + kChunk);
        pool.submit([&, lo, hi] {
            for (uint64_t id = lo; id < hi; ++id)
                outcomes[id] = simulate_device(cfg, matrix, id);
        });
    }
    pool.wait_idle();

    FleetReport report = aggregate_fleet(cfg, matrix, outcomes);

    auto t1 = std::chrono::steady_clock::now();
    report.timing.wall_seconds =
        std::chrono::duration<double>(t1 - t0).count();
    report.timing.threads = pool.size();
    report.timing.steals = pool.steals();
    if (report.timing.wall_seconds > 0)
        report.timing.device_epochs_per_sec =
            double(report.device_epochs) / report.timing.wall_seconds;

    static obs::Counter &devices = obs::counter("fleet.devices");
    static obs::Counter &epochs = obs::counter("fleet.device_epochs");
    static obs::Counter &detections =
        obs::counter("fleet.detections");
    devices.add(cfg.num_devices);
    epochs.add(report.device_epochs);
    detections.add(report.detected_devices);
    return report;
}

} // namespace vega::fleet
