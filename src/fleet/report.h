/**
 * @file
 * Structured results of a mission-mode fleet run.
 *
 * The report aggregates per-device outcomes into fleet-wide
 * distributions: detection-latency percentiles (slots and epochs,
 * via the obs::Histogram quantile helper), a realized-overhead
 * histogram checked against the configured budget, miss rates grouped
 * by corner / workload mix / initial-age band, and the adversarial
 * wearout-attack section with its per-device
 * detection-before-corruption outcomes.
 *
 * Everything except the `timing` object is a pure function of
 * (config, fault matrix), so to_json(false) is byte-identical across
 * runs and thread counts — BENCH_fleet.json is written exactly that
 * way and diffed in tests.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fleet/config.h"
#include "fleet/device.h"
#include "fleet/fault_matrix.h"

namespace vega::fleet {

/** Shared per-group aggregate (corner / mix / age band). */
struct GroupStats
{
    std::string name;
    uint64_t devices = 0;
    uint64_t faulty = 0;   ///< fault onset during the mission
    uint64_t detected = 0;
    uint64_t missed = 0;   ///< >= 1 silent corruption before detection
    uint64_t silent_corruptions = 0; ///< events, not devices

    double detection_rate() const
    {
        return faulty ? double(detected) / double(faulty) : 0.0;
    }
    double miss_rate() const
    {
        return faulty ? double(missed) / double(faulty) : 0.0;
    }
};

/** One adversarial device's mission outcome (report per-device rows). */
struct AdversarialOutcome
{
    uint64_t id = 0;
    uint32_t onset_epoch = 0;
    size_t pair_index = 0;
    bool detected = false;
    runtime::Detection kind = runtime::Detection::None;
    uint32_t detect_epoch = 0;
    uint64_t slots_to_detect = 0;
    uint32_t corruptions = 0;
    uint32_t prevented_corruptions = 0;
    /** "detected-before-corruption" | "silently-corrupted" | "latent" */
    const char *outcome = "latent";
};

/** A rendered histogram: bucket bounds, counts, and percentiles. */
struct Distribution
{
    std::vector<double> bounds;
    std::vector<uint64_t> buckets; ///< bounds.size() + 1 (overflow)
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0, p95 = 0.0, p99 = 0.0;

    double mean() const { return count ? sum / double(count) : 0.0; }
};

/** Wall-clock measurements — excluded from deterministic JSON. */
struct FleetTiming
{
    double wall_seconds = 0.0;
    double device_epochs_per_sec = 0.0;
    size_t threads = 1;
    uint64_t steals = 0;
};

struct FleetReport
{
    // Echo of the configuration and matrix that produced the report.
    std::string module;
    uint64_t seed = 0;
    uint64_t num_devices = 0;
    uint32_t epochs = 0;
    uint64_t slots_per_epoch = 0;
    double overhead_budget = 0.0;
    std::string policy;
    size_t suite_size = 0;
    size_t num_pairs = 0;
    size_t fault_classes = 0;
    size_t detectable_classes = 0;
    size_t corrupting_classes = 0;

    // Fleet totals.
    uint64_t device_epochs = 0;
    uint64_t slots = 0;
    uint64_t tests_dispatched = 0;
    uint64_t test_cycles = 0;
    uint64_t app_cycles = 0;
    uint64_t faulty_devices = 0;
    uint64_t detectable_faulty_devices = 0;
    uint64_t detected_devices = 0;
    uint64_t missed_devices = 0; ///< >= 1 silent corruption
    uint64_t silent_corruptions = 0;
    uint64_t prevented_corruptions = 0;
    uint64_t detected_before_any_corruption = 0;
    uint64_t detections_mismatch = 0;
    uint64_t detections_stall = 0;
    uint64_t detections_tag_anomaly = 0;
    uint64_t detections_wrong_address = 0;

    // Distributions.
    Distribution latency_slots;  ///< detected devices, slots from onset
    Distribution latency_epochs; ///< detected devices, epochs from onset
    Distribution overhead;       ///< all devices, realized overhead

    // Grouped miss rates.
    std::vector<GroupStats> per_corner;
    std::vector<GroupStats> per_mix;
    std::vector<GroupStats> per_age; ///< by initial-age band

    // Adversarial wearout-attack scenario.
    uint64_t adversarial_devices = 0;
    uint64_t adversarial_faulty = 0;
    uint64_t adversarial_detected = 0;
    uint64_t adversarial_detected_before_corruption = 0;
    uint64_t adversarial_silently_corrupted = 0;
    /** Faulty adversarial devices, by id, capped by the config (the
     *  report carries reported vs total so truncation is explicit). */
    std::vector<AdversarialOutcome> adversarial_outcomes;
    uint64_t adversarial_outcomes_total = 0;

    FleetTiming timing;

    double detection_rate() const
    {
        return detectable_faulty_devices
                   ? double(detected_devices) /
                         double(detectable_faulty_devices)
                   : 0.0;
    }
    double mean_overhead() const { return overhead.mean(); }

    /** Deterministic unless @p include_timing adds the wall clock. */
    std::string to_json(bool include_timing = true) const;
};

/**
 * Fold per-device outcomes (indexed by id) into a report. Serial and
 * order-stable: called once after the parallel device pass has joined.
 */
FleetReport aggregate_fleet(const FleetConfig &cfg,
                            const FaultMatrix &matrix,
                            const std::vector<DeviceOutcome> &outcomes);

} // namespace vega::fleet
