#include "fleet/report.h"

#include <algorithm>
#include <cstdio>

#include "obs/metrics.h"

namespace vega::fleet {

namespace {

void
append_double(std::string &out, double v)
{
    char buf[40];
    if (v >= 0 && v < 1e15 && v == double(uint64_t(v)))
        std::snprintf(buf, sizeof buf, "%llu",
                      (unsigned long long)(uint64_t(v)));
    else
        std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void
append_u64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

void
kv(std::string &out, const char *key, uint64_t v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":";
    append_u64(out, v);
    if (comma)
        out += ',';
}

void
kv(std::string &out, const char *key, double v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":";
    append_double(out, v);
    if (comma)
        out += ',';
}

void
kv(std::string &out, const char *key, const char *v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":\"";
    out += v;
    out += '"';
    if (comma)
        out += ',';
}

void
append_distribution(std::string &out, const Distribution &d)
{
    out += '{';
    kv(out, "count", d.count);
    kv(out, "sum", d.sum);
    kv(out, "mean", d.mean());
    kv(out, "p50", d.p50);
    kv(out, "p95", d.p95);
    kv(out, "p99", d.p99);
    out += "\"bounds\":[";
    for (size_t i = 0; i < d.bounds.size(); ++i) {
        if (i)
            out += ',';
        append_double(out, d.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < d.buckets.size(); ++i) {
        if (i)
            out += ',';
        append_u64(out, d.buckets[i]);
    }
    out += "]}";
}

void
append_groups(std::string &out, const char *key,
              const std::vector<GroupStats> &groups, bool comma)
{
    out += '"';
    out += key;
    out += "\":[";
    for (size_t i = 0; i < groups.size(); ++i) {
        const GroupStats &g = groups[i];
        if (i)
            out += ',';
        out += '{';
        kv(out, "name", g.name.c_str());
        kv(out, "devices", g.devices);
        kv(out, "faulty", g.faulty);
        kv(out, "detected", g.detected);
        kv(out, "missed", g.missed);
        kv(out, "silent_corruptions", g.silent_corruptions);
        kv(out, "detection_rate", g.detection_rate());
        kv(out, "miss_rate", g.miss_rate(), false);
        out += '}';
    }
    out += ']';
    if (comma)
        out += ',';
}

/** Freeze a live accumulation histogram into report form. */
Distribution
render(const obs::Histogram &h)
{
    Distribution d;
    d.bounds = h.bounds();
    d.buckets.resize(d.bounds.size() + 1);
    for (size_t i = 0; i < d.buckets.size(); ++i)
        d.buckets[i] = h.bucket_count(i);
    d.count = h.count();
    d.sum = h.sum();
    d.p50 = h.p50();
    d.p95 = h.p95();
    d.p99 = h.p99();
    return d;
}

std::vector<double>
slot_bounds(uint64_t max_slots)
{
    std::vector<double> b;
    for (double edge = 1; edge < double(max_slots); edge *= 2)
        b.push_back(edge);
    b.push_back(double(max_slots));
    return b;
}

std::vector<double>
epoch_bounds(uint32_t epochs)
{
    std::vector<double> b;
    for (uint32_t e = 0; e < epochs; ++e)
        b.push_back(double(e));
    return b;
}

/** Overhead buckets as fractions of the configured budget. */
std::vector<double>
overhead_bounds(double budget)
{
    static const double kFractions[] = {0.1,  0.25, 0.5, 0.75,
                                        0.9,  1.0,  1.1, 1.5,
                                        2.0};
    std::vector<double> b;
    for (double f : kFractions)
        b.push_back(budget * f);
    return b;
}

const char *
age_band_name(size_t band)
{
    static const char *kNames[] = {"age_q1_youngest", "age_q2",
                                   "age_q3", "age_q4_oldest"};
    return kNames[band < 4 ? band : 3];
}

} // namespace

std::string
FleetReport::to_json(bool include_timing) const
{
    std::string out;
    out.reserve(8192 + adversarial_outcomes.size() * 160);
    out += "{\"fleet\":{";
    kv(out, "module", module.c_str());
    kv(out, "seed", seed);
    kv(out, "num_devices", num_devices);
    kv(out, "epochs", uint64_t(epochs));
    kv(out, "slots_per_epoch", slots_per_epoch);
    kv(out, "overhead_budget", overhead_budget);
    kv(out, "policy", policy.c_str());
    kv(out, "suite_size", uint64_t(suite_size));
    kv(out, "num_pairs", uint64_t(num_pairs));
    kv(out, "fault_classes", uint64_t(fault_classes));
    kv(out, "detectable_classes", uint64_t(detectable_classes));
    kv(out, "corrupting_classes", uint64_t(corrupting_classes), false);
    out += "},\"totals\":{";
    kv(out, "device_epochs", device_epochs);
    kv(out, "slots", slots);
    kv(out, "tests_dispatched", tests_dispatched);
    kv(out, "test_cycles", test_cycles);
    kv(out, "app_cycles", app_cycles);
    kv(out, "faulty_devices", faulty_devices);
    kv(out, "detectable_faulty_devices", detectable_faulty_devices);
    kv(out, "detected_devices", detected_devices);
    kv(out, "missed_devices", missed_devices);
    kv(out, "silent_corruptions", silent_corruptions);
    kv(out, "prevented_corruptions", prevented_corruptions);
    kv(out, "detected_before_any_corruption",
       detected_before_any_corruption);
    kv(out, "detection_rate", detection_rate());
    kv(out, "mean_overhead", mean_overhead());
    out += "\"detections\":{";
    kv(out, "mismatch", detections_mismatch);
    kv(out, "stall", detections_stall);
    kv(out, "tag_anomaly", detections_tag_anomaly);
    kv(out, "wrong_address", detections_wrong_address, false);
    out += "}},\"latency_slots\":";
    append_distribution(out, latency_slots);
    out += ",\"latency_epochs\":";
    append_distribution(out, latency_epochs);
    out += ",\"overhead\":";
    append_distribution(out, overhead);
    out += ',';
    append_groups(out, "per_corner", per_corner, true);
    append_groups(out, "per_mix", per_mix, true);
    append_groups(out, "per_age", per_age, true);
    out += "\"adversarial\":{";
    kv(out, "devices", adversarial_devices);
    kv(out, "faulty", adversarial_faulty);
    kv(out, "detected", adversarial_detected);
    kv(out, "detected_before_corruption",
       adversarial_detected_before_corruption);
    kv(out, "silently_corrupted", adversarial_silently_corrupted);
    kv(out, "outcomes_total", adversarial_outcomes_total);
    kv(out, "outcomes_reported", uint64_t(adversarial_outcomes.size()));
    out += "\"outcomes\":[";
    for (size_t i = 0; i < adversarial_outcomes.size(); ++i) {
        const AdversarialOutcome &a = adversarial_outcomes[i];
        if (i)
            out += ',';
        out += '{';
        kv(out, "id", a.id);
        kv(out, "onset_epoch", uint64_t(a.onset_epoch));
        kv(out, "pair", uint64_t(a.pair_index));
        kv(out, "detected", uint64_t(a.detected));
        kv(out, "kind", runtime::detection_name(a.kind));
        kv(out, "detect_epoch", uint64_t(a.detect_epoch));
        kv(out, "slots_to_detect", a.slots_to_detect);
        kv(out, "corruptions", uint64_t(a.corruptions));
        kv(out, "prevented_corruptions",
           uint64_t(a.prevented_corruptions));
        kv(out, "outcome", a.outcome, false);
        out += '}';
    }
    out += "]}";
    if (include_timing) {
        out += ",\"timing\":{";
        kv(out, "wall_seconds", timing.wall_seconds);
        kv(out, "device_epochs_per_sec", timing.device_epochs_per_sec);
        kv(out, "threads", uint64_t(timing.threads));
        kv(out, "steals", timing.steals, false);
        out += '}';
    }
    out += '}';
    return out;
}

FleetReport
aggregate_fleet(const FleetConfig &cfg, const FaultMatrix &matrix,
                const std::vector<DeviceOutcome> &outcomes)
{
    FleetReport r;
    r.module = module_kind_name(matrix.module);
    r.seed = cfg.seed;
    r.num_devices = cfg.num_devices;
    r.epochs = cfg.epochs;
    r.slots_per_epoch = cfg.slots_per_epoch;
    r.overhead_budget = cfg.overhead_budget;
    r.policy = runtime::schedule_policy_name(cfg.policy);
    r.suite_size = matrix.num_tests;
    r.num_pairs = matrix.num_pairs;
    r.fault_classes = matrix.faults.size();
    r.detectable_classes = matrix.detectable_classes();
    r.corrupting_classes = matrix.corrupting_classes();

    uint64_t max_slots =
        std::max<uint64_t>(1, cfg.slots_per_epoch * cfg.epochs);
    obs::Histogram lat_slots(slot_bounds(max_slots));
    obs::Histogram lat_epochs(epoch_bounds(cfg.epochs));
    obs::Histogram overhead(overhead_bounds(cfg.overhead_budget));

    r.per_corner.resize(cfg.corners.size());
    for (size_t i = 0; i < cfg.corners.size(); ++i)
        r.per_corner[i].name = cfg.corners[i].name;
    r.per_mix.resize(cfg.mixes.size());
    for (size_t i = 0; i < cfg.mixes.size(); ++i)
        r.per_mix[i].name = cfg.mixes[i].name;
    // Initial age grouped into quartiles of the configured range.
    constexpr size_t kAgeBands = 4;
    double age_span =
        std::max(1e-9, cfg.max_age_years - cfg.min_age_years);
    r.per_age.resize(kAgeBands);
    for (size_t i = 0; i < kAgeBands; ++i)
        r.per_age[i].name = age_band_name(i);

    for (const DeviceOutcome &d : outcomes) {
        r.device_epochs += d.epochs_run;
        r.slots += d.slots;
        r.tests_dispatched += d.tests_dispatched;
        r.test_cycles += d.test_cycles;
        r.app_cycles += d.app_cycles;
        overhead.observe(d.realized_overhead());

        size_t band = size_t((d.age_start - cfg.min_age_years) /
                             age_span * double(kAgeBands));
        band = std::min(band, kAgeBands - 1);
        GroupStats *groups[3] = {nullptr, nullptr, &r.per_age[band]};
        if (d.corner < r.per_corner.size())
            groups[0] = &r.per_corner[d.corner];
        if (d.mix < r.per_mix.size())
            groups[1] = &r.per_mix[d.mix];
        for (GroupStats *g : groups)
            if (g)
                ++g->devices;

        if (d.adversarial)
            ++r.adversarial_devices;
        if (!d.fault)
            continue;

        ++r.faulty_devices;
        if (d.fault_detectable)
            ++r.detectable_faulty_devices;
        r.silent_corruptions += d.corruptions;
        r.prevented_corruptions += d.prevented_corruptions;
        if (d.corruptions)
            ++r.missed_devices;
        if (d.detected) {
            ++r.detected_devices;
            lat_slots.observe(double(d.slots_to_detect));
            lat_epochs.observe(double(d.detect_epoch - d.onset_epoch));
            if (d.corruptions == 0)
                ++r.detected_before_any_corruption;
            switch (d.kind) {
              case runtime::Detection::Mismatch:
                ++r.detections_mismatch;
                break;
              case runtime::Detection::Stall:
                ++r.detections_stall;
                break;
              case runtime::Detection::TagAnomaly:
                ++r.detections_tag_anomaly;
                break;
              case runtime::Detection::WrongAddress:
                ++r.detections_wrong_address;
                break;
              case runtime::Detection::None:
                break;
            }
        }
        for (GroupStats *g : groups) {
            if (!g)
                continue;
            ++g->faulty;
            g->silent_corruptions += d.corruptions;
            if (d.detected)
                ++g->detected;
            if (d.corruptions)
                ++g->missed;
        }

        if (d.adversarial) {
            ++r.adversarial_faulty;
            ++r.adversarial_outcomes_total;
            if (d.detected)
                ++r.adversarial_detected;
            if (d.detected_before_corruption())
                ++r.adversarial_detected_before_corruption;
            if (d.corruptions)
                ++r.adversarial_silently_corrupted;
            if (r.adversarial_outcomes.size() <
                cfg.adversarial_report_cap) {
                AdversarialOutcome a;
                a.id = d.id;
                a.onset_epoch = d.onset_epoch;
                a.pair_index =
                    matrix.faults.empty()
                        ? 0
                        : matrix.faults[d.fault_index].pair_index;
                a.detected = d.detected;
                a.kind = d.kind;
                a.detect_epoch = d.detect_epoch;
                a.slots_to_detect = d.slots_to_detect;
                a.corruptions = d.corruptions;
                a.prevented_corruptions = d.prevented_corruptions;
                a.outcome = d.corruptions         ? "silently-corrupted"
                            : d.detected          ? "detected-before-corruption"
                                                  : "latent";
                r.adversarial_outcomes.push_back(a);
            }
        }
    }

    r.latency_slots = render(lat_slots);
    r.latency_epochs = render(lat_epochs);
    r.overhead = render(overhead);
    return r;
}

} // namespace vega::fleet
