#include "fleet/config.h"

#include <cmath>

namespace vega::fleet {

const std::vector<CornerSpec> &
corner_catalog()
{
    static const std::vector<CornerSpec> corners = {
        {"typ", 25.0, 1.0, 6.0},
        {"hot", 85.0, 2.2, 2.5},
        {"cold", -10.0, 0.6, 1.0},
        {"burnin", 125.0, 4.0, 0.5},
    };
    return corners;
}

const std::vector<WorkloadMix> &
mix_catalog()
{
    static const std::vector<WorkloadMix> mixes = {
        {"balanced", 0.50, 1.0, 0.20, 5.0, false, -1},
        {"compute", 0.85, 1.4, 0.35, 3.0, false, -1},
        {"bursty", 0.25, 0.8, 0.10, 2.0, false, -1},
        // The targeted wearout attack: near-saturating duty with the
        // stress concentrated on one path class, and a workload that
        // reads the victim path almost every epoch.
        {"wearout_attack", 0.98, 6.0, 0.90, 0.0, true, 0},
    };
    return mixes;
}

Expected<CornerSpec>
find_corner(const std::string &name)
{
    for (const CornerSpec &c : corner_catalog())
        if (c.name == name)
            return c;
    std::string known;
    for (const CornerSpec &c : corner_catalog()) {
        if (!known.empty())
            known += ", ";
        known += c.name;
    }
    return make_error(ErrorCode::InvalidArgument,
                      "unknown corner '" + name + "' (known: " + known +
                          ")");
}

Expected<std::vector<CornerSpec>>
parse_corner_list(const std::string &csv)
{
    std::vector<CornerSpec> out;
    size_t start = 0;
    while (start <= csv.size()) {
        size_t comma = csv.find(',', start);
        if (comma == std::string::npos)
            comma = csv.size();
        std::string name = csv.substr(start, comma - start);
        if (name.empty())
            return make_error(ErrorCode::InvalidArgument,
                              "empty corner name in list '" + csv + "'");
        Expected<CornerSpec> c = find_corner(name);
        if (!c)
            return c.error();
        out.push_back(std::move(*c));
        start = comma + 1;
        if (comma == csv.size())
            break;
    }
    if (out.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "corner list is empty");
    return out;
}

namespace {

bool
bad_fraction(double v)
{
    return std::isnan(v) || v < 0.0 || v > 1.0;
}

bool
bad_positive(double v)
{
    return std::isnan(v) || v <= 0.0;
}

} // namespace

Expected<FleetConfig>
validate_config(FleetConfig cfg)
{
    if (cfg.corners.empty())
        cfg.corners = corner_catalog();
    if (cfg.mixes.empty())
        cfg.mixes = mix_catalog();

    if (cfg.num_devices == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "fleet needs at least one device");
    if (cfg.num_devices > (uint64_t(1) << 32))
        return make_error(ErrorCode::InvalidArgument,
                          "num_devices exceeds the 2^32 population cap");
    if (cfg.epochs == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "fleet needs at least one epoch");
    if (cfg.slots_per_epoch == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "slots_per_epoch must be positive");
    if (cfg.epoch_cycles == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "epoch_cycles must be positive");
    if (bad_positive(cfg.years_per_epoch))
        return make_error(ErrorCode::InvalidArgument,
                          "years_per_epoch must be positive");
    if (std::isnan(cfg.min_age_years) || cfg.min_age_years < 0.0)
        return make_error(ErrorCode::InvalidArgument,
                          "min_age_years must be >= 0");
    if (std::isnan(cfg.max_age_years) ||
        cfg.max_age_years < cfg.min_age_years)
        return make_error(ErrorCode::InvalidArgument,
                          "max_age_years must be >= min_age_years");
    if (bad_fraction(cfg.overhead_budget) || cfg.overhead_budget == 0.0)
        return make_error(ErrorCode::InvalidArgument,
                          "overhead_budget must be in (0, 1]");
    if (bad_fraction(cfg.base_hazard))
        return make_error(ErrorCode::InvalidArgument,
                          "base_hazard must be in [0, 1]");
    if (bad_fraction(cfg.adversarial_fraction))
        return make_error(ErrorCode::InvalidArgument,
                          "adversarial_fraction must be in [0, 1]");

    double corner_weight = 0.0;
    for (const CornerSpec &c : cfg.corners) {
        if (c.name.empty())
            return make_error(ErrorCode::InvalidArgument,
                              "corner with empty name");
        if (bad_positive(c.stress))
            return make_error(ErrorCode::InvalidArgument,
                              "corner '" + c.name +
                                  "': stress must be positive");
        if (std::isnan(c.weight) || c.weight < 0.0)
            return make_error(ErrorCode::InvalidArgument,
                              "corner '" + c.name +
                                  "': weight must be >= 0");
        corner_weight += c.weight;
    }
    if (corner_weight <= 0.0)
        return make_error(ErrorCode::InvalidArgument,
                          "corner weights sum to zero");

    bool has_adversarial = false;
    double mix_weight = 0.0;
    for (const WorkloadMix &m : cfg.mixes) {
        if (m.name.empty())
            return make_error(ErrorCode::InvalidArgument,
                              "workload mix with empty name");
        if (bad_positive(m.duty) || m.duty > 1.0)
            return make_error(ErrorCode::InvalidArgument,
                              "mix '" + m.name +
                                  "': duty must be in (0, 1]");
        if (bad_positive(m.stress))
            return make_error(ErrorCode::InvalidArgument,
                              "mix '" + m.name +
                                  "': stress must be positive");
        if (bad_fraction(m.corruption_rate))
            return make_error(ErrorCode::InvalidArgument,
                              "mix '" + m.name +
                                  "': corruption_rate must be in [0, 1]");
        if (std::isnan(m.weight) || m.weight < 0.0)
            return make_error(ErrorCode::InvalidArgument,
                              "mix '" + m.name +
                                  "': weight must be >= 0");
        if (m.adversarial) {
            has_adversarial = true;
            if (cfg.adversarial_fraction > 0.0 && m.target_pair < 0)
                return make_error(ErrorCode::InvalidArgument,
                                  "adversarial mix '" + m.name +
                                      "' needs a target_pair >= 0");
        } else {
            mix_weight += m.weight;
        }
    }
    if (mix_weight <= 0.0)
        return make_error(ErrorCode::InvalidArgument,
                          "non-adversarial mix weights sum to zero");
    if (cfg.adversarial_fraction > 0.0 && !has_adversarial)
        return make_error(ErrorCode::InvalidArgument,
                          "adversarial_fraction > 0 but no adversarial "
                          "mix is configured");
    return cfg;
}

} // namespace vega::fleet
