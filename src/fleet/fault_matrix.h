/**
 * @file
 * Fleet-shared fault characterization: the detectability matrix.
 *
 * A fleet run cannot afford a gate-level netlist simulation per
 * device-epoch (millions of them), and does not need one: every device
 * instance injects a fault drawn from the same small set of lifted
 * failure models and screens it with the same generated suite. The
 * matrix is that product computed once — for each (endpoint pair ×
 * fault constant) class, each suite test's Detection outcome on the
 * failing netlist, plus whether the representative workload's output
 * corrupts — and shared read-only by all devices.
 *
 * Each failing netlist is compiled to one EvalTape shared across its
 * per-test engines and its workload probe, so characterization cost is
 * one netlist lowering + (tests + 1) gate-level executions per fault
 * class, regardless of fleet size.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "common/error.h"
#include "lift/failure_model.h"
#include "rtl/module.h"
#include "runtime/test_case.h"
#include "sta/sta.h"

namespace vega::fleet {

/** One lifted fault class and what the suite sees of it. */
struct FaultClass
{
    size_t pair_index = 0;
    lift::FaultConstant constant = lift::FaultConstant::Zero;
    /** The representative workload's checksum deviates (SDC-capable). */
    bool corrupts = false;
    /** Suite tests that flag this fault. */
    uint64_t detecting_tests = 0;
    /** Per-test outcome on the failing netlist (suite order). */
    std::vector<runtime::Detection> per_test;
};

struct FaultMatrix
{
    ModuleKind module = ModuleKind::Alu32;
    size_t num_pairs = 0;
    size_t num_tests = 0;
    /** pair-major: faults[pair * num_constants + constant_index]. */
    std::vector<FaultClass> faults;
    /** Passing-execution CPU cycles per suite test (overhead cost). */
    std::vector<uint64_t> test_cycles;
    uint64_t suite_cycles = 0;

    double mean_test_cycles() const
    {
        return num_tests ? double(suite_cycles) / double(num_tests)
                         : 0.0;
    }
    /** Fault classes at least one test flags. */
    size_t detectable_classes() const;
    /** Fault classes whose workload corrupts (the SDC-capable set). */
    size_t corrupting_classes() const;
};

/**
 * Characterize every (pair × constant) fault class of @p module against
 * @p suite, fanning out over @p threads workers. Deterministic: results
 * are keyed by fault index and every engine seed derives from @p seed.
 * Empty pairs/suite/constants come back as InvalidArgument; a fault
 * whose netlist construction throws poisons only that class (its
 * per_test outcomes are all None and it is marked non-corrupting).
 */
Expected<FaultMatrix>
build_fault_matrix(const HwModule &module,
                   const std::vector<sta::EndpointPair> &pairs,
                   const std::vector<runtime::TestCase> &suite,
                   const std::vector<lift::FaultConstant> &constants,
                   size_t threads, uint64_t seed);

} // namespace vega::fleet
