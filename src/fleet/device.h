/**
 * @file
 * One simulated device instance of the mission-mode fleet.
 *
 * A device is a pure function of (fleet seed, device id): its corner,
 * workload mix, initial age, duty cycle, and every downstream random
 * draw derive from a private splitmix64 stream, the same discipline the
 * campaign engine uses for jobs. Fleet results are therefore keyed by
 * device id and bit-reproducible at any thread count.
 */
#pragma once

#include <cstdint>

#include "runtime/test_case.h"

namespace vega::fleet {

/** Everything a device run records (compact: fleets hold millions). */
struct DeviceOutcome
{
    uint64_t id = 0;
    uint32_t corner = 0; ///< index into FleetConfig::corners
    uint32_t mix = 0;    ///< index into FleetConfig::mixes
    bool adversarial = false;

    double age_start = 0.0; ///< years at mission start
    double age_end = 0.0;   ///< years when the run ended
    /** §3.4.2 dispatch probability after budget throttling. */
    double gate_probability = 1.0;
    /** Epochs actually simulated (detection pulls the device early). */
    uint32_t epochs_run = 0;

    // Fault lifecycle.
    bool fault = false; ///< a wearout fault onset during the mission
    uint32_t onset_epoch = 0;
    uint32_t fault_index = 0; ///< index into FaultMatrix::faults
    bool fault_corrupts = false;
    bool fault_detectable = false;

    // Detection.
    bool detected = false;
    runtime::Detection kind = runtime::Detection::None;
    uint32_t detect_epoch = 0;
    /** Scheduler slots from fault onset to the detecting dispatch. */
    uint64_t slots_to_detect = 0;

    // Scheduler / overhead accounting.
    uint64_t slots = 0;
    uint64_t tests_dispatched = 0;
    uint64_t test_cycles = 0;
    uint64_t app_cycles = 0;

    // Silent-data-corruption accounting.
    /** Epochs where the workload consumed the corrupted path while the
     *  fault was still undetected — the missed-SDC events. */
    uint32_t corruptions = 0;
    /** Corruption attempts in the detection epoch that landed *after*
     *  the detecting dispatch: the test pulled the device first. */
    uint32_t prevented_corruptions = 0;
    uint32_t first_corruption_epoch = 0;

    double realized_overhead() const
    {
        uint64_t total = app_cycles + test_cycles;
        return total ? double(test_cycles) / double(total) : 0.0;
    }
    /** The headline mission outcome for a faulty corrupting device. */
    bool detected_before_corruption() const
    {
        return detected && corruptions == 0;
    }
};

} // namespace vega::fleet
