#include "fleet/fault_matrix.h"

#include <memory>

#include "campaign/engine.h"
#include "campaign/job.h"
#include "campaign/thread_pool.h"
#include "mem/decoder_lift.h"
#include "mem/mem_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/eval_tape.h"

namespace vega::fleet {

size_t
FaultMatrix::detectable_classes() const
{
    size_t n = 0;
    for (const FaultClass &f : faults)
        if (f.detecting_tests)
            ++n;
    return n;
}

size_t
FaultMatrix::corrupting_classes() const
{
    size_t n = 0;
    for (const FaultClass &f : faults)
        if (f.corrupts)
            ++n;
    return n;
}

namespace {

lift::FailureModelSpec
fault_spec(const sta::EndpointPair &pair, lift::FaultConstant c)
{
    lift::FailureModelSpec fm;
    fm.launch = pair.launch;
    fm.capture = pair.capture;
    fm.is_setup = pair.is_setup;
    fm.constant = c;
    return fm;
}

/** Characterize one fault class; exceptions leave it undetectable. */
void
characterize(const HwModule &module,
             const std::vector<runtime::TestCase> &suite,
             const sta::EndpointPair &pair, lift::FaultConstant constant,
             uint64_t stream_root, FaultClass &out)
{
    VEGA_SPAN("fleet.characterize");
    out.per_test.assign(suite.size(), runtime::Detection::None);
    try {
        if (is_mem_module(module.kind)) {
            // Memory substrate: the aged decode gate lifts to a
            // wrong-address class; screening runs the suite through
            // the faulty-memory ISS instead of a netlist mount.
            CellId gate =
                mem::pick_decoder_gate(module.netlist, pair.worst);
            if (gate == kInvalidId)
                return; // pure datapath path: inert at fleet level
            mem::MemFaultClass cls =
                mem::classify_slow_gate(module.netlist, gate);
            if (cls.kind == mem::MemFaultKind::None)
                return;
            out.corrupts = mem::mem_workload_corrupts(cls);
            for (size_t t = 0; t < suite.size(); ++t) {
                mem::MarchEngine engine(cls);
                runtime::Detection d = engine.run(suite[t]);
                out.per_test[t] = d;
                if (d != runtime::Detection::None)
                    ++out.detecting_tests;
            }
            return;
        }
        lift::FailingNetlist failing =
            lift::build_failing_netlist(module.netlist,
                                        fault_spec(pair, constant));
        auto tape =
            std::make_shared<const EvalTape>(failing.netlist);
        uint64_t stream = stream_root;
        out.corrupts = campaign::workload_corrupts(
            module.kind, tape, failing.has_random_input,
            campaign::splitmix64(stream));
        for (size_t t = 0; t < suite.size(); ++t) {
            // Fresh engine per test: the matrix models each dispatch
            // as an independent screen (hardware state carried across
            // tests is a second-order effect at fleet granularity).
            campaign::NetlistEngine engine(
                module.kind, tape, failing.has_random_input,
                campaign::splitmix64(stream));
            runtime::Detection d = engine.run(suite[t]);
            out.per_test[t] = d;
            if (d != runtime::Detection::None)
                ++out.detecting_tests;
        }
    } catch (...) {
        // A malformed fault class is recorded as inert rather than
        // sinking the whole fleet characterization.
        out.corrupts = false;
        out.detecting_tests = 0;
        out.per_test.assign(suite.size(), runtime::Detection::None);
    }
}

} // namespace

Expected<FaultMatrix>
build_fault_matrix(const HwModule &module,
                   const std::vector<sta::EndpointPair> &pairs,
                   const std::vector<runtime::TestCase> &suite,
                   const std::vector<lift::FaultConstant> &constants,
                   size_t threads, uint64_t seed)
{
    if (pairs.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "fault matrix needs endpoint pairs");
    if (suite.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "fault matrix needs a non-empty suite");
    if (constants.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "fault matrix needs fault constants");

    VEGA_SPAN("fleet.matrix");
    FaultMatrix m;
    m.module = module.kind;
    m.num_pairs = pairs.size();
    m.num_tests = suite.size();
    m.faults.resize(pairs.size() * constants.size());
    m.test_cycles.reserve(suite.size());
    for (const runtime::TestCase &tc : suite) {
        m.test_cycles.push_back(tc.cycle_cost);
        m.suite_cycles += tc.cycle_cost;
    }

    campaign::ThreadPool pool(threads);
    for (size_t pi = 0; pi < pairs.size(); ++pi) {
        for (size_t ci = 0; ci < constants.size(); ++ci) {
            size_t idx = pi * constants.size() + ci;
            FaultClass &slot = m.faults[idx];
            slot.pair_index = pi;
            slot.constant = constants[ci];
            pool.submit([&, idx, pi, ci] {
                characterize(module, suite, pairs[pi], constants[ci],
                             campaign::job_stream(seed, uint64_t(idx)),
                             m.faults[idx]);
            });
        }
    }
    pool.wait_idle();

    static obs::Counter &classes = obs::counter("fleet.fault_classes");
    classes.add(m.faults.size());
    return m;
}

} // namespace vega::fleet
