/**
 * @file
 * Mission-mode fleet simulation configuration.
 *
 * A fleet run instantiates a population of simulated device instances —
 * heterogeneous in aging age, operating corner, duty cycle, and
 * workload mix — each running the generated test library through
 * vega::runtime::Scheduler under a per-device overhead budget (the
 * §3.4.2 probabilistic gating). Configuration problems surface as
 * vega::Expected errors, never as throws: a fleet service must reject
 * a bad request, not crash on it.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"
#include "rtl/module.h"
#include "runtime/scheduler.h"

namespace vega::fleet {

/** An operating corner a slice of the fleet runs at. */
struct CornerSpec
{
    std::string name;
    /** Junction temperature, informational (report grouping key). */
    double temp_c = 25.0;
    /** Aging-acceleration multiplier relative to the typical corner. */
    double stress = 1.0;
    /** Population sampling weight (relative, not normalized). */
    double weight = 1.0;
};

/** A workload profile a slice of the fleet runs. */
struct WorkloadMix
{
    std::string name;
    /** Mean fraction of an epoch the functional unit is active. */
    double duty = 0.5;
    /** Multiplier on the per-epoch fault hazard (path stress). */
    double stress = 1.0;
    /**
     * P(the application exercises the broken path during an epoch with
     * an active corrupting fault) — the silent-corruption rate.
     */
    double corruption_rate = 0.2;
    double weight = 1.0;
    /** Wearout-attack profile (arXiv 2508.16868): stress concentrated
     *  on one path class instead of spread across the unit. */
    bool adversarial = false;
    /** Adversarial only: endpoint-pair class the attack concentrates
     *  on (taken modulo the lifted working set; -1 = none). */
    int target_pair = -1;
};

struct FleetConfig
{
    uint64_t seed = 1;
    /** Device instances in the population. */
    uint64_t num_devices = 250000;
    /** Mission epochs simulated per device (early exit on detection). */
    uint32_t epochs = 8;
    /** Worker threads (0 = hardware concurrency). */
    size_t threads = 1;

    /** Mission time one epoch represents. */
    double years_per_epoch = 0.5;
    /** Initial device age is uniform in [min_age_years, max_age_years]. */
    double min_age_years = 0.0;
    double max_age_years = 8.0;

    /** Per-device overhead budget (fraction of application cycles). */
    double overhead_budget = 0.01;
    /** Modeled application cycles per epoch (overhead denominator). */
    uint64_t epoch_cycles = 50000000;
    /** Scheduler slots (test opportunities) per epoch. */
    uint64_t slots_per_epoch = 32;
    /** Per-epoch fault-hazard scale (see fleet_sim.h for the model). */
    double base_hazard = 0.004;
    /** Fraction of the population running the adversarial mix. */
    double adversarial_fraction = 0.02;
    /** Cap on per-device adversarial outcomes embedded in the report
     *  (the rest are summarized; the report states the truncation). */
    size_t adversarial_report_cap = 1024;

    /** Library schedule policy; Probabilistic enables budget gating. */
    runtime::SchedulePolicy policy =
        runtime::SchedulePolicy::Probabilistic;

    /** Operating corners (empty = corner_catalog() defaults). */
    std::vector<CornerSpec> corners;
    /** Workload mixes (empty = mix_catalog() defaults). */
    std::vector<WorkloadMix> mixes;
};

/** Built-in corner catalog: typ, hot, cold, burnin. */
const std::vector<CornerSpec> &corner_catalog();

/** Built-in mixes: balanced, compute, bursty + the wearout-attack. */
const std::vector<WorkloadMix> &mix_catalog();

/** Catalog lookup by name; InvalidArgument for unknown names. */
Expected<CornerSpec> find_corner(const std::string &name);

/**
 * Resolve a comma-separated corner list ("typ,hot,burnin") against the
 * catalog. Empty input, empty elements, and unknown names are
 * InvalidArgument.
 */
Expected<std::vector<CornerSpec>> parse_corner_list(const std::string &csv);

/**
 * Validate @p cfg and fill defaults (empty corners/mixes pick up the
 * catalogs). Returns the normalized config, or InvalidArgument naming
 * the offending field: zero devices/epochs/slots, probabilities or
 * fractions outside [0, 1], non-positive duty/stress/weights, an age
 * range with min > max, or a mix targeting a negative pair while
 * adversarial devices are requested.
 */
Expected<FleetConfig> validate_config(FleetConfig cfg);

} // namespace vega::fleet
