#include "sta/sta.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>

#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sta/clock_analysis.h"

namespace vega::sta {

AgedTiming
compute_aged_timing(const HwModule &module, const SpProfile &profile,
                    const aging::AgingTimingLibrary &lib, double years,
                    const IrDropParams &ir_drop)
{
    const Netlist &nl = module.netlist;
    AgedTiming t;
    t.years = years;
    size_t n = nl.num_cells();
    t.delay_max.resize(n);
    t.delay_min.resize(n);
    t.setup.assign(n, 0.0);
    t.hold.assign(n, 0.0);
    t.clk_to_q_max.assign(n, 0.0);
    t.clk_to_q_min.assign(n, 0.0);

    double scale = nl.timing_scale();
    for (CellId c = 0; c < n; ++c) {
        const Cell &cell = nl.cell(c);
        const CellTiming &fresh = cell_timing(cell.type);
        double sp = c < profile.num_cells() ? profile.sp(c) : 0.5;
        double fmax = lib.delay_factor_max(cell.type, sp, years);
        double fmin = lib.delay_factor_min(cell.type, sp, years);
        if (ir_drop.enable && c < profile.num_cells()) {
            // Heavy local switching droops the supply; the alpha-power
            // law turns that into a proportional max-arc slowdown.
            fmax *= 1.0 + ir_drop.sensitivity * profile.activity(c);
        }
        if (cell.type == CellType::Dff) {
            t.clk_to_q_max[c] = fresh.delay_max * scale * fmax;
            t.clk_to_q_min[c] = fresh.delay_min * scale * fmin;
            // Setup/hold windows widen slightly as the input stage ages.
            t.setup[c] = fresh.setup * scale * fmax;
            t.hold[c] = fresh.hold * scale;
            t.delay_max[c] = 0.0;
            t.delay_min[c] = 0.0;
        } else {
            t.delay_max[c] = fresh.delay_max * scale * fmax;
            t.delay_min[c] = fresh.delay_min * scale * fmin;
        }
    }

    ClockTiming ct = analyze_clock_tree(module.clock, lib, years);
    t.clk_arrival_max = std::move(ct.arrival_max);
    t.clk_arrival_min = std::move(ct.arrival_min);
    return t;
}

namespace {

/** Forward arrival times at every net under one launch-clock assumption. */
struct Arrivals
{
    std::vector<double> max_at; ///< latest data arrival per net, ps
    std::vector<double> min_at; ///< earliest data arrival per net, ps
};

Arrivals
propagate(const Netlist &nl, const AgedTiming &t)
{
    VEGA_SPAN("sta.arrival_propagation");
    Arrivals a;
    a.max_at.assign(nl.num_nets(), -1e30);
    a.min_at.assign(nl.num_nets(), 1e30);

    // Sources: primary inputs arrive at the edge (t = 0) for setup
    // purposes; they are exempt from hold analysis (their min arrival
    // stays at +inf), since module inputs are driven by upstream
    // registers whose clk-to-Q keeps them stable through the hold
    // window — the hold exposure inside the module is register-to-
    // register, which is what the paper's clock-skew analysis targets.
    for (NetId nid = 0; nid < nl.num_nets(); ++nid) {
        const Net &net = nl.net(nid);
        if (net.is_primary_input)
            a.max_at[nid] = 0.0;
    }
    for (CellId c : nl.dffs()) {
        const Cell &cell = nl.cell(c);
        double launch_max = t.clk_arrival_max[cell.clock_leaf];
        double launch_min = t.clk_arrival_min[cell.clock_leaf];
        a.max_at[cell.out] = launch_max + t.clk_to_q_max[c];
        a.min_at[cell.out] = launch_min + t.clk_to_q_min[c];
    }

    for (CellId c : nl.topo_order()) {
        const Cell &cell = nl.cell(c);
        if (cell.num_inputs() == 0) {
            // Constants never transition: no setup pressure, no hold risk.
            a.max_at[cell.out] = 0.0;
            continue;
        }
        double in_max = -1e30, in_min = 1e30;
        for (int i = 0; i < cell.num_inputs(); ++i) {
            in_max = std::max(in_max, a.max_at[cell.in[i]]);
            in_min = std::min(in_min, a.min_at[cell.in[i]]);
        }
        a.max_at[cell.out] = in_max + t.delay_max[c];
        a.min_at[cell.out] = in_min + t.delay_min[c];
    }
    return a;
}

/**
 * Enumerate violating paths ending at DFF @p capture by walking backwards
 * from its D net. For setup, a prefix continues only if the worst arrival
 * through it can still violate; this prunes exactly and counts each
 * distinct combinational path once.
 */
struct PathEnumerator
{
    const Netlist &nl;
    const AgedTiming &t;
    const Arrivals &arr;
    CellId capture;
    bool is_setup;
    double limit;   ///< data arrival beyond (setup) / below (hold) violates
    size_t cap;
    bool truncated = false;

    std::map<std::tuple<CellId, CellId, bool>, EndpointPair> *pairs;
    size_t *total;
    double *wns;

    std::vector<CellId> stack;

    void
    record(NetId start_net, double delay)
    {
        const Net &net = nl.net(start_net);
        CellId launch = net.is_primary_input ? kInvalidId : net.driver;
        double slack = is_setup ? (limit - delay) : (delay - limit);

        auto key = std::make_tuple(launch, capture, is_setup);
        auto &pair = (*pairs)[key];
        if (pair.path_count == 0) {
            pair.launch = launch;
            pair.capture = capture;
            pair.is_setup = is_setup;
            pair.worst.slack = 1e30;
        }
        ++pair.path_count;
        ++*total;
        *wns = std::min(*wns, slack);
        if (slack < pair.worst.slack) {
            TimingPath p;
            p.launch = launch;
            p.launch_net = start_net;
            p.capture = capture;
            p.cells.assign(stack.rbegin(), stack.rend());
            p.delay = delay;
            p.slack = slack;
            p.is_setup = is_setup;
            pair.worst = std::move(p);
        }
    }

    /** @p suffix is the accumulated delay from @p net to the D pin. */
    void
    walk(NetId net, double suffix)
    {
        if (*total >= cap) {
            truncated = true;
            return;
        }
        const Net &n = nl.net(net);
        bool at_source = n.is_primary_input ||
                         (n.driver != kInvalidId &&
                          nl.cell(n.driver).type == CellType::Dff);
        if (at_source) {
            double source_at =
                is_setup ? arr.max_at[net] : arr.min_at[net];
            double total_delay = source_at + suffix;
            bool violates = is_setup ? total_delay > limit
                                     : total_delay < limit;
            if (violates)
                record(net, total_delay);
            return;
        }
        if (n.driver == kInvalidId)
            return; // disconnected constant
        CellId c = n.driver;
        const Cell &cell = nl.cell(c);
        if (cell.num_inputs() == 0)
            return; // constants never launch paths
        double d = is_setup ? t.delay_max[c] : t.delay_min[c];
        stack.push_back(c);
        for (int i = 0; i < cell.num_inputs(); ++i) {
            NetId in = cell.in[i];
            double reach = is_setup ? arr.max_at[in] : arr.min_at[in];
            double best = reach + d + suffix;
            bool can_violate = is_setup ? best > limit : best < limit;
            if (can_violate)
                walk(in, suffix + d);
        }
        stack.pop_back();
    }
};

} // namespace

StaResult
run_sta(const HwModule &module, const AgedTiming &t,
        size_t max_paths_per_endpoint)
{
    VEGA_SPAN("sta.run");
    const Netlist &nl = module.netlist;
    Arrivals arr = propagate(nl, t);

    StaResult result;
    std::map<std::tuple<CellId, CellId, bool>, EndpointPair> pairs;
    double period = nl.clock_period_ps();

    // Small epsilon so exact-equality boundaries don't flap.
    constexpr double kEps = 1e-9;

    VEGA_SPAN("sta.path_enumeration");
    for (CellId capture : nl.dffs()) {
        const Cell &cell = nl.cell(capture);
        NetId d = cell.in[0];
        double cap_min = t.clk_arrival_min[cell.clock_leaf];
        double cap_max = t.clk_arrival_max[cell.clock_leaf];

        // Setup: data must arrive before the *next* capture edge minus
        // setup; pessimistic capture uses the early clock arrival.
        double setup_limit = period + cap_min - t.setup[capture];
        double setup_slack = setup_limit - arr.max_at[d];
        result.wns_setup = std::min(result.wns_setup, setup_slack);
        if (setup_slack < -kEps) {
            size_t local = 0;
            PathEnumerator e{nl, t, arr, capture, true, setup_limit,
                             max_paths_per_endpoint, false, &pairs,
                             &local, &result.wns_setup, {}};
            e.walk(d, 0.0);
            result.num_setup_violations += local;
            result.truncated |= e.truncated;
        }

        // Hold: data launched by this edge must not overwrite the value
        // being captured; pessimistic capture uses the late clock arrival.
        double hold_limit = cap_max + t.hold[capture];
        double hold_slack = arr.min_at[d] - hold_limit;
        result.wns_hold = std::min(result.wns_hold, hold_slack);
        if (hold_slack < -kEps) {
            size_t local = 0;
            PathEnumerator e{nl, t, arr, capture, false, hold_limit,
                             max_paths_per_endpoint, false, &pairs,
                             &local, &result.wns_hold, {}};
            e.walk(d, 0.0);
            result.num_hold_violations += local;
            result.truncated |= e.truncated;
        }
    }

    result.pairs.reserve(pairs.size());
    for (auto &kv : pairs)
        result.pairs.push_back(std::move(kv.second));
    std::sort(result.pairs.begin(), result.pairs.end(),
              [](const EndpointPair &a, const EndpointPair &b) {
                  return a.worst.slack < b.worst.slack;
              });

    static obs::Counter &runs = obs::counter("sta.runs");
    static obs::Counter &paths = obs::counter("sta.paths_enumerated");
    runs.inc();
    paths.add(result.num_setup_violations + result.num_hold_violations);
    return result;
}

std::vector<EndpointSlack>
endpoint_slacks(const HwModule &module, const AgedTiming &t)
{
    const Netlist &nl = module.netlist;
    Arrivals arr = propagate(nl, t);
    double period = nl.clock_period_ps();
    std::vector<EndpointSlack> out;
    for (CellId capture : nl.dffs()) {
        const Cell &cell = nl.cell(capture);
        NetId d = cell.in[0];
        EndpointSlack s;
        s.capture = capture;
        s.setup_slack = period + t.clk_arrival_min[cell.clock_leaf] -
                        t.setup[capture] - arr.max_at[d];
        s.hold_slack = arr.min_at[d] -
                       (t.clk_arrival_max[cell.clock_leaf] +
                        t.hold[capture]);
        out.push_back(s);
    }
    return out;
}

double
critical_path_delay(const HwModule &module, const AgedTiming &t)
{
    const Netlist &nl = module.netlist;
    Arrivals arr = propagate(nl, t);
    double worst = 0.0;
    for (CellId capture : nl.dffs()) {
        NetId d = nl.cell(capture).in[0];
        worst = std::max(worst, arr.max_at[d] + t.setup[capture]);
    }
    for (NetId out : nl.primary_outputs())
        worst = std::max(worst, arr.max_at[out]);
    return worst;
}

void
calibrate_timing_scale(HwModule &module, const aging::AgingTimingLibrary &lib,
                       double utilization)
{
    VEGA_CHECK(utilization > 0.0 && utilization < 1.0, "utilization range");
    SpProfile neutral(module.netlist.num_cells());

    // Synthesis closes timing on *slack*, where launch/capture clock
    // insertion cancels; the worst setup slack is affine decreasing in
    // the cell scale, so two probes pin the line. Iterate in case the
    // worst path changes with the scale.
    auto wns_at = [&](double s) {
        module.netlist.set_timing_scale(s);
        AgedTiming fresh = compute_aged_timing(module, neutral, lib, 0.0);
        return run_sta(module, fresh, 1).wns_setup;
    };
    // Target: the fresh design just meets timing with a small margin.
    double target =
        module.netlist.clock_period_ps() * (1.0 - utilization);
    double scale = 1.0;
    for (int iter = 0; iter < 8; ++iter) {
        double w1 = wns_at(scale);
        if (std::abs(w1 - target) < 1e-9)
            break;
        double w2 = wns_at(scale * 1.25);
        double per_scale = (w1 - w2) / (0.25 * scale); // slope magnitude
        VEGA_CHECK(per_scale > 0.0, "empty module");
        // w(scale') = w1 - per_scale * (scale' - scale) = target
        scale = scale + (w1 - target) / per_scale;
        VEGA_CHECK(scale > 0.0, "period too small for this netlist");
    }
    module.netlist.set_timing_scale(scale);
}

} // namespace vega::sta
