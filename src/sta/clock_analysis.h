/**
 * @file
 * Aging analysis of the clock distribution network (§3.2.2).
 *
 * Clock buffers age like any other cell; because clock gating parks some
 * subtrees at logic 0, their buffers accumulate more NBTI stress and their
 * insertion delay grows faster. The resulting phase shift between launch
 * and capture clock pins is what turns short paths into hold violations.
 */
#pragma once

#include <vector>

#include "aging/timing_library.h"
#include "rtl/clock_tree.h"

namespace vega::sta {

/** Aged clock arrival time per clock-tree buffer. */
struct ClockTiming
{
    std::vector<double> arrival_max; ///< ps, late corner
    std::vector<double> arrival_min; ///< ps, early corner
};

/**
 * Accumulate aged insertion delay from the root to every buffer.
 *
 * Buffers age per the BUF entry of the aging library at their individual
 * SP (gated regions carry SP = duty/2 set by ClockTree::set_gated_region).
 */
ClockTiming analyze_clock_tree(const ClockTree &tree,
                               const aging::AgingTimingLibrary &lib,
                               double years);

/**
 * Worst aged skew (max over pairs of |arrival(a) − arrival(b)|), ps.
 * Reported by benches as an ablation metric.
 */
double worst_skew(const ClockTiming &timing);

} // namespace vega::sta
