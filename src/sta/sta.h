/**
 * @file
 * Aging-aware static timing analysis (§3.2.2).
 *
 * Consumes a hardware module, its SP profile, and the precomputed aging
 * timing library; produces the set of signal propagation paths that violate
 * setup or hold constraints after a given number of years of BTI aging —
 * the inputs to Error Lifting. Assumes the worst-case corner throughout,
 * like the paper: late launch clock for setup, early launch clock for hold,
 * derated min arcs, and pessimistic capture-clock arrivals.
 */
#pragma once

#include <limits>
#include <vector>

#include "aging/timing_library.h"
#include "rtl/module.h"
#include "sim/sp_profiler.h"

namespace vega::sta {

/** Aged timing annotations for one module at one point in its lifetime. */
struct AgedTiming
{
    double years = 0.0;
    /** Per-cell max/min propagation delays, ps (timing_scale applied). */
    std::vector<double> delay_max;
    std::vector<double> delay_min;
    /** Per-cell DFF constraints (zero for combinational cells). */
    std::vector<double> setup;
    std::vector<double> hold;
    std::vector<double> clk_to_q_max;
    std::vector<double> clk_to_q_min;
    /** Clock arrival at each clock-tree buffer, ps, after aging. */
    std::vector<double> clk_arrival_max;
    std::vector<double> clk_arrival_min;
};

/**
 * Dynamic IR-drop extension (§6.3): cells in heavily-switching regions
 * see a drooped local supply and slow down proportionally to their
 * observed activity. Off by default (the paper's baseline analysis).
 */
struct IrDropParams
{
    bool enable = false;
    /** Max-arc fractional slowdown at activity 1.0. */
    double sensitivity = 0.03;
};

/**
 * Compute aged timing for @p module after @p years, using @p profile for
 * per-cell SP (cells beyond the profile default to SP 0.5) and @p lib for
 * the degradation lookups. Pass years = 0 for fresh timing.
 */
AgedTiming compute_aged_timing(const HwModule &module,
                               const SpProfile &profile,
                               const aging::AgingTimingLibrary &lib,
                               double years,
                               const IrDropParams &ir_drop = {});

/** A timed register-to-register signal propagation path. */
struct TimingPath
{
    /** Launching DFF; kInvalidId when the path starts at a primary input. */
    CellId launch = kInvalidId;
    /** The net the path starts from (launch Q or the primary input). */
    NetId launch_net = kInvalidId;
    /** Capturing DFF. */
    CellId capture = kInvalidId;
    /** Combinational cells along the path, launch side first. */
    std::vector<CellId> cells;
    /** Data path delay, ps (includes clk-to-Q for DFF launches). */
    double delay = 0.0;
    /** Slack, ps; negative means violating. */
    double slack = 0.0;
    bool is_setup = true;
};

/** A deduplicated (launch, capture) endpoint pair (§5.2.1). */
struct EndpointPair
{
    CellId launch = kInvalidId;
    CellId capture = kInvalidId;
    bool is_setup = true;
    /** Number of violating paths sharing these endpoints. */
    size_t path_count = 0;
    /** Worst (most negative slack) representative path. */
    TimingPath worst;
};

struct StaResult
{
    /** Worst slack over all setup checks (ps, positive if clean). */
    double wns_setup = std::numeric_limits<double>::infinity();
    double wns_hold = std::numeric_limits<double>::infinity();
    /** Total violating path counts (Table 3). */
    size_t num_setup_violations = 0;
    size_t num_hold_violations = 0;
    /** Unique violating endpoint pairs, worst first. */
    std::vector<EndpointPair> pairs;
    /** True if the per-endpoint path enumeration hit its cap. */
    bool truncated = false;
};

/** Full aging-aware STA over @p module with timing @p timing. */
StaResult run_sta(const HwModule &module, const AgedTiming &timing,
                  size_t max_paths_per_endpoint = 200000);

/** Fresh critical path delay, ps (for calibration / reporting). */
double critical_path_delay(const HwModule &module, const AgedTiming &timing);

/** Per-capture-DFF setup and hold slack (diagnostics / ablations). */
struct EndpointSlack
{
    CellId capture = kInvalidId;
    double setup_slack = 0.0;
    double hold_slack = 0.0;
};
std::vector<EndpointSlack> endpoint_slacks(const HwModule &module,
                                           const AgedTiming &timing);

/**
 * Set the module's timing_scale so its fresh critical path consumes the
 * fraction @p utilization of the clock period (minus setup), emulating a
 * synthesis flow that optimizes the design just inside timing closure.
 */
void calibrate_timing_scale(HwModule &module,
                            const aging::AgingTimingLibrary &lib,
                            double utilization);

} // namespace vega::sta
