#include "sta/clock_analysis.h"

#include <algorithm>

namespace vega::sta {

ClockTiming
analyze_clock_tree(const ClockTree &tree, const aging::AgingTimingLibrary &lib,
                   double years)
{
    ClockTiming t;
    t.arrival_max.resize(tree.size());
    t.arrival_min.resize(tree.size());
    // Buffers are stored parent-before-child (construction order), so a
    // single forward pass accumulates root-to-node arrivals.
    //
    // A single (nominal, aged) arrival is kept per buffer rather than an
    // early/late split: splitting launch and capture into opposite
    // corners double-counts variation that real STA removes with
    // common-path-pessimism correction, and would flag every cross-leaf
    // path of a balanced fresh tree. The credible residual skew — the
    // one the paper attributes hold violations to — is the asymmetric
    // *aging* of gated vs free-running subtrees, which this nominal
    // analysis captures exactly.
    for (uint32_t id = 0; id < tree.size(); ++id) {
        const ClockBuffer &b = tree.buffer(id);
        double fmax = lib.delay_factor_max(CellType::Buf, b.sp, years);
        double aged = b.delay_max * fmax;
        if (b.parent == id) {
            t.arrival_max[id] = aged;
        } else {
            t.arrival_max[id] = t.arrival_max[b.parent] + aged;
        }
        t.arrival_min[id] = t.arrival_max[id];
    }
    return t;
}

double
worst_skew(const ClockTiming &timing)
{
    if (timing.arrival_max.empty())
        return 0.0;
    double lo = *std::min_element(timing.arrival_min.begin(),
                                  timing.arrival_min.end());
    double hi = *std::max_element(timing.arrival_max.begin(),
                                  timing.arrival_max.end());
    return hi - lo;
}

} // namespace vega::sta
