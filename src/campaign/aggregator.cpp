#include "campaign/aggregator.h"

#include <algorithm>
#include <cstdio>

#include "campaign/shard.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::campaign {

namespace {

void
append_json_string(std::string &out, const std::string &v)
{
    out += '"';
    for (char c : v) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void
append_u64(std::string &out, const char *key, uint64_t v,
           bool comma = true)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += '"';
    out += key;
    out += "\":";
    out += buf;
    if (comma)
        out += ',';
}

} // namespace

std::string
IntegrityManifest::to_json() const
{
    std::string out = "{\"integrity\":{";
    append_u64(out, "num_shards", num_shards);
    append_u64(out, "num_jobs", num_jobs);
    append_u64(out, "total_completed", total_completed);
    append_u64(out, "total_failed", total_failed);
    append_u64(out, "ok", ok ? 1 : 0);
    out += "\"shards\":[";
    for (size_t i = 0; i < shards.size(); ++i) {
        const ShardVerdict &s = shards[i];
        if (i)
            out += ',';
        out += '{';
        append_u64(out, "shard", s.shard_id);
        out += "\"path\":";
        append_json_string(out, s.path);
        out += ',';
        append_u64(out, "completed", s.completed);
        append_u64(out, "failed", s.failed);
        out += "\"crc\":\"" + crc32c_hex(s.crc) + "\",";
        append_u64(out, "verified", s.verified ? 1 : 0);
        out += "\"verdict\":";
        append_json_string(out, s.detail);
        out += '}';
    }
    out += "]}}";
    return out;
}

Expected<AggregateResult>
aggregate_shards(const std::vector<std::string> &journal_paths)
{
    VEGA_SPAN("campaign.aggregate");
    if (journal_paths.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "aggregate needs at least one shard journal");

    static obs::Counter &records_counter =
        obs::counter("campaign.aggregate_records");

    AggregateResult out;
    IntegrityManifest &manifest = out.manifest;

    // Pass 1: read + checksum-verify each shard journal. The reader
    // already enforces per-record CRCs, the rolling trailer, and the
    // presence of a trailer (an unfinalized shard must be resumed,
    // not merged).
    JournalReadOptions strict;
    strict.require_trailer = true;
    strict.allow_torn_tail = false;
    std::vector<JournalState> states;
    states.reserve(journal_paths.size());
    for (const std::string &path : journal_paths) {
        Expected<JournalState> st = read_journal(path, strict);
        if (!st)
            return st.error();
        ShardVerdict v;
        v.shard_id = st->header.shard_id;
        v.path = path;
        v.completed = st->completed.size();
        v.failed = st->failed.size();
        v.crc = st->rolling_crc;
        v.verified = true; // checksums verified; set false on any
                           // cross-shard check failure below
        manifest.shards.push_back(std::move(v));
        states.push_back(std::move(*st));
    }

    // Pass 2: the shard set itself. Same campaign fingerprint, ids
    // exactly {0..N-1}.
    const JournalHeader &first = states[0].header;
    uint64_t num_shards = first.num_shards;
    for (size_t i = 1; i < states.size(); ++i)
        if (!states[i].header.same_campaign(first))
            return make_error(
                ErrorCode::JournalMismatch,
                manifest.shards[i].path + ": shard journal '" +
                    states[i].header.to_string() +
                    "' is from a different campaign than " +
                    manifest.shards[0].path + " ('" + first.to_string() +
                    "')");
    std::vector<int> seen_shard(num_shards, -1);
    for (size_t i = 0; i < states.size(); ++i) {
        uint64_t k = states[i].header.shard_id;
        if (seen_shard[k] >= 0)
            return make_error(ErrorCode::JournalCorrupt,
                              "shard " + std::to_string(k) +
                                  " appears twice: " +
                                  manifest.shards[size_t(seen_shard[k])]
                                      .path +
                                  " and " + manifest.shards[i].path);
        seen_shard[k] = int(i);
    }
    for (uint64_t k = 0; k < num_shards; ++k)
        if (seen_shard[k] < 0)
            return make_error(ErrorCode::ShardIncomplete,
                              "shard " + std::to_string(k) + " of " +
                                  std::to_string(num_shards) +
                                  " has no journal");

    // Pass 3: the job-id space. Every id belongs to exactly one shard
    // by the partition contract; enforce ownership, uniqueness, and
    // full coverage so a duplicated or transplanted record can never
    // double-count and a dropped one can never pass unnoticed.
    uint64_t num_jobs = first.num_jobs;
    std::vector<int> owner(num_jobs, -1);
    std::vector<JobResult> results;
    results.reserve(num_jobs);
    std::vector<FailedJob> failed;
    auto ingest = [&](size_t si, uint64_t id,
                      const char *what) -> Expected<void> {
        const std::string &path = manifest.shards[si].path;
        uint64_t k = states[si].header.shard_id;
        manifest.shards[si].verified = false; // restored if all pass
        if (id >= num_jobs)
            return make_error(ErrorCode::JournalRecordCorrupt,
                              path + ": " + what + " record for job " +
                                  std::to_string(id) +
                                  " outside the campaign's " +
                                  std::to_string(num_jobs) + " jobs");
        ShardSpec spec{num_shards, k};
        if (!shard_owns(spec, id))
            return make_error(
                ErrorCode::JournalRecordCorrupt,
                path + ": job " + std::to_string(id) +
                    " recorded by shard " + std::to_string(k) +
                    " but owned by shard " +
                    std::to_string(id % num_shards) +
                    " — cross-shard overlap");
        if (owner[id] >= 0) {
            uint64_t prev = states[size_t(owner[id])].header.shard_id;
            return make_error(
                ErrorCode::JournalRecordCorrupt,
                path + ": duplicate record for job " +
                    std::to_string(id) + " (already recorded by shard " +
                    std::to_string(prev) + " in " +
                    manifest.shards[size_t(owner[id])].path + ")");
        }
        owner[id] = int(si);
        manifest.shards[si].verified = true;
        records_counter.inc();
        return {};
    };
    for (size_t si = 0; si < states.size(); ++si) {
        for (const JobResult &r : states[si].completed) {
            Expected<void> ok = ingest(si, r.id, "job");
            if (!ok)
                return ok.error();
            results.push_back(r);
        }
        for (const FailedJob &f : states[si].failed) {
            Expected<void> ok = ingest(si, f.id, "failed");
            if (!ok)
                return ok.error();
            failed.push_back(f);
        }
    }
    for (uint64_t id = 0; id < num_jobs; ++id)
        if (owner[id] < 0)
            return make_error(
                ErrorCode::ShardIncomplete,
                manifest.shards[size_t(seen_shard[id % num_shards])]
                        .path +
                    ": no record for job " + std::to_string(id) +
                    " (owned by shard " +
                    std::to_string(id % num_shards) + ")");

    // Merge. Results are keyed by job id, so shard order is
    // irrelevant — sort to the canonical order the single-process
    // engine emits.
    std::sort(results.begin(), results.end(),
              [](const JobResult &a, const JobResult &b) {
                  return a.id < b.id;
              });
    CampaignReport report =
        aggregate_report(results, size_t(first.num_pairs),
                         std::move(failed));
    report.module = first.module;
    report.seed = first.seed;
    report.max_slots = first.max_slots;
    report.probability = first.probability;
    report.suite_size = size_t(first.suite_size);
    report.num_pairs = size_t(first.num_pairs);
    out.report = std::move(report);

    manifest.num_shards = num_shards;
    manifest.num_jobs = num_jobs;
    manifest.total_completed = results.size();
    manifest.total_failed = out.report.failed;
    manifest.ok = true;
    std::sort(manifest.shards.begin(), manifest.shards.end(),
              [](const ShardVerdict &a, const ShardVerdict &b) {
                  return a.shard_id < b.shard_id;
              });
    return out;
}

Expected<AggregateResult>
aggregate_shard_dir(const std::string &dir)
{
    Expected<std::vector<std::string>> paths = list_shard_journals(dir);
    if (!paths)
        return paths.error();
    return aggregate_shards(*paths);
}

} // namespace vega::campaign
