/**
 * @file
 * Work-stealing thread pool for campaign fan-out.
 *
 * Each worker owns a deque: it pushes and pops work at the back (LIFO,
 * cache-friendly for nested submits) and victims are robbed from the
 * front (FIFO, steals the oldest — largest — subtrees). Tasks submitted
 * from outside the pool are sprayed round-robin across the queues;
 * tasks submitted from inside a worker land on that worker's own deque.
 *
 * The fast path is lock-light: submit touches only the target queue's
 * mutex (plus an empty critical section on the global mutex to
 * publish the wakeup), and a worker that finds work never takes the
 * global mutex at all — it is acquired only to go to sleep or to
 * signal the pending count hitting zero.
 *
 * The pool makes no ordering promises, so campaign determinism never
 * relies on it: jobs write results into slots keyed by job id.
 */
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace vega::campaign {

class ThreadPool
{
  public:
    /** Spawns @p num_threads workers (0 ⇒ hardware_concurrency). */
    explicit ThreadPool(size_t num_threads);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t size() const { return workers_.size(); }

    /** Enqueue @p task; it may start before submit returns. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait_idle();

    /** Tasks completed over the pool's lifetime. */
    uint64_t executed() const { return executed_.load(); }
    /** Tasks a worker took from another worker's deque. */
    uint64_t steals() const { return steals_.load(); }
    /** High-water mark of tasks waiting in queues. */
    uint64_t peak_queued() const { return peak_queued_.load(); }

    /**
     * Worker slot of the calling thread in the pool it belongs to, or
     * -1 when the caller is not a pool worker. Slots are dense [0, N),
     * so per-worker metrics can key on them.
     */
    static int current_worker();

  private:
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<std::function<void()>> tasks;
    };

    void worker_loop(size_t wid);
    /** Pop from own back, else steal from another front. */
    bool take_task(size_t wid, std::function<void()> &out);

    std::vector<std::unique_ptr<WorkerQueue>> queues_;
    std::vector<std::thread> workers_;

    std::mutex mu_; ///< guards sleeping workers and stop_
    std::condition_variable work_cv_;
    std::condition_variable idle_cv_;
    bool stop_ = false;

    std::atomic<uint64_t> pending_{0}; ///< submitted, not yet finished
    std::atomic<uint64_t> queued_{0};  ///< submitted, not yet taken
    std::atomic<uint64_t> executed_{0};
    std::atomic<uint64_t> steals_{0};
    std::atomic<uint64_t> peak_queued_{0};
    std::atomic<size_t> rr_{0};
};

} // namespace vega::campaign
