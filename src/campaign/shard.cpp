#include "campaign/shard.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <system_error>

namespace vega::campaign {

std::string
shard_journal_filename(uint64_t shard_id, uint64_t num_shards)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "shard-%llu-of-%llu.journal",
                  (unsigned long long)shard_id,
                  (unsigned long long)num_shards);
    return buf;
}

std::string
shard_journal_path(const std::string &dir, uint64_t shard_id,
                   uint64_t num_shards)
{
    std::string path = dir;
    if (!path.empty() && path.back() != '/')
        path += '/';
    return path + shard_journal_filename(shard_id, num_shards);
}

bool
parse_shard_journal_filename(const std::string &filename,
                             uint64_t &shard_id, uint64_t &num_shards)
{
    unsigned long long k = 0, n = 0;
    int consumed = 0;
    if (std::sscanf(filename.c_str(), "shard-%llu-of-%llu.journal%n", &k,
                    &n, &consumed) != 2 ||
        size_t(consumed) != filename.size())
        return false;
    // Reject non-canonical spellings ("shard-01-of-4.journal") so a
    // stray file can't alias a real shard.
    if (filename != shard_journal_filename(k, n))
        return false;
    shard_id = k;
    num_shards = n;
    return true;
}

Expected<std::vector<std::string>>
list_shard_journals(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec)
        return make_error(ErrorCode::IoError,
                          "cannot list " + dir + ": " + ec.message());

    struct Entry
    {
        uint64_t shard_id;
        std::string path;
    };
    std::vector<Entry> found;
    for (const fs::directory_entry &e : it) {
        uint64_t k = 0, n = 0;
        if (parse_shard_journal_filename(e.path().filename().string(), k,
                                         n))
            found.push_back({k, e.path().string()});
    }
    if (found.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "no shard journals "
                          "(shard-<K>-of-<N>.journal) in " +
                              dir);
    std::sort(found.begin(), found.end(),
              [](const Entry &a, const Entry &b) {
                  return a.shard_id < b.shard_id;
              });
    std::vector<std::string> paths;
    paths.reserve(found.size());
    for (Entry &e : found)
        paths.push_back(std::move(e.path));
    return paths;
}

} // namespace vega::campaign
