/**
 * @file
 * Deterministic shard partitioning of a campaign's job space.
 *
 * Fleet mode splits a campaign's jobs across N worker processes, each
 * with its own checksummed journal, merged afterwards by the
 * aggregator. The partition is a pure function of the job id — shard
 * K of N owns every job with id % N == K — and job specs are already
 * pure functions of (campaign seed, job id) via the splitmix64 stream
 * discipline (job.h). Two consequences the whole design leans on:
 *
 *  - The union of the N shard journals is exactly the record set of
 *    an unsharded run: the aggregated report is byte-identical to a
 *    single-process run of the same campaign.
 *  - Any shard can be killed and resumed independently; no shard's
 *    results depend on any other shard's progress.
 *
 * Shard journals live in one directory under a canonical name,
 * shard-<K>-of-<N>.journal, so the aggregator can discover a
 * campaign's shard set from the directory alone and detect missing
 * shards by construction.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.h"

namespace vega::campaign {

/** One shard's slice of the campaign job space. */
struct ShardSpec
{
    uint64_t num_shards = 1;
    uint64_t shard_id = 0;
};

/** True when @p job_id falls in @p shard's slice. */
inline bool
shard_owns(const ShardSpec &shard, uint64_t job_id)
{
    return shard.num_shards <= 1 ||
           job_id % shard.num_shards == shard.shard_id;
}

/** Jobs shard owns out of a campaign of @p num_jobs. */
inline uint64_t
shard_job_count(const ShardSpec &shard, uint64_t num_jobs)
{
    if (shard.num_shards <= 1)
        return num_jobs;
    uint64_t base = num_jobs / shard.num_shards;
    return base + (shard.shard_id < num_jobs % shard.num_shards ? 1 : 0);
}

/** Canonical journal filename, "shard-<K>-of-<N>.journal". */
std::string shard_journal_filename(uint64_t shard_id,
                                   uint64_t num_shards);

/** @p dir + "/" + the canonical filename. */
std::string shard_journal_path(const std::string &dir, uint64_t shard_id,
                               uint64_t num_shards);

/** Inverse of shard_journal_filename; false unless it matches. */
bool parse_shard_journal_filename(const std::string &filename,
                                  uint64_t &shard_id,
                                  uint64_t &num_shards);

/**
 * Discover the shard journals in @p dir (canonical names only),
 * sorted by shard id. Unreadable directory => IoError; no shard
 * journals at all => InvalidArgument. Completeness of the set is the
 * aggregator's job — this just lists what exists.
 */
Expected<std::vector<std::string>>
list_shard_journals(const std::string &dir);

} // namespace vega::campaign
