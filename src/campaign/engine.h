/**
 * @file
 * Gate-level execution target for campaign jobs.
 *
 * NetlistEngine mounts one (typically failing) netlist as the ISS's
 * functional unit and runs aging-library test blocks against it,
 * exactly like the Table 6/7 evaluation: hardware state persists
 * across test blocks, and stalls / wrong results / transaction-tag
 * anomalies surface as runtime::Detection outcomes.
 *
 * workload_corrupts() answers the other half of the SDC question: does
 * this fault silently corrupt a representative application's output?
 * A job whose fault corrupts the workload but whose suite run never
 * fires is an SDC *escape* — the number the campaign exists to drive
 * to zero.
 */
#pragma once

#include <cstdint>

#include "cpu/netlist_backend.h"
#include "runtime/aging_library.h"
#include "workloads/kernels.h"

namespace vega::campaign {

/**
 * Instruction budgets for campaign runs. A fault that corrupts loop
 * control flow can turn a terminating kernel into an infinite one, and
 * the ISS default watchdog (100M instructions) is far too generous
 * when every instruction is a gate-level netlist simulation. The
 * representative kernels retire at most ~81k instructions (ud; crc32
 * and minver are well under that), so the workload bound only ever
 * trips on runaway faulty executions — and every extra watchdog
 * instruction is pure wall-clock on runs already known corrupt. The
 * wave and scalar paths share these so characterization verdicts stay
 * identical between them.
 */
constexpr uint64_t kWorkloadWatchdog = 120000;
constexpr uint64_t kTestWatchdog = 1000000;

class NetlistEngine : public runtime::Engine
{
  public:
    NetlistEngine(ModuleKind kind, const Netlist &netlist,
                  bool has_random_input = false, uint64_t seed = 1);

    /** Share a pre-compiled tape of the (failing) netlist — the fleet
     *  simulator's characterization pass spins up one engine per
     *  (fault, test) pair and must not re-lower the netlist each time. */
    NetlistEngine(ModuleKind kind, std::shared_ptr<const EvalTape> tape,
                  bool has_random_input = false, uint64_t seed = 1);

    runtime::Detection run(const runtime::TestCase &tc) override;

    /** Gate-level cycles simulated so far. */
    uint64_t cycles() const { return backend_.cycles(); }

  private:
    ModuleKind kind_;
    cpu::NetlistBackend backend_;
    uint64_t tags_seen_ = 0;
};

/**
 * The kernel whose checksum stands in for "application data" when a
 * fault in @p kind's unit is probed: minver (FP) for the FPU, crc32
 * for the ALU, ud (divide/remainder chains) for the MDU.
 */
const workloads::Kernel &representative_kernel(ModuleKind kind);

/**
 * Run the representative kernel with @p netlist mounted as the unit.
 * True when the run stalls or the stored checksum deviates — i.e. the
 * fault reaches this workload's data.
 */
bool workload_corrupts(ModuleKind kind, const Netlist &netlist,
                       bool has_random_input = false, uint64_t seed = 1);

/** Tape-sharing variant of workload_corrupts. */
bool workload_corrupts(ModuleKind kind,
                       std::shared_ptr<const EvalTape> tape,
                       bool has_random_input = false, uint64_t seed = 1);

} // namespace vega::campaign
