#include "campaign/campaign.h"

#include <algorithm>
#include <optional>

#include "campaign/engine.h"
#include "campaign/thread_pool.h"
#include "common/logging.h"

namespace vega::campaign {

namespace {

lift::FailureModelSpec
fault_spec(const sta::EndpointPair &pair, lift::FaultConstant c)
{
    lift::FailureModelSpec fm;
    fm.launch = pair.launch;
    fm.capture = pair.capture;
    fm.is_setup = pair.is_setup;
    fm.constant = c;
    return fm;
}

/**
 * Resolve job @p id from its splitmix64 stream. Pairs are covered
 * round-robin (every pair in the working set gets injected); the
 * constant, policy, and downstream seed are Monte Carlo draws.
 */
JobSpec
make_spec(const CampaignConfig &cfg, size_t npairs, uint64_t id)
{
    JobSpec spec;
    spec.id = id;
    spec.pair_index = size_t(id % npairs);
    uint64_t stream = job_stream(cfg.seed, id);
    spec.constant =
        cfg.constants[splitmix64(stream) % cfg.constants.size()];
    spec.policy = cfg.policies[splitmix64(stream) % cfg.policies.size()];
    spec.probability = cfg.probability;
    spec.seed = splitmix64(stream);
    spec.max_slots = cfg.max_slots;
    return spec;
}

JobResult
run_job(ModuleKind kind, const lift::FailingNetlist &failing,
        const std::vector<runtime::TestCase> &suite, const JobSpec &spec,
        bool corrupts)
{
    JobResult res;
    res.id = spec.id;
    res.pair_index = spec.pair_index;
    res.constant = spec.constant;
    res.policy = spec.policy;

    NetlistEngine engine(kind, failing.netlist,
                         failing.has_random_input, spec.seed);

    runtime::AgingLibraryOptions opt;
    opt.policy = spec.policy;
    opt.probability = spec.probability;
    opt.seed = spec.seed;
    runtime::AgingLibrary lib(suite, opt);

    for (uint64_t slot = 0; slot < spec.max_slots; ++slot) {
        runtime::Detection d = lib.run_next(engine);
        if (d != runtime::Detection::None) {
            res.detected = true;
            res.kind = d;
            res.slots_to_detect = slot + 1;
            break;
        }
    }
    res.tests_dispatched = lib.runs();
    res.sim_cycles = engine.cycles();
    res.corrupts_workload = corrupts;
    res.escape = corrupts && !res.detected;
    return res;
}

} // namespace

CampaignReport
run_campaign(const HwModule &module,
             const std::vector<sta::EndpointPair> &pairs,
             const std::vector<runtime::TestCase> &suite,
             const CampaignConfig &config)
{
    VEGA_CHECK(!pairs.empty(), "campaign needs endpoint pairs");
    VEGA_CHECK(!suite.empty(), "campaign needs a non-empty suite");
    VEGA_CHECK(!config.constants.empty(), "campaign needs constants");
    VEGA_CHECK(!config.policies.empty(), "campaign needs policies");
    VEGA_CHECK(config.num_jobs > 0, "campaign needs jobs");

    CampaignConfig cfg = config;
    if (cfg.max_slots == 0)
        cfg.max_slots = 2 * suite.size();
    size_t npairs = std::min(cfg.max_pairs, pairs.size());
    size_t nconst = cfg.constants.size();

    auto t0 = std::chrono::steady_clock::now();
    ThreadPool pool(cfg.threads);
    std::optional<ProgressMeter> meter;
    if (cfg.progress || cfg.progress_sink)
        meter.emplace(npairs * nconst + cfg.num_jobs,
                      cfg.progress_interval, cfg.progress_sink);

    // Characterization pass: once per unique (pair, constant) fault —
    // never per job — build the failing netlist and probe whether it
    // corrupts the representative workload. The netlists are kept and
    // shared read-only by every job that injects the same fault.
    std::vector<lift::FailingNetlist> faults(npairs * nconst);
    std::vector<char> corrupts(npairs * nconst, 0);
    for (size_t pi = 0; pi < npairs; ++pi) {
        for (size_t ci = 0; ci < nconst; ++ci) {
            pool.submit([&, pi, ci] {
                size_t idx = pi * nconst + ci;
                faults[idx] = lift::build_failing_netlist(
                    module.netlist,
                    fault_spec(pairs[pi], cfg.constants[ci]));
                uint64_t seed = job_stream(~cfg.seed, uint64_t(idx));
                corrupts[idx] = workload_corrupts(
                    module.kind, faults[idx].netlist,
                    faults[idx].has_random_input, seed);
                if (meter)
                    meter->job_done(0);
            });
        }
    }
    pool.wait_idle();

    // Injection pass: the Monte Carlo jobs proper. Results land in
    // slots keyed by job id, so completion order is irrelevant.
    std::vector<JobResult> results(cfg.num_jobs);
    for (uint64_t id = 0; id < cfg.num_jobs; ++id) {
        JobSpec spec = make_spec(cfg, npairs, id);
        size_t ci = size_t(
            std::find(cfg.constants.begin(), cfg.constants.end(),
                      spec.constant) -
            cfg.constants.begin());
        size_t idx = spec.pair_index * nconst + ci;
        bool corrupting = corrupts[idx] != 0;
        pool.submit([&, spec, idx, corrupting] {
            results[spec.id] = run_job(module.kind, faults[idx], suite,
                                       spec, corrupting);
            if (meter)
                meter->job_done(results[spec.id].sim_cycles);
        });
    }
    pool.wait_idle();

    CampaignReport report = aggregate_report(results, npairs);
    report.module = module_kind_name(module.kind);
    report.seed = cfg.seed;
    report.max_slots = cfg.max_slots;
    report.probability = cfg.probability;
    report.suite_size = suite.size();
    report.num_pairs = npairs;

    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    report.timing.wall_seconds = wall;
    report.timing.jobs_per_sec =
        wall > 0 ? double(cfg.num_jobs) / wall : 0.0;
    report.timing.sims_per_sec =
        wall > 0 ? double(report.total_sim_cycles) / wall : 0.0;
    report.timing.threads = pool.size();
    report.timing.steals = pool.steals();
    if (meter)
        meter->finish();
    return report;
}

CampaignReport
run_campaign(const HwModule &module, const vega::WorkflowResult &wf,
             const CampaignConfig &config)
{
    std::vector<sta::EndpointPair> pairs;
    pairs.reserve(wf.lift.pairs.size());
    for (const auto &pr : wf.lift.pairs)
        pairs.push_back(pr.pair);
    return run_campaign(module, pairs, wf.suite, config);
}

} // namespace vega::campaign
