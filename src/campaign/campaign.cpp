#include "campaign/campaign.h"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <mutex>
#include <optional>

#include "campaign/engine.h"
#include "campaign/journal.h"
#include "campaign/shard.h"
#include "campaign/thread_pool.h"
#include "campaign/wave.h"
#include "common/fs.h"
#include "common/logging.h"
#include "mem/decoder_lift.h"
#include "mem/mem_backend.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace vega::campaign {

namespace {

/**
 * Per-worker job counter (`campaign.jobs.w<N>`), resolved once per
 * worker via thread-local caching — the registry lookup (a map probe
 * under a mutex) only happens on each worker's first job.
 */
obs::Counter &
worker_jobs_counter()
{
    static obs::Counter &fallback = obs::counter("campaign.jobs.main");
    thread_local obs::Counter *c = [] {
        int w = ThreadPool::current_worker();
        if (w < 0)
            return &fallback;
        return &obs::counter("campaign.jobs.w" + std::to_string(w));
    }();
    return *c;
}

lift::FailureModelSpec
fault_spec(const sta::EndpointPair &pair, lift::FaultConstant c)
{
    lift::FailureModelSpec fm;
    fm.launch = pair.launch;
    fm.capture = pair.capture;
    fm.is_setup = pair.is_setup;
    fm.constant = c;
    return fm;
}

/**
 * Resolve job @p id from its splitmix64 stream. Pairs are covered
 * round-robin (every pair in the working set gets injected); the
 * constant, policy, and downstream seed are Monte Carlo draws.
 */
JobSpec
make_spec(const CampaignConfig &cfg, size_t npairs, uint64_t id)
{
    JobSpec spec;
    spec.id = id;
    spec.pair_index = size_t(id % npairs);
    uint64_t stream = job_stream(cfg.seed, id);
    spec.constant_index =
        size_t(splitmix64(stream) % cfg.constants.size());
    spec.constant = cfg.constants[spec.constant_index];
    spec.policy = cfg.policies[splitmix64(stream) % cfg.policies.size()];
    spec.probability = cfg.probability;
    spec.seed = splitmix64(stream);
    spec.max_slots = cfg.max_slots;
    return spec;
}

/**
 * One Monte Carlo injection. Functional-unit campaigns mount the
 * failing netlist as the ISS's unit; memory campaigns mount the
 * classified wrong-address fault as the ISS's data-memory backend
 * (@p mem_cls, ignored otherwise).
 */
JobResult
run_job(ModuleKind kind, const lift::FailingNetlist &failing,
        const mem::MemFaultClass &mem_cls,
        const std::vector<runtime::TestCase> &suite, const JobSpec &spec,
        bool corrupts)
{
    JobResult res;
    res.id = spec.id;
    res.pair_index = spec.pair_index;
    res.constant = spec.constant;
    res.policy = spec.policy;

    std::optional<NetlistEngine> netlist_engine;
    std::optional<mem::MarchEngine> march_engine;
    runtime::Engine *engine;
    if (is_mem_module(kind)) {
        march_engine.emplace(mem_cls);
        engine = &*march_engine;
    } else {
        netlist_engine.emplace(kind, failing.netlist,
                               failing.has_random_input, spec.seed);
        engine = &*netlist_engine;
    }

    runtime::AgingLibraryOptions opt;
    opt.policy = spec.policy;
    opt.probability = spec.probability;
    opt.seed = spec.seed;
    runtime::AgingLibrary lib(suite, opt);

    for (uint64_t slot = 0; slot < spec.max_slots; ++slot) {
        runtime::Detection d = lib.run_next(*engine);
        if (d != runtime::Detection::None) {
            res.detected = true;
            res.kind = d;
            res.slots_to_detect = slot + 1;
            break;
        }
    }
    res.tests_dispatched = lib.runs();
    res.sim_cycles = netlist_engine ? netlist_engine->cycles()
                                    : march_engine->cycles();
    res.corrupts_workload = corrupts;
    res.escape = corrupts && !res.detected;
    return res;
}

} // namespace

Expected<CampaignReport>
try_run_campaign(const HwModule &module,
                 const std::vector<sta::EndpointPair> &pairs,
                 const std::vector<runtime::TestCase> &suite,
                 const CampaignConfig &config)
{
    if (pairs.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "campaign needs endpoint pairs");
    if (suite.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "campaign needs a non-empty suite");
    if (config.constants.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "campaign needs constants");
    if (config.policies.empty())
        return make_error(ErrorCode::InvalidArgument,
                          "campaign needs policies");
    if (config.num_jobs == 0)
        return make_error(ErrorCode::InvalidArgument,
                          "campaign needs jobs");
    if (config.num_shards == 0 ||
        config.shard_id >= config.num_shards)
        return make_error(ErrorCode::InvalidArgument,
                          "shard id " + std::to_string(config.shard_id) +
                              " out of range for " +
                              std::to_string(config.num_shards) +
                              " shards");

    CampaignConfig cfg = config;
    if (cfg.max_slots == 0)
        cfg.max_slots = 2 * suite.size();
    size_t npairs = std::min(cfg.max_pairs, pairs.size());
    size_t nconst = cfg.constants.size();
    int max_attempts = std::max(1, cfg.max_job_attempts);

    JournalHeader header;
    header.module = module_kind_name(module.kind);
    header.seed = cfg.seed;
    header.num_jobs = cfg.num_jobs;
    header.num_pairs = npairs;
    header.num_constants = nconst;
    header.num_policies = cfg.policies.size();
    header.max_slots = cfg.max_slots;
    header.suite_size = suite.size();
    header.probability = cfg.probability;
    header.num_shards = cfg.num_shards;
    header.shard_id = cfg.shard_id;
    ShardSpec shard{cfg.num_shards, cfg.shard_id};

    // Results keyed by job id; `skip` marks jobs already settled by a
    // prior run (completed or quarantined — quarantine is sticky).
    std::vector<std::optional<JobResult>> done(cfg.num_jobs);
    std::vector<FailedJob> failed;
    std::vector<char> skip(cfg.num_jobs, 0);

    JournalWriter journal;
    if (!cfg.journal_path.empty()) {
        JournalState prior;
        const JournalState *prior_ptr = nullptr;
        if (cfg.resume && file_exists(cfg.journal_path)) {
            Expected<JournalState> st = read_journal(cfg.journal_path);
            if (!st)
                return st.error();
            if (!(st->header == header))
                return make_error(
                    ErrorCode::JournalMismatch,
                    cfg.journal_path + ": journal '" +
                        st->header.to_string() +
                        "' was written by a different campaign "
                        "configuration ('" +
                        header.to_string() + "')");
            prior = std::move(*st);
            prior_ptr = &prior;
            for (const JobResult &r : prior.completed)
                if (r.id < cfg.num_jobs && !skip[r.id]) {
                    done[r.id] = r;
                    skip[r.id] = 1;
                }
            for (const FailedJob &f : prior.failed)
                if (f.id < cfg.num_jobs && !skip[f.id]) {
                    failed.push_back(f);
                    skip[f.id] = 1;
                }
        }
        Expected<void> opened =
            journal.open(cfg.journal_path, header, prior_ptr,
                         cfg.journal_flush_every);
        if (!opened)
            return opened.error();
    }

    // The work list: job ids this shard owns and no prior run has
    // settled. Specs are pure functions of (seed, id), so shards can
    // compute them independently and the union over shards is exactly
    // the unsharded job set.
    std::vector<uint64_t> todo;
    todo.reserve(size_t(shard_job_count(shard, cfg.num_jobs)));
    std::vector<char> needed(npairs * nconst, 0);
    for (uint64_t id = 0; id < cfg.num_jobs; ++id) {
        if (!shard_owns(shard, id) || skip[id])
            continue;
        todo.push_back(id);
        JobSpec spec = make_spec(cfg, npairs, id);
        needed[spec.pair_index * nconst + spec.constant_index] = 1;
    }
    size_t needed_count = 0;
    for (char n : needed)
        needed_count += size_t(n);

    auto t0 = std::chrono::steady_clock::now();
    ThreadPool pool(cfg.threads);
    std::optional<ProgressMeter> meter;
    if (cfg.progress || cfg.progress_sink)
        meter.emplace(needed_count + todo.size(),
                      cfg.progress_interval, cfg.progress_sink);

    // Wave mode splices every needed fault into ONE bank netlist
    // (disabled faults are exact pass-throughs) compiled to ONE shared
    // tape, then runs characterization and injection in 64-episode
    // waves over it. Memory-module campaigns stay on the scalar
    // MarchEngine path, as do runs with a job_fault_hook (the hook's
    // per-attempt throw semantics are scalar by definition); any wave
    // that throws falls back to the scalar oracle per job, so wave
    // execution is purely a throughput knob.
    bool use_waves = cfg.wave_execution && !is_mem_module(module.kind) &&
                     !cfg.job_fault_hook;
    lift::FaultBank bank;
    WaveContext wave_ctx;
    std::vector<size_t> bank_pos;
    if (use_waves) {
        try {
            std::vector<lift::FailureModelSpec> bank_specs;
            bank_pos.assign(npairs * nconst, SIZE_MAX);
            for (size_t pi = 0; pi < npairs; ++pi)
                for (size_t ci = 0; ci < nconst; ++ci)
                    if (needed[pi * nconst + ci]) {
                        bank_pos[pi * nconst + ci] = bank_specs.size();
                        bank_specs.push_back(
                            fault_spec(pairs[pi], cfg.constants[ci]));
                    }
            if (bank_specs.empty()) {
                use_waves = false;
            } else {
                VEGA_SPAN("campaign.build_bank");
                bank = lift::build_fault_bank(module.netlist, bank_specs);
                wave_ctx.kind = module.kind;
                wave_ctx.tape =
                    std::make_shared<const EvalTape>(bank.netlist);
                wave_ctx.num_faults = bank.num_faults;
                wave_ctx.fault_random = &bank.fault_random;
                wave_ctx.suite = &suite;
            }
        } catch (const std::exception &) {
            use_waves = false;
        }
    }

    // Characterization pass: once per unique (pair, constant) fault —
    // never per job — probe whether the fault corrupts the
    // representative workload. Only faults some pending job of this
    // shard actually injects are probed, so shards (and resumed runs)
    // don't redo the whole matrix. In scalar mode the failing netlists
    // are kept and shared read-only by every job that injects the same
    // fault; in wave mode the bank tape serves that role. A
    // characterization that throws poisons only the jobs that depend
    // on that fault; they quarantine instead of crashing the run.
    std::vector<lift::FailingNetlist> faults(
        use_waves ? 0 : npairs * nconst);
    std::vector<mem::MemFaultClass> mem_faults(
        is_mem_module(module.kind) ? npairs * nconst : 0);
    std::vector<char> corrupts(npairs * nconst, 0);
    std::vector<std::string> char_error(npairs * nconst);
    if (use_waves) {
        std::vector<size_t> pending_faults;
        pending_faults.reserve(needed_count);
        for (size_t idx = 0; idx < npairs * nconst; ++idx)
            if (needed[idx])
                pending_faults.push_back(idx);
        for (size_t base = 0; base < pending_faults.size();
             base += kWaveLanes) {
            size_t count =
                std::min(kWaveLanes, pending_faults.size() - base);
            std::vector<size_t> chunk(
                pending_faults.begin() + long(base),
                pending_faults.begin() + long(base + count));
            pool.submit([&, chunk] {
                VEGA_SPAN("campaign.characterize");
                try {
                    std::vector<std::pair<size_t, uint64_t>> req;
                    req.reserve(chunk.size());
                    for (size_t idx : chunk)
                        req.push_back(
                            {bank_pos[idx],
                             job_stream(~cfg.seed, uint64_t(idx))});
                    std::vector<char> verdicts =
                        characterize_wave(wave_ctx, req);
                    for (size_t i = 0; i < chunk.size(); ++i)
                        corrupts[chunk[i]] = verdicts[i];
                } catch (const std::exception &) {
                    // Wave execution must never cost correctness:
                    // probe each fault standalone, exactly like the
                    // scalar path would have.
                    for (size_t idx : chunk) {
                        try {
                            lift::FailingNetlist f =
                                lift::build_failing_netlist(
                                    module.netlist,
                                    fault_spec(
                                        pairs[idx / nconst],
                                        cfg.constants[idx % nconst]));
                            corrupts[idx] = workload_corrupts(
                                module.kind, f.netlist,
                                f.has_random_input,
                                job_stream(~cfg.seed, uint64_t(idx)));
                        } catch (const std::exception &e) {
                            char_error[idx] = e.what();
                        } catch (...) {
                            char_error[idx] = "non-standard exception";
                        }
                    }
                }
                if (meter)
                    for (size_t i = 0; i < chunk.size(); ++i)
                        meter->job_done(0);
            });
        }
    } else {
        for (size_t pi = 0; pi < npairs; ++pi) {
            for (size_t ci = 0; ci < nconst; ++ci) {
                if (!needed[pi * nconst + ci])
                    continue;
                pool.submit([&, pi, ci] {
                    VEGA_SPAN("campaign.characterize");
                    size_t idx = pi * nconst + ci;
                    try {
                        if (is_mem_module(module.kind)) {
                            // Decoder lifting: the constant axis does
                            // not apply to slow-gate faults; every
                            // (pair, C) slot carries the pair's
                            // classified class.
                            CellId gate = mem::pick_decoder_gate(
                                module.netlist, pairs[pi].worst);
                            if (gate == kInvalidId)
                                throw std::runtime_error(
                                    "no decode gate on worst path");
                            mem_faults[idx] = mem::classify_slow_gate(
                                module.netlist, gate);
                            corrupts[idx] = mem::mem_workload_corrupts(
                                mem_faults[idx]);
                        } else {
                            faults[idx] = lift::build_failing_netlist(
                                module.netlist,
                                fault_spec(pairs[pi],
                                           cfg.constants[ci]));
                            uint64_t seed =
                                job_stream(~cfg.seed, uint64_t(idx));
                            corrupts[idx] = workload_corrupts(
                                module.kind, faults[idx].netlist,
                                faults[idx].has_random_input, seed);
                        }
                    } catch (const std::exception &e) {
                        char_error[idx] = e.what();
                    } catch (...) {
                        char_error[idx] = "non-standard exception";
                    }
                    if (meter)
                        meter->job_done(0);
                });
            }
        }
    }
    pool.wait_idle();
    double characterize_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();

    // Injection pass: the Monte Carlo jobs proper. Results land in
    // slots keyed by job id, so completion order is irrelevant. A job
    // that throws retries with a fresh (deterministically derived)
    // seed; one that fails every attempt is quarantined. Every settled
    // job is checkpointed to the journal before the campaign moves on.
    auto t_inject = std::chrono::steady_clock::now();
    std::mutex state_mu;
    std::mutex journal_mu;
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> journal_nanos{0};
    size_t completed_this_run = 0;
    size_t settled_this_run = 0;
    std::optional<VegaError> journal_error;

    // Journal writes run under their own mutex, off the hot state_mu:
    // a group-commit rewrite (and its fsync) must not block workers
    // that only need to settle counters. Record order across threads
    // is arbitrary, which is fine — replay is keyed by job id.
    auto journal_record = [&](const auto &record) {
        if (!journal.is_open())
            return;
        auto jt0 = std::chrono::steady_clock::now();
        {
            std::lock_guard<std::mutex> lk(journal_mu);
            if (!journal_error) {
                Expected<void> w = journal.record(record);
                if (!w)
                    journal_error = w.error();
            }
        }
        journal_nanos.fetch_add(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - jt0)
                         .count()),
            std::memory_order_relaxed);
    };

    auto settle_result = [&](const JobResult &jr) {
        bool do_kill = false;
        {
            std::lock_guard<std::mutex> lk(state_mu);
            done[jr.id] = jr;
            ++settled_this_run;
            ++completed_this_run;
            if (cfg.stop_after_jobs &&
                completed_this_run >= cfg.stop_after_jobs)
                stop.store(true, std::memory_order_relaxed);
            if (cfg.kill_after_jobs &&
                completed_this_run >= cfg.kill_after_jobs)
                do_kill = true;
        }
        journal_record(jr);
        // The real thing, not a simulation: SIGKILL is uncatchable, so
        // buffered journal records die with the process exactly as in
        // a production OOM kill. In wave mode the trigger lands mid-
        // wave, with sibling episodes' records still unflushed.
        if (do_kill)
            std::raise(SIGKILL);
        if (meter)
            meter->job_done(jr.sim_cycles);
    };

    auto settle_failed = [&](const FailedJob &f, bool meter_tick) {
        {
            std::lock_guard<std::mutex> lk(state_mu);
            failed.push_back(f);
            ++settled_this_run;
        }
        journal_record(f);
        if (meter_tick && meter)
            meter->job_done(0);
    };

    auto char_failed_job = [&](const JobSpec &spec, size_t idx) {
        FailedJob f;
        f.id = spec.id;
        f.pair_index = spec.pair_index;
        f.attempts = 0;
        f.error = make_error(ErrorCode::JobFailed,
                             "characterization: " + char_error[idx]);
        return f;
    };

    // The scalar retry ladder — the semantics oracle wave execution is
    // measured against, and the per-job fallback when a wave throws.
    auto run_with_retries = [&](const JobSpec &spec,
                                const lift::FailingNetlist &failing,
                                const mem::MemFaultClass &mem_cls,
                                bool corrupting, JobResult &jr,
                                VegaError &last) {
        JobSpec attempt_spec = spec;
        for (int attempt = 1; attempt <= max_attempts; ++attempt) {
            try {
                if (cfg.job_fault_hook)
                    cfg.job_fault_hook(spec, attempt);
                jr = run_job(module.kind, failing, mem_cls, suite,
                             attempt_spec, corrupting);
                jr.attempts = uint32_t(attempt);
                return true;
            } catch (const std::exception &e) {
                last = make_error(ErrorCode::JobFailed,
                                  "attempt " + std::to_string(attempt) +
                                      ": " + e.what());
            } catch (...) {
                last = make_error(ErrorCode::JobFailed,
                                  "attempt " + std::to_string(attempt) +
                                      ": non-standard exception");
            }
            static obs::Counter &retry_counter =
                obs::counter("campaign.retries");
            retry_counter.inc();
            // Fresh downstream randomness for the retry, still a pure
            // function of (campaign seed, job id, attempt).
            uint64_t stream = job_stream(
                cfg.seed ^ (0x9e3779b97f4a7c15ull * uint64_t(attempt)),
                spec.id);
            attempt_spec.seed = splitmix64(stream);
        }
        return false;
    };

    if (use_waves) {
        // Wave dispatch: pending jobs bucket into 64-episode waves in
        // id order, each wave one pool task sharing the read-only bank
        // tape. Per-job settling keeps stop/kill semantics exact: a
        // stop flag raised mid-wave drops the wave's remaining
        // (unsettled) episodes, which a resume simply re-runs.
        std::vector<JobSpec> wave_specs;
        wave_specs.reserve(kWaveLanes);
        auto flush_wave = [&] {
            if (wave_specs.empty())
                return;
            pool.submit([&, specs = wave_specs] {
                if (stop.load(std::memory_order_relaxed))
                    return;
                VEGA_SPAN("campaign.wave");
                std::vector<WaveJob> wjobs;
                wjobs.reserve(specs.size());
                for (const JobSpec &s : specs) {
                    size_t idx =
                        s.pair_index * nconst + s.constant_index;
                    if (char_error[idx].empty())
                        wjobs.push_back(
                            {s, bank_pos[idx], corrupts[idx] != 0});
                }
                std::vector<JobResult> results;
                bool wave_ok = true;
                try {
                    results = run_wave(wave_ctx, wjobs);
                } catch (const std::exception &) {
                    wave_ok = false;
                }
                size_t ri = 0;
                for (const JobSpec &s : specs) {
                    if (stop.load(std::memory_order_relaxed))
                        return;
                    VEGA_SPAN("campaign.job");
                    static obs::Counter &jobs_counter =
                        obs::counter("campaign.jobs");
                    jobs_counter.inc();
                    worker_jobs_counter().inc();
                    size_t idx =
                        s.pair_index * nconst + s.constant_index;
                    if (!char_error[idx].empty()) {
                        settle_failed(char_failed_job(s, idx), false);
                        continue;
                    }
                    if (wave_ok) {
                        settle_result(results[ri++]);
                        continue;
                    }
                    // The wave threw: rerun this episode standalone
                    // through the scalar oracle (identical result by
                    // the lockstep contract).
                    std::optional<lift::FailingNetlist> failing;
                    JobResult jr;
                    VegaError last;
                    bool ok = false;
                    try {
                        failing.emplace(lift::build_failing_netlist(
                            module.netlist,
                            fault_spec(pairs[s.pair_index],
                                       cfg.constants[s.constant_index])));
                    } catch (const std::exception &e) {
                        last = make_error(ErrorCode::JobFailed,
                                          e.what());
                    }
                    if (failing)
                        ok = run_with_retries(s, *failing,
                                              mem::MemFaultClass{},
                                              corrupts[idx] != 0, jr,
                                              last);
                    if (ok) {
                        settle_result(jr);
                    } else {
                        FailedJob f;
                        f.id = s.id;
                        f.pair_index = s.pair_index;
                        f.attempts = uint32_t(max_attempts);
                        f.error = last;
                        settle_failed(f, true);
                    }
                }
            });
            wave_specs.clear();
        };
        for (uint64_t id : todo) {
            wave_specs.push_back(make_spec(cfg, npairs, id));
            if (wave_specs.size() == kWaveLanes)
                flush_wave();
        }
        flush_wave();
    } else {
        for (uint64_t id : todo) {
            JobSpec spec = make_spec(cfg, npairs, id);
            size_t idx = spec.pair_index * nconst + spec.constant_index;
            pool.submit([&, spec, idx] {
                if (stop.load(std::memory_order_relaxed))
                    return;
                VEGA_SPAN("campaign.job");
                static obs::Counter &jobs_counter =
                    obs::counter("campaign.jobs");
                jobs_counter.inc();
                worker_jobs_counter().inc();
                if (!char_error[idx].empty()) {
                    settle_failed(char_failed_job(spec, idx), false);
                    return;
                }
                JobResult jr;
                VegaError last;
                bool ok = run_with_retries(
                    spec, faults[idx],
                    is_mem_module(module.kind) ? mem_faults[idx]
                                               : mem::MemFaultClass{},
                    corrupts[idx] != 0, jr, last);
                if (ok) {
                    settle_result(jr);
                } else {
                    FailedJob f;
                    f.id = spec.id;
                    f.pair_index = spec.pair_index;
                    f.attempts = uint32_t(max_attempts);
                    f.error = last;
                    settle_failed(f, true);
                }
            });
        }
    }
    pool.wait_idle();
    double simulate_wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_inject)
            .count();
    if (journal.is_open() && !journal_error) {
        // Every owned job settled => the shard is complete: seal the
        // journal with its integrity trailer so the aggregator will
        // accept it. An early stop leaves the journal trailerless —
        // resumable, but rejected at aggregation as shard-incomplete.
        auto jt0 = std::chrono::steady_clock::now();
        bool complete = settled_this_run == todo.size();
        Expected<void> sealed =
            complete ? journal.finalize() : journal.sync();
        if (!sealed)
            journal_error = sealed.error();
        journal_nanos.fetch_add(
            uint64_t(std::chrono::duration_cast<std::chrono::nanoseconds>(
                         std::chrono::steady_clock::now() - jt0)
                         .count()),
            std::memory_order_relaxed);
    }
    if (journal_error)
        return *journal_error;

    auto t_agg = std::chrono::steady_clock::now();
    std::vector<JobResult> results;
    results.reserve(cfg.num_jobs);
    for (uint64_t id = 0; id < cfg.num_jobs; ++id)
        if (done[id])
            results.push_back(*done[id]);

    CampaignReport report = aggregate_report(results, npairs, failed);
    report.module = module_kind_name(module.kind);
    report.seed = cfg.seed;
    report.max_slots = cfg.max_slots;
    report.probability = cfg.probability;
    report.suite_size = suite.size();
    report.num_pairs = npairs;

    double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    report.timing.wall_seconds = wall;
    report.timing.jobs_per_sec =
        wall > 0 ? double(results.size()) / wall : 0.0;
    report.timing.sims_per_sec =
        wall > 0 ? double(report.total_sim_cycles) / wall : 0.0;
    report.timing.threads = pool.size();
    report.timing.steals = pool.steals();
    report.timing.peak_queue_depth = pool.peak_queued();
    report.timing.journal_flushes = journal.flushes();
    report.timing.journal_bytes = journal.bytes_written();
    report.timing.characterize_seconds = characterize_wall;
    report.timing.simulate_seconds = simulate_wall;
    report.timing.journal_seconds =
        double(journal_nanos.load(std::memory_order_relaxed)) * 1e-9;
    report.timing.aggregate_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t_agg)
            .count();
    if (meter)
        meter->finish();
    return report;
}

CampaignReport
run_campaign(const HwModule &module,
             const std::vector<sta::EndpointPair> &pairs,
             const std::vector<runtime::TestCase> &suite,
             const CampaignConfig &config)
{
    Expected<CampaignReport> report =
        try_run_campaign(module, pairs, suite, config);
    VEGA_CHECK(report.ok(), "campaign: ", report.error().to_string());
    return std::move(report).value();
}

CampaignReport
run_campaign(const HwModule &module, const vega::WorkflowResult &wf,
             const CampaignConfig &config)
{
    std::vector<sta::EndpointPair> pairs;
    pairs.reserve(wf.lift.pairs.size());
    for (const auto &pr : wf.lift.pairs)
        pairs.push_back(pr.pair);
    return run_campaign(module, pairs, wf.suite, config);
}

} // namespace vega::campaign
