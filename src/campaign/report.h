/**
 * @file
 * Structured results of a fault-injection campaign.
 *
 * A CampaignReport aggregates per-job outcomes three ways — per
 * endpoint pair (which aging paths the suite covers and how fast),
 * per schedule policy (what the dispatch knob costs in latency), and
 * in campaign totals (detection rate, SDC-escape rate, detection-kind
 * histogram) — and serializes to JSON.
 *
 * Everything except the `timing` object is a pure function of the
 * campaign configuration, so `to_json(false)` (timing excluded) is
 * byte-identical across runs and thread counts; the determinism tests
 * compare exactly that.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/job.h"

namespace vega::campaign {

/** Detection outcomes by kind (detected jobs only). */
struct DetectionHistogram
{
    uint64_t mismatch = 0;
    uint64_t stall = 0;
    uint64_t tag_anomaly = 0;
    uint64_t wrong_address = 0;
};

/** Aggregates over all jobs that injected the same endpoint pair. */
struct PairStats
{
    size_t pair_index = 0;
    uint64_t jobs = 0;
    uint64_t detected = 0;
    uint64_t corrupting = 0;
    uint64_t escapes = 0;
    /** Sum of slots_to_detect over detected jobs. */
    uint64_t slots_sum = 0;
    uint64_t sim_cycles = 0;

    double detection_rate() const
    {
        return jobs ? double(detected) / double(jobs) : 0.0;
    }
    /** Mean scheduler slots until the suite fired (detected jobs). */
    double mean_latency_slots() const
    {
        return detected ? double(slots_sum) / double(detected) : 0.0;
    }
};

/** Aggregates over all jobs run under the same schedule policy. */
struct PolicyStats
{
    runtime::SchedulePolicy policy = runtime::SchedulePolicy::Sequential;
    uint64_t jobs = 0;
    uint64_t detected = 0;
    uint64_t escapes = 0;
    uint64_t slots_sum = 0;
    uint64_t tests_dispatched = 0;

    double detection_rate() const
    {
        return jobs ? double(detected) / double(jobs) : 0.0;
    }
    double mean_latency_slots() const
    {
        return detected ? double(slots_sum) / double(detected) : 0.0;
    }
};

/** Wall-clock measurements — excluded from deterministic JSON. */
struct CampaignTiming
{
    double wall_seconds = 0.0;
    double jobs_per_sec = 0.0;
    double sims_per_sec = 0.0;
    size_t threads = 1;
    uint64_t steals = 0;
    /** High-water mark of tasks waiting in pool queues. */
    uint64_t peak_queue_depth = 0;
    /** Atomic journal rewrites (0 when journaling is off). */
    uint64_t journal_flushes = 0;
    /** Total bytes those rewrites wrote. */
    uint64_t journal_bytes = 0;

    // Per-stage wall breakdown: where the campaign actually spent its
    // time. characterize/simulate are elapsed pass times; journal is
    // the summed time inside journal record/seal calls (overlaps the
    // simulate stage); aggregate covers report assembly.
    double characterize_seconds = 0.0;
    double simulate_seconds = 0.0;
    double journal_seconds = 0.0;
    double aggregate_seconds = 0.0;
};

struct CampaignReport
{
    // Echo of the configuration that produced the report.
    std::string module;
    uint64_t seed = 0;
    uint64_t max_slots = 0;
    double probability = 1.0;
    size_t suite_size = 0;
    size_t num_pairs = 0;

    std::vector<JobResult> jobs;
    /** Quarantined jobs (every retry failed), sorted by id. */
    std::vector<FailedJob> failed_jobs;
    std::vector<PairStats> per_pair;
    std::vector<PolicyStats> per_policy;

    // Campaign totals.
    uint64_t detected = 0;
    uint64_t corrupting = 0;
    uint64_t escapes = 0;
    /** Neither corrupting nor detected: the fault is benign here. */
    uint64_t benign = 0;
    /** Jobs quarantined after exhausting their retry budget. */
    uint64_t failed = 0;
    uint64_t tests_dispatched = 0;
    uint64_t total_sim_cycles = 0;
    uint64_t slots_sum = 0;
    DetectionHistogram detections;

    CampaignTiming timing;

    double detection_rate() const
    {
        return jobs.empty() ? 0.0
                            : double(detected) / double(jobs.size());
    }
    /** Escapes over corrupting injections (the paper's SDC risk). */
    double escape_rate() const
    {
        return corrupting ? double(escapes) / double(corrupting) : 0.0;
    }
    double mean_latency_slots() const
    {
        return detected ? double(slots_sum) / double(detected) : 0.0;
    }

    /**
     * Serialize. @p include_timing adds the wall-clock object;
     * @p include_jobs adds the per-job array (large campaigns may
     * want aggregates only).
     */
    std::string to_json(bool include_timing = true,
                        bool include_jobs = true) const;
};

/**
 * Fold per-job results (keyed by job id, order-independent) into a
 * report. @p num_pairs sizes the per-pair table so uninjected pairs
 * still appear with zero counts.
 */
CampaignReport aggregate_report(const std::vector<JobResult> &jobs,
                                size_t num_pairs);

/** As above, folding quarantined jobs into failed_jobs / totals. */
CampaignReport aggregate_report(const std::vector<JobResult> &jobs,
                                size_t num_pairs,
                                std::vector<FailedJob> failed_jobs);

} // namespace vega::campaign
