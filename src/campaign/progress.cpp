#include "campaign/progress.h"

#include <cinttypes>
#include <cstdio>

namespace vega::campaign {

namespace {

void
stderr_sink(const std::string &line)
{
    std::fprintf(stderr, "%s\n", line.c_str());
}

/** 12345678 → "12.3M", keeping progress lines one glance wide. */
std::string
human(double v)
{
    char buf[32];
    if (v >= 1e9)
        std::snprintf(buf, sizeof buf, "%.1fG", v / 1e9);
    else if (v >= 1e6)
        std::snprintf(buf, sizeof buf, "%.1fM", v / 1e6);
    else if (v >= 1e3)
        std::snprintf(buf, sizeof buf, "%.1fk", v / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1f", v);
    return buf;
}

} // namespace

ProgressMeter::ProgressMeter(uint64_t total_jobs,
                             std::chrono::milliseconds interval, Sink sink)
    : total_(total_jobs), interval_(interval),
      sink_(sink ? std::move(sink) : stderr_sink), start_(Clock::now()),
      last_emit_(start_)
{
}

void
ProgressMeter::job_done(uint64_t sim_cycles)
{
    std::string line;
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++done_;
        cycles_ += sim_cycles;
        auto now = Clock::now();
        if (done_ < total_ && now - last_emit_ < interval_)
            return;
        last_emit_ = now;
        if (done_ >= total_)
            final_emitted_ = true;
        line = render_line();
    }
    sink_(line);
}

void
ProgressMeter::finish()
{
    std::string line;
    {
        std::lock_guard<std::mutex> lk(mu_);
        // The last job_done() already printed the 100% line.
        if (final_emitted_)
            return;
        final_emitted_ = true;
        line = render_line();
    }
    sink_(line);
}

std::string
ProgressMeter::render_line() const
{
    double secs = std::chrono::duration<double>(Clock::now() - start_)
                      .count();
    double jps = secs > 0 ? double(done_) / secs : 0.0;
    double sps = secs > 0 ? double(cycles_) / secs : 0.0;
    double pct = total_ ? 100.0 * double(done_) / double(total_) : 100.0;
    char buf[160];
    if (done_ < total_ && jps > 0) {
        double eta = double(total_ - done_) / jps;
        std::snprintf(buf, sizeof buf,
                      "campaign: %" PRIu64 "/%" PRIu64
                      " jobs (%.1f%%) | %s jobs/s | %s sims/s | "
                      "eta %.1fs",
                      done_, total_, pct, human(jps).c_str(),
                      human(sps).c_str(), eta);
    } else {
        std::snprintf(buf, sizeof buf,
                      "campaign: %" PRIu64 "/%" PRIu64
                      " jobs (%.1f%%) | %s jobs/s | %s sims/s | "
                      "%.1fs elapsed",
                      done_, total_, pct, human(jps).c_str(),
                      human(sps).c_str(), secs);
    }
    return buf;
}

uint64_t
ProgressMeter::jobs_done() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return done_;
}

uint64_t
ProgressMeter::sim_cycles() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return cycles_;
}

double
ProgressMeter::elapsed_seconds() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return std::chrono::duration<double>(Clock::now() - start_).count();
}

double
ProgressMeter::jobs_per_sec() const
{
    std::lock_guard<std::mutex> lk(mu_);
    double secs = std::chrono::duration<double>(Clock::now() - start_)
                      .count();
    return secs > 0 ? double(done_) / secs : 0.0;
}

double
ProgressMeter::sims_per_sec() const
{
    std::lock_guard<std::mutex> lk(mu_);
    double secs = std::chrono::duration<double>(Clock::now() - start_)
                      .count();
    return secs > 0 ? double(cycles_) / secs : 0.0;
}

} // namespace vega::campaign
