#include "campaign/report.h"

#include <algorithm>
#include <cstdio>

namespace vega::campaign {

namespace {

/**
 * Shortest round-trip-stable rendering: integers print bare, other
 * values with enough digits to be stable and deterministic.
 */
void
append_double(std::string &out, double v)
{
    char buf[40];
    if (v >= 0 && v < 1e15 && v == double(uint64_t(v)))
        std::snprintf(buf, sizeof buf, "%llu",
                      (unsigned long long)(uint64_t(v)));
    else
        std::snprintf(buf, sizeof buf, "%.9g", v);
    out += buf;
}

void
append_u64(std::string &out, uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu", (unsigned long long)v);
    out += buf;
}

void
kv(std::string &out, const char *key, uint64_t v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":";
    append_u64(out, v);
    if (comma)
        out += ',';
}

void
kv(std::string &out, const char *key, double v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":";
    append_double(out, v);
    if (comma)
        out += ',';
}

void
kv(std::string &out, const char *key, const char *v, bool comma = true)
{
    out += '"';
    out += key;
    out += "\":\"";
    out += v;
    out += '"';
    if (comma)
        out += ',';
}

/** Error contexts are free text; escape them for JSON. */
void
kv_escaped(std::string &out, const char *key, const std::string &v,
           bool comma = true)
{
    out += '"';
    out += key;
    out += "\":\"";
    for (char c : v) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (uint8_t(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    if (comma)
        out += ',';
}

void
append_histogram(std::string &out, const DetectionHistogram &h)
{
    out += '{';
    kv(out, "mismatch", h.mismatch);
    kv(out, "stall", h.stall);
    kv(out, "tag_anomaly", h.tag_anomaly);
    kv(out, "wrong_address", h.wrong_address, false);
    out += '}';
}

} // namespace

std::string
CampaignReport::to_json(bool include_timing, bool include_jobs) const
{
    std::string out;
    out.reserve(4096 + (include_jobs ? jobs.size() * 192 : 0));
    out += "{\"campaign\":{";
    kv(out, "module", module.c_str());
    kv(out, "seed", seed);
    kv(out, "num_jobs", uint64_t(jobs.size()));
    kv(out, "suite_size", uint64_t(suite_size));
    kv(out, "num_pairs", uint64_t(num_pairs));
    kv(out, "max_slots", max_slots);
    kv(out, "probability", probability, false);
    out += "},\"totals\":{";
    kv(out, "detected", detected);
    kv(out, "corrupting", corrupting);
    kv(out, "escapes", escapes);
    kv(out, "benign", benign);
    kv(out, "failed", failed);
    kv(out, "detection_rate", detection_rate());
    kv(out, "escape_rate", escape_rate());
    kv(out, "mean_latency_slots", mean_latency_slots());
    kv(out, "tests_dispatched", tests_dispatched);
    kv(out, "sim_cycles", total_sim_cycles);
    out += "\"detections\":";
    append_histogram(out, detections);
    out += "},\"per_pair\":[";
    for (size_t i = 0; i < per_pair.size(); ++i) {
        const PairStats &p = per_pair[i];
        if (i)
            out += ',';
        out += '{';
        kv(out, "pair", uint64_t(p.pair_index));
        kv(out, "jobs", p.jobs);
        kv(out, "detected", p.detected);
        kv(out, "corrupting", p.corrupting);
        kv(out, "escapes", p.escapes);
        kv(out, "detection_rate", p.detection_rate());
        kv(out, "mean_latency_slots", p.mean_latency_slots());
        kv(out, "sim_cycles", p.sim_cycles, false);
        out += '}';
    }
    out += "],\"per_policy\":[";
    for (size_t i = 0; i < per_policy.size(); ++i) {
        const PolicyStats &p = per_policy[i];
        if (i)
            out += ',';
        out += '{';
        kv(out, "policy", runtime::schedule_policy_name(p.policy));
        kv(out, "jobs", p.jobs);
        kv(out, "detected", p.detected);
        kv(out, "escapes", p.escapes);
        kv(out, "detection_rate", p.detection_rate());
        kv(out, "mean_latency_slots", p.mean_latency_slots());
        kv(out, "tests_dispatched", p.tests_dispatched, false);
        out += '}';
    }
    out += ']';
    if (include_jobs) {
        out += ",\"jobs\":[";
        for (size_t i = 0; i < jobs.size(); ++i) {
            const JobResult &j = jobs[i];
            if (i)
                out += ',';
            out += '{';
            kv(out, "id", j.id);
            kv(out, "pair", uint64_t(j.pair_index));
            kv(out, "constant", lift::fault_constant_name(j.constant));
            kv(out, "policy", runtime::schedule_policy_name(j.policy));
            kv(out, "detected", uint64_t(j.detected));
            kv(out, "kind", runtime::detection_name(j.kind));
            kv(out, "slots_to_detect", j.slots_to_detect);
            kv(out, "tests_dispatched", j.tests_dispatched);
            kv(out, "sim_cycles", j.sim_cycles);
            kv(out, "corrupts_workload", uint64_t(j.corrupts_workload));
            kv(out, "escape", uint64_t(j.escape));
            kv(out, "attempts", uint64_t(j.attempts), false);
            out += '}';
        }
        out += ']';
    }
    out += ",\"failed_jobs\":[";
    for (size_t i = 0; i < failed_jobs.size(); ++i) {
        const FailedJob &f = failed_jobs[i];
        if (i)
            out += ',';
        out += '{';
        kv(out, "id", f.id);
        kv(out, "pair", uint64_t(f.pair_index));
        kv(out, "attempts", uint64_t(f.attempts));
        kv(out, "code", error_code_name(f.error.code));
        kv_escaped(out, "context", f.error.context, false);
        out += '}';
    }
    out += ']';
    if (include_timing) {
        out += ",\"timing\":{";
        kv(out, "wall_seconds", timing.wall_seconds);
        kv(out, "jobs_per_sec", timing.jobs_per_sec);
        kv(out, "sims_per_sec", timing.sims_per_sec);
        kv(out, "threads", uint64_t(timing.threads));
        kv(out, "steals", timing.steals);
        kv(out, "peak_queue_depth", timing.peak_queue_depth);
        kv(out, "journal_flushes", timing.journal_flushes);
        kv(out, "journal_bytes", timing.journal_bytes);
        kv(out, "characterize_seconds", timing.characterize_seconds);
        kv(out, "simulate_seconds", timing.simulate_seconds);
        kv(out, "journal_seconds", timing.journal_seconds);
        kv(out, "aggregate_seconds", timing.aggregate_seconds, false);
        out += '}';
    }
    out += '}';
    return out;
}

CampaignReport
aggregate_report(const std::vector<JobResult> &jobs, size_t num_pairs)
{
    return aggregate_report(jobs, num_pairs, {});
}

CampaignReport
aggregate_report(const std::vector<JobResult> &jobs, size_t num_pairs,
                 std::vector<FailedJob> failed_jobs)
{
    CampaignReport r;
    r.jobs = jobs;
    std::sort(failed_jobs.begin(), failed_jobs.end(),
              [](const FailedJob &a, const FailedJob &b) {
                  return a.id < b.id;
              });
    r.failed_jobs = std::move(failed_jobs);
    r.failed = r.failed_jobs.size();
    r.num_pairs = num_pairs;
    r.per_pair.resize(num_pairs);
    for (size_t i = 0; i < num_pairs; ++i)
        r.per_pair[i].pair_index = i;

    using runtime::SchedulePolicy;
    const SchedulePolicy kPolicies[] = {SchedulePolicy::Sequential,
                                        SchedulePolicy::Random,
                                        SchedulePolicy::Probabilistic};
    r.per_policy.resize(3);
    for (size_t i = 0; i < 3; ++i)
        r.per_policy[i].policy = kPolicies[i];

    for (const JobResult &j : jobs) {
        r.tests_dispatched += j.tests_dispatched;
        r.total_sim_cycles += j.sim_cycles;
        if (j.corrupts_workload)
            ++r.corrupting;
        if (j.escape)
            ++r.escapes;
        if (j.detected) {
            ++r.detected;
            r.slots_sum += j.slots_to_detect;
            switch (j.kind) {
              case runtime::Detection::Mismatch:
                ++r.detections.mismatch;
                break;
              case runtime::Detection::Stall:
                ++r.detections.stall;
                break;
              case runtime::Detection::TagAnomaly:
                ++r.detections.tag_anomaly;
                break;
              case runtime::Detection::WrongAddress:
                ++r.detections.wrong_address;
                break;
              case runtime::Detection::None:
                break;
            }
        } else if (!j.corrupts_workload) {
            ++r.benign;
        }

        if (j.pair_index < num_pairs) {
            PairStats &p = r.per_pair[j.pair_index];
            ++p.jobs;
            p.sim_cycles += j.sim_cycles;
            if (j.detected) {
                ++p.detected;
                p.slots_sum += j.slots_to_detect;
            }
            if (j.corrupts_workload)
                ++p.corrupting;
            if (j.escape)
                ++p.escapes;
        }

        PolicyStats &ps = r.per_policy[size_t(j.policy)];
        ++ps.jobs;
        ps.tests_dispatched += j.tests_dispatched;
        if (j.detected) {
            ++ps.detected;
            ps.slots_sum += j.slots_to_detect;
        }
        if (j.escape)
            ++ps.escapes;
    }
    return r;
}

} // namespace vega::campaign
