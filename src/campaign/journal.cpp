#include "campaign/journal.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/fs.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/test_case.h"

namespace vega::campaign {

namespace {

constexpr const char *kMagic = "# vega campaign journal v1";

/** %.17g round-trips every double through text exactly. */
std::string
render_double(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
parse_constant(const std::string &tok, lift::FaultConstant &out)
{
    for (lift::FaultConstant c :
         {lift::FaultConstant::Zero, lift::FaultConstant::One,
          lift::FaultConstant::RandomInput})
        if (tok == lift::fault_constant_name(c)) {
            out = c;
            return true;
        }
    return false;
}

bool
parse_policy(const std::string &tok, runtime::SchedulePolicy &out)
{
    for (runtime::SchedulePolicy p :
         {runtime::SchedulePolicy::Sequential,
          runtime::SchedulePolicy::Random,
          runtime::SchedulePolicy::Probabilistic})
        if (tok == runtime::schedule_policy_name(p)) {
            out = p;
            return true;
        }
    return false;
}

bool
parse_detection(const std::string &tok, runtime::Detection &out)
{
    for (runtime::Detection d :
         {runtime::Detection::None, runtime::Detection::Mismatch,
          runtime::Detection::Stall, runtime::Detection::TagAnomaly})
        if (tok == runtime::detection_name(d)) {
            out = d;
            return true;
        }
    return false;
}

/** "key=value" fields of the config line, order-sensitive. */
bool
take_field(std::istringstream &ls, const char *key, std::string &out)
{
    std::string tok;
    if (!(ls >> tok))
        return false;
    std::string prefix = std::string(key) + "=";
    if (tok.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = tok.substr(prefix.size());
    return !out.empty();
}

bool
take_u64(std::istringstream &ls, const char *key, uint64_t &out)
{
    std::string v;
    if (!take_field(ls, key, v))
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end && *end == '\0';
}

} // namespace

bool
JournalHeader::operator==(const JournalHeader &o) const
{
    return module == o.module && seed == o.seed &&
           num_jobs == o.num_jobs && num_pairs == o.num_pairs &&
           num_constants == o.num_constants &&
           num_policies == o.num_policies && max_slots == o.max_slots &&
           suite_size == o.suite_size &&
           render_double(probability) == render_double(o.probability);
}

std::string
JournalHeader::to_string() const
{
    std::ostringstream os;
    os << "config module=" << module << " seed=" << seed
       << " jobs=" << num_jobs << " pairs=" << num_pairs
       << " constants=" << num_constants << " policies=" << num_policies
       << " max_slots=" << max_slots << " suite=" << suite_size
       << " probability=" << render_double(probability);
    return os.str();
}

Expected<JournalState>
read_journal(const std::string &path)
{
    Expected<std::string> text = read_file(path);
    if (!text)
        return text.error();

    JournalState state;
    std::istringstream is(*text);
    std::string line;
    size_t line_no = 0;
    bool have_magic = false, have_config = false;

    auto corrupt = [&](const std::string &msg) {
        return make_error(ErrorCode::JournalCorrupt,
                          path + ":" + std::to_string(line_no) + ": " +
                              msg);
    };

    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        if (!have_magic) {
            if (line != kMagic)
                return corrupt("missing journal magic");
            have_magic = true;
            continue;
        }
        std::istringstream ls(line);
        std::string word;
        ls >> word;
        if (word == "config") {
            if (have_config)
                return corrupt("duplicate config line");
            JournalHeader &h = state.header;
            if (!take_field(ls, "module", h.module) ||
                !take_u64(ls, "seed", h.seed) ||
                !take_u64(ls, "jobs", h.num_jobs) ||
                !take_u64(ls, "pairs", h.num_pairs) ||
                !take_u64(ls, "constants", h.num_constants) ||
                !take_u64(ls, "policies", h.num_policies) ||
                !take_u64(ls, "max_slots", h.max_slots) ||
                !take_u64(ls, "suite", h.suite_size))
                return corrupt("malformed config line");
            std::string prob;
            if (!take_field(ls, "probability", prob))
                return corrupt("malformed config line");
            char *end = nullptr;
            h.probability = std::strtod(prob.c_str(), &end);
            if (!end || *end != '\0')
                return corrupt("malformed probability");
            have_config = true;
        } else if (word == "job") {
            if (!have_config)
                return corrupt("job record before config line");
            JobResult r;
            std::string constant, policy, kind;
            uint64_t pair = 0, detected = 0, corrupts = 0, escape = 0,
                     attempts = 0;
            if (!(ls >> r.id >> pair >> constant >> policy >> detected >>
                  kind >> r.slots_to_detect >> r.tests_dispatched >>
                  r.sim_cycles >> corrupts >> escape >> attempts))
                return corrupt("malformed job record");
            if (!parse_constant(constant, r.constant))
                return corrupt("unknown constant '" + constant + "'");
            if (!parse_policy(policy, r.policy))
                return corrupt("unknown policy '" + policy + "'");
            if (!parse_detection(kind, r.kind))
                return corrupt("unknown detection kind '" + kind + "'");
            r.pair_index = size_t(pair);
            r.detected = detected != 0;
            r.corrupts_workload = corrupts != 0;
            r.escape = escape != 0;
            r.attempts = uint32_t(attempts);
            state.completed.push_back(std::move(r));
        } else if (word == "failed") {
            if (!have_config)
                return corrupt("failed record before config line");
            FailedJob f;
            uint64_t pair = 0, attempts = 0;
            std::string code;
            if (!(ls >> f.id >> pair >> attempts >> code))
                return corrupt("malformed failed record");
            f.pair_index = size_t(pair);
            f.attempts = uint32_t(attempts);
            f.error.code = parse_error_code(code);
            if (f.error.code == ErrorCode::Ok)
                return corrupt("unknown error code '" + code + "'");
            std::getline(ls, f.error.context);
            if (!f.error.context.empty() && f.error.context[0] == ' ')
                f.error.context.erase(0, 1);
            state.failed.push_back(std::move(f));
        } else {
            return corrupt("unknown record '" + word + "'");
        }
    }
    if (!have_magic)
        return make_error(ErrorCode::JournalCorrupt,
                          path + ": empty journal");
    if (!have_config)
        return make_error(ErrorCode::JournalCorrupt,
                          path + ": no config line");
    return state;
}

Expected<void>
JournalWriter::open(const std::string &path, const JournalHeader &header,
                    const JournalState *prior, size_t flush_every)
{
    path_ = path;
    flush_every_ = flush_every < 1 ? 1 : flush_every;
    unflushed_ = 0;
    content_ = std::string(kMagic) + "\n" + header.to_string() + "\n";
    if (prior) {
        for (const JobResult &r : prior->completed) {
            Expected<void> ok = record(r);
            if (!ok)
                return ok;
        }
        for (const FailedJob &f : prior->failed) {
            Expected<void> ok = record(f);
            if (!ok)
                return ok;
        }
    }
    // The header (and any resumed records) must be durable before new
    // results land, whatever the group-commit size.
    return flush();
}

Expected<void>
JournalWriter::record(const JobResult &r)
{
    std::ostringstream os;
    os << "job " << r.id << " " << r.pair_index << " "
       << lift::fault_constant_name(r.constant) << " "
       << runtime::schedule_policy_name(r.policy) << " "
       << (r.detected ? 1 : 0) << " " << runtime::detection_name(r.kind)
       << " " << r.slots_to_detect << " " << r.tests_dispatched << " "
       << r.sim_cycles << " " << (r.corrupts_workload ? 1 : 0) << " "
       << (r.escape ? 1 : 0) << " " << r.attempts << "\n";
    content_ += os.str();
    return after_record();
}

Expected<void>
JournalWriter::record(const FailedJob &f)
{
    // The context rides to end-of-line; strip embedded newlines so one
    // record stays one line.
    std::string context = f.error.context;
    for (char &c : context)
        if (c == '\n' || c == '\r')
            c = ' ';
    std::ostringstream os;
    os << "failed " << f.id << " " << f.pair_index << " " << f.attempts
       << " " << error_code_name(f.error.code) << " " << context << "\n";
    content_ += os.str();
    return after_record();
}

Expected<void>
JournalWriter::after_record()
{
    if (++unflushed_ >= flush_every_)
        return flush();
    return {};
}

Expected<void>
JournalWriter::sync()
{
    if (unflushed_ == 0)
        return {};
    return flush();
}

Expected<void>
JournalWriter::flush()
{
    VEGA_SPAN("campaign.journal_flush");
    unflushed_ = 0;
    ++flushes_;
    bytes_written_ += content_.size();
    static obs::Counter &flush_counter =
        obs::counter("campaign.journal_flushes");
    static obs::Counter &byte_counter =
        obs::counter("campaign.journal_bytes");
    flush_counter.inc();
    byte_counter.add(content_.size());
    return write_file_atomic(path_, content_);
}

} // namespace vega::campaign
