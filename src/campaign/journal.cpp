#include "campaign/journal.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/fs.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/test_case.h"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#define VEGA_HAVE_FSYNC 1
#endif

namespace vega::campaign {

namespace {

constexpr const char *kMagicV1 = "# vega campaign journal v1";
constexpr const char *kMagicV2 = "# vega campaign journal v2";
constexpr const char *kTrailerTag = "trailer ";

/** %.17g round-trips every double through text exactly. */
std::string
render_double(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

bool
parse_constant(const std::string &tok, lift::FaultConstant &out)
{
    for (lift::FaultConstant c :
         {lift::FaultConstant::Zero, lift::FaultConstant::One,
          lift::FaultConstant::RandomInput})
        if (tok == lift::fault_constant_name(c)) {
            out = c;
            return true;
        }
    return false;
}

bool
parse_policy(const std::string &tok, runtime::SchedulePolicy &out)
{
    for (runtime::SchedulePolicy p :
         {runtime::SchedulePolicy::Sequential,
          runtime::SchedulePolicy::Random,
          runtime::SchedulePolicy::Probabilistic})
        if (tok == runtime::schedule_policy_name(p)) {
            out = p;
            return true;
        }
    return false;
}

bool
parse_detection(const std::string &tok, runtime::Detection &out)
{
    for (runtime::Detection d :
         {runtime::Detection::None, runtime::Detection::Mismatch,
          runtime::Detection::Stall, runtime::Detection::TagAnomaly,
          runtime::Detection::WrongAddress})
        if (tok == runtime::detection_name(d)) {
            out = d;
            return true;
        }
    return false;
}

/** "key=value" fields of the config line, order-sensitive. */
bool
take_field(std::istringstream &ls, const char *key, std::string &out)
{
    std::string tok;
    if (!(ls >> tok))
        return false;
    std::string prefix = std::string(key) + "=";
    if (tok.compare(0, prefix.size(), prefix) != 0)
        return false;
    out = tok.substr(prefix.size());
    return !out.empty();
}

bool
take_u64(std::istringstream &ls, const char *key, uint64_t &out)
{
    std::string v;
    if (!take_field(ls, key, v))
        return false;
    char *end = nullptr;
    out = std::strtoull(v.c_str(), &end, 10);
    return end && *end == '\0';
}

/** Parse context shared by the v1 and v2 payload walks. */
struct PayloadParser
{
    const std::string &path;
    JournalState &state;
    bool have_config = false;

    VegaError corrupt(size_t line_no, const std::string &msg) const
    {
        return make_error(ErrorCode::JournalCorrupt,
                          path + ":" + std::to_string(line_no) + ": " +
                              msg);
    }

    /**
     * Parse one payload body ("config ..." / "job ..." / "failed ...")
     * into the state. @p version gates the shard fields (v2 only).
     */
    Expected<void> parse(const std::string &body, size_t line_no,
                         int version)
    {
        std::istringstream ls(body);
        std::string word;
        ls >> word;
        if (word == "config") {
            if (have_config)
                return corrupt(line_no, "duplicate config line");
            JournalHeader &h = state.header;
            if (!take_field(ls, "module", h.module) ||
                !take_u64(ls, "seed", h.seed) ||
                !take_u64(ls, "jobs", h.num_jobs) ||
                !take_u64(ls, "pairs", h.num_pairs) ||
                !take_u64(ls, "constants", h.num_constants) ||
                !take_u64(ls, "policies", h.num_policies) ||
                !take_u64(ls, "max_slots", h.max_slots) ||
                !take_u64(ls, "suite", h.suite_size))
                return corrupt(line_no, "malformed config line");
            std::string prob;
            if (!take_field(ls, "probability", prob))
                return corrupt(line_no, "malformed config line");
            char *end = nullptr;
            h.probability = std::strtod(prob.c_str(), &end);
            if (!end || *end != '\0')
                return corrupt(line_no, "malformed probability");
            if (version >= 2) {
                if (!take_u64(ls, "shards", h.num_shards) ||
                    !take_u64(ls, "shard", h.shard_id))
                    return corrupt(line_no, "malformed shard fields");
                if (h.num_shards == 0 || h.shard_id >= h.num_shards)
                    return corrupt(line_no, "invalid shard assignment");
            }
            have_config = true;
        } else if (word == "job") {
            if (!have_config)
                return corrupt(line_no, "job record before config line");
            JobResult r;
            std::string constant, policy, kind;
            uint64_t pair = 0, detected = 0, corrupts = 0, escape = 0,
                     attempts = 0;
            if (!(ls >> r.id >> pair >> constant >> policy >> detected >>
                  kind >> r.slots_to_detect >> r.tests_dispatched >>
                  r.sim_cycles >> corrupts >> escape >> attempts))
                return corrupt(line_no, "malformed job record");
            if (!parse_constant(constant, r.constant))
                return corrupt(line_no,
                               "unknown constant '" + constant + "'");
            if (!parse_policy(policy, r.policy))
                return corrupt(line_no, "unknown policy '" + policy + "'");
            if (!parse_detection(kind, r.kind))
                return corrupt(line_no,
                               "unknown detection kind '" + kind + "'");
            r.pair_index = size_t(pair);
            r.detected = detected != 0;
            r.corrupts_workload = corrupts != 0;
            r.escape = escape != 0;
            r.attempts = uint32_t(attempts);
            state.completed.push_back(std::move(r));
            ++state.records;
        } else if (word == "failed") {
            if (!have_config)
                return corrupt(line_no,
                               "failed record before config line");
            FailedJob f;
            uint64_t pair = 0, attempts = 0;
            std::string code;
            if (!(ls >> f.id >> pair >> attempts >> code))
                return corrupt(line_no, "malformed failed record");
            f.pair_index = size_t(pair);
            f.attempts = uint32_t(attempts);
            f.error.code = parse_error_code(code);
            if (f.error.code == ErrorCode::Ok)
                return corrupt(line_no,
                               "unknown error code '" + code + "'");
            std::getline(ls, f.error.context);
            if (!f.error.context.empty() && f.error.context[0] == ' ')
                f.error.context.erase(0, 1);
            state.failed.push_back(std::move(f));
            ++state.records;
        } else {
            return corrupt(line_no, "unknown record '" + word + "'");
        }
        return {};
    }
};

/** "job 17 ..." -> "job 17" — enough to name the record in an error. */
std::string
record_tag(const std::string &body)
{
    size_t first = body.find(' ');
    if (first == std::string::npos)
        return body.empty() ? std::string("<empty>") : body;
    size_t second = body.find(' ', first + 1);
    return body.substr(0, second == std::string::npos ? body.size()
                                                      : second);
}

std::string
encode_line(const std::string &body)
{
    return crc32c_hex(crc32c(body)) + " " + body + "\n";
}

} // namespace

bool
JournalHeader::same_campaign(const JournalHeader &o) const
{
    return module == o.module && seed == o.seed &&
           num_jobs == o.num_jobs && num_pairs == o.num_pairs &&
           num_constants == o.num_constants &&
           num_policies == o.num_policies && max_slots == o.max_slots &&
           suite_size == o.suite_size &&
           render_double(probability) == render_double(o.probability) &&
           num_shards == o.num_shards;
}

bool
JournalHeader::operator==(const JournalHeader &o) const
{
    return same_campaign(o) && shard_id == o.shard_id;
}

std::string
JournalHeader::to_string() const
{
    std::ostringstream os;
    os << "config module=" << module << " seed=" << seed
       << " jobs=" << num_jobs << " pairs=" << num_pairs
       << " constants=" << num_constants << " policies=" << num_policies
       << " max_slots=" << max_slots << " suite=" << suite_size
       << " probability=" << render_double(probability)
       << " shards=" << num_shards << " shard=" << shard_id;
    return os.str();
}

Expected<JournalState>
read_journal(const std::string &path, const JournalReadOptions &opts)
{
    Expected<std::string> text = read_file(path);
    if (!text)
        return text.error();

    // Split keeping track of whether the final line was
    // newline-terminated: a bare tail is the signature of a torn
    // append, not a complete record.
    std::vector<std::string> lines;
    size_t start = 0;
    for (size_t i = 0; i < text->size(); ++i)
        if ((*text)[i] == '\n') {
            lines.push_back(text->substr(start, i - start));
            start = i + 1;
        }
    bool unterminated_tail = start < text->size();
    if (unterminated_tail)
        lines.push_back(text->substr(start));

    if (lines.empty() || lines[0].empty())
        return make_error(ErrorCode::JournalCorrupt,
                          path + ": empty journal");

    JournalState state;
    PayloadParser parser{path, state};

    int version;
    if (lines[0] == kMagicV1)
        version = 1;
    else if (lines[0] == kMagicV2)
        version = 2;
    else
        return make_error(ErrorCode::JournalCorrupt,
                          path + ":1: missing journal magic");
    state.version = version;

    if (version == 1) {
        log(LogLevel::Warn,
            "journal " + path +
                " is v1 (no checksums) — deprecated; resuming will "
                "upgrade it to v2");
        if (unterminated_tail)
            return make_error(ErrorCode::JournalCorrupt,
                              path + ": truncated final line");
        for (size_t i = 1; i < lines.size(); ++i) {
            if (lines[i].empty())
                continue;
            Expected<void> ok = parser.parse(lines[i], i + 1, 1);
            if (!ok)
                return ok.error();
        }
        if (!parser.have_config)
            return make_error(ErrorCode::JournalCorrupt,
                              path + ": no config line");
        if (opts.require_trailer)
            return make_error(ErrorCode::ShardIncomplete,
                              path + ": v1 journal has no integrity "
                                     "trailer; resume it to upgrade");
        return state;
    }

    // v2: every payload line is "<crc8> <body>"; the trailer pins the
    // record count and a rolling checksum over all bodies.
    Crc32c rolling;
    for (size_t i = 1; i < lines.size(); ++i) {
        const std::string &line = lines[i];
        size_t line_no = i + 1;
        bool is_last = i + 1 == lines.size();

        if (state.has_trailer)
            return make_error(ErrorCode::JournalCorrupt,
                              path + ":" + std::to_string(line_no) +
                                  ": record after trailer");

        if (line.compare(0, 8, kTrailerTag) == 0) {
            std::istringstream ls(line);
            std::string word, crc_hex;
            uint64_t count = 0;
            ls >> word;
            uint32_t expect = 0;
            if (!take_u64(ls, "records", count) ||
                !take_field(ls, "crc", crc_hex) ||
                !parse_crc32c_hex(crc_hex, expect))
                return make_error(ErrorCode::JournalTrailerMismatch,
                                  path + ":" + std::to_string(line_no) +
                                      ": malformed trailer");
            if (count != state.records)
                return make_error(
                    ErrorCode::JournalTrailerMismatch,
                    path + ": trailer claims " + std::to_string(count) +
                        " records but the file holds " +
                        std::to_string(state.records));
            if (expect != rolling.value())
                return make_error(
                    ErrorCode::JournalTrailerMismatch,
                    path + ": rolling checksum mismatch (trailer " +
                        crc_hex + ", file " +
                        crc32c_hex(rolling.value()) + ")");
            state.has_trailer = true;
            continue;
        }

        // Torn-append signature: a final line that is incomplete (no
        // newline) or checksum-failing, in a journal that was never
        // finalized. Anything else failing its checksum is damage.
        uint32_t line_crc = 0;
        bool prefix_ok = line.size() > 9 && line[8] == ' ' &&
                         parse_crc32c_hex(line.substr(0, 8), line_crc);
        std::string body = prefix_ok ? line.substr(9) : std::string();
        bool crc_ok = prefix_ok && crc32c(body) == line_crc;
        bool torn_shape = is_last && (unterminated_tail || !crc_ok);
        if (!crc_ok || (is_last && unterminated_tail)) {
            if (torn_shape && opts.allow_torn_tail) {
                state.torn_tail = true;
                log(LogLevel::Warn,
                    "journal " + path + ":" + std::to_string(line_no) +
                        ": dropping torn final line (crash "
                        "mid-append); the job will be re-run");
                break;
            }
            return make_error(
                ErrorCode::JournalRecordCorrupt,
                path + ":" + std::to_string(line_no) +
                    ": record checksum mismatch (" +
                    (prefix_ok ? record_tag(body) : "unparseable line") +
                    ")");
        }

        Expected<void> parsed = parser.parse(body, line_no, 2);
        if (!parsed)
            return parsed.error();
        rolling.update(body);
        rolling.update("\n", 1);
    }

    if (!parser.have_config)
        return make_error(ErrorCode::JournalCorrupt,
                          path + ": no config line");
    state.rolling_crc = rolling.value();
    if (opts.require_trailer && !state.has_trailer)
        return make_error(ErrorCode::ShardIncomplete,
                          path + ": journal has no trailer — shard " +
                              std::to_string(state.header.shard_id) +
                              " is incomplete (killed mid-run? resume "
                              "it before aggregating)");
    return state;
}

JournalWriter::~JournalWriter() { close(); }

void
JournalWriter::close()
{
    if (file_) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

Expected<void>
JournalWriter::open(const std::string &path, const JournalHeader &header,
                    const JournalState *prior, size_t flush_every)
{
    close();
    path_ = path;
    flush_every_ = flush_every < 1 ? 1 : flush_every;
    unflushed_ = 0;
    finalized_ = false;
    records_ = 0;
    rolling_.reset();
    buffer_.clear();

    // Header (and resumed records) go down via write-temp-then-rename:
    // the one structural rewrite; everything after is an append.
    std::string content = std::string(kMagicV2) + "\n";
    auto add = [&](const std::string &body) {
        content += encode_line(body);
        rolling_.update(body);
        rolling_.update("\n", 1);
    };
    add(header.to_string());
    if (prior) {
        for (const JobResult &r : prior->completed) {
            add(render_record(r));
            ++records_;
        }
        for (const FailedJob &f : prior->failed) {
            add(render_record(f));
            ++records_;
        }
    }
    Expected<void> wrote = write_file_atomic(path_, content);
    if (!wrote)
        return wrote;
    ++flushes_;
    bytes_written_ += content.size();

    file_ = std::fopen(path_.c_str(), "ab");
    if (!file_)
        return make_error(ErrorCode::IoError,
                          "cannot reopen " + path_ + " for append");
    return {};
}

std::string
render_record(const JobResult &r)
{
    std::ostringstream os;
    os << "job " << r.id << " " << r.pair_index << " "
       << lift::fault_constant_name(r.constant) << " "
       << runtime::schedule_policy_name(r.policy) << " "
       << (r.detected ? 1 : 0) << " " << runtime::detection_name(r.kind)
       << " " << r.slots_to_detect << " " << r.tests_dispatched << " "
       << r.sim_cycles << " " << (r.corrupts_workload ? 1 : 0) << " "
       << (r.escape ? 1 : 0) << " " << r.attempts;
    return os.str();
}

std::string
render_record(const FailedJob &f)
{
    // The context rides to end-of-line; strip embedded newlines so one
    // record stays one line.
    std::string context = f.error.context;
    for (char &c : context)
        if (c == '\n' || c == '\r')
            c = ' ';
    std::ostringstream os;
    os << "failed " << f.id << " " << f.pair_index << " " << f.attempts
       << " " << error_code_name(f.error.code) << " " << context;
    return os.str();
}

Expected<void>
JournalWriter::append_line(const std::string &body)
{
    VEGA_CHECK(!finalized_, "journal ", path_,
               ": record after finalize");
    buffer_ += encode_line(body);
    rolling_.update(body);
    rolling_.update("\n", 1);
    ++records_;
    return after_record();
}

Expected<void>
JournalWriter::record(const JobResult &r)
{
    return append_line(render_record(r));
}

Expected<void>
JournalWriter::record(const FailedJob &f)
{
    return append_line(render_record(f));
}

Expected<void>
JournalWriter::after_record()
{
    if (++unflushed_ >= flush_every_)
        return flush();
    return {};
}

Expected<void>
JournalWriter::sync()
{
    if (unflushed_ == 0)
        return {};
    return flush();
}

Expected<void>
JournalWriter::finalize()
{
    VEGA_CHECK(file_, "finalize on a closed journal");
    std::string trailer = std::string(kTrailerTag) +
                          "records=" + std::to_string(records_) +
                          " crc=" + crc32c_hex(rolling_.value()) + "\n";
    buffer_ += trailer;
    ++unflushed_;
    Expected<void> flushed = flush();
    if (!flushed)
        return flushed;
    finalized_ = true;
    close();
    return {};
}

Expected<void>
JournalWriter::flush()
{
    VEGA_SPAN("campaign.journal_flush");
    unflushed_ = 0;
    ++flushes_;
    static obs::Counter &flush_counter =
        obs::counter("campaign.journal_flushes");
    static obs::Counter &byte_counter =
        obs::counter("campaign.journal_bytes");
    flush_counter.inc();
    if (buffer_.empty())
        return {};
    bool ok = file_ != nullptr &&
              std::fwrite(buffer_.data(), 1, buffer_.size(), file_) ==
                  buffer_.size();
    ok = ok && std::fflush(file_) == 0;
#ifdef VEGA_HAVE_FSYNC
    // Group commit is only a durability boundary if the appended
    // records hit stable storage, matching write_file_atomic.
    ok = ok && fsync(fileno(file_)) == 0;
#endif
    if (!ok)
        return make_error(ErrorCode::IoError,
                          "append failed on " + path_);
    bytes_written_ += buffer_.size();
    byte_counter.add(buffer_.size());
    buffer_.clear();
    return {};
}

} // namespace vega::campaign
