/**
 * @file
 * Crash-safe campaign journal.
 *
 * A long campaign that dies at job 9,000 of 10,000 — OOM kill, power
 * loss, ctrl-C — should not forfeit the first 9,000 results. The
 * journal checkpoints every completed (or quarantined) job as it
 * lands; `vega_campaign --resume` reloads it, skips the recorded
 * jobs, and produces a report byte-identical to an uninterrupted run
 * (the determinism contract in campaign.h makes the remaining jobs
 * independent of the interruption).
 *
 * Format: a line-oriented text file,
 *
 *   # vega campaign journal v1
 *   config module=<m> seed=<s> jobs=<n> pairs=<p> constants=<c>
 *          policies=<y> max_slots=<k> suite=<t> probability=<pr>
 *   job <id> <pair> <constant> <policy> <detected> <kind> <slots>
 *       <tests> <cycles> <corrupts> <escape> <attempts>
 *   failed <id> <pair> <attempts> <code> <context...>
 *
 * (config and job lines are single lines; wrapped here for width.)
 * Every flush rewrites the file via write-temp-then-rename, so the
 * on-disk journal is always a complete, parseable snapshot — a crash
 * can lose at most the records buffered since the last flush, never
 * corrupt the file. Flush granularity is group-commit: record()
 * buffers, and the file is rewritten every @p flush_every records
 * (default every record) plus once at sync(). Rewriting per record is
 * O(n²) bytes over a campaign; batching amortizes that to O(n²/k)
 * while keeping the at-most-k-records crash window explicit. The
 * config line fingerprints the campaign; resuming under a different
 * configuration is refused with JournalMismatch rather than silently
 * mixing incompatible results.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "common/error.h"

namespace vega::campaign {

/** Campaign-configuration fingerprint stored in the config line. */
struct JournalHeader
{
    std::string module;
    uint64_t seed = 0;
    uint64_t num_jobs = 0;
    uint64_t num_pairs = 0;
    uint64_t num_constants = 0;
    uint64_t num_policies = 0;
    uint64_t max_slots = 0;
    uint64_t suite_size = 0;
    double probability = 1.0;

    bool operator==(const JournalHeader &o) const;
    std::string to_string() const;
};

/** Everything a journal file records. */
struct JournalState
{
    JournalHeader header;
    std::vector<JobResult> completed;
    std::vector<FailedJob> failed;
};

/**
 * Parse a journal file. Unreadable => IoError; malformed lines =>
 * JournalCorrupt with the line number.
 */
Expected<JournalState> read_journal(const std::string &path);

/**
 * Appends job records with group-commit durability: the file is
 * rewritten atomically every flush_every records and at sync(), so a
 * crash at any instant leaves a valid journal on disk holding all but
 * at most the last flush_every - 1 records. Not thread-safe; the
 * campaign serializes appends behind a mutex.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;

    /**
     * Start journaling to @p path with @p header, seeding the file
     * with @p prior records (the resume case). Truncates any existing
     * file — call read_journal first to recover its contents.
     * @p flush_every sets the group-commit size (min 1).
     */
    Expected<void> open(const std::string &path,
                        const JournalHeader &header,
                        const JournalState *prior = nullptr,
                        size_t flush_every = 1);

    Expected<void> record(const JobResult &result);
    Expected<void> record(const FailedJob &failure);

    /** Flush any buffered records; call before declaring success. */
    Expected<void> sync();

    bool is_open() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

    /** Atomic rewrites performed so far (observability / tests). */
    uint64_t flushes() const { return flushes_; }
    /** Total bytes written across those rewrites. */
    uint64_t bytes_written() const { return bytes_written_; }

  private:
    Expected<void> flush();
    Expected<void> after_record();

    std::string path_;
    std::string content_;
    size_t flush_every_ = 1;
    size_t unflushed_ = 0;
    uint64_t flushes_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace vega::campaign
