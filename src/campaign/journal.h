/**
 * @file
 * Crash-safe campaign journal.
 *
 * A long campaign that dies at job 9,000 of 10,000 — OOM kill, power
 * loss, ctrl-C — should not forfeit the first 9,000 results. The
 * journal checkpoints every completed (or quarantined) job as it
 * lands; `vega_campaign --resume` reloads it, skips the recorded
 * jobs, and produces a report byte-identical to an uninterrupted run
 * (the determinism contract in campaign.h makes the remaining jobs
 * independent of the interruption).
 *
 * Format: a line-oriented text file,
 *
 *   # vega campaign journal v1
 *   config module=<m> seed=<s> jobs=<n> pairs=<p> constants=<c>
 *          policies=<y> max_slots=<k> suite=<t> probability=<pr>
 *   job <id> <pair> <constant> <policy> <detected> <kind> <slots>
 *       <tests> <cycles> <corrupts> <escape> <attempts>
 *   failed <id> <pair> <attempts> <code> <context...>
 *
 * (config and job lines are single lines; wrapped here for width.)
 * Every append rewrites the file via write-temp-then-rename, so the
 * on-disk journal is always a complete, parseable snapshot — a crash
 * can lose at most the in-flight append, never corrupt the file. The
 * config line fingerprints the campaign; resuming under a different
 * configuration is refused with JournalMismatch rather than silently
 * mixing incompatible results.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "common/error.h"

namespace vega::campaign {

/** Campaign-configuration fingerprint stored in the config line. */
struct JournalHeader
{
    std::string module;
    uint64_t seed = 0;
    uint64_t num_jobs = 0;
    uint64_t num_pairs = 0;
    uint64_t num_constants = 0;
    uint64_t num_policies = 0;
    uint64_t max_slots = 0;
    uint64_t suite_size = 0;
    double probability = 1.0;

    bool operator==(const JournalHeader &o) const;
    std::string to_string() const;
};

/** Everything a journal file records. */
struct JournalState
{
    JournalHeader header;
    std::vector<JobResult> completed;
    std::vector<FailedJob> failed;
};

/**
 * Parse a journal file. Unreadable => IoError; malformed lines =>
 * JournalCorrupt with the line number.
 */
Expected<JournalState> read_journal(const std::string &path);

/**
 * Appends job records, rewriting the file atomically on every record
 * so a crash at any instant leaves a valid journal on disk. Not
 * thread-safe; the campaign serializes appends behind a mutex.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;

    /**
     * Start journaling to @p path with @p header, seeding the file
     * with @p prior records (the resume case). Truncates any existing
     * file — call read_journal first to recover its contents.
     */
    Expected<void> open(const std::string &path,
                        const JournalHeader &header,
                        const JournalState *prior = nullptr);

    Expected<void> record(const JobResult &result);
    Expected<void> record(const FailedJob &failure);

    bool is_open() const { return !path_.empty(); }
    const std::string &path() const { return path_; }

  private:
    Expected<void> flush();

    std::string path_;
    std::string content_;
};

} // namespace vega::campaign
