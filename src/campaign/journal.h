/**
 * @file
 * Crash-safe, end-to-end checksummed campaign journal.
 *
 * A long campaign that dies at job 9,000 of 10,000 — OOM kill, power
 * loss, ctrl-C — should not forfeit the first 9,000 results. The
 * journal checkpoints every completed (or quarantined) job as it
 * lands; `vega_campaign --resume` reloads it, skips the recorded
 * jobs, and produces a report byte-identical to an uninterrupted run
 * (the determinism contract in campaign.h makes the remaining jobs
 * independent of the interruption).
 *
 * v2 format — a line-oriented text file where every payload line is
 * prefixed with the CRC32C of its body, DAOS-style end-to-end
 * integrity (the producer computes, every consumer verifies):
 *
 *   # vega campaign journal v2
 *   <crc8> config module=<m> seed=<s> jobs=<n> pairs=<p>
 *          constants=<c> policies=<y> max_slots=<k> suite=<t>
 *          probability=<pr> shards=<N> shard=<K>
 *   <crc8> job <id> <pair> <constant> <policy> <detected> <kind>
 *          <slots> <tests> <cycles> <corrupts> <escape> <attempts>
 *   <crc8> failed <id> <pair> <attempts> <code> <context...>
 *   trailer records=<n> crc=<rolling8>
 *
 * (each record is a single line; wrapped here for width.) <crc8> is
 * the CRC32C of everything after the "<crc8> " prefix; the trailer's
 * rolling checksum covers every body (config included) plus its
 * newline, and is appended by finalize() once every owned job has
 * settled. A journal without a trailer is *in progress* — legal to
 * resume, rejected by the shard aggregator as shard-incomplete.
 *
 * Durability protocol: open() writes the header (and any resumed
 * records) via write-temp-then-rename, then records are *appended* —
 * the per-line checksums make a torn tail detectable, so the v1
 * rewrite-whole-file-per-flush (O(n²) bytes over a campaign) is gone.
 * A crash can leave at most one torn final line plus the records
 * buffered since the last flush; resume drops the torn tail with a
 * warning and re-runs those jobs. Flush granularity is group-commit:
 * record() buffers, and the buffer is appended + fsynced every
 * @p flush_every records (default every record) plus once at sync().
 *
 * v1 files (no checksums) are still read, with a deprecation warning;
 * resuming one upgrades it to v2 on the spot. The config line
 * fingerprints the campaign — including the shard split — and
 * resuming under a different configuration is refused with
 * JournalMismatch rather than silently mixing incompatible results.
 */
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "campaign/job.h"
#include "common/checksum.h"
#include "common/error.h"

namespace vega::campaign {

/** Campaign-configuration fingerprint stored in the config line. */
struct JournalHeader
{
    std::string module;
    uint64_t seed = 0;
    uint64_t num_jobs = 0;
    uint64_t num_pairs = 0;
    uint64_t num_constants = 0;
    uint64_t num_policies = 0;
    uint64_t max_slots = 0;
    uint64_t suite_size = 0;
    double probability = 1.0;
    /** Shard split this journal belongs to (1/0 = unsharded). */
    uint64_t num_shards = 1;
    uint64_t shard_id = 0;

    bool operator==(const JournalHeader &o) const;
    /** Equal up to the shard assignment — the aggregator's check that
     *  two shard journals came from the same campaign. */
    bool same_campaign(const JournalHeader &o) const;
    std::string to_string() const;
};

/** Everything a journal file records. */
struct JournalState
{
    JournalHeader header;
    std::vector<JobResult> completed;
    std::vector<FailedJob> failed;

    /** Format version the file carried (1 = legacy, no checksums). */
    int version = 2;
    /** The finalize() trailer was present and verified. */
    bool has_trailer = false;
    /** A torn final line was detected and dropped (v2, resume path). */
    bool torn_tail = false;
    /** job + failed records read (the trailer's records= count). */
    uint64_t records = 0;
    /** Rolling CRC32C over all payload bodies (what the trailer pins). */
    uint32_t rolling_crc = 0;
};

/**
 * One record's journal body — no checksum prefix, no newline. The
 * writer checksums and frames these; exposed so tests (and the
 * corruptor harness) can craft fixture files in either version.
 */
std::string render_record(const JobResult &r);
std::string render_record(const FailedJob &f);

struct JournalReadOptions
{
    /**
     * Refuse journals without a verified trailer (ShardIncomplete).
     * The aggregator sets this: an unfinalized shard must be resumed,
     * not merged.
     */
    bool require_trailer = false;
    /**
     * Drop a checksum-failing or newline-less *final* line of an
     * unfinalized v2 journal instead of erroring — the signature of a
     * crash mid-append. The resume path wants this; the aggregator
     * does not (its shards must be finalized anyway).
     */
    bool allow_torn_tail = true;
};

/**
 * Parse and verify a journal file. Unreadable => IoError; malformed
 * or checksum-failing lines => JournalCorrupt / JournalRecordCorrupt
 * with the line number; trailer count or rolling-checksum mismatch =>
 * JournalTrailerMismatch; missing trailer under require_trailer =>
 * ShardIncomplete.
 */
Expected<JournalState> read_journal(const std::string &path,
                                    const JournalReadOptions &opts = {});

/**
 * Appends checksummed job records with group-commit durability. Not
 * thread-safe; the campaign serializes appends behind a mutex.
 */
class JournalWriter
{
  public:
    JournalWriter() = default;
    ~JournalWriter();
    JournalWriter(const JournalWriter &) = delete;
    JournalWriter &operator=(const JournalWriter &) = delete;

    /**
     * Start journaling to @p path with @p header, seeding the file
     * with @p prior records (the resume case). Truncates any existing
     * file — call read_journal first to recover its contents.
     * @p flush_every sets the group-commit size (min 1).
     */
    Expected<void> open(const std::string &path,
                        const JournalHeader &header,
                        const JournalState *prior = nullptr,
                        size_t flush_every = 1);

    Expected<void> record(const JobResult &result);
    Expected<void> record(const FailedJob &failure);

    /** Flush any buffered records; call before declaring success. */
    Expected<void> sync();

    /**
     * Flush, append the integrity trailer, and close. Only call once
     * every job this journal owns has settled: a trailer marks the
     * shard complete and mergeable. Further record() calls are a bug.
     */
    Expected<void> finalize();

    bool is_open() const { return file_ != nullptr; }
    bool finalized() const { return finalized_; }
    const std::string &path() const { return path_; }

    /** job + failed records written so far. */
    uint64_t records() const { return records_; }
    /** Physical write batches (the initial rewrite plus appends). */
    uint64_t flushes() const { return flushes_; }
    /** Total bytes written across those batches. */
    uint64_t bytes_written() const { return bytes_written_; }

  private:
    Expected<void> append_line(const std::string &body);
    Expected<void> after_record();
    Expected<void> flush();
    void close();

    std::string path_;
    std::FILE *file_ = nullptr;
    std::string buffer_;
    Crc32c rolling_;
    size_t flush_every_ = 1;
    size_t unflushed_ = 0;
    bool finalized_ = false;
    uint64_t records_ = 0;
    uint64_t flushes_ = 0;
    uint64_t bytes_written_ = 0;
};

} // namespace vega::campaign
