#include "campaign/engine.h"

#include "common/logging.h"

namespace vega::campaign {

namespace {

void
mount_backend(cpu::Iss &iss, ModuleKind kind, cpu::NetlistBackend *backend)
{
    switch (kind) {
      case ModuleKind::Alu32:
        iss.set_alu_backend(backend);
        break;
      case ModuleKind::Fpu32:
        iss.set_fpu_backend(backend);
        break;
      case ModuleKind::Mdu32:
        iss.set_mdu_backend(backend);
        break;
      case ModuleKind::Adder2:
        VEGA_CHECK(false, "adder2 is not a CPU functional unit");
    }
}

} // namespace

NetlistEngine::NetlistEngine(ModuleKind kind, const Netlist &netlist,
                             bool has_random_input, uint64_t seed)
    : kind_(kind), backend_(kind, netlist, has_random_input, seed)
{
}

NetlistEngine::NetlistEngine(ModuleKind kind,
                             std::shared_ptr<const EvalTape> tape,
                             bool has_random_input, uint64_t seed)
    : kind_(kind),
      backend_(kind, std::move(tape), has_random_input, seed)
{
}

runtime::Detection
NetlistEngine::run(const runtime::TestCase &tc)
{
    cpu::IssConfig cfg;
    cfg.max_instructions = kTestWatchdog;
    cpu::Iss iss(tc.program, cfg);
    mount_backend(iss, kind_, &backend_);
    auto status = iss.run();

    // A test that never completes cleanly is a stall-class detection,
    // whether the handshake hung (Stalled), the fault sent execution
    // into a loop the watchdog had to break (Watchdog), or a corrupted
    // address left the architectural envelope (Trap).
    runtime::Detection det = runtime::Detection::None;
    if (status != cpu::Iss::Status::Halted)
        det = runtime::Detection::Stall;
    else if (iss.reg(31) != 0)
        det = runtime::Detection::Mismatch;
    else if (backend_.tag_mismatches() > tags_seen_)
        det = runtime::Detection::TagAnomaly;
    tags_seen_ = backend_.tag_mismatches();
    return det;
}

const workloads::Kernel &
representative_kernel(ModuleKind kind)
{
    const auto &suite = workloads::embench_suite();
    const char *want = "minver";
    switch (kind) {
      case ModuleKind::Fpu32: want = "minver"; break;
      case ModuleKind::Alu32: want = "crc32"; break;
      case ModuleKind::Mdu32: want = "ud"; break;
      case ModuleKind::Adder2:
        VEGA_CHECK(false, "adder2 is not a CPU functional unit");
    }
    for (const auto &k : suite)
        if (k.name == want)
            return k;
    VEGA_CHECK(false, "kernel missing from embench suite");
    return suite.front();
}

namespace {

bool
workload_corrupts_on(ModuleKind kind, cpu::NetlistBackend &backend)
{
    const workloads::Kernel &kernel = representative_kernel(kind);
    cpu::IssConfig cfg;
    cfg.max_instructions = kWorkloadWatchdog;
    cpu::Iss iss(kernel.program, cfg);
    mount_backend(iss, kind, &backend);
    auto status = iss.run();
    if (status != cpu::Iss::Status::Halted)
        return true;
    return iss.read_u32(workloads::kChecksumAddr) !=
           kernel.expected_checksum;
}

} // namespace

bool
workload_corrupts(ModuleKind kind, const Netlist &netlist,
                  bool has_random_input, uint64_t seed)
{
    cpu::NetlistBackend backend(kind, netlist, has_random_input, seed);
    return workload_corrupts_on(kind, backend);
}

bool
workload_corrupts(ModuleKind kind, std::shared_ptr<const EvalTape> tape,
                  bool has_random_input, uint64_t seed)
{
    cpu::NetlistBackend backend(kind, std::move(tape), has_random_input,
                                seed);
    return workload_corrupts_on(kind, backend);
}

} // namespace vega::campaign
