/**
 * @file
 * 64-episode wave execution for fault-injection campaigns.
 *
 * A *wave* runs up to 64 independent campaign episodes in lockstep on
 * one BatchSimulator pass over a shared fault-bank tape
 * (lift::build_fault_bank): each lane enables its own fault, seeds its
 * own fm_rand / scheduler streams, and keeps its own slot clock,
 * aging-library bookkeeping, and detection outcome. The ISS side runs
 * scalar per lane (it is a negligible fraction of the work — gate
 * evaluation dominates by orders of magnitude) through the
 * split-transaction protocol (cpu::FuIssue / Iss::step_one), while
 * every module clock edge is shared across lanes via
 * cpu::BatchNetlistEngine.
 *
 * Semantics contract: per-lane results are bit-identical to the scalar
 * oracle (campaign run_job / workload_corrupts on a standalone failing
 * netlist), and independent of wave composition — which jobs happen to
 * share a wave, in which lanes. That is what keeps sharded, resumed,
 * and mid-wave-killed campaigns byte-identical to a straight run. The
 * lockstep tests in tests/test_campaign_wave.cpp pin both properties.
 */
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "campaign/job.h"
#include "rtl/module.h"
#include "runtime/test_case.h"
#include "sim/eval_tape.h"

namespace vega::campaign {

/** Episodes per wave (mirrors cpu::BatchNetlistEngine::kLanes). */
constexpr size_t kWaveLanes = 64;

/** Read-only per-campaign context shared by every wave. */
struct WaveContext
{
    ModuleKind kind = ModuleKind::Alu32;
    /** Compiled fault-bank netlist tape (one per campaign). */
    std::shared_ptr<const EvalTape> tape;
    /** Width of the bank's "fm_en" enable bus. */
    size_t num_faults = 0;
    /** Per bank position: does the fault read "fm_rand"? */
    const std::vector<char> *fault_random = nullptr;
    /** The campaign's runtime suite (shared, never copied per lane). */
    const std::vector<runtime::TestCase> *suite = nullptr;
};

/** One lane's work order in an injection wave. */
struct WaveJob
{
    JobSpec spec;
    /** Enable bit of this job's fault in the bank. */
    size_t bank_index = 0;
    /** Characterization verdict for this job's fault. */
    bool corrupts = false;
};

/**
 * Batched characterization: run the representative kernel once per
 * lane, fault (bank position, backend seed) per lane. Returns the
 * corrupts verdict per input position — identical to scalar
 * workload_corrupts() on each standalone failing netlist.
 */
std::vector<char>
characterize_wave(const WaveContext &ctx,
                  const std::vector<std::pair<size_t, uint64_t>> &faults);

/**
 * Run up to 64 injection jobs in lockstep. Returns JobResults in input
 * order, each bit-identical to scalar run_job() of the same spec.
 */
std::vector<JobResult> run_wave(const WaveContext &ctx,
                                const std::vector<WaveJob> &jobs);

} // namespace vega::campaign
